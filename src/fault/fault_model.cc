/**
 * @file
 * Fault model implementation.
 */

#include "fault/fault_model.hh"

#include <cmath>

#include "circuit/read_disturb.hh"
#include "circuit/technology.hh"
#include "common/logging.hh"

namespace bvf::fault
{

namespace
{

/** SplitMix64: decorrelates stuck-at site hashes from the fault Rng. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Position (0-based) of the k-th set bit of @p v; v must have > k. */
int
kthSetBit64(Word64 v, std::int64_t k)
{
    while (k-- > 0)
        v &= v - 1;
    return std::countr_zero(v);
}

} // namespace

double
readDisturbFlipProbability(circuit::CellKind kind, circuit::TechNode node,
                           double vdd, int cellsPerBitline)
{
    if (kind != circuit::CellKind::SramBvf6T)
        return 0.0;
    const auto &tech = circuit::techParams(node);
    const circuit::ReadDisturbSim sim(tech, vdd);
    const auto transient = sim.simulateBvfRead0(cellsPerBitline);

    // The nominal cell either survives or flips outright; silicon has a
    // spread. Compare the disturbed node's peak excursion against a
    // Gaussian-distributed inverter trip point (sigma from Vth
    // variation) -- the tail probability is the per-read flip rate.
    const double vtrip = 0.55 * vdd;
    const double sigma = 0.02 * vdd;
    const double z = (transient.peakNodeV - vtrip) / sigma;
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

FaultInjector::FaultInjector(const FaultConfig &config)
    : config_(config), rng_(config.seed)
{
    fatal_if(config_.softErrorRate < 0.0 || config_.softErrorRate > 1.0,
             "soft-error rate %g outside [0,1]", config_.softErrorRate);
    fatal_if(config_.readDisturbRate < 0.0
                 || config_.readDisturbRate > 1.0,
             "read-disturb rate %g outside [0,1]",
             config_.readDisturbRate);
    fatal_if(config_.stuckAtFraction < 0.0
                 || config_.stuckAtFraction > 1.0,
             "stuck-at fraction %g outside [0,1]",
             config_.stuckAtFraction);
    if (config_.readDisturbRate > 0.0)
        disturbGap_ = nextGap(config_.readDisturbRate);
    if (config_.softErrorRate > 0.0)
        seuGap_ = nextGap(config_.softErrorRate);
}

std::int64_t
FaultInjector::nextGap(double p)
{
    if (p >= 1.0)
        return 0;
    // Geometric gap: one draw per *event* instead of per bit, so tiny
    // rates cost almost nothing per access.
    const double u = rng_.nextDouble();
    return static_cast<std::int64_t>(
        std::floor(std::log1p(-u) / std::log1p(-p)));
}

const FaultInjector::StuckSites &
FaultInjector::stuckSitesFor(coder::UnitId unit, std::uint64_t pairIdx)
{
    const auto key = std::make_pair(static_cast<int>(unit), pairIdx);
    auto it = stuckCache_.find(key);
    if (it != stuckCache_.end())
        return it->second;

    StuckSites sites;
    const std::uint64_t base = mix64(config_.seed)
                               ^ (static_cast<std::uint64_t>(unit) << 48)
                               ^ (pairIdx << 8);
    for (int bit = 0; bit < 72; ++bit) {
        const std::uint64_t h = mix64(base + static_cast<std::uint64_t>(bit));
        const double u =
            static_cast<double>(h >> 11) * 0x1.0p-53;
        if (u >= config_.stuckAtFraction)
            continue;
        const bool value = (h & 1u) != 0;
        if (bit < 64) {
            sites.dataMask |= Word64(1) << bit;
            if (value)
                sites.dataValue |= Word64(1) << bit;
        } else {
            sites.checkMask |=
                static_cast<std::uint8_t>(1u << (bit - 64));
            if (value)
                sites.checkValue |=
                    static_cast<std::uint8_t>(1u << (bit - 64));
        }
    }
    return stuckCache_.emplace(key, sites).first->second;
}

FlipBreakdown
FaultInjector::corrupt(coder::UnitId unit, std::uint64_t pairIdx,
                       Word64 &data, std::uint8_t &check, int checkBits)
{
    FlipBreakdown flips;
    const std::uint8_t checkMask =
        checkBits > 0 ? static_cast<std::uint8_t>((1u << checkBits) - 1)
                      : 0;

    // Stuck-at sites are positional: the same (unit, pairIdx, bit)
    // misbehaves on every access.
    if (config_.stuckAtFraction > 0.0) {
        const StuckSites &s = stuckSitesFor(unit, pairIdx);
        const Word64 changed = (data ^ s.dataValue) & s.dataMask;
        data ^= changed;
        std::uint8_t cchanged = 0;
        if (checkBits > 0) {
            cchanged = static_cast<std::uint8_t>(
                (check ^ s.checkValue) & s.checkMask & checkMask);
            check ^= cchanged;
        }
        flips.stuckAt +=
            static_cast<std::uint64_t>(hammingWeight64(changed))
            + static_cast<std::uint64_t>(
                std::popcount(static_cast<unsigned>(cchanged)));
    }

    // Read disturb: each stored 0 in the codeword flips to 1 with the
    // configured probability (the BL-high precharge can only drag the
    // low node up, never the high node down).
    if (disturbGap_ >= 0) {
        Word64 zeroData = ~data;
        std::uint8_t zeroCheck =
            static_cast<std::uint8_t>(~check & checkMask);
        std::int64_t n =
            hammingWeight64(zeroData)
            + std::popcount(static_cast<unsigned>(zeroCheck));
        std::int64_t cursor = 0;
        while (disturbGap_ < n - cursor) {
            const std::int64_t k = cursor + disturbGap_;
            const std::int64_t dataZeros = hammingWeight64(zeroData);
            if (k < dataZeros) {
                data |= Word64(1) << kthSetBit64(zeroData, k);
            } else {
                check = static_cast<std::uint8_t>(
                    check
                    | (1u << kthSetBit64(zeroCheck, k - dataZeros)));
            }
            ++flips.readDisturb;
            cursor = k + 1;
            disturbGap_ = nextGap(config_.readDisturbRate);
        }
        disturbGap_ -= n - cursor;
    }

    // Soft errors: any bit, either direction.
    if (seuGap_ >= 0) {
        const std::int64_t n = 64 + checkBits;
        std::int64_t cursor = 0;
        while (seuGap_ < n - cursor) {
            const std::int64_t k = cursor + seuGap_;
            if (k < 64)
                data ^= Word64(1) << k;
            else
                check = static_cast<std::uint8_t>(
                    check ^ (1u << (k - 64)));
            ++flips.softError;
            cursor = k + 1;
            seuGap_ = nextGap(config_.softErrorRate);
        }
        seuGap_ -= n - cursor;
    }

    return flips;
}

} // namespace bvf::fault
