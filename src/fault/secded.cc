/**
 * @file
 * SECDED(72,64) implementation.
 *
 * Classic extended-Hamming construction: codeword positions 1..71 hold
 * the 7 Hamming check bits at the power-of-two positions and the 64
 * data bits at the rest; position 0 is the overall (even) parity over
 * the whole codeword. The encoder exploits the XOR-of-positions
 * identity: the Hamming check vector is the XOR of the positions of
 * all set data bits, and a nonzero decode syndrome *is* the position
 * of a single flipped bit.
 */

#include "fault/secded.hh"

#include <array>

#include "common/logging.hh"

namespace bvf::fault
{

namespace
{

constexpr bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

/** Codeword position of data bit i (the i-th non-power-of-two >= 3). */
constexpr std::array<int, 64>
makeDataPositions()
{
    std::array<int, 64> pos{};
    int next = 0;
    for (int p = 3; p <= 71 && next < 64; ++p) {
        if (!isPowerOfTwo(p))
            pos[next++] = p;
    }
    return pos;
}

constexpr std::array<int, 64> dataPos = makeDataPositions();

/** Inverse map: codeword position -> data bit index, or -1. */
constexpr std::array<int, 72>
makePositionToData()
{
    std::array<int, 72> inv{};
    for (int p = 0; p < 72; ++p)
        inv[p] = -1;
    for (int i = 0; i < 64; ++i)
        inv[dataPos[i]] = i;
    return inv;
}

constexpr std::array<int, 72> posToData = makePositionToData();

/** XOR of the codeword positions of all set data bits (7-bit). */
std::uint8_t
hammingChecks(Word64 data)
{
    std::uint32_t h = 0;
    while (data) {
        const int i = std::countr_zero(data);
        h ^= static_cast<std::uint32_t>(dataPos[i]);
        data &= data - 1;
    }
    return static_cast<std::uint8_t>(h & 0x7f);
}

} // namespace

const char *
eccSchemeName(EccScheme scheme)
{
    return scheme == EccScheme::Secded72_64 ? "SECDED(72,64)" : "none";
}

std::uint8_t
secdedEncode(Word64 data)
{
    const std::uint8_t h = hammingChecks(data);
    const int parity =
        (hammingWeight64(data) + std::popcount(static_cast<unsigned>(h)))
        & 1;
    return static_cast<std::uint8_t>(h | (parity << 7));
}

SecdedDecoded
secdedDecode(Word64 data, std::uint8_t check)
{
    SecdedDecoded out;
    out.data = data;
    out.check = check;

    const std::uint8_t h = hammingChecks(data);
    const int syndrome = (h ^ check) & 0x7f;
    // encode() makes popcount(data) + popcount(check) even; any odd
    // total means an odd number of flips somewhere in the codeword.
    const bool parityErr =
        ((hammingWeight64(data)
          + std::popcount(static_cast<unsigned>(check)))
         & 1)
        != 0;

    if (syndrome == 0 && !parityErr)
        return out; // clean

    if (!parityErr) {
        // Even flip count but broken Hamming checks: double error.
        out.status = EccStatus::Uncorrectable;
        return out;
    }

    // Odd flip count: locate and repair the (assumed single) flip.
    out.status = EccStatus::Corrected;
    if (syndrome == 0) {
        out.check = static_cast<std::uint8_t>(check ^ 0x80);
        out.correctedBit = 71; // the overall parity bit itself
    } else if (isPowerOfTwo(syndrome)) {
        const int j = std::countr_zero(static_cast<unsigned>(syndrome));
        out.check = static_cast<std::uint8_t>(check ^ (1u << j));
        out.correctedBit = 64 + j;
    } else if (syndrome <= 71 && posToData[syndrome] >= 0) {
        const int i = posToData[syndrome];
        out.data = data ^ (Word64(1) << i);
        out.correctedBit = i;
    } else {
        // Syndrome points outside the codeword: >= 3 flips.
        out.status = EccStatus::Uncorrectable;
        out.correctedBit = -1;
    }
    return out;
}

void
secdedFlipBit(Word64 &data, std::uint8_t &check, int pos)
{
    panic_if(pos < 0 || pos >= 72, "SECDED bit position %d out of range",
             pos);
    if (pos < 64)
        data ^= Word64(1) << pos;
    else
        check = static_cast<std::uint8_t>(check ^ (1u << (pos - 64)));
}

} // namespace bvf::fault
