/**
 * @file
 * FaultSink implementation.
 */

#include "fault/fault_sink.hh"

namespace bvf::fault
{

FaultSink::FaultSink(sram::AccessSink &downstream,
                     const FaultConfig &config)
    : down_(downstream), config_(config), injector_(config)
{
}

Word64
FaultSink::processCodeword(coder::UnitId unit, std::uint64_t pairIdx,
                           Word64 data, FaultSiteStats &st)
{
    ++st.codewords;
    const Word64 original = data;
    const bool ecc = config_.ecc == EccScheme::Secded72_64;
    std::uint8_t check = ecc ? secdedEncode(data) : 0;

    const FlipBreakdown flips = injector_.corrupt(
        unit, pairIdx, data, check, ecc ? eccCheckBits(config_.ecc) : 0);
    st.injected.merge(flips);
    if (flips.total() == 0)
        return data;

    if (ecc) {
        const SecdedDecoded decoded = secdedDecode(data, check);
        if (decoded.status == EccStatus::Corrected)
            ++st.corrected;
        else if (decoded.status == EccStatus::Uncorrectable)
            ++st.uncorrectable;
        data = decoded.data;
        // Three or more flips can land on (or miscorrect onto) another
        // valid codeword: the decoder is satisfied but the data is
        // wrong. That silent escape is the quantity that matters for
        // the Section 7.1 safety argument, so count it explicitly.
        if (decoded.status != EccStatus::Uncorrectable
            && data != original) {
            ++st.silentErrors;
        }
    } else if (data != original) {
        ++st.silentErrors;
    }
    st.residualBitErrors += static_cast<std::uint64_t>(
        hammingDistance64(data, original));
    return data;
}

void
FaultSink::onAccess(coder::UnitId unit, sram::AccessType type,
                    std::span<const Word> block, std::uint32_t activeMask,
                    std::uint64_t cycle)
{
    if (type != sram::AccessType::Read || !config_.anyFaults()) {
        down_.onAccess(unit, type, block, activeMask, cycle);
        return;
    }

    FaultSiteStats &st = stats_[unit];
    ++st.readAccesses;
    scratchWords_.assign(block.begin(), block.end());
    // Pair 32-bit words into the 64-bit ECC granule; an odd tail word
    // forms a zero-padded codeword of its own.
    for (std::size_t base = 0; base < scratchWords_.size(); base += 2) {
        Word64 data = static_cast<Word64>(scratchWords_[base]);
        const bool hasHigh = base + 1 < scratchWords_.size();
        if (hasHigh)
            data |= static_cast<Word64>(scratchWords_[base + 1]) << 32;
        data = processCodeword(unit, base / 2, data, st);
        scratchWords_[base] = static_cast<Word>(data);
        if (hasHigh)
            scratchWords_[base + 1] = static_cast<Word>(data >> 32);
    }
    down_.onAccess(unit, type, scratchWords_, activeMask, cycle);
}

void
FaultSink::onFetch(coder::UnitId unit, sram::AccessType type,
                   std::span<const Word64> instrs, std::uint64_t cycle)
{
    if (type != sram::AccessType::Read || !config_.anyFaults()) {
        down_.onFetch(unit, type, instrs, cycle);
        return;
    }

    FaultSiteStats &st = stats_[unit];
    ++st.readAccesses;
    scratchInstrs_.assign(instrs.begin(), instrs.end());
    for (std::size_t i = 0; i < scratchInstrs_.size(); ++i) {
        scratchInstrs_[i] =
            processCodeword(unit, i, scratchInstrs_[i], st);
    }
    down_.onFetch(unit, type, scratchInstrs_, cycle);
}

void
FaultSink::onNocPacket(int channel, std::span<const Word> payload,
                       bool instrStream, std::uint64_t cycle)
{
    // Link faults are out of scope: the Section 7.1 hazard lives in the
    // storage arrays, not the wires.
    down_.onNocPacket(channel, payload, instrStream, cycle);
}

FaultSiteStats
FaultSink::totals() const
{
    FaultSiteStats total;
    for (const auto &[unit, st] : stats_)
        total.merge(st);
    return total;
}

} // namespace bvf::fault
