/**
 * @file
 * Fault-injecting AccessSink decorator with per-unit fault-site
 * accounting and an optional SECDED repair stage.
 *
 * Sits between the GPU behavioural model and whatever consumes the
 * access stream (EnergyAccountant, TraceWriter, test probes):
 *
 *     Gpu -> FaultSink -> [ECC decode] -> downstream sink
 *
 * Read data (unit reads and instruction fetches) is corrupted by the
 * configured FaultInjector; with SECDED enabled every 64-bit chunk is
 * encoded, the 72-bit codeword exposed to faults, then decoded --
 * single flips are repaired before the downstream sink sees the data,
 * double flips are counted as uncorrectable and delivered corrupt
 * (fail-soft: the simulation continues and the damage is accounted).
 * Writes and NoC packets pass through untouched; stored-data faults
 * manifest at the read port. With no fault mechanism active the sink
 * forwards spans unmodified, so the default path is bit-identical to
 * not having the sink at all.
 */

#ifndef BVF_FAULT_FAULT_SINK_HH
#define BVF_FAULT_FAULT_SINK_HH

#include <map>
#include <vector>

#include "fault/fault_model.hh"
#include "sram/access_sink.hh"

namespace bvf::fault
{

/** Per-unit fault bookkeeping. */
struct FaultSiteStats
{
    std::uint64_t readAccesses = 0; //!< reads exposed to injection
    std::uint64_t codewords = 0;    //!< 64-bit chunks processed
    FlipBreakdown injected;         //!< raw flips, by mechanism

    std::uint64_t corrected = 0;     //!< codewords repaired by ECC
    std::uint64_t uncorrectable = 0; //!< ECC detected, not repairable
    std::uint64_t silentErrors = 0;  //!< corrupt codewords, no ECC

    /** Bit flips that reached the downstream sink. */
    std::uint64_t residualBitErrors = 0;

    /** Uncorrectable (or silent) codewords per codeword read. */
    double
    uncorrectableRate() const
    {
        return codewords ? static_cast<double>(uncorrectable
                                               + silentErrors)
                               / static_cast<double>(codewords)
                         : 0.0;
    }

    void
    merge(const FaultSiteStats &o)
    {
        readAccesses += o.readAccesses;
        codewords += o.codewords;
        injected.merge(o.injected);
        corrected += o.corrected;
        uncorrectable += o.uncorrectable;
        silentErrors += o.silentErrors;
        residualBitErrors += o.residualBitErrors;
    }
};

/** The decorator. Construct per simulated run. */
class FaultSink : public sram::AccessSink
{
  public:
    /**
     * @param downstream sink receiving the post-fault, post-ECC stream
     * @param config fault mechanisms, seed and ECC scheme
     */
    FaultSink(sram::AccessSink &downstream, const FaultConfig &config);

    void onAccess(coder::UnitId unit, sram::AccessType type,
                  std::span<const Word> block, std::uint32_t activeMask,
                  std::uint64_t cycle) override;
    void onFetch(coder::UnitId unit, sram::AccessType type,
                 std::span<const Word64> instrs,
                 std::uint64_t cycle) override;
    void onNocPacket(int channel, std::span<const Word> payload,
                     bool instrStream, std::uint64_t cycle) override;

    /** Per-unit accounting. */
    const std::map<coder::UnitId, FaultSiteStats> &
    unitStats() const
    {
        return stats_;
    }

    /** Suite-wide totals over all units. */
    FaultSiteStats totals() const;

    const FaultConfig &config() const { return config_; }

  private:
    /**
     * Run one codeword through inject + ECC; updates @p st and returns
     * the data to deliver downstream.
     */
    Word64 processCodeword(coder::UnitId unit, std::uint64_t pairIdx,
                           Word64 data, FaultSiteStats &st);

    sram::AccessSink &down_;
    FaultConfig config_;
    FaultInjector injector_;
    std::map<coder::UnitId, FaultSiteStats> stats_;
    std::vector<Word> scratchWords_;
    std::vector<Word64> scratchInstrs_;
};

} // namespace bvf::fault

#endif // BVF_FAULT_FAULT_SINK_HH
