/**
 * @file
 * SECDED(72,64): single-error-correcting, double-error-detecting
 * extended Hamming code over 64-bit words.
 *
 * Every 64-bit data word carries 8 check bits: 7 Hamming parity bits
 * plus one overall parity bit. A single flipped bit anywhere in the
 * 72-bit codeword (data, Hamming check or overall parity) is located
 * and corrected; any two flips are detected as uncorrectable. This is
 * the classic DRAM/SRAM array protection and the counterweight to the
 * BVF-6T destructive read: it buys back reliability at the cost of
 * 12.5% extra storage whose 0/1 mix the energy accountant must see
 * (check bits change the word's 1-density, which is what BVF prices).
 */

#ifndef BVF_FAULT_SECDED_HH
#define BVF_FAULT_SECDED_HH

#include <cstdint>

#include "common/bitops.hh"

namespace bvf::fault
{

/** ECC protection applied to SRAM units. */
enum class EccScheme
{
    None,
    Secded72_64,
};

/** Display name, e.g. "SECDED(72,64)". */
const char *eccSchemeName(EccScheme scheme);

/** Check bits stored per 64 data bits under @p scheme. */
constexpr int
eccCheckBits(EccScheme scheme)
{
    return scheme == EccScheme::Secded72_64 ? 8 : 0;
}

/** Storage overhead factor (stored bits per data bit). */
constexpr double
eccStorageFactor(EccScheme scheme)
{
    return scheme == EccScheme::Secded72_64 ? 72.0 / 64.0 : 1.0;
}

/** Outcome of decoding one codeword. */
enum class EccStatus
{
    Ok,            //!< no error
    Corrected,     //!< single-bit error located and repaired
    Uncorrectable, //!< double (or detectable multi-bit) error
};

/** Decoded word plus what the decoder had to do. */
struct SecdedDecoded
{
    Word64 data = 0;
    std::uint8_t check = 0; //!< repaired check bits
    EccStatus status = EccStatus::Ok;
    int correctedBit = -1; //!< codeword position fixed, -1 if none
};

/** Compute the 8 check bits protecting @p data. */
std::uint8_t secdedEncode(Word64 data);

/**
 * Decode a possibly corrupted codeword.
 *
 * @param data stored data bits (may contain flips)
 * @param check stored check bits (may contain flips)
 */
SecdedDecoded secdedDecode(Word64 data, std::uint8_t check);

/**
 * Flip codeword bit @p pos (0..71) of (data, check): positions 0..63
 * address data bits, 64..71 the check bits. Test/injection helper.
 */
void secdedFlipBit(Word64 &data, std::uint8_t &check, int pos);

} // namespace bvf::fault

#endif // BVF_FAULT_SECDED_HH
