/**
 * @file
 * Deterministic, seeded fault models for SRAM units.
 *
 * Three physical mechanisms are modelled, all manifesting when data is
 * read out of an array:
 *
 *  - **read disturb** (Section 7.1): the BVF precharge makes a 6T read
 *    of a stored 0 destructive once the bitline capacitance is large
 *    enough. The per-bit flip probability is derived from the
 *    circuit-level transient solver: the peak excursion of the low
 *    storage node is compared against the inverter trip point under a
 *    Gaussian threshold-variation model, so the probability is a
 *    function of (cell kind, cells/bitline, Vdd) rather than a free
 *    parameter. Flips are 0 -> 1 only.
 *  - **soft errors** (SEU): any stored bit flips in either direction
 *    with a configured per-bit, per-access probability.
 *  - **stuck-at faults**: a configured fraction of physical bit sites
 *    is permanently stuck at a deterministic value; the same
 *    (unit, site) always misbehaves identically for a given seed.
 *
 * Everything is driven by one seeded Rng so a fixed (seed, workload)
 * pair reproduces the exact same fault pattern.
 */

#ifndef BVF_FAULT_FAULT_MODEL_HH
#define BVF_FAULT_FAULT_MODEL_HH

#include <cstdint>
#include <map>
#include <utility>

#include "circuit/mem_cell.hh"
#include "coder/bvf_space.hh"
#include "common/rng.hh"
#include "fault/secded.hh"

namespace bvf::fault
{

/** Knobs for fault injection over one simulation. */
struct FaultConfig
{
    bool enabled = false;        //!< master switch (default: no faults)
    std::uint64_t seed = 1;      //!< fault-stream seed

    /** Per-bit flip probability per read access (SEU). */
    double softErrorRate = 0.0;

    /** Per stored-0-bit flip probability per read (read disturb). */
    double readDisturbRate = 0.0;

    /** Fraction of physical bit sites stuck at a fixed value. */
    double stuckAtFraction = 0.0;

    /** ECC protection applied at every SRAM read port. */
    EccScheme ecc = EccScheme::None;

    /** Any fault mechanism active? */
    bool
    anyFaults() const
    {
        return enabled
               && (softErrorRate > 0.0 || readDisturbRate > 0.0
                   || stuckAtFraction > 0.0);
    }
};

/**
 * Per-read-of-a-stored-0 flip probability of @p kind at
 * @p cellsPerBitline column height, derived from the read-disturb
 * transient solver. Zero for every family except the speculative
 * BVF-6T, whose destructive read is the paper's Section 7.1 hazard.
 */
double readDisturbFlipProbability(circuit::CellKind kind,
                                  circuit::TechNode node, double vdd,
                                  int cellsPerBitline);

/** Flip counts by mechanism. */
struct FlipBreakdown
{
    std::uint64_t readDisturb = 0;
    std::uint64_t softError = 0;
    std::uint64_t stuckAt = 0;

    std::uint64_t total() const { return readDisturb + softError + stuckAt; }

    void
    merge(const FlipBreakdown &o)
    {
        readDisturb += o.readDisturb;
        softError += o.softError;
        stuckAt += o.stuckAt;
    }
};

/**
 * Applies the configured fault mechanisms to 72-bit codewords
 * (64 data bits + up to 8 check bits) as they are read.
 *
 * Rare events use geometric gap sampling (one RNG draw per *event*,
 * not per bit), so the zero-overhead of low fault rates is near-free;
 * the resulting stream is still exactly reproducible per seed.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config);

    /**
     * Corrupt one codeword in place.
     *
     * @param unit the unit being read (keys the stuck-at site map)
     * @param pairIdx codeword index within the accessed block
     * @param data 64 data bits
     * @param check stored check bits (ignored when @p checkBits is 0)
     * @param checkBits how many check bits accompany the data (0 or 8)
     * @return flips applied, by mechanism
     */
    FlipBreakdown corrupt(coder::UnitId unit, std::uint64_t pairIdx,
                          Word64 &data, std::uint8_t &check,
                          int checkBits);

    const FaultConfig &config() const { return config_; }

  private:
    /** Stuck-at masks for one (unit, pairIdx) site group. */
    struct StuckSites
    {
        Word64 dataMask = 0;  //!< stuck data positions
        Word64 dataValue = 0; //!< value they are stuck at
        std::uint8_t checkMask = 0;
        std::uint8_t checkValue = 0;
    };

    const StuckSites &stuckSitesFor(coder::UnitId unit,
                                    std::uint64_t pairIdx);

    /** Bits until the next event at probability @p p (geometric). */
    std::int64_t nextGap(double p);

    FaultConfig config_;
    Rng rng_;
    std::int64_t disturbGap_ = -1; //!< counted in eligible (0) bits
    std::int64_t seuGap_ = -1;     //!< counted in all bits
    std::map<std::pair<int, std::uint64_t>, StuckSites> stuckCache_;
};

} // namespace bvf::fault

#endif // BVF_FAULT_FAULT_MODEL_HH
