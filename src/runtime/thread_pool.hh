/**
 * @file
 * Work-stealing thread pool.
 *
 * The repo's first concurrency layer: a fixed set of workers, each with
 * its own double-ended task queue. A worker services its own deque in
 * LIFO order (hot caches for task trees that fan out and join quickly)
 * and, when empty, steals the *oldest* task from a victim's deque in
 * FIFO order, which is the classic Blumofe-Leiserson discipline: old
 * tasks are the big untouched ones worth migrating.
 *
 * Tasks submitted from outside the pool are distributed round-robin so
 * a burst lands spread across workers; tasks submitted from inside a
 * worker go to that worker's own deque, where they are picked up
 * without any cross-thread traffic unless another worker runs dry.
 *
 * The pool keeps per-worker counters (executed tasks, steals, busy
 * nanoseconds) that the bvfd /metrics endpoint exposes as utilization.
 */

#ifndef BVF_RUNTIME_THREAD_POOL_HH
#define BVF_RUNTIME_THREAD_POOL_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bvf::runtime
{

/** Aggregate and per-worker execution counters. */
struct PoolStats
{
    std::uint64_t executed = 0; //!< tasks completed
    std::uint64_t steals = 0;   //!< tasks taken from another worker
    std::uint64_t busyNanos = 0; //!< summed task execution time
    std::uint64_t wallNanos = 0; //!< pool lifetime so far

    /**
     * Mean fraction of pool capacity spent executing tasks, in [0, 1].
     * 4 workers busy half the wall time -> 0.5.
     */
    double utilization(int workers) const;
};

/**
 * Fixed-size work-stealing pool.
 *
 * Lifetime: tasks may be submitted until shutdown() (or destruction);
 * the destructor drains every queued task before joining the workers,
 * so a submitted task is never silently dropped.
 */
class ThreadPool
{
  public:
    /** Spawn @p workers threads (at least 1). */
    explicit ThreadPool(int workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Queue one task. Safe from any thread, including from inside a
     * running task (a worker enqueues onto its own deque).
     */
    void submit(std::function<void()> task);

    /** Worker count the pool was built with. */
    int workers() const { return static_cast<int>(workers_.size()); }

    /** Tasks queued but not yet started (snapshot; racy by nature). */
    std::size_t queueDepth() const;

    /** Execution counters (snapshot). */
    PoolStats stats() const;

    /**
     * Stop accepting work, finish everything queued, join the workers.
     * Idempotent; also run by the destructor.
     */
    void shutdown();

    /**
     * Index of the calling worker within its pool, or -1 when the
     * caller is not a pool thread.
     */
    static int currentWorker();

  private:
    struct Worker
    {
        std::thread thread;
        mutable std::mutex mutex;
        std::deque<std::function<void()>> deque;
        std::uint64_t executed = 0;
        std::uint64_t steals = 0;
        std::uint64_t busyNanos = 0;
    };

    void workerLoop(int self);
    bool popLocal(int self, std::function<void()> &task);
    bool stealFrom(int self, std::function<void()> &task);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::size_t nextQueue_ = 0; //!< round-robin cursor for external submits

    // One shared doorbell: workers sleep here when every deque is dry.
    mutable std::mutex wakeMutex_;
    std::condition_variable wakeCv_;
    std::size_t pending_ = 0; //!< tasks queued and not yet started
    bool stopping_ = false;

    std::chrono::steady_clock::time_point start_;
};

} // namespace bvf::runtime

#endif // BVF_RUNTIME_THREAD_POOL_HH
