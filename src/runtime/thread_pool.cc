/**
 * @file
 * Work-stealing thread pool implementation.
 */

#include "runtime/thread_pool.hh"

#include <chrono>

#include "common/logging.hh"

namespace bvf::runtime
{

namespace
{

/** Which pool (if any) the calling thread belongs to. */
thread_local const ThreadPool *tlsPool = nullptr;
thread_local int tlsWorker = -1;

} // namespace

double
PoolStats::utilization(int workers) const
{
    if (workers <= 0 || wallNanos == 0)
        return 0.0;
    return static_cast<double>(busyNanos)
           / (static_cast<double>(wallNanos)
              * static_cast<double>(workers));
}

ThreadPool::ThreadPool(int workers)
    : start_(std::chrono::steady_clock::now())
{
    panic_if(workers < 1, "thread pool needs at least one worker, got %d",
             workers);
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.push_back(std::make_unique<Worker>());
    for (int i = 0; i < workers; ++i)
        workers_[static_cast<std::size_t>(i)]->thread =
            std::thread([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

int
ThreadPool::currentWorker()
{
    return tlsWorker;
}

void
ThreadPool::submit(std::function<void()> task)
{
    panic_if(!task, "null task submitted to thread pool");
    const bool fromWorker = tlsPool == this && tlsWorker >= 0;
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        // A draining pool still accepts subtasks from its own workers
        // (a running task may fan out); outside submits must stop.
        panic_if(stopping_ && !fromWorker,
                 "submit() on a stopped thread pool");
        if (fromWorker) {
            // A task spawning subtasks keeps them local; idle peers
            // steal.
            target = static_cast<std::size_t>(tlsWorker);
        } else {
            target = nextQueue_;
            nextQueue_ = (nextQueue_ + 1) % workers_.size();
        }
        // pending_ goes up before the task becomes visible: a worker
        // can only decrement after popping, so the counter can never
        // transiently underflow.
        ++pending_;
    }
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->deque.push_back(std::move(task));
    }
    wakeCv_.notify_one();
}

bool
ThreadPool::popLocal(int self, std::function<void()> &task)
{
    Worker &w = *workers_[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.deque.empty())
        return false;
    task = std::move(w.deque.back());
    w.deque.pop_back();
    return true;
}

bool
ThreadPool::stealFrom(int self, std::function<void()> &task)
{
    const std::size_t n = workers_.size();
    for (std::size_t k = 1; k < n; ++k) {
        const std::size_t victim =
            (static_cast<std::size_t>(self) + k) % n;
        Worker &w = *workers_[victim];
        bool stolen = false;
        {
            std::lock_guard<std::mutex> lock(w.mutex);
            if (!w.deque.empty()) {
                task = std::move(w.deque.front());
                w.deque.pop_front();
                stolen = true;
            }
        }
        if (stolen) {
            // Counted under the thief's own mutex, which is the lock
            // stats() reads this counter under.
            Worker &me = *workers_[static_cast<std::size_t>(self)];
            std::lock_guard<std::mutex> lock(me.mutex);
            ++me.steals;
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(int self)
{
    tlsPool = this;
    tlsWorker = self;
    Worker &me = *workers_[static_cast<std::size_t>(self)];
    for (;;) {
        std::function<void()> task;
        if (!popLocal(self, task))
            stealFrom(self, task);
        if (!task) {
            std::unique_lock<std::mutex> lock(wakeMutex_);
            if (stopping_ && pending_ == 0)
                return;
            wakeCv_.wait(lock, [this] {
                return pending_ > 0 || stopping_;
            });
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(wakeMutex_);
            --pending_;
        }
        const auto begin = std::chrono::steady_clock::now();
        task();
        const auto end = std::chrono::steady_clock::now();
        task = nullptr;
        {
            std::lock_guard<std::mutex> lock(me.mutex);
            ++me.executed;
            me.busyNanos += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    end - begin)
                    .count());
        }
    }
}

std::size_t
ThreadPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(wakeMutex_);
    return pending_;
}

PoolStats
ThreadPool::stats() const
{
    PoolStats out;
    for (const auto &w : workers_) {
        std::lock_guard<std::mutex> lock(w->mutex);
        out.executed += w->executed;
        out.steals += w->steals;
        out.busyNanos += w->busyNanos;
    }
    out.wallNanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    return out;
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        stopping_ = true;
    }
    wakeCv_.notify_all();
    for (auto &w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
    }
}

} // namespace bvf::runtime
