/**
 * @file
 * Fork/join task groups over a ThreadPool.
 *
 * A TaskGroup counts the tasks it has spawned and lets the owner block
 * until every one of them has finished. Exceptions do not vanish into
 * a worker thread: the first one thrown by any task is captured and
 * rethrown from wait(), after the whole group has quiesced (later
 * exceptions are dropped -- one failure is enough to fail the join,
 * and the group still guarantees no task is left running).
 */

#ifndef BVF_RUNTIME_TASK_GROUP_HH
#define BVF_RUNTIME_TASK_GROUP_HH

#include <condition_variable>
#include <exception>
#include <mutex>
#include <utility>

#include "runtime/thread_pool.hh"

namespace bvf::runtime
{

/** A joinable set of tasks on one pool. */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool) : pool_(pool) {}

    /** wait() must have been called (or nothing spawned). */
    ~TaskGroup() { wait_nothrow(); }

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Spawn @p fn as one task of this group. */
    template <typename Fn>
    void
    run(Fn &&fn)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++outstanding_;
        }
        pool_.submit([this, fn = std::forward<Fn>(fn)]() mutable {
            try {
                fn();
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!error_)
                    error_ = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(mutex_);
            if (--outstanding_ == 0)
                done_.notify_all();
        });
    }

    /**
     * Block until every spawned task finished; rethrow the first
     * captured exception, if any.
     */
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return outstanding_ == 0; });
        if (error_) {
            std::exception_ptr e = std::exchange(error_, nullptr);
            lock.unlock();
            std::rethrow_exception(e);
        }
    }

  private:
    void
    wait_nothrow()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return outstanding_ == 0; });
    }

    ThreadPool &pool_;
    std::mutex mutex_;
    std::condition_variable done_;
    std::size_t outstanding_ = 0;
    std::exception_ptr error_;
};

} // namespace bvf::runtime

#endif // BVF_RUNTIME_TASK_GROUP_HH
