/**
 * @file
 * Deterministic ordered reduction over a thread pool.
 *
 * parallelMapOrdered() evaluates fn(item) for every item concurrently
 * and returns the results *in submission order*, no matter which worker
 * finished first. Each task writes only its own pre-allocated slot, so
 * there is no merge step whose outcome could depend on scheduling --
 * the returned vector is a pure function of (items, fn), which is what
 * lets a parallel campaign render a report byte-identical to the serial
 * one. The only thing parallelism may reorder is side effects *inside*
 * fn (log lines, journal appends); anything that must be deterministic
 * belongs in the returned value, not in a side effect.
 *
 * Must be called from outside the pool (the caller blocks in
 * TaskGroup::wait(), and a pool worker blocking on its own pool can
 * deadlock a fully-loaded pool).
 */

#ifndef BVF_RUNTIME_ORDERED_HH
#define BVF_RUNTIME_ORDERED_HH

#include <functional>
#include <span>
#include <vector>

#include "runtime/task_group.hh"
#include "runtime/thread_pool.hh"

namespace bvf::runtime
{

/**
 * Map @p fn over @p items on @p pool; results come back in submission
 * order. @p fn receives (item, index) and must be safe to run
 * concurrently with itself. Exceptions propagate (first one wins)
 * after every task has quiesced.
 */
template <typename Item, typename Fn>
auto
parallelMapOrdered(ThreadPool &pool, std::span<const Item> items, Fn fn)
    -> std::vector<decltype(fn(items[0], std::size_t{0}))>
{
    using R = decltype(fn(items[0], std::size_t{0}));
    std::vector<R> results(items.size());
    TaskGroup group(pool);
    for (std::size_t i = 0; i < items.size(); ++i) {
        group.run([&, i] { results[i] = fn(items[i], i); });
    }
    group.wait();
    return results;
}

} // namespace bvf::runtime

#endif // BVF_RUNTIME_ORDERED_HH
