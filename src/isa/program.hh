/**
 * @file
 * A complete GPU program: kernel body, launch geometry and memory images.
 *
 * This is the artifact the workload layer produces and the GPU model
 * executes -- the moral equivalent of a CUDA binary plus its input
 * buffers.
 */

#ifndef BVF_ISA_PROGRAM_HH
#define BVF_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "isa/instruction.hh"

namespace bvf::isa
{

/** Launch geometry (1-D, which all our kernels use). */
struct LaunchDims
{
    int gridBlocks = 1;      //!< blocks in the grid
    int blockThreads = 128;  //!< threads per block (multiple of 32)

    int warpsPerBlock() const { return (blockThreads + 31) / 32; }
    int totalThreads() const { return gridBlocks * blockThreads; }
};

/** Base virtual address of the global segment. */
constexpr std::uint32_t globalSegmentBase = 0x10000u;

/**
 * A runnable program.
 *
 * Memory images are word arrays; the global segment is addressed in
 * bytes starting at globalSegmentBase, the constant and texture segments
 * start at byte 0 of their own address spaces.
 */
struct Program
{
    std::string name;                  //!< owning application name
    std::vector<Instruction> body;     //!< kernel instructions
    LaunchDims launch;

    std::vector<Word> global;          //!< global memory image (words)
    std::vector<Word> constants;       //!< constant segment (words)
    std::vector<Word> texture;         //!< texture segment (words)
    std::uint32_t sharedBytesPerBlock = 0;

    /** Size of the global segment in bytes. */
    std::uint32_t
    globalBytes() const
    {
        return static_cast<std::uint32_t>(global.size() * 4);
    }
};

} // namespace bvf::isa

#endif // BVF_ISA_PROGRAM_HH
