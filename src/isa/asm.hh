/**
 * @file
 * Textual kernel assembler for the SASS-like ISA.
 *
 * The text form is line-oriented:
 *
 *   # comment                 ('#' at line start, '//' anywhere)
 *   .kernel atax              kernel name (rest of line, trimmed)
 *   .launch 12 128            grid blocks, block threads
 *   .shared 512               shared bytes per block (default 0)
 *   .global 4096              global image size in words (zero-filled)
 *   .const 2048               constant image size in words
 *   .texture 1024             texture image size in words
 *   .data global 16 0x1 0x2   fill image words starting at an offset
 *
 *   L0:                       label = index of the next instruction
 *     S2R R1, SR_TIDX
 *     IADD R4, R1, #1         '#' marks an immediate srcB
 *     SETP.LT P2, R10, #6
 *     LDG R16, [R12 + 0]
 *     STG [R13 + 4], R24
 *     @P2 BRA L0, join=L5     guard prefix @P / @!P; label or index
 *     EXIT
 *
 * parseAsm resolves labels and produces an isa::Program; renderAsm is
 * its inverse for canonical programs, and parseAsm(renderAsm(p))
 * reproduces p exactly for every program parseAsm can produce (the
 * fuzz driver checks this on every accepted input).
 *
 * The parser is a syntax layer only: it checks representability
 * (register/predicate/image indices fit their fields, labels resolve)
 * but not semantics -- branch-target sanity, memory extents and
 * termination are the admission verifier's job (analysis/verifier.hh).
 */

#ifndef BVF_ISA_ASM_HH
#define BVF_ISA_ASM_HH

#include <string>
#include <string_view>

#include "common/result.hh"
#include "isa/program.hh"

namespace bvf::isa
{

/**
 * Parse kernel assembly text. Errors are InvalidArgument and name the
 * offending line, e.g. "asm line 7: unknown mnemonic 'LDQ'".
 */
Result<Program> parseAsm(std::string_view text);

/** Render @p program as assembly text parseAsm accepts. */
std::string renderAsm(const Program &program);

} // namespace bvf::isa

#endif // BVF_ISA_ASM_HH
