/**
 * @file
 * Kernel bytecode codec implementation.
 */

#include "isa/bytecode.hh"

#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"

namespace bvf::isa
{

namespace
{

constexpr char kMagic[4] = {'B', 'V', 'F', 'K'};

/** Zero-runs shorter than this ride inside a literal chunk. */
constexpr std::uint32_t kMinZeroRun = 8;

// --- little-endian payload plumbing -----------------------------------

void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU16(std::string &out, std::uint16_t v)
{
    putU8(out, static_cast<std::uint8_t>(v));
    putU8(out, static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::string &out, std::uint32_t v)
{
    putU16(out, static_cast<std::uint16_t>(v));
    putU16(out, static_cast<std::uint16_t>(v >> 16));
}

/** Cursor over the payload; every get fails softly at the end. */
class Reader
{
  public:
    explicit Reader(std::string_view bytes) : bytes_(bytes) {}

    bool
    getU8(std::uint8_t &v)
    {
        if (pos_ >= bytes_.size())
            return false;
        v = static_cast<std::uint8_t>(bytes_[pos_++]);
        return true;
    }

    bool
    getU32(std::uint32_t &v)
    {
        if (bytes_.size() - pos_ < 4)
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(bytes_[pos_ + i]))
                 << (8 * i);
        }
        pos_ += 4;
        return true;
    }

    bool
    getBytes(std::string &v, std::uint32_t n)
    {
        if (bytes_.size() - pos_ < n)
            return false;
        v.assign(bytes_.substr(pos_, n));
        pos_ += n;
        return true;
    }

    bool exhausted() const { return pos_ == bytes_.size(); }
    std::size_t remaining() const { return bytes_.size() - pos_; }

  private:
    std::string_view bytes_;
    std::size_t pos_ = 0;
};

// --- image chunking ----------------------------------------------------

/**
 * Emit @p image as zero-run / literal-run chunks. A chunk tag packs
 * the word count in the upper 31 bits with the literal flag in bit 0;
 * literal chunks are followed by their words, zero chunks by nothing.
 */
void
putImage(std::string &out, const std::vector<Word> &image)
{
    putU32(out, static_cast<std::uint32_t>(image.size()));
    std::size_t i = 0;
    while (i < image.size()) {
        std::size_t z = i;
        while (z < image.size() && image[z] == 0)
            ++z;
        if (z - i >= kMinZeroRun) {
            putU32(out, static_cast<std::uint32_t>((z - i) << 1));
            i = z;
            continue;
        }
        // Literal run: up to (but not including) the next long zero run.
        std::size_t end = i;
        while (end < image.size()) {
            if (image[end] == 0) {
                std::size_t zrun = end;
                while (zrun < image.size() && image[zrun] == 0)
                    ++zrun;
                if (zrun - end >= kMinZeroRun)
                    break;
                end = zrun;
                continue;
            }
            ++end;
        }
        putU32(out,
               static_cast<std::uint32_t>(((end - i) << 1) | 1u));
        for (; i < end; ++i)
            putU32(out, image[i]);
    }
}

Result<void>
getImage(Reader &in, std::vector<Word> &image, const char *space)
{
    const auto corrupt = [&](const char *what) {
        return Error{ErrorCode::Corrupt,
                     strFormat("bytecode: %s image %s", space, what)};
    };
    std::uint32_t words = 0;
    if (!in.getU32(words))
        return corrupt("count missing");
    if (words > kMaxBytecodePayload / 4)
        return corrupt("count exceeds the payload cap");
    image.assign(words, 0);
    std::size_t filled = 0;
    while (filled < words) {
        std::uint32_t tag = 0;
        if (!in.getU32(tag))
            return corrupt("chunk tag missing");
        const std::uint32_t count = tag >> 1;
        if (count == 0 || count > words - filled)
            return corrupt("chunk overruns its image");
        if (tag & 1u) {
            // Literal words: the count must be backed by real bytes
            // before anything is read, so a short hostile payload
            // cannot claim its way into a large copy.
            if (in.remaining() < static_cast<std::size_t>(count) * 4)
                return corrupt("literal chunk overruns the payload");
            for (std::uint32_t i = 0; i < count; ++i) {
                std::uint32_t w = 0;
                (void)in.getU32(w);
                image[filled + i] = w;
            }
        }
        filled += count;
    }
    return {};
}

// --- payload codec -----------------------------------------------------

std::string
encodePayload(const Program &program)
{
    std::string out;
    putU32(out, static_cast<std::uint32_t>(program.name.size()));
    out.append(program.name);
    putU32(out, static_cast<std::uint32_t>(program.launch.gridBlocks));
    putU32(out, static_cast<std::uint32_t>(program.launch.blockThreads));
    putU32(out, program.sharedBytesPerBlock);

    putU32(out, static_cast<std::uint32_t>(program.body.size()));
    for (const Instruction &instr : program.body) {
        putU8(out, static_cast<std::uint8_t>(instr.op));
        putU8(out, instr.dst);
        putU8(out, instr.srcA);
        putU8(out, instr.srcB);
        putU8(out, instr.pred);
        putU8(out, static_cast<std::uint8_t>(
                       (instr.predNegate ? 1u : 0u)
                       | (instr.immB ? 2u : 0u)));
        putU8(out, instr.flags);
        putU8(out, 0); // reserved
        putU32(out, static_cast<std::uint32_t>(instr.imm));
        putU32(out, static_cast<std::uint32_t>(instr.reconv));
    }

    putImage(out, program.global);
    putImage(out, program.constants);
    putImage(out, program.texture);
    return out;
}

Result<Program>
decodePayload(std::string_view payload)
{
    const auto corrupt = [](const char *what) {
        return Error{ErrorCode::Corrupt,
                     strFormat("bytecode: %s", what)};
    };
    Reader in(payload);
    Program prog;

    std::uint32_t nameLen = 0;
    if (!in.getU32(nameLen))
        return corrupt("name length missing");
    if (nameLen > kMaxKernelNameBytes)
        return corrupt("kernel name too long");
    if (!in.getBytes(prog.name, nameLen))
        return corrupt("name bytes missing");

    std::uint32_t gridBlocks = 0;
    std::uint32_t blockThreads = 0;
    if (!in.getU32(gridBlocks) || !in.getU32(blockThreads)
        || !in.getU32(prog.sharedBytesPerBlock)) {
        return corrupt("launch geometry missing");
    }
    prog.launch.gridBlocks = static_cast<int>(gridBlocks);
    prog.launch.blockThreads = static_cast<int>(blockThreads);

    std::uint32_t bodyCount = 0;
    if (!in.getU32(bodyCount))
        return corrupt("instruction count missing");
    // 16 bytes per instruction: check before allocating.
    if (in.remaining() / 16 < bodyCount)
        return corrupt("instruction count overruns the payload");
    prog.body.reserve(bodyCount);
    for (std::uint32_t i = 0; i < bodyCount; ++i) {
        Instruction instr;
        std::uint8_t op = 0;
        std::uint8_t bools = 0;
        std::uint8_t reserved = 0;
        std::uint32_t imm = 0;
        std::uint32_t reconv = 0;
        (void)in.getU8(op);
        (void)in.getU8(instr.dst);
        (void)in.getU8(instr.srcA);
        (void)in.getU8(instr.srcB);
        (void)in.getU8(instr.pred);
        (void)in.getU8(bools);
        (void)in.getU8(instr.flags);
        (void)in.getU8(reserved);
        (void)in.getU32(imm);
        if (!in.getU32(reconv))
            return corrupt("instruction record truncated");
        if (op >= static_cast<std::uint8_t>(Opcode::NumOpcodes))
            return corrupt("unknown opcode");
        if (bools & ~3u)
            return corrupt("reserved instruction bits set");
        if (reserved != 0)
            return corrupt("reserved instruction byte set");
        instr.op = static_cast<Opcode>(op);
        instr.predNegate = (bools & 1u) != 0;
        instr.immB = (bools & 2u) != 0;
        instr.imm = static_cast<std::int32_t>(imm);
        instr.reconv = static_cast<std::int32_t>(reconv);
        prog.body.push_back(instr);
    }

    if (auto r = getImage(in, prog.global, "global"); !r.ok())
        return r.error();
    if (auto r = getImage(in, prog.constants, "constant"); !r.ok())
        return r.error();
    if (auto r = getImage(in, prog.texture, "texture"); !r.ok())
        return r.error();
    if (!in.exhausted())
        return corrupt("trailing bytes after the texture image");
    return prog;
}

} // namespace

std::string
encodeProgram(const Program &program)
{
    const std::string payload = encodePayload(program);
    std::string out;
    out.reserve(kBytecodeHeaderBytes + payload.size());
    out.append(kMagic, sizeof kMagic);
    putU8(out, kBytecodeVersion);
    putU8(out, 0);  // reserved
    putU16(out, 0); // flags
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    Crc32 crc;
    crc.update(out.data(), out.size());
    crc.update(payload.data(), payload.size());
    putU32(out, crc.value());
    out.append(payload);
    return out;
}

Result<Program>
decodeProgram(std::string_view bytes)
{
    if (bytes.size() < kBytecodeHeaderBytes)
        return Error{ErrorCode::Truncated,
                     "bytecode: input shorter than the frame header"};
    if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
        return Error{ErrorCode::Corrupt, "bytecode: bad magic"};
    const auto version = static_cast<std::uint8_t>(bytes[4]);
    if (version != kBytecodeVersion) {
        return Error{ErrorCode::Unsupported,
                     strFormat("bytecode: version %u not supported "
                               "(want %u)",
                               unsigned(version),
                               unsigned(kBytecodeVersion))};
    }
    if (bytes[5] != 0 || bytes[6] != 0 || bytes[7] != 0)
        return Error{ErrorCode::Corrupt,
                     "bytecode: reserved header bits set"};
    std::uint32_t length = 0;
    std::uint32_t wireCrc = 0;
    for (int i = 0; i < 4; ++i) {
        length |= static_cast<std::uint32_t>(
                      static_cast<std::uint8_t>(bytes[8 + i]))
                  << (8 * i);
        wireCrc |= static_cast<std::uint32_t>(
                       static_cast<std::uint8_t>(bytes[12 + i]))
                   << (8 * i);
    }
    // An oversized length is damage, not a request to buffer gigabytes.
    if (length > kMaxBytecodePayload)
        return Error{ErrorCode::Corrupt,
                     "bytecode: length exceeds the payload cap"};
    if (bytes.size() < kBytecodeHeaderBytes + length)
        return Error{ErrorCode::Truncated,
                     "bytecode: input shorter than its length field"};
    if (bytes.size() > kBytecodeHeaderBytes + length)
        return Error{ErrorCode::Corrupt,
                     "bytecode: trailing bytes after the frame"};

    const std::string_view payload =
        bytes.substr(kBytecodeHeaderBytes, length);
    Crc32 crc;
    crc.update(bytes.data(), 12);
    crc.update(payload.data(), payload.size());
    if (crc.value() != wireCrc)
        return Error{ErrorCode::Corrupt, "bytecode: CRC mismatch"};

    auto decoded = decodePayload(payload);
    if (!decoded.ok())
        return decoded.error();

    // Strictness backstop: the only accepted inputs are exactly the
    // encoder's outputs, so decode-then-reencode is byte-identical by
    // construction (non-canonical image chunking, stray name bytes and
    // the like all land here).
    if (encodeProgram(decoded.value()) != bytes) {
        return Error{ErrorCode::Corrupt,
                     "bytecode: non-canonical encoding"};
    }
    return decoded;
}

} // namespace bvf::isa
