/**
 * @file
 * The PTX-like operation set executed by the GPU model.
 *
 * This is a compact SASS-style ISA: enough integer/FP arithmetic to give
 * kernels realistic value behaviour, the full set of memory spaces the
 * paper's BVF units cover (global, shared, constant, texture), and
 * structured SIMT control flow. Opcodes are ordered roughly by dynamic
 * frequency so that encoded opcode fields are low-biased (see
 * isa/encoding.hh).
 */

#ifndef BVF_ISA_OPCODE_HH
#define BVF_ISA_OPCODE_HH

#include <cstdint>
#include <string>

namespace bvf::isa
{

/** Operation codes. Values are part of the binary encoding. */
enum class Opcode : std::uint8_t
{
    Ffma = 0,  //!< d = a * b + d (fp32)
    Fadd,      //!< d = a + b (fp32)
    Fmul,      //!< d = a * b (fp32)
    IAdd,      //!< d = a + b
    Mov,       //!< d = b (register or immediate)
    Ldg,       //!< global load:  d = mem[a + imm]
    Stg,       //!< global store: mem[a + imm] = b
    IMad,      //!< d = a * b + d
    S2R,       //!< d = special register (flags selects which)
    SetP,      //!< pred[dst] = compare(a, b) (flags select cmp)
    Lds,       //!< shared load:  d = smem[a + imm]
    Sts,       //!< shared store: smem[a + imm] = b
    IMul,      //!< d = a * b
    ISub,      //!< d = a - b
    Shl,       //!< d = a << (b & 31)
    Shr,       //!< d = a >> (b & 31) (logical)
    And,       //!< d = a & b
    Or,        //!< d = a | b
    Xor,       //!< d = a ^ b
    Ldc,       //!< constant load: d = cmem[a + imm]
    Ldt,       //!< texture load:  d = tmem[a + imm]
    I2F,       //!< d = float(a)
    F2I,       //!< d = int(a_float)
    Clz,       //!< d = count leading zeros of a
    Min,       //!< d = min(a, b) signed
    Max,       //!< d = max(a, b) signed
    // Control opcodes: these clear the encoding framing bits (they are
    // the statistical minority that keeps Table 2 masks "statistical").
    Bra,       //!< predicated branch to imm, reconverge at reconv
    Exit,      //!< warp terminates
    Bar,       //!< block-wide barrier
    Nop,       //!< no operation
    NumOpcodes,
};

/** Special registers selectable by S2R. */
enum class SpecialReg : std::uint8_t
{
    LaneId = 0,   //!< lane within the warp [0,32)
    WarpId,       //!< warp within the block
    TidX,         //!< thread id within the block
    CtaIdX,       //!< block id within the grid
    NTidX,        //!< block dimension
    GridDimX,     //!< grid dimension
};

/** Comparison selector for SetP (carried in the flags field). */
enum class CmpOp : std::uint8_t
{
    Lt = 0,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
};

/** Mnemonic, e.g. "FFMA". */
std::string opcodeName(Opcode op);

/** Does the opcode access memory? */
bool isMemoryOp(Opcode op);

/** Does the opcode read from memory? */
bool isLoadOp(Opcode op);

/** Does the opcode write to memory? */
bool isStoreOp(Opcode op);

/** Control-flow / no-data opcodes (clear the encoding framing bits). */
bool isControlOp(Opcode op);

/** Does the opcode produce a destination register value? */
bool writesRegister(Opcode op);

/** Does the opcode read the srcA register? */
bool readsSrcA(Opcode op);

/** Does the opcode read the srcB register (when not immediate)? */
bool readsSrcB(Opcode op);

/** Does the opcode read its own destination register (d = a * b + d)? */
bool readsDst(Opcode op);

/** Execution latency in core cycles (dependency-visible). */
int opcodeLatency(Opcode op);

} // namespace bvf::isa

#endif // BVF_ISA_OPCODE_HH
