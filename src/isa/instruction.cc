/**
 * @file
 * Instruction printing.
 */

#include "isa/instruction.hh"

#include "common/logging.hh"

namespace bvf::isa
{

std::string
Instruction::toString() const
{
    std::string out = opcodeName(op);
    if (pred != predTrue || predNegate) {
        out = strFormat("@%sP%d %s", predNegate ? "!" : "", pred,
                        out.c_str());
    }
    if (writesRegister(op))
        out += strFormat(" R%d", dst);
    if (op == Opcode::SetP)
        out += strFormat(" P%d", dst);
    if (readsSrcA(op))
        out += strFormat(", R%d", srcA);
    if (readsSrcB(op)) {
        if (immB)
            out += strFormat(", %d", imm);
        else
            out += strFormat(", R%d", srcB);
    }
    if (isMemoryOp(op))
        out += strFormat(" [R%d + %d]", srcA, imm);
    if (op == Opcode::Bra)
        out += strFormat(" -> %d (join %d)", imm, reconv);
    return out;
}

} // namespace bvf::isa
