/**
 * @file
 * Per-architecture 64-bit instruction encodings.
 *
 * We cannot ship NVIDIA's proprietary SASS encodings, so this module
 * synthesizes one encoding per GPU generation with the statistical
 * property the paper measures (Fig. 14 / Table 2): a small set of
 * framing/default-field bit positions is 1 in the large majority of
 * instructions, while every operand-carrying position is biased towards
 * 0 (operand values -- register indices, immediates, opcode numbers --
 * are small in realistic code). The framing positions of each generation
 * are exactly the bits of the paper's Table 2 masks, so running the mask
 * extractor over assembled binaries reproduces the published constants.
 *
 * Control-flow opcodes (BRA/EXIT/BAR/NOP) clear all framing bits except
 * the lowest, mirroring how real encodings mark instruction classes;
 * since control ops are a small fraction of static code, the framing
 * positions remain majority-1.
 */

#ifndef BVF_ISA_ENCODING_HH
#define BVF_ISA_ENCODING_HH

#include <array>
#include <vector>

#include "common/bitops.hh"
#include "isa/instruction.hh"

namespace bvf::isa
{

/** GPU architecture generations with distinct encodings (Table 2). */
enum class GpuArch
{
    Fermi,
    Kepler,
    Maxwell,
    Pascal,
};

/** Display name, e.g. "Pascal". */
std::string gpuArchName(GpuArch arch);

/** All generations, in chronological order. */
const std::vector<GpuArch> &allGpuArchs();

/**
 * The paper's Table 2 ISA preference mask for @p arch. Framing bit
 * positions of our synthetic encodings equal these constants by design.
 */
Word64 paperIsaMask(GpuArch arch);

/**
 * Bidirectional instruction <-> 64-bit binary mapping for one
 * architecture generation.
 */
class InstructionEncoder
{
  public:
    explicit InstructionEncoder(GpuArch arch);

    GpuArch arch() const { return arch_; }

    /** Assemble one instruction into its 64-bit binary form. */
    Word64 encode(const Instruction &instr) const;

    /**
     * Disassemble a binary word. The reconvergence index of branches is
     * carried out-of-band (Instruction::reconv is left 0).
     */
    Instruction decode(Word64 binary) const;

    /** Assemble a whole kernel body. */
    std::vector<Word64> encode(const std::vector<Instruction> &body) const;

    /** Framing mask (equals paperIsaMask(arch)). */
    Word64 framingMask() const { return framing_; }

  private:
    /** Bit positions available for operand fields (mask zeros), LSB up. */
    struct Field
    {
        int offset; //!< index into fieldPositions_
        int width;
    };

    Word64 packField(Field f, Word64 value) const;
    Word64 unpackField(Field f, Word64 binary) const;

    GpuArch arch_;
    Word64 framing_;
    std::vector<int> fieldPositions_;

    Field opcodeField_;
    Field dstField_;
    Field srcAField_;
    Field srcBField_;
    Field predField_;
    Field flagsField_;
    Field immField_;
};

/**
 * Statistical mask extraction (Section 4.3): for each bit position,
 * output 1 iff a strict majority of the corpus has a 1 there.
 */
Word64 extractPreferenceMask(std::span<const Word64> corpus);

/** Per-position probability of bit value 1 over a corpus (Fig. 14). */
std::vector<double> bitPositionOneProbability(
    std::span<const Word64> corpus);

/** Static opcode counts of a kernel body, indexed by Opcode value. */
std::array<std::uint32_t, static_cast<std::size_t>(Opcode::NumOpcodes)>
opcodeHistogram(const std::vector<Instruction> &body);

} // namespace bvf::isa

#endif // BVF_ISA_ENCODING_HH
