/**
 * @file
 * Decoded instruction representation.
 *
 * This is the form the SM pipeline executes. The assembler maps it to and
 * from the per-architecture 64-bit binary encodings (isa/encoding.hh).
 */

#ifndef BVF_ISA_INSTRUCTION_HH
#define BVF_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcode.hh"

namespace bvf::isa
{

/** Number of addressable general-purpose registers per thread. */
constexpr int numRegisters = 64;

/** Number of predicate registers per thread. */
constexpr int numPredicates = 4;

/** Sentinel predicate value meaning "unpredicated" (PT). */
constexpr int predTrue = 0;

/**
 * One decoded instruction.
 *
 * Fields not meaningful for an opcode must be zero so that encoding is
 * canonical (encode/decode round-trips exactly).
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    std::uint8_t dst = 0;   //!< destination register (or SetP pred index)
    std::uint8_t srcA = 0;  //!< first source register / address register
    std::uint8_t srcB = 0;  //!< second source register / store-data reg
    std::uint8_t pred = predTrue; //!< guard predicate (0 = always)
    bool predNegate = false;      //!< execute when predicate is false
    bool immB = false;            //!< srcB replaced by imm
    std::uint8_t flags = 0;       //!< CmpOp for SetP; SpecialReg for S2R
    std::int32_t imm = 0;         //!< immediate / address offset / target

    /**
     * Reconvergence point for Bra (instruction index); carried beside
     * the binary encoding the way real hardware carries it in SSY-style
     * control blocks. Not part of the 64-bit encoding's information
     * content for non-branches.
     */
    std::int32_t reconv = 0;

    bool operator==(const Instruction &o) const = default;

    /** Assembly-like rendering for debugging. */
    std::string toString() const;
};

} // namespace bvf::isa

#endif // BVF_ISA_INSTRUCTION_HH
