/**
 * @file
 * Synthetic per-generation instruction encodings.
 */

#include "isa/encoding.hh"

#include "common/logging.hh"

namespace bvf::isa
{

std::string
gpuArchName(GpuArch arch)
{
    switch (arch) {
      case GpuArch::Fermi:
        return "Fermi";
      case GpuArch::Kepler:
        return "Kepler";
      case GpuArch::Maxwell:
        return "Maxwell";
      case GpuArch::Pascal:
        return "Pascal";
    }
    panic("unknown architecture");
}

const std::vector<GpuArch> &
allGpuArchs()
{
    static const std::vector<GpuArch> archs = {
        GpuArch::Fermi, GpuArch::Kepler, GpuArch::Maxwell, GpuArch::Pascal,
    };
    return archs;
}

Word64
paperIsaMask(GpuArch arch)
{
    // Table 2 of the paper.
    switch (arch) {
      case GpuArch::Fermi:
        return 0x4000000000019c03ull;
      case GpuArch::Kepler:
        return 0xe0800000001c0012ull;
      case GpuArch::Maxwell:
        return 0x4818000000070205ull;
      case GpuArch::Pascal:
        return 0x4818000000070201ull;
    }
    panic("unknown architecture");
}

namespace
{

/**
 * Frequency-ordered operand code tables.
 *
 * Real ISAs assign encodings with expected operand statistics in mind;
 * we do the same: the register numbers and opcodes that dominate
 * compiled kernels get the numerically smallest codes, which keeps
 * every bit of the operand fields biased towards 0 (the property
 * Figure 14 measures). Orders were profiled over the 58-application
 * corpus; registers/opcodes outside the profile follow in ascending
 * order.
 */
constexpr int dstFrequencyOrder[] = {
    24, 12, 25, 0, 13, 5, 10, 6, 4, 2, 7, 8, 1, 27, 16, 11, 9, 3, 17,
    18, 19, 26, 15, 14, 20, 21,
};

constexpr int srcAFrequencyOrder[] = {
    0, 12, 5, 25, 13, 24, 10, 4, 16, 14, 6, 2, 7, 8, 18, 9, 19, 17, 1,
    27, 15, 20,
};

constexpr int srcBFrequencyOrder[] = {
    0, 17, 16, 5, 6, 24, 7, 11, 4, 3, 1, 8, 19, 27, 15, 20, 18, 26, 9,
    25,
};

constexpr int opFrequencyOrder[] = {
    4,  3,  14, 5,  8,  0,  1,  18, 2,  15, 16, 6,  26, 9,  27, 7,
    12, 28, 11, 10, 25, 19, 20,
};

/** Build value->code and code->value tables from a frequency order. */
struct CodeTable
{
    std::array<std::uint8_t, 256> toCode{};
    std::array<std::uint8_t, 256> fromCode{};

    CodeTable(const int *order, std::size_t orderLen, int domain)
    {
        std::array<bool, 256> seen{};
        int next = 0;
        auto assign = [&](int value) {
            toCode[static_cast<std::size_t>(value)] =
                static_cast<std::uint8_t>(next);
            fromCode[static_cast<std::size_t>(next)] =
                static_cast<std::uint8_t>(value);
            seen[static_cast<std::size_t>(value)] = true;
            ++next;
        };
        for (std::size_t i = 0; i < orderLen; ++i)
            assign(order[i]);
        for (int v = 0; v < domain; ++v) {
            if (!seen[static_cast<std::size_t>(v)])
                assign(v);
        }
    }
};

const CodeTable &
dstCodes()
{
    static const CodeTable table(dstFrequencyOrder,
                                 std::size(dstFrequencyOrder),
                                 numRegisters);
    return table;
}

const CodeTable &
srcACodes()
{
    static const CodeTable table(srcAFrequencyOrder,
                                 std::size(srcAFrequencyOrder),
                                 numRegisters);
    return table;
}

const CodeTable &
srcBCodes()
{
    static const CodeTable table(srcBFrequencyOrder,
                                 std::size(srcBFrequencyOrder),
                                 numRegisters);
    return table;
}

const CodeTable &
opCodes()
{
    static const CodeTable table(opFrequencyOrder,
                                 std::size(opFrequencyOrder),
                                 static_cast<int>(Opcode::NumOpcodes));
    return table;
}

} // namespace

InstructionEncoder::InstructionEncoder(GpuArch arch)
    : arch_(arch), framing_(paperIsaMask(arch))
{
    // Operand fields are laid over the non-framing positions, LSB first.
    for (int pos = 0; pos < 64; ++pos) {
        if (!bitAt64(framing_, pos))
            fieldPositions_.push_back(pos);
    }

    int cursor = 0;
    auto take = [this, &cursor](int width) {
        panic_if(cursor + width
                     > static_cast<int>(fieldPositions_.size()),
                 "encoding for %s has too few operand positions",
                 gpuArchName(arch_).c_str());
        Field f{cursor, width};
        cursor += width;
        return f;
    };

    opcodeField_ = take(7);
    dstField_ = take(8);
    srcAField_ = take(8);
    srcBField_ = take(8);
    predField_ = take(3); // 2-bit predicate index + negate flag
    flagsField_ = take(4); // 3-bit flags + immB flag
    immField_ = take(16);
}

Word64
InstructionEncoder::packField(Field f, Word64 value) const
{
    Word64 out = 0;
    for (int i = 0; i < f.width; ++i) {
        if ((value >> i) & 1)
            out |= Word64(1) << fieldPositions_[
                static_cast<std::size_t>(f.offset + i)];
    }
    return out;
}

Word64
InstructionEncoder::unpackField(Field f, Word64 binary) const
{
    Word64 value = 0;
    for (int i = 0; i < f.width; ++i) {
        if ((binary >> fieldPositions_[
                 static_cast<std::size_t>(f.offset + i)]) & 1)
            value |= Word64(1) << i;
    }
    return value;
}

Word64
InstructionEncoder::encode(const Instruction &instr) const
{
    Word64 bin = 0;

    // Framing: data-path instructions set all framing bits; control ops
    // keep only the lowest one (the "valid" position).
    if (isControlOp(instr.op)) {
        const int lowest = std::countr_zero(framing_);
        bin |= Word64(1) << lowest;
    } else {
        bin |= framing_;
    }

    bin |= packField(opcodeField_,
                     opCodes().toCode[static_cast<std::size_t>(instr.op)]);
    bin |= packField(dstField_, dstCodes().toCode[instr.dst]);
    bin |= packField(srcAField_, srcACodes().toCode[instr.srcA]);
    bin |= packField(srcBField_, srcBCodes().toCode[instr.srcB]);
    const Word64 pred_bits =
        static_cast<Word64>(instr.pred & 0x3)
        | (instr.predNegate ? 0x4u : 0u);
    bin |= packField(predField_, pred_bits);
    const Word64 flag_bits =
        static_cast<Word64>(instr.flags & 0x7) | (instr.immB ? 0x8u : 0u);
    bin |= packField(flagsField_, flag_bits);
    bin |= packField(immField_,
                     static_cast<Word64>(
                         static_cast<std::uint32_t>(instr.imm) & 0xffffu));
    return bin;
}

Instruction
InstructionEncoder::decode(Word64 binary) const
{
    Instruction instr;
    const Word64 op_code = unpackField(opcodeField_, binary);
    fatal_if(op_code >= static_cast<Word64>(Opcode::NumOpcodes),
             "invalid opcode %llu in binary",
             static_cast<unsigned long long>(op_code));
    instr.op = static_cast<Opcode>(
        opCodes().fromCode[static_cast<std::size_t>(op_code)]);
    instr.dst = dstCodes().fromCode[unpackField(dstField_, binary) & 0xff];
    instr.srcA =
        srcACodes().fromCode[unpackField(srcAField_, binary) & 0xff];
    instr.srcB =
        srcBCodes().fromCode[unpackField(srcBField_, binary) & 0xff];
    const Word64 pred_bits = unpackField(predField_, binary);
    instr.pred = static_cast<std::uint8_t>(pred_bits & 0x3);
    instr.predNegate = (pred_bits & 0x4) != 0;
    const Word64 flag_bits = unpackField(flagsField_, binary);
    instr.flags = static_cast<std::uint8_t>(flag_bits & 0x7);
    instr.immB = (flag_bits & 0x8) != 0;
    // Sign-extend the 16-bit immediate.
    const auto raw = static_cast<std::uint16_t>(unpackField(immField_,
                                                            binary));
    instr.imm = static_cast<std::int16_t>(raw);
    return instr;
}

std::vector<Word64>
InstructionEncoder::encode(const std::vector<Instruction> &body) const
{
    std::vector<Word64> out;
    out.reserve(body.size());
    for (const Instruction &i : body)
        out.push_back(encode(i));
    return out;
}

Word64
extractPreferenceMask(std::span<const Word64> corpus)
{
    if (corpus.empty())
        return 0;
    std::uint64_t ones[64] = {};
    for (Word64 w : corpus) {
        for (int pos = 0; pos < 64; ++pos) {
            if ((w >> pos) & 1)
                ++ones[pos];
        }
    }
    Word64 mask = 0;
    for (int pos = 0; pos < 64; ++pos) {
        if (ones[pos] * 2 > corpus.size())
            mask |= Word64(1) << pos;
    }
    return mask;
}

std::vector<double>
bitPositionOneProbability(std::span<const Word64> corpus)
{
    std::vector<double> probs(64, 0.0);
    if (corpus.empty())
        return probs;
    for (Word64 w : corpus) {
        for (int pos = 0; pos < 64; ++pos)
            probs[static_cast<std::size_t>(pos)] += bitAt64(w, pos);
    }
    for (double &p : probs)
        p /= static_cast<double>(corpus.size());
    return probs;
}

std::array<std::uint32_t, static_cast<std::size_t>(Opcode::NumOpcodes)>
opcodeHistogram(const std::vector<Instruction> &body)
{
    std::array<std::uint32_t, static_cast<std::size_t>(Opcode::NumOpcodes)>
        counts{};
    for (const Instruction &instr : body) {
        const auto op = static_cast<std::size_t>(instr.op);
        if (op < counts.size())
            ++counts[op];
    }
    return counts;
}

} // namespace bvf::isa
