/**
 * @file
 * Kernel assembler / disassembler implementation.
 */

#include "isa/asm.hh"

#include <cctype>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace bvf::isa
{

namespace
{

/** Image-size cap in words; large enough for every suite kernel. */
constexpr std::int64_t kMaxImageWords = 1 << 20;

/** Instruction-count cap; matches what a bytecode frame can carry. */
constexpr std::size_t kMaxBodyInstructions = 1u << 16;

const char *const kSpecialRegNames[6] = {
    "SR_LANEID", "SR_WARPID", "SR_TIDX",
    "SR_CTAIDX", "SR_NTIDX",  "SR_GRIDDIMX",
};

const char *const kCmpNames[6] = {"LT", "LE", "GT", "GE", "EQ", "NE"};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_'
           || c == '.';
}

/**
 * One source line under parse. Every helper fails softly: the first
 * failure latches a message and later calls become no-ops, so call
 * sites can chain reads and check ok() once.
 */
class LineCursor
{
  public:
    explicit LineCursor(std::string_view text) : text_(text) {}

    bool ok() const { return ok_; }
    const std::string &what() const { return what_; }

    void
    fail(std::string message)
    {
        if (ok_) {
            ok_ = false;
            what_ = std::move(message);
        }
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t')) {
            ++pos_;
        }
    }

    bool
    atEnd()
    {
        skipWs();
        return pos_ >= text_.size();
    }

    char
    peek()
    {
        skipWs();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        if (!tryConsume(c))
            fail(strFormat("expected '%c'", c));
    }

    bool
    tryConsume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    /** Everything left on the line, without surrounding whitespace. */
    std::string
    rest()
    {
        skipWs();
        std::size_t end = text_.size();
        while (end > pos_
               && (text_[end - 1] == ' ' || text_[end - 1] == '\t')) {
            --end;
        }
        const std::string out(text_.substr(pos_, end - pos_));
        pos_ = text_.size();
        return out;
    }

    /** Identifier: [A-Za-z0-9_.]+ (empty = failure). */
    std::string
    ident()
    {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < text_.size() && isIdentChar(text_[pos_]))
            ++pos_;
        if (pos_ == start) {
            fail("expected an identifier");
            return {};
        }
        return std::string(text_.substr(start, pos_ - start));
    }

    /**
     * Signed integer, decimal or 0x hex. Magnitudes are capped at
     * 2^32 - 1 so accumulation cannot overflow; callers range-check
     * further.
     */
    std::int64_t
    integer()
    {
        skipWs();
        bool neg = false;
        if (tryConsume('-'))
            neg = true;
        else
            (void)tryConsume('+');
        skipWs();
        std::int64_t base = 10;
        if (pos_ + 1 < text_.size() && text_[pos_] == '0'
            && (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
            base = 16;
            pos_ += 2;
        }
        std::int64_t value = 0;
        std::size_t digits = 0;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            int d;
            if (c >= '0' && c <= '9')
                d = c - '0';
            else if (base == 16 && c >= 'a' && c <= 'f')
                d = c - 'a' + 10;
            else if (base == 16 && c >= 'A' && c <= 'F')
                d = c - 'A' + 10;
            else
                break;
            value = value * base + d;
            ++digits;
            ++pos_;
            if (value > 0xffffffffll) {
                fail("number out of range");
                return 0;
            }
        }
        if (digits == 0) {
            fail("expected a number");
            return 0;
        }
        return neg ? -value : value;
    }

    /** 32-bit word (for image data); negatives wrap like C casts. */
    Word
    word()
    {
        const std::int64_t v = integer();
        if (!ok_)
            return 0;
        if (v < std::numeric_limits<std::int32_t>::min()
            || v > 0xffffffffll) {
            fail("word out of range");
            return 0;
        }
        return static_cast<Word>(static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(v)));
    }

    /** 32-bit signed immediate. */
    std::int32_t
    imm32()
    {
        const std::int64_t v = integer();
        if (!ok_)
            return 0;
        if (v < std::numeric_limits<std::int32_t>::min()
            || v > std::numeric_limits<std::int32_t>::max()) {
            fail("immediate out of range");
            return 0;
        }
        return static_cast<std::int32_t>(v);
    }

    /** Register operand "R<n>", n in [0, 255]. */
    std::uint8_t
    reg()
    {
        return indexed('R', "register");
    }

    /** Predicate operand "P<n>", n in [0, 255]. */
    std::uint8_t
    pred()
    {
        return indexed('P', "predicate");
    }

    void
    expectEnd()
    {
        if (!atEnd())
            fail("trailing operands");
    }

  private:
    std::uint8_t
    indexed(char prefix, const char *kind)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != prefix) {
            fail(strFormat("expected a %s (%c<n>)", kind, prefix));
            return 0;
        }
        ++pos_;
        if (pos_ >= text_.size()
            || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            fail(strFormat("expected a %s index", kind));
            return 0;
        }
        const std::int64_t n = integer();
        if (!ok_)
            return 0;
        if (n < 0 || n > 255) {
            fail(strFormat("%s index out of range", kind));
            return 0;
        }
        return static_cast<std::uint8_t>(n);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string what_;
};

struct SourceLine
{
    int number = 0;    //!< 1-based line number in the input
    std::string text;  //!< comment-stripped, trimmed
};

/** Comment-strip and trim every line, keeping line numbers. */
std::vector<SourceLine>
splitLines(std::string_view text)
{
    std::vector<SourceLine> lines;
    int number = 0;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        const bool last = end == std::string_view::npos;
        if (last)
            end = text.size();
        std::string_view line = text.substr(start, end - start);
        ++number;
        start = end + 1;

        if (const auto slash = line.find("//");
            slash != std::string_view::npos) {
            line = line.substr(0, slash);
        }
        std::size_t b = 0;
        while (b < line.size()
               && (line[b] == ' ' || line[b] == '\t' || line[b] == '\r')) {
            ++b;
        }
        std::size_t e = line.size();
        while (e > b
               && (line[e - 1] == ' ' || line[e - 1] == '\t'
                   || line[e - 1] == '\r')) {
            --e;
        }
        line = line.substr(b, e - b);
        if (!line.empty() && line[0] != '#')
            lines.push_back({number, std::string(line)});
        if (last)
            break;
    }
    return lines;
}

bool
isLabelLine(const std::string &text)
{
    if (text.size() < 2 || text.back() != ':')
        return false;
    for (std::size_t i = 0; i + 1 < text.size(); ++i) {
        if (!isIdentChar(text[i]))
            return false;
    }
    return true;
}

Opcode
opcodeFromMnemonic(const std::string &m)
{
    for (int op = 0; op < static_cast<int>(Opcode::NumOpcodes); ++op) {
        if (opcodeName(static_cast<Opcode>(op)) == m)
            return static_cast<Opcode>(op);
    }
    return Opcode::NumOpcodes;
}

class Assembler
{
  public:
    explicit Assembler(std::string_view text) : lines_(splitLines(text))
    {
    }

    Result<Program>
    run()
    {
        collectLabels();
        for (const SourceLine &line : lines_) {
            if (failed_)
                break;
            if (isLabelLine(line.text))
                continue;
            if (line.text[0] == '.')
                directive(line);
            else
                instruction(line);
        }
        if (failed_)
            return error_;
        return std::move(prog_);
    }

  private:
    void
    fail(int line, const std::string &what)
    {
        if (!failed_) {
            failed_ = true;
            error_ = Error{ErrorCode::InvalidArgument,
                           strFormat("asm line %d: %s", line,
                                     what.c_str())};
        }
    }

    void
    collectLabels()
    {
        int index = 0;
        for (const SourceLine &line : lines_) {
            if (isLabelLine(line.text)) {
                const std::string name =
                    line.text.substr(0, line.text.size() - 1);
                if (labels_.count(name)) {
                    fail(line.number,
                         "duplicate label '" + name + "'");
                    return;
                }
                labels_[name] = index;
            } else if (line.text[0] != '.') {
                ++index;
            }
        }
    }

    void
    directive(const SourceLine &line)
    {
        LineCursor cur(line.text);
        cur.expect('.');
        const std::string name = cur.ident();
        if (!cur.ok()) {
            fail(line.number, cur.what());
            return;
        }
        if (name == "kernel") {
            kernelName(line, cur);
        } else if (name == "launch") {
            launchDims(line, cur);
        } else if (name == "shared") {
            sharedSize(line, cur);
        } else if (name == "global" || name == "const"
                   || name == "texture") {
            imageSize(line, cur, name);
        } else if (name == "data") {
            imageData(line, cur);
        } else {
            fail(line.number, "unknown directive '." + name + "'");
        }
    }

    void
    kernelName(const SourceLine &line, LineCursor &cur)
    {
        // The name is the rest of the line verbatim (suite names carry
        // '+' and '-'), minus surrounding whitespace.
        const std::string name = cur.rest();
        if (name.empty()) {
            fail(line.number, "expected a kernel name");
            return;
        }
        prog_.name = name;
    }

    void
    launchDims(const SourceLine &line, LineCursor &cur)
    {
        const std::int64_t grid = cur.integer();
        const std::int64_t block = cur.integer();
        cur.expectEnd();
        if (!cur.ok()) {
            fail(line.number, cur.what());
            return;
        }
        if (grid < 0 || grid > std::numeric_limits<int>::max()
            || block < 0 || block > std::numeric_limits<int>::max()) {
            fail(line.number, "launch geometry out of range");
            return;
        }
        prog_.launch.gridBlocks = static_cast<int>(grid);
        prog_.launch.blockThreads = static_cast<int>(block);
    }

    void
    sharedSize(const SourceLine &line, LineCursor &cur)
    {
        const std::int64_t bytes = cur.integer();
        cur.expectEnd();
        if (!cur.ok()) {
            fail(line.number, cur.what());
            return;
        }
        if (bytes < 0 || bytes > 0xffffffffll) {
            fail(line.number, "shared size out of range");
            return;
        }
        prog_.sharedBytesPerBlock = static_cast<std::uint32_t>(bytes);
    }

    void
    imageSize(const SourceLine &line, LineCursor &cur,
              const std::string &space)
    {
        const std::int64_t words = cur.integer();
        cur.expectEnd();
        if (!cur.ok()) {
            fail(line.number, cur.what());
            return;
        }
        if (words < 0 || words > kMaxImageWords) {
            fail(line.number, "image size out of range");
            return;
        }
        imageFor(space)->assign(static_cast<std::size_t>(words), 0);
    }

    void
    imageData(const SourceLine &line, LineCursor &cur)
    {
        const std::string space = cur.ident();
        std::vector<Word> *image = cur.ok() ? imageFor(space) : nullptr;
        if (image == nullptr) {
            fail(line.number,
                 "expected 'global', 'const' or 'texture'");
            return;
        }
        const std::int64_t offset = cur.integer();
        if (!cur.ok()) {
            fail(line.number, cur.what());
            return;
        }
        if (offset < 0
            || static_cast<std::uint64_t>(offset) > image->size()) {
            fail(line.number, "data offset outside the image");
            return;
        }
        std::size_t at = static_cast<std::size_t>(offset);
        while (!cur.atEnd()) {
            const Word w = cur.word();
            if (!cur.ok()) {
                fail(line.number, cur.what());
                return;
            }
            if (at >= image->size()) {
                fail(line.number, "data runs past the image");
                return;
            }
            (*image)[at++] = w;
        }
    }

    std::vector<Word> *
    imageFor(const std::string &space)
    {
        if (space == "global")
            return &prog_.global;
        if (space == "const")
            return &prog_.constants;
        if (space == "texture")
            return &prog_.texture;
        return nullptr;
    }

    /** Branch target: a label name or a bare instruction index. */
    std::int32_t
    target(LineCursor &cur)
    {
        const char c = cur.peek();
        if (c == '-' || c == '+'
            || std::isdigit(static_cast<unsigned char>(c))) {
            return cur.imm32();
        }
        const std::string name = cur.ident();
        if (!cur.ok())
            return 0;
        const auto it = labels_.find(name);
        if (it == labels_.end()) {
            cur.fail("unknown label '" + name + "'");
            return 0;
        }
        return it->second;
    }

    /** Immediate-or-register srcB: "#<imm>" or "R<n>". */
    void
    srcBOperand(LineCursor &cur, Instruction &instr)
    {
        if (cur.tryConsume('#')) {
            instr.immB = true;
            instr.imm = cur.imm32();
        } else {
            instr.srcB = cur.reg();
        }
    }

    /** "[R<n> + <imm>]" / "[R<n> - <imm>]". */
    void
    memOperand(LineCursor &cur, Instruction &instr)
    {
        cur.expect('[');
        instr.srcA = cur.reg();
        bool negate = false;
        if (cur.tryConsume('-'))
            negate = true;
        else
            cur.expect('+');
        const std::int64_t v = cur.integer();
        cur.expect(']');
        if (!cur.ok())
            return;
        // Negated magnitudes reach one past INT32_MAX, so INT32_MIN
        // offsets still render and reparse.
        const std::int64_t off = negate ? -v : v;
        if (off < std::numeric_limits<std::int32_t>::min()
            || off > std::numeric_limits<std::int32_t>::max()) {
            cur.fail("address offset out of range");
            return;
        }
        instr.imm = static_cast<std::int32_t>(off);
    }

    void
    instruction(const SourceLine &line)
    {
        if (prog_.body.size() >= kMaxBodyInstructions) {
            fail(line.number, "kernel body too large");
            return;
        }
        LineCursor cur(line.text);
        Instruction instr;

        if (cur.tryConsume('@')) {
            instr.predNegate = cur.tryConsume('!');
            instr.pred = cur.pred();
        }

        std::string mnemonic = cur.ident();
        if (!cur.ok()) {
            fail(line.number, cur.what());
            return;
        }
        std::string suffix;
        if (const auto dot = mnemonic.find('.');
            dot != std::string::npos) {
            suffix = mnemonic.substr(dot + 1);
            mnemonic = mnemonic.substr(0, dot);
        }
        const Opcode op = opcodeFromMnemonic(mnemonic);
        if (op == Opcode::NumOpcodes) {
            fail(line.number, "unknown mnemonic '" + mnemonic + "'");
            return;
        }
        instr.op = op;
        if (!suffix.empty() && op != Opcode::SetP) {
            fail(line.number,
                 "'" + opcodeName(op) + "' takes no suffix");
            return;
        }

        switch (op) {
          case Opcode::SetP: {
            int cmp = -1;
            for (int i = 0; i < 6; ++i) {
                if (suffix == kCmpNames[i])
                    cmp = i;
            }
            if (cmp < 0) {
                fail(line.number,
                     "SETP needs a .LT/.LE/.GT/.GE/.EQ/.NE suffix");
                return;
            }
            instr.flags = static_cast<std::uint8_t>(cmp);
            instr.dst = cur.pred();
            cur.expect(',');
            instr.srcA = cur.reg();
            cur.expect(',');
            srcBOperand(cur, instr);
            break;
          }
          case Opcode::S2R: {
            instr.dst = cur.reg();
            cur.expect(',');
            const std::string sr = cur.ident();
            int idx = -1;
            for (int i = 0; i < 6; ++i) {
                if (sr == kSpecialRegNames[i])
                    idx = i;
            }
            if (cur.ok() && idx < 0)
                cur.fail("unknown special register '" + sr + "'");
            if (idx >= 0)
                instr.flags = static_cast<std::uint8_t>(idx);
            break;
          }
          case Opcode::Mov:
            instr.dst = cur.reg();
            cur.expect(',');
            srcBOperand(cur, instr);
            break;
          case Opcode::I2F:
          case Opcode::F2I:
          case Opcode::Clz:
            instr.dst = cur.reg();
            cur.expect(',');
            instr.srcA = cur.reg();
            break;
          case Opcode::Ldg:
          case Opcode::Lds:
          case Opcode::Ldc:
          case Opcode::Ldt:
            instr.dst = cur.reg();
            cur.expect(',');
            memOperand(cur, instr);
            break;
          case Opcode::Stg:
          case Opcode::Sts:
            memOperand(cur, instr);
            cur.expect(',');
            instr.srcB = cur.reg();
            break;
          case Opcode::Bra: {
            instr.imm = target(cur);
            cur.expect(',');
            const std::string kw = cur.ident();
            if (cur.ok() && kw != "join")
                cur.fail("expected 'join=<target>'");
            cur.expect('=');
            instr.reconv = target(cur);
            break;
          }
          case Opcode::Exit:
          case Opcode::Bar:
          case Opcode::Nop:
            break;
          default:
            // Three-operand ALU: FFMA/FADD/FMUL/IADD/IMAD/IMUL/ISUB/
            // SHL/SHR/AND/OR/XOR/MIN/MAX.
            instr.dst = cur.reg();
            cur.expect(',');
            instr.srcA = cur.reg();
            cur.expect(',');
            srcBOperand(cur, instr);
            break;
        }
        cur.expectEnd();
        if (!cur.ok()) {
            fail(line.number, cur.what());
            return;
        }
        prog_.body.push_back(instr);
    }

    std::vector<SourceLine> lines_;
    std::map<std::string, int> labels_;
    Program prog_;
    Error error_;
    bool failed_ = false;
};

// --- rendering ---------------------------------------------------------

std::string
renderOperandB(const Instruction &instr)
{
    if (instr.immB)
        return strFormat("#%d", instr.imm);
    return strFormat("R%u", unsigned(instr.srcB));
}

std::string
renderMem(const Instruction &instr)
{
    if (instr.imm < 0) {
        return strFormat("[R%u - %lld]", unsigned(instr.srcA),
                         -static_cast<long long>(instr.imm));
    }
    return strFormat("[R%u + %d]", unsigned(instr.srcA), instr.imm);
}

std::string
renderTarget(std::int32_t target, int bodySize)
{
    if (target >= 0 && target < bodySize)
        return strFormat("L%d", target);
    return strFormat("%d", target);
}

std::string
renderInstruction(const Instruction &instr, int bodySize)
{
    std::string out;
    if (instr.pred != predTrue || instr.predNegate) {
        out += strFormat("@%sP%u ", instr.predNegate ? "!" : "",
                         unsigned(instr.pred));
    }
    const Opcode op = instr.op;
    switch (op) {
      case Opcode::SetP:
        out += strFormat("SETP.%s P%u, R%u, %s",
                         instr.flags < 6 ? kCmpNames[instr.flags] : "??",
                         unsigned(instr.dst), unsigned(instr.srcA),
                         renderOperandB(instr).c_str());
        break;
      case Opcode::S2R:
        out += strFormat("S2R R%u, %s", unsigned(instr.dst),
                         instr.flags < 6
                             ? kSpecialRegNames[instr.flags]
                             : "??");
        break;
      case Opcode::Mov:
        out += strFormat("MOV R%u, %s", unsigned(instr.dst),
                         renderOperandB(instr).c_str());
        break;
      case Opcode::I2F:
      case Opcode::F2I:
      case Opcode::Clz:
        out += strFormat("%s R%u, R%u", opcodeName(op).c_str(),
                         unsigned(instr.dst), unsigned(instr.srcA));
        break;
      case Opcode::Ldg:
      case Opcode::Lds:
      case Opcode::Ldc:
      case Opcode::Ldt:
        out += strFormat("%s R%u, %s", opcodeName(op).c_str(),
                         unsigned(instr.dst), renderMem(instr).c_str());
        break;
      case Opcode::Stg:
      case Opcode::Sts:
        out += strFormat("%s %s, R%u", opcodeName(op).c_str(),
                         renderMem(instr).c_str(),
                         unsigned(instr.srcB));
        break;
      case Opcode::Bra:
        out += strFormat("BRA %s, join=%s",
                         renderTarget(instr.imm, bodySize).c_str(),
                         renderTarget(instr.reconv, bodySize).c_str());
        break;
      case Opcode::Exit:
      case Opcode::Bar:
      case Opcode::Nop:
        out += opcodeName(op);
        break;
      default:
        out += strFormat("%s R%u, R%u, %s", opcodeName(op).c_str(),
                         unsigned(instr.dst), unsigned(instr.srcA),
                         renderOperandB(instr).c_str());
        break;
    }
    return out;
}

void
renderImage(std::ostringstream &os, const char *space,
            const std::vector<Word> &image)
{
    if (image.empty())
        return;
    os << '.' << space << ' ' << image.size() << '\n';
    std::size_t i = 0;
    while (i < image.size()) {
        if (image[i] == 0) {
            ++i;
            continue;
        }
        // One .data line per run of non-zero words, 8 words per line.
        std::size_t end = i;
        while (end < image.size() && image[end] != 0 && end - i < 8)
            ++end;
        os << ".data " << space << ' ' << i;
        for (; i < end; ++i)
            os << strFormat(" 0x%08x", image[i]);
        os << '\n';
    }
}

} // namespace

Result<Program>
parseAsm(std::string_view text)
{
    return Assembler(text).run();
}

std::string
renderAsm(const Program &program)
{
    std::ostringstream os;
    if (!program.name.empty())
        os << ".kernel " << program.name << '\n';
    os << ".launch " << program.launch.gridBlocks << ' '
       << program.launch.blockThreads << '\n';
    if (program.sharedBytesPerBlock)
        os << ".shared " << program.sharedBytesPerBlock << '\n';
    renderImage(os, "global", program.global);
    renderImage(os, "const", program.constants);
    renderImage(os, "texture", program.texture);

    const int size = static_cast<int>(program.body.size());
    std::vector<std::uint8_t> labelled(program.body.size(), 0);
    for (const Instruction &instr : program.body) {
        if (instr.op != Opcode::Bra)
            continue;
        if (instr.imm >= 0 && instr.imm < size)
            labelled[static_cast<std::size_t>(instr.imm)] = 1;
        if (instr.reconv >= 0 && instr.reconv < size)
            labelled[static_cast<std::size_t>(instr.reconv)] = 1;
    }
    os << '\n';
    for (int pc = 0; pc < size; ++pc) {
        if (labelled[static_cast<std::size_t>(pc)])
            os << 'L' << pc << ":\n";
        os << "    "
           << renderInstruction(
                  program.body[static_cast<std::size_t>(pc)], size)
           << '\n';
    }
    return os.str();
}

} // namespace bvf::isa
