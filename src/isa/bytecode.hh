/**
 * @file
 * Binary kernel bytecode: the untrusted on-disk / on-wire form of a
 * complete isa::Program.
 *
 * Layout mirrors the bvfd wire discipline (server/protocol.hh): a
 * little-endian frame with a versioned header and a CRC-32 that covers
 * header and payload, so a torn or bit-flipped kernel file is detected
 * before anything interprets it:
 *
 *   magic    "BVFK"                        4 bytes
 *   version  u8  (= kBytecodeVersion)      1 byte
 *   reserved u8  (must be 0)               1 byte
 *   flags    u16 (reserved, must be 0)     2 bytes
 *   length   u32 payload byte count        4 bytes
 *   crc      u32 CRC-32 of the 12 header
 *                bytes above + payload     4 bytes
 *   payload  length bytes
 *
 * The payload carries the kernel name, launch geometry, shared-segment
 * size, the instruction body (16 bytes per instruction, every field in
 * a fixed slot) and the three memory images. Images are chunked into
 * zero-runs and literal word runs so the untouched output slots of
 * suite kernels cost four bytes instead of tens of kilobytes.
 *
 * Decoding is *strict*: the only accepted byte strings are exactly the
 * ones encodeProgram produces. After structural parsing the decoder
 * re-encodes the result and compares bytes, so every accepted input
 * round-trips decode-then-reencode bit-identically -- the property the
 * fuzz driver (sim/fuzz.cc) checks on every mutated input. Length
 * fields are checked against the remaining byte count before any
 * allocation, so a hostile count cannot drive a large allocation.
 *
 * Decoding deliberately does NOT validate program semantics: register
 * indices, opcode-specific field canonicality, branch targets and
 * memory extents are the admission verifier's job
 * (analysis/verifier.hh). decodeProgram only guarantees the result is
 * representable, so the verifier must be total over its output.
 */

#ifndef BVF_ISA_BYTECODE_HH
#define BVF_ISA_BYTECODE_HH

#include <string>
#include <string_view>

#include "common/result.hh"
#include "isa/program.hh"

namespace bvf::isa
{

/** Bytecode frame format version. */
constexpr std::uint8_t kBytecodeVersion = 1;

/** Frame header byte count (magic through crc). */
constexpr std::size_t kBytecodeHeaderBytes = 16;

/**
 * Hard cap on one kernel's encoded payload (4 MiB). Large enough for
 * every suite kernel's full memory images, small enough that a hostile
 * length field cannot make a decoder buffer gigabytes.
 */
constexpr std::uint32_t kMaxBytecodePayload = 4u << 20;

/** Longest accepted kernel name. */
constexpr std::uint32_t kMaxKernelNameBytes = 256;

/** Serialize @p program into one bytecode frame. */
std::string encodeProgram(const Program &program);

/**
 * Parse one bytecode frame. Errors follow the wire taxonomy:
 * Truncated (input shorter than its header or length field claims),
 * Corrupt (bad magic, bad CRC, reserved bits set, counts that overrun
 * the payload, trailing bytes, or any encoding encodeProgram would not
 * have produced), Unsupported (unknown version).
 */
Result<Program> decodeProgram(std::string_view bytes);

} // namespace bvf::isa

#endif // BVF_ISA_BYTECODE_HH
