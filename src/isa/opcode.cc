/**
 * @file
 * Opcode classification tables.
 */

#include "isa/opcode.hh"

#include "common/logging.hh"

namespace bvf::isa
{

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Ffma: return "FFMA";
      case Opcode::Fadd: return "FADD";
      case Opcode::Fmul: return "FMUL";
      case Opcode::IAdd: return "IADD";
      case Opcode::Mov: return "MOV";
      case Opcode::Ldg: return "LDG";
      case Opcode::Stg: return "STG";
      case Opcode::IMad: return "IMAD";
      case Opcode::S2R: return "S2R";
      case Opcode::SetP: return "SETP";
      case Opcode::Lds: return "LDS";
      case Opcode::Sts: return "STS";
      case Opcode::IMul: return "IMUL";
      case Opcode::ISub: return "ISUB";
      case Opcode::Shl: return "SHL";
      case Opcode::Shr: return "SHR";
      case Opcode::And: return "AND";
      case Opcode::Or: return "OR";
      case Opcode::Xor: return "XOR";
      case Opcode::Ldc: return "LDC";
      case Opcode::Ldt: return "LDT";
      case Opcode::I2F: return "I2F";
      case Opcode::F2I: return "F2I";
      case Opcode::Clz: return "CLZ";
      case Opcode::Min: return "MIN";
      case Opcode::Max: return "MAX";
      case Opcode::Bra: return "BRA";
      case Opcode::Exit: return "EXIT";
      case Opcode::Bar: return "BAR";
      case Opcode::Nop: return "NOP";
      case Opcode::NumOpcodes: break;
    }
    panic("unknown opcode");
}

bool
isMemoryOp(Opcode op)
{
    return isLoadOp(op) || isStoreOp(op);
}

bool
isLoadOp(Opcode op)
{
    switch (op) {
      case Opcode::Ldg:
      case Opcode::Lds:
      case Opcode::Ldc:
      case Opcode::Ldt:
        return true;
      default:
        return false;
    }
}

bool
isStoreOp(Opcode op)
{
    return op == Opcode::Stg || op == Opcode::Sts;
}

bool
isControlOp(Opcode op)
{
    switch (op) {
      case Opcode::Bra:
      case Opcode::Exit:
      case Opcode::Bar:
      case Opcode::Nop:
        return true;
      default:
        return false;
    }
}

bool
writesRegister(Opcode op)
{
    if (isControlOp(op) || isStoreOp(op) || op == Opcode::SetP)
        return false;
    return true;
}

bool
readsSrcA(Opcode op)
{
    switch (op) {
      case Opcode::Mov:
      case Opcode::S2R:
      case Opcode::Bra:
      case Opcode::Exit:
      case Opcode::Bar:
      case Opcode::Nop:
        return false;
      default:
        return true;
    }
}

bool
readsSrcB(Opcode op)
{
    switch (op) {
      case Opcode::Ffma:
      case Opcode::Fadd:
      case Opcode::Fmul:
      case Opcode::IAdd:
      case Opcode::IMad:
      case Opcode::IMul:
      case Opcode::ISub:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::SetP:
      case Opcode::Mov:
      case Opcode::Stg:
      case Opcode::Sts:
        return true;
      default:
        return false;
    }
}

bool
readsDst(Opcode op)
{
    return op == Opcode::Ffma || op == Opcode::IMad;
}

int
opcodeLatency(Opcode op)
{
    switch (op) {
      case Opcode::Ffma:
      case Opcode::IMad:
        return 6;
      case Opcode::Fadd:
      case Opcode::Fmul:
      case Opcode::IMul:
        return 5;
      case Opcode::Ldg:
      case Opcode::Ldt:
        return 0; // variable; resolved by the memory system
      case Opcode::Lds:
      case Opcode::Sts:
        return 24;
      case Opcode::Ldc:
        return 0; // via constant cache
      default:
        return 4;
    }
}

} // namespace bvf::isa
