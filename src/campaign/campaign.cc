/**
 * @file
 * Campaign runner implementation.
 */

#include "campaign/campaign.hh"

#include <atomic>
#include <mutex>
#include <thread>

#include "common/atomic_file.hh"
#include "common/cancel.hh"
#include "common/crc32.hh"
#include "common/logging.hh"
#include "runtime/ordered.hh"
#include "runtime/thread_pool.hh"

namespace bvf::campaign
{

using coder::Scenario;

namespace
{

/** Hexfloat: exact, locale-free, round-trips bit-identically. */
std::string
exactDouble(double v)
{
    return strFormat("%a", v);
}

} // namespace

std::string
CampaignReport::render() const
{
    std::string out;
    out += "# BVF campaign report v1\n";
    out += strFormat("# config %08x\n", configCrc);
    out += strFormat("# apps %zu completed %d quarantined %d\n",
                     results.size(), completed, quarantined);
    out += "# columns: app status attempts cycles instructions";
    for (const auto s : coder::allScenarios)
        out += strFormat(" chip:%s", coder::scenarioName(s).c_str());
    for (const auto s : coder::allScenarios)
        out += strFormat(" units:%s", coder::scenarioName(s).c_str());
    out += "\n";
    for (const AppResult &r : results) {
        out += strFormat("app %s %s %u", r.abbr.c_str(),
                         appStatusName(r.status).c_str(), r.attempts);
        if (r.status == AppStatus::Completed) {
            out += strFormat(
                " %llu %llu",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instructions));
            for (const double v : r.chipEnergy)
                out += " " + exactDouble(v);
            for (const double v : r.bvfUnitsEnergy)
                out += " " + exactDouble(v);
        } else {
            out += strFormat(" - - error %s",
                             r.error.describe().c_str());
        }
        out += "\n";
    }
    return out;
}

CampaignRunner::CampaignRunner(const core::ExperimentDriver &driver,
                               CampaignOptions options)
    : driver_(driver), options_(std::move(options))
{
}

std::uint32_t
CampaignRunner::configDigest(
    std::span<const workload::AppSpec> apps) const
{
    const gpu::GpuConfig &config = driver_.config();
    const core::Pricing &p = options_.pricing;
    const core::RunOptions &r = options_.run;
    // Everything that changes the numbers must be in the digest;
    // wall-clock knobs (timeout, retries, backoff) deliberately are
    // not -- they only change *whether* an app finishes, and a journal
    // written under a laxer watchdog is still valid under a stricter
    // one.
    std::string canon = strFormat(
        "arch=%d sms=%d sched=%d node=%d vdd=%a freq=%a cell=%d "
        "ecc=%d cpb=%d unreliable=%d dyn=%d pivot=%d "
        "fault=%d fseed=%llu fsoft=%a fdisturb=%a fstuck=%a fecc=%d "
        "apps=",
        static_cast<int>(config.arch), config.numSms,
        static_cast<int>(config.scheduler), static_cast<int>(p.node),
        p.pstate.vdd, p.pstate.frequency, static_cast<int>(p.cellKind),
        p.ecc ? 1 : 0, p.cellsPerBitline,
        p.allowUnreliableCells ? 1 : 0, r.dynamicIsa ? 1 : 0,
        r.vsRegisterPivot, r.fault.enabled ? 1 : 0,
        static_cast<unsigned long long>(r.fault.seed),
        r.fault.softErrorRate, r.fault.readDisturbRate,
        r.fault.stuckAtFraction, static_cast<int>(r.fault.ecc));
    for (const workload::AppSpec &spec : apps)
        canon += spec.abbr + ",";
    return crc32(canon.data(), canon.size());
}

AppResult
CampaignRunner::runOneApp(const workload::AppSpec &spec) const
{
    AppResult result;
    result.name = spec.name;
    result.abbr = spec.abbr;
    Error last{ErrorCode::Failed, "unknown failure"};
    // Per-call watchdog: a member token would be shared across pool
    // workers, and one app's timeout must never cancel another's run.
    CancelToken watchdog;

    const int maxAttempts = options_.maxRetries + 1;
    for (int attempt = 0; attempt < maxAttempts; ++attempt) {
        if (attempt > 0) {
            const auto backoff = options_.backoffBase * (1LL << (attempt - 1));
            warn("%s attempt %d/%d failed (%s); retrying with fresh "
                 "seed after %lld ms",
                 spec.abbr.c_str(), attempt, maxAttempts,
                 last.describe().c_str(),
                 static_cast<long long>(backoff.count()));
            if (backoff.count() > 0)
                std::this_thread::sleep_for(backoff);
        }

        workload::AppSpec trial = spec;
        trial.seedSalt = spec.seedSalt + static_cast<std::uint64_t>(attempt);

        core::RunOptions runOptions = options_.run;
        if (options_.appTimeout.count() > 0) {
            watchdog.reset();
            watchdog.setBudget(options_.appTimeout);
            runOptions.cancel = &watchdog;
        }

        auto attempted = driver_.runAppChecked(trial, runOptions);
        if (!attempted.ok()) {
            last = attempted.error();
            continue;
        }

        // Pricing can also reject a configuration (e.g. an unreliable
        // cell geometry); that is an application failure, not a crash.
        try {
            ScopedFatalTrap trap;
            const core::AppEnergy energy =
                driver_.evaluate(attempted.value(), options_.pricing);
            result.status = AppStatus::Completed;
            result.attempts = static_cast<std::uint32_t>(attempt + 1);
            result.error = Error{};
            result.cycles = attempted.value().gpuStats.cycles;
            result.instructions = attempted.value().gpuStats.sm.issued;
            for (const auto s : coder::allScenarios) {
                const auto idx = static_cast<std::size_t>(
                    coder::scenarioIndex(s));
                result.chipEnergy[idx] = energy.at(s).chipTotal();
                result.bvfUnitsEnergy[idx] = energy.at(s).bvfUnitsTotal();
            }
            return result;
        } catch (const FatalError &e) {
            last = Error{ErrorCode::Failed, e.what()};
        } catch (const std::exception &e) {
            last = Error{ErrorCode::Failed, e.what()};
        }
    }

    result.status = AppStatus::Quarantined;
    result.attempts = static_cast<std::uint32_t>(maxAttempts);
    result.error = last;
    warn("quarantining %s after %d attempt(s): %s", spec.abbr.c_str(),
         maxAttempts, last.describe().c_str());
    return result;
}

Result<CampaignReport>
CampaignRunner::run(std::span<const workload::AppSpec> apps)
{
    CampaignReport report;
    report.configCrc = configDigest(apps);

    // Results already on disk, keyed by abbreviation.
    std::vector<AppResult> restored;
    std::optional<CampaignJournal> journal;
    if (!options_.journalPath.empty()) {
        journal.emplace(options_.journalPath, report.configCrc);
        if (fileExists(options_.journalPath)) {
            if (!options_.resume) {
                return Error{
                    ErrorCode::InvalidArgument,
                    strFormat("journal '%s' already exists; resume the "
                              "campaign or remove it to start over",
                              options_.journalPath.c_str())};
            }
            auto loaded = journal->load();
            if (!loaded.ok())
                return loaded.error();
            if (loaded.value().salvaged) {
                warn("journal '%s': %s", options_.journalPath.c_str(),
                     loaded.value().warning.c_str());
            }
            restored = std::move(loaded.value().results);
            journal->adopt(restored);
            inform("resuming campaign: %zu application(s) restored "
                   "from '%s'",
                   restored.size(), options_.journalPath.c_str());
        } else if (options_.resume) {
            inform("resume requested but '%s' does not exist; starting "
                   "a fresh campaign",
                   options_.journalPath.c_str());
        }
    }

    auto findRestored = [&](const std::string &abbr) -> const AppResult * {
        for (const AppResult &r : restored) {
            if (r.abbr == abbr)
                return &r;
        }
        return nullptr;
    };

    // One producer shared by both execution shapes. Journal appends
    // are serialized and happen in completion order; resume keys by
    // abbreviation, so line order is free to vary across runs.
    std::mutex journalMutex;
    std::atomic<bool> journalFailed{false};
    Error journalError;
    auto produce = [&](const workload::AppSpec &spec) -> AppResult {
        if (const AppResult *prior = findRestored(spec.abbr)) {
            AppResult result = *prior;
            result.fromJournal = true;
            return result;
        }
        if (journalFailed.load(std::memory_order_acquire)) {
            // The campaign is already doomed; don't burn hours
            // simulating results that will be discarded.
            AppResult skipped;
            skipped.name = spec.name;
            skipped.abbr = spec.abbr;
            skipped.error = Error{ErrorCode::Failed,
                                  "skipped after journal failure"};
            return skipped;
        }
        inform("simulating %s (%s)", spec.name.c_str(),
               spec.abbr.c_str());
        AppResult result = runOneApp(spec);
        if (journal) {
            std::lock_guard<std::mutex> lock(journalMutex);
            if (!journalFailed.load(std::memory_order_relaxed)) {
                const auto appended = journal->append(result);
                if (!appended.ok()) {
                    journalError = appended.error();
                    journalFailed.store(true, std::memory_order_release);
                }
            }
        }
        return result;
    };

    if (options_.jobs > 1 && apps.size() > 1) {
        runtime::ThreadPool pool(options_.jobs);
        report.results = runtime::parallelMapOrdered(
            pool, apps,
            [&](const workload::AppSpec &spec, std::size_t) {
                return produce(spec);
            });
    } else {
        report.results.reserve(apps.size());
        for (const workload::AppSpec &spec : apps) {
            report.results.push_back(produce(spec));
            if (journalFailed.load(std::memory_order_acquire))
                break;
        }
    }
    if (journalFailed.load(std::memory_order_acquire))
        return journalError;

    // Counters derive from the ordered results, never from completion
    // order, so they match the serial campaign bit for bit.
    for (const AppResult &r : report.results) {
        if (r.fromJournal)
            ++report.resumed;
        if (r.status == AppStatus::Completed)
            ++report.completed;
        else
            ++report.quarantined;
        if (r.attempts > 1)
            ++report.retried;
    }
    return report;
}

} // namespace bvf::campaign
