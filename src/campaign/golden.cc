/**
 * @file
 * Golden-result snapshot and verification.
 */

#include "campaign/golden.hh"

#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/logging.hh"

namespace bvf::campaign
{

namespace
{

constexpr const char *goldenHeader = "# BVF golden energies v1";

/** Bit-level comparison: one ULP of drift is a drift. */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

struct GoldenEntry
{
    double chip = 0.0;
    double units = 0.0;
};

} // namespace

std::string
GoldenDrift::describe() const
{
    return strFormat("%s %s %s: expected %a, got %a (rel %.3e)",
                     abbr.c_str(), scenario.c_str(), field.c_str(),
                     expected, actual,
                     expected != 0.0
                         ? (actual - expected) / expected
                         : 0.0);
}

Result<void>
recordGolden(const std::string &path, const CampaignReport &report)
{
    std::string out;
    out += goldenHeader;
    out += "\n";
    out += strFormat("# config %08x\n", report.configCrc);
    for (const AppResult &r : report.results) {
        if (r.status != AppStatus::Completed)
            continue;
        for (const auto s : coder::allScenarios) {
            const auto idx =
                static_cast<std::size_t>(coder::scenarioIndex(s));
            out += strFormat("%s %s %a %a\n", r.abbr.c_str(),
                             coder::scenarioName(s).c_str(),
                             r.chipEnergy[idx], r.bvfUnitsEnergy[idx]);
        }
    }
    return atomicWriteFile(path, out);
}

Result<GoldenCheck>
verifyGolden(const std::string &path, const CampaignReport &report)
{
    auto bytes = readFileBytes(path);
    if (!bytes.ok())
        return bytes.error();

    std::istringstream in(bytes.value());
    std::string line;
    if (!std::getline(in, line) || line != goldenHeader) {
        return Error{ErrorCode::Corrupt,
                     strFormat("'%s' is not a golden snapshot",
                               path.c_str())};
    }

    std::map<std::string, GoldenEntry> golden;
    int lineNo = 1;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            unsigned crc = 0;
            if (std::sscanf(line.c_str(), "# config %x", &crc) == 1
                && crc != report.configCrc) {
                return Error{
                    ErrorCode::InvalidArgument,
                    strFormat("golden snapshot '%s' was recorded under "
                              "a different campaign configuration "
                              "(digest %08x, campaign %08x)",
                              path.c_str(), crc, report.configCrc)};
            }
            continue;
        }
        char abbr[64], scenario[64];
        GoldenEntry entry;
        if (std::sscanf(line.c_str(), "%63s %63s %la %la", abbr,
                        scenario, &entry.chip, &entry.units) != 4) {
            return Error{ErrorCode::Corrupt,
                         strFormat("golden snapshot '%s' line %d is "
                                   "malformed: %s",
                                   path.c_str(), lineNo, line.c_str())};
        }
        golden[std::string(abbr) + " " + scenario] = entry;
    }

    GoldenCheck check;
    std::map<std::string, GoldenEntry> seen;
    for (const AppResult &r : report.results) {
        if (r.status != AppStatus::Completed)
            continue;
        for (const auto s : coder::allScenarios) {
            const auto idx =
                static_cast<std::size_t>(coder::scenarioIndex(s));
            const std::string key =
                r.abbr + " " + coder::scenarioName(s);
            const auto it = golden.find(key);
            if (it == golden.end()) {
                check.unexpected.push_back(key);
                continue;
            }
            seen[key] = it->second;
            if (!sameBits(it->second.chip, r.chipEnergy[idx])) {
                check.drifts.push_back({r.abbr, coder::scenarioName(s),
                                        "chip", it->second.chip,
                                        r.chipEnergy[idx]});
            }
            if (!sameBits(it->second.units, r.bvfUnitsEnergy[idx])) {
                check.drifts.push_back({r.abbr, coder::scenarioName(s),
                                        "units", it->second.units,
                                        r.bvfUnitsEnergy[idx]});
            }
        }
    }
    for (const auto &[key, entry] : golden) {
        if (!seen.count(key))
            check.missing.push_back(key);
    }
    return check;
}

} // namespace bvf::campaign
