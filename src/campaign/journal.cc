/**
 * @file
 * Campaign journal serialization and crash-safe persistence.
 */

#include "campaign/journal.hh"

#include <cstring>

#include "common/atomic_file.hh"
#include "common/crc32.hh"
#include "common/logging.hh"

namespace bvf::campaign
{

namespace
{

constexpr char journalMagic[4] = {'B', 'V', 'F', 'J'};
constexpr char recordMagic[4] = {'J', 'R', 'E', 'C'};
constexpr std::uint32_t journalVersion = 1;

/** Upper bound on a record payload a reader will allocate. */
constexpr std::uint32_t maxRecordBytes = 1u << 20;

void
putRaw(std::string &out, const void *data, std::size_t len)
{
    out.append(static_cast<const char *>(data), len);
}

template <typename T>
void
put(std::string &out, T value)
{
    putRaw(out, &value, sizeof(value));
}

void
putString(std::string &out, const std::string &s)
{
    put(out, static_cast<std::uint32_t>(s.size()));
    putRaw(out, s.data(), s.size());
}

/** Bounds-checked cursor over a record payload. */
class PayloadReader
{
  public:
    explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}

    template <typename T>
    bool
    get(T &value)
    {
        if (off_ + sizeof(T) > bytes_.size())
            return false;
        std::memcpy(&value, bytes_.data() + off_, sizeof(T));
        off_ += sizeof(T);
        return true;
    }

    bool
    getString(std::string &s)
    {
        std::uint32_t len = 0;
        if (!get(len) || off_ + len > bytes_.size())
            return false;
        s.assign(bytes_.data() + off_, len);
        off_ += len;
        return true;
    }

    bool done() const { return off_ == bytes_.size(); }

  private:
    std::string_view bytes_;
    std::size_t off_ = 0;
};

/** Doubles travel as raw bit patterns so resume is bit-identical. */
std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
serializeRecord(const AppResult &r)
{
    std::string payload;
    put(payload, static_cast<std::uint8_t>(r.status));
    put(payload, r.attempts);
    put(payload, static_cast<std::uint8_t>(r.error.code));
    put(payload, r.cycles);
    put(payload, r.instructions);
    for (const double v : r.chipEnergy)
        put(payload, doubleBits(v));
    for (const double v : r.bvfUnitsEnergy)
        put(payload, doubleBits(v));
    putString(payload, r.name);
    putString(payload, r.abbr);
    putString(payload, r.error.message);
    return payload;
}

bool
parseRecord(std::string_view payload, AppResult &out)
{
    PayloadReader reader(payload);
    std::uint8_t status = 0, code = 0;
    if (!reader.get(status) || !reader.get(out.attempts)
        || !reader.get(code) || !reader.get(out.cycles)
        || !reader.get(out.instructions)) {
        return false;
    }
    if (status > static_cast<std::uint8_t>(AppStatus::Quarantined))
        return false;
    out.status = static_cast<AppStatus>(status);
    out.error.code = static_cast<ErrorCode>(code);
    for (double &v : out.chipEnergy) {
        std::uint64_t bits = 0;
        if (!reader.get(bits))
            return false;
        v = bitsDouble(bits);
    }
    for (double &v : out.bvfUnitsEnergy) {
        std::uint64_t bits = 0;
        if (!reader.get(bits))
            return false;
        v = bitsDouble(bits);
    }
    if (!reader.getString(out.name) || !reader.getString(out.abbr)
        || !reader.getString(out.error.message)) {
        return false;
    }
    return reader.done();
}

} // namespace

std::string
appStatusName(AppStatus status)
{
    switch (status) {
      case AppStatus::Completed:
        return "ok";
      case AppStatus::Quarantined:
        return "quarantined";
    }
    return "?";
}

std::string
serializeJournal(std::uint32_t configCrc,
                 std::span<const AppResult> results)
{
    std::string out;
    putRaw(out, journalMagic, sizeof(journalMagic));
    put(out, journalVersion);
    put(out, configCrc);
    for (const AppResult &r : results) {
        const std::string payload = serializeRecord(r);
        putRaw(out, recordMagic, sizeof(recordMagic));
        put(out, static_cast<std::uint32_t>(payload.size()));
        put(out, crc32(payload.data(), payload.size()));
        out += payload;
    }
    return out;
}

Result<JournalLoad>
parseJournal(std::string_view bytes, std::uint32_t expectConfigCrc)
{
    const std::size_t headerBytes = sizeof(journalMagic)
                                    + 2 * sizeof(std::uint32_t);
    if (bytes.size() < headerBytes
        || std::memcmp(bytes.data(), journalMagic, sizeof(journalMagic))
               != 0) {
        return Error{ErrorCode::Corrupt, "not a BVF campaign journal"};
    }
    std::uint32_t version = 0, configCrc = 0;
    std::memcpy(&version, bytes.data() + 4, sizeof(version));
    std::memcpy(&configCrc, bytes.data() + 8, sizeof(configCrc));
    if (version != journalVersion) {
        return Error{ErrorCode::Unsupported,
                     strFormat("unsupported journal version %u", version)};
    }
    if (configCrc != expectConfigCrc) {
        return Error{
            ErrorCode::InvalidArgument,
            strFormat("journal was written by a different campaign "
                      "configuration (digest %08x, expected %08x); "
                      "refusing to mix results",
                      configCrc, expectConfigCrc)};
    }

    JournalLoad load;
    auto salvage = [&](std::string what) {
        load.salvaged = true;
        load.warning = std::move(what);
        return load;
    };

    std::size_t off = headerBytes;
    while (off < bytes.size()) {
        const std::size_t frameBytes = sizeof(recordMagic)
                                       + 2 * sizeof(std::uint32_t);
        if (off + frameBytes > bytes.size()) {
            return salvage(strFormat(
                "journal ends inside record %zu's frame; dropped the "
                "in-flight tail", load.results.size()));
        }
        if (std::memcmp(bytes.data() + off, recordMagic,
                        sizeof(recordMagic)) != 0) {
            return salvage(strFormat("record %zu frame marker is corrupt",
                                     load.results.size()));
        }
        std::uint32_t payloadBytes = 0, crc = 0;
        std::memcpy(&payloadBytes, bytes.data() + off + 4,
                    sizeof(payloadBytes));
        std::memcpy(&crc, bytes.data() + off + 8, sizeof(crc));
        if (payloadBytes > maxRecordBytes) {
            return salvage(strFormat("record %zu claims implausible size "
                                     "%u", load.results.size(),
                                     payloadBytes));
        }
        if (off + frameBytes + payloadBytes > bytes.size()) {
            return salvage(strFormat("record %zu is truncated",
                                     load.results.size()));
        }
        const std::string_view payload =
            bytes.substr(off + frameBytes, payloadBytes);
        if (crc32(payload.data(), payload.size()) != crc) {
            return salvage(strFormat("record %zu checksum mismatch",
                                     load.results.size()));
        }
        AppResult r;
        if (!parseRecord(payload, r)) {
            return salvage(strFormat("record %zu payload is malformed",
                                     load.results.size()));
        }
        load.results.push_back(std::move(r));
        off += frameBytes + payloadBytes;
    }
    return load;
}

CampaignJournal::CampaignJournal(std::string path,
                                 std::uint32_t configCrc)
    : path_(std::move(path)), configCrc_(configCrc)
{
}

Result<JournalLoad>
CampaignJournal::load() const
{
    auto bytes = readFileBytes(path_);
    if (!bytes.ok())
        return bytes.error();
    return parseJournal(bytes.value(), configCrc_);
}

void
CampaignJournal::adopt(std::vector<AppResult> results)
{
    records_ = std::move(results);
}

Result<void>
CampaignJournal::append(const AppResult &result)
{
    records_.push_back(result);
    const std::string image = serializeJournal(configCrc_, records_);
    const auto written = atomicWriteFile(path_, image);
    if (!written.ok()) {
        // Persistence failing mid-campaign must surface: a journal the
        // operator believes in but that silently stopped updating is
        // worse than no journal.
        records_.pop_back();
        return written.error();
    }
    debug("journal: %zu record(s) -> %s", records_.size(), path_.c_str());
    return {};
}

} // namespace bvf::campaign
