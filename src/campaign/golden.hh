/**
 * @file
 * Golden-result drift detection.
 *
 * Refactors of the coder chains, the accountant or the power model must
 * not silently move the paper's numbers. The golden harness snapshots
 * per-app/per-scenario energy digests from a campaign (`record`) and
 * later compares a fresh campaign against the snapshot (`verify`),
 * failing loudly on any bit-level drift. Energies are stored as
 * hexfloats, which round-trip IEEE-754 doubles exactly -- a drift of one
 * ULP is a drift.
 *
 * File format (text, line-oriented):
 *   # BVF golden energies v1
 *   # config <crc32 hex>
 *   <abbr> <scenario> <chip hexfloat> <units hexfloat>
 */

#ifndef BVF_CAMPAIGN_GOLDEN_HH
#define BVF_CAMPAIGN_GOLDEN_HH

#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "common/result.hh"

namespace bvf::campaign
{

/** One value that moved between the snapshot and the fresh campaign. */
struct GoldenDrift
{
    std::string abbr;
    std::string scenario;
    std::string field; //!< "chip" or "units"
    double expected = 0.0;
    double actual = 0.0;

    std::string describe() const;
};

/** Outcome of a golden verification. */
struct GoldenCheck
{
    std::vector<GoldenDrift> drifts;
    /** Apps in the snapshot with no completed result this campaign. */
    std::vector<std::string> missing;
    /** Completed apps this campaign absent from the snapshot. */
    std::vector<std::string> unexpected;

    bool
    ok() const
    {
        return drifts.empty() && missing.empty() && unexpected.empty();
    }
};

/**
 * Snapshot @p report's completed applications to @p path (atomic
 * replace). Quarantined applications are skipped: a snapshot must only
 * contain numbers that actually exist.
 */
Result<void> recordGolden(const std::string &path,
                          const CampaignReport &report);

/**
 * Compare @p report against the snapshot at @p path. Returns the drift
 * list (empty drifts + empty missing/unexpected means clean); parse or
 * I/O problems are structured errors.
 */
Result<GoldenCheck> verifyGolden(const std::string &path,
                                 const CampaignReport &report);

} // namespace bvf::campaign

#endif // BVF_CAMPAIGN_GOLDEN_HH
