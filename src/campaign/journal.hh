/**
 * @file
 * Crash-safe campaign journal.
 *
 * A campaign over the 58-app suite runs for a long time; one killed
 * process must not throw away every completed application. The journal
 * persists one CRC32-framed record per finished application (completed
 * or quarantined) and is rewritten through the atomic
 * write-temp -> fsync -> rename path after every append, so a kill -9 at
 * any instant leaves a fully valid journal containing every application
 * that finished before the kill -- the in-flight one is the only loss.
 * Energies are stored as raw IEEE-754 bit patterns, so a resumed
 * campaign reports bit-identical numbers.
 *
 * Binary format (little-endian):
 *   header: "BVFJ" u32 version(=1) u32 configCrc
 *   record: "JREC" u32 payloadBytes u32 crc32(payload) payload
 *
 * The configCrc is a digest of everything that determines the results
 * (machine, pricing, run options, application list); loading a journal
 * written under a different configuration fails loudly instead of
 * silently mixing incompatible results.
 */

#ifndef BVF_CAMPAIGN_JOURNAL_HH
#define BVF_CAMPAIGN_JOURNAL_HH

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "coder/scenario.hh"
#include "common/result.hh"

namespace bvf::campaign
{

/** Final disposition of one application within a campaign. */
enum class AppStatus : std::uint8_t
{
    Completed = 0,
    Quarantined = 1, //!< failed every attempt; excluded from results
};

/** Display name, e.g. "ok" / "quarantined". */
std::string appStatusName(AppStatus status);

/** Everything a campaign keeps per application. */
struct AppResult
{
    std::string name;
    std::string abbr;
    AppStatus status = AppStatus::Completed;
    std::uint32_t attempts = 1; //!< simulation attempts consumed
    Error error;                //!< last failure (quarantined only)
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;

    /** Per-scenario whole-chip energy [J] under the campaign pricing. */
    std::array<double, coder::numScenarios> chipEnergy{};
    /** Per-scenario BVF-units energy [J]. */
    std::array<double, coder::numScenarios> bvfUnitsEnergy{};

    /** Restored from a journal, not simulated this run (not persisted). */
    bool fromJournal = false;
};

/** What loading a journal produced. */
struct JournalLoad
{
    std::vector<AppResult> results;
    bool salvaged = false; //!< a damaged tail was dropped
    std::string warning;   //!< what was wrong, when salvaged
};

/** Serialize a full journal image (header + framed records). */
std::string serializeJournal(std::uint32_t configCrc,
                             std::span<const AppResult> results);

/**
 * Parse a journal image. A damaged or truncated tail -- e.g. disk
 * corruption of the final record -- is salvaged: every intact record
 * before the damage is returned and the damage is described in
 * JournalLoad::warning. Header damage or a configCrc mismatch is a
 * structured error.
 */
Result<JournalLoad> parseJournal(std::string_view bytes,
                                 std::uint32_t expectConfigCrc);

/**
 * The on-disk journal: an append-style API whose every mutation is an
 * atomic whole-file replace.
 */
class CampaignJournal
{
  public:
    CampaignJournal(std::string path, std::uint32_t configCrc);

    /** Load and verify the journal at path(). */
    Result<JournalLoad> load() const;

    /** Adopt previously loaded records as the persisted prefix. */
    void adopt(std::vector<AppResult> results);

    /** Append one record and atomically persist the whole journal. */
    Result<void> append(const AppResult &result);

    const std::string &path() const { return path_; }
    std::size_t records() const { return records_.size(); }

  private:
    std::string path_;
    std::uint32_t configCrc_;
    std::vector<AppResult> records_;
};

} // namespace bvf::campaign

#endif // BVF_CAMPAIGN_JOURNAL_HH
