/**
 * @file
 * Resilient campaign orchestration.
 *
 * A campaign drives a list of applications through the experiment
 * driver and prices each under one campaign-wide Pricing, with the
 * robustness a multi-hour 58-app x 5-scenario sweep needs:
 *
 *  - crash safety: every finished application is journaled through the
 *    atomic-rename path, so a kill -9 loses at most the in-flight app
 *    and `resume` continues the campaign bit-identically;
 *  - a watchdog: each attempt gets a wall-clock budget enforced by
 *    cooperative cancellation inside the GPU cycle loop, so a
 *    pathological specification times out instead of hanging;
 *  - retry with exponential backoff: a failed attempt (fault, timeout,
 *    broken spec) is reseeded and retried; an application exhausting
 *    its attempts is quarantined and reported, never sinking the run.
 *
 * The rendered report deliberately excludes resume/wall-clock metadata:
 * an interrupted-then-resumed campaign renders the same bytes as an
 * uninterrupted one, which is what makes partial results trustworthy.
 *
 * With jobs > 1 applications are simulated concurrently on a
 * work-stealing pool. Each application is still simulated by exactly
 * one thread with all-local state and a per-call watchdog, results are
 * merged in campaign order (runtime/ordered.hh) and journal appends are
 * serialized, so a parallel campaign's report is byte-identical to the
 * serial one -- only the journal's line order (irrelevant to resume,
 * which keys by abbreviation) reflects completion order.
 */

#ifndef BVF_CAMPAIGN_CAMPAIGN_HH
#define BVF_CAMPAIGN_CAMPAIGN_HH

#include <chrono>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "campaign/journal.hh"
#include "core/experiment.hh"

namespace bvf::campaign
{

/** Campaign-wide knobs. */
struct CampaignOptions
{
    /** Journal file; empty runs the campaign without persistence. */
    std::string journalPath;

    /**
     * Continue from an existing journal instead of refusing to touch
     * it. Without resume, a pre-existing journal is an error -- a
     * half-finished campaign should never be silently overwritten.
     */
    bool resume = false;

    /** Wall-clock budget per attempt; zero disables the watchdog. */
    std::chrono::milliseconds appTimeout{0};

    /** Extra attempts after the first failure (reseeded each time). */
    int maxRetries = 1;

    /** First retry backoff; doubled per subsequent retry. */
    std::chrono::milliseconds backoffBase{100};

    /**
     * Worker threads simulating applications concurrently; <= 1 runs
     * the classic serial loop. Absent from configDigest() for the same
     * reason as the wall-clock knobs: parallelism must not (and, by the
     * ordered-merge construction, does not) change any result byte.
     */
    int jobs = 1;

    /** Simulation options applied to every application. */
    core::RunOptions run;

    /** Pricing every application's energies are evaluated under. */
    core::Pricing pricing;
};

/** Campaign outcome: per-app results plus bookkeeping counters. */
struct CampaignReport
{
    std::vector<AppResult> results; //!< campaign order, all apps
    int completed = 0;   //!< simulated or restored successfully
    int resumed = 0;     //!< restored from the journal, not re-run
    int retried = 0;     //!< needed more than one attempt
    int quarantined = 0; //!< exhausted every attempt
    std::uint32_t configCrc = 0;

    /**
     * Canonical textual report: one line per application with exact
     * (hexfloat) per-scenario energies. Identical bytes for resumed and
     * uninterrupted campaigns of the same configuration.
     */
    std::string render() const;
};

/**
 * Drives applications through an ExperimentDriver with journaling,
 * watchdog, retry and quarantine.
 */
class CampaignRunner
{
  public:
    CampaignRunner(const core::ExperimentDriver &driver,
                   CampaignOptions options);

    /**
     * Run (or resume) the campaign over @p apps.
     *
     * Per-application failures are quarantined, never returned as
     * errors; the error path is reserved for campaign-level problems
     * (journal conflicts, persistence failures).
     */
    Result<CampaignReport> run(std::span<const workload::AppSpec> apps);

    /**
     * Digest of everything that determines campaign results: machine,
     * run options, pricing and the application list. Journals carry it
     * so a resume under a different configuration fails loudly.
     */
    std::uint32_t configDigest(
        std::span<const workload::AppSpec> apps) const;

  private:
    /**
     * Simulate one application (with watchdog, retry, quarantine).
     * Uses only local state -- including a per-call watchdog token --
     * so any number of pool workers may run it concurrently.
     */
    AppResult runOneApp(const workload::AppSpec &spec) const;

    const core::ExperimentDriver &driver_;
    CampaignOptions options_;
};

} // namespace bvf::campaign

#endif // BVF_CAMPAIGN_CAMPAIGN_HH
