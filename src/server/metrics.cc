/**
 * @file
 * Metrics implementation.
 */

#include "server/metrics.hh"

#include "common/logging.hh"

namespace bvf::server
{

void
LatencyHistogram::record(std::chrono::nanoseconds latency)
{
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        latency)
                        .count();
    int bucket = 0;
    std::uint64_t edge = 1;
    while (bucket < kBuckets - 1
           && static_cast<std::uint64_t>(us < 0 ? 0 : us) > edge) {
        edge <<= 1;
        ++bucket;
    }
    buckets_[static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
}

std::uint64_t
LatencyHistogram::count() const
{
    std::uint64_t total = 0;
    for (const auto &b : buckets_)
        total += b.load(std::memory_order_relaxed);
    return total;
}

double
LatencyHistogram::bucketEdge(int i)
{
    return static_cast<double>(1ull << i) * 1e-6;
}

double
LatencyHistogram::quantile(double q) const
{
    const std::uint64_t total = count();
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total - 1));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += buckets_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
        if (seen > rank)
            return bucketEdge(i);
    }
    return bucketEdge(kBuckets - 1);
}

int
Metrics::typeSlot(MsgType type)
{
    switch (type) {
      case MsgType::PingRequest:
      case MsgType::PingResponse:
        return 0;
      case MsgType::EvalCoderRequest:
      case MsgType::EvalCoderResponse:
        return 1;
      case MsgType::BitDensityRequest:
      case MsgType::BitDensityResponse:
        return 2;
      case MsgType::ChipEnergyRequest:
      case MsgType::ChipEnergyResponse:
        return 3;
      case MsgType::StaticQueryRequest:
      case MsgType::StaticQueryResponse:
        return 4;
      case MsgType::StaticAdviceRequest:
      case MsgType::StaticAdviceResponse:
        return 5;
      case MsgType::SubmitKernelRequest:
      case MsgType::SubmitKernelResponse:
        return 6;
      case MsgType::EvalSubmittedRequest:
      case MsgType::EvalSubmittedResponse:
        return 7;
      case MsgType::ErrorResponse:
        return 8;
    }
    return 8;
}

void
Metrics::onRequest(MsgType type)
{
    requests_[static_cast<std::size_t>(typeSlot(type))].fetch_add(
        1, std::memory_order_relaxed);
}

void
Metrics::onResponse(MsgType type, std::chrono::nanoseconds latency)
{
    responses_[static_cast<std::size_t>(typeSlot(type))].fetch_add(
        1, std::memory_order_relaxed);
    latency_.record(latency);
}

void
Metrics::onError(MsgType requestType)
{
    errors_[static_cast<std::size_t>(typeSlot(requestType))].fetch_add(
        1, std::memory_order_relaxed);
}

std::uint64_t
Metrics::errors(MsgType requestType) const
{
    return errors_[static_cast<std::size_t>(typeSlot(requestType))].load(
        std::memory_order_relaxed);
}

std::uint64_t
Metrics::errorsTotal() const
{
    std::uint64_t total = 0;
    for (const auto &c : errors_)
        total += c.load(std::memory_order_relaxed);
    return total;
}

double
Metrics::uptimeSeconds() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - started_)
        .count();
}

std::uint64_t
Metrics::requestsTotal() const
{
    std::uint64_t total = 0;
    for (const auto &c : requests_)
        total += c.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
Metrics::responsesTotal() const
{
    std::uint64_t total = 0;
    for (const auto &c : responses_)
        total += c.load(std::memory_order_relaxed);
    return total;
}

std::string
Metrics::render(std::size_t queueDepth, int workers,
                double utilization) const
{
    static const char *slotNames[kTypeSlots] = {
        "ping", "eval_coder", "bit_density", "chip_energy",
        "static_query", "static_advice", "submit_kernel",
        "eval_submitted", "error",
    };
    std::string out;
    out += "# bvfd metrics\n";
    for (int i = 0; i < kTypeSlots; ++i) {
        out += strFormat(
            "bvfd_requests_total{type=\"%s\"} %llu\n", slotNames[i],
            static_cast<unsigned long long>(
                requests_[static_cast<std::size_t>(i)].load()));
    }
    for (int i = 0; i < kTypeSlots; ++i) {
        out += strFormat(
            "bvfd_responses_total{type=\"%s\"} %llu\n", slotNames[i],
            static_cast<unsigned long long>(
                responses_[static_cast<std::size_t>(i)].load()));
    }
    for (int i = 0; i < kTypeSlots; ++i) {
        out += strFormat(
            "bvfd_request_errors_total{type=\"%s\"} %llu\n", slotNames[i],
            static_cast<unsigned long long>(
                errors_[static_cast<std::size_t>(i)].load()));
    }
    out += strFormat("bvfd_protocol_errors_total %llu\n",
                     static_cast<unsigned long long>(
                         protocolErrors_.load()));
    out += strFormat("bvfd_connections_total %llu\n",
                     static_cast<unsigned long long>(connections_.load()));
    out += strFormat("bvfd_bytes_in_total %llu\n",
                     static_cast<unsigned long long>(bytesIn_.load()));
    out += strFormat("bvfd_bytes_out_total %llu\n",
                     static_cast<unsigned long long>(bytesOut_.load()));
    out += strFormat("bvfd_latency_seconds{quantile=\"0.5\"} %g\n",
                     latency_.quantile(0.5));
    out += strFormat("bvfd_latency_seconds{quantile=\"0.9\"} %g\n",
                     latency_.quantile(0.9));
    out += strFormat("bvfd_latency_seconds{quantile=\"0.99\"} %g\n",
                     latency_.quantile(0.99));
    out += strFormat("bvfd_latency_samples_total %llu\n",
                     static_cast<unsigned long long>(latency_.count()));
    out += strFormat("bvfd_queue_depth %zu\n", queueDepth);
    out += strFormat("bvfd_workers %d\n", workers);
    out += strFormat("bvfd_worker_utilization %g\n", utilization);
    out += strFormat("bvfd_uptime_seconds %g\n", uptimeSeconds());
    out += strFormat(
        "bvfd_build_info{version=\"%s\",protocol=\"%u\"} 1\n",
        kBuildVersion, static_cast<unsigned>(kProtocolVersion));
    return out;
}

} // namespace bvf::server
