/**
 * @file
 * Request handler implementation.
 */

#include "server/handler.hh"

#include <exception>

#include "analysis/advisor.hh"
#include "analysis/interpreter.hh"
#include "coder/bvf_space.hh"
#include "coder/isa_coder.hh"
#include "coder/nv_coder.hh"
#include "coder/vs_coder.hh"
#include "common/bitops.hh"
#include "common/logging.hh"
#include "core/contract.hh"
#include "core/experiment.hh"
#include "core/static_check.hh"
#include "isa/encoding.hh"
#include "workload/kernel_builder.hh"

namespace bvf::server
{

namespace
{

isa::GpuArch
archFromIndex(std::uint8_t idx)
{
    return isa::allGpuArchs()[idx];
}

gpu::SchedulerPolicy
schedFromIndex(std::uint8_t idx)
{
    static constexpr gpu::SchedulerPolicy policies[] = {
        gpu::SchedulerPolicy::Gto, gpu::SchedulerPolicy::Lrr,
        gpu::SchedulerPolicy::TwoLevel};
    return policies[idx];
}

/**
 * Resolve an AppQuery into a configured machine. fatal() from an
 * unknown abbreviation is trapped by the caller.
 */
gpu::GpuConfig
configFor(const AppQuery &q)
{
    gpu::GpuConfig config = gpu::baselineConfig();
    config.arch = archFromIndex(q.arch);
    config.scheduler = schedFromIndex(q.sched);
    return config;
}

core::RunOptions
runOptionsFor(const AppQuery &q)
{
    core::RunOptions run;
    run.dynamicIsa = q.dynamicIsa != 0;
    run.vsRegisterPivot = static_cast<int>(q.vsPivot);
    return run;
}

/**
 * Run @p body with fatal() trapped; any failure becomes an
 * ErrorResponse frame instead of an exception or process exit.
 */
template <typename Fn>
Frame
guarded(Fn &&body)
{
    try {
        ScopedFatalTrap trap;
        return body();
    } catch (const FatalError &e) {
        return errorFrame(Error{ErrorCode::InvalidArgument, e.what()});
    } catch (const std::exception &e) {
        return errorFrame(Error{ErrorCode::Failed, e.what()});
    }
}

} // namespace

Frame
errorFrame(const Error &error)
{
    WireError wire;
    wire.code = static_cast<std::uint8_t>(error.code);
    wire.message = error.message;
    Frame frame;
    frame.type = MsgType::ErrorResponse;
    frame.payload = wire.encode();
    return frame;
}

Frame
RequestHandler::handlePing(const Frame &request) const
{
    const auto decoded = Ping::decode(request.payload);
    if (!decoded.ok())
        return errorFrame(decoded.error());
    Frame out;
    out.type = MsgType::PingResponse;
    out.payload = decoded.value().encode();
    return out;
}

Frame
RequestHandler::handleEvalCoder(const Frame &request) const
{
    const auto decoded = EvalCoderRequest::decode(request.payload);
    if (!decoded.ok())
        return errorFrame(decoded.error());
    const EvalCoderRequest &req = decoded.value();

    return guarded([&] {
        EvalCoderResponse resp;
        resp.encoded = req.words;
        resp.totalBits = req.words.size() * 64;
        for (const std::uint64_t w : req.words)
            resp.onesBefore += static_cast<std::uint64_t>(hammingWeight64(w));

        if (req.coder == CoderKind::Isa) {
            const Word64 mask =
                req.isaMask ? req.isaMask
                            : isa::paperIsaMask(archFromIndex(req.arch));
            const coder::IsaCoder isaCoder(mask);
            isaCoder.encodeSpan(resp.encoded);
        } else if (req.coder != CoderKind::Identity) {
            // 32-bit coders see each u64 as two little-endian words.
            std::vector<Word> words;
            words.reserve(req.words.size() * 2);
            for (const std::uint64_t w : req.words) {
                words.push_back(static_cast<Word>(w));
                words.push_back(static_cast<Word>(w >> 32));
            }
            if (req.coder == CoderKind::Nv) {
                coder::NvCoder{}.encodeSpan(words);
            } else {
                coder::VsCoder(static_cast<int>(req.vsPivot))
                    .encode(words);
            }
            for (std::size_t i = 0; i < resp.encoded.size(); ++i) {
                resp.encoded[i] =
                    static_cast<std::uint64_t>(words[2 * i])
                    | (static_cast<std::uint64_t>(words[2 * i + 1])
                       << 32);
            }
        }

        for (const std::uint64_t w : resp.encoded)
            resp.onesAfter += static_cast<std::uint64_t>(hammingWeight64(w));

        Frame out;
        out.type = MsgType::EvalCoderResponse;
        out.payload = resp.encode();
        return out;
    });
}

Frame
RequestHandler::handleBitDensity(const Frame &request) const
{
    const auto decoded = BitDensityRequest::decode(request.payload);
    if (!decoded.ok())
        return errorFrame(decoded.error());
    const AppQuery &q = decoded.value().query;

    return guarded([&] {
        const workload::AppSpec &spec = workload::findApp(q.abbr);
        const core::ExperimentDriver driver(configFor(q));
        const auto run = driver.runAppChecked(spec, runOptionsFor(q));
        if (!run.ok())
            return errorFrame(run.error());

        BitDensityResponse resp;
        resp.cycles = run.value().gpuStats.cycles;
        resp.instructions = run.value().gpuStats.sm.issued;
        const core::EnergyAccountant &acc = *run.value().accountant;
        for (const coder::UnitId unit : coder::allUnits()) {
            if (unit == coder::UnitId::Noc)
                continue;
            BitDensityResponse::Unit u;
            u.unit = static_cast<std::uint8_t>(unit);
            bool any = false;
            for (const coder::Scenario s : coder::allScenarios) {
                const auto stats = acc.unitStats(s);
                const auto it = stats.find(unit);
                if (it == stats.end())
                    continue;
                BitStats all = it->second.reads;
                all.merge(it->second.writes);
                if (all.bits())
                    any = true;
                u.density[static_cast<std::size_t>(
                    coder::scenarioIndex(s))] = all.oneRatio();
            }
            if (any)
                resp.units.push_back(u);
        }
        for (const coder::Scenario s : coder::allScenarios) {
            const auto &noc = acc.noc(s);
            resp.nocDensity[static_cast<std::size_t>(
                coder::scenarioIndex(s))] =
                noc.payloadBits
                    ? static_cast<double>(noc.payloadOnes)
                          / static_cast<double>(noc.payloadBits)
                    : 0.0;
        }

        Frame out;
        out.type = MsgType::BitDensityResponse;
        out.payload = resp.encode();
        return out;
    });
}

Frame
RequestHandler::handleChipEnergy(const Frame &request) const
{
    const auto decoded = ChipEnergyRequest::decode(request.payload);
    if (!decoded.ok())
        return errorFrame(decoded.error());
    const ChipEnergyRequest &req = decoded.value();

    return guarded([&] {
        const workload::AppSpec &spec = workload::findApp(req.query.abbr);
        const core::ExperimentDriver driver(configFor(req.query));
        const auto run =
            driver.runAppChecked(spec, runOptionsFor(req.query));
        if (!run.ok())
            return errorFrame(run.error());

        core::Pricing pricing;
        pricing.node = req.node == 0 ? circuit::TechNode::N28
                                     : circuit::TechNode::N40;
        pricing.pstate = req.pstate == 0   ? gpu::pstateNominal()
                         : req.pstate == 1 ? gpu::pstateMid()
                                           : gpu::pstateLow();
        pricing.cellKind = static_cast<circuit::CellKind>(req.cell);
        pricing.ecc = req.ecc != 0;
        pricing.cellsPerBitline = static_cast<int>(req.cellsBitline);

        const core::AppEnergy energy =
            driver.evaluate(run.value(), pricing);

        ChipEnergyResponse resp;
        resp.cycles = run.value().gpuStats.cycles;
        resp.instructions = run.value().gpuStats.sm.issued;
        for (const coder::Scenario s : coder::allScenarios) {
            const auto idx =
                static_cast<std::size_t>(coder::scenarioIndex(s));
            resp.chipEnergy[idx] = energy.at(s).chipTotal();
            resp.bvfUnitsEnergy[idx] = energy.at(s).bvfUnitsTotal();
        }

        Frame out;
        out.type = MsgType::ChipEnergyResponse;
        out.payload = resp.encode();
        return out;
    });
}

Frame
RequestHandler::handleStaticQuery(const Frame &request) const
{
    const auto decoded = StaticQueryRequest::decode(request.payload);
    if (!decoded.ok())
        return errorFrame(decoded.error());
    const AppQuery &q = decoded.value().query;

    return guarded([&] {
        const workload::AppSpec &spec = workload::findApp(q.abbr);
        const gpu::GpuConfig config = configFor(q);
        const isa::Program program = workload::buildProgram(spec);

        Word64 isaMask = 0;
        if (q.dynamicIsa) {
            const isa::InstructionEncoder encoder(config.arch);
            isaMask =
                isa::extractPreferenceMask(encoder.encode(program.body));
        }
        const core::StaticReport report = core::analyzeStatic(
            program, config, isaMask, static_cast<int>(q.vsPivot));

        StaticQueryResponse resp;
        resp.bestStatic = static_cast<std::uint8_t>(
            coder::scenarioIndex(report.prediction.bestStatic));
        for (const auto &[unit, bounds] : report.prediction.units) {
            StaticQueryResponse::Unit u;
            u.unit = static_cast<std::uint8_t>(unit);
            for (const coder::Scenario s : coder::allScenarios) {
                const auto idx =
                    static_cast<std::size_t>(coder::scenarioIndex(s));
                u.bounds[idx] = {bounds[idx].lo, bounds[idx].hi,
                                 static_cast<std::uint8_t>(
                                     bounds[idx].any ? 1 : 0)};
            }
            resp.units.push_back(u);
        }
        for (const coder::Scenario s : coder::allScenarios) {
            const auto idx =
                static_cast<std::size_t>(coder::scenarioIndex(s));
            resp.noc[idx] = {report.prediction.noc[idx].lo,
                             report.prediction.noc[idx].hi,
                             static_cast<std::uint8_t>(
                                 report.prediction.noc[idx].any ? 1 : 0)};
        }

        Frame out;
        out.type = MsgType::StaticQueryResponse;
        out.payload = resp.encode();
        return out;
    });
}

Frame
RequestHandler::handleStaticAdvice(const Frame &request) const
{
    const auto decoded = StaticAdviceRequest::decode(request.payload);
    if (!decoded.ok())
        return errorFrame(decoded.error());
    const AppQuery &q = decoded.value().query;

    return guarded([&] {
        const workload::AppSpec &spec = workload::findApp(q.abbr);
        const gpu::GpuConfig config = configFor(q);
        const isa::Program program = workload::buildProgram(spec);

        analysis::AdvisorOptions opts;
        opts.arch = config.arch;
        opts.lineBytes = config.lineBytes;
        const analysis::StaticAdvice advice = analysis::adviseProgram(
            program, analysis::analyzeProgram(program), opts);

        const auto wireBound = [](const analysis::DensityBound &b) {
            return StaticAdviceResponse::Bound{
                b.lo, b.hi, static_cast<std::uint8_t>(b.any ? 1 : 0)};
        };

        StaticAdviceResponse resp;
        resp.bestPivot = static_cast<std::uint8_t>(advice.pivot.bestPivot);
        resp.provenSlack = advice.pivot.provenSlack;
        resp.affineSources =
            static_cast<std::uint32_t>(advice.pivot.affineSources);
        resp.totalSources =
            static_cast<std::uint32_t>(advice.pivot.totalSources);
        for (std::size_t p = 0; p < 32; ++p) {
            resp.pivotBounds[p] = wireBound(advice.pivot.bounds[p]);
            resp.pivotScores[p] = advice.pivot.score[p];
        }
        resp.defaultMask = advice.isa.defaultMask;
        resp.specializedMask = advice.isa.specializedMask;
        const auto any =
            static_cast<std::uint8_t>(advice.isa.anyInstruction ? 1 : 0);
        resp.defaultDensity = {advice.isa.defaultDensity.lo,
                               advice.isa.defaultDensity.hi, any};
        resp.specializedDensity = {advice.isa.specializedDensity.lo,
                                   advice.isa.specializedDensity.hi, any};
        resp.bestScenario = static_cast<std::uint8_t>(
            coder::scenarioIndex(advice.bestScenario));
        for (const analysis::UnitPick &pick : advice.unitPicks) {
            StaticAdviceResponse::UnitPick u;
            u.unit = static_cast<std::uint8_t>(pick.unit);
            u.pick = static_cast<std::uint8_t>(
                coder::scenarioIndex(pick.pick));
            u.proven = static_cast<std::uint8_t>(pick.proven ? 1 : 0);
            u.nv = wireBound(pick.nv);
            u.vs = wireBound(pick.vs);
            resp.unitPicks.push_back(u);
        }

        Frame out;
        out.type = MsgType::StaticAdviceResponse;
        out.payload = resp.encode();
        return out;
    });
}

Frame
RequestHandler::handleSubmitKernel(const Frame &request) const
{
    const auto decoded = SubmitKernelRequest::decode(request.payload);
    if (!decoded.ok())
        return errorFrame(decoded.error());
    const SubmitKernelRequest &req = decoded.value();

    return guarded([&] {
        const auto outcome =
            kernels_->submit(req.bytecode, req.optimize != 0);
        if (!outcome.ok())
            return errorFrame(outcome.error());
        const SubmitOutcome &sub = outcome.value();

        SubmitKernelResponse resp;
        resp.admitted = sub.admitted ? 1 : 0;
        resp.digest = sub.digest;
        resp.optimizeRequested = req.optimize;
        resp.optimized = sub.optimized ? 1 : 0;
        resp.optimizedDigest = sub.optimizedDigest;
        resp.tripBound = sub.certificate.warpTripBound;
        resp.globalLo = sub.certificate.global.lo;
        resp.globalHi = sub.certificate.global.hi;
        for (const analysis::Rejection &rej : sub.rejections) {
            if (resp.rejections.size() >= kMaxWireRejections)
                break;
            SubmitKernelResponse::WireRejection wire;
            wire.reason = static_cast<std::uint8_t>(rej.reason);
            wire.pc = static_cast<std::uint32_t>(rej.pc);
            wire.message = rej.message.substr(0, 4096);
            resp.rejections.push_back(std::move(wire));
        }

        Frame out;
        out.type = MsgType::SubmitKernelResponse;
        out.payload = resp.encode();
        return out;
    });
}

Frame
RequestHandler::handleEvalSubmitted(const Frame &request) const
{
    const auto decoded = EvalSubmittedRequest::decode(request.payload);
    if (!decoded.ok())
        return errorFrame(decoded.error());
    const EvalSubmittedRequest &req = decoded.value();

    const auto stored = kernels_->find(req.digest);
    if (!stored) {
        return errorFrame(Error{
            ErrorCode::InvalidArgument,
            strFormat("no admitted kernel under digest '%s'",
                      req.digest.c_str())});
    }

    return guarded([&] {
        gpu::GpuConfig config = gpu::baselineConfig();
        config.arch = archFromIndex(req.arch);
        config.scheduler = schedFromIndex(req.sched);
        const core::ExperimentDriver driver(config);

        // The certificate is enforced while the kernel runs: the probe
        // fatal()s -- trapped by guarded() -- on any trip-count or
        // footprint escape, which would be a verifier soundness bug.
        core::ContractProbe probe(stored->certificate);
        core::RunOptions options;
        options.dynamicIsa = req.dynamicIsa != 0;
        options.vsRegisterPivot = static_cast<int>(req.vsPivot);
        options.probe = &probe;
        // A certificate proving uniform control flow unlocks the SM's
        // specialized dispatch loop (results are byte-identical).
        options.uniformDispatch =
            stored->certificate.uniformControlFlow;

        const auto run =
            driver.runProgramChecked(stored->program, options);
        if (!run.ok())
            return errorFrame(run.error());

        core::Pricing pricing;
        pricing.node = req.node == 0 ? circuit::TechNode::N28
                                     : circuit::TechNode::N40;
        pricing.pstate = req.pstate == 0   ? gpu::pstateNominal()
                         : req.pstate == 1 ? gpu::pstateMid()
                                           : gpu::pstateLow();
        pricing.cellKind = static_cast<circuit::CellKind>(req.cell);
        pricing.ecc = req.ecc != 0;
        pricing.cellsPerBitline = static_cast<int>(req.cellsBitline);

        const core::AppEnergy energy =
            driver.evaluate(run.value(), pricing);

        EvalSubmittedResponse resp;
        resp.cycles = run.value().gpuStats.cycles;
        resp.instructions = run.value().gpuStats.sm.issued;
        resp.maxWarpIssue = probe.maxIssued();
        resp.checkedAccesses = probe.checkedAccesses();
        for (const coder::Scenario s : coder::allScenarios) {
            const auto idx =
                static_cast<std::size_t>(coder::scenarioIndex(s));
            resp.chipEnergy[idx] = energy.at(s).chipTotal();
            resp.bvfUnitsEnergy[idx] = energy.at(s).bvfUnitsTotal();
        }

        Frame out;
        out.type = MsgType::EvalSubmittedResponse;
        out.payload = resp.encode();
        return out;
    });
}

Frame
RequestHandler::handle(const Frame &request) const
{
    switch (request.type) {
      case MsgType::PingRequest:
        return handlePing(request);
      case MsgType::EvalCoderRequest:
        return handleEvalCoder(request);
      case MsgType::BitDensityRequest:
        return handleBitDensity(request);
      case MsgType::ChipEnergyRequest:
        return handleChipEnergy(request);
      case MsgType::StaticQueryRequest:
        return handleStaticQuery(request);
      case MsgType::StaticAdviceRequest:
        return handleStaticAdvice(request);
      case MsgType::SubmitKernelRequest:
        return handleSubmitKernel(request);
      case MsgType::EvalSubmittedRequest:
        return handleEvalSubmitted(request);
      default:
        return errorFrame(Error{
            ErrorCode::InvalidArgument,
            strFormat("frame type %s is not a request",
                      msgTypeName(request.type).c_str())});
    }
}

} // namespace bvf::server
