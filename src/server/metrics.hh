/**
 * @file
 * bvfd service metrics.
 *
 * Lock-cheap counters and a log-scale latency histogram, rendered as
 * Prometheus-style plaintext for the /metrics endpoint. Counters are
 * atomics touched from worker and connection threads; the histogram
 * buckets are atomics too, so recording a latency never takes a lock.
 * Percentiles are derived from the histogram at scrape time -- an
 * approximation whose error is bounded by the bucket width (buckets
 * grow 2x from 1us, so the p99 is exact to within a factor of two,
 * plenty for spotting a queue backing up).
 */

#ifndef BVF_SERVER_METRICS_HH
#define BVF_SERVER_METRICS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "server/protocol.hh"

namespace bvf::server
{

/**
 * Version string exported through bvfd_build_info. Health checkers use
 * it to spot a mixed-version fleet before it corrupts a campaign.
 */
constexpr const char *kBuildVersion = "0.6.0";

/** Latency histogram: 2x buckets from 1us to ~17min, plus overflow. */
class LatencyHistogram
{
  public:
    static constexpr int kBuckets = 31;

    /** Record one latency sample. */
    void record(std::chrono::nanoseconds latency);

    /** Total recorded samples. */
    std::uint64_t count() const;

    /**
     * Approximate @p quantile (0..1) in seconds: upper edge of the
     * bucket holding that rank. 0 when nothing was recorded.
     */
    double quantile(double q) const;

    /** Upper edge of bucket @p i in seconds. */
    static double bucketEdge(int i);

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/**
 * Everything bvfd exports. One instance per server; threads record
 * into it concurrently, the metrics endpoint renders a snapshot.
 */
class Metrics
{
  public:
    /** Count one received request frame of @p type. */
    void onRequest(MsgType type);

    /** Count one completed request with its service latency. */
    void onResponse(MsgType type, std::chrono::nanoseconds latency);

    /**
     * Count one request of @p requestType that was answered with an
     * ErrorResponse. Keyed by the *request* type -- the response type
     * of a failure is always ErrorResponse, which would collapse every
     * failure into one bucket and hide which request family is sick.
     */
    void onError(MsgType requestType);

    /** Count one protocol violation (bad frame, refused request). */
    void onProtocolError() { protocolErrors_.fetch_add(1); }

    /** Count one accepted connection. */
    void onConnection() { connections_.fetch_add(1); }

    void addBytesIn(std::uint64_t n) { bytesIn_.fetch_add(n); }
    void addBytesOut(std::uint64_t n) { bytesOut_.fetch_add(n); }

    /**
     * Render the Prometheus-style plaintext exposition.
     * @param queueDepth  current runtime queue depth
     * @param workers     worker count of the serving pool
     * @param utilization pool busy fraction in [0, 1]
     */
    std::string render(std::size_t queueDepth, int workers,
                       double utilization) const;

    std::uint64_t requestsTotal() const;
    std::uint64_t responsesTotal() const;
    std::uint64_t errorsTotal() const;
    std::uint64_t errors(MsgType requestType) const;
    std::uint64_t protocolErrors() const { return protocolErrors_.load(); }

    /** Seconds since this Metrics instance was constructed. */
    double uptimeSeconds() const;

  private:
    /** Dense index for the per-type counters. */
    static int typeSlot(MsgType type);
    static constexpr int kTypeSlots = 9;

    std::array<std::atomic<std::uint64_t>, kTypeSlots> requests_{};
    std::array<std::atomic<std::uint64_t>, kTypeSlots> responses_{};
    std::array<std::atomic<std::uint64_t>, kTypeSlots> errors_{};
    std::atomic<std::uint64_t> protocolErrors_{0};
    std::atomic<std::uint64_t> connections_{0};
    std::atomic<std::uint64_t> bytesIn_{0};
    std::atomic<std::uint64_t> bytesOut_{0};
    LatencyHistogram latency_;
    std::chrono::steady_clock::time_point started_ =
        std::chrono::steady_clock::now();
};

} // namespace bvf::server

#endif // BVF_SERVER_METRICS_HH
