/**
 * @file
 * bvfd server implementation.
 */

#include "server/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>

#include "common/logging.hh"
#include "server/http.hh"

namespace bvf::server
{

namespace
{

/** write() the whole buffer, riding out short writes and EINTR. */
bool
writeAll(int fd, std::string_view bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

/** One request awaiting its in-order turn on the response stream. */
struct Slot
{
    Frame response;
    bool done = false;
    std::chrono::steady_clock::time_point submitted;
    MsgType requestType = MsgType::PingRequest;
};

/** Reader/writer rendezvous for one connection. */
struct Server::Connection
{
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::shared_ptr<Slot>> inflight;
    bool noMoreRequests = false; //!< reader saw EOF or a framing error
    bool dead = false;           //!< writer hit a send failure
};

Server::Server(ServerOptions options) : options_(std::move(options))
{
    dispatch_ = options_.handler
                    ? options_.handler
                    : [this](const Frame &f) { return handler_.handle(f); };
}

Server::~Server()
{
    drain();
}

Result<int>
Server::listenTcp()
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Error{ErrorCode::Io, "socket(): out of descriptors"};
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr)
        != 1) {
        ::close(fd);
        return Error{ErrorCode::InvalidArgument,
                     strFormat("bad bind address '%s'",
                               options_.host.c_str())};
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        != 0) {
        ::close(fd);
        return Error{ErrorCode::Io,
                     strFormat("cannot bind %s:%d: %s",
                               options_.host.c_str(), options_.port,
                               std::strerror(errno))};
    }
    if (::listen(fd, 64) != 0) {
        ::close(fd);
        return Error{ErrorCode::Io, std::strerror(errno)};
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len)
        == 0) {
        boundPort_ = ntohs(bound.sin_port);
    }
    return fd;
}

Result<int>
Server::listenUnix()
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return Error{ErrorCode::Io, "socket(): out of descriptors"};

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unixPath.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return Error{ErrorCode::InvalidArgument,
                     strFormat("unix socket path '%s' too long",
                               options_.unixPath.c_str())};
    }
    std::strncpy(addr.sun_path, options_.unixPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unixPath.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        != 0) {
        ::close(fd);
        return Error{ErrorCode::Io,
                     strFormat("cannot bind unix socket '%s': %s",
                               options_.unixPath.c_str(),
                               std::strerror(errno))};
    }
    if (::listen(fd, 64) != 0) {
        ::close(fd);
        return Error{ErrorCode::Io, std::strerror(errno)};
    }
    return fd;
}

Result<void>
Server::start()
{
    panic_if(started_, "Server::start() called twice");
    if (options_.host.empty() && options_.unixPath.empty()) {
        return Error{ErrorCode::InvalidArgument,
                     "neither a TCP address nor a unix socket path "
                     "was configured"};
    }
    if (options_.workers < 1 || options_.maxInflight < 1) {
        return Error{ErrorCode::InvalidArgument,
                     "workers and max-inflight must be at least 1"};
    }
    if (::pipe(stopPipe_) != 0)
        return Error{ErrorCode::Io, "pipe(): out of descriptors"};

    if (!options_.host.empty()) {
        auto fd = listenTcp();
        if (!fd.ok())
            return fd.error();
        tcpFd_ = fd.value();
    }
    if (!options_.unixPath.empty()) {
        auto fd = listenUnix();
        if (!fd.ok()) {
            if (tcpFd_ >= 0)
                ::close(tcpFd_);
            tcpFd_ = -1;
            return fd.error();
        }
        unixFd_ = fd.value();
    }

    pool_ = std::make_unique<runtime::ThreadPool>(options_.workers);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    started_ = true;
    return {};
}

void
Server::requestStop()
{
    // Async-signal-safe: one write, no locks, no allocation.
    stopping_.store(true, std::memory_order_relaxed);
    if (stopPipe_[1] >= 0) {
        const char byte = 's';
        [[maybe_unused]] ssize_t n = ::write(stopPipe_[1], &byte, 1);
    }
}

void
Server::waitForStop() const
{
    // Nobody ever reads the stop pipe, so once requestStop() writes
    // its byte the descriptor stays readable and every waiter (the
    // accept loop and any number of waitForStop callers) wakes.
    while (!stopping_.load(std::memory_order_relaxed)) {
        if (stopPipe_[0] < 0)
            return;
        pollfd p = {stopPipe_[0], POLLIN, 0};
        if (::poll(&p, 1, -1) < 0 && errno != EINTR)
            return;
        if (p.revents & POLLIN)
            return;
    }
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[3];
        nfds_t nfds = 0;
        fds[nfds++] = {stopPipe_[0], POLLIN, 0};
        if (tcpFd_ >= 0)
            fds[nfds++] = {tcpFd_, POLLIN, 0};
        if (unixFd_ >= 0)
            fds[nfds++] = {unixFd_, POLLIN, 0};

        if (::poll(fds, nfds, -1) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[0].revents & POLLIN)
            break; // requestStop()

        for (nfds_t i = 1; i < nfds; ++i) {
            if (!(fds[i].revents & POLLIN))
                continue;
            const int client = ::accept(fds[i].fd, nullptr, nullptr);
            if (client < 0)
                continue;
            metrics_.onConnection();
            std::lock_guard<std::mutex> lock(connMutex_);
            if (stopping_.load()) {
                ::close(client);
                continue;
            }
            connFds_.push_back(client);
            connThreads_.emplace_back([this, client] {
                serveConnection(client);
                // Forget the descriptor before its number can be
                // reused, or drain() could shut down a stranger.
                std::lock_guard<std::mutex> forget(connMutex_);
                connFds_.erase(std::remove(connFds_.begin(),
                                           connFds_.end(), client),
                               connFds_.end());
            });
        }
    }
}

void
Server::serveMetricsHttp(int fd, std::string already)
{
    // Consume the rest of the request head, bounded *before* we
    // buffer: an attacker feeding an endless request line must cost a
    // rejection, not memory. We answer any complete GET head.
    char buf[1024];
    HttpScanResult scan = scanHttpHead(already);
    while (scan.state == HttpScan::NeedMore) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0)
            break;
        already.append(buf, static_cast<std::size_t>(n));
        scan = scanHttpHead(already);
    }

    std::string head;
    std::string body;
    switch (scan.state) {
      case HttpScan::RequestLineTooLong:
        metrics_.onProtocolError();
        head = "HTTP/1.0 414 URI Too Long\r\n"
               "Connection: close\r\n\r\n";
        break;
      case HttpScan::HeadTooLong:
        metrics_.onProtocolError();
        head = "HTTP/1.0 431 Request Header Fields Too Large\r\n"
               "Connection: close\r\n\r\n";
        break;
      default:
        // Complete -- or EOF mid-head, in which case answering is
        // harmless and matches the old lenient behavior.
        body = renderMetrics();
        head = strFormat(
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4\r\n"
            "Content-Length: %zu\r\n"
            "Connection: close\r\n\r\n",
            body.size());
        break;
    }
    writeAll(fd, head);
    if (!body.empty())
        writeAll(fd, body);
    metrics_.addBytesOut(head.size() + body.size());
}

std::string
Server::renderMetrics() const
{
    const runtime::PoolStats stats =
        pool_ ? pool_->stats() : runtime::PoolStats{};
    return metrics_.render(pool_ ? pool_->queueDepth() : 0,
                           options_.workers,
                           stats.utilization(options_.workers))
           + handler_.kernelStore().renderMetrics();
}

void
Server::serveConnection(int fd)
{
    auto conn = std::make_shared<Connection>();

    // Writer: flush responses in request order as they complete.
    std::thread writer([this, fd, conn] {
        for (;;) {
            std::shared_ptr<Slot> slot;
            {
                std::unique_lock<std::mutex> lock(conn->mutex);
                conn->cv.wait(lock, [&] {
                    return (!conn->inflight.empty()
                            && conn->inflight.front()->done)
                           || (conn->noMoreRequests
                               && conn->inflight.empty());
                });
                if (conn->inflight.empty())
                    return; // drained and closed
                slot = conn->inflight.front();
                conn->inflight.pop_front();
            }
            conn->cv.notify_all(); // reader may be waiting on the window
            const std::string bytes =
                encodeFrame(slot->response.type, slot->response.payload);
            if (!writeAll(fd, bytes)) {
                {
                    std::lock_guard<std::mutex> lock(conn->mutex);
                    conn->dead = true;
                    conn->inflight.clear();
                }
                conn->cv.notify_all();
                ::shutdown(fd, SHUT_RD); // unblock the reader
                return;
            }
            metrics_.addBytesOut(bytes.size());
        }
    });

    std::string buf;
    bool sniffed = false;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break; // EOF (or drain's shutdown(SHUT_RD))
        metrics_.addBytesIn(static_cast<std::uint64_t>(n));
        buf.append(chunk, static_cast<std::size_t>(n));

        if (!sniffed && buf.size() >= 4) {
            sniffed = true;
            if (buf.compare(0, 4, "GET ") == 0) {
                // Plaintext metrics ride the binary port.
                {
                    std::lock_guard<std::mutex> lock(conn->mutex);
                    conn->noMoreRequests = true;
                }
                conn->cv.notify_all();
                writer.join();
                serveMetricsHttp(fd, std::move(buf));
                ::shutdown(fd, SHUT_RDWR);
                ::close(fd);
                return;
            }
        }

        bool fatalFraming = false;
        while (!buf.empty()) {
            std::size_t consumed = 0;
            auto parsed = parseFrame(buf, consumed);
            if (!parsed.ok()) {
                if (parsed.error().code == ErrorCode::Truncated)
                    break; // need more bytes
                // Framing is broken: answer once, then hang up.
                metrics_.onProtocolError();
                auto slot = std::make_shared<Slot>();
                slot->response = errorFrame(parsed.error());
                slot->done = true;
                slot->requestType = MsgType::ErrorResponse;
                {
                    std::lock_guard<std::mutex> lock(conn->mutex);
                    conn->inflight.push_back(std::move(slot));
                }
                conn->cv.notify_all();
                fatalFraming = true;
                break;
            }
            buf.erase(0, consumed);
            metrics_.onRequest(parsed.value().type);

            auto slot = std::make_shared<Slot>();
            slot->submitted = std::chrono::steady_clock::now();
            slot->requestType = parsed.value().type;
            {
                // Backpressure: cap this connection's pending work.
                std::unique_lock<std::mutex> lock(conn->mutex);
                conn->cv.wait(lock, [&] {
                    return conn->dead
                           || conn->inflight.size()
                                  < static_cast<std::size_t>(
                                        options_.maxInflight);
                });
                if (conn->dead)
                    break;
                conn->inflight.push_back(slot);
            }
            pool_->submit([this, conn, slot,
                           frame = std::move(parsed.value())] {
                Frame response = dispatch_(frame);
                if (response.type == MsgType::ErrorResponse)
                    metrics_.onError(frame.type);
                const auto latency =
                    std::chrono::steady_clock::now() - slot->submitted;
                metrics_.onResponse(
                    response.type,
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        latency));
                {
                    std::lock_guard<std::mutex> lock(conn->mutex);
                    slot->response = std::move(response);
                    slot->done = true;
                }
                conn->cv.notify_all();
            });
        }
        bool dead;
        {
            std::lock_guard<std::mutex> lock(conn->mutex);
            dead = conn->dead;
        }
        if (fatalFraming || dead)
            break;
    }

    {
        std::lock_guard<std::mutex> lock(conn->mutex);
        conn->noMoreRequests = true;
    }
    conn->cv.notify_all();
    writer.join(); // flushes every accepted request's response
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
}

void
Server::drain()
{
    if (!started_ || drained_)
        return;
    drained_ = true;

    requestStop();
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (tcpFd_ >= 0)
        ::close(tcpFd_);
    if (unixFd_ >= 0) {
        ::close(unixFd_);
        ::unlink(options_.unixPath.c_str());
    }

    // Readers wake with EOF; writers then flush and exit.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (const int fd : connFds_)
            ::shutdown(fd, SHUT_RD);
        threads.swap(connThreads_);
        connFds_.clear();
    }
    for (std::thread &t : threads) {
        if (t.joinable())
            t.join();
    }

    if (pool_)
        pool_->shutdown();
    for (int &fd : stopPipe_) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
    inform("bvfd: drained (served %llu request(s))",
           static_cast<unsigned long long>(metrics_.responsesTotal()));
}

} // namespace bvf::server
