/**
 * @file
 * Byte-stream transport seam.
 *
 * Both sides of the wire protocol used to talk to raw file descriptors
 * directly, which meant every fault a transport can exhibit -- a frame
 * truncated inside its CRC, a duplicated response, a connection reset
 * mid-write -- could only be provoked with real sockets and real
 * processes. Transport is the seam: the coordinator's WorkerClient and
 * the server's per-connection loops move bytes through this interface,
 * SocketTransport is the production poll()-driven implementation, and
 * the simulation harness (sim/sim_net.hh) substitutes an in-memory one
 * whose fault schedule is driven from a seed.
 *
 * Semantics both implementations honour:
 *  - send() writes the whole buffer or fails; a deadline of <= 0ms
 *    means "block forever".
 *  - recv() returns at least one byte, or an empty string on orderly
 *    EOF, or an error (Timeout when the budget ran out, Io on reset).
 *  - full-duplex: one thread may sit in recv() while another send()s;
 *    implementations keep no state shared between the directions.
 */

#ifndef BVF_SERVER_TRANSPORT_HH
#define BVF_SERVER_TRANSPORT_HH

#include <chrono>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.hh"

namespace bvf::server
{

/** One bidirectional byte stream. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Write all of @p bytes within @p deadline (<= 0 blocks forever). */
    virtual Result<void> send(std::string_view bytes,
                              std::chrono::milliseconds deadline) = 0;

    /**
     * Read some bytes within @p deadline (<= 0 blocks forever).
     * Empty string = orderly EOF.
     */
    virtual Result<std::string>
    recv(std::chrono::milliseconds deadline) = 0;

    /** Tear the stream down; further send/recv fail. Idempotent. */
    virtual void close() = 0;
};

using TransportPtr = std::unique_ptr<Transport>;

/** poll()-driven Transport over a connected socket descriptor. */
class SocketTransport final : public Transport
{
  public:
    /**
     * Wrap @p fd. When @p owned, close() (and the destructor) close
     * the descriptor; a non-owning wrapper leaves lifetime with the
     * caller (the server's connection loop owns its fd elsewhere).
     */
    explicit SocketTransport(int fd, bool owned = true)
        : fd_(fd), owned_(owned)
    {
    }

    ~SocketTransport() override { close(); }

    SocketTransport(const SocketTransport &) = delete;
    SocketTransport &operator=(const SocketTransport &) = delete;

    Result<void> send(std::string_view bytes,
                      std::chrono::milliseconds deadline) override;
    Result<std::string> recv(std::chrono::milliseconds deadline) override;
    void close() override;

    int fd() const { return fd_; }

    /**
     * Deadline-bounded non-blocking connect to @p host:@p port
     * (IPv4 dotted quad).
     */
    static Result<TransportPtr>
    dialTcp(const std::string &host, int port,
            std::chrono::milliseconds deadline);

    /** Deadline-bounded connect to a Unix-domain socket at @p path. */
    static Result<TransportPtr>
    dialUnix(const std::string &path, std::chrono::milliseconds deadline);

  private:
    int fd_ = -1;
    bool owned_ = true;
};

} // namespace bvf::server

#endif // BVF_SERVER_TRANSPORT_HH
