/**
 * @file
 * bvfd wire protocol: CRC32-framed, length-prefixed binary messages.
 *
 * A connection carries a stream of frames in either direction. Every
 * frame is:
 *
 *   magic   "BVFP"                       4 bytes
 *   version u8   (= kProtocolVersion)    1 byte
 *   type    u8   (MsgType)               1 byte
 *   flags   u16  (reserved, must be 0)   2 bytes
 *   length  u32  payload byte count      4 bytes
 *   crc     u32  CRC-32 of the 12 header
 *                bytes above + payload   4 bytes
 *   payload length bytes
 *
 * All integers little-endian; doubles are IEEE-754 bit patterns in a
 * u64, so energies survive the wire bit-identically. The CRC makes a
 * torn or corrupted stream detectable before any request is executed;
 * a length above kMaxPayload is rejected without buffering (a 4 GB
 * length field must not allocate 4 GB); an unknown version is refused
 * as Unsupported so old clients fail loudly against new daemons.
 *
 * Requests are answered *in order* per connection: a client may write a
 * whole batch of requests back to back and read the same number of
 * responses. The server evaluates the batch concurrently but responds
 * in request order (see server.hh).
 */

#ifndef BVF_SERVER_PROTOCOL_HH
#define BVF_SERVER_PROTOCOL_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "coder/scenario.hh"
#include "common/result.hh"

namespace bvf::server
{

constexpr std::uint8_t kProtocolVersion = 1;

/** Frame header byte count (magic through crc). */
constexpr std::size_t kHeaderBytes = 16;

/** Hard cap on one frame's payload (1 MiB). */
constexpr std::uint32_t kMaxPayload = 1u << 20;

/** Frame types. Requests have the high bit clear, responses set. */
enum class MsgType : std::uint8_t
{
    PingRequest = 0x01,
    EvalCoderRequest = 0x02,
    BitDensityRequest = 0x03,
    ChipEnergyRequest = 0x04,
    StaticQueryRequest = 0x05,
    StaticAdviceRequest = 0x06,
    SubmitKernelRequest = 0x07,
    EvalSubmittedRequest = 0x08,

    PingResponse = 0x81,
    EvalCoderResponse = 0x82,
    BitDensityResponse = 0x83,
    ChipEnergyResponse = 0x84,
    StaticQueryResponse = 0x85,
    StaticAdviceResponse = 0x86,
    SubmitKernelResponse = 0x87,
    EvalSubmittedResponse = 0x88,
    ErrorResponse = 0xff,
};

/** Display name, e.g. "eval-coder-request". */
std::string msgTypeName(MsgType type);

/** Is @p raw a defined MsgType value? */
bool msgTypeKnown(std::uint8_t raw);

/** One decoded frame. */
struct Frame
{
    MsgType type = MsgType::ErrorResponse;
    std::string payload;
};

/** Serialize one frame (header + payload). */
std::string encodeFrame(MsgType type, std::string_view payload);

/**
 * Parse the first frame of @p bytes. On success @p consumed is the
 * frame's total size. ErrorCode::Truncated means "feed me more bytes";
 * every other error is a real protocol violation (bad magic or CRC,
 * oversized length, unknown version) and the connection should die.
 */
Result<Frame> parseFrame(std::string_view bytes, std::size_t &consumed);

// --- Payload serialization helpers -----------------------------------

/** Append-only little-endian payload builder. */
class WireWriter
{
  public:
    void putU8(std::uint8_t v);
    void putU16(std::uint16_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putF64(double v); //!< IEEE-754 bits in a u64
    void putString(std::string_view s); //!< u32 length + bytes

    /** u32 length + bytes, capped by the frame payload rather than the
     *  short-string limit (kernel bytecode rides here). */
    void putBlob(std::string_view s);

    const std::string &str() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/** Cursor over a payload; every get fails softly at the end. */
class WireReader
{
  public:
    explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

    bool getU8(std::uint8_t &v);
    bool getU16(std::uint16_t &v);
    bool getU32(std::uint32_t &v);
    bool getU64(std::uint64_t &v);
    bool getF64(double &v);
    bool getString(std::string &v, std::uint32_t maxLen);

    /** Every byte consumed? (trailing garbage is a decode error) */
    bool exhausted() const { return pos_ == bytes_.size(); }

    /**
     * Bytes not yet consumed. Decoders check claimed element counts
     * against this *before* allocating, so a short hostile payload
     * cannot drive a large allocation off its count field.
     */
    std::size_t remaining() const { return bytes_.size() - pos_; }

  private:
    std::string_view bytes_;
    std::size_t pos_ = 0;
};

// --- Messages ---------------------------------------------------------

/** Number of per-scenario slots every response table carries. */
constexpr std::size_t kScenarioSlots =
    static_cast<std::size_t>(coder::numScenarios);

/** Ping: echo test and liveness probe. */
struct Ping
{
    std::uint64_t nonce = 0;

    std::string encode() const;
    static Result<Ping> decode(std::string_view payload);
};

/** Which coder an EvalCoder request exercises. */
enum class CoderKind : std::uint8_t
{
    Identity = 0,
    Nv = 1,  //!< narrow-value XNOR coder (32-bit words)
    Vs = 2,  //!< value-similarity block coder (32-bit words)
    Isa = 3, //!< ISA-preference mask coder (64-bit encodings)
};

/**
 * Evaluate one coder over raw words. Words travel as u64; the 32-bit
 * coders (identity/nv/vs) treat each as two little-endian 32-bit words,
 * the ISA coder consumes them whole.
 */
struct EvalCoderRequest
{
    CoderKind coder = CoderKind::Identity;
    std::uint8_t arch = 3;    //!< isa::GpuArch index (isa coder)
    std::uint32_t vsPivot = 0; //!< VS pivot lane (vs coder)
    std::uint64_t isaMask = 0; //!< 0 = Table 2 mask of arch
    std::vector<std::uint64_t> words;

    std::string encode() const;
    static Result<EvalCoderRequest> decode(std::string_view payload);
};

/** Bit statistics before/after encoding, plus the encoded words. */
struct EvalCoderResponse
{
    std::uint64_t totalBits = 0;
    std::uint64_t onesBefore = 0;
    std::uint64_t onesAfter = 0;
    std::vector<std::uint64_t> encoded;

    std::string encode() const;
    static Result<EvalCoderResponse> decode(std::string_view payload);
};

/** App-keyed request core shared by density/energy/static queries. */
struct AppQuery
{
    std::string abbr;          //!< suite abbreviation, e.g. "KMN"
    std::uint8_t arch = 3;     //!< isa::GpuArch index
    std::uint8_t sched = 0;    //!< gpu::SchedulerPolicy index
    std::uint32_t vsPivot = 21;
    std::uint8_t dynamicIsa = 0;
};

/** Simulate an app; report per-unit encoded bit-1 density. */
struct BitDensityRequest
{
    AppQuery query;

    std::string encode() const;
    static Result<BitDensityRequest> decode(std::string_view payload);
};

struct BitDensityResponse
{
    struct Unit
    {
        std::uint8_t unit = 0; //!< coder::UnitId index
        std::array<double, kScenarioSlots> density{};
    };

    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::vector<Unit> units;
    std::array<double, kScenarioSlots> nocDensity{};

    std::string encode() const;
    static Result<BitDensityResponse> decode(std::string_view payload);
};

/** Simulate an app and price it: per-scenario chip energy. */
struct ChipEnergyRequest
{
    AppQuery query;
    std::uint8_t node = 0;   //!< 0 = 28nm, 1 = 40nm
    std::uint8_t pstate = 0; //!< 0 = 700MHz, 1 = 500MHz, 2 = 300MHz
    std::uint8_t cell = 0;   //!< circuit::CellKind index
    std::uint8_t ecc = 0;
    std::uint32_t cellsBitline = 128;

    std::string encode() const;
    static Result<ChipEnergyRequest> decode(std::string_view payload);
};

struct ChipEnergyResponse
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::array<double, kScenarioSlots> chipEnergy{};
    std::array<double, kScenarioSlots> bvfUnitsEnergy{};

    std::string encode() const;
    static Result<ChipEnergyResponse> decode(std::string_view payload);
};

/** Static predictor query: proven density bounds, no simulation. */
struct StaticQueryRequest
{
    AppQuery query;

    std::string encode() const;
    static Result<StaticQueryRequest> decode(std::string_view payload);
};

struct StaticQueryResponse
{
    struct Bound
    {
        double lo = 0.0;
        double hi = 1.0;
        std::uint8_t any = 0;
    };
    struct Unit
    {
        std::uint8_t unit = 0; //!< coder::UnitId index
        std::array<Bound, kScenarioSlots> bounds{};
    };

    std::uint8_t bestStatic = 0; //!< coder::Scenario index
    std::vector<Unit> units;
    std::array<Bound, kScenarioSlots> noc{};

    std::string encode() const;
    static Result<StaticQueryResponse> decode(std::string_view payload);
};

/**
 * Static advisor query: derive the coder wiring itself (VS register
 * pivot, specialized ISA mask, per-unit NV-vs-VS picks) from the
 * lane-aware analysis, without simulating. Only abbr and arch of the
 * query matter; pivot/mask are outputs here, not inputs.
 */
struct StaticAdviceRequest
{
    AppQuery query;

    std::string encode() const;
    static Result<StaticAdviceRequest> decode(std::string_view payload);
};

struct StaticAdviceResponse
{
    using Bound = StaticQueryResponse::Bound;

    struct UnitPick
    {
        std::uint8_t unit = 0;   //!< coder::UnitId index
        std::uint8_t pick = 0;   //!< coder::Scenario index (NvOnly/VsOnly)
        std::uint8_t proven = 0; //!< winner's interval clears the loser's
        Bound nv;
        Bound vs;
    };

    // VS register pivot ranking.
    std::uint8_t bestPivot = 21;
    double provenSlack = 1.0;
    std::uint32_t affineSources = 0;
    std::uint32_t totalSources = 0;
    std::array<Bound, 32> pivotBounds{};
    std::array<double, 32> pivotScores{};

    // ISA mask specialization; the density bounds' any flag mirrors
    // IsaAdvice::anyInstruction.
    std::uint64_t defaultMask = 0;
    std::uint64_t specializedMask = 0;
    Bound defaultDensity{};
    Bound specializedDensity{};

    std::uint8_t bestScenario = 0; //!< coder::Scenario index
    std::vector<UnitPick> unitPicks;

    std::string encode() const;
    static Result<StaticAdviceResponse> decode(std::string_view payload);
};

/** Caps for the kernel-submission messages. */
constexpr std::uint32_t kMaxDigestBytes = 64;
constexpr std::uint32_t kMaxWireRejections = 256;

/**
 * Submit an untrusted kernel -- a BVFK bytecode frame (isa/bytecode.hh)
 * -- for static admission. The daemon decodes and verifies it; an
 * admitted kernel is stored under a content digest for later
 * EvalSubmitted requests and never reaches an SM without one. A
 * *rejection* is a successful response carrying the machine-readable
 * reasons; only undecodable bytecode or a full kernel store comes back
 * as an ErrorResponse.
 */
struct SubmitKernelRequest
{
    std::string bytecode;

    /**
     * Optimize-on-submit: after admission, run the certificate-guided
     * optimizer and store the validated optimized program alongside
     * the original. Encoded as an optional trailing byte -- absent
     * (old clients) means 0, so the wire format is fully backward
     * compatible in both directions.
     */
    std::uint8_t optimize = 0;

    std::string encode() const;
    static Result<SubmitKernelRequest> decode(std::string_view payload);
};

struct SubmitKernelResponse
{
    struct WireRejection
    {
        std::uint8_t reason = 0; //!< analysis::RejectReason index
        std::uint32_t pc = 0;
        std::string message;
    };

    std::uint8_t admitted = 0;
    std::string digest;          //!< handle for EvalSubmitted ("" if rejected)
    std::uint64_t tripBound = 0; //!< proven per-warp issue bound
    std::uint32_t globalLo = 0;  //!< proven global footprint hull [lo, hi]
    std::uint32_t globalHi = 0;

    /** First kMaxWireRejections rejections, sorted by pc. */
    std::vector<WireRejection> rejections;

    /**
     * Optimize-on-submit tail, present on the wire only when set (the
     * daemon sets it iff the request carried the optimize flag).
     * `optimized` says whether a validated optimized program was
     * stored; its digest then names a first-class kernel usable with
     * EvalSubmitted. optimized=0 with the tail present means the
     * optimizer fell back to the original (nothing to do, validation
     * failure, or a weaker certificate).
     */
    std::uint8_t optimizeRequested = 0;
    std::uint8_t optimized = 0;
    std::string optimizedDigest;

    std::string encode() const;
    static Result<SubmitKernelResponse> decode(std::string_view payload);
};

/** Simulate and price a previously admitted kernel by digest. */
struct EvalSubmittedRequest
{
    std::string digest;
    std::uint8_t arch = 3;     //!< isa::GpuArch index
    std::uint8_t sched = 0;    //!< gpu::SchedulerPolicy index
    std::uint32_t vsPivot = 21;
    std::uint8_t dynamicIsa = 0;
    std::uint8_t node = 0;     //!< 0 = 28nm, 1 = 40nm
    std::uint8_t pstate = 0;   //!< 0 = 700MHz, 1 = 500MHz, 2 = 300MHz
    std::uint8_t cell = 0;     //!< circuit::CellKind index
    std::uint8_t ecc = 0;
    std::uint32_t cellsBitline = 128;

    std::string encode() const;
    static Result<EvalSubmittedRequest> decode(std::string_view payload);
};

struct EvalSubmittedResponse
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;

    /** Contract-probe observations (certificate enforcement). */
    std::uint64_t maxWarpIssue = 0;
    std::uint64_t checkedAccesses = 0;

    std::array<double, kScenarioSlots> chipEnergy{};
    std::array<double, kScenarioSlots> bvfUnitsEnergy{};

    std::string encode() const;
    static Result<EvalSubmittedResponse> decode(std::string_view payload);
};

/** Structured failure for one request. */
struct WireError
{
    std::uint8_t code = 0; //!< ErrorCode index
    std::string message;

    std::string encode() const;
    static Result<WireError> decode(std::string_view payload);
};

} // namespace bvf::server

#endif // BVF_SERVER_PROTOCOL_HH
