/**
 * @file
 * Wire protocol implementation.
 */

#include "server/protocol.hh"

#include <bit>
#include <cstring>

#include "analysis/verifier.hh"
#include "common/crc32.hh"

namespace bvf::server
{

namespace
{

constexpr char kMagic[4] = {'B', 'V', 'F', 'P'};

/** Cap on one request's word vector (fits kMaxPayload with headroom). */
constexpr std::uint32_t kMaxWords = kMaxPayload / 8 - 16;

/** Cap on strings travelling in requests (app abbreviations, errors). */
constexpr std::uint32_t kMaxString = 4096;

Error
corrupt(const std::string &what)
{
    return Error{ErrorCode::Corrupt, what};
}

Error
truncatedPayload()
{
    return Error{ErrorCode::Truncated, "payload ends mid-field"};
}

Error
trailingGarbage()
{
    return Error{ErrorCode::Corrupt, "payload has trailing bytes"};
}

} // namespace

std::string
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::PingRequest:
        return "ping-request";
      case MsgType::EvalCoderRequest:
        return "eval-coder-request";
      case MsgType::BitDensityRequest:
        return "bit-density-request";
      case MsgType::ChipEnergyRequest:
        return "chip-energy-request";
      case MsgType::StaticQueryRequest:
        return "static-query-request";
      case MsgType::StaticAdviceRequest:
        return "static-advice-request";
      case MsgType::SubmitKernelRequest:
        return "submit-kernel-request";
      case MsgType::EvalSubmittedRequest:
        return "eval-submitted-request";
      case MsgType::PingResponse:
        return "ping-response";
      case MsgType::EvalCoderResponse:
        return "eval-coder-response";
      case MsgType::BitDensityResponse:
        return "bit-density-response";
      case MsgType::ChipEnergyResponse:
        return "chip-energy-response";
      case MsgType::StaticQueryResponse:
        return "static-query-response";
      case MsgType::StaticAdviceResponse:
        return "static-advice-response";
      case MsgType::SubmitKernelResponse:
        return "submit-kernel-response";
      case MsgType::EvalSubmittedResponse:
        return "eval-submitted-response";
      case MsgType::ErrorResponse:
        return "error-response";
    }
    return "?";
}

bool
msgTypeKnown(std::uint8_t raw)
{
    switch (static_cast<MsgType>(raw)) {
      case MsgType::PingRequest:
      case MsgType::EvalCoderRequest:
      case MsgType::BitDensityRequest:
      case MsgType::ChipEnergyRequest:
      case MsgType::StaticQueryRequest:
      case MsgType::StaticAdviceRequest:
      case MsgType::SubmitKernelRequest:
      case MsgType::EvalSubmittedRequest:
      case MsgType::PingResponse:
      case MsgType::EvalCoderResponse:
      case MsgType::BitDensityResponse:
      case MsgType::ChipEnergyResponse:
      case MsgType::StaticQueryResponse:
      case MsgType::StaticAdviceResponse:
      case MsgType::SubmitKernelResponse:
      case MsgType::EvalSubmittedResponse:
      case MsgType::ErrorResponse:
        return true;
    }
    return false;
}

// --- Framing ----------------------------------------------------------

std::string
encodeFrame(MsgType type, std::string_view payload)
{
    panic_if(payload.size() > kMaxPayload,
             "frame payload of %zu bytes exceeds the %u-byte cap",
             payload.size(), kMaxPayload);
    WireWriter w;
    // The header is itself little-endian wire fields; reuse the writer.
    std::string out;
    out.append(kMagic, sizeof(kMagic));
    w.putU8(kProtocolVersion);
    w.putU8(static_cast<std::uint8_t>(type));
    w.putU16(0); // flags
    w.putU32(static_cast<std::uint32_t>(payload.size()));
    out += w.str();
    // The CRC covers the header fields before it as well as the
    // payload: a type byte flipped into another *valid* type would
    // otherwise parse clean.
    Crc32 crc;
    crc.update(out.data(), out.size());
    crc.update(payload.data(), payload.size());
    WireWriter c;
    c.putU32(crc.value());
    out += c.str();
    out.append(payload);
    return out;
}

Result<Frame>
parseFrame(std::string_view bytes, std::size_t &consumed)
{
    if (bytes.size() < kHeaderBytes)
        return Error{ErrorCode::Truncated, "incomplete frame header"};
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return corrupt("bad frame magic");

    WireReader r(bytes.substr(sizeof(kMagic),
                              kHeaderBytes - sizeof(kMagic)));
    std::uint8_t version = 0, rawType = 0;
    std::uint16_t flags = 0;
    std::uint32_t length = 0, crc = 0;
    r.getU8(version);
    r.getU8(rawType);
    r.getU16(flags);
    r.getU32(length);
    r.getU32(crc);

    if (version != kProtocolVersion) {
        return Error{ErrorCode::Unsupported,
                     strFormat("protocol version %u, this build speaks %u",
                               version, kProtocolVersion)};
    }
    if (flags != 0)
        return corrupt("reserved frame flags set");
    if (!msgTypeKnown(rawType)) {
        return corrupt(strFormat("unknown message type 0x%02x", rawType));
    }
    if (length > kMaxPayload) {
        // Corrupt, not InvalidArgument: no conforming peer ever sends a
        // length above the cap, so an oversized field means the stream
        // itself is damaged.  The distinction matters to the fleet
        // coordinator, which retries framing damage on another worker
        // but records other error codes as application verdicts -- a
        // bit flip in this field must not convict the job it hit.
        return corrupt(strFormat("frame payload of %u bytes exceeds the "
                                 "%u-byte cap",
                                 length, kMaxPayload));
    }
    if (bytes.size() < kHeaderBytes + length)
        return Error{ErrorCode::Truncated, "incomplete frame payload"};

    const std::string_view payload = bytes.substr(kHeaderBytes, length);
    Crc32 check;
    check.update(bytes.data(), kHeaderBytes - sizeof(crc));
    check.update(payload.data(), payload.size());
    if (check.value() != crc)
        return corrupt("frame CRC mismatch");

    Frame frame;
    frame.type = static_cast<MsgType>(rawType);
    frame.payload.assign(payload);
    consumed = kHeaderBytes + length;
    return frame;
}

// --- Wire primitives --------------------------------------------------

void
WireWriter::putU8(std::uint8_t v)
{
    buf_.push_back(static_cast<char>(v));
}

void
WireWriter::putU16(std::uint16_t v)
{
    putU8(static_cast<std::uint8_t>(v));
    putU8(static_cast<std::uint8_t>(v >> 8));
}

void
WireWriter::putU32(std::uint32_t v)
{
    putU16(static_cast<std::uint16_t>(v));
    putU16(static_cast<std::uint16_t>(v >> 16));
}

void
WireWriter::putU64(std::uint64_t v)
{
    putU32(static_cast<std::uint32_t>(v));
    putU32(static_cast<std::uint32_t>(v >> 32));
}

void
WireWriter::putF64(double v)
{
    putU64(std::bit_cast<std::uint64_t>(v));
}

void
WireWriter::putString(std::string_view s)
{
    panic_if(s.size() > kMaxString,
             "wire string of %zu bytes exceeds the %u-byte cap",
             s.size(), kMaxString);
    putU32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
}

void
WireWriter::putBlob(std::string_view s)
{
    // Blobs (kernel bytecode) are capped by the frame payload, not the
    // short-string cap; 64 bytes of headroom cover the rest of the
    // message around the blob.
    panic_if(s.size() > kMaxPayload - 64,
             "wire blob of %zu bytes exceeds the frame payload cap",
             s.size());
    putU32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
}

bool
WireReader::getU8(std::uint8_t &v)
{
    if (pos_ + 1 > bytes_.size())
        return false;
    v = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
}

bool
WireReader::getU16(std::uint16_t &v)
{
    std::uint8_t lo = 0, hi = 0;
    if (!getU8(lo) || !getU8(hi))
        return false;
    v = static_cast<std::uint16_t>(lo | (hi << 8));
    return true;
}

bool
WireReader::getU32(std::uint32_t &v)
{
    std::uint16_t lo = 0, hi = 0;
    if (!getU16(lo) || !getU16(hi))
        return false;
    v = static_cast<std::uint32_t>(lo)
        | (static_cast<std::uint32_t>(hi) << 16);
    return true;
}

bool
WireReader::getU64(std::uint64_t &v)
{
    std::uint32_t lo = 0, hi = 0;
    if (!getU32(lo) || !getU32(hi))
        return false;
    v = static_cast<std::uint64_t>(lo)
        | (static_cast<std::uint64_t>(hi) << 32);
    return true;
}

bool
WireReader::getF64(double &v)
{
    std::uint64_t bits = 0;
    if (!getU64(bits))
        return false;
    v = std::bit_cast<double>(bits);
    return true;
}

bool
WireReader::getString(std::string &v, std::uint32_t maxLen)
{
    std::uint32_t len = 0;
    if (!getU32(len) || len > maxLen
        || pos_ + len > bytes_.size()) {
        return false;
    }
    v.assign(bytes_.substr(pos_, len));
    pos_ += len;
    return true;
}

// --- Messages ---------------------------------------------------------

namespace
{

void
putAppQuery(WireWriter &w, const AppQuery &q)
{
    w.putString(q.abbr);
    w.putU8(q.arch);
    w.putU8(q.sched);
    w.putU32(q.vsPivot);
    w.putU8(q.dynamicIsa);
}

bool
getAppQuery(WireReader &r, AppQuery &q)
{
    return r.getString(q.abbr, 64) && r.getU8(q.arch)
           && r.getU8(q.sched) && r.getU32(q.vsPivot)
           && r.getU8(q.dynamicIsa);
}

Result<void>
validateAppQuery(const AppQuery &q)
{
    if (q.abbr.empty()) {
        return Error{ErrorCode::InvalidArgument,
                     "empty application abbreviation"};
    }
    if (q.arch > 3) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("architecture index %u out of range",
                               q.arch)};
    }
    if (q.sched > 2) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("scheduler index %u out of range",
                               q.sched)};
    }
    if (q.vsPivot > 31) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("VS pivot %u out of range [0, 31]",
                               q.vsPivot)};
    }
    return {};
}

} // namespace

std::string
Ping::encode() const
{
    WireWriter w;
    w.putU64(nonce);
    return w.take();
}

Result<Ping>
Ping::decode(std::string_view payload)
{
    WireReader r(payload);
    Ping p;
    if (!r.getU64(p.nonce))
        return truncatedPayload();
    if (!r.exhausted())
        return trailingGarbage();
    return p;
}

std::string
EvalCoderRequest::encode() const
{
    WireWriter w;
    w.putU8(static_cast<std::uint8_t>(coder));
    w.putU8(arch);
    w.putU32(vsPivot);
    w.putU64(isaMask);
    w.putU32(static_cast<std::uint32_t>(words.size()));
    for (const std::uint64_t word : words)
        w.putU64(word);
    return w.take();
}

Result<EvalCoderRequest>
EvalCoderRequest::decode(std::string_view payload)
{
    WireReader r(payload);
    EvalCoderRequest req;
    std::uint8_t rawCoder = 0;
    std::uint32_t count = 0;
    if (!r.getU8(rawCoder) || !r.getU8(req.arch)
        || !r.getU32(req.vsPivot) || !r.getU64(req.isaMask)
        || !r.getU32(count)) {
        return truncatedPayload();
    }
    if (rawCoder > static_cast<std::uint8_t>(CoderKind::Isa)) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("unknown coder kind %u", rawCoder)};
    }
    if (req.arch > 3) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("architecture index %u out of range",
                               req.arch)};
    }
    if (req.vsPivot > 31) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("VS pivot %u out of range [0, 31]",
                               req.vsPivot)};
    }
    if (count > kMaxWords) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("%u words exceed the per-request cap of %u",
                               count, kMaxWords)};
    }
    if (std::uint64_t{count} * 8 > r.remaining())
        return truncatedPayload(); // count outruns the payload: no alloc
    req.coder = static_cast<CoderKind>(rawCoder);
    req.words.resize(count);
    for (std::uint64_t &word : req.words) {
        if (!r.getU64(word))
            return truncatedPayload();
    }
    if (!r.exhausted())
        return trailingGarbage();
    return req;
}

std::string
EvalCoderResponse::encode() const
{
    WireWriter w;
    w.putU64(totalBits);
    w.putU64(onesBefore);
    w.putU64(onesAfter);
    w.putU32(static_cast<std::uint32_t>(encoded.size()));
    for (const std::uint64_t word : encoded)
        w.putU64(word);
    return w.take();
}

Result<EvalCoderResponse>
EvalCoderResponse::decode(std::string_view payload)
{
    WireReader r(payload);
    EvalCoderResponse resp;
    std::uint32_t count = 0;
    if (!r.getU64(resp.totalBits) || !r.getU64(resp.onesBefore)
        || !r.getU64(resp.onesAfter) || !r.getU32(count)) {
        return truncatedPayload();
    }
    if (count > kMaxWords)
        return corrupt("encoded word count exceeds cap");
    if (std::uint64_t{count} * 8 > r.remaining())
        return truncatedPayload(); // count outruns the payload: no alloc
    resp.encoded.resize(count);
    for (std::uint64_t &word : resp.encoded) {
        if (!r.getU64(word))
            return truncatedPayload();
    }
    if (!r.exhausted())
        return trailingGarbage();
    return resp;
}

std::string
BitDensityRequest::encode() const
{
    WireWriter w;
    putAppQuery(w, query);
    return w.take();
}

Result<BitDensityRequest>
BitDensityRequest::decode(std::string_view payload)
{
    WireReader r(payload);
    BitDensityRequest req;
    if (!getAppQuery(r, req.query))
        return truncatedPayload();
    if (!r.exhausted())
        return trailingGarbage();
    if (auto valid = validateAppQuery(req.query); !valid.ok())
        return valid.error();
    return req;
}

std::string
BitDensityResponse::encode() const
{
    WireWriter w;
    w.putU64(cycles);
    w.putU64(instructions);
    w.putU32(static_cast<std::uint32_t>(units.size()));
    for (const Unit &u : units) {
        w.putU8(u.unit);
        for (const double d : u.density)
            w.putF64(d);
    }
    for (const double d : nocDensity)
        w.putF64(d);
    return w.take();
}

Result<BitDensityResponse>
BitDensityResponse::decode(std::string_view payload)
{
    WireReader r(payload);
    BitDensityResponse resp;
    std::uint32_t count = 0;
    if (!r.getU64(resp.cycles) || !r.getU64(resp.instructions)
        || !r.getU32(count)) {
        return truncatedPayload();
    }
    if (count > 64)
        return corrupt("unit count exceeds cap");
    resp.units.resize(count);
    for (Unit &u : resp.units) {
        if (!r.getU8(u.unit))
            return truncatedPayload();
        for (double &d : u.density) {
            if (!r.getF64(d))
                return truncatedPayload();
        }
    }
    for (double &d : resp.nocDensity) {
        if (!r.getF64(d))
            return truncatedPayload();
    }
    if (!r.exhausted())
        return trailingGarbage();
    return resp;
}

std::string
ChipEnergyRequest::encode() const
{
    WireWriter w;
    putAppQuery(w, query);
    w.putU8(node);
    w.putU8(pstate);
    w.putU8(cell);
    w.putU8(ecc);
    w.putU32(cellsBitline);
    return w.take();
}

Result<ChipEnergyRequest>
ChipEnergyRequest::decode(std::string_view payload)
{
    WireReader r(payload);
    ChipEnergyRequest req;
    if (!getAppQuery(r, req.query) || !r.getU8(req.node)
        || !r.getU8(req.pstate) || !r.getU8(req.cell)
        || !r.getU8(req.ecc) || !r.getU32(req.cellsBitline)) {
        return truncatedPayload();
    }
    if (!r.exhausted())
        return trailingGarbage();
    if (auto valid = validateAppQuery(req.query); !valid.ok())
        return valid.error();
    if (req.node > 1) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("node index %u out of range", req.node)};
    }
    if (req.pstate > 2) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("pstate index %u out of range", req.pstate)};
    }
    if (req.cell > 4) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("cell index %u out of range", req.cell)};
    }
    if (req.cellsBitline < 1 || req.cellsBitline > 8192) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("cells per bitline %u out of range "
                               "[1, 8192]",
                               req.cellsBitline)};
    }
    return req;
}

std::string
ChipEnergyResponse::encode() const
{
    WireWriter w;
    w.putU64(cycles);
    w.putU64(instructions);
    for (const double e : chipEnergy)
        w.putF64(e);
    for (const double e : bvfUnitsEnergy)
        w.putF64(e);
    return w.take();
}

Result<ChipEnergyResponse>
ChipEnergyResponse::decode(std::string_view payload)
{
    WireReader r(payload);
    ChipEnergyResponse resp;
    if (!r.getU64(resp.cycles) || !r.getU64(resp.instructions))
        return truncatedPayload();
    for (double &e : resp.chipEnergy) {
        if (!r.getF64(e))
            return truncatedPayload();
    }
    for (double &e : resp.bvfUnitsEnergy) {
        if (!r.getF64(e))
            return truncatedPayload();
    }
    if (!r.exhausted())
        return trailingGarbage();
    return resp;
}

std::string
StaticQueryRequest::encode() const
{
    WireWriter w;
    putAppQuery(w, query);
    return w.take();
}

Result<StaticQueryRequest>
StaticQueryRequest::decode(std::string_view payload)
{
    WireReader r(payload);
    StaticQueryRequest req;
    if (!getAppQuery(r, req.query))
        return truncatedPayload();
    if (!r.exhausted())
        return trailingGarbage();
    if (auto valid = validateAppQuery(req.query); !valid.ok())
        return valid.error();
    return req;
}

namespace
{

void
putBound(WireWriter &w, const StaticQueryResponse::Bound &b)
{
    w.putF64(b.lo);
    w.putF64(b.hi);
    w.putU8(b.any);
}

bool
getBound(WireReader &r, StaticQueryResponse::Bound &b)
{
    return r.getF64(b.lo) && r.getF64(b.hi) && r.getU8(b.any);
}

} // namespace

std::string
StaticQueryResponse::encode() const
{
    WireWriter w;
    w.putU8(bestStatic);
    w.putU32(static_cast<std::uint32_t>(units.size()));
    for (const Unit &u : units) {
        w.putU8(u.unit);
        for (const Bound &b : u.bounds)
            putBound(w, b);
    }
    for (const Bound &b : noc)
        putBound(w, b);
    return w.take();
}

Result<StaticQueryResponse>
StaticQueryResponse::decode(std::string_view payload)
{
    WireReader r(payload);
    StaticQueryResponse resp;
    std::uint32_t count = 0;
    if (!r.getU8(resp.bestStatic) || !r.getU32(count))
        return truncatedPayload();
    if (count > 64)
        return corrupt("unit count exceeds cap");
    resp.units.resize(count);
    for (Unit &u : resp.units) {
        if (!r.getU8(u.unit))
            return truncatedPayload();
        for (Bound &b : u.bounds) {
            if (!getBound(r, b))
                return truncatedPayload();
        }
    }
    for (Bound &b : resp.noc) {
        if (!getBound(r, b))
            return truncatedPayload();
    }
    if (!r.exhausted())
        return trailingGarbage();
    return resp;
}

std::string
StaticAdviceRequest::encode() const
{
    WireWriter w;
    putAppQuery(w, query);
    return w.take();
}

Result<StaticAdviceRequest>
StaticAdviceRequest::decode(std::string_view payload)
{
    WireReader r(payload);
    StaticAdviceRequest req;
    if (!getAppQuery(r, req.query))
        return truncatedPayload();
    if (!r.exhausted())
        return trailingGarbage();
    if (auto valid = validateAppQuery(req.query); !valid.ok())
        return valid.error();
    return req;
}

std::string
StaticAdviceResponse::encode() const
{
    WireWriter w;
    w.putU8(bestPivot);
    w.putF64(provenSlack);
    w.putU32(affineSources);
    w.putU32(totalSources);
    for (const Bound &b : pivotBounds)
        putBound(w, b);
    for (const double s : pivotScores)
        w.putF64(s);
    w.putU64(defaultMask);
    w.putU64(specializedMask);
    putBound(w, defaultDensity);
    putBound(w, specializedDensity);
    w.putU8(bestScenario);
    w.putU32(static_cast<std::uint32_t>(unitPicks.size()));
    for (const UnitPick &u : unitPicks) {
        w.putU8(u.unit);
        w.putU8(u.pick);
        w.putU8(u.proven);
        putBound(w, u.nv);
        putBound(w, u.vs);
    }
    return w.take();
}

Result<StaticAdviceResponse>
StaticAdviceResponse::decode(std::string_view payload)
{
    WireReader r(payload);
    StaticAdviceResponse resp;
    if (!r.getU8(resp.bestPivot) || !r.getF64(resp.provenSlack)
        || !r.getU32(resp.affineSources) || !r.getU32(resp.totalSources))
        return truncatedPayload();
    if (resp.bestPivot >= 32)
        return corrupt("pivot lane out of range");
    for (Bound &b : resp.pivotBounds) {
        if (!getBound(r, b))
            return truncatedPayload();
    }
    for (double &s : resp.pivotScores) {
        if (!r.getF64(s))
            return truncatedPayload();
    }
    if (!r.getU64(resp.defaultMask) || !r.getU64(resp.specializedMask)
        || !getBound(r, resp.defaultDensity)
        || !getBound(r, resp.specializedDensity)
        || !r.getU8(resp.bestScenario))
        return truncatedPayload();
    std::uint32_t count = 0;
    if (!r.getU32(count))
        return truncatedPayload();
    if (count > 64)
        return corrupt("unit pick count exceeds cap");
    resp.unitPicks.resize(count);
    for (UnitPick &u : resp.unitPicks) {
        if (!r.getU8(u.unit) || !r.getU8(u.pick) || !r.getU8(u.proven)
            || !getBound(r, u.nv) || !getBound(r, u.vs))
            return truncatedPayload();
    }
    if (!r.exhausted())
        return trailingGarbage();
    return resp;
}

std::string
SubmitKernelRequest::encode() const
{
    WireWriter w;
    w.putBlob(bytecode);
    // Optional tail; omitted when clear so default-shaped requests are
    // byte-identical to the pre-optimizer wire format.
    if (optimize)
        w.putU8(optimize);
    return w.take();
}

Result<SubmitKernelRequest>
SubmitKernelRequest::decode(std::string_view payload)
{
    WireReader r(payload);
    SubmitKernelRequest req;
    if (!r.getString(req.bytecode, kMaxPayload))
        return truncatedPayload();
    if (!r.exhausted()) {
        if (!r.getU8(req.optimize))
            return truncatedPayload();
        if (req.optimize > 1)
            return corrupt("optimize flag is not boolean");
        if (!r.exhausted())
            return trailingGarbage();
    }
    if (req.bytecode.empty())
        return Error{ErrorCode::InvalidArgument, "empty kernel bytecode"};
    return req;
}

std::string
SubmitKernelResponse::encode() const
{
    WireWriter w;
    w.putU8(admitted);
    w.putString(digest);
    w.putU64(tripBound);
    w.putU32(globalLo);
    w.putU32(globalHi);
    w.putU32(static_cast<std::uint32_t>(rejections.size()));
    for (const WireRejection &rej : rejections) {
        w.putU8(rej.reason);
        w.putU32(rej.pc);
        w.putString(rej.message);
    }
    // Optional optimize-on-submit tail (mirrors the request flag).
    if (optimizeRequested) {
        w.putU8(optimized);
        w.putString(optimizedDigest);
    }
    return w.take();
}

Result<SubmitKernelResponse>
SubmitKernelResponse::decode(std::string_view payload)
{
    WireReader r(payload);
    SubmitKernelResponse resp;
    std::uint32_t count = 0;
    if (!r.getU8(resp.admitted)
        || !r.getString(resp.digest, kMaxDigestBytes)
        || !r.getU64(resp.tripBound) || !r.getU32(resp.globalLo)
        || !r.getU32(resp.globalHi) || !r.getU32(count)) {
        return truncatedPayload();
    }
    if (resp.admitted > 1)
        return corrupt("admitted flag is not boolean");
    if (count > kMaxWireRejections)
        return corrupt("rejection count exceeds cap");
    // Every rejection record needs at least its fixed 9-byte prefix;
    // a count that outruns the payload must not drive the alloc.
    if (std::uint64_t{count} * 9 > r.remaining())
        return truncatedPayload();
    resp.rejections.resize(count);
    for (WireRejection &rej : resp.rejections) {
        if (!r.getU8(rej.reason) || !r.getU32(rej.pc)
            || !r.getString(rej.message, kMaxString)) {
            return truncatedPayload();
        }
        if (rej.reason >= analysis::kNumRejectReasons) {
            return Error{ErrorCode::InvalidArgument,
                         strFormat("unknown rejection reason %u",
                                   rej.reason)};
        }
    }
    if (!r.exhausted()) {
        resp.optimizeRequested = 1;
        if (!r.getU8(resp.optimized)
            || !r.getString(resp.optimizedDigest, kMaxDigestBytes))
            return truncatedPayload();
        if (!r.exhausted())
            return trailingGarbage();
        if (resp.optimized > 1)
            return corrupt("optimized flag is not boolean");
        if (resp.optimized && resp.optimizedDigest.empty())
            return corrupt("optimized response without a digest");
        if (!resp.optimized && !resp.optimizedDigest.empty())
            return corrupt("fallback response carries a digest");
        if (resp.optimized && !resp.admitted)
            return corrupt("optimized response without admission");
    }
    if (resp.admitted && !resp.rejections.empty())
        return corrupt("admitted response carries rejections");
    return resp;
}

std::string
EvalSubmittedRequest::encode() const
{
    WireWriter w;
    w.putString(digest);
    w.putU8(arch);
    w.putU8(sched);
    w.putU32(vsPivot);
    w.putU8(dynamicIsa);
    w.putU8(node);
    w.putU8(pstate);
    w.putU8(cell);
    w.putU8(ecc);
    w.putU32(cellsBitline);
    return w.take();
}

Result<EvalSubmittedRequest>
EvalSubmittedRequest::decode(std::string_view payload)
{
    WireReader r(payload);
    EvalSubmittedRequest req;
    if (!r.getString(req.digest, kMaxDigestBytes) || !r.getU8(req.arch)
        || !r.getU8(req.sched) || !r.getU32(req.vsPivot)
        || !r.getU8(req.dynamicIsa) || !r.getU8(req.node)
        || !r.getU8(req.pstate) || !r.getU8(req.cell)
        || !r.getU8(req.ecc) || !r.getU32(req.cellsBitline)) {
        return truncatedPayload();
    }
    if (!r.exhausted())
        return trailingGarbage();
    if (req.digest.empty())
        return Error{ErrorCode::InvalidArgument, "empty kernel digest"};
    if (req.arch > 3) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("architecture index %u out of range",
                               req.arch)};
    }
    if (req.sched > 2) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("scheduler index %u out of range",
                               req.sched)};
    }
    if (req.vsPivot > 31) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("VS pivot %u out of range [0, 31]",
                               req.vsPivot)};
    }
    if (req.dynamicIsa > 1 || req.ecc > 1) {
        return Error{ErrorCode::InvalidArgument,
                     "boolean flag is not 0 or 1"};
    }
    if (req.node > 1) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("technology node index %u out of range",
                               req.node)};
    }
    if (req.pstate > 2) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("P-state index %u out of range",
                               req.pstate)};
    }
    if (req.cell > 4) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("cell kind index %u out of range",
                               req.cell)};
    }
    if (req.cellsBitline == 0 || req.cellsBitline > 1024) {
        return Error{ErrorCode::InvalidArgument,
                     strFormat("cells per bitline %u out of range "
                               "[1, 1024]",
                               req.cellsBitline)};
    }
    return req;
}

std::string
EvalSubmittedResponse::encode() const
{
    WireWriter w;
    w.putU64(cycles);
    w.putU64(instructions);
    w.putU64(maxWarpIssue);
    w.putU64(checkedAccesses);
    for (const double d : chipEnergy)
        w.putF64(d);
    for (const double d : bvfUnitsEnergy)
        w.putF64(d);
    return w.take();
}

Result<EvalSubmittedResponse>
EvalSubmittedResponse::decode(std::string_view payload)
{
    WireReader r(payload);
    EvalSubmittedResponse resp;
    if (!r.getU64(resp.cycles) || !r.getU64(resp.instructions)
        || !r.getU64(resp.maxWarpIssue)
        || !r.getU64(resp.checkedAccesses)) {
        return truncatedPayload();
    }
    for (double &d : resp.chipEnergy) {
        if (!r.getF64(d))
            return truncatedPayload();
    }
    for (double &d : resp.bvfUnitsEnergy) {
        if (!r.getF64(d))
            return truncatedPayload();
    }
    if (!r.exhausted())
        return trailingGarbage();
    return resp;
}

std::string
WireError::encode() const
{
    WireWriter w;
    w.putU8(code);
    w.putString(message);
    return w.take();
}

Result<WireError>
WireError::decode(std::string_view payload)
{
    WireReader r(payload);
    WireError e;
    if (!r.getU8(e.code) || !r.getString(e.message, 4096))
        return truncatedPayload();
    if (!r.exhausted())
        return trailingGarbage();
    return e;
}

} // namespace bvf::server
