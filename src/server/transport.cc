/**
 * @file
 * SocketTransport: poll()-bounded socket I/O.
 *
 * Moved out of fleet/worker_client.cc so both the client and the
 * server share one deadline discipline: every blocking step -- connect,
 * write, read -- rides poll() with the remaining budget, so a peer that
 * was SIGKILLed mid-request surfaces as Timeout (or Io on a reset)
 * instead of hanging the caller.
 */

#include "server/transport.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hh"

namespace bvf::server
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

/** Remaining poll() budget in ms; <= 0 deadline means "infinite". */
int
remainingMs(SteadyClock::time_point start,
            std::chrono::milliseconds deadline)
{
    if (deadline.count() <= 0)
        return -1; // poll(): wait forever
    const auto spent =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            SteadyClock::now() - start);
    const auto left = deadline - spent;
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/** Wait until @p fd is ready for @p events or the budget is gone. */
Result<void>
waitReady(int fd, short events, SteadyClock::time_point start,
          std::chrono::milliseconds deadline)
{
    for (;;) {
        const int budget = remainingMs(start, deadline);
        if (budget == 0)
            return Error{ErrorCode::Timeout, "transport deadline expired"};
        pollfd p = {fd, events, 0};
        const int rc = ::poll(&p, 1, budget);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return Error{ErrorCode::Io, std::strerror(errno)};
        }
        if (rc == 0)
            return Error{ErrorCode::Timeout, "transport deadline expired"};
        if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) {
            // Readable-with-hangup still delivers buffered bytes.
            if (!(p.revents & POLLIN) || !(events & POLLIN))
                return Error{ErrorCode::Io, "connection lost"};
        }
        return {};
    }
}

/** Finish a (possibly in-progress) non-blocking connect on @p fd. */
Result<TransportPtr>
finishConnect(int fd, int rc, const std::string &what,
              SteadyClock::time_point start,
              std::chrono::milliseconds deadline)
{
    if (rc != 0 && errno == EINPROGRESS) {
        auto ready = waitReady(fd, POLLOUT, start, deadline);
        if (!ready.ok()) {
            ::close(fd);
            return ready.error();
        }
        int soErr = 0;
        socklen_t len = sizeof(soErr);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soErr, &len);
        if (soErr != 0) {
            ::close(fd);
            return Error{ErrorCode::Io,
                         strFormat("connect %s: %s", what.c_str(),
                                   std::strerror(soErr))};
        }
    } else if (rc != 0) {
        const int err = errno;
        ::close(fd);
        return Error{ErrorCode::Io, strFormat("connect %s: %s",
                                              what.c_str(),
                                              std::strerror(err))};
    }
    return TransportPtr(new SocketTransport(fd, /*owned=*/true));
}

} // namespace

Result<void>
SocketTransport::send(std::string_view bytes,
                      std::chrono::milliseconds deadline)
{
    if (fd_ < 0)
        return Error{ErrorCode::Io, "transport is closed"};
    const auto start = SteadyClock::now();
    std::size_t off = 0;
    while (off < bytes.size()) {
        auto ready = waitReady(fd_, POLLOUT, start, deadline);
        if (!ready.ok())
            return ready.error();
        const ssize_t n = ::send(fd_, bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN
                || errno == EWOULDBLOCK) {
                continue;
            }
            return Error{ErrorCode::Io, std::strerror(errno)};
        }
        off += static_cast<std::size_t>(n);
    }
    return {};
}

Result<std::string>
SocketTransport::recv(std::chrono::milliseconds deadline)
{
    if (fd_ < 0)
        return Error{ErrorCode::Io, "transport is closed"};
    const auto start = SteadyClock::now();
    char chunk[4096];
    for (;;) {
        auto ready = waitReady(fd_, POLLIN, start, deadline);
        if (!ready.ok())
            return ready.error();
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n == 0)
            return std::string(); // orderly EOF
        if (n > 0)
            return std::string(chunk, static_cast<std::size_t>(n));
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
            continue;
        return Error{ErrorCode::Io, std::strerror(errno)};
    }
}

void
SocketTransport::close()
{
    if (fd_ < 0)
        return;
    if (owned_)
        ::close(fd_);
    fd_ = -1;
}

Result<TransportPtr>
SocketTransport::dialTcp(const std::string &host, int port,
                         std::chrono::milliseconds deadline)
{
    const auto start = SteadyClock::now();
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0)
        return Error{ErrorCode::Io, "socket(): out of descriptors"};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return Error{ErrorCode::InvalidArgument,
                     strFormat("bad address '%s'", host.c_str())};
    }
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr));
    return finishConnect(fd, rc, strFormat("%s:%d", host.c_str(), port),
                         start, deadline);
}

Result<TransportPtr>
SocketTransport::dialUnix(const std::string &path,
                          std::chrono::milliseconds deadline)
{
    const auto start = SteadyClock::now();
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0)
        return Error{ErrorCode::Io, "socket(): out of descriptors"};
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return Error{ErrorCode::InvalidArgument,
                     "unix socket path too long"};
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr));
    return finishConnect(fd, rc, "unix:" + path, start, deadline);
}

} // namespace bvf::server
