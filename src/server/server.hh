/**
 * @file
 * bvfd: the batch-evaluation daemon.
 *
 * Listens on TCP and/or a Unix socket, speaks the CRC32-framed binary
 * protocol (protocol.hh) and executes requests on a shared
 * work-stealing pool (runtime/thread_pool.hh).
 *
 * Concurrency shape, per connection:
 *  - a *reader* thread parses frames and submits them to the pool,
 *    blocking once maxInflight requests of this connection are pending
 *    -- the socket stops being read, TCP flow control pushes back on
 *    the client, and one greedy connection cannot swamp the queue;
 *  - a *writer* thread sends responses strictly in request order as
 *    each finishes, so a client may pipeline a whole batch and match
 *    responses to requests by position.
 *
 * A connection whose bytes fail framing (bad magic, bad CRC, oversized
 * length, wrong version) gets one ErrorResponse and is closed: after a
 * framing error the stream offset is unreliable, so resynchronization
 * is impossible by construction.
 *
 * Shutdown is a drain: stop accepting, let readers see EOF, answer
 * everything already accepted, join every thread. A SIGTERM handler
 * only needs to call requestStop(), which is async-signal-safe.
 *
 * The /metrics endpoint rides the same ports: a connection whose first
 * bytes are "GET " is answered with an HTTP/1.0 plaintext exposition
 * of the Metrics registry and closed, so `curl http://host:port/metrics`
 * works against a binary-protocol daemon.
 */

#ifndef BVF_SERVER_SERVER_HH
#define BVF_SERVER_SERVER_HH

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hh"
#include "runtime/thread_pool.hh"
#include "server/handler.hh"
#include "server/metrics.hh"

namespace bvf::server
{

/** Daemon configuration. */
struct ServerOptions
{
    /** TCP bind address; empty disables TCP. */
    std::string host = "127.0.0.1";

    /** TCP port; 0 picks an ephemeral port (see Server::port()). */
    int port = 0;

    /** Unix socket path; empty disables the Unix listener. */
    std::string unixPath;

    /** Worker threads evaluating requests. */
    int workers = 4;

    /**
     * Per-connection bound on submitted-but-unanswered requests; the
     * reader stops consuming the socket beyond it (backpressure).
     */
    int maxInflight = 64;

    /**
     * Request dispatch override. Empty uses the built-in evaluation
     * RequestHandler; the fleet coordinator plugs its routing proxy in
     * here, inheriting the whole connection/backpressure/metrics/drain
     * machinery unchanged. Must be thread-safe: pool workers call it
     * concurrently.
     */
    std::function<Frame(const Frame &)> handler;
};

/** The daemon. start() it, then drain() (or destroy) to stop. */
class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen and spawn the accept loop. */
    Result<void> start();

    /**
     * Ask the accept loop to wind down. Async-signal-safe (one write
     * to a pipe); pair with drain() from a normal thread.
     */
    void requestStop();

    /**
     * Block until requestStop() has been called (typically from a
     * signal handler). A daemon main() is just start(), waitForStop(),
     * drain().
     */
    void waitForStop() const;

    /**
     * Graceful shutdown: stop accepting, finish every request already
     * read from a socket, flush every response, join all threads.
     * Idempotent; also run by the destructor.
     */
    void drain();

    /** Bound TCP port (after start()); 0 when TCP is disabled. */
    int port() const { return boundPort_; }

    /** Render the metrics exposition (same text /metrics serves). */
    std::string renderMetrics() const;

    const Metrics &metrics() const { return metrics_; }

  private:
    struct Connection;

    void acceptLoop();
    void serveConnection(int fd);
    void serveMetricsHttp(int fd, std::string already);
    Result<int> listenTcp();
    Result<int> listenUnix();

    ServerOptions options_;
    RequestHandler handler_;
    std::function<Frame(const Frame &)> dispatch_;
    Metrics metrics_;
    std::unique_ptr<runtime::ThreadPool> pool_;

    int tcpFd_ = -1;
    int unixFd_ = -1;
    int boundPort_ = 0;
    int stopPipe_[2] = {-1, -1};

    std::thread acceptThread_;
    std::mutex connMutex_;
    std::vector<std::thread> connThreads_;
    std::vector<int> connFds_;
    std::atomic<bool> stopping_{false};
    bool started_ = false;
    bool drained_ = false;
};

} // namespace bvf::server

#endif // BVF_SERVER_SERVER_HH
