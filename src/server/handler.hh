/**
 * @file
 * Request execution, separated from socket plumbing.
 *
 * A RequestHandler turns one decoded request frame into one response
 * frame. It is stateless apart from immutable configuration, so any
 * number of pool workers may call handle() concurrently -- every
 * simulation builds its own machine, accountant and RNG streams, which
 * is the same property that makes the parallel campaign deterministic.
 *
 * Failures never escape as exceptions: a malformed payload, an unknown
 * application or a pricing rejection comes back as an ErrorResponse
 * frame, so one bad request cannot take down the connection, let alone
 * the daemon.
 */

#ifndef BVF_SERVER_HANDLER_HH
#define BVF_SERVER_HANDLER_HH

#include <memory>

#include "server/kernel_store.hh"
#include "server/protocol.hh"

namespace bvf::server
{

/** Executes decoded requests. Thread-safe; share one per daemon. */
class RequestHandler
{
  public:
    RequestHandler() : kernels_(std::make_shared<KernelStore>()) {}

    /**
     * Execute @p request and build the response frame. Request frames
     * with a response type are themselves answered with ErrorResponse
     * (a client must never speak response types).
     */
    Frame handle(const Frame &request) const;

    /** Admission store shared by every worker (metrics, lookups). */
    const KernelStore &kernelStore() const { return *kernels_; }

  private:
    Frame handlePing(const Frame &request) const;
    Frame handleEvalCoder(const Frame &request) const;
    Frame handleBitDensity(const Frame &request) const;
    Frame handleChipEnergy(const Frame &request) const;
    Frame handleStaticQuery(const Frame &request) const;
    Frame handleStaticAdvice(const Frame &request) const;
    Frame handleSubmitKernel(const Frame &request) const;
    Frame handleEvalSubmitted(const Frame &request) const;

    /**
     * Shared (not a value) so RequestHandler stays copyable -- copies
     * used by transports and the fleet proxy all see one store.
     */
    std::shared_ptr<KernelStore> kernels_;
};

/** Build an ErrorResponse frame from a structured error. */
Frame errorFrame(const Error &error);

} // namespace bvf::server

#endif // BVF_SERVER_HANDLER_HH
