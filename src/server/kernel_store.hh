/**
 * @file
 * Daemon-side store of admitted untrusted kernels.
 *
 * A KernelStore owns the admission boundary for bytecode submissions:
 * submit() decodes a BVFK frame, runs the static verifier, and only an
 * *admitted* program is stored -- keyed by a content digest computed
 * over the bytecode bytes -- together with its admission certificate.
 * EvalSubmitted looks kernels up by that digest, so a rejected kernel
 * cannot reach an SM by construction: there is no handle to name it by.
 *
 * The store also keeps the admission counters surfaced on /metrics:
 * submissions, admissions, rejections broken down by machine-readable
 * reason, and bytecode that did not even decode. All methods are
 * thread-safe; pool workers share one store per daemon.
 */

#ifndef BVF_SERVER_KERNEL_STORE_HH
#define BVF_SERVER_KERNEL_STORE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/optimizer.hh"
#include "analysis/verifier.hh"
#include "common/result.hh"
#include "isa/program.hh"

namespace bvf::server
{

/**
 * Content digest of submitted bytecode -- the EvalSubmitted lookup
 * handle, and the fleet's routing key (submit and eval of one kernel
 * must shard to the same worker, since the store is per-worker).
 */
std::string kernelDigest(std::string_view bytecode);

/** One admitted kernel: the program plus its proven certificate. */
struct StoredKernel
{
    isa::Program program;
    analysis::Certificate certificate;
};

/** Outcome of one submission (admitted or statically rejected). */
struct SubmitOutcome
{
    bool admitted = false;
    std::string digest; //!< lookup handle; empty when rejected
    analysis::Certificate certificate;
    std::vector<analysis::Rejection> rejections;

    /**
     * Optimize-on-submit result (meaningful only when it was
     * requested): when the optimizer's output passed translation
     * validation and re-admitted with a no-weaker certificate, the
     * optimized program is stored as a first-class kernel under
     * `optimizedDigest`. On fallback the digest stays empty and
     * `optimizeNote` says why.
     */
    bool optimized = false;
    std::string optimizedDigest;
    analysis::OptStats optStats;
    std::string optimizeNote;
};

/** Thread-safe store of verified kernels. */
class KernelStore
{
  public:
    /** Resident-kernel cap; past it submissions fail Overloaded. */
    static constexpr std::size_t kMaxResident = 128;

    /**
     * Decode, verify and (if admitted) store @p bytecode. A decode
     * failure or a full store is an Error; a verifier rejection is a
     * successful SubmitOutcome with admitted=false. Resubmitting
     * identical bytecode is idempotent: same digest, no second slot.
     *
     * With @p optimize set, an admitted kernel is additionally run
     * through the certificate-guided optimizer; an accepted result is
     * stored under its own digest (see SubmitOutcome). Optimizer
     * fallback is never an error -- the original admission stands.
     */
    Result<SubmitOutcome> submit(std::string_view bytecode,
                                 bool optimize = false);

    /** Look up an admitted kernel; null when the digest is unknown. */
    std::shared_ptr<const StoredKernel> find(const std::string &digest) const;

    /** Admission counters in Prometheus text format. */
    std::string renderMetrics() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<const StoredKernel>>
        kernels_;

    std::uint64_t submitted_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t decodeFailures_ = 0;
    std::array<std::uint64_t, analysis::kNumRejectReasons> rejectedBy_{};

    // Optimize-on-submit counters (per-pass totals count rewrites the
    // accepted optimized programs actually shipped with).
    std::uint64_t optimizeRequested_ = 0;
    std::uint64_t optimizeAccepted_ = 0;
    std::uint64_t optimizeFallback_ = 0;
    analysis::OptStats optimizerApplied_{};
};

} // namespace bvf::server

#endif // BVF_SERVER_KERNEL_STORE_HH
