/**
 * @file
 * Minimal HTTP/1.0 request-head scanner for the /metrics ride-along.
 *
 * The daemon answers plaintext metrics on its binary port by sniffing
 * "GET " and consuming the request head. The old code buffered blindly
 * up to a cap and answered 200 regardless, which meant a hostile
 * client could feed an endless request line and still be served. The
 * scanner makes the admission decision explicit and incremental: feed
 * it the bytes read so far and it says NeedMore / Complete / too-long,
 * so the server can reject an oversized request line *before* buffering
 * more of it (DoS guard), with the caps in one visible place.
 *
 * Deliberately not a real HTTP parser: the endpoint serves one
 * hard-coded response to any GET, so all that matters is finding the
 * end of the head and bounding how much of it we will hold.
 */

#ifndef BVF_SERVER_HTTP_HH
#define BVF_SERVER_HTTP_HH

#include <cstddef>
#include <string_view>

namespace bvf::server
{

/** Longest request line (through its newline) we will buffer. */
constexpr std::size_t kMaxHttpRequestLine = 4096;

/** Longest whole request head (through the blank line) we will buffer. */
constexpr std::size_t kMaxHttpHead = 16384;

/** Verdict on a (possibly partial) request head. */
enum class HttpScan : std::uint8_t
{
    NeedMore,           //!< no blank line yet and no cap exceeded
    Complete,           //!< full head present; headBytes is its size
    NotHttp,            //!< does not start with "GET "
    RequestLineTooLong, //!< first line exceeds kMaxHttpRequestLine
    HeadTooLong,        //!< head exceeds kMaxHttpHead
};

/** Scan result; headBytes is meaningful only for Complete. */
struct HttpScanResult
{
    HttpScan state = HttpScan::NeedMore;
    std::size_t headBytes = 0;
};

/**
 * Classify @p bytes, the prefix of a connection's stream. Stateless:
 * call it again with the grown buffer after each read. A rejection
 * (NotHttp / *TooLong) is stable -- feeding more bytes cannot turn it
 * back into NeedMore or Complete.
 */
HttpScanResult scanHttpHead(std::string_view bytes);

} // namespace bvf::server

#endif // BVF_SERVER_HTTP_HH
