/**
 * @file
 * HTTP request-head scanner implementation.
 */

#include "server/http.hh"

#include <cstdint>
#include <string>

namespace bvf::server
{

HttpScanResult
scanHttpHead(std::string_view bytes)
{
    static constexpr std::string_view kMethod = "GET ";
    const std::size_t checkable = std::min(bytes.size(), kMethod.size());
    if (bytes.compare(0, checkable, kMethod, 0, checkable) != 0)
        return {HttpScan::NotHttp, 0};

    // Bound the request line first: a client streaming one endless
    // line must be rejected before the head cap is even relevant.
    const std::size_t lineEnd = bytes.find('\n');
    if (lineEnd == std::string_view::npos) {
        if (bytes.size() > kMaxHttpRequestLine)
            return {HttpScan::RequestLineTooLong, 0};
    } else if (lineEnd + 1 > kMaxHttpRequestLine) {
        return {HttpScan::RequestLineTooLong, 0};
    }
    if (bytes.size() < kMethod.size())
        return {HttpScan::NeedMore, 0};

    // End of head: the first blank line, CRLF or bare LF framing.
    const std::size_t crlf = bytes.find("\r\n\r\n");
    const std::size_t lf = bytes.find("\n\n");
    std::size_t headBytes = std::string_view::npos;
    if (crlf != std::string_view::npos)
        headBytes = crlf + 4;
    if (lf != std::string_view::npos)
        headBytes = std::min(headBytes, lf + 2);
    if (headBytes != std::string_view::npos) {
        if (headBytes > kMaxHttpHead)
            return {HttpScan::HeadTooLong, 0};
        return {HttpScan::Complete, headBytes};
    }
    if (bytes.size() > kMaxHttpHead)
        return {HttpScan::HeadTooLong, 0};
    return {HttpScan::NeedMore, 0};
}

} // namespace bvf::server
