/**
 * @file
 * Kernel store implementation.
 */

#include "server/kernel_store.hh"

#include "common/crc32.hh"
#include "common/logging.hh"
#include "isa/bytecode.hh"

namespace bvf::server
{

/**
 * CRC32 plus length is not collision-resistant against adversaries,
 * but an attacker who crafts a collision only aliases *their own*
 * earlier submission -- the stored program under a digest is always one
 * that passed the verifier, so the admission property is unaffected.
 */
std::string
kernelDigest(std::string_view bytecode)
{
    return strFormat("k%08x-%zx", crc32(bytecode.data(), bytecode.size()),
                     bytecode.size());
}

Result<SubmitOutcome>
KernelStore::submit(std::string_view bytecode)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++submitted_;
    }

    auto decoded = isa::decodeProgram(bytecode);
    if (!decoded.ok()) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++decodeFailures_;
        return decoded.error();
    }

    const analysis::Verdict verdict =
        analysis::verifyProgram(decoded.value());
    if (!verdict.admitted) {
        SubmitOutcome out;
        out.admitted = false;
        out.rejections = verdict.rejections;
        std::lock_guard<std::mutex> lock(mutex_);
        for (const analysis::Rejection &rej : verdict.rejections)
            ++rejectedBy_[static_cast<std::size_t>(rej.reason)];
        return out;
    }

    SubmitOutcome out;
    out.admitted = true;
    out.digest = kernelDigest(bytecode);
    out.certificate = verdict.certificate;

    auto stored = std::make_shared<const StoredKernel>(
        StoredKernel{std::move(decoded.value()), verdict.certificate});

    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = kernels_.find(out.digest);
    if (it == kernels_.end()) {
        if (kernels_.size() >= kMaxResident) {
            return Error{ErrorCode::Overloaded,
                         strFormat("kernel store is full (%zu resident)",
                                   kernels_.size())};
        }
        kernels_.emplace(out.digest, std::move(stored));
    }
    ++admitted_;
    return out;
}

std::shared_ptr<const StoredKernel>
KernelStore::find(const std::string &digest) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = kernels_.find(digest);
    return it == kernels_.end() ? nullptr : it->second;
}

std::string
KernelStore::renderMetrics() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    out += "# HELP bvfd_kernels_submitted_total Kernel submissions "
           "received.\n";
    out += "# TYPE bvfd_kernels_submitted_total counter\n";
    out += strFormat("bvfd_kernels_submitted_total %llu\n",
                     static_cast<unsigned long long>(submitted_));
    out += "# HELP bvfd_kernels_admitted_total Submissions that passed "
           "the static verifier.\n";
    out += "# TYPE bvfd_kernels_admitted_total counter\n";
    out += strFormat("bvfd_kernels_admitted_total %llu\n",
                     static_cast<unsigned long long>(admitted_));
    out += "# HELP bvfd_kernels_decode_failures_total Submissions whose "
           "bytecode did not decode.\n";
    out += "# TYPE bvfd_kernels_decode_failures_total counter\n";
    out += strFormat("bvfd_kernels_decode_failures_total %llu\n",
                     static_cast<unsigned long long>(decodeFailures_));
    out += "# HELP bvfd_kernels_rejected_total Verifier rejections by "
           "machine-readable reason.\n";
    out += "# TYPE bvfd_kernels_rejected_total counter\n";
    for (int i = 0; i < analysis::kNumRejectReasons; ++i) {
        out += strFormat(
            "bvfd_kernels_rejected_total{reason=\"%s\"} %llu\n",
            analysis::rejectReasonName(
                static_cast<analysis::RejectReason>(i))
                .c_str(),
            static_cast<unsigned long long>(
                rejectedBy_[static_cast<std::size_t>(i)]));
    }
    out += "# HELP bvfd_kernels_resident Admitted kernels currently "
           "stored.\n";
    out += "# TYPE bvfd_kernels_resident gauge\n";
    out += strFormat("bvfd_kernels_resident %zu\n", kernels_.size());
    return out;
}

} // namespace bvf::server
