/**
 * @file
 * Kernel store implementation.
 */

#include "server/kernel_store.hh"

#include <utility>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "isa/bytecode.hh"

namespace bvf::server
{

/**
 * CRC32 plus length is not collision-resistant against adversaries,
 * but an attacker who crafts a collision only aliases *their own*
 * earlier submission -- the stored program under a digest is always one
 * that passed the verifier, so the admission property is unaffected.
 */
std::string
kernelDigest(std::string_view bytecode)
{
    return strFormat("k%08x-%zx", crc32(bytecode.data(), bytecode.size()),
                     bytecode.size());
}

Result<SubmitOutcome>
KernelStore::submit(std::string_view bytecode, bool optimize)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++submitted_;
    }

    auto decoded = isa::decodeProgram(bytecode);
    if (!decoded.ok()) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++decodeFailures_;
        return decoded.error();
    }

    const analysis::Verdict verdict =
        analysis::verifyProgram(decoded.value());
    if (!verdict.admitted) {
        SubmitOutcome out;
        out.admitted = false;
        out.rejections = verdict.rejections;
        std::lock_guard<std::mutex> lock(mutex_);
        for (const analysis::Rejection &rej : verdict.rejections)
            ++rejectedBy_[static_cast<std::size_t>(rej.reason)];
        return out;
    }

    SubmitOutcome out;
    out.admitted = true;
    out.digest = kernelDigest(bytecode);
    out.certificate = verdict.certificate;

    auto stored = std::make_shared<const StoredKernel>(
        StoredKernel{std::move(decoded.value()), verdict.certificate});

    // Optimize outside the lock: the passes plus the translation
    // validator are pure functions of the program.
    std::string opt_bytes;
    std::shared_ptr<const StoredKernel> opt_stored;
    if (optimize) {
        analysis::OptimizeResult opt =
            analysis::optimizeProgram(stored->program);
        out.optStats = opt.stats;
        if (opt.accepted && opt.changed) {
            opt_bytes = isa::encodeProgram(opt.program);
            out.optimized = true;
            out.optimizedDigest = kernelDigest(opt_bytes);
            opt_stored = std::make_shared<const StoredKernel>(
                StoredKernel{std::move(opt.program), opt.certificate});
        } else {
            out.optimizeNote = opt.note.empty()
                                   ? std::string("no rewrite applied")
                                   : opt.note;
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = kernels_.find(out.digest);
    if (it == kernels_.end()) {
        if (kernels_.size() >= kMaxResident) {
            return Error{ErrorCode::Overloaded,
                         strFormat("kernel store is full (%zu resident)",
                                   kernels_.size())};
        }
        kernels_.emplace(out.digest, std::move(stored));
    }
    ++admitted_;

    if (optimize) {
        ++optimizeRequested_;
        if (out.optimized
            && (kernels_.count(out.optimizedDigest) != 0
                || kernels_.size() < kMaxResident)) {
            kernels_.emplace(out.optimizedDigest, std::move(opt_stored));
            ++optimizeAccepted_;
            const analysis::OptStats &s = out.optStats;
            optimizerApplied_.removedDead += s.removedDead;
            optimizerApplied_.removedUnreachable += s.removedUnreachable;
            optimizerApplied_.removedGuardFalse += s.removedGuardFalse;
            optimizerApplied_.removedNops += s.removedNops;
            optimizerApplied_.removedBranches += s.removedBranches;
            optimizerApplied_.foldedConstants += s.foldedConstants;
            optimizerApplied_.propagatedCopies += s.propagatedCopies;
            optimizerApplied_.reducedStrength += s.reducedStrength;
            optimizerApplied_.flattenedBranches += s.flattenedBranches;
        } else {
            if (out.optimized) {
                // Validated but no slot left: surface it as fallback.
                out.optimized = false;
                out.optimizedDigest.clear();
                out.optimizeNote = "kernel store is full";
            }
            ++optimizeFallback_;
        }
    }
    return out;
}

std::shared_ptr<const StoredKernel>
KernelStore::find(const std::string &digest) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = kernels_.find(digest);
    return it == kernels_.end() ? nullptr : it->second;
}

std::string
KernelStore::renderMetrics() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    out += "# HELP bvfd_kernels_submitted_total Kernel submissions "
           "received.\n";
    out += "# TYPE bvfd_kernels_submitted_total counter\n";
    out += strFormat("bvfd_kernels_submitted_total %llu\n",
                     static_cast<unsigned long long>(submitted_));
    out += "# HELP bvfd_kernels_admitted_total Submissions that passed "
           "the static verifier.\n";
    out += "# TYPE bvfd_kernels_admitted_total counter\n";
    out += strFormat("bvfd_kernels_admitted_total %llu\n",
                     static_cast<unsigned long long>(admitted_));
    out += "# HELP bvfd_kernels_decode_failures_total Submissions whose "
           "bytecode did not decode.\n";
    out += "# TYPE bvfd_kernels_decode_failures_total counter\n";
    out += strFormat("bvfd_kernels_decode_failures_total %llu\n",
                     static_cast<unsigned long long>(decodeFailures_));
    out += "# HELP bvfd_kernels_rejected_total Verifier rejections by "
           "machine-readable reason.\n";
    out += "# TYPE bvfd_kernels_rejected_total counter\n";
    for (int i = 0; i < analysis::kNumRejectReasons; ++i) {
        out += strFormat(
            "bvfd_kernels_rejected_total{reason=\"%s\"} %llu\n",
            analysis::rejectReasonName(
                static_cast<analysis::RejectReason>(i))
                .c_str(),
            static_cast<unsigned long long>(
                rejectedBy_[static_cast<std::size_t>(i)]));
    }
    out += "# HELP bvfd_kernels_optimize_requested_total Submissions "
           "that asked for optimize-on-submit.\n";
    out += "# TYPE bvfd_kernels_optimize_requested_total counter\n";
    out += strFormat("bvfd_kernels_optimize_requested_total %llu\n",
                     static_cast<unsigned long long>(optimizeRequested_));
    out += "# HELP bvfd_kernels_optimize_accepted_total Optimized "
           "programs that passed translation validation and "
           "re-admission and were stored.\n";
    out += "# TYPE bvfd_kernels_optimize_accepted_total counter\n";
    out += strFormat("bvfd_kernels_optimize_accepted_total %llu\n",
                     static_cast<unsigned long long>(optimizeAccepted_));
    out += "# HELP bvfd_kernels_optimize_fallback_total Optimize "
           "requests answered with the original program.\n";
    out += "# TYPE bvfd_kernels_optimize_fallback_total counter\n";
    out += strFormat("bvfd_kernels_optimize_fallback_total %llu\n",
                     static_cast<unsigned long long>(optimizeFallback_));
    out += "# HELP bvfd_kernels_optimizer_rewrites_total Rewrites "
           "shipped in accepted optimized kernels, by pass.\n";
    out += "# TYPE bvfd_kernels_optimizer_rewrites_total counter\n";
    const std::pair<const char *, std::uint64_t> passes[] = {
        {"dead-write", optimizerApplied_.removedDead},
        {"unreachable", optimizerApplied_.removedUnreachable},
        {"guard-false", optimizerApplied_.removedGuardFalse},
        {"nop", optimizerApplied_.removedNops},
        {"branch-collapse", optimizerApplied_.removedBranches},
        {"constant-fold", optimizerApplied_.foldedConstants},
        {"copy-propagation", optimizerApplied_.propagatedCopies},
        {"strength-reduction", optimizerApplied_.reducedStrength},
        {"branch-flatten", optimizerApplied_.flattenedBranches},
    };
    for (const auto &[pass, count] : passes) {
        out += strFormat(
            "bvfd_kernels_optimizer_rewrites_total{pass=\"%s\"} %llu\n",
            pass, static_cast<unsigned long long>(count));
    }
    out += "# HELP bvfd_kernels_resident Admitted kernels currently "
           "stored.\n";
    out += "# TYPE bvfd_kernels_resident gauge\n";
    out += strFormat("bvfd_kernels_resident %zu\n", kernels_.size());
    return out;
}

} // namespace bvf::server
