/**
 * @file
 * In-memory network with injectable faults for the simulation harness.
 *
 * SimNet stands in for the real sockets between the fleet coordinator
 * and its workers. Each worker is a synchronous frame handler; dial()
 * returns a server::Transport whose send()/recv() move bytes through
 * the byte-faithful wire model:
 *
 *  - bytes sent are run through the fault schedule (drop, truncate,
 *    corrupt), then fed to the worker's frame parser exactly like the
 *    real server's reader loop -- so a corrupted request really does
 *    fail CRC on the "remote" side and really does produce the same
 *    ErrorResponse-then-hangup the real bvfd would;
 *  - responses suffer their own faults (drop, truncate, corrupt,
 *    duplicate) and arrive after a simulated latency, so recv() must
 *    advance the SimClock to see them -- deadlines are honest;
 *  - kill() breaks every open connection to a worker (epoch bump) and
 *    makes new dials fail until restart().
 *
 * All randomness comes from one seeded Rng, making every run an exact
 * replay of its seed. A watchdog bounds both total transport
 * operations and total simulated time: a scheduling bug that would
 * hang the real fleet forever turns every subsequent operation into a
 * Timeout error here, which the scenario runner reports as a
 * violation instead of hanging the test suite.
 */

#ifndef BVF_SIM_SIM_NET_HH
#define BVF_SIM_SIM_NET_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/rng.hh"
#include "server/protocol.hh"
#include "server/transport.hh"
#include "sim/sim_clock.hh"

namespace bvf::sim
{

/** Independent fault probabilities applied per message. */
struct SimFaults
{
    double dropRequest = 0.0;      //!< request vanishes en route
    double truncateRequest = 0.0;  //!< request loses its tail
    double corruptRequest = 0.0;   //!< request gets a byte flipped
    double dropResponse = 0.0;     //!< response vanishes en route
    double truncateResponse = 0.0; //!< response loses its tail
    double corruptResponse = 0.0;  //!< response gets a byte flipped
    double duplicateResponse = 0.0; //!< response delivered twice
    double connectFail = 0.0;      //!< dial refused spuriously

    /** One-way delivery latency. */
    std::chrono::milliseconds latency{1};
};

/**
 * Scripted per-message override: return true to take over fault
 * decisions for this message (mutating @p bytes in place; clearing it
 * drops the message). Used by regression tests that need one exact
 * fault at one exact moment rather than probabilities.
 * @p isRequest distinguishes direction; @p worker is the target.
 */
using MessageFaultFn = std::function<bool(
    std::size_t worker, bool isRequest, std::string &bytes)>;

/** The simulated network: workers, wires, faults, watchdog. */
class SimNet
{
  public:
    /** Synchronous request handler standing in for worker @p index. */
    using Handler =
        std::function<server::Frame(std::size_t worker,
                                    const server::Frame &request)>;

    /**
     * @param clock    simulated time source (latency, arrivals)
     * @param rng      fault decisions (forked from the scenario seed)
     * @param workers  number of simulated workers
     * @param handler  produces each worker's response frames
     */
    SimNet(SimClock &clock, Rng rng, std::size_t workers,
           Handler handler);

    SimNet(const SimNet &) = delete;
    SimNet &operator=(const SimNet &) = delete;

    SimFaults &faults() { return faults_; }

    /** Install/clear a scripted fault hook (overrides probabilities). */
    void setMessageFault(MessageFaultFn fn) { scripted_ = std::move(fn); }

    /** Zero every fault probability and clear the scripted hook. */
    void quiesce();

    /** Connection factory for WorkerClient::DialFn / dialFactory. */
    Result<server::TransportPtr>
    dial(std::size_t worker, std::chrono::milliseconds deadline);

    /** Crash worker @p index: open connections break, dials fail. */
    void kill(std::size_t worker);

    /** Bring worker @p index back (fresh process, empty buffers). */
    void restart(std::size_t worker);

    bool alive(std::size_t worker) const { return alive_[worker]; }
    std::size_t workerCount() const { return alive_.size(); }

    /**
     * Abort the run once this many transport operations (sends +
     * recvs) have happened; every later operation fails Timeout.
     * This is the no-hang guarantee: livelock becomes a visible error.
     */
    void setOpBudget(std::uint64_t ops) { opBudget_ = ops; }

    /** Same guarantee over simulated time. */
    void setTimeBudget(std::chrono::milliseconds budget)
    {
        timeBudget_ = budget;
    }

    bool watchdogTripped() const { return tripped_; }
    std::uint64_t opsUsed() const { return ops_; }

  private:
    struct Conn;
    class Transport;

    bool checkWatchdog();
    bool roll(double probability);
    void mutateByte(std::string &bytes);
    void truncateTail(std::string &bytes);

    /** Apply faults to @p bytes; false means the message was dropped. */
    bool applyFaults(std::size_t worker, bool isRequest,
                     std::string &bytes, bool &duplicate);

    Result<void> deliverToWorker(const std::shared_ptr<Conn> &conn,
                                 std::string bytes);

    SimClock &clock_;
    Rng rng_;
    Handler handler_;
    SimFaults faults_;
    MessageFaultFn scripted_;

    std::vector<bool> alive_;
    std::vector<std::uint64_t> epochs_; //!< bumped by kill()

    std::uint64_t opBudget_ = 2'000'000;
    std::chrono::milliseconds timeBudget_{3'600'000}; // 1 sim-hour
    std::uint64_t ops_ = 0;
    bool tripped_ = false;
};

} // namespace bvf::sim

#endif // BVF_SIM_SIM_NET_HH
