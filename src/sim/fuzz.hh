/**
 * @file
 * Deterministic byte-mutation fuzzing for every untrusted parser.
 *
 * Ten surfaces accept bytes from outside the process's trust
 * boundary: wire-protocol frames, the /metrics HTTP request head,
 * trace v2 streams (salvage included), campaign journals (salvage
 * included), the shard-journal merge, BVFK kernel bytecode, kernel
 * assembly text, Verilog netlist text, packed netlist test vectors
 * and the certificate-guided optimizer pipeline (bytecode in,
 * validated bytecode or byte-identical fallback out). Each gets a
 * driver that feeds mutated
 * inputs -- valid seed inputs built with the real encoders, then
 * bit-flipped, truncated, spliced and extended by a seeded Rng -- and
 * checks structural invariants on every outcome: parse results stay
 * in bounds, success round-trips, salvage never does worse than
 * strict, and no input is ever accepted as clean when re-parsing says
 * otherwise. Memory-safety violations are the sanitizers' half of the
 * bargain: the sweep binary runs these drivers under ASan/UBSan in CI.
 *
 * Everything is a pure function of (target, seed), so a CI failure
 * line is reproduced locally with the same
 * `bvf_simsweep --fuzz-target T --sim-seed N` invocation, and the
 * failing input is written out for the regression corpus
 * (tests/corpus/<target>/).
 */

#ifndef BVF_SIM_FUZZ_HH
#define BVF_SIM_FUZZ_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hh"

namespace bvf::sim
{

/** One untrusted parser under fuzz. */
enum class FuzzTarget : std::uint8_t
{
    Frame,    //!< server::parseFrame over a byte stream
    Http,     //!< server::scanHttpHead
    Trace,    //!< core::replayTrace, strict and salvage
    Journal,  //!< campaign::parseJournal, salvage included
    Merge,    //!< fleet::mergeShardJournals over a hostile shard
    Bytecode, //!< isa::decodeProgram + the admission verifier
    Asm,      //!< isa::parseAsm + render round trip + verifier
    Rtl,      //!< rtl::parseVerilog + canonical re-emission fixed point
    RtlVec,   //!< packed vectors through a netlist vs the C++ coder
    Opt,      //!< analysis::optimizeProgram + translation validation
};

constexpr std::array<FuzzTarget, 10> kAllFuzzTargets = {
    FuzzTarget::Frame,    FuzzTarget::Http,  FuzzTarget::Trace,
    FuzzTarget::Journal,  FuzzTarget::Merge, FuzzTarget::Bytecode,
    FuzzTarget::Asm,      FuzzTarget::Rtl,   FuzzTarget::RtlVec,
    FuzzTarget::Opt};

/** Display name, e.g. "frame". */
std::string fuzzTargetName(FuzzTarget target);

/** Parse a target name; InvalidArgument lists the valid ones. */
Result<FuzzTarget> fuzzTargetFromName(const std::string &name);

/** What one fuzz run (or corpus replay) observed. */
struct FuzzReport
{
    std::uint64_t iterations = 0; //!< inputs checked
    bool failed = false;
    std::string what;        //!< violated invariant, when failed
    std::string failingPath; //!< where the failing input was written
};

/**
 * Check the target's invariants against one exact input. The returned
 * error describes the violated invariant; crashes are left to the
 * sanitizers. This is the primitive both the fuzz loop and corpus
 * replay share.
 */
Result<void> checkFuzzInput(FuzzTarget target, const std::string &bytes,
                            const std::string &scratchDir);

/** Valid seed inputs for @p target, built with the real encoders. */
std::vector<std::string> corpusSeeds(FuzzTarget target);

/**
 * Run @p iterations mutated inputs against @p target. A failing input
 * is written under @p scratchDir and reported; the run stops at the
 * first failure. @p scratchDir is also where the Merge target stages
 * its shard files.
 */
Result<FuzzReport> runFuzz(FuzzTarget target, std::uint64_t seed,
                           std::uint64_t iterations,
                           const std::string &scratchDir);

/**
 * Replay every regular file in @p dir (sorted by name, so runs are
 * reproducible) against @p target's invariants. Missing directory =
 * empty corpus = success.
 */
Result<FuzzReport> replayCorpusDir(FuzzTarget target,
                                   const std::string &dir,
                                   const std::string &scratchDir);

} // namespace bvf::sim

#endif // BVF_SIM_FUZZ_HH
