/**
 * @file
 * Simulated clock implementation.
 */

#include "sim/sim_clock.hh"

#include <utility>

namespace bvf::sim
{

void
SimClock::advance(std::chrono::milliseconds duration)
{
    if (duration.count() < 0)
        duration = std::chrono::milliseconds{0};
    const time_point target = now_ + duration;
    // Re-query begin() every pass: an event may schedule new events,
    // including ones due before the target.
    while (!events_.empty() && events_.begin()->first <= target) {
        auto it = events_.begin();
        if (it->first > now_)
            now_ = it->first;
        auto fn = std::move(it->second);
        events_.erase(it);
        fn();
    }
    if (target > now_)
        now_ = target;
}

void
SimClock::schedule(std::chrono::milliseconds at, std::function<void()> fn)
{
    events_.emplace(time_point{} + at, std::move(fn));
}

} // namespace bvf::sim
