/**
 * @file
 * Seeded end-to-end fault scenario implementation.
 *
 * Structure of one run:
 *
 *  1. A fault-free *reference* pass over the same apps, workers and
 *     evaluator establishes the report a serial run would produce.
 *  2. Up to maxPhases *faulty* campaign attempts run with the full
 *     fault schedule live: wire faults from SimNet, worker kills and
 *     restarts on the SimClock, torn/failed journal writes from the
 *     atomic-write hook. Each failed attempt resumes from the shard
 *     journals it left behind; shards whose *header* was destroyed
 *     (parseJournal refuses them outright, by design) are removed
 *     between attempts, standing in for the operator the refusal
 *     message tells to intervene.
 *  3. A final *quiet* phase: faults off, everyone restarted, breakers
 *     allowed to cool. This phase must complete and must render the
 *     byte-identical reference report -- anything else is a violation.
 */

#include "sim/scenario.hh"

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <vector>

#include "campaign/journal.hh"
#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "fleet/fleet_campaign.hh"
#include "server/handler.hh"
#include "sim/sim_clock.hh"
#include "sim/sim_net.hh"
#include "workload/app_spec.hh"

namespace bvf::sim
{

namespace fs = std::filesystem;
using server::Frame;
using server::MsgType;

namespace
{

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
hashAbbr(const std::string &abbr)
{
    std::uint64_t h = 0x51e0e7a1ull;
    for (const char c : abbr)
        h = mix64(h ^ static_cast<unsigned char>(c));
    return h;
}

/**
 * The simulated worker's evaluator: a pure function of the app
 * abbreviation. Every worker computing identical bits for the same
 * app is what lets the merge's bit-identity checks pass -- the same
 * contract the real handler meets via deterministic per-app seeds.
 */
server::ChipEnergyResponse
evalApp(const std::string &abbr)
{
    server::ChipEnergyResponse resp;
    std::uint64_t h = hashAbbr(abbr);
    resp.cycles = 1000 + (h % 1000000);
    h = mix64(h);
    resp.instructions = 500 + (h % 5000000);
    for (std::size_t i = 0; i < server::kScenarioSlots; ++i) {
        h = mix64(h);
        resp.chipEnergy[i] =
            1e-3 * (static_cast<double>(h >> 11) * 0x1p-53);
        h = mix64(h);
        resp.bvfUnitsEnergy[i] =
            1e-4 * (static_cast<double>(h >> 11) * 0x1p-53);
    }
    return resp;
}

bool
knownErrorCode(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Io:
      case ErrorCode::Corrupt:
      case ErrorCode::Truncated:
      case ErrorCode::Unsupported:
      case ErrorCode::InvalidArgument:
      case ErrorCode::Failed:
      case ErrorCode::Timeout:
      case ErrorCode::Overloaded:
        return true;
    }
    return false;
}

/** Journal-write fault knobs shared with the atomic-write hook. */
struct IoFaults
{
    bool enabled = false;
    double tearP = 0.0;
    double failP = 0.0;
    std::string dirPrefix; //!< only paths under here are faulted
    Rng rng{1};
};

/** RAII install/restore for the atomic-write hook. */
struct HookGuard
{
    explicit HookGuard(AtomicWriteHook hook)
        : prev(setAtomicWriteHook(std::move(hook)))
    {
    }
    ~HookGuard() { setAtomicWriteHook(std::move(prev)); }
    AtomicWriteHook prev;
};

std::vector<fleet::WorkerAddress>
simAddresses(std::size_t workers)
{
    std::vector<fleet::WorkerAddress> addrs(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        addrs[i].host = "sim";
        addrs[i].port = 7100 + static_cast<int>(i);
    }
    return addrs;
}

fleet::FleetOptions
simFleetOptions(std::size_t workers, std::uint64_t seed, SimClock &clock,
                SimNet &net)
{
    fleet::FleetOptions fo;
    fo.workers = simAddresses(workers);
    fo.requestDeadline = std::chrono::milliseconds{250};
    fo.backoffBase = std::chrono::milliseconds{20};
    fo.maxAttempts = 4;
    fo.breakerThreshold = 3;
    fo.breakerCooldown = std::chrono::milliseconds{200};
    fo.heartbeatInterval = std::chrono::milliseconds{0};
    fo.heartbeatFloor = std::chrono::milliseconds{250};
    fo.jitterSeed = seed;
    fo.clock = &clock;
    fo.dialFactory = [&net](std::size_t index,
                            const fleet::WorkerAddress &) {
        return [&net, index](std::chrono::milliseconds deadline) {
            return net.dial(index, deadline);
        };
    };
    return fo;
}

} // namespace

Result<ScenarioResult>
runScenario(const ScenarioOptions &options)
{
    if (options.scratchDir.empty()) {
        return Error{ErrorCode::InvalidArgument,
                     "scenario needs a scratch directory"};
    }
    const std::string refDir = options.scratchDir + "/ref";
    const std::string runDir = options.scratchDir + "/run";
    std::error_code ec;
    fs::remove_all(refDir, ec);
    fs::remove_all(runDir, ec);
    fs::create_directories(refDir, ec);
    fs::create_directories(runDir, ec);
    if (ec) {
        return Error{ErrorCode::Io,
                     "scenario cannot prepare scratch directories"};
    }

    Rng rng(options.seed ? options.seed : 1);

    // --- Scenario shape, all drawn from the seed ----------------------
    const std::size_t workers = 2 + rng.nextBounded(3);    // 2..4
    const std::size_t appCount = 6 + rng.nextBounded(7);   // 6..12
    const auto &suite = workload::evaluationSuite();
    std::vector<workload::AppSpec> apps(
        suite.begin(),
        suite.begin() + static_cast<std::ptrdiff_t>(
                            std::min(appCount, suite.size())));
    std::set<std::string> poisoned;
    for (const auto &app : apps) {
        if (rng.nextDouble() < 0.15)
            poisoned.insert(app.abbr);
    }

    auto handler = [&poisoned](std::size_t,
                               const Frame &request) -> Frame {
        switch (request.type) {
          case MsgType::PingRequest:
            return Frame{MsgType::PingResponse, request.payload};
          case MsgType::ChipEnergyRequest: {
            auto req = server::ChipEnergyRequest::decode(request.payload);
            if (!req.ok())
                return server::errorFrame(req.error());
            const std::string &abbr = req.value().query.abbr;
            if (poisoned.count(abbr)) {
                return server::errorFrame(
                    Error{ErrorCode::InvalidArgument,
                          "sim: poisoned app " + abbr});
            }
            return Frame{MsgType::ChipEnergyResponse,
                         evalApp(abbr).encode()};
          }
          default:
            return server::errorFrame(Error{
                ErrorCode::InvalidArgument, "sim: unexpected message"});
        }
    };

    fleet::FleetCampaignOptions campaignBase;
    campaignBase.jobs = 1; // single-threaded: determinism is the point
    campaignBase.maxRetries = 1;

    // --- Reference pass: zero faults, the "serial" truth --------------
    std::string reference;
    std::uint32_t digest = 0;
    {
        SimClock clock;
        SimNet net(clock, rng.fork(), workers, handler);
        fleet::Coordinator coord(
            simFleetOptions(workers, options.seed, clock, net));
        auto fco = campaignBase;
        fco.journalDir = refDir;
        fco.reportPath = refDir + "/report.txt"; // for diffing failures
        fleet::FleetCampaign fc(coord, fco);
        digest = fc.configDigest(apps);
        auto out = fc.run(apps);
        if (!out.ok()) {
            return Error{ErrorCode::Failed,
                         "scenario reference pass failed: "
                             + out.error().message};
        }
        reference = out.value().report.render();
    }

    // --- Faulty pass --------------------------------------------------
    ScenarioResult result;
    SimClock clock;
    Rng ioRng = rng.fork();
    SimNet net(clock, rng.fork(), workers, handler);
    net.faults().dropRequest = rng.nextDouble() * 0.08;
    net.faults().truncateRequest = rng.nextDouble() * 0.05;
    net.faults().corruptRequest = rng.nextDouble() * 0.08;
    net.faults().dropResponse = rng.nextDouble() * 0.08;
    net.faults().truncateResponse = rng.nextDouble() * 0.05;
    net.faults().corruptResponse = rng.nextDouble() * 0.08;
    net.faults().duplicateResponse = rng.nextDouble() * 0.10;
    net.faults().connectFail = rng.nextDouble() * 0.10;
    net.faults().latency =
        std::chrono::milliseconds{1 + rng.nextBounded(4)};
    net.setOpBudget(300000);
    net.setTimeBudget(std::chrono::minutes{30});

    fleet::Coordinator coord(
        simFleetOptions(workers, options.seed ^ 0xfau, clock, net));

    // Worker kills and restarts, scheduled on simulated time. Each
    // restart probes so the revived worker rejoins routing the way a
    // live heartbeat would readmit it.
    const int kills = static_cast<int>(rng.nextBounded(workers + 1));
    result.kills = kills;
    for (int k = 0; k < kills; ++k) {
        const std::size_t victim = rng.nextBounded(workers);
        const auto at =
            std::chrono::milliseconds{5 + rng.nextBounded(1500)};
        const auto back =
            at + std::chrono::milliseconds{50 + rng.nextBounded(400)};
        clock.schedule(at, [&net, victim] { net.kill(victim); });
        clock.schedule(back, [&net, &coord, victim] {
            net.restart(victim);
            coord.probeWorkersOnce();
        });
    }

    auto ioFaults = std::make_shared<IoFaults>();
    ioFaults->enabled = true;
    ioFaults->tearP = rng.nextDouble() * 0.15;
    ioFaults->failP = rng.nextDouble() * 0.15;
    ioFaults->dirPrefix = runDir;
    ioFaults->rng = ioRng;
    HookGuard hookGuard(
        [ioFaults](const std::string &path,
                   std::string_view data) -> std::optional<Result<void>> {
            if (!ioFaults->enabled
                || path.rfind(ioFaults->dirPrefix, 0) != 0)
                return std::nullopt;
            const double r = ioFaults->rng.nextDouble();
            if (r < ioFaults->tearP) {
                // Torn write: a prefix lands, the tail is lost, and
                // the caller is told the write failed -- the shape a
                // crash between write and fsync leaves on disk.
                std::ofstream f(path,
                                std::ios::binary | std::ios::trunc);
                f.write(data.data(),
                        static_cast<std::streamsize>(
                            ioFaults->rng.nextBounded(data.size() + 1)));
                Result<void> torn = Error{ErrorCode::Io,
                                          "sim: torn journal write"};
                return torn;
            }
            if (r < ioFaults->tearP + ioFaults->failP) {
                // Failed fsync / ENOSPC: nothing lands, old content
                // (if any) survives intact.
                Result<void> failed = Error{
                    ErrorCode::Io, "sim: journal write failed (ENOSPC)"};
                return failed;
            }
            return std::nullopt;
        });

    const int phases = options.maxPhases > 0
                           ? options.maxPhases
                           : 1 + static_cast<int>(rng.nextBounded(3));
    bool success = false;
    std::string finalRender;
    Error lastError{ErrorCode::Failed, "scenario never ran"};

    for (int p = 0; p <= phases && result.violation.empty(); ++p) {
        const bool quiet = p == phases;
        if (quiet) {
            // Final phase: the storm is over. Everything must heal.
            net.quiesce();
            ioFaults->enabled = false;
            for (std::size_t w = 0; w < workers; ++w) {
                if (!net.alive(w))
                    net.restart(w);
            }
            // First probes may consume connections pooled before the
            // restarts (stale epoch); repeat until verdicts settle.
            for (int probe = 0; probe < 3; ++probe) {
                coord.probeWorkersOnce();
                clock.advance(std::chrono::milliseconds{1});
            }
            clock.advance(std::chrono::milliseconds{500}); // cooldowns
        }

        auto fco = campaignBase;
        fco.journalDir = runDir;
        fco.resume = p > 0;
        fco.reportPath = runDir + "/report.txt";
        fco.mergedJournalPath = runDir + "/merged.bvfj";
        fleet::FleetCampaign fc(coord, fco);
        auto out = fc.run(apps);
        ++result.phases;

        if (net.watchdogTripped()) {
            result.violation = strFormat(
                "watchdog tripped after %llu transport ops (no-hang "
                "guarantee broken)",
                static_cast<unsigned long long>(net.opsUsed()));
            break;
        }
        if (out.ok()) {
            success = true;
            finalRender = out.value().report.render();
            break;
        }
        lastError = out.error();
        result.cleanFailure = true; // a phase failed, with structure
        if (!knownErrorCode(lastError.code)) {
            result.violation =
                strFormat("error outside the taxonomy: code %d",
                          static_cast<int>(lastError.code));
            break;
        }
        if (quiet) {
            result.violation =
                "final quiet phase failed: " + lastError.message;
            break;
        }

        // Operator intervention between attempts: a shard whose
        // *header* was destroyed is refused forever by design (no
        // config digest left to trust); the refusal message tells the
        // operator to remove it, so the scenario does.
        for (std::size_t w = 0; w < workers; ++w) {
            const std::string path = fc.shardPath(w);
            if (!fileExists(path))
                continue;
            auto bytes = readFileBytes(path);
            if (bytes.ok()
                && campaign::parseJournal(bytes.value(), digest).ok())
                continue;
            fs::remove(path, ec);
        }
        clock.advance(
            std::chrono::milliseconds{50 + rng.nextBounded(300)});
    }

    result.transportOps = net.opsUsed();
    if (!result.violation.empty())
        return result;

    if (!success) {
        // Unreachable by construction (the quiet phase either
        // succeeds or sets a violation), kept as a belt.
        result.violation = "scenario ended without an outcome";
        return result;
    }

    result.identical = finalRender == reference;
    if (!result.identical) {
        result.violation =
            "merged report is not byte-identical to the fault-free "
            "reference";
        return result;
    }

    // The written artifacts must match what run() returned ...
    auto onDisk = readFileBytes(runDir + "/report.txt");
    if (!onDisk.ok() || onDisk.value() != reference) {
        result.violation = "report file on disk differs from render";
        return result;
    }
    // ... and the merged journal must parse cleanly: exactly one
    // record per app, no salvage needed -- the never-double-counts
    // and never-accepts-corruption checks in one.
    auto mergedBytes = readFileBytes(runDir + "/merged.bvfj");
    if (!mergedBytes.ok()) {
        result.violation = "merged journal missing";
        return result;
    }
    auto parsed = campaign::parseJournal(mergedBytes.value(), digest);
    if (!parsed.ok() || parsed.value().salvaged
        || parsed.value().results.size() != apps.size()) {
        result.violation = "merged journal is not clean";
        return result;
    }

    result.ok = true;
    return result;
}

} // namespace bvf::sim
