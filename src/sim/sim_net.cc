/**
 * @file
 * Simulated network implementation.
 */

#include "sim/sim_net.hh"

#include <utility>

#include "server/handler.hh"

namespace bvf::sim
{

using server::Frame;

/** One simulated connection: worker-side parse state + client inbox. */
struct SimNet::Conn
{
    std::size_t worker = 0;
    std::uint64_t epoch = 0;  //!< epochs_[worker] at dial time
    std::string parseBuf;     //!< worker-side partial request bytes
    bool closedByWorker = false; //!< framing error -> server hangup

    struct Delivery
    {
        Clock::time_point arrival;
        std::string bytes;
    };
    std::deque<Delivery> pending; //!< responses in flight to the client
};

/** Client endpoint of one simulated connection. */
class SimNet::Transport final : public server::Transport
{
  public:
    Transport(SimNet &net, std::shared_ptr<Conn> conn)
        : net_(net), conn_(std::move(conn))
    {
    }

    Result<void> send(std::string_view bytes,
                      std::chrono::milliseconds deadline) override;
    Result<std::string>
    recv(std::chrono::milliseconds deadline) override;
    void close() override { closed_ = true; }

  private:
    SimNet &net_;
    std::shared_ptr<Conn> conn_;
    bool closed_ = false;
};

SimNet::SimNet(SimClock &clock, Rng rng, std::size_t workers,
               Handler handler)
    : clock_(clock), rng_(rng), handler_(std::move(handler)),
      alive_(workers, true), epochs_(workers, 0)
{
}

void
SimNet::quiesce()
{
    faults_ = SimFaults{};
    scripted_ = nullptr;
}

bool
SimNet::checkWatchdog()
{
    if (tripped_)
        return false;
    ++ops_;
    if (ops_ > opBudget_ || clock_.elapsed() > timeBudget_) {
        tripped_ = true;
        return false;
    }
    return true;
}

bool
SimNet::roll(double probability)
{
    if (probability <= 0.0)
        return false;
    return rng_.nextDouble() < probability;
}

void
SimNet::mutateByte(std::string &bytes)
{
    if (bytes.empty())
        return;
    const std::size_t at = rng_.nextBounded(bytes.size());
    bytes[at] = static_cast<char>(
        static_cast<unsigned char>(bytes[at])
        ^ static_cast<unsigned char>(1u << rng_.nextBounded(8)));
}

void
SimNet::truncateTail(std::string &bytes)
{
    if (bytes.empty())
        return;
    bytes.resize(rng_.nextBounded(bytes.size()));
}

bool
SimNet::applyFaults(std::size_t worker, bool isRequest,
                    std::string &bytes, bool &duplicate)
{
    duplicate = false;
    if (scripted_ && scripted_(worker, isRequest, bytes))
        return !bytes.empty();
    if (isRequest) {
        if (roll(faults_.dropRequest))
            return false;
        if (roll(faults_.truncateRequest))
            truncateTail(bytes);
        if (roll(faults_.corruptRequest))
            mutateByte(bytes);
        return !bytes.empty();
    }
    if (roll(faults_.dropResponse))
        return false;
    if (roll(faults_.truncateResponse))
        truncateTail(bytes);
    if (roll(faults_.corruptResponse))
        mutateByte(bytes);
    duplicate = roll(faults_.duplicateResponse);
    return !bytes.empty();
}

Result<server::TransportPtr>
SimNet::dial(std::size_t worker, std::chrono::milliseconds)
{
    if (!checkWatchdog())
        return Error{ErrorCode::Timeout, "sim: watchdog tripped"};
    if (!alive_[worker] || roll(faults_.connectFail))
        return Error{ErrorCode::Io, "sim: connect refused"};
    auto conn = std::make_shared<Conn>();
    conn->worker = worker;
    conn->epoch = epochs_[worker];
    return server::TransportPtr(
        std::make_unique<Transport>(*this, std::move(conn)));
}

void
SimNet::kill(std::size_t worker)
{
    alive_[worker] = false;
    ++epochs_[worker]; // every open connection is now stale
}

void
SimNet::restart(std::size_t worker)
{
    alive_[worker] = true;
    ++epochs_[worker]; // old connections do not survive the restart
}

Result<void>
SimNet::deliverToWorker(const std::shared_ptr<Conn> &conn,
                        std::string bytes)
{
    // The worker side mirrors the real server's reader loop: parse
    // frames out of the stream, answer each, and on a framing error
    // answer once then hang up.
    conn->parseBuf.append(bytes);
    while (!conn->parseBuf.empty() && !conn->closedByWorker) {
        std::size_t consumed = 0;
        auto parsed = server::parseFrame(conn->parseBuf, consumed);
        if (!parsed.ok()) {
            if (parsed.error().code == ErrorCode::Truncated)
                break; // need more bytes
            std::string reply = server::encodeFrame(
                server::MsgType::ErrorResponse,
                server::errorFrame(parsed.error()).payload);
            bool duplicate = false;
            if (applyFaults(conn->worker, false, reply, duplicate)) {
                // A duplicated frame rides the same stream, so it
                // shows up appended to the original delivery -- which
                // is exactly the shape the client's "never re-pool a
                // stream with leftover bytes" defense must catch.
                if (duplicate)
                    reply += reply;
                conn->pending.push_back(
                    {clock_.now() + faults_.latency, reply});
            }
            conn->closedByWorker = true;
            break;
        }
        conn->parseBuf.erase(0, consumed);
        Frame response = handler_(conn->worker, parsed.value());
        std::string reply =
            server::encodeFrame(response.type, response.payload);
        bool duplicate = false;
        if (!applyFaults(conn->worker, false, reply, duplicate))
            continue; // response lost en route
        if (duplicate)
            reply += reply; // same stream: arrives in one delivery
        conn->pending.push_back({clock_.now() + faults_.latency, reply});
    }
    return {};
}

Result<void>
SimNet::Transport::send(std::string_view bytes,
                        std::chrono::milliseconds)
{
    if (!net_.checkWatchdog())
        return Error{ErrorCode::Timeout, "sim: watchdog tripped"};
    if (closed_)
        return Error{ErrorCode::Io, "sim: send on closed transport"};
    if (conn_->epoch != net_.epochs_[conn_->worker]
        || !net_.alive_[conn_->worker]) {
        return Error{ErrorCode::Io, "sim: connection reset by peer"};
    }
    if (conn_->closedByWorker)
        return Error{ErrorCode::Io, "sim: connection reset by peer"};

    net_.clock_.advance(net_.faults_.latency);
    std::string wire(bytes);
    bool duplicate = false;
    if (!net_.applyFaults(conn_->worker, true, wire, duplicate))
        return {}; // dropped en route: send "succeeds", reply never comes
    return net_.deliverToWorker(conn_, std::move(wire));
}

Result<std::string>
SimNet::Transport::recv(std::chrono::milliseconds deadline)
{
    if (!net_.checkWatchdog())
        return Error{ErrorCode::Timeout, "sim: watchdog tripped"};
    if (closed_)
        return Error{ErrorCode::Io, "sim: recv on closed transport"};

    if (!conn_->pending.empty()) {
        auto &front = conn_->pending.front();
        if (front.arrival > net_.clock_.now()) {
            const auto wait =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    front.arrival - net_.clock_.now());
            if (deadline.count() > 0 && wait > deadline) {
                net_.clock_.advance(deadline);
                return Error{ErrorCode::Timeout,
                             "transport deadline expired"};
            }
            net_.clock_.advance(wait);
        }
        std::string bytes = std::move(front.bytes);
        conn_->pending.pop_front();
        return bytes;
    }

    // Nothing in flight. A worker-side hangup or a broken epoch is an
    // orderly EOF; otherwise nothing is ever coming, so burn the
    // deadline and time out (blocking forever would be a harness hang).
    if (conn_->closedByWorker
        || conn_->epoch != net_.epochs_[conn_->worker]
        || !net_.alive_[conn_->worker]) {
        return std::string{};
    }
    if (deadline.count() > 0)
        net_.clock_.advance(deadline);
    return Error{ErrorCode::Timeout, "transport deadline expired"};
}

} // namespace bvf::sim
