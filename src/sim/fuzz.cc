/**
 * @file
 * Fuzz driver implementation.
 */

#include "sim/fuzz.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/equiv.hh"
#include "analysis/optimizer.hh"
#include "analysis/verifier.hh"
#include "campaign/journal.hh"
#include "coder/isa_coder.hh"
#include "coder/nv_coder.hh"
#include "coder/vs_coder.hh"
#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/trace.hh"
#include "fault/secded.hh"
#include "fleet/merge.hh"
#include "isa/asm.hh"
#include "isa/bytecode.hh"
#include "rtl/eval.hh"
#include "rtl/gen.hh"
#include "rtl/verilog.hh"
#include "server/http.hh"
#include "server/protocol.hh"
#include "sram/access_sink.hh"
#include "workload/app_spec.hh"

namespace bvf::sim
{

namespace fs = std::filesystem;

namespace
{

/** Config digest every journal/merge fuzz input is framed under. */
constexpr std::uint32_t kFuzzDigest = 0x42f0f0f0u;

std::string
fail(const char *what)
{
    return what;
}

// --- Mutation engine --------------------------------------------------

std::string
mutate(std::string bytes, Rng &rng)
{
    const int edits = 1 + static_cast<int>(rng.nextBounded(4));
    for (int e = 0; e < edits; ++e) {
        switch (rng.nextBounded(6)) {
          case 0: // bit flip
            if (!bytes.empty()) {
                const std::size_t at = rng.nextBounded(bytes.size());
                bytes[at] = static_cast<char>(
                    static_cast<unsigned char>(bytes[at])
                    ^ static_cast<unsigned char>(
                        1u << rng.nextBounded(8)));
            }
            break;
          case 1: // byte smash
            if (!bytes.empty()) {
                bytes[rng.nextBounded(bytes.size())] =
                    static_cast<char>(rng.nextBounded(256));
            }
            break;
          case 2: // insert
            bytes.insert(bytes.begin()
                             + static_cast<std::ptrdiff_t>(
                                 rng.nextBounded(bytes.size() + 1)),
                         static_cast<char>(rng.nextBounded(256)));
            break;
          case 3: // erase
            if (!bytes.empty())
                bytes.erase(rng.nextBounded(bytes.size()), 1);
            break;
          case 4: // truncate
            if (!bytes.empty())
                bytes.resize(rng.nextBounded(bytes.size()));
            break;
          default: { // append junk
            const std::size_t n = 1 + rng.nextBounded(16);
            for (std::size_t i = 0; i < n; ++i)
                bytes.push_back(static_cast<char>(rng.nextBounded(256)));
            break;
          }
        }
    }
    return bytes;
}

// --- Per-target seed corpora and invariant checks ---------------------

campaign::AppResult
sampleResult(const std::string &name, const std::string &abbr,
             bool quarantined)
{
    campaign::AppResult r;
    r.name = name;
    r.abbr = abbr;
    if (quarantined) {
        r.status = campaign::AppStatus::Quarantined;
        r.attempts = 2;
        r.error = Error{ErrorCode::Failed, "fuzz: seeded failure"};
        return r;
    }
    r.status = campaign::AppStatus::Completed;
    r.attempts = 1;
    r.cycles = 12345;
    r.instructions = 67890;
    for (std::size_t i = 0; i < r.chipEnergy.size(); ++i) {
        r.chipEnergy[i] = 1e-3 / static_cast<double>(i + 1);
        r.bvfUnitsEnergy[i] = 1e-4 / static_cast<double>(i + 1);
    }
    return r;
}

std::vector<workload::AppSpec>
mergeApps()
{
    workload::AppSpec a;
    a.name = "alpha";
    a.abbr = "AAA";
    workload::AppSpec b;
    b.name = "beta";
    b.abbr = "BBB";
    return {a, b};
}

std::string
goodJournalBytes()
{
    std::vector<campaign::AppResult> results;
    results.push_back(sampleResult("alpha", "AAA", false));
    results.push_back(sampleResult("beta", "BBB", true));
    return campaign::serializeJournal(kFuzzDigest, results);
}

std::string
goodTraceBytes()
{
    std::ostringstream out;
    core::TraceWriter writer(out);
    const std::array<Word, 4> block = {0x1u, 0xffffffffu, 0x0u,
                                       0xdeadbeefu};
    const std::array<Word64, 2> instrs = {0x123456789abcdef0ull,
                                          0x0fedcba987654321ull};
    writer.onAccess(coder::UnitId::Reg, sram::AccessType::Write, block,
                    0xfu, 10);
    writer.onAccess(coder::UnitId::Sme, sram::AccessType::Read, block,
                    0x3u, 11);
    writer.onFetch(coder::UnitId::Reg, sram::AccessType::Read, instrs,
                   12);
    writer.onNocPacket(1, block, false, 13);
    (void)writer.finish();
    return out.str();
}

Result<void>
checkFrame(const std::string &bytes)
{
    std::string_view rest = bytes;
    for (int i = 0; i < 1000 && !rest.empty(); ++i) {
        std::size_t consumed = 0;
        auto parsed = server::parseFrame(rest, consumed);
        if (!parsed.ok()) {
            // Truncated = feed more; anything else kills the stream.
            // Either way the error must stay inside the framing
            // taxonomy: the fleet coordinator retries framing damage on
            // another worker but records any other code as an
            // application verdict, so a mutated frame that fails with
            // e.g. InvalidArgument would convict the job it hit.
            const ErrorCode code = parsed.error().code;
            if (code != ErrorCode::Corrupt && code != ErrorCode::Truncated
                && code != ErrorCode::Unsupported) {
                return Error{ErrorCode::Failed,
                             fail("parseFrame error escaped the framing "
                                  "taxonomy")};
            }
            return {};
        }
        if (consumed == 0 || consumed > rest.size()) {
            return Error{ErrorCode::Failed,
                         fail("parseFrame consumed out of bounds")};
        }
        if (parsed.value().payload.size() > server::kMaxPayload) {
            return Error{ErrorCode::Failed,
                         fail("parseFrame exceeded kMaxPayload")};
        }
        rest.remove_prefix(consumed);
    }
    return {};
}

Result<void>
checkHttp(const std::string &bytes)
{
    const server::HttpScanResult scan = server::scanHttpHead(bytes);
    switch (scan.state) {
      case server::HttpScan::NeedMore:
      case server::HttpScan::NotHttp:
      case server::HttpScan::RequestLineTooLong:
      case server::HttpScan::HeadTooLong:
        return {};
      case server::HttpScan::Complete:
        break;
      default:
        return Error{ErrorCode::Failed,
                     fail("scanHttpHead returned a bogus state")};
    }
    if (scan.headBytes == 0 || scan.headBytes > bytes.size()
        || scan.headBytes > server::kMaxHttpHead) {
        return Error{ErrorCode::Failed,
                     fail("scanHttpHead headBytes out of bounds")};
    }
    // A complete head must stay complete (and identical) when scanned
    // alone: the scanner is stateless and prefix-stable.
    const auto again =
        server::scanHttpHead(bytes.substr(0, scan.headBytes));
    if (again.state != server::HttpScan::Complete
        || again.headBytes != scan.headBytes) {
        return Error{ErrorCode::Failed,
                     fail("scanHttpHead is not prefix-stable")};
    }
    return {};
}

Result<void>
checkTrace(const std::string &bytes)
{
    sram::NullSink sink;
    std::istringstream strictIn(bytes);
    auto strict = core::replayTrace(strictIn, sink, {});
    std::istringstream salvageIn(bytes);
    auto salvage =
        core::replayTrace(salvageIn, sink, core::ReplayOptions{true});
    if (strict.ok()) {
        if (!salvage.ok()) {
            return Error{
                ErrorCode::Failed,
                fail("salvage failed where strict replay succeeded")};
        }
        if (salvage.value().records != strict.value().records) {
            return Error{
                ErrorCode::Failed,
                fail("salvage record count diverged from strict")};
        }
    }
    if (salvage.ok()) {
        // Salvage must be deterministic: same bytes, same summary.
        std::istringstream againIn(bytes);
        auto again =
            core::replayTrace(againIn, sink, core::ReplayOptions{true});
        if (!again.ok()
            || again.value().records != salvage.value().records
            || again.value().batches != salvage.value().batches
            || again.value().salvaged != salvage.value().salvaged) {
            return Error{ErrorCode::Failed,
                         fail("trace salvage is nondeterministic")};
        }
    }
    return {};
}

Result<void>
checkJournal(const std::string &bytes)
{
    auto parsed = campaign::parseJournal(bytes, kFuzzDigest);
    if (!parsed.ok())
        return {}; // structured refusal is a correct outcome
    if (parsed.value().results.size() > bytes.size()) {
        // Every record costs at least its framing bytes; more results
        // than input bytes means a count ran away.
        return Error{ErrorCode::Failed,
                     fail("parseJournal produced impossible count")};
    }
    if (parsed.value().salvaged && parsed.value().warning.empty()) {
        return Error{ErrorCode::Failed,
                     fail("silent salvage: damage not described")};
    }
    // What was accepted must round-trip cleanly: serialize the
    // accepted records and reparse -- bit-identical, no salvage.
    const std::string again =
        campaign::serializeJournal(kFuzzDigest, parsed.value().results);
    auto reparsed = campaign::parseJournal(again, kFuzzDigest);
    if (!reparsed.ok() || reparsed.value().salvaged
        || reparsed.value().results.size()
               != parsed.value().results.size()) {
        return Error{ErrorCode::Failed,
                     fail("accepted journal does not round-trip")};
    }
    if (campaign::serializeJournal(kFuzzDigest,
                                   reparsed.value().results)
        != again) {
        return Error{ErrorCode::Failed,
                     fail("journal round-trip is not bit-stable")};
    }
    return {};
}

Result<void>
checkMerge(const std::string &bytes, const std::string &scratchDir)
{
    const std::string dir = scratchDir + "/merge-stage";
    std::error_code ec;
    fs::create_directories(dir, ec);
    const std::string hostile = dir + "/shard-hostile.bvfj";
    const std::string good = dir + "/shard-good.bvfj";
    {
        std::ofstream f(hostile, std::ios::binary | std::ios::trunc);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
    }
    {
        const std::string goodBytes = goodJournalBytes();
        std::ofstream f(good, std::ios::binary | std::ios::trunc);
        f.write(goodBytes.data(),
                static_cast<std::streamsize>(goodBytes.size()));
    }
    const auto apps = mergeApps();
    const std::vector<std::string> shards = {hostile, good};
    auto merged = fleet::mergeShardJournals(shards, kFuzzDigest, apps);
    if (!merged.ok())
        return {}; // clean refusal of a hostile shard is correct
    const auto &results = merged.value().report.results;
    if (results.size() != apps.size()) {
        return Error{ErrorCode::Failed,
                     fail("merge accepted wrong app count")};
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].abbr != apps[i].abbr) {
            return Error{ErrorCode::Failed,
                         fail("merge broke campaign ordering")};
        }
    }
    return {};
}

/**
 * Small, terminating kernel text used to seed both kernel targets.
 * Shared-memory only, so it stays admissible without a data image.
 */
const char *const kSeedAsm = ".kernel fuzz-seed\n"
                             ".launch 2 64\n"
                             ".shared 256\n"
                             "\n"
                             "    S2R R1, SR_TIDX\n"
                             "    MOV R2, #0\n"
                             "    SHL R3, R1, #2\n"
                             "    AND R3, R3, #252\n"
                             "L4:\n"
                             "    STS [R3 + 0], R2\n"
                             "    LDS R4, [R3 + 0]\n"
                             "    IADD R2, R2, #1\n"
                             "    SETP.LT P1, R2, #4\n"
                             "    @P1 BRA L4, join=L9\n"
                             "L9:\n"
                             "    EXIT\n";

/** Verifier budget for fuzz totality checks: small but non-trivial. */
analysis::VerifyOptions
fuzzVerifyOptions()
{
    analysis::VerifyOptions opts;
    opts.stepBudget = 1u << 14;
    return opts;
}

Result<void>
checkBytecode(const std::string &bytes)
{
    auto decoded = isa::decodeProgram(bytes);
    if (!decoded.ok())
        return {}; // structured refusal is a correct outcome
    // Strict decoding admits only canonical encodings, so acceptance
    // must re-encode byte-identically -- otherwise two distinct wire
    // forms alias one program and content digests stop being stable.
    if (isa::encodeProgram(decoded.value()) != bytes) {
        return Error{ErrorCode::Failed,
                     fail("accepted bytecode does not re-encode "
                          "byte-identically")};
    }
    // The admission verifier must be total over everything the decoder
    // accepts: any verdict is fine, crashing or fatal()ing is not.
    (void)analysis::verifyProgram(decoded.value(), fuzzVerifyOptions());
    return {};
}

Result<void>
checkOpt(const std::string &bytes)
{
    auto decoded = isa::decodeProgram(bytes);
    if (!decoded.ok())
        return {}; // structured refusal is a correct outcome
    analysis::OptimizeOptions opts;
    opts.verify = fuzzVerifyOptions();
    opts.equiv.seeds = 2;
    opts.equiv.maxSteps = 1u << 14;
    const analysis::OptimizeResult res =
        analysis::optimizeProgram(decoded.value(), opts);
    if (!res.accepted) {
        // Fallback contract: the caller gets the input program back,
        // byte for byte, whatever went wrong inside the pipeline.
        if (isa::encodeProgram(res.program) != bytes) {
            return Error{ErrorCode::Failed,
                         fail("optimizer fallback is not "
                              "byte-identical to the input")};
        }
        return {};
    }
    // Accepted: the optimizer claims validated equivalence and
    // re-admission. Check both against oracles outside the pipeline.
    if (!res.originalAdmitted) {
        return Error{ErrorCode::Failed,
                     fail("optimizer accepted a rewrite without "
                          "admitting the original")};
    }
    const std::string optBytes = isa::encodeProgram(res.program);
    auto reDecoded = isa::decodeProgram(optBytes);
    if (!reDecoded.ok()
        || isa::encodeProgram(reDecoded.value()) != optBytes) {
        return Error{ErrorCode::Failed,
                     fail("optimized program is not canonical "
                          "bytecode")};
    }
    if (!analysis::verifyProgram(res.program, fuzzVerifyOptions())
             .admitted) {
        return Error{ErrorCode::Failed,
                     fail("accepted optimized program does not "
                          "re-admit")};
    }
    // Differential oracle independent of the validator's own layer 2:
    // the reference interpreter must observe identical stores and
    // final memory on both programs (compared only when both finish
    // inside the budget, so a budget cliff cannot fake a divergence).
    const analysis::RefObservation before =
        analysis::runReference(decoded.value(), 1u << 14);
    const analysis::RefObservation after =
        analysis::runReference(res.program, 1u << 14);
    if (before.finished && after.finished && !(before == after)) {
        return Error{ErrorCode::Failed,
                     fail("validator passed a behaviorally different "
                          "program")};
    }
    return {};
}

Result<void>
checkAsm(const std::string &text)
{
    auto parsed = isa::parseAsm(text);
    if (!parsed.ok())
        return {}; // structured refusal is a correct outcome
    // parseAsm(renderAsm(p)) == p for every program parseAsm produces;
    // compare through the bytecode encoder, which is injective on
    // canonical programs.
    const std::string rendered = isa::renderAsm(parsed.value());
    auto again = isa::parseAsm(rendered);
    if (!again.ok()) {
        return Error{ErrorCode::Failed,
                     fail("rendered assembly does not reparse")};
    }
    if (isa::encodeProgram(again.value())
        != isa::encodeProgram(parsed.value())) {
        return Error{ErrorCode::Failed,
                     fail("assembly round trip changed the program")};
    }
    (void)analysis::verifyProgram(parsed.value(), fuzzVerifyOptions());
    return {};
}

Result<void>
checkRtl(const std::string &text)
{
    auto parsed = rtl::parseVerilog(text);
    if (!parsed.ok()) {
        // Untrusted Verilog must come back as a structured Corrupt
        // refusal; any other code means a cap or validation failure
        // leaked out under the wrong taxonomy.
        if (parsed.error().code != ErrorCode::Corrupt) {
            return Error{ErrorCode::Failed,
                         fail("parseVerilog refusal escaped the "
                              "Corrupt taxonomy")};
        }
        return {};
    }
    // Whatever the parser accepts must canonicalize to a fixed point:
    // emit, reparse, re-emit -- byte-identical both times.
    const std::string first = rtl::emitVerilog(parsed.value());
    auto again = rtl::parseVerilog(first);
    if (!again.ok()) {
        return Error{ErrorCode::Failed,
                     fail("emitted Verilog does not reparse")};
    }
    if (rtl::emitVerilog(again.value()) != first) {
        return Error{ErrorCode::Failed,
                     fail("Verilog canonical form is not a fixed "
                          "point")};
    }
    // The evaluator must either take the module or refuse a
    // combinational cycle with a structured error.
    auto ev = rtl::Evaluator::build(parsed.value());
    if (!ev.ok() && ev.error().code != ErrorCode::Corrupt
        && ev.error().code != ErrorCode::InvalidArgument) {
        return Error{ErrorCode::Failed,
                     fail("Evaluator::build refusal escaped the "
                          "error taxonomy")};
    }
    return {};
}

/** Little-endian word reader over the fuzz input, zero-padded. */
template <typename T>
T
rtlVecWord(const std::string &bytes, std::size_t at)
{
    T w = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        if (at + i < bytes.size()) {
            w |= static_cast<T>(
                     static_cast<unsigned char>(bytes[at + i]))
                 << (8 * i);
        }
    }
    return w;
}

/** Drive @p ev's input bits from @p value starting at @p flatBase. */
void
rtlVecDrive(rtl::Evaluator &ev, int flatBase, Word64 value, int bits)
{
    for (int b = 0; b < bits; ++b) {
        ev.setInput(flatBase + b,
                    (value >> b) & 1u ? ~0ull : 0ull);
    }
}

/** Read @p bits output bits (lane 0) starting at @p flatBase. */
Word64
rtlVecCollect(const rtl::Evaluator &ev, int flatBase, int bits)
{
    Word64 value = 0;
    for (int b = 0; b < bits; ++b)
        value |= (ev.output(flatBase + b) & 1u) << b;
    return value;
}

Result<void>
checkRtlVec(const std::string &bytes)
{
    if (bytes.empty())
        return {};
    // Byte 0 selects the netlist; the rest are input lanes. Every
    // input is in-domain for every coder, so the only correct outcome
    // is bit-for-bit agreement with the C++ model -- twice, because
    // re-evaluation must be deterministic.
    const unsigned sel =
        static_cast<unsigned char>(bytes[0]) % 5u;
    rtl::Module m = [&] {
        switch (sel) {
          case 0:
            return rtl::nvCoderNetlist();
          case 1:
            return rtl::vsCoderNetlist(
                4, static_cast<int>(rtlVecWord<Word>(bytes, 1) % 4u));
          case 2:
            return rtl::isaCoderNetlist(rtlVecWord<Word64>(bytes, 1));
          case 3:
            return rtl::secdedEncoderNetlist();
          default:
            return rtl::secdedDecoderNetlist();
        }
    }();
    auto built = rtl::Evaluator::build(m);
    if (!built.ok()) {
        return Error{ErrorCode::Failed,
                     fail("generated netlist failed to build")};
    }
    rtl::Evaluator &ev = built.value();

    // The payload starts after the selector (and the netlist
    // parameter, where one was consumed).
    const std::size_t at = sel == 1 ? 5 : sel == 2 ? 9 : 1;
    std::string expect;
    switch (sel) {
      case 0: {
        const Word w = rtlVecWord<Word>(bytes, at);
        rtlVecDrive(ev, 0, w, 32);
        expect = strFormat("%08x", coder::NvCoder().encode(w));
        break;
      }
      case 1: {
        const int pivot =
            static_cast<int>(rtlVecWord<Word>(bytes, 1) % 4u);
        std::array<Word, 4> block{};
        for (int i = 0; i < 4; ++i) {
            block[static_cast<std::size_t>(i)] =
                rtlVecWord<Word>(bytes,
                                 at + static_cast<std::size_t>(i) * 4);
            rtlVecDrive(ev, i * 32,
                        block[static_cast<std::size_t>(i)], 32);
        }
        coder::VsCoder(pivot).encode(block);
        for (const Word w : block)
            expect += strFormat("%08x", w);
        break;
      }
      case 2: {
        const Word64 mask = rtlVecWord<Word64>(bytes, 1);
        const Word64 instr = rtlVecWord<Word64>(bytes, at);
        rtlVecDrive(ev, 0, instr, 64);
        expect = strFormat("%016llx",
                           static_cast<unsigned long long>(
                               coder::IsaCoder(mask).encode(instr)));
        break;
      }
      case 3: {
        const Word64 data = rtlVecWord<Word64>(bytes, at);
        rtlVecDrive(ev, 0, data, 64);
        expect = strFormat("%02x", fault::secdedEncode(data));
        break;
      }
      default: {
        const Word64 data = rtlVecWord<Word64>(bytes, at);
        const auto check =
            static_cast<std::uint8_t>(rtlVecWord<Word>(bytes, at + 8));
        rtlVecDrive(ev, 0, data, 64);
        rtlVecDrive(ev, 64, check, 8);
        const fault::SecdedDecoded dec =
            fault::secdedDecode(data, check);
        expect = strFormat(
            "%016llx %02x %d %d",
            static_cast<unsigned long long>(dec.data), dec.check,
            dec.status == fault::EccStatus::Corrected ? 1 : 0,
            dec.status == fault::EccStatus::Uncorrectable ? 1 : 0);
        break;
      }
    }

    std::string firstGot;
    for (int pass = 0; pass < 2; ++pass) {
        ev.eval();
        std::string got;
        switch (sel) {
          case 0:
            got = strFormat("%08x",
                            static_cast<Word>(rtlVecCollect(ev, 0, 32)));
            break;
          case 1:
            for (int i = 0; i < 4; ++i) {
                got += strFormat(
                    "%08x",
                    static_cast<Word>(rtlVecCollect(ev, i * 32, 32)));
            }
            break;
          case 2:
            got = strFormat("%016llx",
                            static_cast<unsigned long long>(
                                rtlVecCollect(ev, 0, 64)));
            break;
          case 3:
            got = strFormat(
                "%02x", static_cast<unsigned>(rtlVecCollect(ev, 0, 8)));
            break;
          default:
            got = strFormat(
                "%016llx %02x %d %d",
                static_cast<unsigned long long>(rtlVecCollect(ev, 0, 64)),
                static_cast<unsigned>(rtlVecCollect(ev, 64, 8)),
                static_cast<int>(ev.output(72) & 1u),
                static_cast<int>(ev.output(73) & 1u));
            break;
        }
        if (got != expect) {
            return Error{ErrorCode::Failed,
                         fail("netlist output diverged from the C++ "
                              "model")};
        }
        if (pass == 0)
            firstGot = got;
        else if (got != firstGot) {
            return Error{ErrorCode::Failed,
                         fail("netlist re-evaluation is "
                              "nondeterministic")};
        }
    }
    return {};
}

} // namespace

std::string
fuzzTargetName(FuzzTarget target)
{
    switch (target) {
      case FuzzTarget::Frame:
        return "frame";
      case FuzzTarget::Http:
        return "http";
      case FuzzTarget::Trace:
        return "trace";
      case FuzzTarget::Journal:
        return "journal";
      case FuzzTarget::Merge:
        return "merge";
      case FuzzTarget::Bytecode:
        return "bytecode";
      case FuzzTarget::Asm:
        return "asm";
      case FuzzTarget::Rtl:
        return "rtl";
      case FuzzTarget::RtlVec:
        return "rtlvec";
      case FuzzTarget::Opt:
        return "opt";
    }
    return "?";
}

Result<FuzzTarget>
fuzzTargetFromName(const std::string &name)
{
    for (const FuzzTarget t : kAllFuzzTargets) {
        if (fuzzTargetName(t) == name)
            return t;
    }
    return Error{ErrorCode::InvalidArgument,
                 strFormat("unknown fuzz target '%s' (want frame, "
                           "http, trace, journal, merge, bytecode, "
                           "asm, rtl, rtlvec or opt)",
                           name.c_str())};
}

std::vector<std::string>
corpusSeeds(FuzzTarget target)
{
    using server::MsgType;
    std::vector<std::string> seeds;
    switch (target) {
      case FuzzTarget::Frame: {
        server::Ping ping;
        ping.nonce = 7;
        seeds.push_back(
            server::encodeFrame(MsgType::PingRequest, ping.encode()));
        server::ChipEnergyRequest energy;
        energy.query.abbr = "KMN";
        seeds.push_back(server::encodeFrame(MsgType::ChipEnergyRequest,
                                            energy.encode()));
        server::EvalCoderRequest eval;
        eval.coder = server::CoderKind::Nv;
        eval.words = {0x0102030405060708ull, 0xffffffffffffffffull};
        seeds.push_back(server::encodeFrame(MsgType::EvalCoderRequest,
                                            eval.encode()));
        server::WireError err;
        err.code = static_cast<std::uint8_t>(ErrorCode::Overloaded);
        err.message = "busy";
        seeds.push_back(
            server::encodeFrame(MsgType::ErrorResponse, err.encode()));
        // A batch: two frames back to back, like a real pipeline.
        seeds.push_back(seeds[0] + seeds[1]);
        // Regression: a single bit flip in the length field once made
        // parseFrame answer InvalidArgument, which the coordinator
        // recorded as an app verdict and quarantined the innocent job
        // (found by scenario seed 126).  Framing errors must stay in
        // the framing taxonomy.
        std::string torn = seeds[0];
        torn[8] ^= 0x01; // low byte of the little-endian length field
        torn[11] ^= 0x01; // high byte: length now far beyond the cap
        seeds.push_back(torn);
        break;
      }
      case FuzzTarget::Http:
        seeds.push_back("GET /metrics HTTP/1.0\r\n"
                        "Host: localhost\r\n"
                        "User-Agent: fuzz\r\n\r\n");
        seeds.push_back("GET / HTTP/1.1\n\n");
        seeds.push_back("GET /met"); // honest partial head
        break;
      case FuzzTarget::Trace:
        seeds.push_back(goodTraceBytes());
        break;
      case FuzzTarget::Journal:
      case FuzzTarget::Merge:
        seeds.push_back(goodJournalBytes());
        break;
      case FuzzTarget::Bytecode:
      case FuzzTarget::Opt: {
        const auto seedProg = isa::parseAsm(kSeedAsm);
        fatal_if(!seedProg.ok(), "fuzz seed kernel does not assemble: %s",
                 seedProg.error().describe().c_str());
        seeds.push_back(isa::encodeProgram(seedProg.value()));
        // A one-instruction kernel: the smallest canonical encoding.
        const auto tiny = isa::parseAsm(".kernel tiny\n.launch 1 32\n"
                                        "    EXIT\n");
        fatal_if(!tiny.ok(), "tiny fuzz seed does not assemble");
        seeds.push_back(isa::encodeProgram(tiny.value()));
        if (target == FuzzTarget::Opt) {
            // A deliberately unoptimized kernel so mutations explore
            // the accept path too: foldable constants, a copy chain,
            // identity and power-of-two strength reductions, a dead
            // write and a provably-false guarded branch.
            const auto rich = isa::parseAsm(
                ".kernel opt-seed\n.launch 2 64\n.shared 256\n"
                "    S2R R1, SR_TIDX\n"
                "    MOV R2, #5\n"
                "    IADD R3, R2, #7\n"
                "    MOV R4, R1\n"
                "    SHL R5, R4, #0\n"
                "    IMUL R6, R5, #8\n"
                "    MOV R7, #9\n"
                "    SETP.LT P1, R2, #3\n"
                "    @P1 BRA skip, join=skip\n"
                "skip:\n"
                "    SHL R8, R1, #2\n"
                "    AND R8, R8, #252\n"
                "    STS [R8 + 0], R6\n"
                "    IADD R9, R3, #0\n"
                "    STS [R8 + 0], R9\n"
                "    EXIT\n");
            fatal_if(!rich.ok(), "opt fuzz seed does not assemble: %s",
                     rich.error().describe().c_str());
            seeds.push_back(isa::encodeProgram(rich.value()));
        }
        break;
      }
      case FuzzTarget::Asm: {
        seeds.push_back(kSeedAsm);
        seeds.push_back(".kernel tiny\n.launch 1 32\n    EXIT\n");
        // Guards, comments and a data directive: the grammar's corners.
        seeds.push_back(".kernel corners\n.launch 1 32\n.global 65536\n"
                        "# comment line\n"
                        ".data global 0 0x1 0x2\n"
                        "    MOV R1, #0 // trailing comment\n"
                        "    SETP.EQ P1, R1, #0\n"
                        "    @!P1 BRA end, join=end\n"
                        "end:\n"
                        "    EXIT\n");
        break;
      }
      case FuzzTarget::Rtl: {
        // Real emitted netlists: combinational coders of different
        // shapes, plus a hand-built sequential module so the DFF
        // grammar (always-block, reg declarations, clk synthesis)
        // gets mutated too.
        seeds.push_back(rtl::emitVerilog(rtl::nvCoderNetlist()));
        seeds.push_back(rtl::emitVerilog(rtl::vsCoderNetlist(4, 1)));
        seeds.push_back(rtl::emitVerilog(
            rtl::isaCoderNetlist(0x123456789abcdef0ull)));
        seeds.push_back(
            rtl::emitVerilog(rtl::secdedEncoderNetlist()));
        rtl::Module seq("fuzz_seq");
        const auto d = seq.addInput("d", 2);
        const rtl::NetId q0 = seq.mkDff(d[0]);
        const rtl::NetId q1 =
            seq.mkDff(seq.mkMux(d[1], q0, seq.mkConst(true)));
        const std::array<rtl::NetId, 2> qs = {q0, q1};
        seq.addOutput("q", qs);
        seeds.push_back(rtl::emitVerilog(seq));
        break;
      }
      case FuzzTarget::RtlVec: {
        // One seed per netlist selector, with non-trivial payloads.
        const auto packed = [](unsigned char sel,
                               std::initializer_list<unsigned char> tail) {
            std::string s(1, static_cast<char>(sel));
            for (const unsigned char b : tail)
                s.push_back(static_cast<char>(b));
            return s;
        };
        seeds.push_back(packed(0, {0xef, 0xbe, 0xad, 0xde}));
        seeds.push_back(packed(1, {2, 0, 0, 0, // pivot word
                                   1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                   12, 13, 14, 15, 16}));
        seeds.push_back(packed(2, {0x21, 0x43, 0x65, 0x87, 0xa9, 0xcb,
                                   0xed, 0x0f, // mask
                                   1, 0, 0, 0, 0, 0, 0, 0x80}));
        seeds.push_back(packed(3, {0xff, 0xff, 0, 0, 0, 0, 0, 0}));
        seeds.push_back(packed(4, {0xaa, 0x55, 0xaa, 0x55, 0, 0, 0, 0,
                                   0x5a})); // data + check bits
        break;
      }
    }
    return seeds;
}

Result<void>
checkFuzzInput(FuzzTarget target, const std::string &bytes,
               const std::string &scratchDir)
{
    switch (target) {
      case FuzzTarget::Frame:
        return checkFrame(bytes);
      case FuzzTarget::Http:
        return checkHttp(bytes);
      case FuzzTarget::Trace:
        return checkTrace(bytes);
      case FuzzTarget::Journal:
        return checkJournal(bytes);
      case FuzzTarget::Merge:
        return checkMerge(bytes, scratchDir);
      case FuzzTarget::Bytecode:
        return checkBytecode(bytes);
      case FuzzTarget::Asm:
        return checkAsm(bytes);
      case FuzzTarget::Rtl:
        return checkRtl(bytes);
      case FuzzTarget::RtlVec:
        return checkRtlVec(bytes);
      case FuzzTarget::Opt:
        return checkOpt(bytes);
    }
    return Error{ErrorCode::InvalidArgument, "bad fuzz target"};
}

Result<FuzzReport>
runFuzz(FuzzTarget target, std::uint64_t seed, std::uint64_t iterations,
        const std::string &scratchDir)
{
    if (scratchDir.empty()) {
        return Error{ErrorCode::InvalidArgument,
                     "fuzzing needs a scratch directory"};
    }
    std::error_code ec;
    fs::create_directories(scratchDir, ec);

    const std::vector<std::string> seeds = corpusSeeds(target);
    Rng rng(seed ? seed : 1);
    FuzzReport report;
    for (std::uint64_t i = 0; i < iterations; ++i) {
        const std::string &base = seeds[rng.nextBounded(seeds.size())];
        const std::string input = mutate(base, rng);
        ++report.iterations;
        auto checked = checkFuzzInput(target, input, scratchDir);
        if (checked.ok())
            continue;
        report.failed = true;
        report.what = checked.error().message;
        report.failingPath = strFormat(
            "%s/failing-%s-seed%llu-iter%llu.bin", scratchDir.c_str(),
            fuzzTargetName(target).c_str(),
            static_cast<unsigned long long>(seed),
            static_cast<unsigned long long>(i));
        std::ofstream f(report.failingPath,
                        std::ios::binary | std::ios::trunc);
        f.write(input.data(),
                static_cast<std::streamsize>(input.size()));
        return report;
    }
    return report;
}

Result<FuzzReport>
replayCorpusDir(FuzzTarget target, const std::string &dir,
                const std::string &scratchDir)
{
    FuzzReport report;
    if (!fs::is_directory(dir))
        return report; // no corpus yet: vacuous success
    std::vector<std::string> paths;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file())
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string &path : paths) {
        auto bytes = readFileBytes(path);
        if (!bytes.ok())
            return bytes.error();
        ++report.iterations;
        auto checked = checkFuzzInput(target, bytes.value(), scratchDir);
        if (!checked.ok()) {
            report.failed = true;
            report.what = checked.error().message;
            report.failingPath = path;
            return report;
        }
    }
    return report;
}

} // namespace bvf::sim
