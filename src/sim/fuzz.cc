/**
 * @file
 * Fuzz driver implementation.
 */

#include "sim/fuzz.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/verifier.hh"
#include "campaign/journal.hh"
#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/trace.hh"
#include "fleet/merge.hh"
#include "isa/asm.hh"
#include "isa/bytecode.hh"
#include "server/http.hh"
#include "server/protocol.hh"
#include "sram/access_sink.hh"
#include "workload/app_spec.hh"

namespace bvf::sim
{

namespace fs = std::filesystem;

namespace
{

/** Config digest every journal/merge fuzz input is framed under. */
constexpr std::uint32_t kFuzzDigest = 0x42f0f0f0u;

std::string
fail(const char *what)
{
    return what;
}

// --- Mutation engine --------------------------------------------------

std::string
mutate(std::string bytes, Rng &rng)
{
    const int edits = 1 + static_cast<int>(rng.nextBounded(4));
    for (int e = 0; e < edits; ++e) {
        switch (rng.nextBounded(6)) {
          case 0: // bit flip
            if (!bytes.empty()) {
                const std::size_t at = rng.nextBounded(bytes.size());
                bytes[at] = static_cast<char>(
                    static_cast<unsigned char>(bytes[at])
                    ^ static_cast<unsigned char>(
                        1u << rng.nextBounded(8)));
            }
            break;
          case 1: // byte smash
            if (!bytes.empty()) {
                bytes[rng.nextBounded(bytes.size())] =
                    static_cast<char>(rng.nextBounded(256));
            }
            break;
          case 2: // insert
            bytes.insert(bytes.begin()
                             + static_cast<std::ptrdiff_t>(
                                 rng.nextBounded(bytes.size() + 1)),
                         static_cast<char>(rng.nextBounded(256)));
            break;
          case 3: // erase
            if (!bytes.empty())
                bytes.erase(rng.nextBounded(bytes.size()), 1);
            break;
          case 4: // truncate
            if (!bytes.empty())
                bytes.resize(rng.nextBounded(bytes.size()));
            break;
          default: { // append junk
            const std::size_t n = 1 + rng.nextBounded(16);
            for (std::size_t i = 0; i < n; ++i)
                bytes.push_back(static_cast<char>(rng.nextBounded(256)));
            break;
          }
        }
    }
    return bytes;
}

// --- Per-target seed corpora and invariant checks ---------------------

campaign::AppResult
sampleResult(const std::string &name, const std::string &abbr,
             bool quarantined)
{
    campaign::AppResult r;
    r.name = name;
    r.abbr = abbr;
    if (quarantined) {
        r.status = campaign::AppStatus::Quarantined;
        r.attempts = 2;
        r.error = Error{ErrorCode::Failed, "fuzz: seeded failure"};
        return r;
    }
    r.status = campaign::AppStatus::Completed;
    r.attempts = 1;
    r.cycles = 12345;
    r.instructions = 67890;
    for (std::size_t i = 0; i < r.chipEnergy.size(); ++i) {
        r.chipEnergy[i] = 1e-3 / static_cast<double>(i + 1);
        r.bvfUnitsEnergy[i] = 1e-4 / static_cast<double>(i + 1);
    }
    return r;
}

std::vector<workload::AppSpec>
mergeApps()
{
    workload::AppSpec a;
    a.name = "alpha";
    a.abbr = "AAA";
    workload::AppSpec b;
    b.name = "beta";
    b.abbr = "BBB";
    return {a, b};
}

std::string
goodJournalBytes()
{
    std::vector<campaign::AppResult> results;
    results.push_back(sampleResult("alpha", "AAA", false));
    results.push_back(sampleResult("beta", "BBB", true));
    return campaign::serializeJournal(kFuzzDigest, results);
}

std::string
goodTraceBytes()
{
    std::ostringstream out;
    core::TraceWriter writer(out);
    const std::array<Word, 4> block = {0x1u, 0xffffffffu, 0x0u,
                                       0xdeadbeefu};
    const std::array<Word64, 2> instrs = {0x123456789abcdef0ull,
                                          0x0fedcba987654321ull};
    writer.onAccess(coder::UnitId::Reg, sram::AccessType::Write, block,
                    0xfu, 10);
    writer.onAccess(coder::UnitId::Sme, sram::AccessType::Read, block,
                    0x3u, 11);
    writer.onFetch(coder::UnitId::Reg, sram::AccessType::Read, instrs,
                   12);
    writer.onNocPacket(1, block, false, 13);
    (void)writer.finish();
    return out.str();
}

Result<void>
checkFrame(const std::string &bytes)
{
    std::string_view rest = bytes;
    for (int i = 0; i < 1000 && !rest.empty(); ++i) {
        std::size_t consumed = 0;
        auto parsed = server::parseFrame(rest, consumed);
        if (!parsed.ok()) {
            // Truncated = feed more; anything else kills the stream.
            // Either way the error must stay inside the framing
            // taxonomy: the fleet coordinator retries framing damage on
            // another worker but records any other code as an
            // application verdict, so a mutated frame that fails with
            // e.g. InvalidArgument would convict the job it hit.
            const ErrorCode code = parsed.error().code;
            if (code != ErrorCode::Corrupt && code != ErrorCode::Truncated
                && code != ErrorCode::Unsupported) {
                return Error{ErrorCode::Failed,
                             fail("parseFrame error escaped the framing "
                                  "taxonomy")};
            }
            return {};
        }
        if (consumed == 0 || consumed > rest.size()) {
            return Error{ErrorCode::Failed,
                         fail("parseFrame consumed out of bounds")};
        }
        if (parsed.value().payload.size() > server::kMaxPayload) {
            return Error{ErrorCode::Failed,
                         fail("parseFrame exceeded kMaxPayload")};
        }
        rest.remove_prefix(consumed);
    }
    return {};
}

Result<void>
checkHttp(const std::string &bytes)
{
    const server::HttpScanResult scan = server::scanHttpHead(bytes);
    switch (scan.state) {
      case server::HttpScan::NeedMore:
      case server::HttpScan::NotHttp:
      case server::HttpScan::RequestLineTooLong:
      case server::HttpScan::HeadTooLong:
        return {};
      case server::HttpScan::Complete:
        break;
      default:
        return Error{ErrorCode::Failed,
                     fail("scanHttpHead returned a bogus state")};
    }
    if (scan.headBytes == 0 || scan.headBytes > bytes.size()
        || scan.headBytes > server::kMaxHttpHead) {
        return Error{ErrorCode::Failed,
                     fail("scanHttpHead headBytes out of bounds")};
    }
    // A complete head must stay complete (and identical) when scanned
    // alone: the scanner is stateless and prefix-stable.
    const auto again =
        server::scanHttpHead(bytes.substr(0, scan.headBytes));
    if (again.state != server::HttpScan::Complete
        || again.headBytes != scan.headBytes) {
        return Error{ErrorCode::Failed,
                     fail("scanHttpHead is not prefix-stable")};
    }
    return {};
}

Result<void>
checkTrace(const std::string &bytes)
{
    sram::NullSink sink;
    std::istringstream strictIn(bytes);
    auto strict = core::replayTrace(strictIn, sink, {});
    std::istringstream salvageIn(bytes);
    auto salvage =
        core::replayTrace(salvageIn, sink, core::ReplayOptions{true});
    if (strict.ok()) {
        if (!salvage.ok()) {
            return Error{
                ErrorCode::Failed,
                fail("salvage failed where strict replay succeeded")};
        }
        if (salvage.value().records != strict.value().records) {
            return Error{
                ErrorCode::Failed,
                fail("salvage record count diverged from strict")};
        }
    }
    if (salvage.ok()) {
        // Salvage must be deterministic: same bytes, same summary.
        std::istringstream againIn(bytes);
        auto again =
            core::replayTrace(againIn, sink, core::ReplayOptions{true});
        if (!again.ok()
            || again.value().records != salvage.value().records
            || again.value().batches != salvage.value().batches
            || again.value().salvaged != salvage.value().salvaged) {
            return Error{ErrorCode::Failed,
                         fail("trace salvage is nondeterministic")};
        }
    }
    return {};
}

Result<void>
checkJournal(const std::string &bytes)
{
    auto parsed = campaign::parseJournal(bytes, kFuzzDigest);
    if (!parsed.ok())
        return {}; // structured refusal is a correct outcome
    if (parsed.value().results.size() > bytes.size()) {
        // Every record costs at least its framing bytes; more results
        // than input bytes means a count ran away.
        return Error{ErrorCode::Failed,
                     fail("parseJournal produced impossible count")};
    }
    if (parsed.value().salvaged && parsed.value().warning.empty()) {
        return Error{ErrorCode::Failed,
                     fail("silent salvage: damage not described")};
    }
    // What was accepted must round-trip cleanly: serialize the
    // accepted records and reparse -- bit-identical, no salvage.
    const std::string again =
        campaign::serializeJournal(kFuzzDigest, parsed.value().results);
    auto reparsed = campaign::parseJournal(again, kFuzzDigest);
    if (!reparsed.ok() || reparsed.value().salvaged
        || reparsed.value().results.size()
               != parsed.value().results.size()) {
        return Error{ErrorCode::Failed,
                     fail("accepted journal does not round-trip")};
    }
    if (campaign::serializeJournal(kFuzzDigest,
                                   reparsed.value().results)
        != again) {
        return Error{ErrorCode::Failed,
                     fail("journal round-trip is not bit-stable")};
    }
    return {};
}

Result<void>
checkMerge(const std::string &bytes, const std::string &scratchDir)
{
    const std::string dir = scratchDir + "/merge-stage";
    std::error_code ec;
    fs::create_directories(dir, ec);
    const std::string hostile = dir + "/shard-hostile.bvfj";
    const std::string good = dir + "/shard-good.bvfj";
    {
        std::ofstream f(hostile, std::ios::binary | std::ios::trunc);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
    }
    {
        const std::string goodBytes = goodJournalBytes();
        std::ofstream f(good, std::ios::binary | std::ios::trunc);
        f.write(goodBytes.data(),
                static_cast<std::streamsize>(goodBytes.size()));
    }
    const auto apps = mergeApps();
    const std::vector<std::string> shards = {hostile, good};
    auto merged = fleet::mergeShardJournals(shards, kFuzzDigest, apps);
    if (!merged.ok())
        return {}; // clean refusal of a hostile shard is correct
    const auto &results = merged.value().report.results;
    if (results.size() != apps.size()) {
        return Error{ErrorCode::Failed,
                     fail("merge accepted wrong app count")};
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].abbr != apps[i].abbr) {
            return Error{ErrorCode::Failed,
                         fail("merge broke campaign ordering")};
        }
    }
    return {};
}

/**
 * Small, terminating kernel text used to seed both kernel targets.
 * Shared-memory only, so it stays admissible without a data image.
 */
const char *const kSeedAsm = ".kernel fuzz-seed\n"
                             ".launch 2 64\n"
                             ".shared 256\n"
                             "\n"
                             "    S2R R1, SR_TIDX\n"
                             "    MOV R2, #0\n"
                             "    SHL R3, R1, #2\n"
                             "    AND R3, R3, #252\n"
                             "L4:\n"
                             "    STS [R3 + 0], R2\n"
                             "    LDS R4, [R3 + 0]\n"
                             "    IADD R2, R2, #1\n"
                             "    SETP.LT P1, R2, #4\n"
                             "    @P1 BRA L4, join=L9\n"
                             "L9:\n"
                             "    EXIT\n";

/** Verifier budget for fuzz totality checks: small but non-trivial. */
analysis::VerifyOptions
fuzzVerifyOptions()
{
    analysis::VerifyOptions opts;
    opts.stepBudget = 1u << 14;
    return opts;
}

Result<void>
checkBytecode(const std::string &bytes)
{
    auto decoded = isa::decodeProgram(bytes);
    if (!decoded.ok())
        return {}; // structured refusal is a correct outcome
    // Strict decoding admits only canonical encodings, so acceptance
    // must re-encode byte-identically -- otherwise two distinct wire
    // forms alias one program and content digests stop being stable.
    if (isa::encodeProgram(decoded.value()) != bytes) {
        return Error{ErrorCode::Failed,
                     fail("accepted bytecode does not re-encode "
                          "byte-identically")};
    }
    // The admission verifier must be total over everything the decoder
    // accepts: any verdict is fine, crashing or fatal()ing is not.
    (void)analysis::verifyProgram(decoded.value(), fuzzVerifyOptions());
    return {};
}

Result<void>
checkAsm(const std::string &text)
{
    auto parsed = isa::parseAsm(text);
    if (!parsed.ok())
        return {}; // structured refusal is a correct outcome
    // parseAsm(renderAsm(p)) == p for every program parseAsm produces;
    // compare through the bytecode encoder, which is injective on
    // canonical programs.
    const std::string rendered = isa::renderAsm(parsed.value());
    auto again = isa::parseAsm(rendered);
    if (!again.ok()) {
        return Error{ErrorCode::Failed,
                     fail("rendered assembly does not reparse")};
    }
    if (isa::encodeProgram(again.value())
        != isa::encodeProgram(parsed.value())) {
        return Error{ErrorCode::Failed,
                     fail("assembly round trip changed the program")};
    }
    (void)analysis::verifyProgram(parsed.value(), fuzzVerifyOptions());
    return {};
}

} // namespace

std::string
fuzzTargetName(FuzzTarget target)
{
    switch (target) {
      case FuzzTarget::Frame:
        return "frame";
      case FuzzTarget::Http:
        return "http";
      case FuzzTarget::Trace:
        return "trace";
      case FuzzTarget::Journal:
        return "journal";
      case FuzzTarget::Merge:
        return "merge";
      case FuzzTarget::Bytecode:
        return "bytecode";
      case FuzzTarget::Asm:
        return "asm";
    }
    return "?";
}

Result<FuzzTarget>
fuzzTargetFromName(const std::string &name)
{
    for (const FuzzTarget t : kAllFuzzTargets) {
        if (fuzzTargetName(t) == name)
            return t;
    }
    return Error{ErrorCode::InvalidArgument,
                 strFormat("unknown fuzz target '%s' (want frame, "
                           "http, trace, journal, merge, bytecode or "
                           "asm)",
                           name.c_str())};
}

std::vector<std::string>
corpusSeeds(FuzzTarget target)
{
    using server::MsgType;
    std::vector<std::string> seeds;
    switch (target) {
      case FuzzTarget::Frame: {
        server::Ping ping;
        ping.nonce = 7;
        seeds.push_back(
            server::encodeFrame(MsgType::PingRequest, ping.encode()));
        server::ChipEnergyRequest energy;
        energy.query.abbr = "KMN";
        seeds.push_back(server::encodeFrame(MsgType::ChipEnergyRequest,
                                            energy.encode()));
        server::EvalCoderRequest eval;
        eval.coder = server::CoderKind::Nv;
        eval.words = {0x0102030405060708ull, 0xffffffffffffffffull};
        seeds.push_back(server::encodeFrame(MsgType::EvalCoderRequest,
                                            eval.encode()));
        server::WireError err;
        err.code = static_cast<std::uint8_t>(ErrorCode::Overloaded);
        err.message = "busy";
        seeds.push_back(
            server::encodeFrame(MsgType::ErrorResponse, err.encode()));
        // A batch: two frames back to back, like a real pipeline.
        seeds.push_back(seeds[0] + seeds[1]);
        // Regression: a single bit flip in the length field once made
        // parseFrame answer InvalidArgument, which the coordinator
        // recorded as an app verdict and quarantined the innocent job
        // (found by scenario seed 126).  Framing errors must stay in
        // the framing taxonomy.
        std::string torn = seeds[0];
        torn[8] ^= 0x01; // low byte of the little-endian length field
        torn[11] ^= 0x01; // high byte: length now far beyond the cap
        seeds.push_back(torn);
        break;
      }
      case FuzzTarget::Http:
        seeds.push_back("GET /metrics HTTP/1.0\r\n"
                        "Host: localhost\r\n"
                        "User-Agent: fuzz\r\n\r\n");
        seeds.push_back("GET / HTTP/1.1\n\n");
        seeds.push_back("GET /met"); // honest partial head
        break;
      case FuzzTarget::Trace:
        seeds.push_back(goodTraceBytes());
        break;
      case FuzzTarget::Journal:
      case FuzzTarget::Merge:
        seeds.push_back(goodJournalBytes());
        break;
      case FuzzTarget::Bytecode: {
        const auto seedProg = isa::parseAsm(kSeedAsm);
        fatal_if(!seedProg.ok(), "fuzz seed kernel does not assemble: %s",
                 seedProg.error().describe().c_str());
        seeds.push_back(isa::encodeProgram(seedProg.value()));
        // A one-instruction kernel: the smallest canonical encoding.
        const auto tiny = isa::parseAsm(".kernel tiny\n.launch 1 32\n"
                                        "    EXIT\n");
        fatal_if(!tiny.ok(), "tiny fuzz seed does not assemble");
        seeds.push_back(isa::encodeProgram(tiny.value()));
        break;
      }
      case FuzzTarget::Asm: {
        seeds.push_back(kSeedAsm);
        seeds.push_back(".kernel tiny\n.launch 1 32\n    EXIT\n");
        // Guards, comments and a data directive: the grammar's corners.
        seeds.push_back(".kernel corners\n.launch 1 32\n.global 65536\n"
                        "# comment line\n"
                        ".data global 0 0x1 0x2\n"
                        "    MOV R1, #0 // trailing comment\n"
                        "    SETP.EQ P1, R1, #0\n"
                        "    @!P1 BRA end, join=end\n"
                        "end:\n"
                        "    EXIT\n");
        break;
      }
    }
    return seeds;
}

Result<void>
checkFuzzInput(FuzzTarget target, const std::string &bytes,
               const std::string &scratchDir)
{
    switch (target) {
      case FuzzTarget::Frame:
        return checkFrame(bytes);
      case FuzzTarget::Http:
        return checkHttp(bytes);
      case FuzzTarget::Trace:
        return checkTrace(bytes);
      case FuzzTarget::Journal:
        return checkJournal(bytes);
      case FuzzTarget::Merge:
        return checkMerge(bytes, scratchDir);
      case FuzzTarget::Bytecode:
        return checkBytecode(bytes);
      case FuzzTarget::Asm:
        return checkAsm(bytes);
    }
    return Error{ErrorCode::InvalidArgument, "bad fuzz target"};
}

Result<FuzzReport>
runFuzz(FuzzTarget target, std::uint64_t seed, std::uint64_t iterations,
        const std::string &scratchDir)
{
    if (scratchDir.empty()) {
        return Error{ErrorCode::InvalidArgument,
                     "fuzzing needs a scratch directory"};
    }
    std::error_code ec;
    fs::create_directories(scratchDir, ec);

    const std::vector<std::string> seeds = corpusSeeds(target);
    Rng rng(seed ? seed : 1);
    FuzzReport report;
    for (std::uint64_t i = 0; i < iterations; ++i) {
        const std::string &base = seeds[rng.nextBounded(seeds.size())];
        const std::string input = mutate(base, rng);
        ++report.iterations;
        auto checked = checkFuzzInput(target, input, scratchDir);
        if (checked.ok())
            continue;
        report.failed = true;
        report.what = checked.error().message;
        report.failingPath = strFormat(
            "%s/failing-%s-seed%llu-iter%llu.bin", scratchDir.c_str(),
            fuzzTargetName(target).c_str(),
            static_cast<unsigned long long>(seed),
            static_cast<unsigned long long>(i));
        std::ofstream f(report.failingPath,
                        std::ios::binary | std::ios::trunc);
        f.write(input.data(),
                static_cast<std::streamsize>(input.size()));
        return report;
    }
    return report;
}

Result<FuzzReport>
replayCorpusDir(FuzzTarget target, const std::string &dir,
                const std::string &scratchDir)
{
    FuzzReport report;
    if (!fs::is_directory(dir))
        return report; // no corpus yet: vacuous success
    std::vector<std::string> paths;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file())
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string &path : paths) {
        auto bytes = readFileBytes(path);
        if (!bytes.ok())
            return bytes.error();
        ++report.iterations;
        auto checked = checkFuzzInput(target, bytes.value(), scratchDir);
        if (!checked.ok()) {
            report.failed = true;
            report.what = checked.error().message;
            report.failingPath = path;
            return report;
        }
    }
    return report;
}

} // namespace bvf::sim
