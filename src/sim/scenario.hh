/**
 * @file
 * Seeded end-to-end fault scenarios for the fleet.
 *
 * One scenario = one full distributed campaign (coordinator + N
 * simulated workers + shard journals + merge) executed in a single
 * thread on simulated time, while a seeded fault schedule drops,
 * delays, corrupts and duplicates wire messages, kills and restarts
 * workers, and tears or fails journal writes. The property under test
 * is the robustness contract of the whole stack:
 *
 *  - every run either produces the byte-identical report a fault-free
 *    ("serial") run of the same configuration produces, or fails
 *    cleanly with an error from the existing taxonomy;
 *  - it never hangs (a simulated-time/op watchdog turns livelock into
 *    a visible violation);
 *  - it never double-counts a job replayed across a failover;
 *  - it never accepts a corrupt journal as truth.
 *
 * Everything is a deterministic function of ScenarioOptions::seed, so
 * a sweep failure is reproduced exactly with
 * `bvf_simsweep --sim-seed N`.
 */

#ifndef BVF_SIM_SCENARIO_HH
#define BVF_SIM_SCENARIO_HH

#include <cstdint>
#include <string>

#include "common/result.hh"

namespace bvf::sim
{

/** Knobs for one scenario run. */
struct ScenarioOptions
{
    std::uint64_t seed = 1;

    /** Scratch directory for journals/reports (required; reused). */
    std::string scratchDir;

    /**
     * Fault phases before the final quiet phase; each phase is one
     * campaign attempt (resume=true after the first). 0 draws 1-3
     * from the seed.
     */
    int maxPhases = 0;
};

/** What one scenario run observed. */
struct ScenarioResult
{
    bool ok = false;          //!< contract held (identical or clean)
    bool identical = false;   //!< produced the byte-identical report
    bool cleanFailure = false; //!< failed with a taxonomy error
    std::string violation;    //!< non-empty = the contract was broken
    int phases = 0;           //!< campaign attempts made
    int kills = 0;            //!< worker crashes injected
    std::uint64_t transportOps = 0;
};

/**
 * Run the scenario for @p options.seed. Returns an error only for
 * harness-level problems (unusable scratch dir); contract violations
 * are reported in ScenarioResult::violation so sweeps can print the
 * failing seed and keep counting.
 */
Result<ScenarioResult> runScenario(const ScenarioOptions &options);

} // namespace bvf::sim

#endif // BVF_SIM_SCENARIO_HH
