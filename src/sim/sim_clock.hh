/**
 * @file
 * Simulated time for the fault-simulation harness.
 *
 * SimClock is a bvf::Clock whose now() only moves when someone asks it
 * to: sleepFor() *advances* the clock instead of blocking, so a whole
 * fleet run -- deadlines, breaker cooldowns, retry backoff -- executes
 * in microseconds of real time while experiencing seconds of simulated
 * time. Events (a worker restart, a scheduled fault) are registered
 * with schedule() and fire, in time order, from inside advance() as
 * the clock sweeps past their due time.
 *
 * Single-threaded by design: the scenario runner drives coordinator,
 * workers and campaign from one thread, so every advance() is a
 * deterministic function of the call sequence. Determinism is the
 * entire point -- the same seed must replay the same run byte for
 * byte.
 */

#ifndef BVF_SIM_SIM_CLOCK_HH
#define BVF_SIM_SIM_CLOCK_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>

#include "common/clock.hh"

namespace bvf::sim
{

/** Deterministic, manually advanced clock with scheduled events. */
class SimClock final : public Clock
{
  public:
    SimClock() = default;

    time_point now() override { return now_; }

    /** Advance simulated time (fires due events); never blocks. */
    void sleepFor(std::chrono::milliseconds duration) override
    {
        advance(duration);
    }

    /**
     * Move the clock forward by @p duration, firing every event whose
     * due time is reached, in time order. An event may schedule
     * further events (even at already-passed times: they fire within
     * this same advance). now() reads the event's due time while it
     * runs, so code the event calls sees consistent time.
     */
    void advance(std::chrono::milliseconds duration);

    /**
     * Run @p fn when the clock reaches @p at (measured from the
     * epoch, i.e. a default-constructed time_point). An @p at in the
     * past fires on the next advance(), however short.
     */
    void schedule(std::chrono::milliseconds at, std::function<void()> fn);

    /** Milliseconds since the epoch. */
    std::chrono::milliseconds elapsed() const
    {
        return std::chrono::duration_cast<std::chrono::milliseconds>(
            now_ - time_point{});
    }

  private:
    time_point now_{};
    std::multimap<time_point, std::function<void()>> events_;
};

} // namespace bvf::sim

#endif // BVF_SIM_SIM_CLOCK_HH
