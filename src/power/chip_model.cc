/**
 * @file
 * Chip power model implementation.
 */

#include "power/chip_model.hh"

#include "common/logging.hh"
#include "common/units.hh"
#include "power/overhead.hh"

namespace bvf::power
{

using coder::UnitId;

NonSramEnergies
NonSramEnergies::forNode(circuit::TechNode node)
{
    // Per-event energies at nominal 1.2V. Values are in the GPUWattch
    // range for the Table 3 machine and calibrated so BVF-coverable
    // units carry ~48% of baseline chip energy on the suite average.
    // Per *warp-level* event (32 lanes): an FP instruction fires 32 FPUs.
    if (node == circuit::TechNode::N28) {
        return NonSramEnergies{
            .fpOp = pico(105.0),
            .intOp = pico(40.0),
            .issueOverhead = pico(30.0),
            .loadStoreUnit = pico(18.0),
            .mcRequest = pico(22.0),
            .nocPerToggle = femto(150.0),
            .nocPerFlit = pico(1.1),
            .otherLeakage = milli(26.0),
        };
    }
    return NonSramEnergies{
        .fpOp = pico(148.0),
        .intOp = pico(58.0),
        .issueOverhead = pico(40.0),
        .loadStoreUnit = pico(26.0),
        .mcRequest = pico(32.0),
        .nocPerToggle = femto(215.0),
        .nocPerFlit = pico(1.6),
        .otherLeakage = milli(38.0),
    };
}

NonSramEnergies
NonSramEnergies::scaledTo(double vdd) const
{
    const double r = (vdd / 1.2) * (vdd / 1.2);
    NonSramEnergies e = *this;
    e.fpOp *= r;
    e.intOp *= r;
    e.issueOverhead *= r;
    e.loadStoreUnit *= r;
    e.mcRequest *= r;
    e.nocPerToggle *= r;
    e.nocPerFlit *= r;
    // Leakage shrinks superlinearly with voltage.
    const double v = vdd / 1.2;
    e.otherLeakage *= v * v * v;
    return e;
}

double
ChipEnergy::bvfUnitsTotal() const
{
    double total = nocDynamic;
    for (const auto &[unit, e] : units)
        total += e.total();
    return total;
}

double
ChipEnergy::chipTotal() const
{
    return bvfUnitsTotal() + computeDynamic + otherDynamic + otherLeakage
           + coderOverhead;
}

ChipPowerModel::ChipPowerModel(circuit::TechNode node, double vdd,
                               double frequency,
                               circuit::CellKind cellKind,
                               const gpu::GpuConfig &config,
                               const ChipModelOptions &options)
    : node_(node), vdd_(vdd), frequency_(frequency), cellKind_(cellKind),
      options_(options), config_(config),
      energies_(NonSramEnergies::forNode(node).scaledTo(vdd))
{
    fatal_if(options.cellsPerBitline < 1,
             "cellsPerBitline must be positive, got %d",
             options.cellsPerBitline);
    const auto &tech = circuit::techParams(node);
    const auto sms = static_cast<std::uint64_t>(config.numSms);

    capacities_[UnitId::Reg] = sms * config.regFileBytes * 8;
    capacities_[UnitId::Sme] = sms * config.sharedMemBytes * 8;
    capacities_[UnitId::L1D] = sms * config.l1dBytes * 8;
    capacities_[UnitId::L1I] = sms * config.l1iBytes * 8;
    capacities_[UnitId::L1C] = sms * config.l1cBytes * 8;
    capacities_[UnitId::L1T] = sms * config.l1tBytes * 8;
    // IFB: one fetch group (64B) per warp slot.
    capacities_[UnitId::Ifb] =
        sms * static_cast<std::uint64_t>(config.maxWarpsPerSm) * 64 * 8;
    capacities_[UnitId::L2] =
        static_cast<std::uint64_t>(config.l2TotalBytes()) * 8;

    if (options_.ecc) {
        // SECDED(72,64): 8 check bits ride along with every 64 data
        // bits, so each array physically holds 9/8 of its data capacity
        // (and leaks accordingly).
        for (auto &[unit, bits] : capacities_)
            bits = bits * 9 / 8;
    }

    for (const auto &[unit, bits] : capacities_) {
        circuit::ArrayGeometry geom;
        geom.blockBytes = unit == UnitId::Reg ? 128
                                              : static_cast<int>(
                                                  config.lineBytes);
        geom.sets = static_cast<int>(
            bits / (static_cast<std::uint64_t>(geom.blockBytes) * 8));
        if (geom.sets < 1)
            geom.sets = 1;
        geom.cellsPerBitline = options_.cellsPerBitline;
        geom.allowUnreliable = options_.allowUnreliableCells;
        arrays_[unit] = std::make_unique<circuit::ArrayModel>(
            cellKind, tech, vdd, geom);
    }
}

std::uint64_t
ChipPowerModel::unitCapacityBits(UnitId unit) const
{
    auto it = capacities_.find(unit);
    panic_if(it == capacities_.end(), "no capacity for unit %s",
             coder::unitName(unit).c_str());
    return it->second;
}

const circuit::ArrayModel &
ChipPowerModel::unitArray(UnitId unit) const
{
    auto it = arrays_.find(unit);
    panic_if(it == arrays_.end(), "no array model for unit %s",
             coder::unitName(unit).c_str());
    return *it->second;
}

ChipEnergy
ChipPowerModel::evaluate(
    const std::map<UnitId, sram::UnitScenarioStats> &unitStats,
    std::uint64_t nocToggles, std::uint64_t nocFlits,
    const gpu::GpuStats &gpuStats, bool applyCoderOverhead) const
{
    ChipEnergy out;
    const double seconds =
        static_cast<double>(gpuStats.cycles) / frequency_;

    for (const auto &[unit, stats] : unitStats) {
        auto array_it = arrays_.find(unit);
        if (array_it == arrays_.end())
            continue; // NoC has no storage array
        out.units[unit] = sram::evaluateUnitEnergy(
            stats, *array_it->second, unitCapacityBits(unit),
            gpuStats.cycles, 1.0 / frequency_);
    }

    out.nocDynamic =
        static_cast<double>(nocToggles) * energies_.nocPerToggle
        + static_cast<double>(nocFlits) * energies_.nocPerFlit;

    out.computeDynamic =
        static_cast<double>(gpuStats.sm.fpOps) * energies_.fpOp
        + static_cast<double>(gpuStats.sm.intOps) * energies_.intOp;
    out.otherDynamic =
        static_cast<double>(gpuStats.sm.issued) * energies_.issueOverhead
        + static_cast<double>(gpuStats.sm.loads + gpuStats.sm.stores)
              * energies_.loadStoreUnit
        + static_cast<double>(gpuStats.dramRowHits
                              + gpuStats.dramRowMisses)
              * energies_.mcRequest;
    out.otherLeakage = energies_.otherLeakage * seconds;

    if (applyCoderOverhead) {
        const CoderOverhead oh = coderOverheadForNode(node_);
        // Dynamic: one XNOR evaluation per coded bit crossing a BVF
        // port; static: the full gate inventory leaks for the run.
        std::uint64_t coded_bits = 0;
        for (const auto &[unit, stats] : unitStats)
            coded_bits += stats.reads.bits() + stats.writes.bits();
        // Per-gate switching energy: published dynamic power at 700MHz
        // with every gate toggling each cycle.
        const double per_gate =
            oh.dynamicPower / static_cast<double>(oh.xnorGates) / 700.0e6;
        out.coderOverhead =
            static_cast<double>(coded_bits) * per_gate
                * (vdd_ * vdd_) / (1.2 * 1.2)
            + oh.staticPower * seconds;
    }
    return out;
}

} // namespace bvf::power
