/**
 * @file
 * Coder overhead accounting.
 */

#include "power/overhead.hh"

#include "coder/gate_model.hh"
#include "common/logging.hh"
#include "common/units.hh"

namespace bvf::power
{

namespace
{

/** Per-XNOR-gate figures by node (PDK-derived stand-ins). */
struct GateFigures
{
    double area;         //!< layout area incl. wiring share [m^2]
    double dynamicPower; //!< [W] toggling every cycle at 700MHz, 1.2V
    double staticPower;  //!< [W]
};

GateFigures
gateFigures(circuit::TechNode node)
{
    // Chosen so that the paper's 133,920-gate machine lands on its
    // published totals: 0.207/0.294 mm^2, 46.5/60.5 mW dynamic and
    // 18.7/24.2 uW static for 28nm/40nm.
    const auto paperGates = static_cast<double>(
        coder::gate_model::kPaperXnorGateTotal);
    if (node == circuit::TechNode::N28) {
        return GateFigures{
            .area = 0.207e-6 / paperGates,
            .dynamicPower = 46.5e-3 / paperGates,
            .staticPower = 18.7e-6 / paperGates,
        };
    }
    return GateFigures{
        .area = 0.294e-6 / paperGates,
        .dynamicPower = 60.5e-3 / paperGates,
        .staticPower = 24.2e-6 / paperGates,
    };
}

} // namespace

CoderOverhead
coderOverhead(const gpu::GpuConfig &config, circuit::TechNode node)
{
    // The shared analytic inventory: port counts times per-instance
    // gate constants (rtl/stats.cc cross-checks the same numbers
    // against the generated netlists).
    const std::uint64_t gates =
        coder::gate_model::analyticXnorInventory(config.numSms,
                                                 config.l2Banks,
                                                 config.lineBytes)
            .total();

    const GateFigures fig = gateFigures(node);
    CoderOverhead oh;
    oh.xnorGates = gates;
    oh.area = static_cast<double>(gates) * fig.area;
    oh.dynamicPower = static_cast<double>(gates) * fig.dynamicPower;
    oh.staticPower = static_cast<double>(gates) * fig.staticPower;
    return oh;
}

CoderOverhead
coderOverheadForNode(circuit::TechNode node)
{
    // The paper's fixed inventory on the Table 3 machine.
    const GateFigures fig = gateFigures(node);
    CoderOverhead oh;
    oh.xnorGates = coder::gate_model::kPaperXnorGateTotal;
    oh.area = static_cast<double>(oh.xnorGates) * fig.area;
    oh.dynamicPower = static_cast<double>(oh.xnorGates) * fig.dynamicPower;
    oh.staticPower = static_cast<double>(oh.xnorGates) * fig.staticPower;
    return oh;
}

double
baselineDieArea()
{
    // GTX480-class die: ~529 mm^2; the paper reports the coder area as
    // 0.056% of the baseline die.
    return 529.0e-6;
}

} // namespace bvf::power
