/**
 * @file
 * Coder overhead accounting.
 */

#include "power/overhead.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace bvf::power
{

namespace
{

/** Per-XNOR-gate figures by node (PDK-derived stand-ins). */
struct GateFigures
{
    double area;         //!< layout area incl. wiring share [m^2]
    double dynamicPower; //!< [W] toggling every cycle at 700MHz, 1.2V
    double staticPower;  //!< [W]
};

GateFigures
gateFigures(circuit::TechNode node)
{
    // Chosen so that the paper's 133,920-gate machine lands on its
    // published totals: 0.207/0.294 mm^2, 46.5/60.5 mW dynamic and
    // 18.7/24.2 uW static for 28nm/40nm.
    if (node == circuit::TechNode::N28) {
        return GateFigures{
            .area = 0.207e-6 / 133920.0,
            .dynamicPower = 46.5e-3 / 133920.0,
            .staticPower = 18.7e-6 / 133920.0,
        };
    }
    return GateFigures{
        .area = 0.294e-6 / 133920.0,
        .dynamicPower = 60.5e-3 / 133920.0,
        .staticPower = 24.2e-6 / 133920.0,
    };
}

} // namespace

CoderOverhead
coderOverhead(const gpu::GpuConfig &config, circuit::TechNode node)
{
    const auto sms = static_cast<std::uint64_t>(config.numSms);
    const auto banks = static_cast<std::uint64_t>(config.l2Banks);

    std::uint64_t gates = 0;

    // NV coders: 31 XNORs per 32-bit word lane. Upper interface at the
    // register ports (one warp-wide read/write port pair per SM: 2 ports
    // x 32 lanes) plus shared-memory ports (32 lanes), lower interface
    // at each MC/L2-bank port (line width / 32 bits).
    const std::uint64_t line_words = config.lineBytes / 4;
    gates += sms * (2 * 32 + 32) * 31;
    gates += banks * line_words * 31 * 2; // bank in + out

    // VS coders: 32 XNORs per non-pivot word. Register space: warp-wide
    // port pair per SM (31 non-pivot lanes); cache space: line ports at
    // L1D/L1T/L1C fill+read and both L2-bank sides.
    gates += sms * 2 * 31 * 32;
    gates += sms * 3 * (line_words - 1) * 32;
    gates += banks * 2 * (line_words - 1) * 32;

    // ISA coders: 64 XNORs per instruction port: IFB issue port per SM
    // and the instruction-side MC port per bank.
    gates += sms * 64;
    gates += banks * 64;

    const GateFigures fig = gateFigures(node);
    CoderOverhead oh;
    oh.xnorGates = gates;
    oh.area = static_cast<double>(gates) * fig.area;
    oh.dynamicPower = static_cast<double>(gates) * fig.dynamicPower;
    oh.staticPower = static_cast<double>(gates) * fig.staticPower;
    return oh;
}

CoderOverhead
coderOverheadForNode(circuit::TechNode node)
{
    // The paper's fixed inventory on the Table 3 machine.
    const GateFigures fig = gateFigures(node);
    CoderOverhead oh;
    oh.xnorGates = 133920;
    oh.area = static_cast<double>(oh.xnorGates) * fig.area;
    oh.dynamicPower = static_cast<double>(oh.xnorGates) * fig.dynamicPower;
    oh.staticPower = static_cast<double>(oh.xnorGates) * fig.staticPower;
    return oh;
}

double
baselineDieArea()
{
    // GTX480-class die: ~529 mm^2; the paper reports the coder area as
    // 0.056% of the baseline die.
    return 529.0e-6;
}

} // namespace bvf::power
