/**
 * @file
 * Coder design-overhead model (paper Section 6.3).
 *
 * The three coders are pure XNOR arrays: one gate per covered bit line
 * at every BVF-space port. The paper counts 133,920 XNOR gates chip-wide
 * and reports their area and power from the commercial PDKs; this module
 * reproduces the gate inventory from the machine description and scales
 * per-gate figures by node.
 */

#ifndef BVF_POWER_OVERHEAD_HH
#define BVF_POWER_OVERHEAD_HH

#include <cstdint>

#include "circuit/technology.hh"
#include "gpu/gpu_config.hh"

namespace bvf::power
{

/** Chip-wide coder overhead summary. */
struct CoderOverhead
{
    std::uint64_t xnorGates = 0;
    double area = 0.0;         //!< [m^2], including wiring
    double dynamicPower = 0.0; //!< [W] with every gate active each cycle
    double staticPower = 0.0;  //!< [W]

    /** Fraction of @p dieArea consumed. */
    double
    areaFraction(double dieArea) const
    {
        return dieArea > 0.0 ? area / dieArea : 0.0;
    }
};

/**
 * Count the XNOR gates the three coders need on @p config:
 *  - NV: 31 gates per 32-bit word port (sign bit passes through);
 *  - VS: 32 gates per non-pivot lane/element word at register and
 *    cache-line ports;
 *  - ISA: 64 gates per instruction port.
 * Ports follow Figure 7: register read/write, shared-memory, L1 fill
 * and MC-side interfaces per SM plus the L2-side interfaces per bank.
 */
CoderOverhead coderOverhead(const gpu::GpuConfig &config,
                            circuit::TechNode node);

/** The paper's fixed-machine overhead figures for @p node. */
CoderOverhead coderOverheadForNode(circuit::TechNode node);

/** Approximate die area of the baseline GPU [m^2] (for fractions). */
double baselineDieArea();

} // namespace bvf::power

#endif // BVF_POWER_OVERHEAD_HH
