/**
 * @file
 * Chip-level power/energy model (GPUWattch-style).
 *
 * Composes:
 *  - the BVF units (REG, SME, L1D/I/C/T, IFB, L2): dynamic energy from
 *    per-bit cell energies x the accounted bit volumes, plus leakage
 *    from occupancy-weighted hold power;
 *  - the NoC: toggle-proportional link energy plus per-flit control;
 *  - the non-BVF remainder (compute units, fetch/decode/issue, memory
 *    controllers, clock tree): per-event energies from the simulator's
 *    dynamic statistics plus a constant leakage floor.
 *
 * Constants are calibrated so the BVF-coverable units contribute ~48%
 * of baseline chip energy, the share GPUWattch reports for on-chip SRAM
 * + NoC on the Table 3 machine [paper Section 4].
 */

#ifndef BVF_POWER_CHIP_MODEL_HH
#define BVF_POWER_CHIP_MODEL_HH

#include <map>
#include <memory>

#include "circuit/array_model.hh"
#include "coder/bvf_space.hh"
#include "coder/scenario.hh"
#include "gpu/gpu.hh"
#include "sram/unit_energy.hh"

namespace bvf::power
{

/** Per-event energies for the non-SRAM parts of the chip [J]. */
struct NonSramEnergies
{
    double fpOp;
    double intOp;
    double issueOverhead; //!< fetch/decode/operand-collect per instruction
    double loadStoreUnit; //!< per memory instruction
    double mcRequest;     //!< per DRAM transaction
    double nocPerToggle;  //!< per wire toggle
    double nocPerFlit;    //!< per flit control/arbitration
    double otherLeakage;  //!< non-SRAM chip leakage [W]

    /** Calibrated defaults for a node at nominal voltage. */
    static NonSramEnergies forNode(circuit::TechNode node);

    /** Scale dynamic constants quadratically to @p vdd (from 1.2V). */
    NonSramEnergies scaledTo(double vdd) const;
};

/** Energy breakdown of one scenario over a run [J]. */
struct ChipEnergy
{
    std::map<coder::UnitId, sram::UnitEnergy> units;
    double nocDynamic = 0.0;
    double computeDynamic = 0.0;
    double otherDynamic = 0.0;  //!< issue + LSU + MC
    double otherLeakage = 0.0;
    double coderOverhead = 0.0; //!< XNOR gates (non-baseline scenarios)

    /** Energy of the BVF-coverable units (SRAM structures + NoC). */
    double bvfUnitsTotal() const;

    /** Whole-chip energy. */
    double chipTotal() const;
};

/** Array-level knobs of the modelled machine. */
struct ChipModelOptions
{
    /**
     * Price SECDED(72,64) storage: every SRAM array grows by 8 check
     * bits per 64 data bits (9/8 capacity, leakage and area), matching
     * an accountant run with ECC accounting enabled.
     */
    bool ecc = false;

    /**
     * Cells sharing one bitline in every BVF array. The paper's Table 3
     * machine uses 128; the Section 7.1 reliability study sweeps this.
     */
    int cellsPerBitline = 128;

    /**
     * Permit BVF-6T arrays beyond their 16 cells/bitline reliability
     * limit (the guard otherwise fatals). Set only by fault studies
     * that inject the resulting read disturb.
     */
    bool allowUnreliableCells = false;
};

/**
 * Chip power model for one (technology node, supply, cell family)
 * configuration.
 */
class ChipPowerModel
{
  public:
    /**
     * @param node process technology
     * @param vdd supply voltage
     * @param frequency core clock [Hz]
     * @param cellKind SRAM cell family used for the BVF units
     * @param config machine (capacities per unit)
     * @param options array-level knobs (ECC, bitline length)
     */
    ChipPowerModel(circuit::TechNode node, double vdd, double frequency,
                   circuit::CellKind cellKind,
                   const gpu::GpuConfig &config,
                   const ChipModelOptions &options = {});

    /** Capacity in bits of @p unit on this machine. */
    std::uint64_t unitCapacityBits(coder::UnitId unit) const;

    /** The circuit model backing @p unit. */
    const circuit::ArrayModel &unitArray(coder::UnitId unit) const;

    /**
     * Evaluate one scenario.
     *
     * @param unitStats per-unit accounted statistics for the scenario
     * @param nocToggles wire toggles for the scenario
     * @param nocFlits flits transferred
     * @param gpuStats dynamic instruction statistics
     * @param applyCoderOverhead charge the XNOR coder power
     */
    ChipEnergy evaluate(
        const std::map<coder::UnitId, sram::UnitScenarioStats> &unitStats,
        std::uint64_t nocToggles, std::uint64_t nocFlits,
        const gpu::GpuStats &gpuStats, bool applyCoderOverhead) const;

    circuit::TechNode node() const { return node_; }
    double vdd() const { return vdd_; }
    circuit::CellKind cellKind() const { return cellKind_; }
    const NonSramEnergies &nonSram() const { return energies_; }
    const ChipModelOptions &options() const { return options_; }

  private:
    circuit::TechNode node_;
    double vdd_;
    double frequency_;
    circuit::CellKind cellKind_;
    ChipModelOptions options_;
    const gpu::GpuConfig &config_;
    NonSramEnergies energies_;
    std::map<coder::UnitId, std::unique_ptr<circuit::ArrayModel>> arrays_;
    std::map<coder::UnitId, std::uint64_t> capacities_;
};

} // namespace bvf::power

#endif // BVF_POWER_CHIP_MODEL_HH
