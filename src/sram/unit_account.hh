/**
 * @file
 * Per-unit, per-scenario access statistics and standby-state tracking.
 *
 * A UnitAccount receives already-encoded blocks (the core layer applies
 * the scenario's coder chain first) and accumulates exactly the
 * quantities the paper's trace parser computes: 0/1 bit volumes for
 * reads and writes, and an occupancy-weighted estimate of the stored
 * 1-bit fraction over time for standby-leakage evaluation.
 *
 * Stored-state tracking is an exponential estimate driven by write
 * traffic (full per-scenario shadow copies of every SRAM would multiply
 * simulation memory by the scenario count for no change in the paper's
 * metrics). Unallocated capacity holds the initialization value --
 * bit 0 for the baseline cell, bit 1 for BVF cells, which the paper
 * initializes to 1 deliberately.
 */

#ifndef BVF_SRAM_UNIT_ACCOUNT_HH
#define BVF_SRAM_UNIT_ACCOUNT_HH

#include <array>
#include <cstdint>
#include <string>

#include "coder/bvf_space.hh"
#include "coder/scenario.hh"
#include "common/stats.hh"

namespace bvf::sram
{

/** Statistics for one unit under one scenario. */
struct UnitScenarioStats
{
    BitStats reads;   //!< bits delivered by read ports
    BitStats writes;  //!< bits absorbed by write ports

    /** Time integral of the stored 1-fraction [fraction * cycles]. */
    double storedOnesFracCycles = 0.0;

    /** Time integral of the allocated fraction [fraction * cycles]. */
    double allocatedFracCycles = 0.0;

    /** Mean stored-1 fraction over [0, totalCycles]. */
    double
    meanStoredOnesFrac(std::uint64_t totalCycles) const
    {
        return totalCycles ? storedOnesFracCycles
                                 / static_cast<double>(totalCycles)
                           : 0.0;
    }

    double
    meanAllocatedFrac(std::uint64_t totalCycles) const
    {
        return totalCycles ? allocatedFracCycles
                                 / static_cast<double>(totalCycles)
                           : 0.0;
    }
};

/**
 * Accounting state for one BVF unit across all scenarios.
 */
class UnitAccount
{
  public:
    /**
     * @param unit which unit this tracks
     * @param capacityBits physical capacity (chip-wide total)
     * @param initOnesFrac stored-1 fraction of untouched capacity per
     *        scenario (baseline cells power up as 0, BVF cells as 1)
     */
    UnitAccount(coder::UnitId unit, std::uint64_t capacityBits);

    coder::UnitId unit() const { return unit_; }
    std::uint64_t capacityBits() const { return capacityBits_; }

    /**
     * Record an encoded read of @p ones 1-bits out of @p bits total.
     */
    void recordRead(coder::Scenario s, std::uint64_t ones,
                    std::uint64_t bits, std::uint64_t cycle);

    /**
     * Record an encoded write; updates the stored-state estimate.
     */
    void recordWrite(coder::Scenario s, std::uint64_t ones,
                     std::uint64_t bits, std::uint64_t cycle);

    /** Integrate stored-state up to the end of simulation. */
    void finalize(std::uint64_t endCycle);

    const UnitScenarioStats &
    stats(coder::Scenario s) const
    {
        return perScenario_[static_cast<std::size_t>(
            coder::scenarioIndex(s))];
    }

    /** Initialization value of untouched cells for @p s (0 or 1). */
    static int initValue(coder::Scenario s);

  private:
    void integrateTo(coder::Scenario s, std::uint64_t cycle);

    coder::UnitId unit_;
    std::uint64_t capacityBits_;

    struct LiveState
    {
        double storedOnesFrac = 0.0;   //!< of allocated capacity
        double allocatedFrac = 0.0;
        std::uint64_t lastCycle = 0;
        std::uint64_t bytesWritten = 0;
    };

    std::array<UnitScenarioStats, coder::numScenarios> perScenario_;
    std::array<LiveState, coder::numScenarios> live_;
};

} // namespace bvf::sram

#endif // BVF_SRAM_UNIT_ACCOUNT_HH
