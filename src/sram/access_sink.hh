/**
 * @file
 * Observation interface between the GPU behavioural model and the
 * energy-accounting layer.
 *
 * The GPU simulator emits every access to a BVF unit through this
 * interface with the raw (unencoded) data; implementations (the core
 * layer's EnergyAccountant, test probes) apply per-scenario coder chains
 * and collect bit statistics. This mirrors the paper's methodology of
 * dumping access traces from GPGPU-Sim and parsing them offline -- here
 * the "trace" is consumed online to avoid tens of GB of files.
 */

#ifndef BVF_SRAM_ACCESS_SINK_HH
#define BVF_SRAM_ACCESS_SINK_HH

#include <cstdint>
#include <span>

#include "coder/bvf_space.hh"
#include "common/bitops.hh"

namespace bvf::sram
{

/** Access direction. */
enum class AccessType
{
    Read,
    Write,
};

/** Receives every BVF-unit access with raw data. */
class AccessSink
{
  public:
    virtual ~AccessSink() = default;

    /**
     * A data-block access to an SRAM unit.
     *
     * @param unit which BVF unit was touched
     * @param type read or write
     * @param block raw data words (lane block or cache-line block)
     * @param activeMask bit i set => word i is live (partial warps,
     *        partial line transactions); low @c block.size() bits used
     * @param cycle core clock at the access
     */
    virtual void onAccess(coder::UnitId unit, AccessType type,
                          std::span<const Word> block,
                          std::uint32_t activeMask,
                          std::uint64_t cycle) = 0;

    /**
     * An instruction-stream access (IFB issue or L1I line fill).
     *
     * @param unit Ifb or L1I
     * @param type read (fetch) or write (fill)
     * @param instrs raw 64-bit instruction binaries
     * @param cycle core clock at the access
     */
    virtual void onFetch(coder::UnitId unit, AccessType type,
                         std::span<const Word64> instrs,
                         std::uint64_t cycle) = 0;

    /**
     * One packet's payload crossing a NoC channel.
     *
     * Flits of one packet travel back to back on their channel, so
     * packet-granular reporting is toggle-exact: implementations encode
     * the payload as one block (the paper's per-line VS pivot) and then
     * segment it into flits for wire-toggle accounting.
     *
     * @param channel global channel index (stable per physical link)
     * @param payload raw packet payload words (line or store data)
     * @param instrStream true when the packet carries instruction bits
     * @param cycle interconnect clock at the transfer
     */
    virtual void onNocPacket(int channel, std::span<const Word> payload,
                             bool instrStream, std::uint64_t cycle) = 0;
};

/** A sink that drops everything (for functional-only runs). */
class NullSink : public AccessSink
{
  public:
    void
    onAccess(coder::UnitId, AccessType, std::span<const Word>,
             std::uint32_t, std::uint64_t) override
    {}

    void
    onFetch(coder::UnitId, AccessType, std::span<const Word64>,
            std::uint64_t) override
    {}

    void
    onNocPacket(int, std::span<const Word>, bool, std::uint64_t) override
    {}
};

} // namespace bvf::sram

#endif // BVF_SRAM_ACCESS_SINK_HH
