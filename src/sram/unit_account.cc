/**
 * @file
 * Unit accounting implementation.
 */

#include "sram/unit_account.hh"

#include "common/logging.hh"

namespace bvf::sram
{

UnitAccount::UnitAccount(coder::UnitId unit, std::uint64_t capacityBits)
    : unit_(unit), capacityBits_(capacityBits)
{
    fatal_if(capacityBits == 0, "unit %s has zero capacity",
             coder::unitName(unit).c_str());
    // Untouched BVF cells are initialized to 1 (the paper exploits the
    // cheap hold-1 state); the baseline powers up at 0. The stored
    // fraction of *allocated* capacity starts at the same value.
    for (const auto s : coder::allScenarios) {
        live_[static_cast<std::size_t>(coder::scenarioIndex(s))]
            .storedOnesFrac = initValue(s);
    }
}

int
UnitAccount::initValue(coder::Scenario s)
{
    return s == coder::Scenario::Baseline ? 0 : 1;
}

void
UnitAccount::integrateTo(coder::Scenario s, std::uint64_t cycle)
{
    auto &ls = live_[static_cast<std::size_t>(coder::scenarioIndex(s))];
    auto &st =
        perScenario_[static_cast<std::size_t>(coder::scenarioIndex(s))];
    if (cycle <= ls.lastCycle)
        return;
    const double dt = static_cast<double>(cycle - ls.lastCycle);
    // Stored fraction over the whole capacity: allocated part holds the
    // live estimate, untouched part holds the init value.
    const double init = initValue(s);
    const double frac = ls.allocatedFrac * ls.storedOnesFrac
                        + (1.0 - ls.allocatedFrac) * init;
    st.storedOnesFracCycles += frac * dt;
    st.allocatedFracCycles += ls.allocatedFrac * dt;
    ls.lastCycle = cycle;
}

void
UnitAccount::recordRead(coder::Scenario s, std::uint64_t ones,
                        std::uint64_t bits, std::uint64_t cycle)
{
    panic_if(ones > bits, "more ones than bits");
    integrateTo(s, cycle);
    auto &st =
        perScenario_[static_cast<std::size_t>(coder::scenarioIndex(s))];
    st.reads.ones += ones;
    st.reads.zeros += bits - ones;
    ++st.reads.accesses;
}

void
UnitAccount::recordWrite(coder::Scenario s, std::uint64_t ones,
                         std::uint64_t bits, std::uint64_t cycle)
{
    panic_if(ones > bits, "more ones than bits");
    integrateTo(s, cycle);
    auto &st =
        perScenario_[static_cast<std::size_t>(coder::scenarioIndex(s))];
    st.writes.ones += ones;
    st.writes.zeros += bits - ones;
    ++st.writes.accesses;

    auto &ls = live_[static_cast<std::size_t>(coder::scenarioIndex(s))];
    if (bits == 0)
        return;
    // Blend the stored-state estimate towards this write's 1-fraction,
    // weighted by how much of the allocated capacity it replaces.
    ls.bytesWritten += bits / 8;
    const double cap = static_cast<double>(capacityBits_);
    ls.allocatedFrac = std::min(
        1.0, static_cast<double>(ls.bytesWritten) * 8.0 / cap);
    const double write_frac =
        static_cast<double>(ones) / static_cast<double>(bits);
    const double weight =
        std::min(1.0, static_cast<double>(bits)
                          / (cap * std::max(0.02, ls.allocatedFrac)));
    ls.storedOnesFrac =
        ls.storedOnesFrac * (1.0 - weight) + write_frac * weight;
}

void
UnitAccount::finalize(std::uint64_t endCycle)
{
    for (const auto s : coder::allScenarios)
        integrateTo(s, endCycle);
}

} // namespace bvf::sram
