/**
 * @file
 * Unit energy evaluation.
 */

#include "sram/unit_energy.hh"

namespace bvf::sram
{

UnitEnergy
evaluateUnitEnergy(const UnitScenarioStats &stats,
                   const circuit::ArrayModel &array,
                   std::uint64_t capacityBits, std::uint64_t totalCycles,
                   double clockPeriod)
{
    UnitEnergy e;

    e.readDynamic =
        static_cast<double>(stats.reads.ones) * array.bitReadEnergy(1)
        + static_cast<double>(stats.reads.zeros) * array.bitReadEnergy(0);
    e.writeDynamic =
        static_cast<double>(stats.writes.ones) * array.bitWriteEnergy(1)
        + static_cast<double>(stats.writes.zeros)
              * array.bitWriteEnergy(0);

    const double word_bits = array.geometry().wordBits();
    const double read_words =
        static_cast<double>(stats.reads.bits()) / word_bits;
    const double write_words =
        static_cast<double>(stats.writes.bits()) / word_bits;
    e.fixedDynamic =
        (read_words + write_words) * array.fixedAccessEnergy();

    const double seconds =
        static_cast<double>(totalCycles) * clockPeriod;
    const double ones_frac = stats.meanStoredOnesFrac(totalCycles);
    const double leak_per_bit =
        ones_frac * array.bitHoldLeakage(1)
        + (1.0 - ones_frac) * array.bitHoldLeakage(0);
    e.standby = static_cast<double>(capacityBits) * leak_per_bit * seconds;

    return e;
}

} // namespace bvf::sram
