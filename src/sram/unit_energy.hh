/**
 * @file
 * Turning unit access statistics into energy.
 *
 * Combines a UnitAccount's bit volumes with a circuit-level ArrayModel
 * to produce dynamic read/write energy, NoC-independent standby energy,
 * and the fixed per-access overheads. This is the point where the BVF
 * cell's value asymmetry meets the architecture's bit statistics.
 */

#ifndef BVF_SRAM_UNIT_ENERGY_HH
#define BVF_SRAM_UNIT_ENERGY_HH

#include "circuit/array_model.hh"
#include "sram/unit_account.hh"

namespace bvf::sram
{

/** Energy breakdown of one unit under one scenario [J]. */
struct UnitEnergy
{
    double readDynamic = 0.0;
    double writeDynamic = 0.0;
    double fixedDynamic = 0.0; //!< decode/wordline/H-tree overheads
    double standby = 0.0;      //!< leakage over the run

    double
    total() const
    {
        return readDynamic + writeDynamic + fixedDynamic + standby;
    }
};

/**
 * Evaluate @p stats against @p array.
 *
 * @param stats per-scenario statistics (already encoded bits)
 * @param array circuit model of the unit's banks
 * @param totalCycles simulated core cycles
 * @param clockPeriod seconds per cycle (for leakage integration)
 */
UnitEnergy evaluateUnitEnergy(const UnitScenarioStats &stats,
                              const circuit::ArrayModel &array,
                              std::uint64_t capacityBits,
                              std::uint64_t totalCycles,
                              double clockPeriod);

} // namespace bvf::sram

#endif // BVF_SRAM_UNIT_ENERGY_HH
