/**
 * @file
 * Kernel synthesis: AppSpec -> runnable isa::Program.
 *
 * The generated kernels follow the canonical data-parallel shape --
 * compute a global index, loop over tiles, load inputs, run an
 * arithmetic chain, optionally stage through shared memory, optionally
 * diverge on a data-dependent condition, store results -- with the
 * instruction mix, access pattern and value statistics of the AppSpec.
 * Memory images are filled by the app's ValueModel so that coalesced
 * warps observe lane-correlated data.
 */

#ifndef BVF_WORKLOAD_KERNEL_BUILDER_HH
#define BVF_WORKLOAD_KERNEL_BUILDER_HH

#include "isa/program.hh"
#include "workload/app_spec.hh"

namespace bvf::workload
{

/** Builds the program for one application. */
class KernelBuilder
{
  public:
    explicit KernelBuilder(const AppSpec &spec);

    /**
     * Generate the kernel and its memory images. Deterministic: equal
     * specs produce identical programs.
     */
    isa::Program build() const;

  private:
    const AppSpec &spec_;
};

/** Convenience: build the program for @p spec. */
isa::Program buildProgram(const AppSpec &spec);

} // namespace bvf::workload

#endif // BVF_WORKLOAD_KERNEL_BUILDER_HH
