/**
 * @file
 * Synthetic data-value generation.
 *
 * The coders' benefit depends entirely on the bit-level statistics of
 * application data: how many values are exactly zero, how narrow the
 * non-zero values are (leading-zero runs), how similar neighbouring
 * SIMD lanes are, and the integer/floating-point mix. We have no CUDA
 * binaries or GPU hardware, so this module generates value streams whose
 * statistics are calibrated to the paper's published profiling of 58
 * applications on a Tesla P100 (Figures 8, 9, 11 and 12):
 *
 *  - ~9/32 mean sign-adjusted leading zeros,
 *  - ~22/32 mean zero bits per word,
 *  - lane 21 as the mean-optimal Hamming pivot (~20% below lane 0).
 *
 * The lane-similarity model generates a per-warp-tile base value plus
 * per-lane deltas whose magnitude grows with the lane's distance from a
 * "stability centre" (default 21): lanes near the warp edges diverge
 * more (boundary handling, partial tiles), exactly the paper's
 * explanation for why lane 0 is a poor pivot.
 */

#ifndef BVF_WORKLOAD_VALUE_MODEL_HH
#define BVF_WORKLOAD_VALUE_MODEL_HH

#include <array>
#include <vector>

#include "common/bitops.hh"
#include "common/rng.hh"

namespace bvf::workload
{

/** Number of lanes in a warp / elements in a similarity tile. */
constexpr int warpWidth = 32;

/** Parameters describing one application's value behaviour. */
struct ValueProfile
{
    double zeroValueProb = 0.25;   //!< P(word == 0)
    double negativeProb = 0.08;    //!< P(value negative | non-zero int)
    double floatFraction = 0.35;   //!< fraction of fp32 bit patterns
    double narrowGeomP = 0.012;     //!< geometric p for int effective bits
    int maxEffectiveBits = 30;     //!< cap on int magnitude bits
    double laneEqualProb = 0.42;   //!< P(lane == tile base exactly);
                                   //!< value locality/similarity per
                                   //!< Wong et al. (~34% locality plus
                                   //!< broadcast operands)
    double laneDeltaP = 0.45;      //!< geometric p for lane-delta bits
    int maxDeltaBits = 16;         //!< cap on per-lane delta bits
    double laneOutlierProb = 0.06; //!< P(lane ignores the tile base)
    int pivotCentre = 21;          //!< lane with minimum expected delta
    double edgePenalty = 0.55;     //!< how strongly deltas grow off-centre

    /** fp32 exponent spread around 2^0 (stddev of exponent offset). */
    double floatExponentSpread = 3.0;
};

/**
 * Value generator for one application, deterministic per seed.
 */
class ValueModel
{
  public:
    ValueModel(const ValueProfile &profile, std::uint64_t seed);

    /** One scalar word following the marginal distribution. */
    Word scalar();

    /**
     * A 32-element tile of lane-correlated values, e.g. the contents of
     * one warp-wide register or 32 consecutive array elements touched by
     * a coalesced access.
     */
    std::array<Word, warpWidth> tile();

    /**
     * Fill @p out with @p words values arranged as consecutive tiles
     * (tail shorter than a tile falls back to scalars). Used to build
     * memory images so coalesced warps see lane-correlated data.
     */
    void fillImage(std::vector<Word> &out, std::size_t words);

    const ValueProfile &profile() const { return profile_; }

  private:
    Word narrowInt();
    Word narrowFloat();

    /** Expected delta scale multiplier for @p lane. */
    double laneWeight(int lane) const;

    ValueProfile profile_;
    Rng rng_;
};

} // namespace bvf::workload

#endif // BVF_WORKLOAD_VALUE_MODEL_HH
