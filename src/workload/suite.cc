/**
 * @file
 * The 58-application evaluation suite.
 *
 * Parameter choices are synthetic but follow each benchmark's public
 * character: graph codes (BFS, SSSP) are integer-heavy, divergent and
 * random-access; dense linear algebra (GEMM, SYRK, ATAX) is float-heavy,
 * coalesced and streaming; stencils sit in between; the memoryIntensive
 * flag matches the paper's Figure 18/19 narrative (ATA, BFS, BIC, CON,
 * COR, GES, SYK, SYR, MD save the most; BLA, CP, DXT, LIB, NQU, PAT,
 * SGE the least).
 */

#include "workload/app_spec.hh"

#include "common/logging.hh"

namespace bvf::workload
{

std::string
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::Rodinia:
        return "Rodinia";
      case Suite::Parboil:
        return "Parboil";
      case Suite::CudaSdk:
        return "SDK";
      case Suite::Shoc:
        return "SHOC";
      case Suite::Lonestar:
        return "Lonestar";
      case Suite::Polybench:
        return "Polybench";
      case Suite::GpgpuSim:
        return "GPGPU-Sim";
    }
    panic("unknown suite");
}

std::uint64_t
AppSpec::seed() const
{
    // FNV-1a over the name, salted so reseeding the suite is explicit.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    // seedSalt perturbs every bit so a retry-with-reseed redraws the
    // whole value stream, not a shifted copy of it.
    if (seedSalt != 0)
        h ^= (seedSalt + 0x9e3779b97f4a7c15ull) * 0xff51afd7ed558ccdull;
    return h ^ 0xb5f0ull;
}

namespace
{

/** Convenience builder so the table below stays readable. */
struct SpecBuilder
{
    AppSpec s;

    SpecBuilder(std::string name, std::string abbr, Suite suite)
    {
        s.name = std::move(name);
        s.abbr = std::move(abbr);
        s.suite = suite;
    }

    // Value-statistics knobs.
    SpecBuilder &zero(double p) { s.values.zeroValueProb = p; return *this; }
    SpecBuilder &flt(double f) { s.values.floatFraction = f; return *this; }
    SpecBuilder &narrow(double p) { s.values.narrowGeomP = p; return *this; }
    SpecBuilder &neg(double p) { s.values.negativeProb = p; return *this; }
    SpecBuilder &outlier(double p)
    {
        s.values.laneOutlierProb = p;
        return *this;
    }
    SpecBuilder &centre(int lane) { s.values.pivotCentre = lane; return *this; }

    // Kernel-shape knobs.
    SpecBuilder &
    mix(int ldg, int stg, int fp, int iops)
    {
        s.mix.globalLoads = ldg;
        s.mix.globalStores = stg;
        s.mix.fpOps = fp;
        s.mix.intOps = iops;
        return *this;
    }
    SpecBuilder &shared(int pairs) { s.mix.sharedOps = pairs; return *this; }
    SpecBuilder &cmem(int n) { s.mix.constantLoads = n; return *this; }
    SpecBuilder &tex(int n) { s.mix.textureLoads = n; return *this; }
    SpecBuilder &pattern(AccessPattern p) { s.pattern = p; return *this; }
    SpecBuilder &stride(int n) { s.stride = n; return *this; }
    SpecBuilder &div(double p) { s.divergenceProb = p; return *this; }
    SpecBuilder &
    launch(int blocks, int threads, int iters)
    {
        s.gridBlocks = blocks;
        s.blockThreads = threads;
        s.loopIters = iters;
        return *this;
    }
    SpecBuilder &memBound() { s.memoryIntensive = true; return *this; }

    operator AppSpec() const { return s; }
};

std::vector<AppSpec>
buildSuite()
{
    using enum AccessPattern;
    std::vector<AppSpec> apps;

    auto add = [&apps](const SpecBuilder &b) { apps.push_back(b); };

    // ------------------------------------------------------- Rodinia --
    add(SpecBuilder("backprop", "BCK", Suite::Rodinia)
            .zero(0.154).flt(0.75).mix(3, 1, 8, 3).shared(2)
            .launch(40, 128, 5).div(0.05));
    add(SpecBuilder("bfs", "BFS", Suite::Rodinia)
            .zero(0.315).flt(0.0).narrow(0.085).mix(4, 1, 0, 6)
            .pattern(Random).div(0.45).launch(48, 128, 5)
            .outlier(0.16).memBound());
    add(SpecBuilder("b+tree", "BTR", Suite::Rodinia)
            .zero(0.210).flt(0.0).narrow(0.060).mix(3, 1, 0, 7)
            .pattern(Random).div(0.30).launch(40, 128, 5));
    add(SpecBuilder("cfd", "CFD", Suite::Rodinia)
            .zero(0.084).flt(0.85).mix(4, 2, 10, 2)
            .launch(40, 128, 5).div(0.08));
    add(SpecBuilder("gaussian", "GAU", Suite::Rodinia)
            .zero(0.175).flt(0.70).mix(3, 1, 6, 3)
            .launch(32, 128, 6).div(0.10));
    add(SpecBuilder("heartwall", "HWL", Suite::Rodinia)
            .zero(0.126).flt(0.60).mix(3, 1, 8, 4).tex(2)
            .launch(32, 128, 5).div(0.15));
    add(SpecBuilder("hotspot", "HSP", Suite::Rodinia)
            .zero(0.105).flt(0.80).mix(3, 1, 9, 3).shared(2)
            .launch(40, 128, 5).div(0.06));
    add(SpecBuilder("kmeans", "KMN", Suite::Rodinia)
            .zero(0.140).flt(0.55).mix(4, 1, 6, 4).cmem(1)
            .launch(40, 128, 5).div(0.12));
    add(SpecBuilder("lavaMD", "MD", Suite::Rodinia)
            .zero(0.098).flt(0.72).mix(5, 2, 9, 3).shared(4)
            .launch(48, 128, 6).div(0.10).memBound());
    add(SpecBuilder("lud", "LUD", Suite::Rodinia)
            .zero(0.168).flt(0.68).mix(3, 1, 7, 3).shared(2)
            .launch(32, 128, 5).div(0.08));
    add(SpecBuilder("nn", "NN", Suite::Rodinia)
            .zero(0.140).flt(0.65).mix(3, 1, 5, 3)
            .launch(32, 96, 5).div(0.05));
    add(SpecBuilder("nw", "NW", Suite::Rodinia)
            .zero(0.245).flt(0.0).narrow(0.075).mix(3, 1, 0, 7).shared(2)
            .launch(32, 128, 5).div(0.20).centre(19));
    add(SpecBuilder("pathfinder", "PAT", Suite::Rodinia)
            .zero(0.196).flt(0.0).narrow(0.070).mix(2, 1, 0, 9).shared(2)
            .launch(32, 128, 7).div(0.22));
    add(SpecBuilder("srad", "SRD", Suite::Rodinia)
            .zero(0.112).flt(0.78).mix(4, 1, 8, 3)
            .launch(40, 128, 5).div(0.08));

    // ------------------------------------------------------- Parboil --
    add(SpecBuilder("cutcp", "CUT", Suite::Parboil)
            .zero(0.070).flt(0.85).mix(3, 1, 11, 2).cmem(1)
            .launch(32, 128, 6).div(0.06));
    add(SpecBuilder("histo", "HIS", Suite::Parboil)
            .zero(0.280).flt(0.0).narrow(0.090).mix(3, 2, 0, 6)
            .pattern(Random).div(0.25).launch(40, 128, 5).centre(23));
    add(SpecBuilder("lbm", "LBM", Suite::Parboil)
            .zero(0.070).flt(0.88).mix(5, 3, 10, 2)
            .launch(48, 128, 5).div(0.04));
    add(SpecBuilder("mri-q", "MRQ", Suite::Parboil)
            .zero(0.056).flt(0.90).mix(3, 1, 12, 2).cmem(2)
            .launch(32, 128, 6).div(0.03));
    add(SpecBuilder("sad", "SAD", Suite::Parboil)
            .zero(0.210).flt(0.0).narrow(0.100).mix(4, 1, 0, 8).tex(2)
            .launch(40, 128, 5).div(0.12));
    add(SpecBuilder("sgemm", "SGE", Suite::Parboil)
            .zero(0.070).flt(0.92).mix(2, 1, 14, 2).shared(4)
            .launch(40, 128, 8).div(0.02));
    add(SpecBuilder("spmv", "SPM", Suite::Parboil)
            .zero(0.245).flt(0.45).mix(4, 1, 4, 5)
            .pattern(Random).div(0.28).launch(40, 128, 5)
            .outlier(0.12));
    add(SpecBuilder("stencil", "STE", Suite::Parboil)
            .zero(0.098).flt(0.80).mix(5, 1, 8, 3)
            .launch(48, 128, 5).div(0.05));

    // ------------------------------------------------------ CUDA SDK --
    add(SpecBuilder("blackscholes", "BLA", Suite::CudaSdk)
            .zero(0.035).flt(0.95).mix(2, 2, 16, 1)
            .launch(40, 128, 7).div(0.02));
    add(SpecBuilder("convolutionSeparable", "CON", Suite::CudaSdk)
            .zero(0.140).flt(0.75).mix(5, 2, 7, 2).shared(4).cmem(1)
            .launch(48, 128, 6).div(0.03).memBound());
    add(SpecBuilder("dxtc", "DXT", Suite::CudaSdk)
            .zero(0.126).flt(0.30).narrow(0.085).mix(2, 1, 6, 8)
            .shared(2).launch(32, 128, 8).div(0.10));
    add(SpecBuilder("fastWalshTransform", "FWT", Suite::CudaSdk)
            .zero(0.154).flt(0.60).mix(3, 2, 5, 4).shared(4)
            .launch(40, 128, 5).div(0.04));
    add(SpecBuilder("matrixMul", "MMU", Suite::CudaSdk)
            .zero(0.084).flt(0.90).mix(2, 1, 12, 2).shared(4)
            .launch(40, 128, 7).div(0.02));
    add(SpecBuilder("mergeSort", "MGS", Suite::CudaSdk)
            .zero(0.182).flt(0.0).narrow(0.065).mix(3, 2, 0, 8).shared(2)
            .launch(40, 128, 5).div(0.25).centre(20));
    add(SpecBuilder("oceanFFT", "OFT", Suite::CudaSdk)
            .zero(0.070).flt(0.85).mix(3, 2, 9, 3).shared(2)
            .launch(40, 128, 5).div(0.03));
    add(SpecBuilder("imageDenoising", "IMD", Suite::CudaSdk)
            .zero(0.105).flt(0.70).mix(4, 1, 8, 3).tex(4)
            .launch(40, 128, 5).div(0.07));
    add(SpecBuilder("reduction", "RED", Suite::CudaSdk)
            .zero(0.196).flt(0.55).mix(4, 1, 3, 4).shared(4)
            .launch(48, 128, 5).div(0.10));
    add(SpecBuilder("scalarProd", "SCP", Suite::CudaSdk)
            .zero(0.105).flt(0.80).mix(4, 1, 6, 2).shared(2)
            .launch(40, 128, 5).div(0.03));
    add(SpecBuilder("scan", "SCN", Suite::CudaSdk)
            .zero(0.210).flt(0.40).mix(3, 2, 3, 5).shared(4)
            .launch(40, 128, 5).div(0.08));
    add(SpecBuilder("transpose", "TRA", Suite::CudaSdk)
            .zero(0.140).flt(0.60).mix(3, 3, 2, 4).shared(4)
            .pattern(Strided).stride(8).launch(48, 128, 5).div(0.02));

    // ---------------------------------------------------------- SHOC --
    add(SpecBuilder("fft", "FFT", Suite::Shoc)
            .zero(0.056).flt(0.88).mix(3, 2, 10, 3).shared(4)
            .launch(40, 128, 6).div(0.03));
    add(SpecBuilder("md", "MDS", Suite::Shoc)
            .zero(0.084).flt(0.75).mix(5, 1, 9, 3)
            .pattern(Random).launch(40, 128, 6).div(0.12));
    add(SpecBuilder("qtclustering", "QTC", Suite::Shoc)
            .zero(0.175).flt(0.50).mix(4, 1, 5, 5)
            .pattern(Random).div(0.30).launch(32, 128, 5)
            .outlier(0.14).centre(22));
    add(SpecBuilder("s3d", "S3D", Suite::Shoc)
            .zero(0.070).flt(0.86).mix(4, 2, 12, 2).cmem(1)
            .launch(40, 128, 5).div(0.05));
    add(SpecBuilder("sort", "SRT", Suite::Shoc)
            .zero(0.175).flt(0.0).narrow(0.070).mix(3, 3, 0, 7).shared(4)
            .launch(40, 128, 5).div(0.18));
    add(SpecBuilder("triad", "TRI", Suite::Shoc)
            .zero(0.105).flt(0.82).mix(3, 1, 3, 2)
            .launch(56, 128, 5).div(0.01));

    // ------------------------------------------------------ Lonestar --
    add(SpecBuilder("bfs-ls", "LBF", Suite::Lonestar)
            .zero(0.294).flt(0.0).narrow(0.085).mix(4, 1, 0, 6)
            .pattern(Random).div(0.40).launch(40, 128, 5)
            .outlier(0.18));
    add(SpecBuilder("barneshut", "BH", Suite::Lonestar)
            .zero(0.126).flt(0.65).mix(4, 1, 8, 4)
            .pattern(Random).div(0.35).launch(32, 128, 6)
            .outlier(0.15).centre(24));
    add(SpecBuilder("mst", "MST", Suite::Lonestar)
            .zero(0.266).flt(0.0).narrow(0.080).mix(4, 1, 0, 7)
            .pattern(Random).div(0.38).launch(32, 128, 5)
            .outlier(0.16));
    add(SpecBuilder("sp", "SP", Suite::Lonestar)
            .zero(0.252).flt(0.10).narrow(0.075).mix(3, 1, 1, 6)
            .pattern(Random).div(0.32).launch(32, 128, 5));
    add(SpecBuilder("sssp", "SSP", Suite::Lonestar)
            .zero(0.280).flt(0.0).narrow(0.080).mix(4, 1, 0, 6)
            .pattern(Random).div(0.42).launch(40, 128, 5)
            .outlier(0.17).centre(22));

    // ----------------------------------------------------- Polybench --
    add(SpecBuilder("atax", "ATA", Suite::Polybench)
            .zero(0.210).flt(0.65).mix(5, 1, 5, 2)
            .launch(48, 128, 6).div(0.02).memBound());
    add(SpecBuilder("bicg", "BIC", Suite::Polybench)
            .zero(0.210).flt(0.65).mix(5, 1, 5, 2)
            .launch(48, 128, 6).div(0.02).memBound().centre(20));
    add(SpecBuilder("correlation", "COR", Suite::Polybench)
            .zero(0.182).flt(0.70).mix(5, 1, 6, 2)
            .launch(48, 128, 6).div(0.03).memBound());
    add(SpecBuilder("covariance", "COV", Suite::Polybench)
            .zero(0.182).flt(0.70).mix(5, 1, 6, 2)
            .launch(48, 128, 6).div(0.03));
    add(SpecBuilder("gemm", "GEM", Suite::Polybench)
            .zero(0.084).flt(0.90).mix(3, 1, 12, 2).shared(2)
            .launch(40, 128, 7).div(0.02));
    add(SpecBuilder("gesummv", "GES", Suite::Polybench)
            .zero(0.224).flt(0.60).mix(6, 1, 4, 2)
            .launch(48, 128, 6).div(0.02).memBound());
    add(SpecBuilder("mvt", "MVT", Suite::Polybench)
            .zero(0.196).flt(0.65).mix(5, 1, 4, 2)
            .launch(48, 128, 6).div(0.02));
    add(SpecBuilder("syrk", "SYR", Suite::Polybench)
            .zero(0.196).flt(0.70).mix(5, 2, 6, 2)
            .launch(48, 128, 6).div(0.02).memBound());
    add(SpecBuilder("syr2k", "SYK", Suite::Polybench)
            .zero(0.196).flt(0.70).mix(6, 2, 6, 2)
            .launch(48, 128, 6).div(0.02).memBound());
    add(SpecBuilder("2dconv", "2DC", Suite::Polybench)
            .zero(0.154).flt(0.75).mix(5, 1, 7, 2)
            .launch(48, 128, 5).div(0.03));

    // ----------------------------------------------------- GPGPU-Sim --
    add(SpecBuilder("cp", "CP", Suite::GpgpuSim)
            .zero(0.056).flt(0.90).mix(2, 1, 14, 2).cmem(1)
            .launch(32, 128, 8).div(0.02));
    add(SpecBuilder("lib", "LIB", Suite::GpgpuSim)
            .zero(0.070).flt(0.85).mix(2, 1, 12, 3)
            .launch(32, 128, 8).div(0.05));
    add(SpecBuilder("nqu", "NQU", Suite::GpgpuSim)
            .zero(0.210).flt(0.0).narrow(0.080).mix(1, 1, 0, 12)
            .div(0.35).launch(24, 96, 8));

    fatal_if(apps.size() != 58, "suite must contain 58 apps, has %zu",
             apps.size());
    return apps;
}

} // namespace

const std::vector<AppSpec> &
evaluationSuite()
{
    static const std::vector<AppSpec> suite = buildSuite();
    return suite;
}

const AppSpec &
findApp(const std::string &abbr)
{
    for (const AppSpec &app : evaluationSuite()) {
        if (app.abbr == abbr)
            return app;
    }
    fatal("unknown application abbreviation '%s'", abbr.c_str());
}

} // namespace bvf::workload
