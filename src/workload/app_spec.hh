/**
 * @file
 * Application specifications: the 58-application evaluation suite.
 *
 * Each AppSpec captures, per benchmark, the knobs that matter to the BVF
 * study: value statistics (ValueProfile), instruction mix, memory access
 * behaviour and launch geometry. The specs are synthetic stand-ins for
 * the paper's CUDA benchmarks (Rodinia, Parboil, CUDA SDK, SHOC,
 * Lonestar, Polybench and the GPGPU-Sim suite); names and the memory- vs
 * compute-intensive split follow the paper's Figures 18/19.
 */

#ifndef BVF_WORKLOAD_APP_SPEC_HH
#define BVF_WORKLOAD_APP_SPEC_HH

#include <string>
#include <vector>

#include "workload/value_model.hh"

namespace bvf::workload
{

/** Which benchmark suite an application belongs to. */
enum class Suite
{
    Rodinia,
    Parboil,
    CudaSdk,
    Shoc,
    Lonestar,
    Polybench,
    GpgpuSim,
};

/** Display name, e.g. "Rodinia". */
std::string suiteName(Suite suite);

/** Per-iteration instruction mix of the generated kernel loop body. */
struct InstrMix
{
    int globalLoads = 2;    //!< LDG per loop iteration
    int globalStores = 1;   //!< STG per loop iteration
    int sharedOps = 0;      //!< LDS+STS pairs per iteration
    int constantLoads = 0;  //!< LDC per iteration
    int textureLoads = 0;   //!< LDT per iteration
    int fpOps = 6;          //!< FFMA/FADD/FMUL chain length
    int intOps = 3;         //!< integer ALU ops
};

/** Global-memory access pattern of the generated loads/stores. */
enum class AccessPattern
{
    Coalesced, //!< lane i touches element warp_base + i
    Strided,   //!< lane i touches element (warp_base + i) * stride
    Random,    //!< lane i touches a hashed element
};

/** One benchmark application. */
struct AppSpec
{
    std::string name;   //!< full benchmark name, e.g. "atax"
    std::string abbr;   //!< figure abbreviation, e.g. "ATA"
    Suite suite = Suite::Polybench;

    ValueProfile values;
    InstrMix mix;
    AccessPattern pattern = AccessPattern::Coalesced;
    int stride = 1;              //!< element stride for Strided
    double divergenceProb = 0.1; //!< P(loop body contains a divergent if)
    int gridBlocks = 12;
    int blockThreads = 128;
    int loopIters = 6;
    bool memoryIntensive = false; //!< paper's Fig 18 classification

    /**
     * Extra entropy folded into seed(). Zero (the default) keeps the
     * historical per-name seed; the experiment driver bumps it to retry
     * a failed application with fresh value/divergence draws.
     */
    std::uint64_t seedSalt = 0;

    /** Deterministic per-app seed derived from the name and seedSalt. */
    std::uint64_t seed() const;
};

/** The full 58-application suite, in figure order. */
const std::vector<AppSpec> &evaluationSuite();

/** Look up an application by abbreviation; fatals if missing. */
const AppSpec &findApp(const std::string &abbr);

} // namespace bvf::workload

#endif // BVF_WORKLOAD_APP_SPEC_HH
