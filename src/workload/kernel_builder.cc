/**
 * @file
 * Kernel builder implementation.
 *
 * Register convention used by generated code:
 *   r1..r3   thread index values (tid/cta special regs, ntid immediate)
 *   r4       global element index
 *   r5       byte offset of this thread's current element
 *   r6..r9   array base addresses (64KB-aligned, so a MOV+SHL pair
 *            materializes them)
 *   r10      loop counter
 *   r11      per-iteration byte-offset advance
 *   r12..r15 address/hash temporaries
 *   r16..r23 loaded data
 *   r24..r27 accumulators
 */

#include "workload/kernel_builder.hh"

#include <algorithm>

#include "common/logging.hh"

namespace bvf::workload
{

using isa::Instruction;
using isa::Opcode;
using isa::Program;
using isa::SpecialReg;
using isa::CmpOp;

namespace
{

/** Minimum array slot size; bases stay 64KB-aligned. */
constexpr std::uint32_t minArraySlotBytes = 0x10000; // 64KB

/** Incremental program emitter with branch-target convenience. */
class Emitter
{
  public:
    int
    emit(Instruction instr)
    {
        body_.push_back(instr);
        return static_cast<int>(body_.size()) - 1;
    }

    Instruction &at(int idx) { return body_[static_cast<std::size_t>(idx)]; }

    int next() const { return static_cast<int>(body_.size()); }

    std::vector<Instruction> take() { return std::move(body_); }

    // --- helpers for common shapes -----------------------------------

    void
    s2r(int dst, SpecialReg sr)
    {
        Instruction i;
        i.op = Opcode::S2R;
        i.dst = static_cast<std::uint8_t>(dst);
        i.flags = static_cast<std::uint8_t>(sr);
        emit(i);
    }

    void
    movImm(int dst, int imm)
    {
        Instruction i;
        i.op = Opcode::Mov;
        i.dst = static_cast<std::uint8_t>(dst);
        i.immB = true;
        i.imm = imm;
        emit(i);
    }

    void
    alu(Opcode op, int dst, int a, int b)
    {
        Instruction i;
        i.op = op;
        i.dst = static_cast<std::uint8_t>(dst);
        i.srcA = static_cast<std::uint8_t>(a);
        i.srcB = static_cast<std::uint8_t>(b);
        emit(i);
    }

    void
    aluImm(Opcode op, int dst, int a, int imm)
    {
        Instruction i;
        i.op = op;
        i.dst = static_cast<std::uint8_t>(dst);
        i.srcA = static_cast<std::uint8_t>(a);
        i.immB = true;
        i.imm = imm;
        emit(i);
    }

    /** Materialize a 64KB-aligned 32-bit constant: MOV hi; SHL 16. */
    void
    materializeAligned(int dst, std::uint32_t value)
    {
        panic_if(value & 0xffffu, "constant must be 64KB aligned");
        movImm(dst, static_cast<int>(value >> 16));
        aluImm(Opcode::Shl, dst, dst, 16);
    }

    void
    load(Opcode op, int dst, int addrReg, int offset)
    {
        Instruction i;
        i.op = op;
        i.dst = static_cast<std::uint8_t>(dst);
        i.srcA = static_cast<std::uint8_t>(addrReg);
        i.imm = offset;
        emit(i);
    }

    void
    store(Opcode op, int addrReg, int dataReg, int offset)
    {
        Instruction i;
        i.op = op;
        i.srcA = static_cast<std::uint8_t>(addrReg);
        i.srcB = static_cast<std::uint8_t>(dataReg);
        i.imm = offset;
        emit(i);
    }

    void
    setp(int predIdx, CmpOp cmp, int a, int b)
    {
        Instruction i;
        i.op = Opcode::SetP;
        i.dst = static_cast<std::uint8_t>(predIdx);
        i.srcA = static_cast<std::uint8_t>(a);
        i.srcB = static_cast<std::uint8_t>(b);
        i.flags = static_cast<std::uint8_t>(cmp);
        emit(i);
    }

    void
    setpImm(int predIdx, CmpOp cmp, int a, int imm)
    {
        Instruction i;
        i.op = Opcode::SetP;
        i.dst = static_cast<std::uint8_t>(predIdx);
        i.srcA = static_cast<std::uint8_t>(a);
        i.immB = true;
        i.imm = imm;
        i.flags = static_cast<std::uint8_t>(cmp);
        emit(i);
    }

    /** Predicated branch; target/reconv patched later if needed. */
    int
    bra(int predIdx, bool negate, int target, int reconv)
    {
        Instruction i;
        i.op = Opcode::Bra;
        i.pred = static_cast<std::uint8_t>(predIdx);
        i.predNegate = negate;
        i.imm = target;
        i.reconv = reconv;
        return emit(i);
    }

  private:
    std::vector<Instruction> body_;
};

/** Round @p n up to the next power of two. */
std::uint32_t
nextPow2(std::uint32_t n)
{
    std::uint32_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

KernelBuilder::KernelBuilder(const AppSpec &spec) : spec_(spec)
{
    fatal_if(spec.blockThreads % 32 != 0,
             "blockThreads must be a warp multiple");
    fatal_if(spec.gridBlocks <= 0 || spec.loopIters <= 0,
             "launch geometry must be positive");
}

Program
KernelBuilder::build() const
{
    Program prog;
    prog.name = spec_.name;
    prog.launch.gridBlocks = spec_.gridBlocks;
    prog.launch.blockThreads = spec_.blockThreads;

    const int total_threads = prog.launch.totalThreads();
    const std::uint32_t elems_per_array = nextPow2(
        static_cast<std::uint32_t>(total_threads * spec_.loopIters));
    // Power-of-two slot sized to the arrays keeps every base 64KB
    // aligned (so a MOV+SHL pair materializes it) at any launch scale.
    const std::uint32_t arraySlotBytes =
        std::max(minArraySlotBytes, nextPow2(elems_per_array * 4));

    // One input array per global load (capped by the register
    // convention -- extra loads round-robin over the arrays), plus one
    // output array.
    const int num_inputs =
        std::clamp(spec_.mix.globalLoads, 1, 4);
    const int num_arrays = num_inputs + 1;

    Rng rng(spec_.seed());
    ValueModel values(spec_.values, rng.nextU64());

    // ---- memory images ----------------------------------------------
    const std::size_t words_per_slot = arraySlotBytes / 4;
    prog.global.assign(words_per_slot * static_cast<std::size_t>(num_arrays),
                       0);
    for (int a = 0; a < num_inputs; ++a) {
        std::vector<Word> img;
        values.fillImage(img, elems_per_array);
        std::copy(img.begin(), img.end(),
                  prog.global.begin()
                      + static_cast<std::ptrdiff_t>(words_per_slot
                                                    * static_cast<std::size_t>(a)));
    }
    // Output slot (last) stays zero: first-writes dominate.

    if (spec_.mix.constantLoads > 0) {
        values.fillImage(prog.constants, 2048);
    }
    if (spec_.mix.textureLoads > 0) {
        values.fillImage(prog.texture, elems_per_array);
    }
    if (spec_.mix.sharedOps > 0) {
        prog.sharedBytesPerBlock =
            static_cast<std::uint32_t>(spec_.blockThreads) * 8;
    }

    // ---- code generation --------------------------------------------
    Emitter e;

    // Prologue: global index and byte offset.
    e.s2r(1, SpecialReg::TidX);
    e.s2r(2, SpecialReg::CtaIdX);
    // NTidX is a launch constant; materialize it as an immediate (the
    // optimizer proves this fold on every suite kernel -- committed
    // here so the shipped programs carry the cheaper encoding).
    e.movImm(3, spec_.blockThreads);
    e.alu(Opcode::Mov, 4, 0, 1);     // r4 = tid
    e.alu(Opcode::IMad, 4, 2, 3);    // r4 += ctaid * ntid
    e.aluImm(Opcode::Shl, 5, 4, 2);  // r5 = r4 * 4 (byte offset)
    if (spec_.pattern == AccessPattern::Strided) {
        const int log_stride = std::max(
            1, 31 - leadingZeros(static_cast<Word>(spec_.stride)));
        e.aluImm(Opcode::Shl, 5, 5, log_stride);
        // Keep strided offsets inside the slot.
        e.aluImm(Opcode::And, 5, 5,
                 static_cast<int>((elems_per_array * 4 - 1) & 0x7fff));
    }

    // Array bases: inputs in r6..r9, output reuses r12 when needed.
    std::vector<int> base_regs;
    for (int a = 0; a < num_inputs && a < 4; ++a) {
        const int reg = 6 + a;
        e.materializeAligned(
            reg, isa::globalSegmentBase
                     + static_cast<std::uint32_t>(a) * arraySlotBytes);
        base_regs.push_back(reg);
    }
    const std::uint32_t out_base =
        isa::globalSegmentBase
        + static_cast<std::uint32_t>(num_inputs) * arraySlotBytes;

    // Hash constant for random access patterns (Knuth multiplicative).
    if (spec_.pattern == AccessPattern::Random)
        e.materializeAligned(15, 0x61c80000u);

    e.movImm(10, 0); // loop counter
    e.movImm(11, total_threads * 4); // per-iteration advance
    e.movImm(24, 0); // accumulator
    e.alu(Opcode::Mov, 25, 0, 4); // second accumulator seeded with index
    // Fixed per-thread output offset: every thread owns one output
    // word, so results are scheduler-independent (the streaming offset
    // r5 wraps and would alias across threads).
    e.aluImm(Opcode::Shl, 28, 4, 2);

    const int loop_start = e.next();

    // Random accesses are confined to a frontier-sized window (real
    // irregular kernels have working-set locality; unbounded randomness
    // would serialize the run on DRAM and say nothing about coding).
    const std::uint32_t random_window =
        std::min<std::uint32_t>(elems_per_array, 16384);

    // Resolve the per-lane address into r12 for input array @p a.
    // Random patterns hash 8-lane clusters (gather codes fetch
    // neighbour runs, not 32 unrelated lines) and add the lane offset
    // within the cluster, giving realistic memory divergence of a few
    // lines per warp access.
    auto emit_address = [&](int base_reg) {
        if (spec_.pattern == AccessPattern::Random) {
            const int log_clusters =
                static_cast<int>(31 - leadingZeros(random_window)) - 3;
            e.aluImm(Opcode::Shr, 12, 4, 3);   // cluster id
            e.alu(Opcode::IMul, 12, 12, 15);   // hash
            e.aluImm(Opcode::Shr, 12, 12, 32 - log_clusters);
            e.aluImm(Opcode::Shl, 12, 12, 5);  // 8 elems * 4B
            e.aluImm(Opcode::And, 13, 4, 7);   // lane within cluster
            e.aluImm(Opcode::Shl, 13, 13, 2);
            e.alu(Opcode::IAdd, 12, 12, 13);
            e.alu(Opcode::IAdd, 12, 12, base_reg);
        } else {
            e.alu(Opcode::IAdd, 12, 5, base_reg);
        }
    };

    // Global loads into r16..r23.
    int next_data = 16;
    std::vector<int> data_regs;
    for (int l = 0; l < spec_.mix.globalLoads; ++l) {
        emit_address(base_regs[static_cast<std::size_t>(
            l % static_cast<int>(base_regs.size()))]);
        const int dreg = next_data < 23 ? next_data++ : 23;
        e.load(Opcode::Ldg, dreg, 12, 0);
        data_regs.push_back(dreg);
    }

    // Constant / texture loads.
    for (int c = 0; c < spec_.mix.constantLoads; ++c) {
        e.aluImm(Opcode::And, 13, 4, 0x1ffc);
        const int dreg = next_data < 23 ? next_data++ : 23;
        e.load(Opcode::Ldc, dreg, 13, c * 4);
        data_regs.push_back(dreg);
    }
    for (int t = 0; t < spec_.mix.textureLoads; ++t) {
        e.aluImm(Opcode::And, 13, 5,
                 static_cast<int>((elems_per_array * 4 - 1) & 0x7ffc));
        const int dreg = next_data < 23 ? next_data++ : 23;
        e.load(Opcode::Ldt, dreg, 13, 0);
        data_regs.push_back(dreg);
    }

    // Which loaded registers the op mix actually consumes; any left
    // over are folded into the accumulator below so generated kernels
    // never carry dead loads (the static linter rejects them).
    const bool real_data = !data_regs.empty();
    std::vector<bool> data_used(data_regs.size(), false);

    if (data_regs.empty())
        data_regs.push_back(25);

    // Shared-memory staging: store a datum, barrier, load a rotated
    // one. A trailing barrier closes the classic produce/consume window
    // so the next iteration's stores cannot race this iteration's loads
    // (results must not depend on warp scheduling).
    if (spec_.mix.sharedOps > 0) {
        e.aluImm(Opcode::Shl, 14, 1, 2); // smem addr = tid * 4
        for (int s = 0; s < spec_.mix.sharedOps; ++s) {
            const auto di = static_cast<std::size_t>(
                s % static_cast<int>(data_regs.size()));
            if (di < data_used.size())
                data_used[di] = true;
            e.store(Opcode::Sts, 14, data_regs[di], 0);
            Instruction barrier;
            barrier.op = Opcode::Bar;
            e.emit(barrier);
            e.load(Opcode::Lds, 26, 14, 4);
            e.alu(Opcode::Xor, 25, 25, 26);
            e.emit(barrier);
        }
    }

    // Arithmetic chain.
    for (int f = 0; f < spec_.mix.fpOps; ++f) {
        const auto ia = static_cast<std::size_t>(
            f % static_cast<int>(data_regs.size()));
        const auto ib = static_cast<std::size_t>(
            (f + 1) % static_cast<int>(data_regs.size()));
        const int a = data_regs[ia];
        const int b = data_regs[ib];
        switch (f % 3) {
          case 0:
            if (ia < data_used.size())
                data_used[ia] = true;
            if (ib < data_used.size())
                data_used[ib] = true;
            e.alu(Opcode::Ffma, 24, a, b);
            break;
          case 1:
            if (ia < data_used.size())
                data_used[ia] = true;
            e.alu(Opcode::Fadd, 24, 24, a);
            break;
          default:
            if (ib < data_used.size())
                data_used[ib] = true;
            e.alu(Opcode::Fmul, 24, 24, b);
            break;
        }
    }
    for (int k = 0; k < spec_.mix.intOps; ++k) {
        const auto ik = static_cast<std::size_t>(
            k % static_cast<int>(data_regs.size()));
        if (ik < data_used.size())
            data_used[ik] = true;
        const int a = data_regs[ik];
        switch (k % 4) {
          case 0:
            e.alu(Opcode::IAdd, 25, 25, a);
            break;
          case 1:
            e.alu(Opcode::Xor, 25, 25, a);
            break;
          case 2:
            e.aluImm(Opcode::Shr, 27, a, 3);
            e.alu(Opcode::IAdd, 25, 25, 27);
            break;
          default:
            e.alu(Opcode::Max, 25, 25, a);
            break;
        }
    }

    // Fold loads the op mix skipped into the integer accumulator:
    // every loaded value must feed the result.
    if (real_data) {
        for (std::size_t d = 0; d < data_used.size(); ++d) {
            if (!data_used[d])
                e.alu(Opcode::Xor, 25, 25, data_regs[d]);
        }
    }

    // Data-dependent divergence: lanes with odd data skip extra work.
    if (rng.nextBool(std::min(1.0, spec_.divergenceProb * 2.0))) {
        const int dreg = data_regs[0];
        e.aluImm(Opcode::And, 27, dreg, 1);
        e.setpImm(1, CmpOp::Ne, 27, 0);
        const int bra_idx = e.bra(1, false, 0, 0);
        // Extra (skipped) work.
        e.alu(Opcode::Ffma, 24, 24, dreg);
        e.alu(Opcode::IAdd, 25, 25, dreg);
        const int join = e.next();
        e.at(bra_idx).imm = join;
        e.at(bra_idx).reconv = join;
    }

    // Stores to the output array.
    // Each store lands in its own thread-private slot: slot s of the
    // output array is offset by s grid-widths (r11 = grid bytes).
    const int result_regs[2] = {24, 25};
    e.materializeAligned(13, out_base);
    e.alu(Opcode::IAdd, 13, 13, 28);
    for (int s = 0; s < std::max(1, spec_.mix.globalStores); ++s) {
        if (s > 0)
            e.alu(Opcode::IAdd, 13, 13, 11);
        e.store(Opcode::Stg, 13, result_regs[s % 2], 0);
    }

    // Loop control: advance offset, test, branch back (warp-uniform).
    e.alu(Opcode::IAdd, 5, 5, 11);
    e.aluImm(Opcode::And, 5, 5,
             static_cast<int>((elems_per_array * 4 - 1) & 0x7ffc));
    e.aluImm(Opcode::IAdd, 10, 10, 1);
    e.setpImm(2, CmpOp::Lt, 10, spec_.loopIters);
    const int back = e.bra(2, false, loop_start, 0);
    e.at(back).reconv = e.next();

    Instruction exit;
    exit.op = Opcode::Exit;
    e.emit(exit);

    prog.body = e.take();
    return prog;
}

isa::Program
buildProgram(const AppSpec &spec)
{
    return KernelBuilder(spec).build();
}

} // namespace bvf::workload
