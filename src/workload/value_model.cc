/**
 * @file
 * Value-model implementation.
 */

#include "workload/value_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace bvf::workload
{

ValueModel::ValueModel(const ValueProfile &profile, std::uint64_t seed)
    : profile_(profile), rng_(seed)
{
    fatal_if(profile.pivotCentre < 0 || profile.pivotCentre >= warpWidth,
             "pivot centre %d outside a warp", profile.pivotCentre);
}

Word
ValueModel::narrowInt()
{
    // Magnitude with a geometric number of effective bits: most values
    // are narrow (over-provisioned types, indices, counters, flags).
    const int bits = 1 + rng_.nextGeometric(profile_.narrowGeomP,
                                            profile_.maxEffectiveBits - 1);
    Word magnitude = static_cast<Word>(
        rng_.nextBounded(Word64(1) << bits));
    if (magnitude == 0)
        magnitude = 1;
    if (rng_.nextBool(profile_.negativeProb))
        return static_cast<Word>(-static_cast<std::int32_t>(magnitude));
    return magnitude;
}

Word
ValueModel::narrowFloat()
{
    // fp32 values with modest exponent spread and a narrow mantissa:
    // data converted from integers or normalized sensor ranges carries
    // few significant bits.
    const int exp_offset = static_cast<int>(
        std::lround(rng_.nextGaussian() * profile_.floatExponentSpread));
    const int exponent = 127 + std::clamp(exp_offset, -30, 30);
    const int mant_bits = rng_.nextGeometric(0.05, 23);
    const Word mantissa = static_cast<Word>(
        rng_.nextBounded(Word64(1) << mant_bits))
        << (23 - mant_bits);
    const Word sign = rng_.nextBool(profile_.negativeProb)
                          ? 0x80000000u : 0u;
    return sign | (static_cast<Word>(exponent) << 23) | mantissa;
}

Word
ValueModel::scalar()
{
    if (rng_.nextBool(profile_.zeroValueProb))
        return 0;
    if (rng_.nextBool(profile_.floatFraction))
        return narrowFloat();
    return narrowInt();
}

double
ValueModel::laneWeight(int lane) const
{
    // Deltas grow with distance from the stability centre; lane 0 (and
    // to a lesser degree lane 31) carries boundary work.
    const double dist = std::abs(lane - profile_.pivotCentre)
                        / static_cast<double>(warpWidth - 1);
    return 1.0 + profile_.edgePenalty * 4.0 * dist;
}

std::array<Word, warpWidth>
ValueModel::tile()
{
    std::array<Word, warpWidth> out;
    const Word base = scalar();
    for (int lane = 0; lane < warpWidth; ++lane) {
        if (rng_.nextBool(profile_.laneOutlierProb)) {
            // Divergent lane: unrelated value.
            out[static_cast<std::size_t>(lane)] = scalar();
            continue;
        }
        if (base == 0) {
            // Sparse regions are sparse across the whole tile: zero
            // pages, zero-initialized buffers and padded halos produce
            // runs of exact zeros, which is what makes the NV coder's
            // all-1 words stable across consecutive NoC flits.
            out[static_cast<std::size_t>(lane)] =
                rng_.nextBool(0.12) ? scalar() : 0;
            continue;
        }
        if (rng_.nextBool(profile_.laneEqualProb)) {
            // Exact value repetition: XNOR against the pivot pins these
            // words at all-1s, independent of what the base value does
            // from tile to tile.
            out[static_cast<std::size_t>(lane)] = base;
            continue;
        }
        // Perturb the base in its low bits; width scaled by lane weight.
        const double w = laneWeight(lane);
        const int delta_bits = std::min<int>(
            profile_.maxDeltaBits,
            static_cast<int>(std::lround(
                w * (1 + rng_.nextGeometric(profile_.laneDeltaP,
                                            profile_.maxDeltaBits - 1)))));
        const Word delta = static_cast<Word>(
            rng_.nextBounded(Word64(1) << delta_bits));
        out[static_cast<std::size_t>(lane)] = base ^ delta;
    }
    return out;
}

void
ValueModel::fillImage(std::vector<Word> &out, std::size_t words)
{
    out.clear();
    out.reserve(words);
    while (out.size() + warpWidth <= words) {
        const auto t = tile();
        out.insert(out.end(), t.begin(), t.end());
    }
    while (out.size() < words)
        out.push_back(scalar());
}

} // namespace bvf::workload
