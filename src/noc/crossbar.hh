/**
 * @file
 * SM <-> L2 crossbar interconnect.
 *
 * Two unidirectional crossbars connect every SM to every L2 bank: a
 * request network (SM output ports arbitrating for bank input ports)
 * and a reply network (bank outputs to SM inputs). Each physical link
 * direction per endpoint pair is a channel; consecutive flits on a
 * channel are what toggle the wires, so channels are the unit of
 * toggle accounting (via AccessSink::onNocFlit).
 *
 * Arbitration is per destination port, round-robin among contending
 * sources, one flit per cycle per port -- a standard iSLIP-lite model,
 * detailed enough to change flit orderings under different warp
 * schedulers (the paper's Figure 21 sensitivity).
 */

#ifndef BVF_NOC_CROSSBAR_HH
#define BVF_NOC_CROSSBAR_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "noc/flit.hh"
#include "sram/access_sink.hh"

namespace bvf::noc
{

/** Statistics for the whole interconnect. */
struct NocStats
{
    std::uint64_t packets = 0;
    std::uint64_t flits = 0;
    std::uint64_t totalLatency = 0; //!< sum of packet transit cycles
};

/**
 * The two-sided crossbar. Packets are injected on either side and
 * delivered to a callback after traversal.
 */
class Crossbar
{
  public:
    using DeliverFn = std::function<void(const Packet &)>;

    /**
     * @param numSms SM-side ports
     * @param numBanks L2-side ports
     * @param sink accounting sink for per-channel flit traffic
     */
    Crossbar(int numSms, int numBanks, sram::AccessSink &sink);

    /** Inject a packet travelling SM -> bank. */
    void injectRequest(Packet pkt);

    /** Inject a packet travelling bank -> SM. */
    void injectReply(Packet pkt);

    /** Deliver callbacks (set once before simulation). */
    void setRequestHandler(DeliverFn fn) { deliverRequest_ = std::move(fn); }
    void setReplyHandler(DeliverFn fn) { deliverReply_ = std::move(fn); }

    /** Advance one interconnect cycle. */
    void step(std::uint64_t cycle);

    /** Any traffic still in flight? */
    bool busy() const;

    const NocStats &stats() const { return stats_; }

    /** Stable channel id for a request-network link SM->bank. */
    int requestChannel(int sm, int bank) const;

    /** Stable channel id for a reply-network link bank->SM. */
    int replyChannel(int bank, int sm) const;

    /** Total number of channels (both networks). */
    int numChannels() const { return 2 * numSms_ * numBanks_; }

  private:
    struct InFlight
    {
        Packet pkt;
        int flitsSent = 0;
    };

    /** One side of the crossbar (request or reply network). */
    struct Network
    {
        // Per source port: queue of packets awaiting transmission.
        std::vector<std::deque<InFlight>> sourceQueues;
        // Per destination port: round-robin pointer over sources.
        std::vector<int> rrPointer;
    };

    void stepNetwork(Network &net, bool isRequest, std::uint64_t cycle);

    int numSms_;
    int numBanks_;
    sram::AccessSink &sink_;
    Network request_;
    Network reply_;
    DeliverFn deliverRequest_;
    DeliverFn deliverReply_;
    NocStats stats_;
};

} // namespace bvf::noc

#endif // BVF_NOC_CROSSBAR_HH
