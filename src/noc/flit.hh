/**
 * @file
 * Flits and packets on the on-chip interconnect.
 *
 * The NoC moves memory transactions between SMs and L2 banks. Packets
 * are segmented into fixed 32-byte flits (Table 3 of the paper); energy
 * on a channel is proportional to the number of wire toggles between
 * consecutive flits, which is what the accounting layer measures per
 * scenario.
 */

#ifndef BVF_NOC_FLIT_HH
#define BVF_NOC_FLIT_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"

namespace bvf::noc
{

/** Flit payload size in bytes (paper Table 3). */
constexpr int flitBytes = 32;

/** Words per flit. */
constexpr int flitWords = flitBytes / 4;

/** Memory-transaction packet types. */
enum class PacketType : std::uint8_t
{
    ReadRequest,   //!< SM -> L2: address only
    ReadReply,     //!< L2 -> SM: full line data
    WriteRequest,  //!< SM -> L2: address + store data
    WriteAck,      //!< L2 -> SM: completion token
    InstrRequest,  //!< SM -> L2: ifetch miss
    InstrReply,    //!< L2 -> SM: instruction line
};

/** Is this packet part of the instruction stream? */
constexpr bool
isInstrPacket(PacketType t)
{
    return t == PacketType::InstrRequest || t == PacketType::InstrReply;
}

/** One NoC packet; segmented into flits at the channel. */
struct Packet
{
    PacketType type = PacketType::ReadRequest;
    int srcSm = 0;          //!< originating SM (or -1 from L2 side)
    int dstBank = 0;        //!< L2 bank
    std::uint32_t address = 0;
    std::vector<Word> payload; //!< line/store data (empty for requests)
    std::uint64_t requestId = 0; //!< matches replies to requests
    std::uint64_t issueCycle = 0;

    /** Number of flits this packet occupies on a channel. */
    int
    flitCount() const
    {
        // One header flit (type/address/control) plus payload flits.
        const int payload_flits =
            (static_cast<int>(payload.size()) + flitWords - 1) / flitWords;
        return 1 + payload_flits;
    }

    /**
     * Materialize flit @p idx as raw words for toggle accounting. The
     * header flit carries address and control bits; payload flits carry
     * data words (zero-padded tail).
     */
    std::vector<Word> flitPayload(int idx) const;
};

} // namespace bvf::noc

#endif // BVF_NOC_FLIT_HH
