/**
 * @file
 * Packet flit materialization.
 */

#include "noc/flit.hh"

#include "common/logging.hh"

namespace bvf::noc
{

std::vector<Word>
Packet::flitPayload(int idx) const
{
    panic_if(idx < 0 || idx >= flitCount(), "flit index out of range");
    std::vector<Word> words(flitWords, 0);
    if (idx == 0) {
        // Header: control word, address, ids. Remaining wires idle (0).
        words[0] = (static_cast<Word>(type) << 24)
                   | (static_cast<Word>(srcSm & 0xff) << 16)
                   | static_cast<Word>(dstBank & 0xffff);
        words[1] = address;
        words[2] = static_cast<Word>(requestId & 0xffffffffu);
        words[3] = static_cast<Word>(requestId >> 32);
        return words;
    }
    const std::size_t start =
        static_cast<std::size_t>(idx - 1) * flitWords;
    for (int w = 0; w < flitWords; ++w) {
        const std::size_t src = start + static_cast<std::size_t>(w);
        if (src < payload.size())
            words[static_cast<std::size_t>(w)] = payload[src];
    }
    return words;
}

} // namespace bvf::noc
