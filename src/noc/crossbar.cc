/**
 * @file
 * Crossbar implementation.
 */

#include "noc/crossbar.hh"

#include "common/logging.hh"

namespace bvf::noc
{

Crossbar::Crossbar(int numSms, int numBanks, sram::AccessSink &sink)
    : numSms_(numSms), numBanks_(numBanks), sink_(sink)
{
    fatal_if(numSms <= 0 || numBanks <= 0,
             "crossbar needs positive port counts");
    request_.sourceQueues.resize(static_cast<std::size_t>(numSms));
    request_.rrPointer.assign(static_cast<std::size_t>(numBanks), 0);
    reply_.sourceQueues.resize(static_cast<std::size_t>(numBanks));
    reply_.rrPointer.assign(static_cast<std::size_t>(numSms), 0);
}

int
Crossbar::requestChannel(int sm, int bank) const
{
    return sm * numBanks_ + bank;
}

int
Crossbar::replyChannel(int bank, int sm) const
{
    return numSms_ * numBanks_ + bank * numSms_ + sm;
}

void
Crossbar::injectRequest(Packet pkt)
{
    panic_if(pkt.srcSm < 0 || pkt.srcSm >= numSms_, "bad source SM");
    panic_if(pkt.dstBank < 0 || pkt.dstBank >= numBanks_, "bad bank");
    ++stats_.packets;
    request_.sourceQueues[static_cast<std::size_t>(pkt.srcSm)]
        .push_back(InFlight{std::move(pkt), 0});
}

void
Crossbar::injectReply(Packet pkt)
{
    panic_if(pkt.srcSm < 0 || pkt.srcSm >= numSms_, "bad destination SM");
    panic_if(pkt.dstBank < 0 || pkt.dstBank >= numBanks_, "bad bank");
    ++stats_.packets;
    reply_.sourceQueues[static_cast<std::size_t>(pkt.dstBank)]
        .push_back(InFlight{std::move(pkt), 0});
}

void
Crossbar::stepNetwork(Network &net, bool isRequest, std::uint64_t cycle)
{
    const int num_dst = isRequest ? numBanks_ : numSms_;
    const int num_src = static_cast<int>(net.sourceQueues.size());

    for (int dst = 0; dst < num_dst; ++dst) {
        // Round-robin over sources whose head packet targets this port.
        int &rr = net.rrPointer[static_cast<std::size_t>(dst)];
        for (int probe = 0; probe < num_src; ++probe) {
            const int src = (rr + probe) % num_src;
            auto &queue = net.sourceQueues[static_cast<std::size_t>(src)];
            if (queue.empty())
                continue;
            InFlight &head = queue.front();
            const int pkt_dst = isRequest ? head.pkt.dstBank
                                          : head.pkt.srcSm;
            if (pkt_dst != dst)
                continue;

            ++stats_.flits;
            ++head.flitsSent;

            if (head.flitsSent == head.pkt.flitCount()) {
                // Payload flits of a packet travel back to back on this
                // channel; report them as one block (header flits ride
                // the control wires and only cost per-flit energy).
                if (!head.pkt.payload.empty()) {
                    const int channel = isRequest
                                            ? requestChannel(src, dst)
                                            : replyChannel(src, dst);
                    sink_.onNocPacket(channel, head.pkt.payload,
                                      isInstrPacket(head.pkt.type),
                                      cycle);
                }
                stats_.totalLatency += cycle - head.pkt.issueCycle;
                Packet done = std::move(head.pkt);
                queue.pop_front();
                if (isRequest) {
                    panic_if(!deliverRequest_, "no request handler");
                    deliverRequest_(done);
                } else {
                    panic_if(!deliverReply_, "no reply handler");
                    deliverReply_(done);
                }
            }
            rr = (src + 1) % num_src;
            break; // one flit per destination port per cycle
        }
    }
}

void
Crossbar::step(std::uint64_t cycle)
{
    stepNetwork(request_, true, cycle);
    stepNetwork(reply_, false, cycle);
}

bool
Crossbar::busy() const
{
    for (const auto &q : request_.sourceQueues) {
        if (!q.empty())
            return true;
    }
    for (const auto &q : reply_.sourceQueues) {
        if (!q.empty())
            return true;
    }
    return false;
}

} // namespace bvf::noc
