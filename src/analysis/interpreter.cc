#include "analysis/interpreter.hh"

#include <algorithm>
#include <deque>

namespace bvf::analysis
{

using isa::Instruction;
using isa::Opcode;

namespace
{

// Malformed programs may carry register/predicate numbers past the
// architectural limits; reduce them the way a hardware decoder's field
// width would so the analysis stays memory-safe (the linter flags the
// encoding separately).
std::size_t
regIndex(std::uint8_t r)
{
    return r % isa::numRegisters;
}

std::size_t
predIndex(std::uint8_t p)
{
    return p % isa::numPredicates;
}

/** Interval-join count per pc before the intervals widen to top. */
constexpr int widenThreshold = 256;

/** Outer load/store iterations before memory summaries widen to top. */
constexpr int memoryIterations = 8;

AbsState
initialState()
{
    AbsState s;
    s.regs.fill(AbsValue::constant(0));
    s.preds.fill(PredValue{Bool3::False, Uniformity::Uniform});
    s.regWritten = 0;
    s.predWritten = 0;
    s.reachable = true;
    return s;
}

bool
sameState(const AbsState &a, const AbsState &b)
{
    return a.reachable == b.reachable && a.regWritten == b.regWritten
           && a.predWritten == b.predWritten && a.regs == b.regs
           && a.preds == b.preds;
}

/**
 * Join @p next into @p into. With @p doWiden, any component still
 * growing is widened per the domain's own rule (see product.hh) so
 * loops terminate; finite-height components pass through.
 */
AbsState
joinState(const AbsState &into, const AbsState &next, bool doWiden)
{
    AbsState r;
    r.reachable = true;
    r.regWritten = into.regWritten & next.regWritten;
    r.predWritten = into.predWritten & next.predWritten;
    for (int i = 0; i < isa::numRegisters; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        AbsValue j = join(into.regs[idx], next.regs[idx]);
        if (doWiden)
            j = widen(into.regs[idx], j);
        r.regs[idx] = j;
    }
    for (int i = 0; i < isa::numPredicates; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        r.preds[idx] = join(into.preds[idx], next.preds[idx]);
    }
    return r;
}

KnownBits
joinImage(const std::vector<Word> &image)
{
    KnownBits kb = KnownBits::constant(image.empty() ? 0 : image.front());
    for (Word w : image)
        kb = join(kb, KnownBits::constant(w));
    return kb;
}

/** SignedInterval transfer; top where the reduction from kb does better. */
SignedInterval
siAluResult(const Instruction &instr, const AbsState &s)
{
    const SignedInterval a = s.regs[regIndex(instr.srcA)].si();
    const SignedInterval b =
        instr.immB ? SignedInterval::constant(static_cast<Word>(instr.imm))
                   : s.regs[regIndex(instr.srcB)].si();
    switch (instr.op) {
      case Opcode::IAdd:
        return siAdd(a, b);
      case Opcode::ISub:
        return siSub(a, b);
      case Opcode::IMul:
        return siMul(a, b);
      case Opcode::IMad:
        return siAdd(siMul(a, b), s.regs[regIndex(instr.dst)].si());
      case Opcode::Mov:
        return b;
      case Opcode::Min:
        return siMinSigned(a, b);
      case Opcode::Max:
        return siMaxSigned(a, b);
      default:
        return SignedInterval::top();
    }
}

/** LaneAffine transfer over the full product state. */
LaneAffine
laAluResult(const Instruction &instr, const AbsState &s)
{
    const LaneAffine a = s.regs[regIndex(instr.srcA)].affine();
    const LaneAffine b =
        instr.immB ? LaneAffine::uniform()
                   : s.regs[regIndex(instr.srcB)].affine();
    const KnownBits &akb = s.regs[regIndex(instr.srcA)].kb();
    const KnownBits bkb =
        instr.immB ? KnownBits::constant(static_cast<Word>(instr.imm))
                   : s.regs[regIndex(instr.srcB)].kb();

    // (base_a + s_a*i) * c is affine again only when c is the same
    // known constant in every lane; a merely *uniform* factor keeps a
    // uniform product but an unknown stride otherwise.
    auto mul = [&]() -> LaneAffine {
        if (a.isUniform() && b.isUniform())
            return LaneAffine::uniform();
        if (a.known && b.isUniform() && bkb.isConstant())
            return laScale(a, bkb.lo);
        if (b.known && a.isUniform() && akb.isConstant())
            return laScale(b, akb.lo);
        return LaneAffine::top();
    };

    switch (instr.op) {
      case Opcode::IAdd:
        return laAdd(a, b);
      case Opcode::ISub:
        return laSub(a, b);
      case Opcode::IMul:
        return mul();
      case Opcode::IMad:
        return laAdd(mul(), s.regs[regIndex(instr.dst)].affine());
      case Opcode::Mov:
        return b;
      case Opcode::Shl:
        if (a.known && b.isUniform() && bkb.isConstant())
            return laScale(a, Word(1) << (bkb.lo & 31));
        if (a.isUniform() && b.isUniform())
            return LaneAffine::uniform();
        return LaneAffine::top();
      case Opcode::S2R:
        switch (static_cast<isa::SpecialReg>(instr.flags)) {
          case isa::SpecialReg::LaneId:
          case isa::SpecialReg::TidX:
            // tid = warp base + lane, so both are stride 1 in the lane.
            return LaneAffine::strided(1);
          case isa::SpecialReg::WarpId:
          case isa::SpecialReg::CtaIdX:
          case isa::SpecialReg::NTidX:
          case isa::SpecialReg::GridDimX:
            return LaneAffine::uniform();
        }
        return LaneAffine::top();
      default: {
        // Every remaining data-path op computes each lane as a pure
        // function of that lane's operands, so uniform inputs give a
        // uniform output -- floats included.
        const bool uniA = !isa::readsSrcA(instr.op) || a.isUniform();
        const bool uniB =
            !isa::readsSrcB(instr.op) || instr.immB || b.isUniform();
        const bool uniD = !isa::readsDst(instr.op)
                          || s.regs[regIndex(instr.dst)].affine().isUniform();
        return uniA && uniB && uniD ? LaneAffine::uniform()
                                    : LaneAffine::top();
      }
    }
}

struct Successor
{
    int pc;
    AbsState state;
};

/**
 * One abstract instruction step: returns the successor program points
 * with their OUT states and reports stored values / written results to
 * the caller (for the memory fixpoint and regAnywhere accumulation).
 */
class Stepper
{
  public:
    Stepper(const isa::Program &program, const MemorySummaries &memory,
            const std::vector<std::uint8_t> &divergentRegion)
        : program_(program), memory_(memory),
          divergentRegion_(divergentRegion)
    {
    }

    /** Joined abstraction of every value stored by Stg this pass. */
    const KnownBits &storedGlobal() const { return storedGlobal_; }
    bool anyGlobalStore() const { return anyGlobalStore_; }

    /** Joined abstraction of every value stored by Sts this pass. */
    const KnownBits &storedShared() const { return storedShared_; }
    bool anySharedStore() const { return anySharedStore_; }

    /** Join of every register-write result, indexed by register. */
    const std::array<KnownBits, isa::numRegisters> &written() const
    {
        return written_;
    }
    std::uint64_t writtenMask() const { return writtenMask_; }

    std::vector<Successor> step(int pc, const AbsState &in);

  private:
    void
    noteWrite(int reg, const KnownBits &value)
    {
        const auto idx = static_cast<std::size_t>(reg);
        written_[idx] = (writtenMask_ >> reg) & 1u
                            ? join(written_[idx], value)
                            : value;
        writtenMask_ |= std::uint64_t(1) << reg;
    }

    const isa::Program &program_;
    const MemorySummaries &memory_;
    const std::vector<std::uint8_t> &divergentRegion_;
    KnownBits storedGlobal_;
    KnownBits storedShared_;
    bool anyGlobalStore_ = false;
    bool anySharedStore_ = false;
    std::array<KnownBits, isa::numRegisters> written_{};
    std::uint64_t writtenMask_ = 0;
};

std::vector<Successor>
Stepper::step(int pc, const AbsState &in)
{
    const Instruction &instr = program_.body[static_cast<std::size_t>(pc)];
    const Bool3 guard = guardValue(in, instr);

    switch (instr.op) {
      case Opcode::Exit:
        // The SM retires the warp regardless of the guard predicate.
        return {};
      case Opcode::Bar:
      case Opcode::Nop:
        return {{pc + 1, in}};
      case Opcode::Bra: {
        std::vector<Successor> succs;
        if (guard != Bool3::False)
            succs.push_back({instr.imm, in});
        if (guard != Bool3::True)
            succs.push_back({pc + 1, in});
        return succs;
      }
      default:
        break;
    }

    if (guard == Bool3::False)
        return {{pc + 1, in}};

    AbsState out = in;
    const bool certain = guard == Bool3::True;

    // Whole-warp write: when this instruction executes at all, every
    // lane of the warp executes it. Requires a lane-uniform guard and a
    // pc no divergent branch region covers; only such writes may keep
    // lane-affine facts or predicate uniformity.
    const bool wholeWarp =
        !divergentRegion_[static_cast<std::size_t>(pc)]
        && guardUniformity(in, instr) == Uniformity::Uniform;

    if (instr.op == Opcode::SetP) {
        const isa::CmpOp cmp = static_cast<isa::CmpOp>(instr.flags);
        Bool3 v = kbCompare(cmp, operandA(in, instr), operandB(in, instr));
        if (v == Bool3::Unknown) {
            const SignedInterval &sa = in.regs[regIndex(instr.srcA)].si();
            const SignedInterval sb =
                instr.immB
                    ? SignedInterval::constant(static_cast<Word>(instr.imm))
                    : in.regs[regIndex(instr.srcB)].si();
            v = siCompare(cmp, sa, sb);
        }
        const bool lanesAgree =
            in.regs[regIndex(instr.srcA)].affine().isUniform()
            && (instr.immB
                || in.regs[regIndex(instr.srcB)].affine().isUniform());
        const Uniformity uni = wholeWarp && lanesAgree
                                   ? Uniformity::Uniform
                                   : Uniformity::MayDiverge;
        const std::size_t idx = predIndex(instr.dst);
        if (certain) {
            out.preds[idx] = {v, uni};
            out.predWritten |= static_cast<std::uint8_t>(1u << idx);
        } else {
            out.preds[idx].value = join(in.preds[idx].value, v);
            out.preds[idx].uni = wholeWarp ? join(in.preds[idx].uni, uni)
                                           : Uniformity::MayDiverge;
        }
        return {{pc + 1, out}};
    }

    if (isa::isStoreOp(instr.op)) {
        const KnownBits value = in.regs[regIndex(instr.srcB)].kb();
        if (instr.op == Opcode::Stg) {
            storedGlobal_ = anyGlobalStore_ ? join(storedGlobal_, value)
                                            : value;
            anyGlobalStore_ = true;
        } else {
            storedShared_ = anySharedStore_ ? join(storedShared_, value)
                                            : value;
            anySharedStore_ = true;
        }
        return {{pc + 1, out}};
    }

    // Register-writing instructions (ALU ops and loads).
    AbsValue result = isa::isLoadOp(instr.op)
                          ? loadValue(instr, in, memory_)
                          : aluValue(instr, in, program_.launch);
    if (!wholeWarp) {
        // A partial-mask write leaves stale values in the sat-out
        // lanes; the vector is a mixture with no affine structure.
        result.affine() = LaneAffine::top();
    }
    const std::size_t idx = regIndex(instr.dst);
    out.regs[idx] = certain ? result : join(in.regs[idx], result);
    if (certain)
        out.regWritten |= std::uint64_t(1) << idx;
    noteWrite(static_cast<int>(idx), out.regs[idx].kb());
    return {{pc + 1, out}};
}

/**
 * Mark every pc a warp might execute with a partial mask after the
 * divergent branch at @p entry's arm: the syntactic CFG closure from
 * the arm entry, stopping (exclusively) at the reconvergence point,
 * where Warp::reconvergeIfNeeded restores the full mask before issue.
 * Out-of-range targets simply end the walk (the SM never issues them).
 * Returns whether any new pc was marked.
 */
bool
contaminate(std::vector<std::uint8_t> &region, const isa::Program &program,
            int entry, int reconv)
{
    const int size = static_cast<int>(program.body.size());
    bool grew = false;
    std::vector<int> stack{entry};
    while (!stack.empty()) {
        const int pc = stack.back();
        stack.pop_back();
        if (pc < 0 || pc >= size || pc == reconv)
            continue;
        auto &mark = region[static_cast<std::size_t>(pc)];
        if (mark)
            continue;
        mark = 1;
        grew = true;
        const Instruction &instr = program.body[static_cast<std::size_t>(pc)];
        if (instr.op == Opcode::Exit)
            continue;
        if (instr.op == Opcode::Bra) {
            stack.push_back(instr.imm);
            // An unconditional branch never falls through.
            if (instr.pred != isa::predTrue || instr.predNegate)
                stack.push_back(pc + 1);
            continue;
        }
        stack.push_back(pc + 1);
    }
    return grew;
}

} // namespace

AbsValue
reduceValue(AbsValue v)
{
    KnownBits &kb = v.kb();
    SignedInterval &si = v.si();
    if (kb.empty())
        return v;

    // kb -> si: the unsigned interval maps monotonically onto signed
    // values whenever it stays on one side of the 2^31 wrap point.
    if (kb.hi <= 0x7fffffffu || kb.lo >= 0x80000000u) {
        const SignedInterval fromKb{static_cast<std::int32_t>(kb.lo),
                                    static_cast<std::int32_t>(kb.hi)};
        const SignedInterval meet{std::max(si.slo, fromKb.slo),
                                  std::min(si.shi, fromKb.shi)};
        if (meet.slo <= meet.shi)
            si = meet;
    }

    // si -> kb: same one-sidedness condition, in signed terms.
    Word ulo = 0;
    Word uhi = 0;
    bool haveU = false;
    if (si.slo >= 0) {
        ulo = static_cast<Word>(si.slo);
        uhi = static_cast<Word>(si.shi);
        haveU = true;
    } else if (si.shi < 0) {
        ulo = static_cast<Word>(si.slo);
        uhi = static_cast<Word>(si.shi);
        haveU = true;
    }
    if (haveU) {
        KnownBits refined = kb;
        refined.lo = std::max(kb.lo, ulo);
        refined.hi = std::min(kb.hi, uhi);
        refined = refined.normalized();
        if (!refined.empty())
            kb = refined;
    }
    return v;
}

Bool3
guardValue(const AbsState &s, const Instruction &instr)
{
    if (instr.pred == isa::predTrue && !instr.predNegate)
        return Bool3::True;
    const Bool3 v = s.preds[instr.pred % isa::numPredicates].value;
    return instr.predNegate ? not3(v) : v;
}

Uniformity
guardUniformity(const AbsState &s, const Instruction &instr)
{
    if (instr.pred == isa::predTrue && !instr.predNegate)
        return Uniformity::Uniform;
    // Negation is lanewise; it cannot create divergence.
    return s.preds[instr.pred % isa::numPredicates].uni;
}

KnownBits
operandA(const AbsState &s, const Instruction &instr)
{
    return s.regs[instr.srcA % isa::numRegisters].kb();
}

KnownBits
operandB(const AbsState &s, const Instruction &instr)
{
    if (instr.immB)
        return KnownBits::constant(static_cast<Word>(instr.imm));
    return s.regs[instr.srcB % isa::numRegisters].kb();
}

AbsValue
valueA(const AbsState &s, const Instruction &instr)
{
    return s.regs[instr.srcA % isa::numRegisters];
}

AbsValue
valueB(const AbsState &s, const Instruction &instr)
{
    if (instr.immB)
        return AbsValue::constant(static_cast<Word>(instr.imm));
    return s.regs[instr.srcB % isa::numRegisters];
}

KnownBits
aluResult(const Instruction &instr, const AbsState &s,
          const isa::LaunchDims &launch)
{
    const KnownBits a = operandA(s, instr);
    const KnownBits b = operandB(s, instr);
    switch (instr.op) {
      case Opcode::IAdd:
        return kbAdd(a, b);
      case Opcode::ISub:
        return kbSub(a, b);
      case Opcode::IMul:
        return kbMul(a, b);
      case Opcode::IMad:
        return kbAdd(kbMul(a, b),
                     s.regs[instr.dst % isa::numRegisters].kb());
      case Opcode::Mov:
        return b;
      case Opcode::Shl:
        return kbShl(a, b);
      case Opcode::Shr:
        return kbShr(a, b);
      case Opcode::And:
        return kbAnd(a, b);
      case Opcode::Or:
        return kbOr(a, b);
      case Opcode::Xor:
        return kbXor(a, b);
      case Opcode::Clz:
        return kbClz(a);
      case Opcode::Min:
        return kbMinSigned(a, b);
      case Opcode::Max:
        return kbMaxSigned(a, b);
      case Opcode::S2R:
        switch (static_cast<isa::SpecialReg>(instr.flags)) {
          case isa::SpecialReg::LaneId:
            return KnownBits::range(0, 31);
          case isa::SpecialReg::WarpId:
            return KnownBits::range(
                0, static_cast<Word>(launch.warpsPerBlock() - 1));
          case isa::SpecialReg::TidX:
            return KnownBits::range(
                0, static_cast<Word>(launch.blockThreads - 1));
          case isa::SpecialReg::CtaIdX:
            return KnownBits::range(
                0, static_cast<Word>(launch.gridBlocks - 1));
          case isa::SpecialReg::NTidX:
            return KnownBits::constant(
                static_cast<Word>(launch.blockThreads));
          case isa::SpecialReg::GridDimX:
            return KnownBits::constant(
                static_cast<Word>(launch.gridBlocks));
        }
        return KnownBits::top();
      case Opcode::Ffma:
      case Opcode::Fadd:
      case Opcode::Fmul:
      case Opcode::I2F:
      case Opcode::F2I:
      default:
        // Floating-point bit patterns are not tracked.
        return KnownBits::top();
    }
}

AbsValue
aluValue(const Instruction &instr, const AbsState &s,
         const isa::LaunchDims &launch)
{
    AbsValue v;
    v.kb() = aluResult(instr, s, launch);
    v.si() = siAluResult(instr, s);
    v.affine() = laAluResult(instr, s);
    return reduceValue(v);
}

KnownBits
loadResult(const Instruction &instr, const MemorySummaries &memory)
{
    switch (instr.op) {
      case Opcode::Ldg:
        return memory.global;
      case Opcode::Lds:
        return memory.shared;
      case Opcode::Ldc:
        return memory.constant;
      case Opcode::Ldt:
        return memory.texture;
      default:
        return KnownBits::top();
    }
}

AbsValue
loadValue(const Instruction &instr, const AbsState &s,
          const MemorySummaries &memory)
{
    AbsValue v;
    v.kb() = loadResult(instr, memory);
    v.si() = SignedInterval::top();
    // A lane-uniform address reads one location; memory does not change
    // during the access, so every lane receives the same word.
    v.affine() = s.regs[instr.srcA % isa::numRegisters].affine().isUniform()
                     ? LaneAffine::uniform()
                     : LaneAffine::top();
    return reduceValue(v);
}

KnownBits
memoryAddress(const AbsState &s, const Instruction &instr)
{
    return kbAdd(s.regs[instr.srcA % isa::numRegisters].kb(),
                 KnownBits::constant(static_cast<Word>(instr.imm)));
}

AnalysisResult
analyzeProgram(const isa::Program &program)
{
    AnalysisResult result;
    const int size = static_cast<int>(program.body.size());
    result.in.assign(static_cast<std::size_t>(size), AbsState{});
    result.regAnywhere.fill(KnownBits::constant(0));
    result.divergentRegion.assign(static_cast<std::size_t>(size), 0);
    if (size == 0) {
        result.fellOffEnd = true;
        return result;
    }

    // Summaries without store feedback: image words plus the zero every
    // out-of-range or uninitialized location yields.
    MemorySummaries base;
    base.global = join(joinImage(program.global), KnownBits::constant(0));
    base.shared = KnownBits::constant(0);
    base.constant = joinImage(program.constants);
    base.texture = joinImage(program.texture);

    // Outer divergence fixpoint: run the whole analysis, find branches
    // that can split a warp, grow the divergent-region set, repeat. The
    // set only grows (and only weakens lane facts, never per-thread
    // ones), so the loop terminates within |body| rounds.
    std::vector<std::uint8_t> region(static_cast<std::size_t>(size), 0);
    for (;;) {
        result.regAnywhere.fill(KnownBits::constant(0));
        MemorySummaries memory = base;
        for (int iter = 0;; ++iter) {
            Stepper stepper(program, memory, region);

            for (AbsState &s : result.in)
                s = AbsState{};
            result.in[0] = initialState();
            result.fellOffEnd = false;

            std::vector<int> updates(static_cast<std::size_t>(size), 0);
            std::deque<int> worklist{0};
            std::vector<bool> queued(static_cast<std::size_t>(size), false);
            queued[0] = true;
            while (!worklist.empty()) {
                const int pc = worklist.front();
                worklist.pop_front();
                queued[static_cast<std::size_t>(pc)] = false;

                const AbsState in = result.in[static_cast<std::size_t>(pc)];
                for (const Successor &succ : stepper.step(pc, in)) {
                    if (succ.pc < 0 || succ.pc >= size) {
                        result.fellOffEnd = true;
                        continue;
                    }
                    const auto sidx = static_cast<std::size_t>(succ.pc);
                    AbsState &old = result.in[sidx];
                    AbsState merged =
                        old.reachable
                            ? joinState(old, succ.state,
                                        updates[sidx] >= widenThreshold)
                            : succ.state;
                    merged.reachable = true;
                    if (!old.reachable || !sameState(merged, old)) {
                        old = merged;
                        ++updates[sidx];
                        if (!queued[sidx]) {
                            queued[sidx] = true;
                            worklist.push_back(succ.pc);
                        }
                    }
                }
            }

            // Feed stored values back into the load summaries.
            MemorySummaries next = base;
            if (stepper.anyGlobalStore())
                next.global = join(next.global, stepper.storedGlobal());
            if (stepper.anySharedStore())
                next.shared = join(next.shared, stepper.storedShared());
            // Monotone ascent so the outer loop cannot oscillate.
            next.global = join(next.global, memory.global);
            next.shared = join(next.shared, memory.shared);

            if (next == memory) {
                for (int r = 0; r < isa::numRegisters; ++r) {
                    const auto idx = static_cast<std::size_t>(r);
                    for (const AbsState &s : result.in) {
                        if (s.reachable)
                            result.regAnywhere[idx] =
                                join(result.regAnywhere[idx],
                                     s.regs[idx].kb());
                    }
                    if ((stepper.writtenMask() >> r) & 1u) {
                        result.regAnywhere[idx] =
                            join(result.regAnywhere[idx],
                                 stepper.written()[idx]);
                    }
                }
                result.memory = memory;
                break;
            }
            memory = iter < memoryIterations
                         ? next
                         : MemorySummaries{KnownBits::top(),
                                           KnownBits::top(),
                                           next.constant, next.texture};
        }

        // Find branches whose guard is both unknown and possibly
        // non-uniform: only those can split a warp.
        bool grew = false;
        for (int pc = 0; pc < size; ++pc) {
            const auto idx = static_cast<std::size_t>(pc);
            const Instruction &instr = program.body[idx];
            if (instr.op != Opcode::Bra || !result.in[idx].reachable)
                continue;
            if (guardValue(result.in[idx], instr) != Bool3::Unknown)
                continue;
            if (guardUniformity(result.in[idx], instr)
                == Uniformity::Uniform)
                continue;
            grew |= contaminate(region, program, pc + 1, instr.reconv);
            grew |= contaminate(region, program, instr.imm, instr.reconv);
        }
        if (!grew) {
            result.divergentRegion = region;
            return result;
        }
    }
}

} // namespace bvf::analysis
