#include "analysis/interpreter.hh"

#include <algorithm>
#include <deque>

namespace bvf::analysis
{

using isa::Instruction;
using isa::Opcode;

namespace
{

// Malformed programs may carry register/predicate numbers past the
// architectural limits; reduce them the way a hardware decoder's field
// width would so the analysis stays memory-safe (the linter flags the
// encoding separately).
std::size_t
regIndex(std::uint8_t r)
{
    return r % isa::numRegisters;
}

std::size_t
predIndex(std::uint8_t p)
{
    return p % isa::numPredicates;
}

/** Interval-join count per pc before the interval widens to top. */
constexpr int widenThreshold = 256;

/** Outer load/store iterations before memory summaries widen to top. */
constexpr int memoryIterations = 8;

AbsState
initialState()
{
    AbsState s;
    s.regs.fill(KnownBits::constant(0));
    s.preds.fill(Bool3::False);
    s.regWritten = 0;
    s.predWritten = 0;
    s.reachable = true;
    return s;
}

bool
sameState(const AbsState &a, const AbsState &b)
{
    return a.reachable == b.reachable && a.regWritten == b.regWritten
           && a.predWritten == b.predWritten && a.regs == b.regs
           && a.preds == b.preds;
}

/**
 * Join @p next into @p into. With @p widen, any register interval still
 * growing is sent straight to [0, 2^32) so loops terminate; the bit
 * masks and predicates live in finite lattices and never need widening.
 */
AbsState
joinState(const AbsState &into, const AbsState &next, bool widen)
{
    AbsState r;
    r.reachable = true;
    r.regWritten = into.regWritten & next.regWritten;
    r.predWritten = into.predWritten & next.predWritten;
    for (int i = 0; i < isa::numRegisters; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        KnownBits j = join(into.regs[idx], next.regs[idx]);
        if (widen && (j.lo < into.regs[idx].lo || j.hi > into.regs[idx].hi)) {
            j.lo = 0;
            j.hi = 0xffffffffu;
            j = j.normalized();
        }
        r.regs[idx] = j;
    }
    for (int i = 0; i < isa::numPredicates; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        r.preds[idx] = join(into.preds[idx], next.preds[idx]);
    }
    return r;
}

KnownBits
joinImage(const std::vector<Word> &image)
{
    KnownBits kb = KnownBits::constant(image.empty() ? 0 : image.front());
    for (Word w : image)
        kb = join(kb, KnownBits::constant(w));
    return kb;
}

struct Successor
{
    int pc;
    AbsState state;
};

/**
 * One abstract instruction step: returns the successor program points
 * with their OUT states and reports stored values / written results to
 * the caller (for the memory fixpoint and regAnywhere accumulation).
 */
class Stepper
{
  public:
    Stepper(const isa::Program &program, const MemorySummaries &memory)
        : program_(program), memory_(memory)
    {
    }

    /** Joined abstraction of every value stored by Stg this pass. */
    const KnownBits &storedGlobal() const { return storedGlobal_; }
    bool anyGlobalStore() const { return anyGlobalStore_; }

    /** Joined abstraction of every value stored by Sts this pass. */
    const KnownBits &storedShared() const { return storedShared_; }
    bool anySharedStore() const { return anySharedStore_; }

    /** Join of every register-write result, indexed by register. */
    const std::array<KnownBits, isa::numRegisters> &written() const
    {
        return written_;
    }
    std::uint64_t writtenMask() const { return writtenMask_; }

    std::vector<Successor> step(int pc, const AbsState &in);

  private:
    void
    noteWrite(int reg, const KnownBits &value)
    {
        const auto idx = static_cast<std::size_t>(reg);
        written_[idx] = (writtenMask_ >> reg) & 1u
                            ? join(written_[idx], value)
                            : value;
        writtenMask_ |= std::uint64_t(1) << reg;
    }

    const isa::Program &program_;
    const MemorySummaries &memory_;
    KnownBits storedGlobal_;
    KnownBits storedShared_;
    bool anyGlobalStore_ = false;
    bool anySharedStore_ = false;
    std::array<KnownBits, isa::numRegisters> written_{};
    std::uint64_t writtenMask_ = 0;
};

std::vector<Successor>
Stepper::step(int pc, const AbsState &in)
{
    const Instruction &instr = program_.body[static_cast<std::size_t>(pc)];
    const Bool3 guard = guardValue(in, instr);

    switch (instr.op) {
      case Opcode::Exit:
        // The SM retires the warp regardless of the guard predicate.
        return {};
      case Opcode::Bar:
      case Opcode::Nop:
        return {{pc + 1, in}};
      case Opcode::Bra: {
        std::vector<Successor> succs;
        if (guard != Bool3::False)
            succs.push_back({instr.imm, in});
        if (guard != Bool3::True)
            succs.push_back({pc + 1, in});
        return succs;
      }
      default:
        break;
    }

    if (guard == Bool3::False)
        return {{pc + 1, in}};

    AbsState out = in;
    const bool certain = guard == Bool3::True;

    if (instr.op == Opcode::SetP) {
        const Bool3 cmp =
            kbCompare(static_cast<isa::CmpOp>(instr.flags),
                      operandA(in, instr), operandB(in, instr));
        const std::size_t idx = predIndex(instr.dst);
        out.preds[idx] = certain ? cmp : join(in.preds[idx], cmp);
        if (certain)
            out.predWritten |= static_cast<std::uint8_t>(1u << idx);
        return {{pc + 1, out}};
    }

    if (isa::isStoreOp(instr.op)) {
        const KnownBits value = in.regs[regIndex(instr.srcB)];
        if (instr.op == Opcode::Stg) {
            storedGlobal_ = anyGlobalStore_ ? join(storedGlobal_, value)
                                            : value;
            anyGlobalStore_ = true;
        } else {
            storedShared_ = anySharedStore_ ? join(storedShared_, value)
                                            : value;
            anySharedStore_ = true;
        }
        return {{pc + 1, out}};
    }

    // Register-writing instructions (ALU ops and loads).
    const KnownBits result = isa::isLoadOp(instr.op)
                                 ? loadResult(instr, memory_)
                                 : aluResult(instr, in, program_.launch);
    const std::size_t idx = regIndex(instr.dst);
    out.regs[idx] = certain ? result : join(in.regs[idx], result);
    if (certain)
        out.regWritten |= std::uint64_t(1) << idx;
    noteWrite(static_cast<int>(idx), out.regs[idx]);
    return {{pc + 1, out}};
}

} // namespace

Bool3
guardValue(const AbsState &s, const Instruction &instr)
{
    if (instr.pred == isa::predTrue && !instr.predNegate)
        return Bool3::True;
    const Bool3 v = s.preds[instr.pred % isa::numPredicates];
    return instr.predNegate ? not3(v) : v;
}

KnownBits
operandA(const AbsState &s, const Instruction &instr)
{
    return s.regs[instr.srcA % isa::numRegisters];
}

KnownBits
operandB(const AbsState &s, const Instruction &instr)
{
    if (instr.immB)
        return KnownBits::constant(static_cast<Word>(instr.imm));
    return s.regs[instr.srcB % isa::numRegisters];
}

KnownBits
aluResult(const Instruction &instr, const AbsState &s,
          const isa::LaunchDims &launch)
{
    const KnownBits a = operandA(s, instr);
    const KnownBits b = operandB(s, instr);
    switch (instr.op) {
      case Opcode::IAdd:
        return kbAdd(a, b);
      case Opcode::ISub:
        return kbSub(a, b);
      case Opcode::IMul:
        return kbMul(a, b);
      case Opcode::IMad:
        return kbAdd(kbMul(a, b), s.regs[instr.dst % isa::numRegisters]);
      case Opcode::Mov:
        return b;
      case Opcode::Shl:
        return kbShl(a, b);
      case Opcode::Shr:
        return kbShr(a, b);
      case Opcode::And:
        return kbAnd(a, b);
      case Opcode::Or:
        return kbOr(a, b);
      case Opcode::Xor:
        return kbXor(a, b);
      case Opcode::Clz:
        return kbClz(a);
      case Opcode::Min:
        return kbMinSigned(a, b);
      case Opcode::Max:
        return kbMaxSigned(a, b);
      case Opcode::S2R:
        switch (static_cast<isa::SpecialReg>(instr.flags)) {
          case isa::SpecialReg::LaneId:
            return KnownBits::range(0, 31);
          case isa::SpecialReg::WarpId:
            return KnownBits::range(
                0, static_cast<Word>(launch.warpsPerBlock() - 1));
          case isa::SpecialReg::TidX:
            return KnownBits::range(
                0, static_cast<Word>(launch.blockThreads - 1));
          case isa::SpecialReg::CtaIdX:
            return KnownBits::range(
                0, static_cast<Word>(launch.gridBlocks - 1));
          case isa::SpecialReg::NTidX:
            return KnownBits::constant(
                static_cast<Word>(launch.blockThreads));
          case isa::SpecialReg::GridDimX:
            return KnownBits::constant(
                static_cast<Word>(launch.gridBlocks));
        }
        return KnownBits::top();
      case Opcode::Ffma:
      case Opcode::Fadd:
      case Opcode::Fmul:
      case Opcode::I2F:
      case Opcode::F2I:
      default:
        // Floating-point bit patterns are not tracked.
        return KnownBits::top();
    }
}

KnownBits
loadResult(const Instruction &instr, const MemorySummaries &memory)
{
    switch (instr.op) {
      case Opcode::Ldg:
        return memory.global;
      case Opcode::Lds:
        return memory.shared;
      case Opcode::Ldc:
        return memory.constant;
      case Opcode::Ldt:
        return memory.texture;
      default:
        return KnownBits::top();
    }
}

KnownBits
memoryAddress(const AbsState &s, const Instruction &instr)
{
    return kbAdd(s.regs[instr.srcA % isa::numRegisters],
                 KnownBits::constant(static_cast<Word>(instr.imm)));
}

AnalysisResult
analyzeProgram(const isa::Program &program)
{
    AnalysisResult result;
    const int size = static_cast<int>(program.body.size());
    result.in.assign(static_cast<std::size_t>(size), AbsState{});
    result.regAnywhere.fill(KnownBits::constant(0));
    if (size == 0) {
        result.fellOffEnd = true;
        return result;
    }

    // Summaries without store feedback: image words plus the zero every
    // out-of-range or uninitialized location yields.
    MemorySummaries base;
    base.global = join(joinImage(program.global), KnownBits::constant(0));
    base.shared = KnownBits::constant(0);
    base.constant = joinImage(program.constants);
    base.texture = joinImage(program.texture);

    MemorySummaries memory = base;
    for (int iter = 0;; ++iter) {
        Stepper stepper(program, memory);

        for (AbsState &s : result.in)
            s = AbsState{};
        result.in[0] = initialState();
        result.fellOffEnd = false;

        std::vector<int> updates(static_cast<std::size_t>(size), 0);
        std::deque<int> worklist{0};
        std::vector<bool> queued(static_cast<std::size_t>(size), false);
        queued[0] = true;
        while (!worklist.empty()) {
            const int pc = worklist.front();
            worklist.pop_front();
            queued[static_cast<std::size_t>(pc)] = false;

            const AbsState in = result.in[static_cast<std::size_t>(pc)];
            for (const Successor &succ : stepper.step(pc, in)) {
                if (succ.pc < 0 || succ.pc >= size) {
                    result.fellOffEnd = true;
                    continue;
                }
                const auto sidx = static_cast<std::size_t>(succ.pc);
                AbsState &old = result.in[sidx];
                AbsState merged =
                    old.reachable
                        ? joinState(old, succ.state,
                                    updates[sidx] >= widenThreshold)
                        : succ.state;
                merged.reachable = true;
                if (!old.reachable || !sameState(merged, old)) {
                    old = merged;
                    ++updates[sidx];
                    if (!queued[sidx]) {
                        queued[sidx] = true;
                        worklist.push_back(succ.pc);
                    }
                }
            }
        }

        // Feed stored values back into the load summaries.
        MemorySummaries next = base;
        if (stepper.anyGlobalStore())
            next.global = join(next.global, stepper.storedGlobal());
        if (stepper.anySharedStore())
            next.shared = join(next.shared, stepper.storedShared());
        // Monotone ascent so the outer loop cannot oscillate.
        next.global = join(next.global, memory.global);
        next.shared = join(next.shared, memory.shared);

        if (next == memory) {
            for (int r = 0; r < isa::numRegisters; ++r) {
                const auto idx = static_cast<std::size_t>(r);
                for (const AbsState &s : result.in) {
                    if (s.reachable)
                        result.regAnywhere[idx] =
                            join(result.regAnywhere[idx], s.regs[idx]);
                }
                if ((stepper.writtenMask() >> r) & 1u) {
                    result.regAnywhere[idx] = join(result.regAnywhere[idx],
                                                   stepper.written()[idx]);
                }
            }
            result.memory = memory;
            return result;
        }
        memory = iter < memoryIterations
                     ? next
                     : MemorySummaries{KnownBits::top(), KnownBits::top(),
                                       next.constant, next.texture};
    }
}

} // namespace bvf::analysis
