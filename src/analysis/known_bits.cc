#include "analysis/known_bits.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>

namespace bvf::analysis
{

namespace
{

constexpr Word64 wordSpan = Word64(1) << 32;

/** Bit @p i of an abstract word as a three-valued boolean. */
Bool3
bitOf(const KnownBits &a, int i)
{
    const Word mask = Word(1) << i;
    if (a.knownOne & mask)
        return Bool3::True;
    if (a.knownZero & mask)
        return Bool3::False;
    return Bool3::Unknown;
}

Bool3
xor3(Bool3 a, Bool3 b)
{
    if (a == Bool3::Unknown || b == Bool3::Unknown)
        return Bool3::Unknown;
    return a == b ? Bool3::False : Bool3::True;
}

/** Majority of three; known as soon as two inputs agree. */
Bool3
maj3(Bool3 a, Bool3 b, Bool3 c)
{
    int trues = (a == Bool3::True) + (b == Bool3::True) + (c == Bool3::True);
    int falses = (a == Bool3::False) + (b == Bool3::False)
                 + (c == Bool3::False);
    if (trues >= 2)
        return Bool3::True;
    if (falses >= 2)
        return Bool3::False;
    return Bool3::Unknown;
}

KnownBits
applyBit(KnownBits kb, int i, Bool3 v)
{
    const Word mask = Word(1) << i;
    if (v == Bool3::True)
        kb.knownOne |= mask;
    else if (v == Bool3::False)
        kb.knownZero |= mask;
    return kb;
}

/**
 * Ripple-carry sum of two abstract words with an abstract carry-in; the
 * shared core of kbAdd (carry False) and kbSub (b inverted, carry True).
 */
KnownBits
rippleSum(const KnownBits &a, const KnownBits &b, bool invertB, Bool3 carry)
{
    KnownBits out;
    for (int i = 0; i < 32; ++i) {
        Bool3 ai = bitOf(a, i);
        Bool3 bi = bitOf(b, i);
        if (invertB)
            bi = not3(bi);
        out = applyBit(out, i, xor3(xor3(ai, bi), carry));
        carry = maj3(ai, bi, carry);
    }
    return out;
}

/** Can some value in [lo, hi] leave residue @p s modulo 32? */
bool
rangeAllowsResidue(Word lo, Word hi, int s)
{
    if (Word64(hi) - Word64(lo) >= 31)
        return true;
    for (Word64 v = lo; v <= hi; ++v)
        if ((v & 31u) == Word64(s))
            return true;
    return false;
}

enum class SignClass
{
    NonNeg,
    Neg,
    Mixed,
};

SignClass
signClass(const KnownBits &a)
{
    if (a.hi < 0x80000000u)
        return SignClass::NonNeg;
    if (a.lo >= 0x80000000u)
        return SignClass::Neg;
    return SignClass::Mixed;
}

/**
 * Signed a < b, exploiting that unsigned interval order equals signed
 * order whenever both sides share a sign class.
 */
Bool3
ltSigned(const KnownBits &a, const KnownBits &b)
{
    const SignClass sa = signClass(a);
    const SignClass sb = signClass(b);
    if (sa == SignClass::Mixed || sb == SignClass::Mixed)
        return Bool3::Unknown;
    if (sa == SignClass::Neg && sb == SignClass::NonNeg)
        return Bool3::True;
    if (sa == SignClass::NonNeg && sb == SignClass::Neg)
        return Bool3::False;
    if (a.hi < b.lo)
        return Bool3::True;
    if (a.lo >= b.hi)
        return Bool3::False;
    return Bool3::Unknown;
}

Bool3
eqAbstract(const KnownBits &a, const KnownBits &b)
{
    if (a.isConstant() && b.isConstant() && a.lo == b.lo)
        return Bool3::True;
    if ((a.knownOne & b.knownZero) | (a.knownZero & b.knownOne))
        return Bool3::False;
    if (a.hi < b.lo || b.hi < a.lo)
        return Bool3::False;
    return Bool3::Unknown;
}

} // namespace

KnownBits
KnownBits::constant(Word v)
{
    return {~v, v, v, v};
}

KnownBits
KnownBits::range(Word lo, Word hi)
{
    return KnownBits{0, 0, lo, hi}.normalized();
}

KnownBits
KnownBits::normalized() const
{
    KnownBits r = *this;
    for (int pass = 0; pass < 32; ++pass) {
        KnownBits prev = r;
        if (r.empty())
            return r;
        // Bit masks clamp the interval.
        r.lo = std::max(r.lo, r.knownOne);
        r.hi = std::min(r.hi, ~r.knownZero);
        if (r.lo > r.hi)
            return r;
        // Agreeing leading bits of the interval endpoints are known.
        const Word diff = r.lo ^ r.hi;
        const Word same = diff == 0
                              ? ~Word(0)
                              : (diff == 0xffffffffu
                                     ? 0
                                     : ~((Word(2) << (31 - leadingZeros(diff)))
                                        - 1));
        r.knownOne |= r.lo & same;
        r.knownZero |= ~r.lo & same;
        if (r == prev)
            break;
    }
    return r;
}

std::string
KnownBits::toString() const
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "[0x%x,0x%x] ", lo, hi);
    std::string s = buf;
    for (int i = 31; i >= 0; --i) {
        const Word mask = Word(1) << i;
        s += (knownOne & mask) ? '1' : (knownZero & mask) ? '0' : '?';
    }
    return s;
}

KnownBits
join(const KnownBits &a, const KnownBits &b)
{
    if (a.empty())
        return b;
    if (b.empty())
        return a;
    KnownBits r;
    r.knownZero = a.knownZero & b.knownZero;
    r.knownOne = a.knownOne & b.knownOne;
    r.lo = std::min(a.lo, b.lo);
    r.hi = std::max(a.hi, b.hi);
    return r.normalized();
}

KnownBits
widen(const KnownBits &prev, const KnownBits &next)
{
    if (next.lo >= prev.lo && next.hi <= prev.hi)
        return next;
    KnownBits w = next;
    w.lo = 0;
    w.hi = 0xffffffffu;
    return w.normalized();
}

KnownBits
kbAdd(const KnownBits &a, const KnownBits &b)
{
    KnownBits r = rippleSum(a, b, false, Bool3::False);
    const Word64 sumLo = Word64(a.lo) + b.lo;
    const Word64 sumHi = Word64(a.hi) + b.hi;
    if (sumHi < wordSpan) {
        r.lo = Word(sumLo);
        r.hi = Word(sumHi);
    } else if (sumLo >= wordSpan) {
        r.lo = Word(sumLo - wordSpan);
        r.hi = Word(sumHi - wordSpan);
    }
    return r.normalized();
}

KnownBits
kbSub(const KnownBits &a, const KnownBits &b)
{
    KnownBits r = rippleSum(a, b, true, Bool3::True);
    const std::int64_t difLo = std::int64_t(a.lo) - b.hi;
    const std::int64_t difHi = std::int64_t(a.hi) - b.lo;
    if (difLo >= 0) {
        r.lo = Word(difLo);
        r.hi = Word(difHi);
    } else if (difHi < 0) {
        r.lo = Word(difLo + std::int64_t(wordSpan));
        r.hi = Word(difHi + std::int64_t(wordSpan));
    }
    return r.normalized();
}

KnownBits
kbAnd(const KnownBits &a, const KnownBits &b)
{
    KnownBits r;
    r.knownZero = a.knownZero | b.knownZero;
    r.knownOne = a.knownOne & b.knownOne;
    r.lo = 0;
    r.hi = std::min(a.hi, b.hi); // x & y never exceeds either operand
    return r.normalized();
}

KnownBits
kbOr(const KnownBits &a, const KnownBits &b)
{
    KnownBits r;
    r.knownZero = a.knownZero & b.knownZero;
    r.knownOne = a.knownOne | b.knownOne;
    r.lo = std::max(a.lo, b.lo); // x | y never falls below either operand
    r.hi = 0xffffffffu;
    return r.normalized();
}

KnownBits
kbXor(const KnownBits &a, const KnownBits &b)
{
    KnownBits r;
    r.knownZero = (a.knownZero & b.knownZero) | (a.knownOne & b.knownOne);
    r.knownOne = (a.knownZero & b.knownOne) | (a.knownOne & b.knownZero);
    return r.normalized();
}

KnownBits
kbNot(const KnownBits &a)
{
    return KnownBits{a.knownOne, a.knownZero, ~a.hi, ~a.lo}.normalized();
}

KnownBits
kbShl(const KnownBits &a, const KnownBits &b)
{
    const Word fixed = b.knownOne & 31u;
    const Word mask5 = b.knownMask() & 31u;
    KnownBits out;
    bool any = false;
    for (int s = 0; s < 32; ++s) {
        if ((Word(s) & mask5) != fixed)
            continue;
        if (!rangeAllowsResidue(b.lo, b.hi, s))
            continue;
        KnownBits one;
        one.knownZero = (a.knownZero << s) | (s ? ((Word(1) << s) - 1) : 0);
        one.knownOne = a.knownOne << s;
        if ((Word64(a.hi) << s) < wordSpan) {
            one.lo = a.lo << s;
            one.hi = a.hi << s;
        }
        one = one.normalized();
        out = any ? join(out, one) : one;
        any = true;
    }
    return any ? out : KnownBits::top();
}

KnownBits
kbShr(const KnownBits &a, const KnownBits &b)
{
    const Word fixed = b.knownOne & 31u;
    const Word mask5 = b.knownMask() & 31u;
    KnownBits out;
    bool any = false;
    for (int s = 0; s < 32; ++s) {
        if ((Word(s) & mask5) != fixed)
            continue;
        if (!rangeAllowsResidue(b.lo, b.hi, s))
            continue;
        KnownBits one;
        one.knownZero = (a.knownZero >> s) | (s ? ~(0xffffffffu >> s) : 0);
        one.knownOne = a.knownOne >> s;
        one.lo = a.lo >> s;
        one.hi = a.hi >> s;
        one = one.normalized();
        out = any ? join(out, one) : one;
        any = true;
    }
    return any ? out : KnownBits::top();
}

KnownBits
kbMul(const KnownBits &a, const KnownBits &b)
{
    if (a.isConstant() && b.isConstant())
        return KnownBits::constant(a.lo * b.lo);
    KnownBits r;
    // Low bits of a product depend only on equally many low operand
    // bits, so the low min(ka, kb) bits are exact.
    const int ka = std::countr_one(a.knownMask());
    const int kb = std::countr_one(b.knownMask());
    const int k = std::min(ka, kb);
    if (k > 0) {
        const Word mask = k >= 32 ? ~Word(0) : (Word(1) << k) - 1;
        const Word low = (a.knownOne & mask) * (b.knownOne & mask);
        r.knownOne = low & mask;
        r.knownZero = ~low & mask;
    }
    // Trailing guaranteed zeros accumulate across factors.
    const int tz = std::min(31, std::countr_one(a.knownZero)
                                    + std::countr_one(b.knownZero));
    if (tz > 0)
        r.knownZero |= (Word(1) << tz) - 1;
    const Word64 pHi = Word64(a.hi) * b.hi;
    if (pHi < wordSpan) {
        r.lo = Word(Word64(a.lo) * b.lo);
        r.hi = Word(pHi);
    }
    return r.normalized();
}

KnownBits
kbClz(const KnownBits &a)
{
    // countl_zero is antitone in the value, so the interval endpoints
    // swap roles.
    return KnownBits::range(Word(leadingZeros(a.hi)),
                            Word(leadingZeros(a.lo)));
}

KnownBits
kbMinSigned(const KnownBits &a, const KnownBits &b)
{
    const SignClass sa = signClass(a);
    const SignClass sb = signClass(b);
    if (sa == SignClass::Neg && sb == SignClass::NonNeg)
        return a;
    if (sa == SignClass::NonNeg && sb == SignClass::Neg)
        return b;
    // The result is bitwise one of the operands, so the join is sound.
    KnownBits r = join(a, b);
    if (sa != SignClass::Mixed && sa == sb) {
        // Same sign class: unsigned interval order equals signed order.
        r.lo = std::min(a.lo, b.lo);
        r.hi = std::min(a.hi, b.hi);
        r = r.normalized();
    }
    return r;
}

KnownBits
kbMaxSigned(const KnownBits &a, const KnownBits &b)
{
    const SignClass sa = signClass(a);
    const SignClass sb = signClass(b);
    if (sa == SignClass::Neg && sb == SignClass::NonNeg)
        return b;
    if (sa == SignClass::NonNeg && sb == SignClass::Neg)
        return a;
    KnownBits r = join(a, b);
    if (sa != SignClass::Mixed && sa == sb) {
        r.lo = std::max(a.lo, b.lo);
        r.hi = std::max(a.hi, b.hi);
        r = r.normalized();
    }
    return r;
}

Bool3
kbCompare(isa::CmpOp cmp, const KnownBits &a, const KnownBits &b)
{
    switch (cmp) {
      case isa::CmpOp::Lt:
        return ltSigned(a, b);
      case isa::CmpOp::Le:
        return not3(ltSigned(b, a));
      case isa::CmpOp::Gt:
        return ltSigned(b, a);
      case isa::CmpOp::Ge:
        return not3(ltSigned(a, b));
      case isa::CmpOp::Eq:
        return eqAbstract(a, b);
      case isa::CmpOp::Ne:
        return not3(eqAbstract(a, b));
    }
    return Bool3::Unknown;
}

KnownBits
nvEncodeKnownBits(const KnownBits &a)
{
    constexpr Word body = 0x7fffffffu;
    constexpr Word sign = 0x80000000u;
    KnownBits r;
    if (a.knownZero & sign) {
        // Non-negative: body bits are inverted, sign bit stays 0.
        r.knownZero = (a.knownOne & body) | sign;
        r.knownOne = a.knownZero & body;
    } else if (a.knownOne & sign) {
        // Negative: body bits pass through, sign bit stays 1.
        r.knownZero = a.knownZero & body;
        r.knownOne = (a.knownOne & body) | sign;
    }
    // Sign unknown: every encoded bit depends on it, nothing is known.
    return r.normalized();
}

RatioBound
ratioBounds(const KnownBits &a)
{
    return {a.minOnes() / 32.0, a.maxOnes() / 32.0};
}

RatioBound
nvRatioBounds(const KnownBits &a)
{
    constexpr Word sign = 0x80000000u;
    if (a.knownMask() & sign)
        return ratioBounds(nvEncodeKnownBits(a));
    // Unknown sign: analyze the two sign cases separately and hull.
    KnownBits nonNeg = a;
    nonNeg.knownZero |= sign;
    nonNeg = nonNeg.normalized();
    KnownBits neg = a;
    neg.knownOne |= sign;
    neg = neg.normalized();
    RatioBound bound{1.0, 0.0};
    bool any = false;
    for (const KnownBits &half : {nonNeg, neg}) {
        if (half.empty())
            continue;
        const RatioBound rb = ratioBounds(nvEncodeKnownBits(half));
        bound.lo = std::min(bound.lo, rb.lo);
        bound.hi = std::max(bound.hi, rb.hi);
        any = true;
    }
    return any ? bound : RatioBound{0.0, 1.0};
}

int
agreeKnownCount(const KnownBits &a, const KnownBits &b)
{
    return hammingWeight((a.knownZero & b.knownZero)
                         | (a.knownOne & b.knownOne));
}

RatioBound
xnorRatioBounds(const KnownBits &a, const KnownBits &b)
{
    const int disagree = hammingWeight((a.knownZero & b.knownOne)
                                       | (a.knownOne & b.knownZero));
    return {agreeKnownCount(a, b) / 32.0, (32 - disagree) / 32.0};
}

} // namespace bvf::analysis
