/**
 * @file
 * Static bit-density predictor.
 *
 * Lowers the known-bits facts of the abstract interpreter through the
 * paper's three coder transforms to bound, per on-chip unit and per
 * coding scenario, the bit-1 ratio of everything the energy accountant
 * will count during a dynamic run. The key soundness fact is the
 * mixture bound: every counted word belongs to at least one statically
 * identified source stream, and the aggregate ratio of any mixture of
 * sources lies inside [min source lo, max source hi] regardless of how
 * the run weighs them. The dynamic cross-check (check.hh) turns these
 * intervals into a pipeline-wide invariant.
 */

#ifndef BVF_ANALYSIS_PREDICTOR_HH
#define BVF_ANALYSIS_PREDICTOR_HH

#include <array>
#include <map>

#include "analysis/interpreter.hh"
#include "coder/bvf_space.hh"
#include "coder/scenario.hh"
#include "coder/vs_coder.hh"
#include "isa/encoding.hh"
#include "isa/program.hh"

namespace bvf::analysis
{

/** Knobs that must match the accountant wiring of the run under test. */
struct PredictorOptions
{
    isa::GpuArch arch = isa::GpuArch::Pascal;

    /** ISA coder mask; 0 = the Table 2 mask of @ref arch. */
    Word64 isaMask = 0;

    /** VS register-space pivot lane. */
    int vsRegisterPivot = coder::VsCoder::defaultRegisterPivot;

    /** Data/texture cache line size in bytes (GpuConfig::lineBytes). */
    std::uint32_t lineBytes = 128;
};

/** Proven interval for one unit+scenario's bit-1 ratio. */
struct DensityBound
{
    double lo = 0.0;
    double hi = 1.0;

    /** False when no static source feeds the unit (it must stay idle). */
    bool any = false;
};

/** Per-unit, per-scenario bounds plus the NoC payload bounds. */
struct StaticPrediction
{
    std::map<coder::UnitId, std::array<DensityBound, coder::numScenarios>>
        units;

    /** Bounds on NocAccount payloadOnes/payloadBits. */
    std::array<DensityBound, coder::numScenarios> noc{};

    /**
     * Mean bound midpoint across active units per scenario -- the
     * static figure of merit the scenario ranking uses.
     */
    std::array<double, coder::numScenarios> meanMidpoint{};

    /** Scenario with the greatest predicted density gain over Baseline. */
    coder::Scenario bestStatic = coder::Scenario::Baseline;

    const DensityBound &
    unitBound(coder::UnitId unit, coder::Scenario s) const
    {
        static const DensityBound none;
        auto it = units.find(unit);
        if (it == units.end())
            return none;
        return it->second[static_cast<std::size_t>(
            coder::scenarioIndex(s))];
    }
};

/**
 * Predict density bounds for @p program. @p analysis must come from
 * analyzeProgram on the same program.
 */
StaticPrediction predictDensity(const isa::Program &program,
                                const AnalysisResult &analysis,
                                const PredictorOptions &options = {});

} // namespace bvf::analysis

#endif // BVF_ANALYSIS_PREDICTOR_HH
