/**
 * @file
 * Kernel linter built on the known-bits abstract interpreter.
 *
 * Every diagnostic describes something the dynamic pipeline silently
 * absorbs -- zero-initialized registers hide uninitialized reads, the
 * shared/constant address wrap hides out-of-bounds offsets, the decoder
 * ignores non-canonical fields -- so the linter is where such latent
 * kernel and kernel-builder bugs become visible.
 */

#ifndef BVF_ANALYSIS_LINT_HH
#define BVF_ANALYSIS_LINT_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace bvf::analysis
{

enum class LintCode
{
    UninitRegRead,   //!< register read before any write on some path
    UninitPredRead,  //!< predicate guard read before any SetP on some path
    DeadWrite,       //!< register/predicate write never observed
    Unreachable,     //!< instruction no abstract path reaches
    SharedOob,       //!< shared offset may exceed the block's segment
    ConstOob,        //!< constant offset may wrap the constant image
    TexOob,          //!< texture offset may wrap the texture image
    NonCanonical,    //!< encoding field set that the opcode ignores
    BadReconv,       //!< Bra reconvergence point malformed
    FallsOffEnd,     //!< a path runs past the last instruction
};

/** Stable diagnostic name, e.g. "uninit-reg-read". */
std::string lintCodeName(LintCode code);

struct LintFinding
{
    LintCode code;
    int pc;               //!< instruction index the finding anchors to
    std::string message;  //!< human-readable detail

    /** "pc 12: uninit-reg-read: ..." rendering. */
    std::string toString() const;
};

/** Run every check over @p program. Findings are sorted by pc. */
std::vector<LintFinding> lintProgram(const isa::Program &program);

} // namespace bvf::analysis

#endif // BVF_ANALYSIS_LINT_HH
