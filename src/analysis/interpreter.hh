/**
 * @file
 * Abstract interpreter over bvf::isa::Program with the known-bits lattice.
 *
 * The abstraction models a single arbitrary thread of the launch: every
 * register holds a KnownBits word, every predicate a Bool3, and control
 * flow follows the CFG with branch successors pruned by the abstract
 * guard. SIMT scheduling (divergence stacks, reconvergence order) only
 * changes *when* a thread executes an instruction, never *what* it
 * computes, so path-joins at reconvergence points fall out of the
 * ordinary dataflow join. Memory is summarized per space (global,
 * shared, constant, texture) with an outer fixpoint so stored values
 * feed back into loads.
 *
 * The fixpoint result answers, for every reachable pc, "what can each
 * register/predicate hold just before this instruction executes" -- the
 * facts the linter and the static bit-density predictor consume.
 */

#ifndef BVF_ANALYSIS_INTERPRETER_HH
#define BVF_ANALYSIS_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/known_bits.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

namespace bvf::analysis
{

/** Abstract machine state at one program point (IN of a pc). */
struct AbsState
{
    std::array<KnownBits, isa::numRegisters> regs{};
    std::array<Bool3, isa::numPredicates> preds{};

    /** Bit r set: register r written on every path to this point. */
    std::uint64_t regWritten = 0;

    /** Bit p set: predicate p written on every path to this point. */
    std::uint8_t predWritten = 0;

    /** False until the fixpoint first reaches this pc. */
    bool reachable = false;
};

/** Per-space summaries of every value a load can observe. */
struct MemorySummaries
{
    KnownBits global;    //!< image words, stores, and the OOB zero
    KnownBits shared;    //!< zero-initialized words and Sts values
    KnownBits constant;  //!< constant image words
    KnownBits texture;   //!< texture image words

    bool operator==(const MemorySummaries &o) const = default;
};

/** Everything the fixpoint proves about one program. */
struct AnalysisResult
{
    /** IN state per pc (regs/preds just before the instruction). */
    std::vector<AbsState> in;

    MemorySummaries memory;

    /**
     * Join of register r over every program point plus the initial
     * zero -- covers stale values in lanes that sit out an access,
     * which the VS register pivot can expose to the accountant.
     */
    std::array<KnownBits, isa::numRegisters> regAnywhere{};

    /** Some path runs past the last instruction (lint: FallsOffEnd). */
    bool fellOffEnd = false;
};

/** Run the fixpoint. Handles empty bodies (returns no states). */
AnalysisResult analyzeProgram(const isa::Program &program);

// --- transfer helpers shared with the linter and predictor -------------

/** Abstract value of the instruction's guard at state @p s. */
Bool3 guardValue(const AbsState &s, const isa::Instruction &instr);

/** Abstract srcA operand. */
KnownBits operandA(const AbsState &s, const isa::Instruction &instr);

/** Abstract srcB operand (immediate-aware). */
KnownBits operandB(const AbsState &s, const isa::Instruction &instr);

/**
 * Abstract result of a register-writing data-path instruction (loads
 * use the matching MemorySummaries member instead; see loadResult).
 */
KnownBits aluResult(const isa::Instruction &instr, const AbsState &s,
                    const isa::LaunchDims &launch);

/** Abstract value a load's destination receives. */
KnownBits loadResult(const isa::Instruction &instr,
                     const MemorySummaries &memory);

/** Abstract byte address of a memory instruction (reg[srcA] + imm). */
KnownBits memoryAddress(const AbsState &s, const isa::Instruction &instr);

} // namespace bvf::analysis

#endif // BVF_ANALYSIS_INTERPRETER_HH
