/**
 * @file
 * Abstract interpreter over bvf::isa::Program (analysis v2).
 *
 * PR 3's interpreter ran the hard-wired KnownBits lattice; this version
 * runs a reduced product of three domains per register
 * (product.hh / domains.hh):
 *
 *   KnownBits      per-bit knowledge + unsigned interval (per-thread),
 *   SignedInterval signed value interval (per-thread),
 *   LaneAffine     base + stride * lane structure of the full 32-lane
 *                  warp vector (relational across lanes).
 *
 * The per-thread components model a single arbitrary thread: SIMT
 * scheduling changes *when* a thread executes an instruction, never
 * *what* it computes, so their facts at a pc cover every thread whose
 * own trajectory visits that pc (the active lanes of any dynamic
 * issue). LaneAffine is different: it speaks about all 32 lanes of a
 * warp at once, including lanes masked off at the access -- exactly
 * what the VS coder's pivot analysis needs -- so it is only kept when
 * every write was provably executed by whole warps. Two mechanisms
 * enforce that:
 *
 *  - predicate *uniformity* (can lanes disagree on a guard?), joined
 *    through the same fixpoint, downgrades predicated writes, and
 *  - *divergent regions*: a branch whose guard is both unknown and
 *    possibly non-uniform can split the warp, so every pc reachable
 *    from either arm short of the reconvergence point may execute with
 *    a partial mask; writes there lose their lane structure. The region
 *    set grows in an outer fixpoint until no new divergent branch
 *    appears (the set only grows, so it terminates).
 *
 * Memory is summarized per space (global, shared, constant, texture)
 * with an outer fixpoint so stored values feed back into loads, exactly
 * as in PR 3.
 */

#ifndef BVF_ANALYSIS_INTERPRETER_HH
#define BVF_ANALYSIS_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/domains.hh"
#include "analysis/known_bits.hh"
#include "analysis/product.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

namespace bvf::analysis
{

/**
 * The register abstraction: reduced product of the three domains. The
 * product machinery is generic (any ValueDomain mix); this instance is
 * what the analysis pipeline runs.
 */
struct AbsValue : ProductValue<KnownBits, SignedInterval, LaneAffine>
{
    using Base = ProductValue<KnownBits, SignedInterval, LaneAffine>;

    KnownBits &kb() { return part<KnownBits>(); }
    const KnownBits &kb() const { return part<KnownBits>(); }
    SignedInterval &si() { return part<SignedInterval>(); }
    const SignedInterval &si() const { return part<SignedInterval>(); }
    LaneAffine &affine() { return part<LaneAffine>(); }
    const LaneAffine &affine() const { return part<LaneAffine>(); }

    /** Does the concrete word satisfy every per-thread component? */
    bool
    contains(Word v) const
    {
        return kb().contains(v) && si().contains(v);
    }

    bool isConstant() const { return kb().isConstant(); }

    static AbsValue top() { return {Base::top()}; }
    static AbsValue constant(Word v) { return {Base::constant(v)}; }

    friend AbsValue
    join(const AbsValue &a, const AbsValue &b)
    {
        return {join(static_cast<const Base &>(a),
                     static_cast<const Base &>(b))};
    }

    friend AbsValue
    widen(const AbsValue &prev, const AbsValue &next)
    {
        return {widen(static_cast<const Base &>(prev),
                      static_cast<const Base &>(next))};
    }
};

/**
 * Cross-domain reduction: KnownBits' unsigned interval pins the sign
 * when it avoids the 2^31 wrap point and then refines SignedInterval,
 * and vice versa. Transfer functions return reduced values; a reduction
 * that would be contradictory (possible only on unreachable paths) is
 * skipped rather than producing an empty element.
 */
AbsValue reduceValue(AbsValue v);

/** Predicate abstraction: three-valued content plus lane uniformity. */
struct PredValue
{
    Bool3 value = Bool3::False;
    Uniformity uni = Uniformity::Uniform;

    bool operator==(const PredValue &o) const = default;
};

constexpr PredValue
join(const PredValue &a, const PredValue &b)
{
    return {join(a.value, b.value), join(a.uni, b.uni)};
}

/** Abstract machine state at one program point (IN of a pc). */
struct AbsState
{
    std::array<AbsValue, isa::numRegisters> regs{};
    std::array<PredValue, isa::numPredicates> preds{};

    /** Bit r set: register r written on every path to this point. */
    std::uint64_t regWritten = 0;

    /** Bit p set: predicate p written on every path to this point. */
    std::uint8_t predWritten = 0;

    /** False until the fixpoint first reaches this pc. */
    bool reachable = false;
};

/** Per-space summaries of every value a load can observe. */
struct MemorySummaries
{
    KnownBits global;    //!< image words, stores, and the OOB zero
    KnownBits shared;    //!< zero-initialized words and Sts values
    KnownBits constant;  //!< constant image words
    KnownBits texture;   //!< texture image words

    bool operator==(const MemorySummaries &o) const = default;
};

/** Everything the fixpoint proves about one program. */
struct AnalysisResult
{
    /** IN state per pc (regs/preds just before the instruction). */
    std::vector<AbsState> in;

    MemorySummaries memory;

    /**
     * Join of register r over every program point plus the initial
     * zero -- covers stale values in lanes that sit out an access,
     * which the VS register pivot can expose to the accountant.
     */
    std::array<KnownBits, isa::numRegisters> regAnywhere{};

    /**
     * Per pc: 1 when a warp may issue this instruction with a partial
     * active mask (the pc lies inside some divergent branch's region).
     * Writes here cannot carry lane-affine facts, and blocks observed
     * here may mix current and stale lanes.
     */
    std::vector<std::uint8_t> divergentRegion;

    /** Some path runs past the last instruction (lint: FallsOffEnd). */
    bool fellOffEnd = false;
};

/** Run the fixpoint. Handles empty bodies (returns no states). */
AnalysisResult analyzeProgram(const isa::Program &program);

// --- transfer helpers shared with the linter, predictor and advisor ----

/** Abstract value of the instruction's guard at state @p s. */
Bool3 guardValue(const AbsState &s, const isa::Instruction &instr);

/** Can the lanes of a warp disagree on the instruction's guard? */
Uniformity guardUniformity(const AbsState &s, const isa::Instruction &instr);

/** Abstract srcA operand (KnownBits component). */
KnownBits operandA(const AbsState &s, const isa::Instruction &instr);

/** Abstract srcB operand (immediate-aware, KnownBits component). */
KnownBits operandB(const AbsState &s, const isa::Instruction &instr);

/** Full product value of the srcA operand. */
AbsValue valueA(const AbsState &s, const isa::Instruction &instr);

/** Full product value of the srcB operand (immediate-aware). */
AbsValue valueB(const AbsState &s, const isa::Instruction &instr);

/**
 * Abstract result of a register-writing data-path instruction (loads
 * use the matching MemorySummaries member instead; see loadResult).
 */
KnownBits aluResult(const isa::Instruction &instr, const AbsState &s,
                    const isa::LaunchDims &launch);

/** Product-domain result of a register-writing data-path instruction. */
AbsValue aluValue(const isa::Instruction &instr, const AbsState &s,
                  const isa::LaunchDims &launch);

/** Abstract value a load's destination receives. */
KnownBits loadResult(const isa::Instruction &instr,
                     const MemorySummaries &memory);

/** Product-domain load result (lane-uniform when the address is). */
AbsValue loadValue(const isa::Instruction &instr, const AbsState &s,
                   const MemorySummaries &memory);

/** Abstract byte address of a memory instruction (reg[srcA] + imm). */
KnownBits memoryAddress(const AbsState &s, const isa::Instruction &instr);

} // namespace bvf::analysis

#endif // BVF_ANALYSIS_INTERPRETER_HH
