#include "analysis/lint.hh"

#include <algorithm>
#include <cstdio>

#include "analysis/interpreter.hh"

namespace bvf::analysis
{

using isa::Instruction;
using isa::Opcode;

namespace
{

std::string
format(const char *fmt, auto... args)
{
    char buf[160];
    std::snprintf(buf, sizeof buf, fmt, args...);
    return buf;
}

/** Is the guard a real predicate-register read (not the PT sentinel)? */
bool
readsGuard(const Instruction &instr)
{
    return instr.pred != isa::predTrue || instr.predNegate;
}

class Linter
{
  public:
    explicit Linter(const isa::Program &program)
        : program_(program), analysis_(analyzeProgram(program))
    {
    }

    std::vector<LintFinding> run();

  private:
    void add(LintCode code, int pc, std::string message);
    void checkCanonical(int pc, const Instruction &instr);
    void checkReconv(int pc, const Instruction &instr);
    void checkUninit(int pc, const Instruction &instr, const AbsState &in);
    void checkMemoryBounds(int pc, const Instruction &instr,
                           const AbsState &in);
    void checkFallsOffEnd();
    void checkDeadWrites();

    const isa::Program &program_;
    AnalysisResult analysis_;
    std::vector<LintFinding> findings_;
};

void
Linter::add(LintCode code, int pc, std::string message)
{
    findings_.push_back({code, pc, std::move(message)});
}

void
Linter::checkCanonical(int pc, const Instruction &instr)
{
    const Opcode op = instr.op;
    const bool writes_reg = isa::writesRegister(op);
    const bool reads_b = isa::readsSrcB(op);

    if (instr.pred >= isa::numPredicates) {
        add(LintCode::NonCanonical, pc,
            format("predicate %d out of range", int(instr.pred)));
    } else if (instr.pred == isa::predTrue && instr.predNegate) {
        add(LintCode::NonCanonical, pc,
            "guard reads the PT sentinel predicate (p0 with negate)");
    }

    if (op == Opcode::SetP) {
        if (instr.dst >= isa::numPredicates)
            add(LintCode::NonCanonical, pc,
                format("SetP predicate destination %d out of range",
                       int(instr.dst)));
    } else if (writes_reg) {
        if (instr.dst >= isa::numRegisters)
            add(LintCode::NonCanonical, pc,
                format("destination register %d out of range",
                       int(instr.dst)));
    } else if (instr.dst != 0) {
        add(LintCode::NonCanonical, pc,
            format("%s ignores dst but dst=%d", opcodeName(op).c_str(),
                   int(instr.dst)));
    }

    if (isa::readsSrcA(op)) {
        if (instr.srcA >= isa::numRegisters)
            add(LintCode::NonCanonical, pc,
                format("srcA register %d out of range", int(instr.srcA)));
    } else if (instr.srcA != 0) {
        add(LintCode::NonCanonical, pc,
            format("%s ignores srcA but srcA=%d", opcodeName(op).c_str(),
                   int(instr.srcA)));
    }

    if (reads_b && !instr.immB) {
        if (instr.srcB >= isa::numRegisters)
            add(LintCode::NonCanonical, pc,
                format("srcB register %d out of range", int(instr.srcB)));
    } else if (instr.srcB != 0) {
        add(LintCode::NonCanonical, pc,
            format("%s ignores srcB but srcB=%d", opcodeName(op).c_str(),
                   int(instr.srcB)));
    }

    // Stores read srcB from the register file unconditionally, so an
    // immediate-B store would silently use the register anyway.
    if (instr.immB && (!reads_b || isa::isMemoryOp(op))) {
        add(LintCode::NonCanonical, pc,
            format("%s does not take an immediate srcB",
                   opcodeName(op).c_str()));
    }

    if (op == Opcode::SetP || op == Opcode::S2R) {
        if (instr.flags >= 6)
            add(LintCode::NonCanonical, pc,
                format("%s selector flags=%d out of range",
                       opcodeName(op).c_str(), int(instr.flags)));
    } else if (instr.flags != 0) {
        add(LintCode::NonCanonical, pc,
            format("%s ignores flags but flags=%d",
                   opcodeName(op).c_str(), int(instr.flags)));
    }

    const bool uses_imm =
        instr.immB || isa::isMemoryOp(op) || op == Opcode::Bra;
    if (!uses_imm && instr.imm != 0) {
        add(LintCode::NonCanonical, pc,
            format("%s ignores imm but imm=%d", opcodeName(op).c_str(),
                   instr.imm));
    }
    if (instr.imm < -32768 || instr.imm > 32767) {
        add(LintCode::NonCanonical, pc,
            format("imm=%d exceeds the 16-bit encoding", instr.imm));
    }

    if (op != Opcode::Bra && instr.reconv != 0) {
        add(LintCode::NonCanonical, pc,
            format("%s ignores reconv but reconv=%d",
                   opcodeName(op).c_str(), instr.reconv));
    }
}

void
Linter::checkReconv(int pc, const Instruction &instr)
{
    if (instr.op != Opcode::Bra)
        return;
    const int size = static_cast<int>(program_.body.size());
    const int target = instr.imm;
    const int reconv = instr.reconv;
    // Forward branch: reconvergence at or past the target; backward
    // branch (loop): reconvergence strictly past the branch.
    const bool forward = pc < target && target <= reconv && reconv < size;
    const bool backward =
        0 <= target && target <= pc && pc < reconv && reconv < size;
    if (!forward && !backward) {
        add(LintCode::BadReconv, pc,
            format("branch target %d / reconv %d malformed (body size %d)",
                   target, reconv, size));
    }
}

void
Linter::checkUninit(int pc, const Instruction &instr, const AbsState &in)
{
    auto reg_read = [&](std::uint8_t r, const char *role) {
        if (r < isa::numRegisters && !((in.regWritten >> r) & 1u)) {
            add(LintCode::UninitRegRead, pc,
                format("r%d read as %s before any write on some path",
                       int(r), role));
        }
    };
    if (isa::readsSrcA(instr.op))
        reg_read(instr.srcA, "srcA");
    if (isa::readsSrcB(instr.op) && !instr.immB)
        reg_read(instr.srcB, "srcB");
    if (readsDst(instr.op))
        reg_read(instr.dst, "accumulator");

    if (readsGuard(instr) && instr.pred < isa::numPredicates
        && !((in.predWritten >> instr.pred) & 1u)) {
        add(LintCode::UninitPredRead, pc,
            format("p%d guards before any SetP on some path",
                   int(instr.pred)));
    }
}

void
Linter::checkMemoryBounds(int pc, const Instruction &instr,
                          const AbsState &in)
{
    // A provably-false guard means the access never happens.
    if (guardValue(in, instr) == Bool3::False)
        return;

    const KnownBits addr = memoryAddress(in, instr);
    switch (instr.op) {
      case Opcode::Lds:
      case Opcode::Sts: {
        const std::uint32_t bytes = program_.sharedBytesPerBlock;
        if (bytes == 0) {
            add(LintCode::SharedOob, pc,
                "shared access but the block has no shared segment");
        } else if (addr.hi >= bytes) {
            add(LintCode::SharedOob, pc,
                format("shared offset may reach %u of a %u-byte segment "
                       "(wraps)",
                       addr.hi, bytes));
        }
        return;
      }
      case Opcode::Ldc:
      case Opcode::Ldt: {
        const bool tex = instr.op == Opcode::Ldt;
        const auto &image = tex ? program_.texture : program_.constants;
        const LintCode code = tex ? LintCode::TexOob : LintCode::ConstOob;
        const char *space = tex ? "texture" : "constant";
        const auto bytes = static_cast<std::uint32_t>(image.size() * 4);
        if (bytes == 0) {
            add(code, pc, format("%s load but the image is empty", space));
        } else if (addr.hi >= bytes) {
            add(code, pc,
                format("%s offset may reach %u of a %u-byte image (wraps)",
                       space, addr.hi, bytes));
        }
        return;
      }
      default:
        return;
    }
}

void
Linter::checkFallsOffEnd()
{
    const int size = static_cast<int>(program_.body.size());
    if (size == 0) {
        add(LintCode::FallsOffEnd, 0, "empty kernel body");
        return;
    }
    for (int pc = 0; pc < size; ++pc) {
        const auto idx = static_cast<std::size_t>(pc);
        if (!analysis_.in[idx].reachable)
            continue;
        const Instruction &instr = program_.body[idx];
        if (instr.op == Opcode::Exit)
            continue;
        const Bool3 guard = guardValue(analysis_.in[idx], instr);
        const bool falls_through =
            instr.op != Opcode::Bra || guard != Bool3::True;
        const bool takes_branch =
            instr.op == Opcode::Bra && guard != Bool3::False;
        if ((falls_through && pc + 1 >= size)
            || (takes_branch && (instr.imm < 0 || instr.imm >= size))) {
            add(LintCode::FallsOffEnd, pc,
                "execution can run past the last instruction");
        }
    }
}

void
Linter::checkDeadWrites()
{
    const int size = static_cast<int>(program_.body.size());

    // Backward liveness over the syntactic CFG (both branch edges kept,
    // so "dead" means dead on every path).
    std::vector<std::uint64_t> live_regs(static_cast<std::size_t>(size), 0);
    std::vector<std::uint8_t> live_preds(static_cast<std::size_t>(size), 0);

    auto transfer = [&](int pc) {
        const Instruction &instr =
            program_.body[static_cast<std::size_t>(pc)];
        std::uint64_t out_regs = 0;
        std::uint8_t out_preds = 0;
        if (instr.op != Opcode::Exit) {
            if (pc + 1 < size) {
                out_regs |= live_regs[static_cast<std::size_t>(pc + 1)];
                out_preds |= live_preds[static_cast<std::size_t>(pc + 1)];
            }
            if (instr.op == Opcode::Bra && instr.imm >= 0
                && instr.imm < size) {
                out_regs |= live_regs[static_cast<std::size_t>(instr.imm)];
                out_preds |=
                    live_preds[static_cast<std::size_t>(instr.imm)];
            }
        }
        // Kill: only unpredicated writes are certain to overwrite.
        const bool certain = !readsGuard(instr);
        if (certain && isa::writesRegister(instr.op)
            && instr.dst < isa::numRegisters) {
            out_regs &= ~(std::uint64_t(1) << instr.dst);
        }
        if (certain && instr.op == Opcode::SetP
            && instr.dst < isa::numPredicates) {
            out_preds &= static_cast<std::uint8_t>(~(1u << instr.dst));
        }
        // Gen: every register/predicate the instruction reads.
        if (isa::readsSrcA(instr.op) && instr.srcA < isa::numRegisters)
            out_regs |= std::uint64_t(1) << instr.srcA;
        if (isa::readsSrcB(instr.op) && !instr.immB
            && instr.srcB < isa::numRegisters) {
            out_regs |= std::uint64_t(1) << instr.srcB;
        }
        if (readsDst(instr.op) && instr.dst < isa::numRegisters)
            out_regs |= std::uint64_t(1) << instr.dst;
        if (readsGuard(instr) && instr.pred < isa::numPredicates)
            out_preds |= static_cast<std::uint8_t>(1u << instr.pred);
        return std::pair{out_regs, out_preds};
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int pc = size - 1; pc >= 0; --pc) {
            const auto [regs, preds] = transfer(pc);
            const auto idx = static_cast<std::size_t>(pc);
            if (regs != live_regs[idx] || preds != live_preds[idx]) {
                live_regs[idx] = regs;
                live_preds[idx] = preds;
                changed = true;
            }
        }
    }

    auto live_out = [&](int pc) {
        const Instruction &instr =
            program_.body[static_cast<std::size_t>(pc)];
        std::uint64_t regs = 0;
        std::uint8_t preds = 0;
        if (instr.op != Opcode::Exit) {
            if (pc + 1 < size) {
                regs |= live_regs[static_cast<std::size_t>(pc + 1)];
                preds |= live_preds[static_cast<std::size_t>(pc + 1)];
            }
            if (instr.op == Opcode::Bra && instr.imm >= 0
                && instr.imm < size) {
                regs |= live_regs[static_cast<std::size_t>(instr.imm)];
                preds |= live_preds[static_cast<std::size_t>(instr.imm)];
            }
        }
        return std::pair{regs, preds};
    };

    for (int pc = 0; pc < size; ++pc) {
        const auto idx = static_cast<std::size_t>(pc);
        if (!analysis_.in[idx].reachable)
            continue;
        const Instruction &instr = program_.body[idx];
        const auto [regs, preds] = live_out(pc);
        if (isa::writesRegister(instr.op) && instr.dst < isa::numRegisters
            && !((regs >> instr.dst) & 1u)) {
            add(LintCode::DeadWrite, pc,
                format("r%d written but never read afterwards",
                       int(instr.dst)));
        }
        if (instr.op == Opcode::SetP && instr.dst < isa::numPredicates
            && !((preds >> instr.dst) & 1u)) {
            add(LintCode::DeadWrite, pc,
                format("p%d set but never read afterwards",
                       int(instr.dst)));
        }
    }
}

std::vector<LintFinding>
Linter::run()
{
    const int size = static_cast<int>(program_.body.size());
    for (int pc = 0; pc < size; ++pc) {
        const auto idx = static_cast<std::size_t>(pc);
        const Instruction &instr = program_.body[idx];
        checkCanonical(pc, instr);
        checkReconv(pc, instr);
        if (!analysis_.in[idx].reachable) {
            add(LintCode::Unreachable, pc,
                format("%s is unreachable", opcodeName(instr.op).c_str()));
            continue;
        }
        checkUninit(pc, instr, analysis_.in[idx]);
        if (isa::isMemoryOp(instr.op))
            checkMemoryBounds(pc, instr, analysis_.in[idx]);
    }
    checkFallsOffEnd();
    checkDeadWrites();

    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const LintFinding &a, const LintFinding &b) {
                         return a.pc < b.pc;
                     });
    return std::move(findings_);
}

} // namespace

std::string
lintCodeName(LintCode code)
{
    switch (code) {
      case LintCode::UninitRegRead: return "uninit-reg-read";
      case LintCode::UninitPredRead: return "uninit-pred-read";
      case LintCode::DeadWrite: return "dead-write";
      case LintCode::Unreachable: return "unreachable";
      case LintCode::SharedOob: return "shared-oob";
      case LintCode::ConstOob: return "const-oob";
      case LintCode::TexOob: return "tex-oob";
      case LintCode::NonCanonical: return "non-canonical";
      case LintCode::BadReconv: return "bad-reconv";
      case LintCode::FallsOffEnd: return "falls-off-end";
    }
    return "unknown";
}

std::string
LintFinding::toString() const
{
    return "pc " + std::to_string(pc) + ": " + lintCodeName(code) + ": "
           + message;
}

std::vector<LintFinding>
lintProgram(const isa::Program &program)
{
    return Linter(program).run();
}

} // namespace bvf::analysis
