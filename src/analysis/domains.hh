/**
 * @file
 * Additional abstract domains for the analysis-v2 product lattice.
 *
 * PR 3's interpreter hard-wired the KnownBits lattice. The product
 * interpreter (analysis/product.hh + interpreter.hh) combines it with
 * the two domains defined here:
 *
 *  - SignedInterval: a signed 32-bit interval [slo, shi]. It sees order
 *    facts KnownBits misses (e.g. after `min` with a negative constant)
 *    and sharpens SetP guards; the product reduction copies facts both
 *    ways (reduceValue in interpreter.hh).
 *
 *  - LaneAffine: the lane-structure domain behind the static coder
 *    advisor. A non-top element asserts that the full 32-lane warp
 *    vector of a register is affine in the lane index: for every warp
 *    and every pair of lanes i, j the values satisfy
 *    v_i - v_j == stride * (i - j)  (mod 2^32). Uniform values are the
 *    stride-0 case. Because this is a *relational* fact about a whole
 *    warp vector -- not a per-thread fact -- it is only sound while
 *    every write to the register was executed by all 32 lanes together;
 *    the interpreter tops it out for writes under possibly-divergent
 *    guards or inside divergent CFG regions.
 *
 * Predicate vectors get the small Uniformity lattice (Uniform <
 * MayDiverge) used both to keep LaneAffine writes honest and to decide
 * which branches can split a warp.
 */

#ifndef BVF_ANALYSIS_DOMAINS_HH
#define BVF_ANALYSIS_DOMAINS_HH

#include <cstdint>
#include <limits>
#include <string>

#include "analysis/known_bits.hh"
#include "common/bitops.hh"
#include "isa/opcode.hh"

namespace bvf::analysis
{

// --- signed interval ---------------------------------------------------

/**
 * Signed 32-bit interval [slo, shi]. Invariant: slo <= shi (the factory
 * functions and transfer functions maintain it; there is no empty
 * element -- an impossible intersection is simply not applied, see
 * reduceValue).
 */
struct SignedInterval
{
    std::int32_t slo = std::numeric_limits<std::int32_t>::min();
    std::int32_t shi = std::numeric_limits<std::int32_t>::max();

    /** The completely unknown value. */
    static SignedInterval top() { return {}; }

    /** Exact constant (reinterpreting the word as two's complement). */
    static SignedInterval
    constant(Word v)
    {
        const auto x = static_cast<std::int32_t>(v);
        return {x, x};
    }

    /** The interval [lo, hi]; requires lo <= hi. */
    static SignedInterval
    range(std::int32_t lo, std::int32_t hi)
    {
        return {lo, hi};
    }

    bool
    isTop() const
    {
        return slo == std::numeric_limits<std::int32_t>::min()
               && shi == std::numeric_limits<std::int32_t>::max();
    }

    bool isConstant() const { return slo == shi; }

    /** Does the concrete word @p v (as signed) lie in the interval? */
    bool
    contains(Word v) const
    {
        const auto x = static_cast<std::int32_t>(v);
        return x >= slo && x <= shi;
    }

    bool operator==(const SignedInterval &o) const = default;

    /** "[-8, 31]" rendering for diagnostics. */
    std::string toString() const;
};

/** Join (least upper bound): the interval hull. */
SignedInterval join(const SignedInterval &a, const SignedInterval &b);

/**
 * Widening: any endpoint still moving after the interpreter's widening
 * threshold is sent straight to its extreme so loops terminate.
 */
SignedInterval widen(const SignedInterval &prev, const SignedInterval &next);

/** a + b with 32-bit wrap; overflow anywhere in the box goes to top. */
SignedInterval siAdd(const SignedInterval &a, const SignedInterval &b);

/** a - b with 32-bit wrap; overflow anywhere in the box goes to top. */
SignedInterval siSub(const SignedInterval &a, const SignedInterval &b);

/** a * b with 32-bit wrap; overflow anywhere in the box goes to top. */
SignedInterval siMul(const SignedInterval &a, const SignedInterval &b);

/** Signed min/max, as Opcode::Min/Max compute them. */
SignedInterval siMinSigned(const SignedInterval &a, const SignedInterval &b);
SignedInterval siMaxSigned(const SignedInterval &a, const SignedInterval &b);

/** Signed comparison as Opcode::SetP evaluates it. */
Bool3 siCompare(isa::CmpOp cmp, const SignedInterval &a,
                const SignedInterval &b);

// --- lane-affine warp vectors ------------------------------------------

/**
 * Lane-affine abstraction of a full 32-lane warp vector; see the file
 * comment. Top is "no lane relation known".
 */
struct LaneAffine
{
    bool known = false; //!< false => top
    Word stride = 0;    //!< v_i - v_j == stride * (i - j) mod 2^32

    static LaneAffine top() { return {}; }

    /** All lanes provably equal (any uniform value, not only constants). */
    static LaneAffine uniform() { return {true, 0}; }

    /** Immediates and other compile-time constants are lane-uniform. */
    static LaneAffine constant(Word) { return uniform(); }

    static LaneAffine strided(Word s) { return {true, s}; }

    bool isUniform() const { return known && stride == 0; }

    /**
     * Does the concrete 32-lane vector @p lanes satisfy the relation?
     * Top contains every vector.
     */
    bool contains(const Word *lanes, int n = 32) const;

    bool operator==(const LaneAffine &o) const = default;

    /** "affine(stride 4)" / "uniform" / "top" rendering. */
    std::string toString() const;
};

/** Join: equal strides agree, anything else forgets the relation. */
LaneAffine join(const LaneAffine &a, const LaneAffine &b);

/** The lattice has height 2; widening is the identity on the join. */
inline LaneAffine
widen(const LaneAffine &, const LaneAffine &next)
{
    return next;
}

/** Lanewise sum/difference of two affine vectors. */
LaneAffine laAdd(const LaneAffine &a, const LaneAffine &b);
LaneAffine laSub(const LaneAffine &a, const LaneAffine &b);

/** Affine vector scaled by the lane-invariant constant @p c. */
LaneAffine laScale(const LaneAffine &a, Word c);

// --- predicate uniformity ----------------------------------------------

/** Can the 32 lanes of a warp disagree on a predicate's value? */
enum class Uniformity : std::uint8_t
{
    Uniform,    //!< all lanes provably hold the same value
    MayDiverge, //!< lanes may disagree
};

constexpr Uniformity
join(Uniformity a, Uniformity b)
{
    return a == b ? a : Uniformity::MayDiverge;
}

} // namespace bvf::analysis

#endif // BVF_ANALYSIS_DOMAINS_HH
