/**
 * @file
 * eBPF-style static admission verifier for untrusted kernels.
 *
 * Untrusted programs (bvf_client submit, the bytecode decoder, the
 * assembler) reach the simulator only through verifyProgram. The
 * verifier reuses the reduced-product abstract interpreter
 * (analysis/interpreter.hh) and admits a program only when it can
 * *prove*, before any SM cycle runs:
 *
 *  - every instruction is canonical (lint NonCanonical rules) and
 *    every branch target / reconvergence point is structurally sound,
 *  - every register and predicate guard is written before it is read,
 *  - barriers cannot be issued by a partially-masked warp and
 *    divergence nests shallowly enough to model,
 *  - every memory access stays inside its declared segment (shared,
 *    constant, texture: [0, bytes); global: the absolute window
 *    [globalSegmentBase, globalSegmentBase + globalBytes())) -- the
 *    dynamic pipeline absorbs out-of-bounds accesses silently, the
 *    verifier rejects them loudly,
 *  - one warp's dynamic instruction issue count is bounded: loops are
 *    peeled with per-iteration abstract states, unknown-guard forward
 *    branches fork into both arms and rejoin at the reconvergence
 *    point (issue counts add when the warp may split, take the max
 *    when the guard is lane-uniform), and an unknown-guard *backward*
 *    branch or an exhausted abstract-step budget is a BudgetExceeded
 *    rejection: not provably terminating means not admitted.
 *
 * Every rejection carries a machine-readable reason and the offending
 * pc. Every acceptance carries a Certificate: the proven per-warp
 * trip bound and per-space memory footprints, which the simulator
 * enforces at run time as a contract (core/contract.hh) -- a contract
 * violation is a verifier soundness bug and aborts loudly.
 */

#ifndef BVF_ANALYSIS_VERIFIER_HH
#define BVF_ANALYSIS_VERIFIER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace bvf::analysis
{

/** Why a program was refused admission. */
enum class RejectReason
{
    MalformedInstruction, //!< non-canonical encoding field
    BadBranch,            //!< branch target / reconv point malformed
    BadLaunch,            //!< launch geometry out of range
    ResourceLimit,        //!< body/image/shared/name beyond the caps
    UninitRead,           //!< register/predicate read before any write
    IllFormedDivergence,  //!< partial-warp barrier or unmodelable nesting
    MemoryOutOfBounds,    //!< access not provably inside its segment
    FallsOffEnd,          //!< execution can run past the last instruction
    BudgetExceeded,       //!< termination not provable within the budget
};

constexpr int kNumRejectReasons = 9;

/** Stable machine-readable name, e.g. "budget-exceeded". */
std::string rejectReasonName(RejectReason reason);

struct Rejection
{
    RejectReason reason;
    int pc;              //!< offending instruction index (0 for global)
    std::string message; //!< human-readable detail

    /** "pc 12: budget-exceeded: ..." rendering. */
    std::string toString() const;
};

/**
 * Inclusive byte-address hull of every access the abstract exploration
 * observed in one memory space (addresses are the per-access base
 * bytes: reg[srcA] + imm).
 */
struct FootprintBounds
{
    bool accessed = false;
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;

    void
    cover(std::uint32_t accessLo, std::uint32_t accessHi)
    {
        if (!accessed) {
            lo = accessLo;
            hi = accessHi;
            accessed = true;
            return;
        }
        lo = accessLo < lo ? accessLo : lo;
        hi = accessHi > hi ? accessHi : hi;
    }

    bool
    contains(std::uint32_t addr) const
    {
        return accessed && addr >= lo && addr <= hi;
    }
};

/**
 * What admission proved. The simulator enforces this as a runtime
 * contract: any warp issuing more than warpTripBound instructions, or
 * any access outside the footprint of its space, is a verifier
 * soundness bug.
 */
struct Certificate
{
    /** Upper bound on instructions one warp issues before retiring. */
    std::uint64_t warpTripBound = 0;

    /** Abstract transfer steps the exploration spent (diagnostics). */
    std::uint64_t abstractSteps = 0;

    FootprintBounds global;   //!< absolute byte addresses
    FootprintBounds shared;   //!< segment-relative byte offsets
    FootprintBounds constant; //!< image-relative byte offsets
    FootprintBounds texture;  //!< image-relative byte offsets

    /**
     * Every reachable branch is proven non-divergent: its guard is
     * either decided (all-taken or none-taken) or uniform across the
     * warp, so the SIMT reconvergence stack provably never grows past
     * its initial frame. The SM uses this to run the specialized
     * dispatch loop that skips divergence bookkeeping; Warp::diverge
     * firing under this flag is a verifier soundness bug.
     */
    bool uniformControlFlow = false;
};

/** Admission limits; the defaults fit the Table 3 machine. */
struct VerifyOptions
{
    /** Abstract transfer steps before BudgetExceeded. */
    std::uint64_t stepBudget = 1u << 20;

    std::uint32_t maxBodyInstructions = 1u << 16;
    std::uint32_t maxImageWords = 1u << 20;
    std::uint32_t maxSharedBytes = 48u * 1024u;
    std::uint32_t maxNameBytes = 256;
    int maxBlockThreads = 1024;
    int maxGridBlocks = 1 << 16;

    /** Nested unknown-guard forward branches the explorer models. */
    int maxForkDepth = 64;
};

struct Verdict
{
    bool admitted = false;

    /** Empty iff admitted; sorted by pc. */
    std::vector<Rejection> rejections;

    /** Meaningful only when admitted. */
    Certificate certificate;
};

/**
 * Statically verify @p program for admission. Total over every
 * decodeProgram / parseAsm result: never crashes, never simulates.
 */
Verdict verifyProgram(const isa::Program &program,
                      const VerifyOptions &options = {});

} // namespace bvf::analysis

#endif // BVF_ANALYSIS_VERIFIER_HH
