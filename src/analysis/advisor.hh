/**
 * @file
 * Static coder-selection advisor.
 *
 * The predictor (predictor.hh) proves density bounds for the coder
 * wiring it is told about; this module turns the analysis facts into
 * the wiring itself. From the lane-affine component of the abstract
 * interpreter it derives, per candidate VS pivot lane, a proven bound
 * on the one-density of the register file's VS-coded stream, ranks the
 * 32 candidates, and reports how far the dynamic optimum can possibly
 * beat the static choice (the proven slack). From the program's actual
 * instruction encodings it specializes the ISA preference mask (the
 * paper's dynamic-ISA variant, Section 4.3) and bounds the gain
 * exactly. Per unit it ranks NV against VS from the proven intervals,
 * flagging ranks whose intervals do not overlap as proven.
 *
 * The pivot math: a register source whose 32-lane vector is proven
 * affine in the lane index (v_i = v_p + s * (i - p) mod 2^32) has, for
 * any pivot p and non-pivot lane i, a difference d = s * (i - p). When
 * d == 0 the XNOR against the pivot is all ones. Otherwise, with
 * t = ctz(d), the low t bits of v_i and v_p agree (adding d cannot
 * carry into them), bit t provably differs (no carry reaches it), and
 * bits the interpreter proved constant agree in every lane -- giving a
 * per-lane Hamming-distance interval and hence a one-density interval
 * for the coded word. Hulling over lanes and sources yields the
 * per-pivot bound that bvf_sim --check-advice validates dynamically.
 */

#ifndef BVF_ANALYSIS_ADVISOR_HH
#define BVF_ANALYSIS_ADVISOR_HH

#include <array>
#include <string>
#include <vector>

#include "analysis/predictor.hh"
#include "isa/encoding.hh"

namespace bvf::analysis
{

/** Knobs mirroring the run the advice is meant to configure. */
struct AdvisorOptions
{
    isa::GpuArch arch = isa::GpuArch::Pascal;

    /** Data/texture cache line size in bytes (GpuConfig::lineBytes). */
    std::uint32_t lineBytes = 128;
};

/** The advisor's VS register-pivot ranking. */
struct PivotAdvice
{
    /**
     * Proven one-density interval of the register file's raw VS-coded
     * stream for every candidate pivot lane. any == false means the
     * program provably never touches the register file.
     */
    std::array<DensityBound, 32> bounds{};

    /**
     * Ranking score per pivot: the mean over sources of the source's
     * bound midpoint. Unlike the hull bounds -- where one unbounded
     * source pins every pivot's lo to 0 -- the mean keeps the pivots
     * distinguishable, so it drives the choice; the hull bounds remain
     * the checkable certificate.
     */
    std::array<double, 32> score{};

    /** The statically chosen pivot lane. */
    int bestPivot = coder::VsCoder::defaultRegisterPivot;

    /**
     * Proven cap on how much any other pivot's measured density can
     * exceed the chosen pivot's: max_p hi(p) - lo(bestPivot), clamped
     * to >= 0. A dynamic sweep beating the advice by more than this is
     * a soundness bug somewhere in the pipeline.
     */
    double provenSlack = 1.0;

    /** Register sources carrying a usable lane-affine fact. */
    int affineSources = 0;

    /** All register sources feeding the bounds. */
    int totalSources = 0;
};

/** ISA-mask specialization derived from the program's own encodings. */
struct IsaAdvice
{
    Word64 defaultMask = 0;      //!< Table 2 mask of the architecture
    Word64 specializedMask = 0;  //!< majority mask of this body

    /** Exact coded-density hulls of the body under each mask. */
    RatioBound defaultDensity;
    RatioBound specializedDensity;
    bool anyInstruction = false;

    /** Static opcode counts the specialization was derived from. */
    std::array<std::uint32_t,
               static_cast<std::size_t>(isa::Opcode::NumOpcodes)>
        histogram{};
};

/** Per-unit NV-vs-VS ranking from the proven intervals. */
struct UnitPick
{
    coder::UnitId unit = coder::UnitId::Reg;
    DensityBound nv;    //!< NvOnly bound for the unit
    DensityBound vs;    //!< VsOnly bound (Reg uses the advised pivot)
    coder::Scenario pick = coder::Scenario::NvOnly;

    /** True when the winner's interval lies wholly above the loser's. */
    bool proven = false;
};

/** Everything the advisor derives for one kernel. */
struct StaticAdvice
{
    PivotAdvice pivot;
    IsaAdvice isa;
    std::vector<UnitPick> unitPicks;

    /**
     * Full density prediction under the advised wiring (specialized
     * ISA mask, advised register pivot). Advisory: --check-advice
     * validates the pivot bounds; check-static validates predictions
     * for the wiring a run actually used.
     */
    StaticPrediction prediction;

    /** Scenario ranking under the advised wiring. */
    coder::Scenario bestScenario = coder::Scenario::Baseline;
};

/**
 * Derive coder advice for @p program. @p analysis must come from
 * analyzeProgram on the same program.
 */
StaticAdvice adviseProgram(const isa::Program &program,
                           const AnalysisResult &analysis,
                           const AdvisorOptions &options = {});

/** Human-readable per-kernel report (bvf_lint --advise). */
std::string renderAdviceReport(const std::string &name,
                               const StaticAdvice &advice);

/** Machine-readable JSON object (bvf_lint --advise --json). */
std::string adviceJson(const std::string &name, const StaticAdvice &advice);

} // namespace bvf::analysis

#endif // BVF_ANALYSIS_ADVISOR_HH
