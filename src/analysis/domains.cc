#include "analysis/domains.hh"

#include <algorithm>
#include <cstdio>

namespace bvf::analysis
{

namespace
{

constexpr std::int64_t kMin32 = std::numeric_limits<std::int32_t>::min();
constexpr std::int64_t kMax32 = std::numeric_limits<std::int32_t>::max();

/**
 * Clamp a 64-bit box back into a 32-bit interval. Wrapping arithmetic
 * means an overflowing endpoint invalidates the whole box, not just the
 * endpoint, so anything outside [INT32_MIN, INT32_MAX] goes to top.
 */
SignedInterval
fit(std::int64_t lo, std::int64_t hi)
{
    if (lo < kMin32 || hi > kMax32)
        return SignedInterval::top();
    return {static_cast<std::int32_t>(lo), static_cast<std::int32_t>(hi)};
}

} // namespace

std::string
SignedInterval::toString() const
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "[%d, %d]", slo, shi);
    return buf;
}

SignedInterval
join(const SignedInterval &a, const SignedInterval &b)
{
    return {std::min(a.slo, b.slo), std::max(a.shi, b.shi)};
}

SignedInterval
widen(const SignedInterval &prev, const SignedInterval &next)
{
    SignedInterval w = next;
    if (next.slo < prev.slo)
        w.slo = std::numeric_limits<std::int32_t>::min();
    if (next.shi > prev.shi)
        w.shi = std::numeric_limits<std::int32_t>::max();
    return w;
}

SignedInterval
siAdd(const SignedInterval &a, const SignedInterval &b)
{
    return fit(std::int64_t(a.slo) + b.slo, std::int64_t(a.shi) + b.shi);
}

SignedInterval
siSub(const SignedInterval &a, const SignedInterval &b)
{
    return fit(std::int64_t(a.slo) - b.shi, std::int64_t(a.shi) - b.slo);
}

SignedInterval
siMul(const SignedInterval &a, const SignedInterval &b)
{
    const std::int64_t c[4] = {
        std::int64_t(a.slo) * b.slo,
        std::int64_t(a.slo) * b.shi,
        std::int64_t(a.shi) * b.slo,
        std::int64_t(a.shi) * b.shi,
    };
    return fit(*std::min_element(c, c + 4), *std::max_element(c, c + 4));
}

SignedInterval
siMinSigned(const SignedInterval &a, const SignedInterval &b)
{
    return {std::min(a.slo, b.slo), std::min(a.shi, b.shi)};
}

SignedInterval
siMaxSigned(const SignedInterval &a, const SignedInterval &b)
{
    return {std::max(a.slo, b.slo), std::max(a.shi, b.shi)};
}

Bool3
siCompare(isa::CmpOp cmp, const SignedInterval &a, const SignedInterval &b)
{
    switch (cmp) {
      case isa::CmpOp::Lt:
        if (a.shi < b.slo)
            return Bool3::True;
        if (a.slo >= b.shi)
            return Bool3::False;
        return Bool3::Unknown;
      case isa::CmpOp::Le:
        if (a.shi <= b.slo)
            return Bool3::True;
        if (a.slo > b.shi)
            return Bool3::False;
        return Bool3::Unknown;
      case isa::CmpOp::Gt:
        return not3(siCompare(isa::CmpOp::Le, a, b));
      case isa::CmpOp::Ge:
        return not3(siCompare(isa::CmpOp::Lt, a, b));
      case isa::CmpOp::Eq:
        if (a.isConstant() && b.isConstant())
            return a.slo == b.slo ? Bool3::True : Bool3::False;
        if (a.shi < b.slo || b.shi < a.slo)
            return Bool3::False;
        return Bool3::Unknown;
      case isa::CmpOp::Ne:
        return not3(siCompare(isa::CmpOp::Eq, a, b));
    }
    return Bool3::Unknown;
}

bool
LaneAffine::contains(const Word *lanes, int n) const
{
    if (!known)
        return true;
    for (int i = 1; i < n; ++i) {
        if (lanes[i] != static_cast<Word>(lanes[0] + stride * Word(i)))
            return false;
    }
    return true;
}

std::string
LaneAffine::toString() const
{
    if (!known)
        return "top";
    if (stride == 0)
        return "uniform";
    char buf[32];
    std::snprintf(buf, sizeof buf, "affine(stride %u)", stride);
    return buf;
}

LaneAffine
join(const LaneAffine &a, const LaneAffine &b)
{
    if (a.known && b.known && a.stride == b.stride)
        return a;
    return LaneAffine::top();
}

LaneAffine
laAdd(const LaneAffine &a, const LaneAffine &b)
{
    if (a.known && b.known)
        return LaneAffine::strided(a.stride + b.stride);
    return LaneAffine::top();
}

LaneAffine
laSub(const LaneAffine &a, const LaneAffine &b)
{
    if (a.known && b.known)
        return LaneAffine::strided(a.stride - b.stride);
    return LaneAffine::top();
}

LaneAffine
laScale(const LaneAffine &a, Word c)
{
    if (a.known)
        return LaneAffine::strided(a.stride * c);
    return LaneAffine::top();
}

} // namespace bvf::analysis
