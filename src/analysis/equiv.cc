/**
 * @file
 * Translation validator implementation.
 *
 * Layer 1 re-derives every fact from the *original* program: the
 * reduced-product analysis justifies constant folds, identity
 * reductions and branch unpredications; a deletion-restricted backward
 * liveness justifies dead-write removal (gens and kills come only from
 * kept instructions, so a cascade of deletions is checked as the set it
 * is, not one edit at a time); and copy propagation is justified by a
 * direct backward scan for the reaching unpredicated MOV -- a different
 * algorithm from the optimizer's forward tracking on purpose.
 *
 * Layer 2 is the reference interpreter: a functional mirror of
 * gpu/sm.cc (same per-lane ALU results, the same shared-memory index
 * wrap, the same constant/texture modulo-and-align, the same
 * out-of-bounds global behavior, the same SIMT stack discipline and
 * barrier release rule) without any timing model. Both programs run
 * under the same deterministic schedule and must produce the same
 * store sequence and final memory.
 */

#include "analysis/equiv.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "analysis/interpreter.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/bytecode.hh"
#include "isa/opcode.hh"

namespace bvf::analysis
{

namespace
{

using isa::Instruction;
using isa::Opcode;

constexpr int kWarpSize = 32;
constexpr std::uint32_t kFullMask = 0xffffffffu;

/** Reinterpret a word as fp32 (matches the SM's data path). */
float
asFloat(Word w)
{
    float f;
    std::memcpy(&f, &w, sizeof(f));
    return f;
}

Word
asWord(float f)
{
    Word w;
    std::memcpy(&w, &f, sizeof(w));
    return w;
}

std::int32_t
asInt(Word w)
{
    return static_cast<std::int32_t>(w);
}

/** Is the guard a real predicate-register read (not the PT sentinel)? */
bool
readsGuard(const Instruction &instr)
{
    return instr.pred != isa::predTrue || instr.predNegate;
}

/** Is the product value pinned to a single word? */
bool
constantOf(const AbsValue &v, Word &out)
{
    if (v.kb().isConstant()) {
        out = v.kb().knownOne;
        return true;
    }
    if (v.si().slo == v.si().shi) {
        out = static_cast<Word>(v.si().slo);
        return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// Reference interpreter
// ---------------------------------------------------------------------

struct SimtFrame
{
    int pc;
    std::uint32_t mask;
    int rpc;
};

struct RefWarp
{
    std::array<std::array<Word, isa::numRegisters>, kWarpSize> regs{};
    std::array<std::array<bool, isa::numPredicates>, kWarpSize> preds{};
    std::vector<SimtFrame> stack;
    std::uint32_t existMask = kFullMask;
    int warpIdInBlock = 0;
    int blockId = 0;
    bool done = false;
    bool atBarrier = false;
    bool aborted = false;
};

class RefMachine
{
  public:
    RefMachine(const isa::Program &program, std::uint64_t maxSteps)
        : program_(program), global_(program.global), budget_(maxSteps)
    {
    }

    RefObservation
    run()
    {
        RefObservation obs;
        obs.finished = true;
        for (int block = 0; block < program_.launch.gridBlocks; ++block) {
            if (!runBlock(block, obs)) {
                obs.finished = false;
                break;
            }
        }
        obs.globalFinal = global_;
        std::swap(obs.stores, stores_);
        std::swap(obs.sharedFinal, sharedFinal_);
        return obs;
    }

  private:
    bool
    runBlock(int blockId, RefObservation &obs)
    {
        const int threads = program_.launch.blockThreads;
        const int num_warps = program_.launch.warpsPerBlock();
        shared_.assign(program_.sharedBytesPerBlock / 4, 0);

        std::vector<RefWarp> warps(static_cast<std::size_t>(num_warps));
        for (int w = 0; w < num_warps; ++w) {
            RefWarp &warp = warps[static_cast<std::size_t>(w)];
            const int live = std::min(kWarpSize, threads - w * kWarpSize);
            warp.existMask = live == kWarpSize
                                 ? kFullMask
                                 : ((1u << live) - 1u);
            warp.warpIdInBlock = w;
            warp.blockId = blockId;
            warp.stack.push_back(
                SimtFrame{0, warp.existMask, -1});
        }

        for (;;) {
            bool progressed = false;
            for (RefWarp &warp : warps) {
                while (!warp.done && !warp.atBarrier) {
                    if (budget_ == 0)
                        return false;
                    --budget_;
                    stepWarp(warp);
                    if (warp.aborted)
                        return false;
                    progressed = true;
                }
            }
            bool all_done = true;
            bool any_waiting = false;
            for (const RefWarp &warp : warps) {
                all_done = all_done && warp.done;
                any_waiting = any_waiting || warp.atBarrier;
            }
            if (all_done)
                break;
            if (!any_waiting && !progressed)
                return false; // wedged; cannot happen on admitted code
            // Every live warp is waiting: release the barrier, exactly
            // as Sm::handleBarrierRelease does.
            for (RefWarp &warp : warps)
                warp.atBarrier = false;
        }
        (void)obs;
        sharedFinal_.push_back(shared_);
        return true;
    }

    std::uint32_t
    guardMaskOf(const RefWarp &warp, const Instruction &instr) const
    {
        const std::uint32_t mask = warp.stack.back().mask;
        if (instr.pred == isa::predTrue && !instr.predNegate)
            return mask;
        std::uint32_t pass = 0;
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!((mask >> lane) & 1u))
                continue;
            bool p = warp.preds[static_cast<std::size_t>(lane)]
                               [instr.pred];
            if (instr.predNegate)
                p = !p;
            if (p)
                pass |= 1u << lane;
        }
        return pass;
    }

    Word
    readGlobal(std::uint32_t addr) const
    {
        if (addr < isa::globalSegmentBase)
            return 0;
        const std::size_t idx = (addr - isa::globalSegmentBase) / 4;
        return idx < global_.size() ? global_[idx] : 0;
    }

    void
    writeGlobal(std::uint32_t addr, Word v)
    {
        if (addr < isa::globalSegmentBase)
            return;
        const std::size_t idx = (addr - isa::globalSegmentBase) / 4;
        if (idx < global_.size())
            global_[idx] = v;
    }

    Word
    specialValue(const RefWarp &warp, int lane, isa::SpecialReg sr) const
    {
        switch (sr) {
          case isa::SpecialReg::LaneId:
            return static_cast<Word>(lane);
          case isa::SpecialReg::WarpId:
            return static_cast<Word>(warp.warpIdInBlock);
          case isa::SpecialReg::TidX:
            return static_cast<Word>(warp.warpIdInBlock * kWarpSize
                                     + lane);
          case isa::SpecialReg::CtaIdX:
            return static_cast<Word>(warp.blockId);
          case isa::SpecialReg::NTidX:
            return static_cast<Word>(program_.launch.blockThreads);
          case isa::SpecialReg::GridDimX:
            return static_cast<Word>(program_.launch.gridBlocks);
        }
        return 0;
    }

    void
    stepWarp(RefWarp &warp)
    {
        while (warp.stack.size() > 1
               && warp.stack.back().pc == warp.stack.back().rpc) {
            warp.stack.pop_back();
        }
        const int pc = warp.stack.back().pc;
        const int size = static_cast<int>(program_.body.size());
        if (pc < 0 || pc >= size) {
            warp.aborted = true;
            return;
        }
        const Instruction &instr =
            program_.body[static_cast<std::size_t>(pc)];
        const std::uint32_t guard = guardMaskOf(warp, instr);
        auto advance = [&] { ++warp.stack.back().pc; };

        switch (instr.op) {
          case Opcode::Bra: {
            const std::uint32_t active = warp.stack.back().mask;
            if (guard == 0) {
                advance();
            } else if (guard == active) {
                warp.stack.back().pc = instr.imm;
            } else {
                SimtFrame &top = warp.stack.back();
                const std::uint32_t not_taken = top.mask & ~guard;
                top.pc = instr.reconv;
                warp.stack.push_back(
                    SimtFrame{pc + 1, not_taken, instr.reconv});
                warp.stack.push_back(
                    SimtFrame{instr.imm, guard, instr.reconv});
            }
            return;
          }
          case Opcode::Exit:
            warp.done = true;
            return;
          case Opcode::Bar:
            warp.atBarrier = true;
            advance();
            return;
          case Opcode::Nop:
            advance();
            return;
          default:
            break;
        }

        if (isa::isMemoryOp(instr.op)) {
            if (guard != 0)
                executeMemory(warp, instr, guard);
            advance();
            return;
        }

        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!((guard >> lane) & 1u))
                continue;
            auto &regs = warp.regs[static_cast<std::size_t>(lane)];
            const Word a = regs[instr.srcA];
            const Word b = instr.immB ? static_cast<Word>(instr.imm)
                                      : regs[instr.srcB];
            Word result = 0;
            switch (instr.op) {
              case Opcode::Ffma:
                result = asWord(asFloat(a) * asFloat(b)
                                + asFloat(regs[instr.dst]));
                break;
              case Opcode::Fadd:
                result = asWord(asFloat(a) + asFloat(b));
                break;
              case Opcode::Fmul:
                result = asWord(asFloat(a) * asFloat(b));
                break;
              case Opcode::IAdd:
                result = a + b;
                break;
              case Opcode::ISub:
                result = a - b;
                break;
              case Opcode::IMul:
                result = a * b;
                break;
              case Opcode::IMad:
                result = a * b + regs[instr.dst];
                break;
              case Opcode::Mov:
                result = b;
                break;
              case Opcode::S2R:
                result = specialValue(
                    warp, lane,
                    static_cast<isa::SpecialReg>(instr.flags));
                break;
              case Opcode::Shl:
                result = a << (b & 31u);
                break;
              case Opcode::Shr:
                result = a >> (b & 31u);
                break;
              case Opcode::And:
                result = a & b;
                break;
              case Opcode::Or:
                result = a | b;
                break;
              case Opcode::Xor:
                result = a ^ b;
                break;
              case Opcode::I2F:
                result = asWord(static_cast<float>(asInt(a)));
                break;
              case Opcode::F2I:
                result = static_cast<Word>(
                    static_cast<std::int32_t>(asFloat(a)));
                break;
              case Opcode::Clz:
                result = static_cast<Word>(std::countl_zero(a));
                break;
              case Opcode::Min:
                result = static_cast<Word>(
                    std::min(asInt(a), asInt(b)));
                break;
              case Opcode::Max:
                result = static_cast<Word>(
                    std::max(asInt(a), asInt(b)));
                break;
              case Opcode::SetP: {
                const std::int32_t sa = asInt(a);
                const std::int32_t sb = asInt(b);
                bool p = false;
                switch (static_cast<isa::CmpOp>(instr.flags)) {
                  case isa::CmpOp::Lt: p = sa < sb; break;
                  case isa::CmpOp::Le: p = sa <= sb; break;
                  case isa::CmpOp::Gt: p = sa > sb; break;
                  case isa::CmpOp::Ge: p = sa >= sb; break;
                  case isa::CmpOp::Eq: p = sa == sb; break;
                  case isa::CmpOp::Ne: p = sa != sb; break;
                }
                warp.preds[static_cast<std::size_t>(lane)][instr.dst] =
                    p;
                continue;
              }
              default:
                warp.aborted = true;
                return;
            }
            regs[instr.dst] = result;
        }
        advance();
    }

    void
    executeMemory(RefWarp &warp, const Instruction &instr,
                  std::uint32_t guard)
    {
        switch (instr.op) {
          case Opcode::Ldg:
            for (int lane = 0; lane < kWarpSize; ++lane) {
                if (!((guard >> lane) & 1u))
                    continue;
                auto &regs = warp.regs[static_cast<std::size_t>(lane)];
                const std::uint32_t a =
                    regs[instr.srcA]
                    + static_cast<std::uint32_t>(instr.imm);
                regs[instr.dst] = readGlobal(a);
            }
            return;
          case Opcode::Stg: {
            RefStore store;
            store.space = 'g';
            for (int lane = 0; lane < kWarpSize; ++lane) {
                if (!((guard >> lane) & 1u))
                    continue;
                auto &regs = warp.regs[static_cast<std::size_t>(lane)];
                const std::uint32_t a =
                    regs[instr.srcA]
                    + static_cast<std::uint32_t>(instr.imm);
                const Word v = regs[instr.srcB];
                writeGlobal(a, v);
                store.writes.emplace_back(a, v);
            }
            stores_.push_back(std::move(store));
            return;
          }
          case Opcode::Lds:
          case Opcode::Sts: {
            const bool is_store = instr.op == Opcode::Sts;
            const std::size_t shared_words = shared_.size();
            RefStore store;
            store.space = 's';
            for (int lane = 0; lane < kWarpSize; ++lane) {
                if (!((guard >> lane) & 1u))
                    continue;
                auto &regs = warp.regs[static_cast<std::size_t>(lane)];
                const std::uint32_t a =
                    regs[instr.srcA]
                    + static_cast<std::uint32_t>(instr.imm);
                const std::size_t idx =
                    shared_words ? (a / 4) % shared_words : 0;
                if (is_store) {
                    const Word v = regs[instr.srcB];
                    if (shared_words)
                        shared_[idx] = v;
                    store.writes.emplace_back(
                        static_cast<std::uint32_t>(idx), v);
                } else {
                    regs[instr.dst] =
                        shared_words ? shared_[idx] : 0;
                }
            }
            if (is_store)
                stores_.push_back(std::move(store));
            return;
          }
          case Opcode::Ldc:
          case Opcode::Ldt: {
            const auto &image = instr.op == Opcode::Ldt
                                    ? program_.texture
                                    : program_.constants;
            for (int lane = 0; lane < kWarpSize; ++lane) {
                if (!((guard >> lane) & 1u))
                    continue;
                auto &regs = warp.regs[static_cast<std::size_t>(lane)];
                std::uint32_t a =
                    regs[instr.srcA]
                    + static_cast<std::uint32_t>(instr.imm);
                if (!image.empty())
                    a %= static_cast<std::uint32_t>(image.size() * 4);
                a &= ~3u;
                const std::size_t idx = a / 4;
                regs[instr.dst] =
                    idx < image.size() ? image[idx] : Word(0);
            }
            return;
          }
          default:
            warp.aborted = true;
            return;
        }
    }

    const isa::Program &program_;
    std::vector<Word> global_;
    std::vector<Word> shared_;
    std::vector<RefStore> stores_;
    std::vector<std::vector<Word>> sharedFinal_;
    std::uint64_t budget_;
};

// ---------------------------------------------------------------------
// Justification layer
// ---------------------------------------------------------------------

/** Block leaders: pc 0, branch targets / reconv points, post-control. */
std::vector<char>
blockLeaders(const isa::Program &p)
{
    const int size = static_cast<int>(p.body.size());
    std::vector<char> leader(static_cast<std::size_t>(size), 0);
    if (size > 0)
        leader[0] = 1;
    auto mark = [&](int pc) {
        if (pc >= 0 && pc < size)
            leader[static_cast<std::size_t>(pc)] = 1;
    };
    for (int pc = 0; pc < size; ++pc) {
        const Instruction &instr = p.body[static_cast<std::size_t>(pc)];
        if (instr.op == Opcode::Bra) {
            mark(instr.imm);
            mark(instr.reconv);
            mark(pc + 1);
        } else if (instr.op == Opcode::Exit) {
            mark(pc + 1);
        }
    }
    return leader;
}

/**
 * Is "register r holds a copy of register s" established at original
 * pc @p use? True iff a backward scan inside use's basic block finds an
 * unpredicated reg-reg `MOV r, s` before any write to r or s.
 */
bool
copyAvailable(const isa::Program &p, const std::vector<char> &leader,
              int use, std::uint8_t r, std::uint8_t s)
{
    if (r == s)
        return false;
    for (int q = use - 1; q >= 0; --q) {
        const Instruction &instr = p.body[static_cast<std::size_t>(q)];
        if (instr.op == Opcode::Mov && !instr.immB && !readsGuard(instr)
            && instr.dst == r && instr.srcB == s) {
            return true;
        }
        if (isa::writesRegister(instr.op)
            && (instr.dst == r || instr.dst == s)) {
            return false;
        }
        if (leader[static_cast<std::size_t>(q)])
            return false;
    }
    return false;
}

/** Deletion-restricted backward liveness (see file comment). */
struct Liveness
{
    std::vector<std::uint64_t> regs;
    std::vector<std::uint8_t> preds;
};

/**
 * CFG edges come from the *original* body shape; gens and kills come
 * from the *effective* instructions (the optimized instruction for
 * kept pcs via @p effective, nothing for deleted pcs). Using the
 * optimized gens is what lets a fold's no-longer-read operands and a
 * propagated copy's source MOV die in the same validated edit set.
 */
Liveness
restrictedLiveness(const isa::Program &p, const std::vector<char> &kept,
                   const std::vector<const Instruction *> &effective,
                   const AnalysisResult &ar)
{
    const int size = static_cast<int>(p.body.size());
    Liveness live;
    live.regs.assign(static_cast<std::size_t>(size), 0);
    live.preds.assign(static_cast<std::size_t>(size), 0);

    auto out_of = [&](int pc) {
        const Instruction &instr = p.body[static_cast<std::size_t>(pc)];
        std::uint64_t regs = 0;
        std::uint8_t preds = 0;
        if (instr.op != Opcode::Exit) {
            if (pc + 1 < size) {
                regs |= live.regs[static_cast<std::size_t>(pc + 1)];
                preds |= live.preds[static_cast<std::size_t>(pc + 1)];
            }
            // A deleted never-taken branch contributes no target edge;
            // everything else keeps both edges (conservative).
            const bool taken_edge =
                instr.op == Opcode::Bra && instr.imm >= 0
                && instr.imm < size
                && (kept[static_cast<std::size_t>(pc)]
                    || guardValue(ar.in[static_cast<std::size_t>(pc)],
                                  instr)
                           != Bool3::False);
            if (taken_edge) {
                regs |= live.regs[static_cast<std::size_t>(instr.imm)];
                preds |=
                    live.preds[static_cast<std::size_t>(instr.imm)];
            }
        }
        return std::pair{regs, preds};
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int pc = size - 1; pc >= 0; --pc) {
            auto [regs, preds] = out_of(pc);
            if (kept[static_cast<std::size_t>(pc)]) {
                const Instruction &instr =
                    *effective[static_cast<std::size_t>(pc)];
                const bool certain = !readsGuard(instr);
                if (certain && isa::writesRegister(instr.op)
                    && instr.dst < isa::numRegisters) {
                    regs &= ~(std::uint64_t(1) << instr.dst);
                }
                if (certain && instr.op == Opcode::SetP
                    && instr.dst < isa::numPredicates) {
                    preds &= static_cast<std::uint8_t>(
                        ~(1u << instr.dst));
                }
                if (isa::readsSrcA(instr.op)
                    && instr.srcA < isa::numRegisters)
                    regs |= std::uint64_t(1) << instr.srcA;
                if (isa::readsSrcB(instr.op) && !instr.immB
                    && instr.srcB < isa::numRegisters) {
                    regs |= std::uint64_t(1) << instr.srcB;
                }
                if (isa::readsDst(instr.op)
                    && instr.dst < isa::numRegisters)
                    regs |= std::uint64_t(1) << instr.dst;
                if (readsGuard(instr)
                    && instr.pred < isa::numPredicates) {
                    preds |= static_cast<std::uint8_t>(1u
                                                       << instr.pred);
                }
            }
            const auto idx = static_cast<std::size_t>(pc);
            if (regs != live.regs[idx] || preds != live.preds[idx]) {
                live.regs[idx] = regs;
                live.preds[idx] = preds;
                changed = true;
            }
        }
    }
    return live;
}

/** Context shared by the per-edit justification checks. */
struct Justifier
{
    const isa::Program &orig;
    const AnalysisResult &ar;
    const std::vector<char> &kept;
    const std::vector<char> &leader;
    const Liveness &live;
    std::vector<int> newPos; //!< kept-prefix count per original pc

    int
    posOf(int pc) const
    {
        const int size = static_cast<int>(orig.body.size());
        if (pc < 0)
            return -1;
        if (pc >= size)
            return newPos[static_cast<std::size_t>(size)];
        return newPos[static_cast<std::size_t>(pc)];
    }

    /** Live-out of original pc under the restricted liveness. */
    std::pair<std::uint64_t, std::uint8_t>
    liveOut(int pc) const
    {
        const int size = static_cast<int>(orig.body.size());
        const Instruction &instr =
            orig.body[static_cast<std::size_t>(pc)];
        std::uint64_t regs = 0;
        std::uint8_t preds = 0;
        if (instr.op == Opcode::Exit)
            return {regs, preds};
        if (pc + 1 < size) {
            regs |= live.regs[static_cast<std::size_t>(pc + 1)];
            preds |= live.preds[static_cast<std::size_t>(pc + 1)];
        }
        if (instr.op == Opcode::Bra && instr.imm >= 0
            && instr.imm < size
            && (kept[static_cast<std::size_t>(pc)]
                || guardValue(ar.in[static_cast<std::size_t>(pc)],
                              instr)
                       != Bool3::False)) {
            regs |= live.regs[static_cast<std::size_t>(instr.imm)];
            preds |= live.preds[static_cast<std::size_t>(instr.imm)];
        }
        return {regs, preds};
    }
};

bool
sameGuard(const Instruction &a, const Instruction &b)
{
    return a.pred == b.pred && a.predNegate == b.predNegate;
}

/** The constant value of an operand, if the analysis pins one. */
bool
constOperandA(const Justifier &jx, int pc, const Instruction &o,
              Word &out)
{
    if (!isa::readsSrcA(o.op))
        return false;
    return constantOf(valueA(jx.ar.in[static_cast<std::size_t>(pc)], o),
                      out);
}

bool
constOperandB(const Justifier &jx, int pc, const Instruction &o,
              Word &out)
{
    if (!isa::readsSrcB(o.op))
        return false;
    return constantOf(valueB(jx.ar.in[static_cast<std::size_t>(pc)], o),
                      out);
}

/** Canonical `MOV dst, #imm` shape check. */
bool
isImmMov(const Instruction &n)
{
    return n.op == Opcode::Mov && n.immB && n.srcA == 0 && n.srcB == 0
           && n.flags == 0 && n.reconv == 0;
}

/** Canonical reg-reg `MOV dst, src` shape check. */
bool
isRegMov(const Instruction &n)
{
    return n.op == Opcode::Mov && !n.immB && n.srcA == 0 && n.flags == 0
           && n.imm == 0 && n.reconv == 0;
}

/**
 * Justify kept instruction: optimized @p n at new index derived from
 * original @p o at original pc @p j. Returns "" when justified.
 */
std::string
justifyKept(const Justifier &jx, int j, const Instruction &o,
            const Instruction &n)
{
    const AbsState &in = jx.ar.in[static_cast<std::size_t>(j)];

    if (o.op == Opcode::Bra && n.op == Opcode::Bra) {
        if (n.dst != o.dst || n.srcA != o.srcA || n.srcB != o.srcB
            || n.immB != o.immB || n.flags != o.flags) {
            return strFormat("pc %d: branch fields edited", j);
        }
        if (n.imm != jx.posOf(o.imm))
            return strFormat("pc %d: branch target not the remap of "
                             "the original target",
                             j);
        if (n.reconv != jx.posOf(o.reconv))
            return strFormat("pc %d: reconvergence point not the remap "
                             "of the original",
                             j);
        if (sameGuard(o, n))
            return "";
        if (!readsGuard(n) && guardValue(in, o) == Bool3::True)
            return ""; // proven-taken branch unpredicated
        return strFormat("pc %d: branch guard edited without a "
                         "provably-true original guard",
                         j);
    }

    if (n.op == Opcode::Bra || o.op == Opcode::Bra)
        return strFormat("pc %d: branch exchanged with non-branch", j);

    if (n == o)
        return "";

    // Constant fold: MOV #c justified by the original's abstract result.
    if (isImmMov(n) && isa::writesRegister(o.op) && n.dst == o.dst
        && sameGuard(o, n)) {
        if (isa::isLoadOp(o.op)) {
            // A load's abstract value is derived from the program's
            // initial data images, but the equivalence contract
            // quantifies over all images (layer 2 scrambles them), so
            // folding a load is never a justified edit.
            return strFormat("pc %d: load folded from the initial "
                             "data image",
                             j);
        }
        const AbsValue result = aluValue(o, in, jx.orig.launch);
        Word c = 0;
        if (constantOf(result, c)
            && c == static_cast<Word>(
                   static_cast<std::int32_t>(n.imm))) {
            return "";
        }
        return strFormat("pc %d: folded constant %d not proven by the "
                         "original analysis",
                         j, n.imm);
    }

    // Identity strength reduction: MOV dst, src.
    if (isRegMov(n) && n.dst == o.dst && sameGuard(o, n)
        && !isa::readsDst(o.op)) {
        const std::uint8_t s = n.srcB;
        Word ca = 0;
        Word cb = 0;
        const bool hasA = constOperandA(jx, j, o, ca);
        const bool hasB = constOperandB(jx, j, o, cb);
        const bool survivesA = s == o.srcA && isa::readsSrcA(o.op);
        const bool survivesB =
            s == o.srcB && isa::readsSrcB(o.op) && !o.immB;
        switch (o.op) {
          case Opcode::IAdd:
          case Opcode::Or:
          case Opcode::Xor:
            if ((survivesA && hasB && cb == 0)
                || (survivesB && hasA && ca == 0))
                return "";
            break;
          case Opcode::ISub:
            if (survivesA && hasB && cb == 0)
                return "";
            break;
          case Opcode::Shl:
          case Opcode::Shr:
            if (survivesA && hasB && (cb & 31u) == 0)
                return "";
            break;
          case Opcode::IMul:
            if ((survivesA && hasB && cb == 1)
                || (survivesB && hasA && ca == 1))
                return "";
            break;
          case Opcode::And:
            if ((survivesA && hasB && cb == kFullMask)
                || (survivesB && hasA && ca == kFullMask))
                return "";
            break;
          default:
            break;
        }
        return strFormat("pc %d: identity reduction to MOV not proven",
                         j);
    }

    // Multiply by a proven power of two: SHL dst, src, #k.
    if (n.op == Opcode::Shl && n.immB && o.op == Opcode::IMul
        && n.dst == o.dst && sameGuard(o, n) && n.srcB == 0
        && n.flags == 0 && n.reconv == 0 && n.imm >= 0 && n.imm < 32) {
        const Word factor = Word(1) << n.imm;
        Word ca = 0;
        Word cb = 0;
        if (n.srcA == o.srcA && constOperandB(jx, j, o, cb)
            && cb == factor)
            return "";
        if (!o.immB && n.srcA == o.srcB && constOperandA(jx, j, o, ca)
            && ca == factor)
            return "";
        return strFormat("pc %d: power-of-two factor not proven", j);
    }

    // Copy-propagated operands: same instruction modulo srcA/srcB.
    {
        Instruction probe = n;
        probe.srcA = o.srcA;
        probe.srcB = o.srcB;
        if (probe == o) {
            if (n.srcA != o.srcA) {
                if (!isa::readsSrcA(o.op)
                    || !copyAvailable(jx.orig, jx.leader, j, o.srcA,
                                      n.srcA)) {
                    return strFormat(
                        "pc %d: srcA substitution R%u -> R%u has no "
                        "reaching copy",
                        j, unsigned(o.srcA), unsigned(n.srcA));
                }
            }
            if (n.srcB != o.srcB) {
                if (!isa::readsSrcB(o.op) || o.immB
                    || !copyAvailable(jx.orig, jx.leader, j, o.srcB,
                                      n.srcB)) {
                    return strFormat(
                        "pc %d: srcB substitution R%u -> R%u has no "
                        "reaching copy",
                        j, unsigned(o.srcB), unsigned(n.srcB));
                }
            }
            return "";
        }
    }

    return strFormat("pc %d: rewrite matches no justified pattern", j);
}

/** Justify the deletion of original pc @p j. Returns "" when sound. */
std::string
justifyDeletion(const Justifier &jx, int j)
{
    const Instruction &o = jx.orig.body[static_cast<std::size_t>(j)];
    const AbsState &in = jx.ar.in[static_cast<std::size_t>(j)];

    if (!in.reachable)
        return "";
    if (o.op == Opcode::Nop)
        return "";

    const Bool3 guard = guardValue(in, o);
    if (guard == Bool3::False && o.op != Opcode::Exit
        && o.op != Opcode::Bar) {
        return "";
    }

    if (o.op == Opcode::Mov && !o.immB && o.dst == o.srcB)
        return ""; // self-move

    if (o.op == Opcode::Bra) {
        const int size = static_cast<int>(jx.orig.body.size());
        // A provably-taken branch needs no reconvergence collapse:
        // every active lane takes the jump, so the reconv frame is
        // never pushed.
        if (o.imm >= 0 && o.imm <= size && o.reconv >= 0
            && o.reconv <= size
            && jx.posOf(o.imm) == jx.posOf(j + 1)
            && (!readsGuard(o) || guard == Bool3::True
                || jx.posOf(o.reconv) == jx.posOf(j + 1))) {
            return ""; // both arms collapse onto the fallthrough
        }
        return strFormat("pc %d: deleted branch does not collapse", j);
    }

    const auto [out_regs, out_preds] = jx.liveOut(j);
    if (isa::writesRegister(o.op) && o.dst < isa::numRegisters
        && !((out_regs >> o.dst) & 1u)) {
        return ""; // dead register write (loads included)
    }
    if (o.op == Opcode::SetP && o.dst < isa::numPredicates
        && !((out_preds >> o.dst) & 1u)) {
        return ""; // dead predicate write
    }

    return strFormat("pc %d: deletion of a live effect (%s)", j,
                     isa::opcodeName(o.op).c_str());
}

} // namespace

RefObservation
runReference(const isa::Program &program, std::uint64_t maxSteps)
{
    return RefMachine(program, maxSteps).run();
}

EquivVerdict
validateTranslation(const isa::Program &original,
                    const isa::Program &optimized,
                    std::span<const int> sourcePc,
                    const EquivOptions &options)
{
    EquivVerdict v;
    auto fail = [&](std::string reason) {
        v.equivalent = false;
        v.reason = std::move(reason);
        return v;
    };

    const int size = static_cast<int>(original.body.size());
    if (size == 0 || optimized.body.empty())
        return fail("empty body");
    if (sourcePc.size() != optimized.body.size())
        return fail("sourcePc does not cover the optimized body");
    if (optimized.name != original.name
        || optimized.launch.gridBlocks != original.launch.gridBlocks
        || optimized.launch.blockThreads
               != original.launch.blockThreads
        || optimized.global != original.global
        || optimized.constants != original.constants
        || optimized.texture != original.texture
        || optimized.sharedBytesPerBlock
               != original.sharedBytesPerBlock) {
        return fail("launch geometry or memory images edited");
    }

    // Strictly increasing, in-range source map; derive the kept set.
    std::vector<char> kept(static_cast<std::size_t>(size), 0);
    int prev = -1;
    for (const int j : sourcePc) {
        if (j <= prev || j >= size)
            return fail("sourcePc is not strictly increasing in range");
        kept[static_cast<std::size_t>(j)] = 1;
        prev = j;
    }

    // Optimized output must be canonical encoder output: the strict
    // decoder only accepts encoder-producible bytes.
    {
        const std::string bytes = isa::encodeProgram(optimized);
        auto back = isa::decodeProgram(bytes);
        if (!back.ok()) {
            return fail("optimized program is not canonical: "
                        + back.error().message);
        }
    }

    // Layer 1: symbolic matching against the original's own facts.
    const AnalysisResult ar = analyzeProgram(original);
    const std::vector<char> leader = blockLeaders(original);
    std::vector<const Instruction *> effective(
        static_cast<std::size_t>(size), nullptr);
    for (std::size_t i = 0; i < optimized.body.size(); ++i) {
        effective[static_cast<std::size_t>(sourcePc[i])] =
            &optimized.body[i];
    }
    const Liveness live =
        restrictedLiveness(original, kept, effective, ar);

    Justifier jx{original, ar, kept, leader, live, {}};
    jx.newPos.resize(static_cast<std::size_t>(size) + 1, 0);
    int count = 0;
    for (int pc = 0; pc < size; ++pc) {
        jx.newPos[static_cast<std::size_t>(pc)] = count;
        if (kept[static_cast<std::size_t>(pc)])
            ++count;
    }
    jx.newPos[static_cast<std::size_t>(size)] = count;

    for (std::size_t i = 0; i < optimized.body.size(); ++i) {
        const std::string why =
            justifyKept(jx, sourcePc[i], original.body[static_cast<
                            std::size_t>(sourcePc[i])],
                        optimized.body[i]);
        if (!why.empty())
            return fail(why);
    }
    for (int j = 0; j < size; ++j) {
        if (kept[static_cast<std::size_t>(j)])
            continue;
        const std::string why = justifyDeletion(jx, j);
        if (!why.empty())
            return fail(why);
    }

    // Layer 2: differential concrete simulation on seeded inputs.
    for (int seed = 0; seed < options.seeds; ++seed) {
        isa::Program a = original;
        isa::Program b = optimized;
        if (seed > 0) {
            Rng rng(options.baseSeed + static_cast<std::uint64_t>(seed));
            auto scramble = [&rng](std::vector<Word> &image) {
                for (Word &w : image)
                    w = static_cast<Word>(rng());
            };
            scramble(a.global);
            scramble(a.constants);
            scramble(a.texture);
            b.global = a.global;
            b.constants = a.constants;
            b.texture = a.texture;
        }
        const RefObservation oa = runReference(a, options.maxSteps);
        const RefObservation ob = runReference(b, options.maxSteps);
        if (!oa.finished || !ob.finished) {
            return fail(strFormat("seed %d: reference run exceeded the "
                                  "step budget",
                                  seed));
        }
        if (!(oa == ob)) {
            return fail(strFormat("seed %d: differential observation "
                                  "mismatch",
                                  seed));
        }
        ++v.simulatedSeeds;
    }

    v.equivalent = true;
    return v;
}

} // namespace bvf::analysis
