#include "analysis/check.hh"

#include <cstdio>

namespace bvf::analysis
{

namespace
{

// Bounds are exact popcount fractions and observations exact integer
// ratios; the slack only absorbs double rounding in the comparison.
constexpr double eps = 1e-9;

std::string
describe(const char *what, const std::string &where, double ratio,
         const DensityBound &bound, std::uint64_t ones, std::uint64_t bits)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s %s: observed ratio %.9f (%llu/%llu) outside proven "
                  "[%.9f, %.9f]",
                  what, where.c_str(), ratio,
                  static_cast<unsigned long long>(ones),
                  static_cast<unsigned long long>(bits), bound.lo,
                  bound.hi);
    return buf;
}

std::string
describeIdle(const char *what, const std::string &where, std::uint64_t ones,
             std::uint64_t bits)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s %s: observed %llu/%llu bits on a unit the predictor "
                  "proved idle",
                  what, where.c_str(),
                  static_cast<unsigned long long>(ones),
                  static_cast<unsigned long long>(bits));
    return buf;
}

void
checkOne(const char *what, const std::string &where,
         const DensityBound &bound, std::uint64_t ones, std::uint64_t bits,
         std::vector<std::string> &out)
{
    if (bits == 0)
        return;
    if (!bound.any) {
        out.push_back(describeIdle(what, where, ones, bits));
        return;
    }
    const double ratio =
        static_cast<double>(ones) / static_cast<double>(bits);
    if (ratio < bound.lo - eps || ratio > bound.hi + eps)
        out.push_back(describe(what, where, ratio, bound, ones, bits));
}

} // namespace

std::vector<std::string>
crossCheck(const StaticPrediction &prediction,
           const std::vector<ObservedStream> &streams,
           const std::vector<ObservedNoc> &noc)
{
    std::vector<std::string> violations;
    for (const ObservedStream &s : streams) {
        const std::string where = coder::unitName(s.unit) + "/"
                                  + coder::scenarioName(s.scenario) + "/"
                                  + s.stream;
        checkOne("unit", where, prediction.unitBound(s.unit, s.scenario),
                 s.ones, s.bits, violations);
    }
    for (const ObservedNoc &n : noc) {
        const auto sidx = static_cast<std::size_t>(
            coder::scenarioIndex(n.scenario));
        checkOne("noc", coder::scenarioName(n.scenario),
                 prediction.noc[sidx], n.ones, n.bits, violations);
    }
    return violations;
}

} // namespace bvf::analysis
