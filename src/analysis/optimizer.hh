/**
 * @file
 * Certificate-guided bytecode-to-bytecode optimizer for BVFK kernels.
 *
 * The passes are driven entirely by facts the reduced-product abstract
 * interpreter (analysis/interpreter.hh) proves about the *original*
 * program, so every rewrite carries a justification the translation
 * validator (analysis/equiv.hh) can re-derive independently:
 *
 *  - dead-code elimination: unreachable instructions, NOPs, provably
 *    guarded-off instructions, dead register/predicate writes (the
 *    PR 3 dead-load lint turned into an actual rewrite) and branches
 *    whose arms collapse onto the fallthrough,
 *  - constant folding: any register-writing instruction whose abstract
 *    result KnownBits/SignedInterval pin to one immediate-range word
 *    becomes a canonical `MOV dst, #c` under the same guard,
 *  - copy propagation: operands rewritten through unpredicated
 *    reg-reg MOVs inside one basic block (sound per-lane because the
 *    active mask is constant between block boundaries),
 *  - strength reduction: identity operands (x+0, x-0, x|0, x^0,
 *    x<<0, x*1, x&~0) reduce to MOVs, multiplies by a proven power of
 *    two become shifts,
 *  - branch flattening: a branch whose guard the interpreter proves
 *    true for every reaching thread (LaneAffine-backed uniformity
 *    rules out partial masks) drops its predicate.
 *
 * optimizeProgram is *total and safe on admitted input*: the result is
 * only preferred over the original when the translation validator
 * passes AND the optimized program re-admits through the PR 8 verifier
 * with a certificate no weaker than the original's (trip bound not
 * above, every footprint hull contained). Any failure -- including an
 * optimizer bug -- falls back to the byte-identical original.
 */

#ifndef BVF_ANALYSIS_OPTIMIZER_HH
#define BVF_ANALYSIS_OPTIMIZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/equiv.hh"
#include "analysis/verifier.hh"
#include "isa/program.hh"

namespace bvf::analysis
{

/** Per-pass rewrite counters (what the passes did, pre-validation). */
struct OptStats
{
    std::uint32_t removedDead = 0;       //!< dead reg/pred writes
    std::uint32_t removedUnreachable = 0;
    std::uint32_t removedGuardFalse = 0; //!< provably guarded off
    std::uint32_t removedNops = 0;       //!< NOPs and self-moves
    std::uint32_t removedBranches = 0;   //!< collapsed branches
    std::uint32_t foldedConstants = 0;
    std::uint32_t propagatedCopies = 0;  //!< operands rewritten
    std::uint32_t reducedStrength = 0;   //!< identity + power-of-two
    std::uint32_t flattenedBranches = 0; //!< guards dropped

    std::uint32_t
    total() const
    {
        return removedDead + removedUnreachable + removedGuardFalse
               + removedNops + removedBranches + foldedConstants
               + propagatedCopies + reducedStrength
               + flattenedBranches;
    }
};

struct OptimizeOptions
{
    /** Deletion-fixpoint rounds cap (each round re-derives liveness). */
    int maxRounds = 64;

    /**
     * Gate the result behind the translation validator and the
     * re-admission check. Disabling this is only for tests that probe
     * the raw passes; production callers must leave it on.
     */
    bool validate = true;

    VerifyOptions verify{}; //!< admission budget (original + optimized)
    EquivOptions equiv{};   //!< differential-simulation budget
};

struct OptimizeResult
{
    /** The accepted optimized program, or the original untouched. */
    isa::Program program;

    /** Per returned-instruction original pc (identity on fallback). */
    std::vector<int> sourcePc;

    /** The returned program differs from the original. */
    bool changed = false;

    /** Passes rewrote something AND the validation gate passed. */
    bool accepted = false;

    /** The original itself passed admission (else nothing was tried). */
    bool originalAdmitted = false;

    /** Rewrites the passes applied (kept on fallback, for diagnosis). */
    OptStats stats;

    /** Certificate of the returned program. */
    Certificate certificate;

    /** Why the optimized program was not preferred ("" when it was). */
    std::string note;
};

/**
 * Optimize @p program. Total over every decodeProgram / parseAsm
 * result: never crashes, never simulates outside the validator's
 * reference interpreter, and never returns a program that failed
 * validation.
 */
OptimizeResult optimizeProgram(const isa::Program &program,
                               const OptimizeOptions &options = {});

} // namespace bvf::analysis

#endif // BVF_ANALYSIS_OPTIMIZER_HH
