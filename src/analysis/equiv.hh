/**
 * @file
 * Translation validator for optimized BVFK programs.
 *
 * The optimizer (analysis/optimizer.hh) is *not* trusted: every
 * optimized program is re-checked here against the original before
 * anything downstream may prefer it. Validation is independent of the
 * optimizer's own reasoning and has two layers:
 *
 *  1. Per-instruction symbolic matching. The validator re-runs the
 *     reduced-product abstract interpreter and its own backward
 *     liveness over the *original* program, then demands a
 *     justification for every edit: a kept instruction must be
 *     identical modulo remapped branch fields, or a rewrite the
 *     original's own abstract facts prove (a constant fold whose
 *     result the product domain pins, an identity-operand strength
 *     reduction, a multiply by a proven power of two, a copy-propagated
 *     operand backed by an unpredicated reaching MOV, an
 *     unpredication of a provably-taken branch); a deleted instruction
 *     must be unreachable, a no-op, provably guarded off, a dead
 *     register/predicate write under deletion-restricted liveness, or
 *     a branch whose arms collapse onto the fallthrough.
 *
 *  2. Differential concrete simulation. Both programs run under a
 *     deterministic reference interpreter that mirrors the SM's
 *     functional semantics exactly (SIMT stack, barrier release,
 *     per-lane ALU/memory behavior including the shared-memory wrap
 *     and constant/texture modulo), over the original images plus
 *     seeded random replacements. The full store sequence and the
 *     final global/shared contents must match record for record.
 *
 * A program that fails either layer is rejected with the first
 * offending edit named; the optimizer then falls back to the original,
 * so an optimizer bug can cost performance but never correctness.
 */

#ifndef BVF_ANALYSIS_EQUIV_HH
#define BVF_ANALYSIS_EQUIV_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace bvf::analysis
{

/** Differential-simulation budget. */
struct EquivOptions
{
    /** Input images simulated per program (seed 0 = the originals). */
    int seeds = 3;

    /** Warp-instructions one simulation may issue before giving up. */
    std::uint64_t maxSteps = std::uint64_t(1) << 22;

    /** Base RNG seed for the replacement images. */
    std::uint64_t baseSeed = 0xb1fe9u;
};

struct EquivVerdict
{
    bool equivalent = false;

    /** First failed justification or observation mismatch. */
    std::string reason;

    /** Differential runs that completed (diagnostics). */
    int simulatedSeeds = 0;
};

/**
 * Check @p optimized against @p original. @p sourcePc maps every
 * optimized instruction index to the original index it was derived
 * from and must be strictly increasing; original indices absent from
 * the map are the deleted instructions. Total: never crashes, never
 * accepts a pair it cannot justify.
 */
EquivVerdict validateTranslation(const isa::Program &original,
                                 const isa::Program &optimized,
                                 std::span<const int> sourcePc,
                                 const EquivOptions &options = {});

/**
 * One store instruction's architectural effect under the reference
 * interpreter: the per-lane (address, value) writes in lane order.
 * Shared stores record word indices (post-wrap), global stores record
 * absolute byte addresses.
 */
struct RefStore
{
    char space;                  //!< 'g' global, 's' shared
    std::vector<std::pair<std::uint32_t, Word>> writes;

    bool operator==(const RefStore &o) const = default;
};

/** Everything observable a reference run produced. */
struct RefObservation
{
    bool finished = false;       //!< every warp exited within budget
    std::vector<RefStore> stores;
    std::vector<Word> globalFinal;
    std::vector<std::vector<Word>> sharedFinal; //!< per block

    bool operator==(const RefObservation &o) const = default;
};

/**
 * Run @p program functionally to completion (or the step budget) under
 * the deterministic reference schedule: blocks in order, warps
 * round-robin run-to-barrier within a block. Exposed for tests; the
 * validator uses it for the differential layer.
 */
RefObservation runReference(const isa::Program &program,
                            std::uint64_t maxSteps);

} // namespace bvf::analysis

#endif // BVF_ANALYSIS_EQUIV_HH
