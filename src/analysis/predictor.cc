#include "analysis/predictor.hh"

#include <algorithm>
#include <vector>

#include "coder/nv_coder.hh"

namespace bvf::analysis
{

using coder::Scenario;
using coder::UnitId;
using isa::Instruction;
using isa::Opcode;

namespace
{

RatioBound
hull(const RatioBound &a, const RatioBound &b)
{
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

/**
 * One source stream: a known-bits description, optionally sharpened by
 * exact raw/NV bounds when the source is an enumerable word set (memory
 * images), and the pivot abstraction VS register coding sees.
 */
struct Source
{
    KnownBits kb;
    bool exact = false;
    RatioBound rawExact;
    RatioBound nvExact;

    /** Pivot-lane abstraction for VS register coding (Reg unit only). */
    KnownBits pivot;
};

Source
fromKb(const KnownBits &kb)
{
    Source s;
    s.kb = kb;
    s.pivot = kb;
    return s;
}

Source
fromWords(const std::vector<Word> &words, bool includeZero)
{
    Source s;
    s.exact = true;
    const coder::NvCoder nv;
    bool first = true;
    auto feed = [&](Word w) {
        const RatioBound raw{hammingWeight(w) / 32.0,
                             hammingWeight(w) / 32.0};
        const RatioBound enc{hammingWeight(nv.encode(w)) / 32.0,
                             hammingWeight(nv.encode(w)) / 32.0};
        if (first) {
            s.kb = KnownBits::constant(w);
            s.rawExact = raw;
            s.nvExact = enc;
            first = false;
        } else {
            s.kb = join(s.kb, KnownBits::constant(w));
            s.rawExact = hull(s.rawExact, raw);
            s.nvExact = hull(s.nvExact, enc);
        }
    };
    if (includeZero || words.empty())
        feed(0);
    for (Word w : words)
        feed(w);
    s.pivot = s.kb;
    return s;
}

RatioBound
rawBound(const Source &s)
{
    return s.exact ? s.rawExact : ratioBounds(s.kb);
}

RatioBound
nvBound(const Source &s)
{
    return s.exact ? s.nvExact : nvRatioBounds(s.kb);
}

/** Instruction-stream source set with raw and ISA-coded bounds. */
struct InstrSet
{
    RatioBound raw{1.0, 0.0};
    RatioBound isa{1.0, 0.0};
    bool any = false;

    void
    feed(Word64 bin, Word64 mask)
    {
        const double r = hammingWeight64(bin) / 64.0;
        const double e = hammingWeight64(xnorWord64(bin, mask)) / 64.0;
        if (!any) {
            raw = {r, r};
            isa = {e, e};
            any = true;
        } else {
            raw = hull(raw, {r, r});
            isa = hull(isa, {e, e});
        }
    }
};

bool
isaApplies(Scenario s)
{
    return s == Scenario::IsaOnly || s == Scenario::AllCoders;
}

/** Per-scenario bound for one data source at one unit (Table 1 wiring). */
RatioBound
dataBound(const Source &src, Scenario s, UnitId unit)
{
    static const auto nv_units = coder::nvSpaceUnits();
    static const auto vs_reg_units = coder::vsRegisterSpaceUnits();
    static const auto vs_cache_units = coder::vsCacheSpaceUnits();

    const bool nv_on = (s == Scenario::NvOnly || s == Scenario::AllCoders)
                       && nv_units.count(unit) > 0;
    const bool vs_on = s == Scenario::VsOnly || s == Scenario::AllCoders;
    const bool vs_reg = vs_on && vs_reg_units.count(unit) > 0;
    const bool vs_cache = vs_on && vs_cache_units.count(unit) > 0;

    const RatioBound word_bound = nv_on ? nvBound(src) : rawBound(src);
    if (!vs_reg && !vs_cache)
        return word_bound;

    // VS rewrites every non-pivot word to word XNOR pivot; the pivot
    // word itself passes through, so the access mixes both forms.
    const KnownBits base = nv_on ? nvEncodeKnownBits(src.kb) : src.kb;
    const KnownBits pivot_base =
        vs_reg ? (nv_on ? nvEncodeKnownBits(src.pivot) : src.pivot)
               : base; // cache-line pivot is the block's own element 0
    return hull(xnorRatioBounds(base, pivot_base), word_bound);
}

DensityBound
finish(const std::vector<RatioBound> &bounds)
{
    DensityBound d;
    if (bounds.empty())
        return d;
    d.any = true;
    d.lo = 1.0;
    d.hi = 0.0;
    for (const RatioBound &b : bounds) {
        d.lo = std::min(d.lo, b.lo);
        d.hi = std::max(d.hi, b.hi);
    }
    return d;
}

} // namespace

StaticPrediction
predictDensity(const isa::Program &program, const AnalysisResult &analysis,
               const PredictorOptions &options)
{
    StaticPrediction out;

    // --- collect per-unit data sources ---------------------------------
    std::vector<Source> reg_sources;
    std::vector<Source> sme_sources;
    std::vector<Source> global_sources;
    bool global_load = false;
    bool global_store = false;
    bool any_const = false;
    bool any_tex = false;

    auto add_reg = [&](std::uint8_t reg, const KnownBits &kb) {
        Source s = fromKb(kb);
        s.pivot = analysis.regAnywhere[reg % isa::numRegisters];
        reg_sources.push_back(std::move(s));
    };

    const int size = static_cast<int>(program.body.size());
    for (int pc = 0; pc < size; ++pc) {
        const auto idx = static_cast<std::size_t>(pc);
        const AbsState &in = analysis.in[idx];
        if (!in.reachable)
            continue;
        const Instruction &instr = program.body[idx];
        if (isa::isControlOp(instr.op))
            continue;
        // A provably-false guard leaves no active lane to count.
        if (guardValue(in, instr) == Bool3::False)
            continue;

        if (isa::readsSrcA(instr.op))
            add_reg(instr.srcA, operandA(in, instr));
        if (isa::readsSrcB(instr.op) && !instr.immB)
            add_reg(instr.srcB,
                    in.regs[instr.srcB % isa::numRegisters].kb());
        if (isa::readsDst(instr.op))
            add_reg(instr.dst,
                    in.regs[instr.dst % isa::numRegisters].kb());

        switch (instr.op) {
          case Opcode::Ldg:
            add_reg(instr.dst, analysis.memory.global);
            global_load = true;
            break;
          case Opcode::Stg:
            global_sources.push_back(
                fromKb(in.regs[instr.srcB % isa::numRegisters].kb()));
            global_store = true;
            break;
          case Opcode::Lds:
            add_reg(instr.dst, analysis.memory.shared);
            sme_sources.push_back(fromKb(analysis.memory.shared));
            break;
          case Opcode::Sts:
            sme_sources.push_back(
                fromKb(in.regs[instr.srcB % isa::numRegisters].kb()));
            break;
          case Opcode::Ldc:
            add_reg(instr.dst, analysis.memory.constant);
            any_const = true;
            break;
          case Opcode::Ldt:
            add_reg(instr.dst, analysis.memory.texture);
            any_tex = true;
            break;
          case Opcode::SetP:
            break;
          default:
            if (isa::writesRegister(instr.op))
                add_reg(instr.dst,
                        aluResult(instr, in, program.launch));
            break;
        }
    }

    // The global family covers loads, L1D/L2 fills, and store payloads;
    // out-of-range reads yield zero.
    if (global_load || global_store)
        global_sources.insert(global_sources.begin(),
                              fromWords(program.global, true));
    else
        global_sources.clear();

    // Constant/texture fills pad the trailing line with zeros whenever
    // the image does not end on a line boundary.
    constexpr std::uint32_t l1cLineBytes = 64;
    std::vector<Source> const_sources;
    if (any_const) {
        const auto bytes =
            static_cast<std::uint32_t>(program.constants.size() * 4);
        const_sources.push_back(
            fromWords(program.constants, bytes % l1cLineBytes != 0));
    }
    std::vector<Source> tex_sources;
    if (any_tex) {
        const auto bytes =
            static_cast<std::uint32_t>(program.texture.size() * 4);
        tex_sources.push_back(
            fromWords(program.texture,
                      options.lineBytes == 0
                          || bytes % options.lineBytes != 0));
    }

    // --- instruction-stream sources ------------------------------------
    const Word64 mask = options.isaMask != 0 ? options.isaMask
                                             : isa::paperIsaMask(options.arch);
    const isa::InstructionEncoder encoder(options.arch);
    InstrSet body_set;
    for (const Instruction &instr : program.body)
        body_set.feed(encoder.encode(instr), mask);
    // NoC instruction lines pad past the body with zero binaries.
    InstrSet noc_instr_set = body_set;
    noc_instr_set.feed(0, mask);

    // --- per-unit, per-scenario hulls ----------------------------------
    auto unit_bounds = [&](UnitId unit,
                           const std::vector<Source> &data,
                           const InstrSet *instrs) {
        std::array<DensityBound, coder::numScenarios> bounds;
        for (const Scenario s : coder::allScenarios) {
            std::vector<RatioBound> parts;
            for (const Source &src : data)
                parts.push_back(dataBound(src, s, unit));
            if (instrs && instrs->any)
                parts.push_back(isaApplies(s) ? instrs->isa : instrs->raw);
            bounds[static_cast<std::size_t>(coder::scenarioIndex(s))] =
                finish(parts);
        }
        return bounds;
    };

    out.units[UnitId::Reg] = unit_bounds(UnitId::Reg, reg_sources, nullptr);
    out.units[UnitId::Sme] = unit_bounds(UnitId::Sme, sme_sources, nullptr);
    out.units[UnitId::L1D] = unit_bounds(
        UnitId::L1D, global_load ? global_sources : std::vector<Source>{},
        nullptr);
    out.units[UnitId::L1C] =
        unit_bounds(UnitId::L1C, const_sources, nullptr);
    out.units[UnitId::L1T] = unit_bounds(UnitId::L1T, tex_sources, nullptr);
    out.units[UnitId::L1I] = unit_bounds(UnitId::L1I, {}, &body_set);
    out.units[UnitId::Ifb] = unit_bounds(UnitId::Ifb, {}, &body_set);
    out.units[UnitId::L2] =
        unit_bounds(UnitId::L2, global_sources, &body_set);

    // NoC payload: data packets, padded instruction lines, and the
    // raw-zero flit padding added after every coder stage.
    for (const Scenario s : coder::allScenarios) {
        std::vector<RatioBound> parts;
        for (const Source &src : global_sources)
            parts.push_back(dataBound(src, s, UnitId::Noc));
        parts.push_back(isaApplies(s) ? noc_instr_set.isa
                                      : noc_instr_set.raw);
        parts.push_back(RatioBound{0.0, 0.0});
        out.noc[static_cast<std::size_t>(coder::scenarioIndex(s))] =
            finish(parts);
    }

    // --- scenario ranking ----------------------------------------------
    // 1 is the favored (cheap) bit value, so the best scenario is the
    // one predicted to raise mean density the most over Baseline on the
    // same units. Comparing gains rather than absolute midpoints keeps
    // units the analysis knows nothing about (midpoint pinned at 0.5 by
    // a vacuous [0, 1] interval) from drowning out units it does bound.
    // Ties go to the later, richer coder stack: its gain can only add.
    for (const Scenario s : coder::allScenarios) {
        const auto sidx =
            static_cast<std::size_t>(coder::scenarioIndex(s));
        double sum = 0;
        int n = 0;
        for (const auto &[unit, bounds] : out.units) {
            if (bounds[sidx].any) {
                sum += (bounds[sidx].lo + bounds[sidx].hi) / 2;
                ++n;
            }
        }
        out.meanMidpoint[sidx] = n ? sum / n : 0.0;
    }
    const auto base_idx = static_cast<std::size_t>(
        coder::scenarioIndex(Scenario::Baseline));
    double best = -2.0;
    for (const Scenario s : coder::allScenarios) {
        if (s == Scenario::Baseline)
            continue;
        const auto sidx =
            static_cast<std::size_t>(coder::scenarioIndex(s));
        const double gain =
            out.meanMidpoint[sidx] - out.meanMidpoint[base_idx];
        if (gain >= best) {
            best = gain;
            out.bestStatic = s;
        }
    }
    return out;
}

} // namespace bvf::analysis
