#include "analysis/advisor.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/json.hh"

namespace bvf::analysis
{

using coder::Scenario;
using coder::UnitId;
using isa::Instruction;
using isa::Opcode;

namespace
{

RatioBound
hull(const RatioBound &a, const RatioBound &b)
{
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

/**
 * One register-file source stream as the pivot ranking sees it: the
 * per-thread facts, the anywhere-abstraction covering whatever the
 * pivot lane might hold, and -- when the access provably involves the
 * whole warp -- the lane-affine structure of the full block.
 */
struct RegSource
{
    KnownBits kb;
    KnownBits anywhere;
    LaneAffine affine;

    /**
     * True when the affine fact may be used: the vector fact is known
     * AND the access pc lies outside every divergent region with a
     * lane-uniform guard, so the reported block is exactly the 32
     * in-relation lane values.
     */
    bool laneExact = false;
};

/** Proven one-density interval of this source's VS stream at pivot p. */
RatioBound
sourcePivotBound(const RegSource &src, int p)
{
    if (!src.laneExact || !src.affine.known) {
        // Fallback: the predictor's own VS register bound -- non-pivot
        // words XNOR anything the pivot lane might hold; the pivot word
        // passes through raw.
        return hull(xnorRatioBounds(src.kb, src.anywhere),
                    ratioBounds(src.kb));
    }

    // The pivot word passes through unchanged.
    RatioBound r = ratioBounds(src.kb);
    const Word stride = src.affine.stride;
    const Word known = src.kb.knownMask();
    for (int i = 0; i < 32; ++i) {
        if (i == p)
            continue;
        const Word d =
            stride * static_cast<Word>(static_cast<std::int32_t>(i - p));
        if (d == 0) {
            // v_i == v_p exactly: XNOR is all ones.
            r = hull(r, {1.0, 1.0});
            continue;
        }
        const int t = std::countr_zero(d);
        // Bits below t see no carry from adding d, so they agree; bit t
        // flips; interpreter-proven bits agree lane-to-lane. H >= 1
        // always (the flipped bit), so the coded word has at most 31
        // ones; at least 32 - maxDiffer.
        const Word agree = known | ((Word(1) << t) - 1);
        const int maxDiffer = std::max(1, hammingWeight(~agree));
        r = hull(r, {(32.0 - maxDiffer) / 32.0, 31.0 / 32.0});
    }
    return r;
}

DensityBound
finish(const std::vector<RatioBound> &parts)
{
    DensityBound d;
    if (parts.empty())
        return d;
    d.any = true;
    d.lo = 1.0;
    d.hi = 0.0;
    for (const RatioBound &b : parts) {
        d.lo = std::min(d.lo, b.lo);
        d.hi = std::max(d.hi, b.hi);
    }
    return d;
}

double
midpoint(const DensityBound &b)
{
    return (b.lo + b.hi) / 2;
}

/**
 * Collect every register-file source stream with its affine facts,
 * mirroring the predictor's source enumeration exactly (same pcs, same
 * operand/result set) so the bounds cover the same dynamic accesses.
 */
std::vector<RegSource>
collectRegSources(const isa::Program &program,
                  const AnalysisResult &analysis)
{
    std::vector<RegSource> sources;
    const int size = static_cast<int>(program.body.size());
    for (int pc = 0; pc < size; ++pc) {
        const auto idx = static_cast<std::size_t>(pc);
        const AbsState &in = analysis.in[idx];
        if (!in.reachable)
            continue;
        const Instruction &instr = program.body[idx];
        if (isa::isControlOp(instr.op))
            continue;
        if (guardValue(in, instr) == Bool3::False)
            continue;

        // Whole-warp access: full mask, block exactly the 32 current
        // lane values. Inside a divergent region the block may mix the
        // two arms' effects; under a non-uniform guard a write only
        // updates some lanes. Either way the affine facts must not be
        // trusted for the access.
        const bool wholeWarp =
            !analysis.divergentRegion[idx]
            && guardUniformity(in, instr) == Uniformity::Uniform;

        auto add = [&](std::uint8_t reg, const AbsValue &v) {
            RegSource s;
            s.kb = v.kb();
            s.anywhere = analysis.regAnywhere[reg % isa::numRegisters];
            s.affine = v.affine();
            s.laneExact = wholeWarp && v.affine().known;
            sources.push_back(std::move(s));
        };

        if (isa::readsSrcA(instr.op))
            add(instr.srcA, valueA(in, instr));
        if (isa::readsSrcB(instr.op) && !instr.immB)
            add(instr.srcB, in.regs[instr.srcB % isa::numRegisters]);
        if (isa::readsDst(instr.op))
            add(instr.dst, in.regs[instr.dst % isa::numRegisters]);

        switch (instr.op) {
          case Opcode::Ldg:
          case Opcode::Lds:
          case Opcode::Ldc:
          case Opcode::Ldt:
            add(instr.dst, loadValue(instr, in, analysis.memory));
            break;
          case Opcode::Stg:
          case Opcode::Sts:
          case Opcode::SetP:
            break;
          default:
            if (isa::writesRegister(instr.op))
                add(instr.dst, aluValue(instr, in, program.launch));
            break;
        }
    }
    return sources;
}

PivotAdvice
rankPivots(const std::vector<RegSource> &sources)
{
    PivotAdvice out;
    out.totalSources = static_cast<int>(sources.size());
    for (const RegSource &s : sources)
        out.affineSources += s.laneExact ? 1 : 0;

    for (int p = 0; p < 32; ++p) {
        std::vector<RatioBound> parts;
        parts.reserve(sources.size());
        double sum = 0.0;
        for (const RegSource &s : sources) {
            const RatioBound b = sourcePivotBound(s, p);
            sum += (b.lo + b.hi) / 2;
            parts.push_back(b);
        }
        out.bounds[static_cast<std::size_t>(p)] = finish(parts);
        out.score[static_cast<std::size_t>(p)] =
            sources.empty() ? 0.0 : sum / static_cast<double>(
                                        sources.size());
    }

    if (sources.empty()) {
        out.bestPivot = coder::VsCoder::defaultRegisterPivot;
        out.provenSlack = 0.0;
        return out;
    }

    // 1 is the favored bit value: pick the pivot whose proven lower
    // bound is greatest, break ties by the per-source mean score, then
    // prefer the paper's profiled lane 21, then the lowest lane.
    constexpr double eps = 1e-12;
    auto better = [&](int a, int b) {
        const DensityBound &da = out.bounds[static_cast<std::size_t>(a)];
        const DensityBound &db = out.bounds[static_cast<std::size_t>(b)];
        if (da.lo > db.lo + eps)
            return true;
        if (da.lo < db.lo - eps)
            return false;
        const double sa = out.score[static_cast<std::size_t>(a)];
        const double sb = out.score[static_cast<std::size_t>(b)];
        if (sa > sb + eps)
            return true;
        if (sa < sb - eps)
            return false;
        return a == coder::VsCoder::defaultRegisterPivot
               && b != coder::VsCoder::defaultRegisterPivot;
    };
    int best = coder::VsCoder::defaultRegisterPivot;
    for (int p = 0; p < 32; ++p) {
        if (better(p, best))
            best = p;
    }
    out.bestPivot = best;

    double maxHi = 0.0;
    for (const DensityBound &b : out.bounds)
        maxHi = std::max(maxHi, b.hi);
    out.provenSlack = std::max(
        0.0, maxHi - out.bounds[static_cast<std::size_t>(best)].lo);
    return out;
}

IsaAdvice
specializeIsa(const isa::Program &program, isa::GpuArch arch)
{
    IsaAdvice out;
    out.defaultMask = isa::paperIsaMask(arch);
    out.histogram = isa::opcodeHistogram(program.body);

    const isa::InstructionEncoder encoder(arch);
    const std::vector<Word64> binaries = encoder.encode(program.body);
    out.specializedMask = binaries.empty()
                              ? out.defaultMask
                              : isa::extractPreferenceMask(binaries);

    auto density = [&](Word64 mask) {
        RatioBound r{1.0, 0.0};
        for (Word64 bin : binaries) {
            const double d = hammingWeight64(xnorWord64(bin, mask)) / 64.0;
            r.lo = std::min(r.lo, d);
            r.hi = std::max(r.hi, d);
        }
        return r;
    };
    out.anyInstruction = !binaries.empty();
    if (out.anyInstruction) {
        out.defaultDensity = density(out.defaultMask);
        out.specializedDensity = density(out.specializedMask);
    } else {
        out.defaultDensity = {0.0, 0.0};
        out.specializedDensity = {0.0, 0.0};
    }
    return out;
}

std::vector<UnitPick>
rankUnits(const StaticPrediction &prediction, const PivotAdvice &pivot)
{
    std::vector<UnitPick> picks;
    for (UnitId unit : coder::allUnits()) {
        if (coder::isInstructionUnit(unit))
            continue; // NV/VS never cover the instruction stream
        UnitPick pick;
        pick.unit = unit;
        pick.nv = prediction.unitBound(unit, Scenario::NvOnly);
        const DensityBound &advised =
            pivot.bounds[static_cast<std::size_t>(pivot.bestPivot)];
        pick.vs = unit == UnitId::Reg && advised.any
                      ? advised
                      : prediction.unitBound(unit, Scenario::VsOnly);
        if (!pick.nv.any && !pick.vs.any)
            continue;
        const bool vsWins = midpoint(pick.vs) >= midpoint(pick.nv);
        pick.pick = vsWins ? Scenario::VsOnly : Scenario::NvOnly;
        const DensityBound &win = vsWins ? pick.vs : pick.nv;
        const DensityBound &lose = vsWins ? pick.nv : pick.vs;
        pick.proven = win.lo > lose.hi;
        picks.push_back(pick);
    }
    return picks;
}

std::string
maskHex(Word64 mask)
{
    std::ostringstream os;
    os << "0x" << std::hex << mask;
    return os.str();
}

std::string
boundStr(const DensityBound &b)
{
    std::ostringstream os;
    if (!b.any)
        return "idle";
    os.setf(std::ios::fixed);
    os.precision(4);
    os << "[" << b.lo << ", " << b.hi << "]";
    return os.str();
}

std::string
ratioStr(const RatioBound &b)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(4);
    os << "[" << b.lo << ", " << b.hi << "]";
    return os.str();
}

} // namespace

StaticAdvice
adviseProgram(const isa::Program &program, const AnalysisResult &analysis,
              const AdvisorOptions &options)
{
    StaticAdvice advice;
    advice.pivot = rankPivots(collectRegSources(program, analysis));
    advice.isa = specializeIsa(program, options.arch);

    PredictorOptions popts;
    popts.arch = options.arch;
    popts.isaMask = advice.isa.specializedMask;
    popts.vsRegisterPivot = advice.pivot.bestPivot;
    popts.lineBytes = options.lineBytes;
    advice.prediction = predictDensity(program, analysis, popts);
    advice.bestScenario = advice.prediction.bestStatic;

    advice.unitPicks = rankUnits(advice.prediction, advice.pivot);
    return advice;
}

std::string
renderAdviceReport(const std::string &name, const StaticAdvice &advice)
{
    std::ostringstream os;
    os << "=== " << name << " ===\n";

    const PivotAdvice &pv = advice.pivot;
    os.setf(std::ios::fixed);
    os.precision(4);
    os << "VS register pivot: lane " << pv.bestPivot << " (proven slack "
       << pv.provenSlack << ", " << pv.affineSources << "/"
       << pv.totalSources << " lane-affine sources)\n";
    const auto &bb = pv.bounds[static_cast<std::size_t>(pv.bestPivot)];
    os << "  advised-pivot density " << boundStr(bb) << ", score "
       << pv.score[static_cast<std::size_t>(pv.bestPivot)] << "\n";
    const auto &db = pv.bounds[static_cast<std::size_t>(
        coder::VsCoder::defaultRegisterPivot)];
    if (pv.bestPivot != coder::VsCoder::defaultRegisterPivot)
        os << "  default-pivot density " << boundStr(db) << "\n";

    const IsaAdvice &ia = advice.isa;
    os << "ISA mask: " << maskHex(ia.specializedMask)
       << (ia.specializedMask == ia.defaultMask ? " (= Table 2)"
                                                : " (specialized)")
       << "\n";
    os << "  coded density " << ratioStr(ia.specializedDensity)
       << " vs Table 2 " << ratioStr(ia.defaultDensity) << "\n";

    os << "Unit ranking (NV vs VS):\n";
    for (const UnitPick &p : advice.unitPicks) {
        os << "  " << coder::unitName(p.unit) << ": "
           << coder::scenarioName(p.pick)
           << (p.proven ? " (proven)" : " (heuristic)") << "  NV "
           << boundStr(p.nv) << "  VS " << boundStr(p.vs) << "\n";
    }
    os << "Best scenario under advised wiring: "
       << coder::scenarioName(advice.bestScenario) << "\n";
    return os.str();
}

std::string
adviceJson(const std::string &name, const StaticAdvice &advice)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(6);

    auto bound = [&](const DensityBound &b) {
        std::ostringstream j;
        j.setf(std::ios::fixed);
        j.precision(6);
        j << "{\"any\": " << (b.any ? "true" : "false")
          << ", \"lo\": " << b.lo << ", \"hi\": " << b.hi << "}";
        return j.str();
    };

    // Schema version for downstream tooling; bump on any shape change
    // (docs/ADVISOR.md documents the schema).
    // The kernel name comes from untrusted .bvfasm/.bvfk inputs;
    // escape it so a quote or control character cannot break the
    // document.
    os << "{\"version\": 1, \"kernel\": " << jsonQuote(name)
       << ", \"pivot\": {";
    os << "\"best\": " << advice.pivot.bestPivot
       << ", \"proven_slack\": " << advice.pivot.provenSlack
       << ", \"affine_sources\": " << advice.pivot.affineSources
       << ", \"total_sources\": " << advice.pivot.totalSources
       << ", \"bounds\": [";
    for (int p = 0; p < 32; ++p) {
        if (p)
            os << ", ";
        os << bound(advice.pivot.bounds[static_cast<std::size_t>(p)]);
    }
    os << "], \"scores\": [";
    for (int p = 0; p < 32; ++p) {
        if (p)
            os << ", ";
        os << advice.pivot.score[static_cast<std::size_t>(p)];
    }
    os << "]}, \"isa\": {";
    os << "\"default_mask\": \"" << maskHex(advice.isa.defaultMask)
       << "\", \"specialized_mask\": \""
       << maskHex(advice.isa.specializedMask)
       << "\", \"default_density\": {\"lo\": "
       << advice.isa.defaultDensity.lo
       << ", \"hi\": " << advice.isa.defaultDensity.hi
       << "}, \"specialized_density\": {\"lo\": "
       << advice.isa.specializedDensity.lo
       << ", \"hi\": " << advice.isa.specializedDensity.hi
       << "}, \"histogram\": {";
    bool first = true;
    for (std::size_t op = 0; op < advice.isa.histogram.size(); ++op) {
        if (advice.isa.histogram[op] == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << isa::opcodeName(static_cast<Opcode>(op))
           << "\": " << advice.isa.histogram[op];
    }
    os << "}}, \"units\": [";
    for (std::size_t i = 0; i < advice.unitPicks.size(); ++i) {
        const UnitPick &p = advice.unitPicks[i];
        if (i)
            os << ", ";
        os << "{\"unit\": \"" << coder::unitName(p.unit) << "\", \"pick\": \""
           << coder::scenarioName(p.pick)
           << "\", \"proven\": " << (p.proven ? "true" : "false")
           << ", \"nv\": " << bound(p.nv) << ", \"vs\": " << bound(p.vs)
           << "}";
    }
    os << "], \"best_scenario\": \""
       << coder::scenarioName(advice.bestScenario) << "\"}";
    return os.str();
}

} // namespace bvf::analysis
