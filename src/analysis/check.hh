/**
 * @file
 * Dynamic cross-check of the static density predictor.
 *
 * A run's energy accountant observes, per unit and scenario, how many
 * encoded 0/1 bits actually flowed. The predictor proves an interval
 * that must contain every such ratio. This module compares the two and
 * reports every contradiction -- an observed ratio outside its proven
 * interval means either the abstract interpreter, a coder transform, or
 * the simulator itself is wrong, so the caller should fail loudly.
 *
 * The checker deliberately takes plain observed tuples rather than the
 * accountant object: the analysis layer stays independent of the core
 * simulation layer, which is what lets the linter and predictor run
 * without dragging in the whole machine model.
 */

#ifndef BVF_ANALYSIS_CHECK_HH
#define BVF_ANALYSIS_CHECK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/predictor.hh"

namespace bvf::analysis
{

/** One observed encoded bit stream (a unit port under one scenario). */
struct ObservedStream
{
    coder::UnitId unit;
    coder::Scenario scenario;
    std::string stream; //!< port label, e.g. "reads" or "writes"
    std::uint64_t ones = 0;
    std::uint64_t bits = 0;
};

/** Observed NoC payload bits under one scenario. */
struct ObservedNoc
{
    coder::Scenario scenario;
    std::uint64_t ones = 0;
    std::uint64_t bits = 0;
};

/**
 * Compare observations against @p prediction. Returns one message per
 * violation (empty = all observations inside their proven intervals).
 * Streams with zero observed bits are vacuously consistent; nonzero
 * traffic on a unit the predictor proved idle is itself a violation.
 */
std::vector<std::string> crossCheck(
    const StaticPrediction &prediction,
    const std::vector<ObservedStream> &streams,
    const std::vector<ObservedNoc> &noc);

} // namespace bvf::analysis

#endif // BVF_ANALYSIS_CHECK_HH
