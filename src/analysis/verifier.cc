/**
 * @file
 * Admission verifier implementation.
 *
 * Three passes, each gating the next:
 *
 *  1. structural -- per-instruction canonicality and branch shape
 *     (no abstract interpretation; total over arbitrary decode
 *     results), launch geometry and resource caps;
 *  2. semantic   -- the interpreter fixpoint proves def-before-use
 *     and locates divergent regions (partial-warp barriers);
 *  3. exploration -- an abstract walk from the entry state peels
 *     loops with per-iteration-sharp states, forks at unknown-guard
 *     forward branches and rejoins at the reconvergence point,
 *     proving the per-warp trip bound and the memory footprints.
 *
 * The explorer deliberately re-implements only the *control* shape;
 * every data-path transfer goes through the interpreter's public
 * helpers (guardValue, aluValue, loadValue, memoryAddress, ...), so
 * explorer states are always at least as sharp as fixpoint states and
 * agree with the dynamic pipeline by the interpreter's own soundness
 * tests.
 */

#include "analysis/verifier.hh"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>

#include "analysis/interpreter.hh"

namespace bvf::analysis
{

using isa::Instruction;
using isa::Opcode;

namespace
{

std::string
format(const char *fmt, auto... args)
{
    char buf[192];
    std::snprintf(buf, sizeof buf, fmt, args...);
    return buf;
}

/** Is the guard a real predicate-register read (not the PT sentinel)? */
bool
readsGuard(const Instruction &instr)
{
    return instr.pred != isa::predTrue || instr.predNegate;
}

std::size_t
regIndex(std::uint8_t r)
{
    return r % isa::numRegisters;
}

std::size_t
predIndex(std::uint8_t p)
{
    return p % isa::numPredicates;
}

/** The machine's entry state: zero registers, false predicates. */
AbsState
entryState()
{
    AbsState s;
    s.regs.fill(AbsValue::constant(0));
    s.preds.fill({Bool3::False, Uniformity::Uniform});
    s.reachable = true;
    return s;
}

AbsState
joinStates(const AbsState &a, const AbsState &b)
{
    AbsState out;
    for (std::size_t i = 0; i < a.regs.size(); ++i)
        out.regs[i] = join(a.regs[i], b.regs[i]);
    for (std::size_t p = 0; p < a.preds.size(); ++p)
        out.preds[p] = join(a.preds[p], b.preds[p]);
    out.regWritten = a.regWritten & b.regWritten;
    out.predWritten = a.predWritten & b.predWritten;
    out.reachable = true;
    return out;
}

class Verifier
{
  public:
    Verifier(const isa::Program &program, const VerifyOptions &options)
        : program_(program), options_(options)
    {
    }

    Verdict run();

  private:
    void reject(RejectReason reason, int pc, std::string message);
    void checkLimits();
    void checkCanonical(int pc, const Instruction &instr);
    void checkBranchShape(int pc, const Instruction &instr);
    void checkUninit(int pc, const Instruction &instr, const AbsState &in);

    // --- trip-count / footprint exploration ---------------------------

    struct WalkResult
    {
        std::uint64_t steps = 0; //!< warp issue-count bound for the walk
        bool exited = false;     //!< the walk retired at an Exit
        AbsState state;
    };

    std::optional<WalkResult> explore(int pc, int lowPc, int endPc,
                                      AbsState state, int depth);
    bool checkAccess(int pc, const Instruction &instr,
                     const AbsState &state);
    void transfer(const Instruction &instr, int pc, Bool3 guard,
                  AbsState &state);

    Verdict finish();

    const isa::Program &program_;
    const VerifyOptions &options_;
    std::optional<AnalysisResult> analysis_;
    std::vector<Rejection> rejections_;
    Certificate cert_;
    std::uint64_t stepsUsed_ = 0;
    bool exploreFailed_ = false;
};

void
Verifier::reject(RejectReason reason, int pc, std::string message)
{
    rejections_.push_back({reason, pc, std::move(message)});
}

void
Verifier::checkLimits()
{
    if (program_.name.size() > options_.maxNameBytes) {
        reject(RejectReason::ResourceLimit, 0,
               format("kernel name is %zu bytes (limit %u)",
                      program_.name.size(), options_.maxNameBytes));
    }
    if (program_.body.size() > options_.maxBodyInstructions) {
        reject(RejectReason::ResourceLimit, 0,
               format("body has %zu instructions (limit %u)",
                      program_.body.size(), options_.maxBodyInstructions));
    }
    const auto image = [&](const std::vector<Word> &img, const char *space) {
        if (img.size() > options_.maxImageWords) {
            reject(RejectReason::ResourceLimit, 0,
                   format("%s image has %zu words (limit %u)", space,
                          img.size(), options_.maxImageWords));
        }
    };
    image(program_.global, "global");
    image(program_.constants, "constant");
    image(program_.texture, "texture");
    if (program_.sharedBytesPerBlock > options_.maxSharedBytes) {
        reject(RejectReason::ResourceLimit, 0,
               format("shared segment is %u bytes (limit %u)",
                      program_.sharedBytesPerBlock,
                      options_.maxSharedBytes));
    }

    const isa::LaunchDims &launch = program_.launch;
    if (launch.blockThreads < 1
        || launch.blockThreads > options_.maxBlockThreads) {
        reject(RejectReason::BadLaunch, 0,
               format("blockThreads=%d outside [1, %d]",
                      launch.blockThreads, options_.maxBlockThreads));
    }
    if (launch.gridBlocks < 1 || launch.gridBlocks > options_.maxGridBlocks) {
        reject(RejectReason::BadLaunch, 0,
               format("gridBlocks=%d outside [1, %d]", launch.gridBlocks,
                      options_.maxGridBlocks));
    }

    if (program_.body.empty())
        reject(RejectReason::FallsOffEnd, 0, "empty kernel body");
}

/** Mirrors lint's NonCanonical rules; rejection, not diagnostic. */
void
Verifier::checkCanonical(int pc, const Instruction &instr)
{
    const auto bad = [&](std::string message) {
        reject(RejectReason::MalformedInstruction, pc, std::move(message));
    };
    if (static_cast<unsigned>(instr.op)
        >= static_cast<unsigned>(Opcode::NumOpcodes)) {
        bad(format("opcode %u unknown", unsigned(instr.op)));
        return; // classification helpers need a valid opcode
    }

    const Opcode op = instr.op;
    const bool writes_reg = isa::writesRegister(op);
    const bool reads_b = isa::readsSrcB(op);

    if (instr.pred >= isa::numPredicates)
        bad(format("predicate %d out of range", int(instr.pred)));
    else if (instr.pred == isa::predTrue && instr.predNegate)
        bad("guard reads the PT sentinel predicate (p0 with negate)");

    if (op == Opcode::SetP) {
        if (instr.dst >= isa::numPredicates)
            bad(format("SetP predicate destination %d out of range",
                       int(instr.dst)));
    } else if (writes_reg) {
        if (instr.dst >= isa::numRegisters)
            bad(format("destination register %d out of range",
                       int(instr.dst)));
    } else if (instr.dst != 0) {
        bad(format("%s ignores dst but dst=%d", opcodeName(op).c_str(),
                   int(instr.dst)));
    }

    if (isa::readsSrcA(op)) {
        if (instr.srcA >= isa::numRegisters)
            bad(format("srcA register %d out of range", int(instr.srcA)));
    } else if (instr.srcA != 0) {
        bad(format("%s ignores srcA but srcA=%d", opcodeName(op).c_str(),
                   int(instr.srcA)));
    }

    if (reads_b && !instr.immB) {
        if (instr.srcB >= isa::numRegisters)
            bad(format("srcB register %d out of range", int(instr.srcB)));
    } else if (instr.srcB != 0) {
        bad(format("%s ignores srcB but srcB=%d", opcodeName(op).c_str(),
                   int(instr.srcB)));
    }

    if (instr.immB && (!reads_b || isa::isMemoryOp(op)))
        bad(format("%s does not take an immediate srcB",
                   opcodeName(op).c_str()));

    if (op == Opcode::SetP || op == Opcode::S2R) {
        if (instr.flags >= 6)
            bad(format("%s selector flags=%d out of range",
                       opcodeName(op).c_str(), int(instr.flags)));
    } else if (instr.flags != 0) {
        bad(format("%s ignores flags but flags=%d", opcodeName(op).c_str(),
                   int(instr.flags)));
    }

    const bool uses_imm =
        instr.immB || isa::isMemoryOp(op) || op == Opcode::Bra;
    if (!uses_imm && instr.imm != 0)
        bad(format("%s ignores imm but imm=%d", opcodeName(op).c_str(),
                   instr.imm));
    if (instr.imm < -32768 || instr.imm > 32767)
        bad(format("imm=%d exceeds the 16-bit encoding", instr.imm));

    if (op != Opcode::Bra && instr.reconv != 0)
        bad(format("%s ignores reconv but reconv=%d",
                   opcodeName(op).c_str(), instr.reconv));
}

void
Verifier::checkBranchShape(int pc, const Instruction &instr)
{
    if (instr.op != Opcode::Bra)
        return;
    const int size = static_cast<int>(program_.body.size());
    const int target = instr.imm;
    const int reconv = instr.reconv;
    const bool forward = pc < target && target <= reconv && reconv < size;
    const bool backward =
        0 <= target && target <= pc && pc < reconv && reconv < size;
    if (!forward && !backward) {
        reject(RejectReason::BadBranch, pc,
               format("branch target %d / reconv %d malformed "
                      "(body size %d)",
                      target, reconv, size));
    }
}

void
Verifier::checkUninit(int pc, const Instruction &instr, const AbsState &in)
{
    const auto reg_read = [&](std::uint8_t r, const char *role) {
        if (r < isa::numRegisters && !((in.regWritten >> r) & 1u)) {
            reject(RejectReason::UninitRead, pc,
                   format("r%d read as %s before any write on some path",
                          int(r), role));
        }
    };
    if (isa::readsSrcA(instr.op))
        reg_read(instr.srcA, "srcA");
    if (isa::readsSrcB(instr.op) && !instr.immB)
        reg_read(instr.srcB, "srcB");
    if (readsDst(instr.op))
        reg_read(instr.dst, "accumulator");

    if (readsGuard(instr) && instr.pred < isa::numPredicates
        && !((in.predWritten >> instr.pred) & 1u)) {
        reject(RejectReason::UninitRead, pc,
               format("p%d guards before any SetP on some path",
                      int(instr.pred)));
    }
}

/**
 * Bounds-check one memory access against its declared segment and fold
 * it into the footprint hull. The address hull is the KnownBits
 * component of reg[srcA] + imm, already cross-refined by the signed
 * interval through reduceValue inside the transfer functions.
 */
bool
Verifier::checkAccess(int pc, const Instruction &instr,
                      const AbsState &state)
{
    const KnownBits addr = memoryAddress(state, instr);
    const auto oob = [&](std::string message) {
        reject(RejectReason::MemoryOutOfBounds, pc, std::move(message));
        return false;
    };
    switch (instr.op) {
      case Opcode::Lds:
      case Opcode::Sts: {
        const std::uint32_t bytes = program_.sharedBytesPerBlock;
        if (bytes == 0)
            return oob("shared access but the block has no shared segment");
        if (addr.hi >= bytes)
            return oob(format("shared offset may reach %u of a %u-byte "
                              "segment",
                              addr.hi, bytes));
        cert_.shared.cover(addr.lo, addr.hi);
        return true;
      }
      case Opcode::Ldc:
      case Opcode::Ldt: {
        const bool tex = instr.op == Opcode::Ldt;
        const auto &image = tex ? program_.texture : program_.constants;
        const char *space = tex ? "texture" : "constant";
        const auto bytes = static_cast<std::uint32_t>(image.size() * 4);
        if (bytes == 0)
            return oob(format("%s load but the image is empty", space));
        if (addr.hi >= bytes)
            return oob(format("%s offset may reach %u of a %u-byte image",
                              space, addr.hi, bytes));
        (tex ? cert_.texture : cert_.constant).cover(addr.lo, addr.hi);
        return true;
      }
      case Opcode::Ldg:
      case Opcode::Stg: {
        const auto bytes =
            static_cast<std::uint32_t>(program_.globalBytes());
        if (bytes == 0)
            return oob("global access but the global image is empty");
        const std::uint32_t base = isa::globalSegmentBase;
        if (addr.lo < base || addr.hi >= base + bytes) {
            return oob(format("global address hull [%u, %u] escapes the "
                              "segment [%u, %u)",
                              addr.lo, addr.hi, base, base + bytes));
        }
        cert_.global.cover(addr.lo, addr.hi);
        return true;
      }
      default:
        return true;
    }
}

/**
 * Apply one non-control instruction to @p state, mirroring the
 * interpreter Stepper's write discipline (certain overwrite vs join,
 * lane-affine demotion on partial-mask writes).
 */
void
Verifier::transfer(const Instruction &instr, int pc, Bool3 guard,
                   AbsState &state)
{
    if (guard == Bool3::False)
        return;
    const bool certain = guard == Bool3::True;
    const bool wholeWarp =
        !analysis_->divergentRegion[static_cast<std::size_t>(pc)]
        && guardUniformity(state, instr) == Uniformity::Uniform;

    if (instr.op == Opcode::SetP) {
        const auto cmp = static_cast<isa::CmpOp>(instr.flags);
        Bool3 v = kbCompare(cmp, operandA(state, instr),
                            operandB(state, instr));
        if (v == Bool3::Unknown) {
            const SignedInterval &sa =
                state.regs[regIndex(instr.srcA)].si();
            const SignedInterval sb =
                instr.immB
                    ? SignedInterval::constant(static_cast<Word>(instr.imm))
                    : state.regs[regIndex(instr.srcB)].si();
            v = siCompare(cmp, sa, sb);
        }
        const bool lanesAgree =
            state.regs[regIndex(instr.srcA)].affine().isUniform()
            && (instr.immB
                || state.regs[regIndex(instr.srcB)].affine().isUniform());
        const Uniformity uni = wholeWarp && lanesAgree
                                   ? Uniformity::Uniform
                                   : Uniformity::MayDiverge;
        const std::size_t idx = predIndex(instr.dst);
        if (certain) {
            state.preds[idx] = {v, uni};
            state.predWritten |= static_cast<std::uint8_t>(1u << idx);
        } else {
            state.preds[idx].value = join(state.preds[idx].value, v);
            state.preds[idx].uni = wholeWarp
                                       ? join(state.preds[idx].uni, uni)
                                       : Uniformity::MayDiverge;
        }
        return;
    }

    if (isa::isStoreOp(instr.op))
        return; // footprint handled in checkAccess; no register effect

    if (!isa::writesRegister(instr.op))
        return;

    AbsValue result = isa::isLoadOp(instr.op)
                          ? loadValue(instr, state, analysis_->memory)
                          : aluValue(instr, state, program_.launch);
    if (!wholeWarp)
        result.affine() = LaneAffine::top();
    const std::size_t idx = regIndex(instr.dst);
    state.regs[idx] =
        certain ? result : join(state.regs[idx], result);
    if (certain)
        state.regWritten |= std::uint64_t(1) << idx;
}

/**
 * Abstract walk over [@p lowPc+1, @p endPc). Returns the issue-count
 * bound and the out state at @p endPc (or at the Exit that retired the
 * warp); nullopt after recording a rejection. @p lowPc is exclusive:
 * a branch that escapes below it would re-execute its own fork point,
 * which the fork-join model cannot express.
 */
std::optional<Verifier::WalkResult>
Verifier::explore(int pc, int lowPc, int endPc, AbsState state, int depth)
{
    const auto fail = [&](RejectReason reason, int at, std::string msg) {
        if (!exploreFailed_) {
            exploreFailed_ = true;
            reject(reason, at, std::move(msg));
        }
        return std::nullopt;
    };

    WalkResult r;
    r.state = std::move(state);
    while (pc != endPc) {
        if (pc <= lowPc || pc > endPc) {
            return fail(RejectReason::IllFormedDivergence, pc,
                        format("control escapes the divergent region "
                               "(%d, %d)",
                               lowPc, endPc));
        }
        if (++stepsUsed_ > options_.stepBudget) {
            return fail(RejectReason::BudgetExceeded, pc,
                        format("abstract step budget (%llu) exhausted; "
                               "termination not proven",
                               static_cast<unsigned long long>(
                                   options_.stepBudget)));
        }
        ++r.steps;
        const Instruction &instr =
            program_.body[static_cast<std::size_t>(pc)];
        const Bool3 guard = guardValue(r.state, instr);

        switch (instr.op) {
          case Opcode::Exit:
            // The SM retires the whole warp regardless of the guard.
            r.exited = true;
            return r;
          case Opcode::Bar:
          case Opcode::Nop:
            ++pc;
            continue;
          case Opcode::Bra: {
            if (guard == Bool3::True) {
                pc = instr.imm; // loop-top range check catches escapes
                continue;
            }
            if (guard == Bool3::False) {
                ++pc;
                continue;
            }
            if (instr.imm <= pc) {
                return fail(
                    RejectReason::BudgetExceeded, pc,
                    "backward branch with an unprovable guard: loop "
                    "trip count not bounded");
            }
            if (depth >= options_.maxForkDepth) {
                return fail(RejectReason::IllFormedDivergence, pc,
                            format("divergence nests deeper than %d",
                                   options_.maxForkDepth));
            }
            // Fork: walk both arms up to the reconvergence point. A
            // lane-uniform guard means the warp takes one arm or the
            // other (max); otherwise the SM serializes both (sum).
            const int reconv = instr.reconv;
            const Uniformity uni = guardUniformity(r.state, instr);
            auto taken = explore(instr.imm, pc, reconv, r.state, depth + 1);
            if (!taken)
                return std::nullopt;
            auto fall = explore(pc + 1, pc, reconv, r.state, depth + 1);
            if (!fall)
                return std::nullopt;
            r.steps += uni == Uniformity::Uniform
                           ? std::max(taken->steps, fall->steps)
                           : taken->steps + fall->steps;
            if (taken->exited && fall->exited) {
                r.exited = true;
                r.state = joinStates(taken->state, fall->state);
                return r;
            }
            if (taken->exited)
                r.state = std::move(fall->state);
            else if (fall->exited)
                r.state = std::move(taken->state);
            else
                r.state = joinStates(taken->state, fall->state);
            pc = reconv;
            continue;
          }
          default:
            break;
        }

        if (isa::isMemoryOp(instr.op) && guard != Bool3::False
            && !checkAccess(pc, instr, r.state)) {
            exploreFailed_ = true;
            return std::nullopt;
        }
        transfer(instr, pc, guard, r.state);
        ++pc;
    }
    return r;
}

Verdict
Verifier::run()
{
    // Pass 1: structural. Anything here makes the later passes
    // meaningless, so they are skipped entirely.
    checkLimits();
    const int size = static_cast<int>(program_.body.size());
    for (int pc = 0; pc < size; ++pc) {
        const Instruction &instr =
            program_.body[static_cast<std::size_t>(pc)];
        checkCanonical(pc, instr);
        checkBranchShape(pc, instr);
    }
    if (!rejections_.empty())
        return finish();

    // Pass 2: fixpoint-based semantic checks.
    analysis_.emplace(analyzeProgram(program_));
    for (int pc = 0; pc < size; ++pc) {
        const auto idx = static_cast<std::size_t>(pc);
        if (!analysis_->in[idx].reachable)
            continue;
        const Instruction &instr = program_.body[idx];
        checkUninit(pc, instr, analysis_->in[idx]);
        if (instr.op == Opcode::Bar && analysis_->divergentRegion[idx]) {
            reject(RejectReason::IllFormedDivergence, pc,
                   "barrier may be issued by a partially-masked warp");
        }
    }
    if (!rejections_.empty())
        return finish();

    // Uniform-control-flow certificate bit: every reachable branch
    // whose guard is decided (taken by all or by none) or proven
    // warp-uniform can never split the warp, so the SIMT stack stays
    // at its initial frame for the whole run.
    cert_.uniformControlFlow = true;
    for (int pc = 0; pc < size; ++pc) {
        const auto idx = static_cast<std::size_t>(pc);
        if (!analysis_->in[idx].reachable)
            continue;
        const Instruction &instr = program_.body[idx];
        if (instr.op != Opcode::Bra)
            continue;
        const bool decided =
            guardValue(analysis_->in[idx], instr) != Bool3::Unknown;
        const bool uniform =
            guardUniformity(analysis_->in[idx], instr)
            == Uniformity::Uniform;
        if (!decided && !uniform) {
            cert_.uniformControlFlow = false;
            break;
        }
    }

    // Pass 3: trip-count and footprint exploration.
    auto walk = explore(0, -1, size, entryState(), 0);
    cert_.abstractSteps = stepsUsed_;
    if (walk) {
        if (!walk->exited) {
            reject(RejectReason::FallsOffEnd, size - 1,
                   "execution can run past the last instruction");
        } else {
            cert_.warpTripBound = walk->steps;
        }
    }
    return finish();
}

Verdict
Verifier::finish()
{
    std::stable_sort(rejections_.begin(), rejections_.end(),
                     [](const Rejection &a, const Rejection &b) {
                         return a.pc < b.pc;
                     });
    Verdict verdict;
    verdict.admitted = rejections_.empty();
    verdict.rejections = std::move(rejections_);
    if (verdict.admitted)
        verdict.certificate = cert_;
    return verdict;
}

} // namespace

std::string
rejectReasonName(RejectReason reason)
{
    switch (reason) {
      case RejectReason::MalformedInstruction:
        return "malformed-instruction";
      case RejectReason::BadBranch: return "bad-branch";
      case RejectReason::BadLaunch: return "bad-launch";
      case RejectReason::ResourceLimit: return "resource-limit";
      case RejectReason::UninitRead: return "uninit-read";
      case RejectReason::IllFormedDivergence:
        return "ill-formed-divergence";
      case RejectReason::MemoryOutOfBounds: return "memory-out-of-bounds";
      case RejectReason::FallsOffEnd: return "falls-off-end";
      case RejectReason::BudgetExceeded: return "budget-exceeded";
    }
    return "unknown";
}

std::string
Rejection::toString() const
{
    return "pc " + std::to_string(pc) + ": " + rejectReasonName(reason)
           + ": " + message;
}

Verdict
verifyProgram(const isa::Program &program, const VerifyOptions &options)
{
    return Verifier(program, options).run();
}

} // namespace bvf::analysis
