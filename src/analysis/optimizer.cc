/**
 * @file
 * Optimizer implementation.
 *
 * Structure: the working body keeps the original program's length and
 * branch coordinates throughout -- rewrites edit instructions in
 * place, deletions only clear a kept-flag -- and the optimized program
 * is materialized at the end by filtering and remapping branches
 * through the kept-prefix map. That makes every intermediate decision
 * expressible in original coordinates, which is exactly the language
 * the translation validator re-checks it in.
 *
 * Phase 1 (single pass): branch unpredication, constant folds,
 * identity/power-of-two strength reduction, block-local copy
 * propagation. Every rewrite is justified by the *original* analysis
 * only, so rewrites never need re-analysis and compose trivially.
 *
 * Phase 2 (fixpoint): deletion rounds under a deletion-restricted
 * backward liveness whose gens/kills come from the *rewritten*
 * instructions (a folded MOV no longer reads its old operands, so
 * their defs can die) while CFG edges keep the original shape.
 * Collapsed branches are deleted one per round because their
 * justification depends on the kept set itself.
 *
 * The final program is only preferred when the translation validator
 * accepts it and it re-admits with a certificate no weaker than the
 * original's; otherwise every caller gets the original back.
 */

#include "analysis/optimizer.hh"

#include <algorithm>
#include <array>
#include <bit>

#include "analysis/interpreter.hh"
#include "common/logging.hh"
#include "isa/opcode.hh"

namespace bvf::analysis
{

namespace
{

using isa::Instruction;
using isa::Opcode;

bool
readsGuard(const Instruction &instr)
{
    return instr.pred != isa::predTrue || instr.predNegate;
}

bool
constantOf(const AbsValue &v, Word &out)
{
    if (v.kb().isConstant()) {
        out = v.kb().knownOne;
        return true;
    }
    if (v.si().slo == v.si().shi) {
        out = static_cast<Word>(v.si().slo);
        return true;
    }
    return false;
}

/** Block leaders: pc 0, branch targets / reconv points, post-control. */
std::vector<char>
blockLeaders(const isa::Program &p)
{
    const int size = static_cast<int>(p.body.size());
    std::vector<char> leader(static_cast<std::size_t>(size), 0);
    if (size > 0)
        leader[0] = 1;
    auto mark = [&](int pc) {
        if (pc >= 0 && pc < size)
            leader[static_cast<std::size_t>(pc)] = 1;
    };
    for (int pc = 0; pc < size; ++pc) {
        const Instruction &instr = p.body[static_cast<std::size_t>(pc)];
        if (instr.op == Opcode::Bra) {
            mark(instr.imm);
            mark(instr.reconv);
            mark(pc + 1);
        } else if (instr.op == Opcode::Exit) {
            mark(pc + 1);
        }
    }
    return leader;
}

/** Canonical `MOV dst, #imm` under @p guard_of. */
Instruction
immMov(std::uint8_t dst, int imm, const Instruction &guard_of)
{
    Instruction m;
    m.op = Opcode::Mov;
    m.dst = dst;
    m.immB = true;
    m.imm = imm;
    m.pred = guard_of.pred;
    m.predNegate = guard_of.predNegate;
    return m;
}

/** Canonical reg-reg `MOV dst, src` under @p guard_of. */
Instruction
regMov(std::uint8_t dst, std::uint8_t src, const Instruction &guard_of)
{
    Instruction m;
    m.op = Opcode::Mov;
    m.dst = dst;
    m.srcB = src;
    m.pred = guard_of.pred;
    m.predNegate = guard_of.predNegate;
    return m;
}

/**
 * Deletion-restricted backward liveness in original coordinates:
 * edges from the original body, gens/kills from the rewritten
 * instructions of kept slots, identity through deleted slots. The
 * validator recomputes the same fixpoint independently.
 */
struct Liveness
{
    std::vector<std::uint64_t> regs;
    std::vector<std::uint8_t> preds;
};

Liveness
deletionLiveness(const isa::Program &orig,
                 const std::vector<Instruction> &work,
                 const std::vector<char> &kept, const AnalysisResult &ar)
{
    const int size = static_cast<int>(orig.body.size());
    Liveness live;
    live.regs.assign(static_cast<std::size_t>(size), 0);
    live.preds.assign(static_cast<std::size_t>(size), 0);

    bool changed = true;
    while (changed) {
        changed = false;
        for (int pc = size - 1; pc >= 0; --pc) {
            const Instruction &shape =
                orig.body[static_cast<std::size_t>(pc)];
            std::uint64_t regs = 0;
            std::uint8_t preds = 0;
            if (shape.op != Opcode::Exit) {
                if (pc + 1 < size) {
                    regs |= live.regs[static_cast<std::size_t>(pc + 1)];
                    preds |=
                        live.preds[static_cast<std::size_t>(pc + 1)];
                }
                const bool taken_edge =
                    shape.op == Opcode::Bra && shape.imm >= 0
                    && shape.imm < size
                    && (kept[static_cast<std::size_t>(pc)]
                        || guardValue(
                               ar.in[static_cast<std::size_t>(pc)],
                               shape)
                               != Bool3::False);
                if (taken_edge) {
                    regs |=
                        live.regs[static_cast<std::size_t>(shape.imm)];
                    preds |=
                        live.preds[static_cast<std::size_t>(shape.imm)];
                }
            }
            if (kept[static_cast<std::size_t>(pc)]) {
                const Instruction &instr =
                    work[static_cast<std::size_t>(pc)];
                const bool certain = !readsGuard(instr);
                if (certain && isa::writesRegister(instr.op)
                    && instr.dst < isa::numRegisters) {
                    regs &= ~(std::uint64_t(1) << instr.dst);
                }
                if (certain && instr.op == Opcode::SetP
                    && instr.dst < isa::numPredicates) {
                    preds &= static_cast<std::uint8_t>(
                        ~(1u << instr.dst));
                }
                if (isa::readsSrcA(instr.op)
                    && instr.srcA < isa::numRegisters)
                    regs |= std::uint64_t(1) << instr.srcA;
                if (isa::readsSrcB(instr.op) && !instr.immB
                    && instr.srcB < isa::numRegisters) {
                    regs |= std::uint64_t(1) << instr.srcB;
                }
                if (isa::readsDst(instr.op)
                    && instr.dst < isa::numRegisters)
                    regs |= std::uint64_t(1) << instr.dst;
                if (readsGuard(instr)
                    && instr.pred < isa::numPredicates) {
                    preds |= static_cast<std::uint8_t>(1u
                                                       << instr.pred);
                }
            }
            const auto idx = static_cast<std::size_t>(pc);
            if (regs != live.regs[idx] || preds != live.preds[idx]) {
                live.regs[idx] = regs;
                live.preds[idx] = preds;
                changed = true;
            }
        }
    }
    return live;
}

/** Live-out of pc under @p live (same edge rule as the fixpoint). */
std::pair<std::uint64_t, std::uint8_t>
liveOutOf(const isa::Program &orig, const std::vector<char> &kept,
          const AnalysisResult &ar, const Liveness &live, int pc)
{
    const int size = static_cast<int>(orig.body.size());
    const Instruction &shape = orig.body[static_cast<std::size_t>(pc)];
    std::uint64_t regs = 0;
    std::uint8_t preds = 0;
    if (shape.op == Opcode::Exit)
        return {regs, preds};
    if (pc + 1 < size) {
        regs |= live.regs[static_cast<std::size_t>(pc + 1)];
        preds |= live.preds[static_cast<std::size_t>(pc + 1)];
    }
    if (shape.op == Opcode::Bra && shape.imm >= 0 && shape.imm < size
        && (kept[static_cast<std::size_t>(pc)]
            || guardValue(ar.in[static_cast<std::size_t>(pc)], shape)
                   != Bool3::False)) {
        regs |= live.regs[static_cast<std::size_t>(shape.imm)];
        preds |= live.preds[static_cast<std::size_t>(shape.imm)];
    }
    return {regs, preds};
}

/** Phase 1: in-place rewrites justified by the original analysis. */
void
rewritePass(const isa::Program &orig, const AnalysisResult &ar,
            std::vector<Instruction> &work, OptStats &stats)
{
    const int size = static_cast<int>(orig.body.size());
    const std::vector<char> leader = blockLeaders(orig);

    std::array<int, isa::numRegisters> copies{};
    copies.fill(-1);
    auto clobber = [&copies](int reg) {
        copies[static_cast<std::size_t>(reg)] = -1;
        for (int r = 0; r < isa::numRegisters; ++r) {
            if (copies[static_cast<std::size_t>(r)] == reg)
                copies[static_cast<std::size_t>(r)] = -1;
        }
    };

    for (int pc = 0; pc < size; ++pc) {
        if (leader[static_cast<std::size_t>(pc)])
            copies.fill(-1);
        const Instruction &o = orig.body[static_cast<std::size_t>(pc)];
        Instruction &cur = work[static_cast<std::size_t>(pc)];
        const AbsState &in = ar.in[static_cast<std::size_t>(pc)];

        // Copy-map maintenance always runs (from the *original*
        // instruction -- the validator's backward scan sees only
        // original MOVs), rewrites only on reachable code.
        auto maintain = [&] {
            if (!isa::writesRegister(o.op)
                || o.dst >= isa::numRegisters)
                return;
            if (o.op == Opcode::Mov && !o.immB && !readsGuard(o)
                && o.srcB < isa::numRegisters && o.dst != o.srcB) {
                clobber(o.dst);
                copies[o.dst] = o.srcB;
            } else {
                clobber(o.dst);
            }
        };

        if (!in.reachable) {
            maintain();
            continue;
        }

        const Bool3 guard = guardValue(in, o);

        if (o.op == Opcode::Bra) {
            if (readsGuard(cur) && guard == Bool3::True) {
                cur.pred = isa::predTrue;
                cur.predNegate = false;
                ++stats.flattenedBranches;
            }
            maintain();
            continue;
        }

        if (isa::writesRegister(o.op) && guard != Bool3::False
            && !isa::isLoadOp(o.op)) {
            // Constant fold. Loads are never folded: their abstract
            // value is derived from the initial data images, and the
            // translation-equivalence contract quantifies over all
            // images (the validator's differential layer scrambles
            // them), so such a fold can never be accepted.
            const AbsValue result = aluValue(o, in, orig.launch);
            Word c = 0;
            if (constantOf(result, c)) {
                const auto sc = static_cast<std::int32_t>(c);
                if (sc >= -32768 && sc <= 32767) {
                    const Instruction m = immMov(o.dst, sc, o);
                    if (!(m == cur)) {
                        cur = m;
                        ++stats.foldedConstants;
                    }
                    maintain();
                    continue;
                }
            }

            // Identity strength reduction.
            if (!isa::readsDst(o.op)) {
                Word ca = 0;
                Word cb = 0;
                const bool hasA =
                    isa::readsSrcA(o.op) && constantOf(valueA(in, o), ca);
                const bool hasB =
                    isa::readsSrcB(o.op) && constantOf(valueB(in, o), cb);
                int survivor = -1;
                switch (o.op) {
                  case Opcode::IAdd:
                  case Opcode::Or:
                  case Opcode::Xor:
                    if (hasB && cb == 0)
                        survivor = o.srcA;
                    else if (hasA && ca == 0 && !o.immB)
                        survivor = o.srcB;
                    break;
                  case Opcode::ISub:
                    if (hasB && cb == 0)
                        survivor = o.srcA;
                    break;
                  case Opcode::Shl:
                  case Opcode::Shr:
                    if (hasB && (cb & 31u) == 0)
                        survivor = o.srcA;
                    break;
                  case Opcode::IMul:
                    if (hasB && cb == 1)
                        survivor = o.srcA;
                    else if (hasA && ca == 1 && !o.immB)
                        survivor = o.srcB;
                    break;
                  case Opcode::And:
                    if (hasB && cb == 0xffffffffu)
                        survivor = o.srcA;
                    else if (hasA && ca == 0xffffffffu && !o.immB)
                        survivor = o.srcB;
                    break;
                  default:
                    break;
                }
                if (survivor >= 0) {
                    cur = regMov(o.dst,
                                 static_cast<std::uint8_t>(survivor), o);
                    ++stats.reducedStrength;
                    maintain();
                    continue;
                }

                // Multiply by a proven power of two becomes a shift.
                if (o.op == Opcode::IMul) {
                    int shifted = -1;
                    Word factor = 0;
                    if (hasB && std::has_single_bit(cb) && cb >= 2) {
                        shifted = o.srcA;
                        factor = cb;
                    } else if (hasA && std::has_single_bit(ca)
                               && ca >= 2 && !o.immB) {
                        shifted = o.srcB;
                        factor = ca;
                    }
                    if (shifted >= 0) {
                        Instruction s;
                        s.op = Opcode::Shl;
                        s.dst = o.dst;
                        s.srcA = static_cast<std::uint8_t>(shifted);
                        s.immB = true;
                        s.imm = std::countr_zero(factor);
                        s.pred = o.pred;
                        s.predNegate = o.predNegate;
                        cur = s;
                        ++stats.reducedStrength;
                        maintain();
                        continue;
                    }
                }
            }
        }

        // Block-local copy propagation on the surviving instruction.
        if (isa::readsSrcA(cur.op) && cur.srcA < isa::numRegisters
            && copies[cur.srcA] >= 0) {
            cur.srcA = static_cast<std::uint8_t>(copies[cur.srcA]);
            ++stats.propagatedCopies;
        }
        if (isa::readsSrcB(cur.op) && !cur.immB
            && cur.srcB < isa::numRegisters
            && copies[cur.srcB] >= 0) {
            const auto s = static_cast<std::uint8_t>(copies[cur.srcB]);
            // Never synthesize a self-move the validator cannot tie
            // back to an original one.
            if (!(cur.op == Opcode::Mov && s == cur.dst)) {
                cur.srcB = s;
                ++stats.propagatedCopies;
            }
        }
        maintain();
    }
}

/** Kept-prefix position of original pc @p p given @p kept. */
int
posOf(const std::vector<int> &prefix, int p)
{
    const int size = static_cast<int>(prefix.size()) - 1;
    if (p < 0)
        return -1;
    if (p >= size)
        return prefix[static_cast<std::size_t>(size)];
    return prefix[static_cast<std::size_t>(p)];
}

std::vector<int>
keptPrefix(const std::vector<char> &kept)
{
    std::vector<int> prefix(kept.size() + 1, 0);
    int count = 0;
    for (std::size_t j = 0; j < kept.size(); ++j) {
        prefix[j] = count;
        if (kept[j])
            ++count;
    }
    prefix[kept.size()] = count;
    return prefix;
}

/** Phase 2: deletion fixpoint. Returns true if anything was deleted. */
bool
deletionPass(const isa::Program &orig, const AnalysisResult &ar,
             const std::vector<Instruction> &work,
             std::vector<char> &kept, OptStats &stats, int maxRounds)
{
    const int size = static_cast<int>(orig.body.size());
    bool any = false;

    for (int round = 0; round < maxRounds; ++round) {
        bool changed = false;
        const Liveness live = deletionLiveness(orig, work, kept, ar);

        for (int j = 0; j < size; ++j) {
            if (!kept[static_cast<std::size_t>(j)])
                continue;
            const Instruction &o =
                orig.body[static_cast<std::size_t>(j)];
            const Instruction &w =
                work[static_cast<std::size_t>(j)];
            const AbsState &in = ar.in[static_cast<std::size_t>(j)];

            std::uint32_t *counter = nullptr;
            if (!in.reachable) {
                counter = &stats.removedUnreachable;
            } else if (w.op == Opcode::Nop) {
                counter = &stats.removedNops;
            } else if (guardValue(in, o) == Bool3::False
                       && o.op != Opcode::Exit && o.op != Opcode::Bar) {
                counter = &stats.removedGuardFalse;
            } else if (o.op == Opcode::Mov && !o.immB
                       && o.dst == o.srcB) {
                counter = &stats.removedNops; // original self-move
            } else if (o.op != Opcode::Bra) {
                const auto [out_regs, out_preds] =
                    liveOutOf(orig, kept, ar, live, j);
                if (isa::writesRegister(w.op)
                    && w.dst < isa::numRegisters
                    && !((out_regs >> w.dst) & 1u)) {
                    counter = &stats.removedDead;
                } else if (w.op == Opcode::SetP
                           && w.dst < isa::numPredicates
                           && !((out_preds >> w.dst) & 1u)) {
                    counter = &stats.removedDead;
                }
            }
            if (counter) {
                kept[static_cast<std::size_t>(j)] = 0;
                ++*counter;
                changed = true;
                any = true;
            }
        }

        // Collapsed branches: one per round -- the justification
        // depends on the kept set the deletion itself produces.
        const std::vector<int> prefix = keptPrefix(kept);
        for (int j = 0; j < size; ++j) {
            if (!kept[static_cast<std::size_t>(j)])
                continue;
            const Instruction &o =
                orig.body[static_cast<std::size_t>(j)];
            if (o.op != Opcode::Bra)
                continue;
            if (o.imm < 0 || o.imm > size || o.reconv < 0
                || o.reconv > size)
                continue;
            // Positions as if j itself were already deleted.
            auto pos = [&](int p) {
                return posOf(prefix, p) - (p > j ? 1 : 0);
            };
            const AbsState &in = ar.in[static_cast<std::size_t>(j)];
            const bool straight =
                !readsGuard(o) || guardValue(in, o) == Bool3::True
                || pos(o.reconv) == pos(j + 1);
            if (pos(o.imm) == pos(j + 1) && straight) {
                kept[static_cast<std::size_t>(j)] = 0;
                ++stats.removedBranches;
                changed = true;
                any = true;
                break;
            }
        }

        if (!changed)
            break;
    }
    return any;
}

/** Is @p opt's certificate at least as strong as @p base's? */
bool
noWeakerThan(const Certificate &opt, const Certificate &base)
{
    if (opt.warpTripBound > base.warpTripBound)
        return false;
    auto contained = [](const FootprintBounds &a,
                        const FootprintBounds &b) {
        if (!a.accessed)
            return true; // empty footprint is the strongest claim
        return b.accessed && a.lo >= b.lo && a.hi <= b.hi;
    };
    return contained(opt.global, base.global)
           && contained(opt.shared, base.shared)
           && contained(opt.constant, base.constant)
           && contained(opt.texture, base.texture);
}

} // namespace

OptimizeResult
optimizeProgram(const isa::Program &program,
                const OptimizeOptions &options)
{
    OptimizeResult res;
    res.program = program;
    res.sourcePc.resize(program.body.size());
    for (std::size_t j = 0; j < program.body.size(); ++j)
        res.sourcePc[static_cast<std::size_t>(j)] =
            static_cast<int>(j);

    const Verdict orig_verdict = verifyProgram(program, options.verify);
    if (!orig_verdict.admitted) {
        res.note = "original program is not admitted";
        return res;
    }
    res.originalAdmitted = true;
    res.certificate = orig_verdict.certificate;

    const int size = static_cast<int>(program.body.size());
    const AnalysisResult ar = analyzeProgram(program);
    if (static_cast<int>(ar.in.size()) != size) {
        res.note = "analysis did not cover the body";
        return res;
    }

    std::vector<Instruction> work = program.body;
    std::vector<char> kept(static_cast<std::size_t>(size), 1);

    rewritePass(program, ar, work, res.stats);
    deletionPass(program, ar, work, kept, res.stats,
                 options.maxRounds);

    if (res.stats.total() == 0)
        return res; // nothing to do: the original is already optimal

    // Materialize: filter kept slots, remap branches through the
    // kept-prefix map.
    const std::vector<int> prefix = keptPrefix(kept);
    isa::Program opt = program;
    opt.body.clear();
    std::vector<int> source;
    for (int j = 0; j < size; ++j) {
        if (!kept[static_cast<std::size_t>(j)])
            continue;
        Instruction instr = work[static_cast<std::size_t>(j)];
        if (instr.op == Opcode::Bra) {
            instr.imm = posOf(prefix, instr.imm);
            instr.reconv = posOf(prefix, instr.reconv);
        }
        opt.body.push_back(instr);
        source.push_back(j);
    }

    if (options.validate) {
        const EquivVerdict eq = validateTranslation(
            program, opt, source, options.equiv);
        if (!eq.equivalent) {
            res.note = "translation validation failed: " + eq.reason;
            return res;
        }
        const Verdict opt_verdict =
            verifyProgram(opt, options.verify);
        if (!opt_verdict.admitted) {
            res.note =
                "re-admission failed: "
                + (opt_verdict.rejections.empty()
                       ? std::string("no rejection recorded")
                       : opt_verdict.rejections.front().toString());
            return res;
        }
        if (!noWeakerThan(opt_verdict.certificate,
                          orig_verdict.certificate)) {
            res.note = "optimized certificate is weaker than the "
                       "original's";
            return res;
        }
        res.certificate = opt_verdict.certificate;
        res.accepted = true;
    } else {
        res.note = "validation skipped";
    }

    res.program = std::move(opt);
    res.sourcePc = std::move(source);
    res.changed = true;
    return res;
}

} // namespace bvf::analysis
