/**
 * @file
 * The known-bits abstract domain for 32-bit GPU words.
 *
 * An abstract value tracks, per bit position, whether the bit is proven
 * 0, proven 1, or unknown, together with an unsigned value interval
 * [lo, hi]. The two components refine each other: agreeing leading bits
 * of the interval endpoints become known bits, and the known-bit masks
 * clamp the interval (normalize()).
 *
 * This is the domain the static bit-density predictor lowers through the
 * paper's coder transforms: popcount(knownOne) bounds the bit-1 ratio of
 * any word drawn from the abstraction from below, and
 * 32 - popcount(knownZero) bounds it from above, so every on-chip stream
 * whose words are covered by a set of abstractions has a provable
 * density interval regardless of how the stream mixes them.
 */

#ifndef BVF_ANALYSIS_KNOWN_BITS_HH
#define BVF_ANALYSIS_KNOWN_BITS_HH

#include <string>

#include "common/bitops.hh"
#include "isa/opcode.hh"

namespace bvf::analysis
{

/** Three-valued boolean for predicate registers and carry chains. */
enum class Bool3
{
    False,
    True,
    Unknown,
};

/** Join (least upper bound) of two three-valued booleans. */
constexpr Bool3
join(Bool3 a, Bool3 b)
{
    return a == b ? a : Bool3::Unknown;
}

/** Negate, preserving Unknown. */
constexpr Bool3
not3(Bool3 a)
{
    switch (a) {
      case Bool3::False:
        return Bool3::True;
      case Bool3::True:
        return Bool3::False;
      case Bool3::Unknown:
        return Bool3::Unknown;
    }
    return Bool3::Unknown;
}

/**
 * One abstract 32-bit word: per-bit knowledge plus an unsigned interval.
 *
 * Invariant (established by normalized()): knownZero & knownOne == 0,
 * lo <= hi, lo >= knownOne and hi <= ~knownZero. An abstraction whose
 * refinement is contradictory (no concrete word satisfies it) reports
 * empty().
 */
struct KnownBits
{
    Word knownZero = 0;          //!< bits proven 0
    Word knownOne = 0;           //!< bits proven 1
    Word lo = 0;                 //!< unsigned interval lower bound
    Word hi = 0xffffffffu;       //!< unsigned interval upper bound

    /** The completely unknown word. */
    static KnownBits top() { return {}; }

    /** Exact constant. */
    static KnownBits constant(Word v);

    /** Abstraction of the unsigned range [lo, hi]. */
    static KnownBits range(Word lo, Word hi);

    Word knownMask() const { return knownZero | knownOne; }
    bool isConstant() const { return knownMask() == 0xffffffffu; }

    /** No concrete word satisfies the constraints. */
    bool
    empty() const
    {
        return (knownZero & knownOne) != 0 || lo > hi;
    }

    /** Does the concrete word @p v satisfy every constraint? */
    bool
    contains(Word v) const
    {
        return (v & knownZero) == 0 && (v & knownOne) == knownOne
               && v >= lo && v <= hi;
    }

    /** Minimum possible Hamming weight of a contained word. */
    int minOnes() const { return hammingWeight(knownOne); }

    /** Maximum possible Hamming weight of a contained word. */
    int maxOnes() const { return 32 - hammingWeight(knownZero); }

    /**
     * Mutually refine interval and bit masks. Always call after
     * combining components by hand; the transfer functions below return
     * normalized values.
     */
    KnownBits normalized() const;

    bool operator==(const KnownBits &o) const = default;

    /** "[0x0,0xfff] 0b??..01" style rendering for diagnostics. */
    std::string toString() const;
};

/** Join (least upper bound): forgets bits/ranges the sides disagree on. */
KnownBits join(const KnownBits &a, const KnownBits &b);

/**
 * Widening for the interval component: if @p next still grows past
 * @p prev, the interval is sent straight to [0, 2^32) so loops
 * terminate. The bit masks live in a finite lattice and pass through.
 */
KnownBits widen(const KnownBits &prev, const KnownBits &next);

// --- transfer functions (mirror src/gpu/sm.cc exactly) -----------------

/** a + b (32-bit wrapping). */
KnownBits kbAdd(const KnownBits &a, const KnownBits &b);

/** a - b (32-bit wrapping). */
KnownBits kbSub(const KnownBits &a, const KnownBits &b);

KnownBits kbAnd(const KnownBits &a, const KnownBits &b);
KnownBits kbOr(const KnownBits &a, const KnownBits &b);
KnownBits kbXor(const KnownBits &a, const KnownBits &b);
KnownBits kbNot(const KnownBits &a);

/** a << (b & 31). */
KnownBits kbShl(const KnownBits &a, const KnownBits &b);

/** a >> (b & 31), logical. */
KnownBits kbShr(const KnownBits &a, const KnownBits &b);

/** a * b (32-bit wrapping). */
KnownBits kbMul(const KnownBits &a, const KnownBits &b);

/** countl_zero(a). */
KnownBits kbClz(const KnownBits &a);

/** min(a, b) / max(a, b), signed, as Opcode::Min/Max compute them. */
KnownBits kbMinSigned(const KnownBits &a, const KnownBits &b);
KnownBits kbMaxSigned(const KnownBits &a, const KnownBits &b);

/** Signed comparison as Opcode::SetP evaluates it. */
Bool3 kbCompare(isa::CmpOp cmp, const KnownBits &a, const KnownBits &b);

// --- coder transforms --------------------------------------------------

/**
 * Known bits of NvCoder::encode applied to any word of @p a. A body bit
 * of the encoding is known only when both the source bit and the sign
 * bit are known (the encoder XNORs each body bit with the sign).
 */
KnownBits nvEncodeKnownBits(const KnownBits &a);

/** Inclusive bounds on a fraction in [0, 1]. */
struct RatioBound
{
    double lo = 0.0;
    double hi = 1.0;
};

/** Bit-1 ratio bounds of a raw (uncoded) word drawn from @p a. */
RatioBound ratioBounds(const KnownBits &a);

/**
 * Bit-1 ratio bounds of NvCoder::encode(w) for w drawn from @p a.
 * Tighter than ratioBounds(nvEncodeKnownBits(a)): when the sign is
 * unknown the two sign cases are analyzed separately and hulled.
 */
RatioBound nvRatioBounds(const KnownBits &a);

/**
 * Number of bit positions guaranteed to agree between any word drawn
 * from @p a and any word drawn from @p b. XNORing two such words yields
 * at least this many 1 bits -- the VS coder's lower bound.
 */
int agreeKnownCount(const KnownBits &a, const KnownBits &b);

/**
 * Bit-1 ratio bounds of a XNOR b -- the VS coder's non-pivot output:
 * positions known to agree force 1s, positions known to disagree force
 * 0s, the rest float.
 */
RatioBound xnorRatioBounds(const KnownBits &a, const KnownBits &b);

} // namespace bvf::analysis

#endif // BVF_ANALYSIS_KNOWN_BITS_HH
