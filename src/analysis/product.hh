/**
 * @file
 * Parameterized product of abstract value domains.
 *
 * The PR 3 interpreter baked KnownBits into its state type; analysis v2
 * runs a *product* of independent domains in one fixpoint. A member
 * domain only has to provide the lattice vocabulary captured by the
 * ValueDomain concept:
 *
 *   top / constant   the two distinguished elements every transfer can
 *                    fall back to,
 *   join             least upper bound (with ==, gives the fixpoint its
 *                    convergence test),
 *   widen(prev, j)   an upper bound of j that breaks infinite ascending
 *                    chains (identity for finite-height domains).
 *
 * ProductValue applies all of these component-wise. Cross-domain
 * *reduction* (components sharpening each other) is deliberately not
 * part of the generic product -- it depends on the concrete domain mix,
 * so the interpreter applies it at transfer-function boundaries (see
 * reduceValue in interpreter.hh). Lattice laws for the product follow
 * directly from the component laws: join is component-wise, so
 * commutativity/associativity/idempotence lift pointwise, and the
 * product order is the pointwise order.
 */

#ifndef BVF_ANALYSIS_PRODUCT_HH
#define BVF_ANALYSIS_PRODUCT_HH

#include <concepts>
#include <tuple>
#include <utility>

#include "common/bitops.hh"

namespace bvf::analysis
{

/** The interface a domain must offer to join a ProductValue. */
template <typename D>
concept ValueDomain = requires(const D a, const D b) {
    { D::top() } -> std::same_as<D>;
    { D::constant(Word{}) } -> std::same_as<D>;
    { join(a, b) } -> std::same_as<D>;
    { widen(a, b) } -> std::same_as<D>;
    { a == b } -> std::convertible_to<bool>;
};

/** Component-wise product of independent abstract domains. */
template <ValueDomain... Ds>
struct ProductValue
{
    std::tuple<Ds...> parts{};

    static ProductValue
    top()
    {
        return {std::tuple<Ds...>{Ds::top()...}};
    }

    static ProductValue
    constant(Word v)
    {
        return {std::tuple<Ds...>{Ds::constant(v)...}};
    }

    template <typename D> D &part() { return std::get<D>(parts); }
    template <typename D> const D &
    part() const
    {
        return std::get<D>(parts);
    }

    bool operator==(const ProductValue &o) const = default;

    friend ProductValue
    join(const ProductValue &a, const ProductValue &b)
    {
        return {[&]<std::size_t... I>(std::index_sequence<I...>) {
            return std::tuple<Ds...>{
                join(std::get<I>(a.parts), std::get<I>(b.parts))...};
        }(std::index_sequence_for<Ds...>{})};
    }

    friend ProductValue
    widen(const ProductValue &prev, const ProductValue &next)
    {
        return {[&]<std::size_t... I>(std::index_sequence<I...>) {
            return std::tuple<Ds...>{
                widen(std::get<I>(prev.parts), std::get<I>(next.parts))...};
        }(std::index_sequence_for<Ds...>{})};
    }
};

} // namespace bvf::analysis

#endif // BVF_ANALYSIS_PRODUCT_HH
