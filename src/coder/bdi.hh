/**
 * @file
 * Base-Delta-Immediate (BDI) compression model.
 *
 * Section 7.3 of the paper argues BVF composes with register/cache
 * compression schemes like Warped-Compression because the VS coder
 * "mostly does not break the value-similarity pattern" those schemes
 * rely on. This module implements the standard BDI check -- can a block
 * be stored as one base plus small per-element deltas? -- so that claim
 * can be measured rather than asserted (see bench_ext_compression).
 *
 * The model covers the classic configurations: zero block, repeated
 * block, and base(4B) with delta widths 1/2/4 bytes, evaluated against
 * both the block's first element and zero as bases.
 */

#ifndef BVF_CODER_BDI_HH
#define BVF_CODER_BDI_HH

#include <cstdint>
#include <span>
#include <string>

#include "common/bitops.hh"

namespace bvf::coder
{

/** Outcome of a BDI compressibility check on one block. */
struct BdiResult
{
    bool compressible = false;
    int compressedBytes = 0; //!< encoded size incl. metadata byte
    int originalBytes = 0;
    std::string scheme;      //!< e.g. "zeros", "rep", "b4d1"

    double
    ratio() const
    {
        return compressedBytes > 0
                   ? static_cast<double>(originalBytes)
                         / static_cast<double>(compressedBytes)
                   : 1.0;
    }
};

/**
 * Evaluate BDI on a block of 32-bit words (a warp register or a cache
 * line). Picks the smallest applicable encoding.
 */
BdiResult bdiCompress(std::span<const Word> block);

} // namespace bvf::coder

#endif // BVF_CODER_BDI_HH
