/**
 * @file
 * Coder interfaces for BVF optimization.
 *
 * A BVF coder is an invertible transformation f: B -> E over bit strings
 * whose objective is to maximize the Hamming weight of E (Section 3.3 of
 * the paper). All three proposed coders are XNOR-based and self-inverse,
 * but the interfaces below allow non-involutive codes (e.g. the
 * bus-invert baseline) as well.
 *
 * Two granularities exist:
 *  - WordCoder: per-32-bit-word transforms (narrow value, identity);
 *  - BlockCoder: transforms over a block of words with intra-block
 *    structure (value similarity across warp lanes / cache-line
 *    elements).
 * Instruction-stream coders operate on 64-bit encodings and live in
 * isa_coder.hh.
 */

#ifndef BVF_CODER_CODER_HH
#define BVF_CODER_CODER_HH

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bitops.hh"

namespace bvf::coder
{

/** Per-word invertible transform. */
class WordCoder
{
  public:
    virtual ~WordCoder() = default;

    /** Encode one word (baseline -> BVF-space form). */
    virtual Word encode(Word w) const = 0;

    /** Decode one word (BVF-space form -> baseline). */
    virtual Word decode(Word e) const = 0;

    /** Display name. */
    virtual std::string name() const = 0;

    /** Encode a span in place. */
    void
    encodeSpan(std::span<Word> words) const
    {
        for (Word &w : words)
            w = encode(w);
    }

    /** Decode a span in place. */
    void
    decodeSpan(std::span<Word> words) const
    {
        for (Word &w : words)
            w = decode(w);
    }
};

/** Block-structured invertible transform (e.g. across warp lanes). */
class BlockCoder
{
  public:
    virtual ~BlockCoder() = default;

    /** Encode @p block in place. */
    virtual void encode(std::span<Word> block) const = 0;

    /** Decode @p block in place. */
    virtual void decode(std::span<Word> block) const = 0;

    virtual std::string name() const = 0;
};

/** The identity word coder (the baseline "no BVF" configuration). */
class IdentityCoder : public WordCoder
{
  public:
    Word encode(Word w) const override { return w; }
    Word decode(Word e) const override { return e; }
    std::string name() const override { return "identity"; }
};

/**
 * Ordered composition of block/word transforms over a block of words.
 *
 * encode applies stages front-to-back; decode back-to-front. Used to
 * model units covered by several overlapping BVF spaces (e.g. registers
 * under both NV and VS coders).
 */
class CoderChain
{
  public:
    CoderChain() = default;

    /** Append a word-coder stage (applied to every word of the block). */
    void addWord(std::shared_ptr<const WordCoder> coder);

    /** Append a block-coder stage. */
    void addBlock(std::shared_ptr<const BlockCoder> coder);

    /** Append every stage of @p other (stages are shared, not copied). */
    void append(const CoderChain &other);

    /** Encode a block in place through all stages. */
    void encode(std::span<Word> block) const;

    /** Decode a block in place through all stages, reversed. */
    void decode(std::span<Word> block) const;

    /** Stage count. */
    std::size_t size() const { return stages_.size(); }

    bool empty() const { return stages_.empty(); }

    /** "nv+vs(21)" style description. */
    std::string name() const;

  private:
    struct Stage
    {
        std::shared_ptr<const WordCoder> word;
        std::shared_ptr<const BlockCoder> block;
    };

    std::vector<Stage> stages_;
};

} // namespace bvf::coder

#endif // BVF_CODER_CODER_HH
