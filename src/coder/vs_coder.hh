/**
 * @file
 * Coder II: Value Similarity (VS).
 *
 * Data-parallel GPU code exhibits strong inter-lane value similarity: the
 * 32 lanes of a warp usually hold values with small Hamming distance. The
 * VS coder XNORs every non-pivot word in a block with a pivot word, so
 * every bit that agrees with the pivot becomes a 1. The pivot word is
 * stored unchanged and is therefore always available to decode.
 *
 * The paper's profiling shows lane 21 -- not lane 0, which suffers most
 * from branch divergence at warp edges -- minimizes mean Hamming distance
 * to the other lanes, so lane 21 is the default register pivot; for cache
 * lines, element 0 is used since per-line profiling is unavailable.
 */

#ifndef BVF_CODER_VS_CODER_HH
#define BVF_CODER_VS_CODER_HH

#include "coder/coder.hh"

namespace bvf::coder
{

/**
 * Value-similarity block coder with a configurable pivot index.
 *
 * The block layout is positional: index i of the span is lane i (for
 * register blocks) or element i (for cache-line blocks). Blocks shorter
 * than pivot+1 fall back to pivot 0, mirroring the hardware behaviour on
 * partial transactions.
 */
class VsCoder : public BlockCoder
{
  public:
    /** Default pivot lane from the paper's 58-application profiling. */
    static constexpr int defaultRegisterPivot = 21;

    /** Cache lines pivot on their leading element. */
    static constexpr int cacheLinePivot = 0;

    /** @param pivot index of the pivot word within a block */
    explicit VsCoder(int pivot = defaultRegisterPivot);

    void encode(std::span<Word> block) const override;
    void decode(std::span<Word> block) const override;

    std::string name() const override;

    int pivot() const { return pivot_; }

  private:
    int effectivePivot(std::size_t blockSize) const;

    int pivot_;
};

} // namespace bvf::coder

#endif // BVF_CODER_VS_CODER_HH
