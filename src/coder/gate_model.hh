/**
 * @file
 * Analytic gate-count model for the BVF coder hardware.
 *
 * Single source of truth for "how many XNOR gates does a full chip of
 * coders take" -- shared by the power overhead accounting
 * (power/overhead.cc), the overhead benchmark table and the RTL gate
 * statistics (rtl/stats.cc), which cross-checks these constants
 * against counts derived from the emitted netlists.
 *
 * Everything here is a pure function of the machine shape (SM count,
 * L2 bank count, cache line width); no dependency on gpu/ headers so
 * the coder layer stays at the bottom of the stack.
 */

#ifndef BVF_CODER_GATE_MODEL_HH
#define BVF_CODER_GATE_MODEL_HH

#include <cstdint>

namespace bvf::coder::gate_model
{

/** XNORs in one NV coder instance (32-bit word, sign passes through). */
constexpr std::uint64_t kNvXnorPerWordPort = 31;

/** XNORs per non-pivot word of a VS coder instance. */
constexpr std::uint64_t kVsXnorPerNonPivotWord = 32;

/** XNORs in one ISA coder instance (64-bit instruction port). */
constexpr std::uint64_t kIsaXnorPerPort = 64;

/**
 * The paper's fixed inventory for its Table 3 machine. Kept separate
 * from the rebuilt formula below, which lands ~7.7% higher on the same
 * shape; the benchmark prints both.
 */
constexpr std::uint64_t kPaperXnorGateTotal = 133920;

/**
 * Where the coders sit on the machine: port counts by coder type.
 *
 * NV coders sit on every 32-bit word port: one warp-wide register
 * read/write port pair per SM (2 x 32 lanes) plus shared-memory ports
 * (32 lanes), and both sides of each L2-bank line port. VS coders
 * cover each warp register port pair (32-word block, register pivot)
 * and the line ports at L1D/L1T/L1C and both L2-bank sides (line-sized
 * block, pivot 0). ISA coders sit on the IFB issue port per SM and the
 * instruction-side MC port per bank.
 */
struct CoderPortCounts
{
    std::uint64_t nvWordPorts = 0;     //!< 32-bit word lanes with NV
    std::uint64_t vsRegisterPorts = 0; //!< warp-wide register ports
    std::uint64_t vsCachePorts = 0;    //!< cache-line ports
    std::uint64_t isaPorts = 0;        //!< 64-bit instruction ports
};

/** Port counts for a machine shape (lineBytes per cache line). */
constexpr CoderPortCounts
coderPortCounts(int numSms, int l2Banks, std::uint32_t lineBytes)
{
    const auto sms = static_cast<std::uint64_t>(numSms);
    const auto banks = static_cast<std::uint64_t>(l2Banks);
    const std::uint64_t lineWords = lineBytes / 4;

    CoderPortCounts ports;
    ports.nvWordPorts = sms * (2 * 32 + 32) + banks * lineWords * 2;
    ports.vsRegisterPorts = sms * 2;
    ports.vsCachePorts = sms * 3 + banks * 2;
    ports.isaPorts = sms + banks;
    return ports;
}

/** Per-space XNOR totals for a full chip of coders. */
struct XnorInventory
{
    std::uint64_t nvGates = 0;  //!< NV coders, all word ports
    std::uint64_t vsGates = 0;  //!< VS coders, register + cache spaces
    std::uint64_t isaGates = 0; //!< ISA coders, fetch ports

    constexpr std::uint64_t
    total() const
    {
        return nvGates + vsGates + isaGates;
    }
};

/**
 * Rebuild the chip-wide coder inventory for a machine with @p numSms
 * SMs, @p l2Banks L2/MC banks and @p lineBytes cache lines: the port
 * counts above times the per-instance gate constants. Register VS
 * blocks are 32 words (31 non-pivot), cache VS blocks are line-sized.
 */
constexpr XnorInventory
analyticXnorInventory(int numSms, int l2Banks, std::uint32_t lineBytes)
{
    const CoderPortCounts ports =
        coderPortCounts(numSms, l2Banks, lineBytes);
    const std::uint64_t lineWords = lineBytes / 4;

    XnorInventory inv;
    inv.nvGates = ports.nvWordPorts * kNvXnorPerWordPort;
    inv.vsGates = (ports.vsRegisterPorts * 31
                   + ports.vsCachePorts * (lineWords - 1))
                  * kVsXnorPerNonPivotWord;
    inv.isaGates = ports.isaPorts * kIsaXnorPerPort;
    return inv;
}

} // namespace bvf::coder::gate_model

#endif // BVF_CODER_GATE_MODEL_HH
