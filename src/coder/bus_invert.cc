/**
 * @file
 * Bus-invert channel implementation.
 */

#include "coder/bus_invert.hh"

#include "common/logging.hh"

namespace bvf::coder
{

BusInvertChannel::BusInvertChannel(std::size_t lanes)
    : prev_(lanes, 0), prevParity_(lanes, false)
{
    fatal_if(lanes == 0, "bus-invert channel needs at least one lane");
}

std::uint64_t
BusInvertChannel::encode(std::span<Word> words, std::vector<bool> &parity)
{
    panic_if(words.size() != prev_.size(),
             "transfer width %zu != channel lanes %zu", words.size(),
             prev_.size());
    parity.assign(words.size(), false);

    std::uint64_t transfer_toggles = 0;
    for (std::size_t i = 0; i < words.size(); ++i) {
        const int plain = hammingDistance(words[i], prev_[i]);
        const int inverted = hammingDistance(~words[i], prev_[i]);
        bool invert = inverted < plain;
        if (invert)
            words[i] = ~words[i];
        parity[i] = invert;

        std::uint64_t t =
            static_cast<std::uint64_t>(invert ? inverted : plain);
        if (invert != prevParity_[i])
            ++t; // the parity wire itself toggles
        transfer_toggles += t;

        prev_[i] = words[i];
        prevParity_[i] = invert;
    }
    toggles_ += transfer_toggles;
    return transfer_toggles;
}

void
BusInvertChannel::decode(std::span<Word> words,
                         const std::vector<bool> &parity)
{
    panic_if(words.size() != parity.size(),
             "parity width mismatch: %zu vs %zu", words.size(),
             parity.size());
    for (std::size_t i = 0; i < words.size(); ++i) {
        if (parity[i])
            words[i] = ~words[i];
    }
}

} // namespace bvf::coder
