/**
 * @file
 * BVF spaces (Section 3.3 and Table 1 of the paper).
 *
 * A BVF space is a set of on-chip units (SRAM structures, NoC links,
 * buffers) that all store and transmit data in the same coded format, so
 * a single encoder/decoder pair at the space boundary suffices and no
 * per-unit metadata is needed. Two properties must hold:
 *
 *  (I)  every port of a space uses the same coding format;
 *  (II) overlapping spaces do not disturb each other's ability to
 *       reconstruct the original data (their transforms compose
 *       invertibly).
 *
 * This module provides the registry that assigns coder chains to units,
 * enforces property (I) structurally, and can check property (II) by
 * construction (all registered transforms are invertible, so any
 * composition is).
 */

#ifndef BVF_CODER_BVF_SPACE_HH
#define BVF_CODER_BVF_SPACE_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "coder/coder.hh"

namespace bvf::coder
{

/** The on-chip units the paper's Table 1 assigns to BVF spaces. */
enum class UnitId
{
    Reg,   //!< register file
    Sme,   //!< shared (scratchpad) memory
    L1D,   //!< L1 data cache
    L1T,   //!< texture cache
    L1C,   //!< constant cache
    L1I,   //!< L1 instruction cache
    Ifb,   //!< instruction fetch buffer
    Noc,   //!< interconnect between SMs and L2
    L2,    //!< unified L2 cache
};

/** Display name, e.g. "REG". */
std::string unitName(UnitId unit);

/** All units, in display order. */
const std::vector<UnitId> &allUnits();

/** Is the unit on the instruction stream (vs the data stream)? */
bool isInstructionUnit(UnitId unit);

/**
 * One BVF space: a named set of units sharing a coder chain.
 */
class BvfSpace
{
  public:
    BvfSpace(std::string name, std::set<UnitId> units, CoderChain chain);

    const std::string &name() const { return name_; }
    const std::set<UnitId> &units() const { return units_; }
    const CoderChain &chain() const { return chain_; }

    bool covers(UnitId unit) const { return units_.count(unit) > 0; }

  private:
    std::string name_;
    std::set<UnitId> units_;
    CoderChain chain_;
};

/**
 * Registry of all spaces active on a chip. Resolves, per unit, the
 * composed coder chain formed by every space covering that unit
 * (property II guarantees composition order only needs to be consistent,
 * which the registry fixes as registration order).
 */
class SpaceRegistry
{
  public:
    /** Register a space; returns its index. */
    std::size_t add(BvfSpace space);

    /** Composed chain for @p unit over all covering spaces. */
    CoderChain chainFor(UnitId unit) const;

    /** Names of the spaces covering @p unit, in composition order. */
    std::vector<std::string> spacesCovering(UnitId unit) const;

    std::size_t size() const { return spaces_.size(); }
    const BvfSpace &space(std::size_t i) const { return spaces_.at(i); }

  private:
    std::vector<BvfSpace> spaces_;
};

/** Table 1 space sets for each of the paper's coders. */
std::set<UnitId> nvSpaceUnits();
std::set<UnitId> vsRegisterSpaceUnits();
std::set<UnitId> vsCacheSpaceUnits();
std::set<UnitId> isaSpaceUnits();

} // namespace bvf::coder

#endif // BVF_CODER_BVF_SPACE_HH
