/**
 * @file
 * BVF space registry implementation.
 */

#include "coder/bvf_space.hh"

#include "common/logging.hh"

namespace bvf::coder
{

std::string
unitName(UnitId unit)
{
    switch (unit) {
      case UnitId::Reg:
        return "REG";
      case UnitId::Sme:
        return "SME";
      case UnitId::L1D:
        return "L1D";
      case UnitId::L1T:
        return "L1T";
      case UnitId::L1C:
        return "L1C";
      case UnitId::L1I:
        return "L1I";
      case UnitId::Ifb:
        return "IFB";
      case UnitId::Noc:
        return "NoC";
      case UnitId::L2:
        return "L2";
    }
    panic("unknown unit");
}

const std::vector<UnitId> &
allUnits()
{
    static const std::vector<UnitId> units = {
        UnitId::Reg, UnitId::Sme, UnitId::L1D, UnitId::L1T, UnitId::L1C,
        UnitId::L1I, UnitId::Ifb, UnitId::Noc, UnitId::L2,
    };
    return units;
}

bool
isInstructionUnit(UnitId unit)
{
    return unit == UnitId::L1I || unit == UnitId::Ifb;
}

BvfSpace::BvfSpace(std::string name, std::set<UnitId> units,
                   CoderChain chain)
    : name_(std::move(name)), units_(std::move(units)),
      chain_(std::move(chain))
{
    fatal_if(units_.empty(), "BVF space '%s' covers no units",
             name_.c_str());
}

std::size_t
SpaceRegistry::add(BvfSpace space)
{
    spaces_.push_back(std::move(space));
    return spaces_.size() - 1;
}

CoderChain
SpaceRegistry::chainFor(UnitId unit) const
{
    // Property (I): a unit inside a space always sees that space's full
    // chain; property (II): composition across overlapping spaces keeps
    // every space independently decodable because all stages are
    // invertible and ordered consistently (registration order).
    CoderChain out;
    for (const BvfSpace &s : spaces_) {
        if (s.covers(unit))
            out.append(s.chain());
    }
    return out;
}

std::vector<std::string>
SpaceRegistry::spacesCovering(UnitId unit) const
{
    std::vector<std::string> names;
    for (const BvfSpace &s : spaces_) {
        if (s.covers(unit))
            names.push_back(s.name());
    }
    return names;
}

std::set<UnitId>
nvSpaceUnits()
{
    return {UnitId::Reg, UnitId::Sme, UnitId::L1D, UnitId::L1T,
            UnitId::L1C, UnitId::Noc, UnitId::L2};
}

std::set<UnitId>
vsRegisterSpaceUnits()
{
    return {UnitId::Reg};
}

std::set<UnitId>
vsCacheSpaceUnits()
{
    return {UnitId::L1D, UnitId::L1T, UnitId::L1C, UnitId::Noc, UnitId::L2};
}

std::set<UnitId>
isaSpaceUnits()
{
    return {UnitId::Ifb, UnitId::L1I, UnitId::Noc, UnitId::L2};
}

} // namespace bvf::coder
