/**
 * @file
 * ISA coder implementation.
 */

#include "coder/isa_coder.hh"

#include "common/logging.hh"

namespace bvf::coder
{

std::string
IsaCoder::name() const
{
    return strFormat("isa(0x%016llx)",
                     static_cast<unsigned long long>(mask_));
}

} // namespace bvf::coder
