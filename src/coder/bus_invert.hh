/**
 * @file
 * Bus-invert coding baseline (Stan & Burleson style).
 *
 * The classic low-power bus code: before each transfer, if more than half
 * of the wires would toggle relative to the previous transfer, invert the
 * word and raise a parity wire. It minimizes Hamming *distance* between
 * consecutive transfers but is indifferent to the 0/1 balance within a
 * word -- the opposite optimization target from BVF -- and it needs an
 * extra parity line per word. It is implemented here as a comparison
 * baseline for the NoC experiments.
 */

#ifndef BVF_CODER_BUS_INVERT_HH
#define BVF_CODER_BUS_INVERT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitops.hh"

namespace bvf::coder
{

/**
 * Stateful per-channel bus-invert encoder.
 *
 * Each lane of the channel (a 32-bit wire group) keeps its previous
 * transmitted value; encode() decides per lane whether to invert.
 */
class BusInvertChannel
{
  public:
    /** @param lanes number of 32-bit wire groups on the channel */
    explicit BusInvertChannel(std::size_t lanes);

    /**
     * Encode one transfer in place.
     *
     * @param words exactly `lanes()` words to put on the wires
     * @param parity out-param: per-lane inversion flags
     * @return number of wire toggles this transfer causes (including the
     *         parity wires)
     */
    std::uint64_t encode(std::span<Word> words, std::vector<bool> &parity);

    /** Decode a transfer given its parity flags. */
    static void decode(std::span<Word> words,
                       const std::vector<bool> &parity);

    std::size_t lanes() const { return prev_.size(); }

    /** Cumulative wire toggles since construction. */
    std::uint64_t totalToggles() const { return toggles_; }

  private:
    std::vector<Word> prev_;
    std::vector<bool> prevParity_;
    std::uint64_t toggles_ = 0;
};

} // namespace bvf::coder

#endif // BVF_CODER_BUS_INVERT_HH
