/**
 * @file
 * Coder I: Narrow Value (NV).
 *
 * Narrow values -- small magnitudes stored in wide types -- leave long
 * runs of leading 0s (or leading 1s for negative two's-complement
 * values). The NV coder XNORs every bit of a word with the word's sign
 * bit: positive words are flipped wholesale (leading 0s become 1s),
 * negative words pass through unchanged (their leading bits are already
 * 1s). Because XNOR with a bit of the word itself is its own inverse,
 * the decoder is the same circuit.
 *
 *   E = f(B) = [b0, b1 xnor b0, ..., bn xnor b0]
 *
 * Note bit 0 here is the MSB (sign); the sign bit itself is preserved so
 * decoding can recover the original word.
 */

#ifndef BVF_CODER_NV_CODER_HH
#define BVF_CODER_NV_CODER_HH

#include "coder/coder.hh"

namespace bvf::coder
{

/** The narrow-value XNOR coder (self-inverse). */
class NvCoder : public WordCoder
{
  public:
    Word
    encode(Word w) const override
    {
        // XNOR all bits below the sign with the sign bit; keep the sign.
        const Word sign = broadcastSign(w);
        const Word body = ~(w ^ sign) & 0x7fffffffu;
        return (w & 0x80000000u) | body;
    }

    Word
    decode(Word e) const override
    {
        // Self-inverse: the sign bit is untouched by encode.
        return encode(e);
    }

    std::string name() const override { return "nv"; }
};

} // namespace bvf::coder

#endif // BVF_CODER_NV_CODER_HH
