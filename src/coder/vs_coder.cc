/**
 * @file
 * VS coder implementation.
 */

#include "coder/vs_coder.hh"

#include "common/logging.hh"

namespace bvf::coder
{

VsCoder::VsCoder(int pivot) : pivot_(pivot)
{
    fatal_if(pivot < 0, "pivot index must be non-negative");
}

int
VsCoder::effectivePivot(std::size_t blockSize) const
{
    return static_cast<std::size_t>(pivot_) < blockSize ? pivot_ : 0;
}

void
VsCoder::encode(std::span<Word> block) const
{
    if (block.empty())
        return;
    const int p = effectivePivot(block.size());
    const Word pivot_value = block[static_cast<std::size_t>(p)];
    for (std::size_t i = 0; i < block.size(); ++i) {
        if (static_cast<int>(i) != p)
            block[i] = xnorWord(block[i], pivot_value);
    }
}

void
VsCoder::decode(std::span<Word> block) const
{
    // XNOR with the (unmodified) pivot is self-inverse.
    encode(block);
}

std::string
VsCoder::name() const
{
    return strFormat("vs(%d)", pivot_);
}

} // namespace bvf::coder
