/**
 * @file
 * CoderChain implementation.
 */

#include "coder/coder.hh"

#include "common/logging.hh"

namespace bvf::coder
{

void
CoderChain::addWord(std::shared_ptr<const WordCoder> coder)
{
    panic_if(!coder, "null word coder");
    stages_.push_back(Stage{std::move(coder), nullptr});
}

void
CoderChain::addBlock(std::shared_ptr<const BlockCoder> coder)
{
    panic_if(!coder, "null block coder");
    stages_.push_back(Stage{nullptr, std::move(coder)});
}

void
CoderChain::append(const CoderChain &other)
{
    for (const Stage &s : other.stages_)
        stages_.push_back(s);
}

void
CoderChain::encode(std::span<Word> block) const
{
    for (const Stage &s : stages_) {
        if (s.word)
            s.word->encodeSpan(block);
        else
            s.block->encode(block);
    }
}

void
CoderChain::decode(std::span<Word> block) const
{
    for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
        if (it->word)
            it->word->decodeSpan(block);
        else
            it->block->decode(block);
    }
}

std::string
CoderChain::name() const
{
    if (stages_.empty())
        return "baseline";
    std::string out;
    for (const Stage &s : stages_) {
        if (!out.empty())
            out += "+";
        out += s.word ? s.word->name() : s.block->name();
    }
    return out;
}

} // namespace bvf::coder
