/**
 * @file
 * BDI compressibility checks.
 */

#include "coder/bdi.hh"

#include <algorithm>
#include <cstdlib>

namespace bvf::coder
{

namespace
{

/** Does every word fit in `deltaBytes` signed bytes around `base`? */
bool
fitsDeltas(std::span<const Word> block, Word base, int deltaBytes)
{
    const std::int64_t limit = std::int64_t(1) << (deltaBytes * 8 - 1);
    for (const Word w : block) {
        const std::int64_t delta =
            static_cast<std::int64_t>(static_cast<std::int32_t>(w))
            - static_cast<std::int64_t>(static_cast<std::int32_t>(base));
        if (delta < -limit || delta >= limit)
            return false;
    }
    return true;
}

} // namespace

BdiResult
bdiCompress(std::span<const Word> block)
{
    BdiResult res;
    res.originalBytes = static_cast<int>(block.size() * 4);
    if (block.empty())
        return res;

    // Zero block.
    if (std::all_of(block.begin(), block.end(),
                    [](Word w) { return w == 0; })) {
        res.compressible = true;
        res.compressedBytes = 1;
        res.scheme = "zeros";
        return res;
    }
    // Repeated block.
    if (std::all_of(block.begin(), block.end(),
                    [&block](Word w) { return w == block[0]; })) {
        res.compressible = true;
        res.compressedBytes = 1 + 4;
        res.scheme = "rep";
        return res;
    }
    // Base + delta. Candidate bases: the first two elements and zero
    // (trying element 1 lets a block whose leading element is an
    // outlier -- e.g. a VS pivot among coded lanes -- still compress,
    // with the outlier spilled via a wide delta check).
    const Word candidates[] = {block[0],
                               block.size() > 1 ? block[1] : block[0],
                               Word(0)};
    for (const int delta_bytes : {1, 2, 4}) {
        for (const Word base : candidates) {
            if (delta_bytes == 4 && base == 0)
                continue; // degenerate: no compression
            if (fitsDeltas(block, base, delta_bytes)) {
                res.compressible = true;
                res.compressedBytes =
                    1 + 4
                    + static_cast<int>(block.size()) * delta_bytes;
                res.scheme =
                    (base == 0 ? "z" : "b") + std::string("4d")
                    + std::to_string(delta_bytes);
                if (res.compressedBytes < res.originalBytes)
                    return res;
                res.compressible = false;
                res.compressedBytes = 0;
                res.scheme.clear();
            }
        }
    }
    res.compressedBytes = res.originalBytes;
    return res;
}

} // namespace bvf::coder
