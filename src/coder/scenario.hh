/**
 * @file
 * Evaluation scenarios.
 *
 * Every simulation is accounted simultaneously under five coding
 * scenarios so a single run produces the baseline, the three per-coder
 * results (Figures 16/17) and the combined design (Figures 18/19). The
 * coders are architecturally transparent -- they never change what the
 * program computes -- so multi-scenario accounting of one run is exact.
 */

#ifndef BVF_CODER_SCENARIO_HH
#define BVF_CODER_SCENARIO_HH

#include <array>
#include <string>

namespace bvf::coder
{

/** Coding configurations evaluated side by side. */
enum class Scenario
{
    Baseline, //!< no coders
    NvOnly,   //!< narrow-value coder alone
    VsOnly,   //!< value-similarity coders alone
    IsaOnly,  //!< ISA-preference coder alone
    AllCoders, //!< the full BVF design
};

/** Number of scenarios. */
constexpr int numScenarios = 5;

/** All scenarios in reporting order. */
constexpr std::array<Scenario, numScenarios> allScenarios = {
    Scenario::Baseline, Scenario::NvOnly, Scenario::VsOnly,
    Scenario::IsaOnly, Scenario::AllCoders,
};

/** Display name, e.g. "NV". */
inline std::string
scenarioName(Scenario s)
{
    switch (s) {
      case Scenario::Baseline:
        return "Baseline";
      case Scenario::NvOnly:
        return "NV";
      case Scenario::VsOnly:
        return "VS";
      case Scenario::IsaOnly:
        return "ISA";
      case Scenario::AllCoders:
        return "BVF";
    }
    return "?";
}

/** Dense index for array storage. */
constexpr int
scenarioIndex(Scenario s)
{
    return static_cast<int>(s);
}

} // namespace bvf::coder

#endif // BVF_CODER_SCENARIO_HH
