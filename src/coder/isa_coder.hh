/**
 * @file
 * Coder III: ISA Preference.
 *
 * Instruction streams are dictated by the ISA encoding, so the 0/1
 * preference of each bit position can be computed statically over an
 * instruction corpus. The ISA coder XNORs every 64-bit instruction with a
 * per-architecture mask whose bits are 1 wherever the position
 * statistically prefers 1 and 0 elsewhere; after encoding, the majority
 * value at every position is 1. The mask coder is self-inverse.
 */

#ifndef BVF_CODER_ISA_CODER_HH
#define BVF_CODER_ISA_CODER_HH

#include <span>
#include <string>

#include "common/bitops.hh"

namespace bvf::coder
{

/** Invertible 64-bit mask coder for the instruction stream. */
class IsaCoder
{
  public:
    /** @param mask preference mask (bit set => position prefers 0) */
    explicit IsaCoder(Word64 mask) : mask_(mask) {}

    /**
     * Encode one instruction: XNOR with the mask complement so that
     * positions preferring 0 are flipped to 1.
     *
     * The paper writes E = B xnor M with M the "prefers-1" mask: a
     * position whose mask bit is 1 keeps its value when it is 1 and a
     * position whose mask bit is 0 is inverted, which is B xor ~M; XNOR
     * with M is identical: b xnor m == b xor ~m.
     */
    Word64
    encode(Word64 instr) const
    {
        return ~(instr ^ mask_);
    }

    /** Self-inverse decode. */
    Word64
    decode(Word64 coded) const
    {
        return encode(coded);
    }

    /** Encode a span in place. */
    void
    encodeSpan(std::span<Word64> instrs) const
    {
        for (Word64 &w : instrs)
            w = encode(w);
    }

    Word64 mask() const { return mask_; }

    std::string name() const;

  private:
    Word64 mask_;
};

} // namespace bvf::coder

#endif // BVF_CODER_ISA_CODER_HH
