/**
 * @file
 * Trace serialization implementation.
 */

#include "core/trace.hh"

#include <cstring>
#include <istream>
#include <ostream>

#include "common/crc32.hh"
#include "common/logging.hh"

namespace bvf::core
{

namespace
{

constexpr char magic[4] = {'B', 'V', 'F', 'T'};
constexpr char batchMagic[4] = {'B', 'T', 'C', 'H'};
constexpr char footerMagic[4] = {'B', 'V', 'F', 'E'};
constexpr std::uint32_t version = 2;
constexpr std::uint32_t legacyVersion = 1;

/** Flush threshold: one CRC per ~64KiB of records. */
constexpr std::size_t batchFlushBytes = 64 * 1024;

/** Upper bound on a batch payload a reader will allocate. */
constexpr std::uint32_t maxBatchBytes = 1u << 30;

enum class RecordKind : std::uint8_t
{
    Access = 1,
    Fetch = 2,
    Noc = 3,
};

template <typename T>
void
writeRaw(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readRaw(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    return value;
}

struct RecordHeader
{
    std::uint8_t kind;
    std::uint8_t a; //!< unit, or channel low byte
    std::uint8_t b; //!< access type, or channel high byte
    std::uint8_t flags;
    std::uint32_t activeMask;
    std::uint64_t cycle;
    std::uint32_t count;
};

/** Bounds-checked cursor over an in-memory batch payload. */
class ByteReader
{
  public:
    ByteReader(const char *data, std::size_t size)
        : data_(data), size_(size)
    {}

    bool
    read(void *dst, std::size_t n)
    {
        if (off_ + n > size_)
            return false;
        std::memcpy(dst, data_ + off_, n);
        off_ += n;
        return true;
    }

    bool done() const { return off_ == size_; }
    std::size_t offset() const { return off_; }

  private:
    const char *data_;
    std::size_t size_;
    std::size_t off_ = 0;
};

/**
 * Decode one record from @p reader and deliver it to @p sink.
 * Returns an error description on malformed input, empty on success.
 */
std::string
dispatchRecord(ByteReader &reader, sram::AccessSink &sink,
               std::vector<Word> &words, std::vector<Word64> &instrs)
{
    RecordHeader h{};
    if (!reader.read(&h, sizeof(h)))
        return "truncated record header";
    switch (static_cast<RecordKind>(h.kind)) {
      case RecordKind::Access:
        words.resize(h.count);
        if (!reader.read(words.data(), h.count * sizeof(Word)))
            return "truncated access record";
        sink.onAccess(static_cast<coder::UnitId>(h.a),
                      static_cast<sram::AccessType>(h.b), words,
                      h.activeMask, h.cycle);
        return {};
      case RecordKind::Fetch:
        instrs.resize(h.count);
        if (!reader.read(instrs.data(), h.count * sizeof(Word64)))
            return "truncated fetch record";
        sink.onFetch(static_cast<coder::UnitId>(h.a),
                     static_cast<sram::AccessType>(h.b), instrs,
                     h.cycle);
        return {};
      case RecordKind::Noc: {
        words.resize(h.count);
        if (!reader.read(words.data(), h.count * sizeof(Word)))
            return "truncated NoC record";
        const int channel =
            static_cast<int>(h.a) | (static_cast<int>(h.b) << 8);
        sink.onNocPacket(channel, words, h.flags != 0, h.cycle);
        return {};
      }
      default:
        return strFormat("corrupt record kind %u", h.kind);
    }
}

/**
 * Close out a replay that hit damage: salvage keeps the prefix,
 * otherwise the damage becomes the caller's error.
 */
Result<ReplaySummary>
failOrSalvage(ReplaySummary summary, const ReplayOptions &opts,
              ErrorCode code, std::string what)
{
    if (!opts.salvage)
        return Error{code, std::move(what)};
    summary.salvaged = true;
    summary.warning = std::move(what);
    return summary;
}

/** Version-1 stream: raw records, no batching, no checksums. */
Result<ReplaySummary>
replayLegacy(std::istream &in, sram::AccessSink &sink,
             const ReplayOptions &opts)
{
    ReplaySummary summary;
    std::vector<Word> words;
    std::vector<Word64> instrs;
    for (;;) {
        const auto h = readRaw<RecordHeader>(in);
        if (!in && in.eof())
            return summary; // clean EOF at a record boundary
        if (!in) {
            return failOrSalvage(summary, opts, ErrorCode::Io,
                                 "stream failure mid-record");
        }
        // Re-dispatch through the bounds-checked path by staging the
        // payload; header fields drive the payload length.
        const std::size_t payload_bytes =
            static_cast<RecordKind>(h.kind) == RecordKind::Fetch
                ? h.count * sizeof(Word64)
                : h.count * sizeof(Word);
        std::vector<char> staged(sizeof(h) + payload_bytes);
        std::memcpy(staged.data(), &h, sizeof(h));
        in.read(staged.data() + sizeof(h),
                static_cast<std::streamsize>(payload_bytes));
        if (!in) {
            return failOrSalvage(
                summary, opts, ErrorCode::Truncated,
                strFormat("record %llu truncated",
                          static_cast<unsigned long long>(
                              summary.records)));
        }
        ByteReader reader(staged.data(), staged.size());
        const std::string err =
            dispatchRecord(reader, sink, words, instrs);
        if (!err.empty()) {
            return failOrSalvage(
                summary, opts, ErrorCode::Corrupt,
                strFormat("record %llu: %s",
                          static_cast<unsigned long long>(
                              summary.records),
                          err.c_str()));
        }
        ++summary.records;
    }
}

} // namespace

TraceWriter::TraceWriter(std::ostream &out) : out_(out)
{
    out_.write(magic, sizeof(magic));
    writeRaw(out_, version);
    if (!out_)
        ioError_ = true;
    batch_.reserve(batchFlushBytes + 4096);
}

TraceWriter::~TraceWriter()
{
    if (finished_)
        return;
    const auto result = finish();
    if (!result.ok())
        warn("trace writer: %s", result.error().describe().c_str());
}

void
TraceWriter::appendRecord(const void *header, std::size_t headerBytes,
                          const void *payload, std::size_t payloadBytes)
{
    const auto *hp = static_cast<const char *>(header);
    batch_.insert(batch_.end(), hp, hp + headerBytes);
    if (payloadBytes > 0) {
        const auto *pp = static_cast<const char *>(payload);
        batch_.insert(batch_.end(), pp, pp + payloadBytes);
    }
    ++batchRecords_;
    ++records_;
    if (batch_.size() >= batchFlushBytes)
        flushBatch();
}

void
TraceWriter::flushBatch()
{
    if (batch_.empty())
        return;
    out_.write(batchMagic, sizeof(batchMagic));
    writeRaw(out_, static_cast<std::uint32_t>(batch_.size()));
    writeRaw(out_, batchRecords_);
    writeRaw(out_, crc32(batch_.data(), batch_.size()));
    out_.write(batch_.data(),
               static_cast<std::streamsize>(batch_.size()));
    if (!out_)
        ioError_ = true;
    batch_.clear();
    batchRecords_ = 0;
}

Result<std::uint64_t>
TraceWriter::finish()
{
    if (!finished_) {
        flushBatch();
        out_.write(footerMagic, sizeof(footerMagic));
        writeRaw(out_, records_);
        writeRaw(out_, crc32(&records_, sizeof(records_)));
        out_.flush();
        if (!out_)
            ioError_ = true;
        finished_ = true;
    }
    if (ioError_) {
        return Error{ErrorCode::Io,
                     "trace stream write failed; output is incomplete"};
    }
    return records_;
}

void
TraceWriter::onAccess(coder::UnitId unit, sram::AccessType type,
                      std::span<const Word> block,
                      std::uint32_t activeMask, std::uint64_t cycle)
{
    RecordHeader h{};
    h.kind = static_cast<std::uint8_t>(RecordKind::Access);
    h.a = static_cast<std::uint8_t>(unit);
    h.b = static_cast<std::uint8_t>(type);
    h.activeMask = activeMask;
    h.cycle = cycle;
    h.count = static_cast<std::uint32_t>(block.size());
    appendRecord(&h, sizeof(h), block.data(), block.size_bytes());
}

void
TraceWriter::onFetch(coder::UnitId unit, sram::AccessType type,
                     std::span<const Word64> instrs, std::uint64_t cycle)
{
    RecordHeader h{};
    h.kind = static_cast<std::uint8_t>(RecordKind::Fetch);
    h.a = static_cast<std::uint8_t>(unit);
    h.b = static_cast<std::uint8_t>(type);
    h.cycle = cycle;
    h.count = static_cast<std::uint32_t>(instrs.size());
    appendRecord(&h, sizeof(h), instrs.data(), instrs.size_bytes());
}

void
TraceWriter::onNocPacket(int channel, std::span<const Word> payload,
                         bool instrStream, std::uint64_t cycle)
{
    RecordHeader h{};
    h.kind = static_cast<std::uint8_t>(RecordKind::Noc);
    h.a = static_cast<std::uint8_t>(channel & 0xff);
    h.b = static_cast<std::uint8_t>((channel >> 8) & 0xff);
    h.flags = instrStream ? 1 : 0;
    h.cycle = cycle;
    h.count = static_cast<std::uint32_t>(payload.size());
    appendRecord(&h, sizeof(h), payload.data(), payload.size_bytes());
}

Result<ReplaySummary>
replayTrace(std::istream &in, sram::AccessSink &sink,
            const ReplayOptions &opts)
{
    char m[4];
    in.read(m, sizeof(m));
    if (!in || std::memcmp(m, magic, sizeof(magic)) != 0)
        return Error{ErrorCode::Corrupt, "not a BVF trace stream"};
    const auto v = readRaw<std::uint32_t>(in);
    if (!in)
        return Error{ErrorCode::Truncated, "trace ends inside header"};
    if (v == legacyVersion)
        return replayLegacy(in, sink, opts);
    if (v != version) {
        return Error{ErrorCode::Unsupported,
                     strFormat("unsupported trace version %u", v)};
    }

    ReplaySummary summary;
    std::vector<char> payload;
    std::vector<Word> words;
    std::vector<Word64> instrs;
    for (;;) {
        char section[4];
        in.read(section, sizeof(section));
        if (!in && in.eof() && in.gcount() == 0) {
            // v2 streams must end with a footer: a clean EOF here means
            // trailing batches (or the whole tail) were lost.
            return failOrSalvage(summary, opts, ErrorCode::Truncated,
                                 "trace ends without footer");
        }
        if (!in) {
            return failOrSalvage(summary, opts, ErrorCode::Truncated,
                                 "trace ends inside a section marker");
        }

        if (std::memcmp(section, footerMagic, sizeof(footerMagic)) == 0) {
            const auto total = readRaw<std::uint64_t>(in);
            const auto crc = readRaw<std::uint32_t>(in);
            if (!in) {
                return failOrSalvage(summary, opts, ErrorCode::Truncated,
                                     "trace ends inside footer");
            }
            if (crc32(&total, sizeof(total)) != crc) {
                return failOrSalvage(summary, opts, ErrorCode::Corrupt,
                                     "footer checksum mismatch");
            }
            if (total != summary.records) {
                return failOrSalvage(
                    summary, opts, ErrorCode::Truncated,
                    strFormat("footer records %llu but replayed %llu: "
                              "batches are missing",
                              static_cast<unsigned long long>(total),
                              static_cast<unsigned long long>(
                                  summary.records)));
            }
            summary.sawFooter = true;
            return summary;
        }

        if (std::memcmp(section, batchMagic, sizeof(batchMagic)) != 0) {
            return failOrSalvage(
                summary, opts, ErrorCode::Corrupt,
                strFormat("corrupt section marker after batch %llu",
                          static_cast<unsigned long long>(
                              summary.batches)));
        }

        const auto bytes = readRaw<std::uint32_t>(in);
        const auto record_count = readRaw<std::uint32_t>(in);
        const auto crc = readRaw<std::uint32_t>(in);
        if (!in) {
            return failOrSalvage(summary, opts, ErrorCode::Truncated,
                                 "trace ends inside a batch header");
        }
        if (bytes == 0 || bytes > maxBatchBytes) {
            return failOrSalvage(
                summary, opts, ErrorCode::Corrupt,
                strFormat("implausible batch size %u", bytes));
        }
        payload.resize(bytes);
        in.read(payload.data(), static_cast<std::streamsize>(bytes));
        if (!in) {
            return failOrSalvage(
                summary, opts, ErrorCode::Truncated,
                strFormat("batch %llu truncated",
                          static_cast<unsigned long long>(
                              summary.batches)));
        }
        if (crc32(payload.data(), payload.size()) != crc) {
            return failOrSalvage(
                summary, opts, ErrorCode::Corrupt,
                strFormat("batch %llu checksum mismatch",
                          static_cast<unsigned long long>(
                              summary.batches)));
        }

        // The batch is intact; only now may records reach the sink.
        ByteReader reader(payload.data(), payload.size());
        std::uint32_t replayed = 0;
        while (!reader.done()) {
            const std::string err =
                dispatchRecord(reader, sink, words, instrs);
            if (!err.empty()) {
                return failOrSalvage(
                    summary, opts, ErrorCode::Corrupt,
                    strFormat("batch %llu record %u: %s",
                              static_cast<unsigned long long>(
                                  summary.batches),
                              replayed, err.c_str()));
            }
            ++replayed;
            ++summary.records;
        }
        if (replayed != record_count) {
            return failOrSalvage(
                summary, opts, ErrorCode::Corrupt,
                strFormat("batch %llu holds %u records, header claims "
                          "%u",
                          static_cast<unsigned long long>(
                              summary.batches),
                          replayed, record_count));
        }
        ++summary.batches;
    }
}

} // namespace bvf::core
