/**
 * @file
 * Trace serialization implementation.
 */

#include "core/trace.hh"

#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace bvf::core
{

namespace
{

constexpr char magic[4] = {'B', 'V', 'F', 'T'};
constexpr std::uint32_t version = 1;

enum class RecordKind : std::uint8_t
{
    Access = 1,
    Fetch = 2,
    Noc = 3,
};

template <typename T>
void
writeRaw(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readRaw(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    return value;
}

struct RecordHeader
{
    std::uint8_t kind;
    std::uint8_t a; //!< unit, or channel low byte
    std::uint8_t b; //!< access type, or channel high byte
    std::uint8_t flags;
    std::uint32_t activeMask;
    std::uint64_t cycle;
    std::uint32_t count;
};

} // namespace

TraceWriter::TraceWriter(std::ostream &out) : out_(out)
{
    out_.write(magic, sizeof(magic));
    writeRaw(out_, version);
}

void
TraceWriter::onAccess(coder::UnitId unit, sram::AccessType type,
                      std::span<const Word> block,
                      std::uint32_t activeMask, std::uint64_t cycle)
{
    RecordHeader h{};
    h.kind = static_cast<std::uint8_t>(RecordKind::Access);
    h.a = static_cast<std::uint8_t>(unit);
    h.b = static_cast<std::uint8_t>(type);
    h.activeMask = activeMask;
    h.cycle = cycle;
    h.count = static_cast<std::uint32_t>(block.size());
    writeRaw(out_, h);
    out_.write(reinterpret_cast<const char *>(block.data()),
               static_cast<std::streamsize>(block.size_bytes()));
    ++records_;
}

void
TraceWriter::onFetch(coder::UnitId unit, sram::AccessType type,
                     std::span<const Word64> instrs, std::uint64_t cycle)
{
    RecordHeader h{};
    h.kind = static_cast<std::uint8_t>(RecordKind::Fetch);
    h.a = static_cast<std::uint8_t>(unit);
    h.b = static_cast<std::uint8_t>(type);
    h.cycle = cycle;
    h.count = static_cast<std::uint32_t>(instrs.size());
    writeRaw(out_, h);
    out_.write(reinterpret_cast<const char *>(instrs.data()),
               static_cast<std::streamsize>(instrs.size_bytes()));
    ++records_;
}

void
TraceWriter::onNocPacket(int channel, std::span<const Word> payload,
                         bool instrStream, std::uint64_t cycle)
{
    RecordHeader h{};
    h.kind = static_cast<std::uint8_t>(RecordKind::Noc);
    h.a = static_cast<std::uint8_t>(channel & 0xff);
    h.b = static_cast<std::uint8_t>((channel >> 8) & 0xff);
    h.flags = instrStream ? 1 : 0;
    h.cycle = cycle;
    h.count = static_cast<std::uint32_t>(payload.size());
    writeRaw(out_, h);
    out_.write(reinterpret_cast<const char *>(payload.data()),
               static_cast<std::streamsize>(payload.size_bytes()));
    ++records_;
}

std::uint64_t
replayTrace(std::istream &in, sram::AccessSink &sink)
{
    char m[4];
    in.read(m, sizeof(m));
    fatal_if(!in || m[0] != 'B' || m[1] != 'V' || m[2] != 'F'
                 || m[3] != 'T',
             "not a BVF trace stream");
    const auto v = readRaw<std::uint32_t>(in);
    fatal_if(v != version, "unsupported trace version %u", v);

    std::uint64_t replayed = 0;
    std::vector<Word> words;
    std::vector<Word64> instrs;
    for (;;) {
        const auto h = readRaw<RecordHeader>(in);
        if (!in)
            break; // clean EOF at a record boundary
        switch (static_cast<RecordKind>(h.kind)) {
          case RecordKind::Access: {
            words.resize(h.count);
            in.read(reinterpret_cast<char *>(words.data()),
                    static_cast<std::streamsize>(h.count * sizeof(Word)));
            fatal_if(!in, "truncated access record");
            sink.onAccess(static_cast<coder::UnitId>(h.a),
                          static_cast<sram::AccessType>(h.b), words,
                          h.activeMask, h.cycle);
            break;
          }
          case RecordKind::Fetch: {
            instrs.resize(h.count);
            in.read(reinterpret_cast<char *>(instrs.data()),
                    static_cast<std::streamsize>(h.count
                                                 * sizeof(Word64)));
            fatal_if(!in, "truncated fetch record");
            sink.onFetch(static_cast<coder::UnitId>(h.a),
                         static_cast<sram::AccessType>(h.b), instrs,
                         h.cycle);
            break;
          }
          case RecordKind::Noc: {
            words.resize(h.count);
            in.read(reinterpret_cast<char *>(words.data()),
                    static_cast<std::streamsize>(h.count * sizeof(Word)));
            fatal_if(!in, "truncated NoC record");
            const int channel = static_cast<int>(h.a)
                                | (static_cast<int>(h.b) << 8);
            sink.onNocPacket(channel, words, h.flags != 0, h.cycle);
            break;
          }
          default:
            fatal("corrupt trace record kind %u", h.kind);
        }
        ++replayed;
    }
    return replayed;
}

} // namespace bvf::core
