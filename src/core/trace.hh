/**
 * @file
 * Access-trace capture and replay.
 *
 * The paper's methodology dumps the access trace of every BVF unit from
 * GPGPU-Sim (tens of GB per application) and parses it offline. This
 * module provides the same workflow for our simulator: a TraceWriter
 * sink serializes every unit access, fetch and NoC packet to a compact
 * binary stream; replayTrace() feeds a recorded stream back into any
 * AccessSink (e.g. an EnergyAccountant), producing statistics identical
 * to online accounting. A TeeSink allows doing both at once.
 *
 * Binary format (little-endian, versioned header):
 *   "BVFT" u32_version
 *   records: u8 kind, u8 unit/channelLo, u8 type/channelHi, u8 flags,
 *            u32 activeMask, u64 cycle, u32 count, count x payload
 *            (u32 words for kind=Access/Noc, u64 for kind=Fetch)
 */

#ifndef BVF_CORE_TRACE_HH
#define BVF_CORE_TRACE_HH

#include <iosfwd>
#include <vector>

#include "sram/access_sink.hh"

namespace bvf::core
{

/** Forwards every event to two sinks (account online while dumping). */
class TeeSink : public sram::AccessSink
{
  public:
    TeeSink(sram::AccessSink &first, sram::AccessSink &second)
        : first_(first), second_(second)
    {}

    void
    onAccess(coder::UnitId unit, sram::AccessType type,
             std::span<const Word> block, std::uint32_t activeMask,
             std::uint64_t cycle) override
    {
        first_.onAccess(unit, type, block, activeMask, cycle);
        second_.onAccess(unit, type, block, activeMask, cycle);
    }

    void
    onFetch(coder::UnitId unit, sram::AccessType type,
            std::span<const Word64> instrs, std::uint64_t cycle) override
    {
        first_.onFetch(unit, type, instrs, cycle);
        second_.onFetch(unit, type, instrs, cycle);
    }

    void
    onNocPacket(int channel, std::span<const Word> payload,
                bool instrStream, std::uint64_t cycle) override
    {
        first_.onNocPacket(channel, payload, instrStream, cycle);
        second_.onNocPacket(channel, payload, instrStream, cycle);
    }

  private:
    sram::AccessSink &first_;
    sram::AccessSink &second_;
};

/** Serializes the access stream to a binary ostream. */
class TraceWriter : public sram::AccessSink
{
  public:
    /** @param out stream the trace is written to (kept by reference) */
    explicit TraceWriter(std::ostream &out);

    void onAccess(coder::UnitId unit, sram::AccessType type,
                  std::span<const Word> block, std::uint32_t activeMask,
                  std::uint64_t cycle) override;
    void onFetch(coder::UnitId unit, sram::AccessType type,
                 std::span<const Word64> instrs,
                 std::uint64_t cycle) override;
    void onNocPacket(int channel, std::span<const Word> payload,
                     bool instrStream, std::uint64_t cycle) override;

    /** Records written so far. */
    std::uint64_t records() const { return records_; }

  private:
    std::ostream &out_;
    std::uint64_t records_ = 0;
};

/**
 * Replay a recorded trace into @p sink.
 *
 * @return number of records replayed
 * @throws exits via fatal() on a malformed stream
 */
std::uint64_t replayTrace(std::istream &in, sram::AccessSink &sink);

} // namespace bvf::core

#endif // BVF_CORE_TRACE_HH
