/**
 * @file
 * Access-trace capture and replay.
 *
 * The paper's methodology dumps the access trace of every BVF unit from
 * GPGPU-Sim (tens of GB per application) and parses it offline. This
 * module provides the same workflow for our simulator: a TraceWriter
 * sink serializes every unit access, fetch and NoC packet to a compact
 * binary stream; replayTrace() feeds a recorded stream back into any
 * AccessSink (e.g. an EnergyAccountant), producing statistics identical
 * to online accounting. A TeeSink allows doing both at once.
 *
 * Binary format (little-endian, versioned header):
 *   "BVFT" u32_version(=2)
 *   batches: "BTCH" u32 payloadBytes, u32 recordCount,
 *            u32 crc32(payload), payloadBytes bytes of records
 *   footer:  "BVFE" u64 totalRecords, u32 crc32(totalRecords)
 *   record:  u8 kind, u8 unit/channelLo, u8 type/channelHi, u8 flags,
 *            u32 activeMask, u64 cycle, u32 count, count x payload
 *            (u32 words for kind=Access/Noc, u64 for kind=Fetch)
 *
 * Batches are CRC-checked *before* any contained record reaches the
 * sink, so corruption never feeds garbage into an accountant; the
 * footer's record count makes truncation at a batch boundary
 * detectable. Version-1 streams (no batching, no checksums) are still
 * replayable. Replay reports failures as structured Result errors --
 * and can salvage the longest valid prefix -- instead of killing the
 * process.
 */

#ifndef BVF_CORE_TRACE_HH
#define BVF_CORE_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.hh"
#include "sram/access_sink.hh"

namespace bvf::core
{

/** Forwards every event to two sinks (account online while dumping). */
class TeeSink : public sram::AccessSink
{
  public:
    TeeSink(sram::AccessSink &first, sram::AccessSink &second)
        : first_(first), second_(second)
    {}

    void
    onAccess(coder::UnitId unit, sram::AccessType type,
             std::span<const Word> block, std::uint32_t activeMask,
             std::uint64_t cycle) override
    {
        first_.onAccess(unit, type, block, activeMask, cycle);
        second_.onAccess(unit, type, block, activeMask, cycle);
    }

    void
    onFetch(coder::UnitId unit, sram::AccessType type,
            std::span<const Word64> instrs, std::uint64_t cycle) override
    {
        first_.onFetch(unit, type, instrs, cycle);
        second_.onFetch(unit, type, instrs, cycle);
    }

    void
    onNocPacket(int channel, std::span<const Word> payload,
                bool instrStream, std::uint64_t cycle) override
    {
        first_.onNocPacket(channel, payload, instrStream, cycle);
        second_.onNocPacket(channel, payload, instrStream, cycle);
    }

  private:
    sram::AccessSink &first_;
    sram::AccessSink &second_;
};

/**
 * Serializes the access stream to a binary ostream.
 *
 * Records are buffered into CRC-protected batches; call finish() (or
 * let the destructor do it) to flush the tail batch and the footer.
 * Stream failures are latched instead of silently producing a
 * truncated file: check ok()/finish() after writing.
 */
class TraceWriter : public sram::AccessSink
{
  public:
    /** @param out stream the trace is written to (kept by reference) */
    explicit TraceWriter(std::ostream &out);

    /** Flushes and finalizes if finish() was not called explicitly. */
    ~TraceWriter() override;

    void onAccess(coder::UnitId unit, sram::AccessType type,
                  std::span<const Word> block, std::uint32_t activeMask,
                  std::uint64_t cycle) override;
    void onFetch(coder::UnitId unit, sram::AccessType type,
                 std::span<const Word64> instrs,
                 std::uint64_t cycle) override;
    void onNocPacket(int channel, std::span<const Word> payload,
                     bool instrStream, std::uint64_t cycle) override;

    /**
     * Flush the pending batch and write the footer.
     *
     * @return the record count, or an Io error if any write (including
     *         earlier batch flushes) failed
     */
    Result<std::uint64_t> finish();

    /** Has every write so far reached the stream successfully? */
    bool ok() const { return !ioError_; }

    /** Records written so far. */
    std::uint64_t records() const { return records_; }

  private:
    void appendRecord(const void *header, std::size_t headerBytes,
                      const void *payload, std::size_t payloadBytes);
    void flushBatch();

    std::ostream &out_;
    std::vector<char> batch_;          //!< pending batch payload
    std::uint32_t batchRecords_ = 0;
    std::uint64_t records_ = 0;
    bool ioError_ = false;
    bool finished_ = false;
};

/** Replay behaviour on a damaged stream. */
struct ReplayOptions
{
    /**
     * Replay the longest valid prefix of a damaged trace instead of
     * failing: corruption or truncation ends the replay at the last
     * intact batch and is reported in ReplaySummary, not as an error.
     */
    bool salvage = false;
};

/** What a replay processed. */
struct ReplaySummary
{
    std::uint64_t records = 0; //!< records delivered to the sink
    std::uint64_t batches = 0; //!< batches verified and replayed
    bool sawFooter = false;    //!< stream ended with an intact footer
    bool salvaged = false;     //!< damage was skipped (salvage mode)
    std::string warning;       //!< what was wrong, when salvaged
};

/**
 * Replay a recorded trace into @p sink.
 *
 * Damaged streams produce a structured error (Corrupt/Truncated/
 * Unsupported); with opts.salvage the valid prefix is replayed and
 * the damage is described in the returned summary instead. No failure
 * mode terminates the process.
 */
Result<ReplaySummary> replayTrace(std::istream &in,
                                  sram::AccessSink &sink,
                                  const ReplayOptions &opts = {});

} // namespace bvf::core

#endif // BVF_CORE_TRACE_HH
