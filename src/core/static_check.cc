#include "core/static_check.hh"

namespace bvf::core
{

using coder::Scenario;
using coder::UnitId;

StaticReport
analyzeStatic(const isa::Program &program, const gpu::GpuConfig &config,
              Word64 isaMask, int vsRegisterPivot)
{
    StaticReport report;
    report.analysis = analysis::analyzeProgram(program);

    analysis::PredictorOptions popts;
    popts.arch = config.arch;
    popts.isaMask = isaMask;
    popts.vsRegisterPivot = vsRegisterPivot;
    popts.lineBytes = config.lineBytes;
    report.prediction =
        analysis::predictDensity(program, report.analysis, popts);
    return report;
}

std::vector<analysis::ObservedStream>
observedStreams(const EnergyAccountant &accountant)
{
    std::vector<analysis::ObservedStream> out;
    for (const Scenario s : coder::allScenarios) {
        for (const auto &[unit, stats] : accountant.unitStats(s)) {
            out.push_back({unit, s, "reads", stats.reads.ones,
                           stats.reads.bits()});
            out.push_back({unit, s, "writes", stats.writes.ones,
                           stats.writes.bits()});
        }
    }
    return out;
}

std::vector<analysis::ObservedNoc>
observedNoc(const EnergyAccountant &accountant)
{
    std::vector<analysis::ObservedNoc> out;
    for (const Scenario s : coder::allScenarios) {
        const NocAccount &n = accountant.noc(s);
        out.push_back({s, n.payloadOnes, n.payloadBits});
    }
    return out;
}

std::vector<std::string>
crossCheckRun(const StaticReport &report, const EnergyAccountant &accountant)
{
    return analysis::crossCheck(report.prediction,
                                observedStreams(accountant),
                                observedNoc(accountant));
}

} // namespace bvf::core
