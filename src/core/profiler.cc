/**
 * @file
 * Profiler implementations.
 */

#include "core/profiler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "workload/kernel_builder.hh"
#include "workload/value_model.hh"

namespace bvf::core
{

ValueProfileResult
profileValues(const workload::AppSpec &spec, int samples)
{
    fatal_if(samples <= 0, "need a positive sample count");
    workload::ValueModel model(spec.values, spec.seed() ^ 0x11d);

    ValueProfileResult res;
    res.abbr = spec.abbr;
    std::uint64_t lead = 0;
    std::uint64_t zero_bits = 0;
    std::uint64_t zero_values = 0;
    std::uint64_t n = 0;
    for (int t = 0; t < samples; ++t) {
        const auto tile = model.tile();
        for (const Word w : tile) {
            lead += static_cast<std::uint64_t>(
                signAdjustedLeadingZeros(w));
            zero_bits += static_cast<std::uint64_t>(zeroCount(w));
            zero_values += w == 0 ? 1 : 0;
            ++n;
        }
    }
    res.meanLeadingZeros =
        static_cast<double>(lead) / static_cast<double>(n);
    res.meanZeroBits =
        static_cast<double>(zero_bits) / static_cast<double>(n);
    res.zeroValueFrac =
        static_cast<double>(zero_values) / static_cast<double>(n);
    return res;
}

LaneProfileResult
profileLanes(const workload::AppSpec &spec, int samples)
{
    fatal_if(samples <= 0, "need a positive sample count");
    workload::ValueModel model(spec.values, spec.seed() ^ 0x2a7);

    LaneProfileResult res;
    res.abbr = spec.abbr;
    std::array<std::uint64_t, 32> sums{};
    for (int t = 0; t < samples; ++t) {
        const auto tile = model.tile();
        for (int i = 0; i < 32; ++i) {
            for (int j = 0; j < 32; ++j) {
                if (i == j)
                    continue;
                sums[static_cast<std::size_t>(i)] +=
                    static_cast<std::uint64_t>(hammingDistance(
                        tile[static_cast<std::size_t>(i)],
                        tile[static_cast<std::size_t>(j)]));
            }
        }
    }
    const double denom = static_cast<double>(samples) * 31.0;
    for (int i = 0; i < 32; ++i) {
        res.lanePairDistance[static_cast<std::size_t>(i)] =
            static_cast<double>(sums[static_cast<std::size_t>(i)])
            / denom;
    }
    res.optimalLane = static_cast<int>(
        std::min_element(res.lanePairDistance.begin(),
                         res.lanePairDistance.end())
        - res.lanePairDistance.begin());
    const double best =
        res.lanePairDistance[static_cast<std::size_t>(res.optimalLane)];
    res.lane21Excess = best > 0.0 ? res.lanePairDistance[21] / best : 1.0;
    return res;
}

std::array<double, 32>
suiteLaneProfile(int samplesPerApp)
{
    std::array<double, 32> total{};
    for (const auto &spec : workload::evaluationSuite()) {
        const auto res = profileLanes(spec, samplesPerApp);
        for (int i = 0; i < 32; ++i) {
            total[static_cast<std::size_t>(i)] +=
                res.lanePairDistance[static_cast<std::size_t>(i)];
        }
    }
    const double max_v = *std::max_element(total.begin(), total.end());
    if (max_v > 0.0) {
        for (double &v : total)
            v /= max_v;
    }
    return total;
}

namespace
{

/** Assemble all suite kernels for @p arch into one binary corpus. */
std::vector<Word64>
buildCorpus(isa::GpuArch arch)
{
    const isa::InstructionEncoder encoder(arch);
    std::vector<Word64> corpus;
    for (const auto &spec : workload::evaluationSuite()) {
        const isa::Program prog = workload::buildProgram(spec);
        const auto bin = encoder.encode(prog.body);
        corpus.insert(corpus.end(), bin.begin(), bin.end());
    }
    return corpus;
}

} // namespace

Word64
suiteIsaMask(isa::GpuArch arch)
{
    const auto corpus = buildCorpus(arch);
    return isa::extractPreferenceMask(corpus);
}

std::vector<double>
suiteBitProbabilities(isa::GpuArch arch)
{
    const auto corpus = buildCorpus(arch);
    return isa::bitPositionOneProbability(corpus);
}

std::size_t
suiteCorpusSize(isa::GpuArch arch)
{
    return buildCorpus(arch).size();
}

} // namespace bvf::core
