#include "core/pivot_sweep.hh"

namespace bvf::core
{

PivotSweepSink::PivotSweepSink() = default;

void
PivotSweepSink::onAccess(coder::UnitId unit, sram::AccessType,
                         std::span<const Word> block,
                         std::uint32_t activeMask, std::uint64_t)
{
    if (unit != coder::UnitId::Reg)
        return;
    ++accesses_;
    for (int p = 0; p < 32; ++p) {
        scratch_.assign(block.begin(), block.end());
        coder::VsCoder(p).encode(scratch_);
        PivotCount &c = counts_[static_cast<std::size_t>(p)];
        for (std::size_t i = 0; i < scratch_.size(); ++i) {
            if (!((activeMask >> i) & 1u))
                continue;
            c.ones += static_cast<std::uint64_t>(
                hammingWeight(scratch_[i]));
            c.bits += 32;
        }
    }
}

int
PivotSweepSink::bestMeasuredPivot() const
{
    int best = 0;
    for (int p = 1; p < 32; ++p) {
        if (counts_[static_cast<std::size_t>(p)].density()
            > counts_[static_cast<std::size_t>(best)].density())
            best = p;
    }
    return best;
}

} // namespace bvf::core
