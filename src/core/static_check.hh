/**
 * @file
 * Bridge between the static analyzer and the dynamic simulator.
 *
 * Converts an EnergyAccountant's per-unit, per-scenario bit statistics
 * into the plain observation tuples analysis::crossCheck consumes, and
 * packages the whole static pipeline (interpret, lint, predict) with
 * the knobs a given run actually used so predictions and observations
 * are comparable.
 */

#ifndef BVF_CORE_STATIC_CHECK_HH
#define BVF_CORE_STATIC_CHECK_HH

#include <vector>

#include "analysis/check.hh"
#include "analysis/interpreter.hh"
#include "analysis/predictor.hh"
#include "core/accountant.hh"
#include "gpu/gpu_config.hh"
#include "isa/program.hh"

namespace bvf::core
{

/** The full static pipeline output for one program. */
struct StaticReport
{
    analysis::AnalysisResult analysis;
    analysis::StaticPrediction prediction;
};

/**
 * Run the abstract interpreter and density predictor with knobs that
 * mirror a run under @p config. @p isaMask must be the mask the
 * accountant ends up using (EnergyAccountant::isaMask()); pass 0 for
 * the static Table 2 mask of the configured architecture.
 */
StaticReport analyzeStatic(const isa::Program &program,
                           const gpu::GpuConfig &config,
                           Word64 isaMask = 0, int vsRegisterPivot =
                               coder::VsCoder::defaultRegisterPivot);

/** Flatten an accountant's encoded bit statistics into check tuples. */
std::vector<analysis::ObservedStream> observedStreams(
    const EnergyAccountant &accountant);

/** Flatten an accountant's NoC payload statistics into check tuples. */
std::vector<analysis::ObservedNoc> observedNoc(
    const EnergyAccountant &accountant);

/**
 * Cross-check @p accountant against @p report. Returns one message per
 * violation; empty means every observed ratio sits inside its proven
 * interval.
 */
std::vector<std::string> crossCheckRun(const StaticReport &report,
                                       const EnergyAccountant &accountant);

} // namespace bvf::core

#endif // BVF_CORE_STATIC_CHECK_HH
