/**
 * @file
 * EnergyAccountant implementation.
 */

#include "core/accountant.hh"

#include "coder/nv_coder.hh"
#include "coder/vs_coder.hh"
#include "common/logging.hh"
#include "fault/secded.hh"

namespace bvf::core
{

using coder::CoderChain;
using coder::Scenario;
using coder::UnitId;

EnergyAccountant::EnergyAccountant(
    const std::map<UnitId, std::uint64_t> &capacities,
    const AccountantOptions &options)
    : options_(options),
      isaCoder_(options.dynamicIsaMask != 0
                    ? options.dynamicIsaMask
                    : isa::paperIsaMask(options.arch))
{
    for (const auto &[unit, bits] : capacities)
        accounts_.emplace(unit, sram::UnitAccount(unit, bits));

    const auto nv = std::make_shared<const coder::NvCoder>();
    const auto vs_reg = std::make_shared<const coder::VsCoder>(
        options.vsRegisterPivot);
    const auto vs_line = std::make_shared<const coder::VsCoder>(
        coder::VsCoder::cacheLinePivot);

    auto &nv_chains =
        chains_[static_cast<std::size_t>(
            coder::scenarioIndex(Scenario::NvOnly))];
    for (UnitId unit : coder::nvSpaceUnits()) {
        CoderChain c;
        c.addWord(nv);
        nv_chains.emplace(unit, std::move(c));
    }

    auto &vs_chains =
        chains_[static_cast<std::size_t>(
            coder::scenarioIndex(Scenario::VsOnly))];
    for (UnitId unit : coder::vsRegisterSpaceUnits()) {
        CoderChain c;
        c.addBlock(vs_reg);
        vs_chains.emplace(unit, std::move(c));
    }
    for (UnitId unit : coder::vsCacheSpaceUnits()) {
        CoderChain c;
        c.addBlock(vs_line);
        vs_chains.emplace(unit, std::move(c));
    }

    auto &all_chains =
        chains_[static_cast<std::size_t>(
            coder::scenarioIndex(Scenario::AllCoders))];
    for (UnitId unit : coder::allUnits()) {
        CoderChain c;
        if (coder::nvSpaceUnits().count(unit))
            c.addWord(nv);
        if (coder::vsRegisterSpaceUnits().count(unit))
            c.addBlock(vs_reg);
        else if (coder::vsCacheSpaceUnits().count(unit))
            c.addBlock(vs_line);
        if (!c.empty())
            all_chains.emplace(unit, std::move(c));
    }
}

const CoderChain &
EnergyAccountant::chainFor(Scenario s, UnitId unit) const
{
    static const CoderChain empty;
    const auto &per_unit =
        chains_[static_cast<std::size_t>(coder::scenarioIndex(s))];
    auto it = per_unit.find(unit);
    return it == per_unit.end() ? empty : it->second;
}

bool
EnergyAccountant::isaApplies(Scenario s) const
{
    return s == Scenario::IsaOnly || s == Scenario::AllCoders;
}

void
EnergyAccountant::onAccess(UnitId unit, sram::AccessType type,
                           std::span<const Word> block,
                           std::uint32_t activeMask, std::uint64_t cycle)
{
    auto acc_it = accounts_.find(unit);
    panic_if(acc_it == accounts_.end(), "access to unaccounted unit %s",
             coder::unitName(unit).c_str());
    sram::UnitAccount &account = acc_it->second;

    for (const Scenario s : coder::allScenarios) {
        const CoderChain &chain = chainFor(s, unit);
        std::uint64_t ones = 0;
        std::uint64_t bits = 0;
        std::span<const Word> stored = block;
        if (!chain.empty()) {
            scratch_.assign(block.begin(), block.end());
            chain.encode(scratch_);
            stored = scratch_;
        }
        for (std::size_t i = 0; i < stored.size(); ++i) {
            if (!((activeMask >> i) & 1u))
                continue;
            ones += static_cast<std::uint64_t>(
                hammingWeight(stored[i]));
            bits += 32;
        }
        if (options_.eccAccounting) {
            // A codeword spans a word pair; its check byte moves with
            // the pair whenever either half is touched.
            for (std::size_t base = 0; base < stored.size(); base += 2) {
                const bool low = (activeMask >> base) & 1u;
                const bool high = base + 1 < stored.size()
                                  && ((activeMask >> (base + 1)) & 1u);
                if (!low && !high)
                    continue;
                Word64 w = static_cast<Word64>(stored[base]);
                if (base + 1 < stored.size()) {
                    w |= static_cast<Word64>(stored[base + 1]) << 32;
                }
                ones += static_cast<std::uint64_t>(hammingWeight(
                    static_cast<Word>(fault::secdedEncode(w))));
                bits += fault::eccCheckBits(fault::EccScheme::Secded72_64);
            }
        }
        if (type == sram::AccessType::Read)
            account.recordRead(s, ones, bits, cycle);
        else
            account.recordWrite(s, ones, bits, cycle);
    }
}

void
EnergyAccountant::onFetch(UnitId unit, sram::AccessType type,
                          std::span<const Word64> instrs,
                          std::uint64_t cycle)
{
    auto acc_it = accounts_.find(unit);
    panic_if(acc_it == accounts_.end(), "fetch to unaccounted unit %s",
             coder::unitName(unit).c_str());
    sram::UnitAccount &account = acc_it->second;

    for (const Scenario s : coder::allScenarios) {
        std::uint64_t ones = 0;
        std::uint64_t bits = 64 * instrs.size();
        for (Word64 w : instrs) {
            const Word64 stored = isaApplies(s) ? isaCoder_.encode(w) : w;
            ones += static_cast<std::uint64_t>(hammingWeight64(stored));
            if (options_.eccAccounting) {
                ones += static_cast<std::uint64_t>(hammingWeight(
                    static_cast<Word>(fault::secdedEncode(stored))));
                bits += fault::eccCheckBits(fault::EccScheme::Secded72_64);
            }
        }
        if (type == sram::AccessType::Read)
            account.recordRead(s, ones, bits, cycle);
        else
            account.recordWrite(s, ones, bits, cycle);
    }
}

void
EnergyAccountant::onNocPacket(int channel, std::span<const Word> payload,
                              bool instrStream, std::uint64_t cycle)
{
    (void)cycle;
    constexpr std::size_t flit_words = 8; // 32B flits (Table 3)
    ChannelState &state = channels_[channel];

    for (const Scenario s : coder::allScenarios) {
        const auto idx =
            static_cast<std::size_t>(coder::scenarioIndex(s));
        scratch_.assign(payload.begin(), payload.end());

        // Encode the packet as one block: VS pivots on the line's
        // leading element exactly as the paper's cache-space coder does.
        if (instrStream) {
            // Instruction payloads carry 64-bit binaries as word pairs.
            if (isaApplies(s)) {
                for (std::size_t i = 0; i + 1 < scratch_.size(); i += 2) {
                    const Word64 w =
                        static_cast<Word64>(scratch_[i])
                        | (static_cast<Word64>(scratch_[i + 1]) << 32);
                    const Word64 e = isaCoder_.encode(w);
                    scratch_[i] = static_cast<Word>(e);
                    scratch_[i + 1] = static_cast<Word>(e >> 32);
                }
            }
        } else {
            const CoderChain &chain = chainFor(s, UnitId::Noc);
            if (!chain.empty())
                chain.encode(scratch_);
        }

        // Segment into flits and walk the channel wires.
        auto &prev = state.prev[idx];
        if (prev.size() != flit_words)
            prev.assign(flit_words, 0); // wires start discharged
        NocAccount &acct = noc_[idx];
        for (std::size_t base = 0; base < scratch_.size();
             base += flit_words) {
            std::uint64_t toggles = 0;
            for (std::size_t i = 0; i < flit_words; ++i) {
                const std::size_t src = base + i;
                const Word w =
                    src < scratch_.size() ? scratch_[src] : Word(0);
                toggles += static_cast<std::uint64_t>(
                    hammingDistance(prev[i], w));
                prev[i] = w;
                acct.payloadOnes +=
                    static_cast<std::uint64_t>(hammingWeight(w));
            }
            acct.toggles += toggles;
            ++acct.flits;
            acct.payloadBits += 32 * flit_words;
        }
    }
}

void
EnergyAccountant::finalize(std::uint64_t endCycle)
{
    for (auto &[unit, account] : accounts_)
        account.finalize(endCycle);
}

const sram::UnitAccount &
EnergyAccountant::unitAccount(UnitId unit) const
{
    auto it = accounts_.find(unit);
    panic_if(it == accounts_.end(), "no account for unit %s",
             coder::unitName(unit).c_str());
    return it->second;
}

std::map<UnitId, sram::UnitScenarioStats>
EnergyAccountant::unitStats(Scenario s) const
{
    std::map<UnitId, sram::UnitScenarioStats> out;
    for (const auto &[unit, account] : accounts_)
        out.emplace(unit, account.stats(s));
    return out;
}

} // namespace bvf::core
