/**
 * @file
 * Experiment driver implementation.
 */

#include "core/experiment.hh"

#include <optional>

#include "common/logging.hh"
#include "core/static_check.hh"
#include "workload/kernel_builder.hh"

namespace bvf::core
{

using coder::Scenario;
using coder::UnitId;

ExperimentDriver::ExperimentDriver(gpu::GpuConfig config)
    : config_(std::move(config))
{
}

std::map<UnitId, std::uint64_t>
ExperimentDriver::unitCapacities() const
{
    const auto sms = static_cast<std::uint64_t>(config_.numSms);
    std::map<UnitId, std::uint64_t> caps;
    caps[UnitId::Reg] = sms * config_.regFileBytes * 8;
    caps[UnitId::Sme] = sms * config_.sharedMemBytes * 8;
    caps[UnitId::L1D] = sms * config_.l1dBytes * 8;
    caps[UnitId::L1I] = sms * config_.l1iBytes * 8;
    caps[UnitId::L1C] = sms * config_.l1cBytes * 8;
    caps[UnitId::L1T] = sms * config_.l1tBytes * 8;
    caps[UnitId::Ifb] =
        sms * static_cast<std::uint64_t>(config_.maxWarpsPerSm) * 64 * 8;
    caps[UnitId::L2] =
        static_cast<std::uint64_t>(config_.l2TotalBytes()) * 8;
    return caps;
}

AppRun
ExperimentDriver::runApp(const workload::AppSpec &spec,
                         bool dynamicIsa) const
{
    RunOptions options;
    options.dynamicIsa = dynamicIsa;
    return runApp(spec, options);
}

AppRun
ExperimentDriver::runApp(const workload::AppSpec &spec,
                         const RunOptions &options) const
{
    AppRun run = runProgram(workload::buildProgram(spec), options);
    run.name = spec.name;
    run.abbr = spec.abbr;
    run.memoryIntensive = spec.memoryIntensive;
    return run;
}

AppRun
ExperimentDriver::runProgram(isa::Program program,
                             const RunOptions &options) const
{
    AppRun run;
    run.name = program.name;
    run.abbr = program.name;
    const std::string label = program.name.empty() ? "kernel"
                                                   : program.name;

    AccountantOptions opts;
    opts.arch = config_.arch;
    opts.vsRegisterPivot = options.vsRegisterPivot;
    opts.eccAccounting = options.fault.ecc == fault::EccScheme::Secded72_64;
    if (options.dynamicIsa) {
        // The "assembler" profiles this binary and programs the mask
        // register at launch (Section 4.3, dynamic method).
        const isa::InstructionEncoder encoder(config_.arch);
        const auto binary = encoder.encode(program.body);
        opts.dynamicIsaMask = isa::extractPreferenceMask(binary);
    }
    run.accountant = std::make_shared<EnergyAccountant>(unitCapacities(),
                                                        opts);

    // The static report must be built before the program is moved into
    // the machine; the knobs must mirror the accountant's exactly or the
    // proven intervals would describe a different encoding.
    std::optional<StaticReport> staticReport;
    if (options.checkStatic) {
        fatal_if(options.fault.anyFaults(),
                 "--check-static is incompatible with fault injection");
        fatal_if(opts.eccAccounting,
                 "--check-static is incompatible with ECC accounting");
        staticReport = analyzeStatic(program, config_,
                                     run.accountant->isaMask(),
                                     options.vsRegisterPivot);
    }

    // The fault layer sits between the machine and the accountant, so
    // the accountant prices what a faulty array would actually deliver.
    // With faults disabled no layer is inserted and the access stream
    // is untouched.
    sram::AccessSink *sink = run.accountant.get();
    if (options.fault.anyFaults()) {
        run.faults = std::make_shared<fault::FaultSink>(*run.accountant,
                                                        options.fault);
        sink = run.faults.get();
    }

    gpu::Gpu machine(config_, std::move(program), *sink);
    machine.setCancellation(options.cancel);
    if (options.probe)
        machine.setExecProbe(options.probe);
    if (options.uniformDispatch)
        machine.setUniformDispatch(true);
    run.gpuStats = machine.run();
    run.accountant->finalize(run.gpuStats.cycles);

    if (staticReport) {
        const auto violations = crossCheckRun(*staticReport,
                                              *run.accountant);
        for (const std::string &v : violations)
            warn("%s: %s", label.c_str(), v.c_str());
        fatal_if(!violations.empty(),
                 "static cross-check failed for %s: %zu observed ratios "
                 "escaped their proven intervals",
                 label.c_str(), violations.size());
    }
    return run;
}

Result<AppRun>
ExperimentDriver::runProgramChecked(isa::Program program,
                                    const RunOptions &options) const
{
    auto classify = [&](const char *what) {
        const bool timed_out = options.cancel && options.cancel->expired();
        return Error{timed_out ? ErrorCode::Timeout : ErrorCode::Failed,
                     what};
    };
    try {
        ScopedFatalTrap trap;
        return runProgram(std::move(program), options);
    } catch (const FatalError &e) {
        return classify(e.what());
    } catch (const std::exception &e) {
        return classify(e.what());
    }
}

Result<AppRun>
ExperimentDriver::runAppChecked(const workload::AppSpec &spec,
                                const RunOptions &options) const
{
    auto classify = [&](const char *what) {
        const bool timed_out = options.cancel && options.cancel->expired();
        return Error{timed_out ? ErrorCode::Timeout : ErrorCode::Failed,
                     what};
    };
    try {
        ScopedFatalTrap trap;
        return runApp(spec, options);
    } catch (const FatalError &e) {
        return classify(e.what());
    } catch (const std::exception &e) {
        return classify(e.what());
    }
}

std::vector<AppRun>
ExperimentDriver::runSuite() const
{
    SuiteResult result = runSuiteChecked();
    for (const AppFailure &f : result.failures) {
        warn("skipping %s (%s): %s", f.name.c_str(), f.abbr.c_str(),
             f.error.describe().c_str());
    }
    return std::move(result.runs);
}

SuiteResult
ExperimentDriver::runSuiteChecked(std::span<const workload::AppSpec> apps,
                                  const RunOptions &options) const
{
    SuiteResult result;
    for (const workload::AppSpec &spec : apps) {
        inform("simulating %s (%s)", spec.name.c_str(), spec.abbr.c_str());
        Error last{ErrorCode::Failed, "unknown failure"};
        int attempts = 0;
        bool done = false;
        for (int attempt = 0; attempt < 2 && !done; ++attempt) {
            ++attempts;
            workload::AppSpec trial = spec;
            trial.seedSalt = spec.seedSalt + attempt;
            if (attempt > 0) {
                warn("retrying %s with fresh seed", spec.abbr.c_str());
            }
            auto attempted = runAppChecked(trial, options);
            if (attempted.ok()) {
                result.runs.push_back(std::move(attempted.value()));
                done = true;
            } else {
                last = attempted.error();
            }
        }
        if (!done)
            result.failures.push_back({spec.name, spec.abbr, last,
                                       attempts});
    }
    return result;
}

SuiteResult
ExperimentDriver::runSuiteChecked(const RunOptions &options) const
{
    return runSuiteChecked(workload::evaluationSuite(), options);
}

AppEnergy
ExperimentDriver::evaluate(const AppRun &run, const Pricing &pricing) const
{
    power::ChipModelOptions array_opts;
    array_opts.ecc = pricing.ecc;
    array_opts.cellsPerBitline = pricing.cellsPerBitline;
    array_opts.allowUnreliableCells = pricing.allowUnreliableCells;
    power::ChipPowerModel model(pricing.node, pricing.pstate.vdd,
                                pricing.pstate.frequency, pricing.cellKind,
                                config_, array_opts);
    AppEnergy out;
    out.abbr = run.abbr;
    out.memoryIntensive = run.memoryIntensive;
    for (const Scenario s : coder::allScenarios) {
        const auto &noc = run.accountant->noc(s);
        out.byScenario[static_cast<std::size_t>(coder::scenarioIndex(s))] =
            model.evaluate(run.accountant->unitStats(s), noc.toggles,
                           noc.flits, run.gpuStats,
                           s != Scenario::Baseline);
    }
    return out;
}

std::vector<AppEnergy>
ExperimentDriver::evaluate(const std::vector<AppRun> &runs,
                           const Pricing &pricing) const
{
    std::vector<AppEnergy> out;
    out.reserve(runs.size());
    for (const AppRun &run : runs)
        out.push_back(evaluate(run, pricing));
    return out;
}

double
ExperimentDriver::meanChipRatio(const std::vector<AppEnergy> &energies,
                                Scenario scenario)
{
    fatal_if(energies.empty(), "no energies to average");
    double sum = 0.0;
    for (const AppEnergy &e : energies) {
        sum += e.at(scenario).chipTotal()
               / e.at(Scenario::Baseline).chipTotal();
    }
    return sum / static_cast<double>(energies.size());
}

double
ExperimentDriver::meanBvfUnitsRatio(const std::vector<AppEnergy> &energies,
                                    Scenario scenario)
{
    fatal_if(energies.empty(), "no energies to average");
    double sum = 0.0;
    for (const AppEnergy &e : energies) {
        sum += e.at(scenario).bvfUnitsTotal()
               / e.at(Scenario::Baseline).bvfUnitsTotal();
    }
    return sum / static_cast<double>(energies.size());
}

} // namespace bvf::core
