/**
 * @file
 * Experiment driver: run applications through the GPU model and produce
 * per-scenario energy reports.
 *
 * One runApp() call simulates an application once and accounts all five
 * scenarios; evaluate() then prices the statistics under any
 * (technology node, P-state, cell family) combination without
 * re-simulating -- exactly how the paper derives Figures 16-23 from one
 * set of GPGPU-Sim traces.
 */

#ifndef BVF_CORE_EXPERIMENT_HH
#define BVF_CORE_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/accountant.hh"
#include "gpu/gpu.hh"
#include "power/chip_model.hh"
#include "workload/app_spec.hh"

namespace bvf::core
{

/** One application's simulation outcome (scenario-independent parts). */
struct AppRun
{
    std::string name;
    std::string abbr;
    bool memoryIntensive = false;
    gpu::GpuStats gpuStats;
    std::shared_ptr<EnergyAccountant> accountant;
};

/** Per-scenario chip energy for one app under one pricing. */
struct AppEnergy
{
    std::string abbr;
    bool memoryIntensive = false;
    std::array<power::ChipEnergy, coder::numScenarios> byScenario;

    const power::ChipEnergy &
    at(coder::Scenario s) const
    {
        return byScenario[static_cast<std::size_t>(
            coder::scenarioIndex(s))];
    }
};

/** Pricing configuration: where and how energy is evaluated. */
struct Pricing
{
    circuit::TechNode node = circuit::TechNode::N28;
    gpu::PState pstate = {700.0e6, 1.2, "700MHz@1.2V"};
    circuit::CellKind cellKind = circuit::CellKind::SramBvf8T;
};

/**
 * Runs applications and prices their energy.
 */
class ExperimentDriver
{
  public:
    explicit ExperimentDriver(gpu::GpuConfig config);

    /**
     * Simulate one application (all scenarios accounted).
     *
     * @param dynamicIsa use a per-application ISA mask extracted from
     *        this kernel's binary (Section 4.3 "dynamic" variant)
     *        instead of the static Table 2 mask
     */
    AppRun runApp(const workload::AppSpec &spec,
                  bool dynamicIsa = false) const;

    /** Simulate every app of the 58-app suite. */
    std::vector<AppRun> runSuite() const;

    /** Price one run under @p pricing. */
    AppEnergy evaluate(const AppRun &run, const Pricing &pricing) const;

    /** Price a set of runs. */
    std::vector<AppEnergy> evaluate(const std::vector<AppRun> &runs,
                                    const Pricing &pricing) const;

    /**
     * Suite-mean relative chip energy of @p scenario vs baseline
     * (e.g. 0.79 => 21% reduction).
     */
    static double meanChipRatio(const std::vector<AppEnergy> &energies,
                                coder::Scenario scenario);

    /** Suite-mean relative energy over the BVF units only. */
    static double meanBvfUnitsRatio(const std::vector<AppEnergy> &energies,
                                    coder::Scenario scenario);

    const gpu::GpuConfig &config() const { return config_; }

    /** Unit capacities of the configured machine [bits]. */
    std::map<coder::UnitId, std::uint64_t> unitCapacities() const;

  private:
    gpu::GpuConfig config_;
};

} // namespace bvf::core

#endif // BVF_CORE_EXPERIMENT_HH
