/**
 * @file
 * Experiment driver: run applications through the GPU model and produce
 * per-scenario energy reports.
 *
 * One runApp() call simulates an application once and accounts all five
 * scenarios; evaluate() then prices the statistics under any
 * (technology node, P-state, cell family) combination without
 * re-simulating -- exactly how the paper derives Figures 16-23 from one
 * set of GPGPU-Sim traces.
 */

#ifndef BVF_CORE_EXPERIMENT_HH
#define BVF_CORE_EXPERIMENT_HH

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/cancel.hh"
#include "common/result.hh"
#include "core/accountant.hh"
#include "fault/fault_sink.hh"
#include "gpu/gpu.hh"
#include "power/chip_model.hh"
#include "workload/app_spec.hh"

namespace bvf::core
{

/** One application's simulation outcome (scenario-independent parts). */
struct AppRun
{
    std::string name;
    std::string abbr;
    bool memoryIntensive = false;
    gpu::GpuStats gpuStats;
    std::shared_ptr<EnergyAccountant> accountant;

    /** Fault-injection layer; null when the run was fault-free. */
    std::shared_ptr<fault::FaultSink> faults;
};

/** Per-scenario chip energy for one app under one pricing. */
struct AppEnergy
{
    std::string abbr;
    bool memoryIntensive = false;
    std::array<power::ChipEnergy, coder::numScenarios> byScenario;

    const power::ChipEnergy &
    at(coder::Scenario s) const
    {
        return byScenario[static_cast<std::size_t>(
            coder::scenarioIndex(s))];
    }
};

/** Pricing configuration: where and how energy is evaluated. */
struct Pricing
{
    circuit::TechNode node = circuit::TechNode::N28;
    gpu::PState pstate = {700.0e6, 1.2, "700MHz@1.2V"};
    circuit::CellKind cellKind = circuit::CellKind::SramBvf8T;

    /** Price SECDED(72,64) storage (pair with RunOptions ECC). */
    bool ecc = false;

    /** Bitline length of every BVF array (Table 3 machine: 128). */
    int cellsPerBitline = 128;

    /** Price BVF-6T arrays past their reliability limit (fault study). */
    bool allowUnreliableCells = false;
};

/** Per-run simulation knobs. */
struct RunOptions
{
    /**
     * Use a per-application ISA mask extracted from this kernel's
     * binary (Section 4.3 "dynamic" variant) instead of the static
     * Table 2 mask.
     */
    bool dynamicIsa = false;

    /** VS lane pivot at the register file (paper default: 21). */
    int vsRegisterPivot = coder::VsCoder::defaultRegisterPivot;

    /**
     * Fault injection + ECC. When fault.ecc is SECDED the accountant
     * also prices the check bits (they change the stored 0/1 mix).
     * The all-defaults config changes nothing: no FaultSink is
     * inserted and accounted numbers stay bit-identical.
     */
    fault::FaultConfig fault;

    /**
     * Cooperative watchdog token polled inside the GPU cycle loop
     * (null = never cancelled). Kept by pointer: the caller owns the
     * token and arms its deadline per attempt.
     */
    const CancelToken *cancel = nullptr;

    /**
     * After the run, cross-check the accountant's encoded bit
     * statistics against the static density predictor and fatal() on
     * any observed ratio outside its proven interval. Incompatible
     * with fault injection and ECC accounting: both perturb the bit
     * stream beyond what the static model covers.
     */
    bool checkStatic = false;

    /**
     * Issue-observation probe installed on every SM for this run
     * (null = none). The submitted-kernel path uses it to enforce an
     * admission certificate (core/contract.hh) while the kernel runs.
     */
    gpu::ExecProbe *probe = nullptr;

    /**
     * Run the SMs' dispatch loop specialized for certified-uniform
     * control flow (Certificate::uniformControlFlow). Only legal when
     * the program's admission certificate carries that bit; results
     * (statistics and energy) are byte-identical either way, the run
     * is just faster.
     */
    bool uniformDispatch = false;
};

/** Why one application of a suite run could not be simulated. */
struct AppFailure
{
    std::string name;
    std::string abbr;
    Error error;
    int attempts = 0; //!< 2 = failed, was reseeded, failed again
};

/** Fail-soft suite outcome: completed runs plus isolated failures. */
struct SuiteResult
{
    std::vector<AppRun> runs;
    std::vector<AppFailure> failures;
};

/**
 * Runs applications and prices their energy.
 */
class ExperimentDriver
{
  public:
    explicit ExperimentDriver(gpu::GpuConfig config);

    /**
     * Simulate one application (all scenarios accounted).
     *
     * @param dynamicIsa use a per-application ISA mask extracted from
     *        this kernel's binary (Section 4.3 "dynamic" variant)
     *        instead of the static Table 2 mask
     */
    AppRun runApp(const workload::AppSpec &spec,
                  bool dynamicIsa = false) const;

    /** Simulate one application with full per-run options. */
    AppRun runApp(const workload::AppSpec &spec,
                  const RunOptions &options) const;

    /**
     * Single fail-soft attempt at one application: any fatal() raised
     * while simulating (bad spec, watchdog expiry, cycle-limit blowout)
     * comes back as a structured Error instead of killing the process.
     * A run cancelled by options.cancel is classified ErrorCode::Timeout
     * so callers can distinguish a hang from a broken configuration.
     */
    Result<AppRun> runAppChecked(const workload::AppSpec &spec,
                                 const RunOptions &options = {}) const;

    /**
     * Simulate an already-built kernel. This is the only simulation
     * entry point for programs that did not come out of the trusted
     * kernel builder (bytecode submissions, assembled text); callers
     * must gate it behind analysis::verifyProgram and should install a
     * ContractProbe via options.probe so the certificate is enforced.
     */
    AppRun runProgram(isa::Program program,
                      const RunOptions &options = {}) const;

    /** Fail-soft runProgram: fatal() becomes a structured Error. */
    Result<AppRun> runProgramChecked(isa::Program program,
                                     const RunOptions &options = {}) const;

    /** Simulate every app of the 58-app suite. */
    std::vector<AppRun> runSuite() const;

    /**
     * Fail-soft suite run: a bad spec (or any fatal() raised while
     * simulating it) is retried once with a fresh seed and, if it still
     * fails, recorded as an AppFailure instead of killing the process.
     * 57 good apps survive one broken one.
     */
    SuiteResult runSuiteChecked(std::span<const workload::AppSpec> apps,
                                const RunOptions &options = {}) const;

    /** Fail-soft run of the full 58-app suite. */
    SuiteResult runSuiteChecked(const RunOptions &options = {}) const;

    /** Price one run under @p pricing. */
    AppEnergy evaluate(const AppRun &run, const Pricing &pricing) const;

    /** Price a set of runs. */
    std::vector<AppEnergy> evaluate(const std::vector<AppRun> &runs,
                                    const Pricing &pricing) const;

    /**
     * Suite-mean relative chip energy of @p scenario vs baseline
     * (e.g. 0.79 => 21% reduction).
     */
    static double meanChipRatio(const std::vector<AppEnergy> &energies,
                                coder::Scenario scenario);

    /** Suite-mean relative energy over the BVF units only. */
    static double meanBvfUnitsRatio(const std::vector<AppEnergy> &energies,
                                    coder::Scenario scenario);

    const gpu::GpuConfig &config() const { return config_; }

    /** Unit capacities of the configured machine [bits]. */
    std::map<coder::UnitId, std::uint64_t> unitCapacities() const;

  private:
    gpu::GpuConfig config_;
};

} // namespace bvf::core

#endif // BVF_CORE_EXPERIMENT_HH
