/**
 * @file
 * Multi-scenario energy accountant: the AccessSink implementation that
 * evaluates all coding scenarios side by side during one simulation.
 *
 * For every unit access it applies, per scenario, the coder chain that
 * Table 1 assigns to the unit (NV everywhere on the data path, VS with
 * lane pivot 21 at registers / element pivot 0 at cache-line units, the
 * ISA mask on the instruction stream) and accumulates encoded bit
 * statistics. NoC channels additionally keep, per scenario, the last
 * flit transmitted so wire toggles are counted exactly.
 */

#ifndef BVF_CORE_ACCOUNTANT_HH
#define BVF_CORE_ACCOUNTANT_HH

#include <array>
#include <map>
#include <memory>
#include <vector>

#include "coder/bvf_space.hh"
#include "coder/coder.hh"
#include "coder/isa_coder.hh"
#include "coder/scenario.hh"
#include "coder/vs_coder.hh"
#include "isa/encoding.hh"
#include "sram/access_sink.hh"
#include "sram/unit_account.hh"

namespace bvf::core
{

/** Per-scenario NoC statistics. */
struct NocAccount
{
    std::uint64_t toggles = 0;
    std::uint64_t flits = 0;
    std::uint64_t payloadOnes = 0;
    std::uint64_t payloadBits = 0;
};

/** Options controlling the accountant's coder wiring. */
struct AccountantOptions
{
    int vsRegisterPivot = coder::VsCoder::defaultRegisterPivot;
    isa::GpuArch arch = isa::GpuArch::Pascal;

    /**
     * Override the Table 2 mask with a per-application mask (the
     * paper's "dynamic" ISA-coder variant, Section 4.3: the assembler
     * counts 0/1 occurrence in this binary and programs a mask register
     * at kernel launch). Zero value = use the static Table 2 mask.
     */
    Word64 dynamicIsaMask = 0;

    /**
     * Account SECDED(72,64) check bits alongside the data bits. The
     * check byte is computed over the *post-coder* word pair, because
     * that is what the array stores: XNOR coding changes the 0/1 mix of
     * the data and therefore of the parity bits protecting it.
     */
    bool eccAccounting = false;
};

/**
 * The accountant. Construct one per simulated run with the unit
 * capacities of the machine.
 */
class EnergyAccountant : public sram::AccessSink
{
  public:
    /**
     * @param capacities capacity in bits per unit (NoC excluded)
     * @param options coder wiring knobs
     */
    EnergyAccountant(
        const std::map<coder::UnitId, std::uint64_t> &capacities,
        const AccountantOptions &options = {});

    // --- AccessSink ----------------------------------------------------
    void onAccess(coder::UnitId unit, sram::AccessType type,
                  std::span<const Word> block, std::uint32_t activeMask,
                  std::uint64_t cycle) override;
    void onFetch(coder::UnitId unit, sram::AccessType type,
                 std::span<const Word64> instrs,
                 std::uint64_t cycle) override;
    void onNocPacket(int channel, std::span<const Word> payload,
                     bool instrStream, std::uint64_t cycle) override;

    /** Finish leakage integration at the end of the run. */
    void finalize(std::uint64_t endCycle);

    /** Access statistics for @p unit. */
    const sram::UnitAccount &unitAccount(coder::UnitId unit) const;

    /** Per-unit stats map for one scenario (power-model input). */
    std::map<coder::UnitId, sram::UnitScenarioStats> unitStats(
        coder::Scenario s) const;

    /** NoC account for @p s. */
    const NocAccount &
    noc(coder::Scenario s) const
    {
        return noc_[static_cast<std::size_t>(coder::scenarioIndex(s))];
    }

    /** The ISA mask in use. */
    Word64 isaMask() const { return isaCoder_.mask(); }

  private:
    /** Does scenario @p s apply coder chains to @p unit's data path? */
    const coder::CoderChain &chainFor(coder::Scenario s,
                                      coder::UnitId unit) const;

    bool isaApplies(coder::Scenario s) const;

    std::map<coder::UnitId, sram::UnitAccount> accounts_;
    AccountantOptions options_;
    coder::IsaCoder isaCoder_;

    // chains_[scenario][unit] -> chain (possibly empty).
    std::array<std::map<coder::UnitId, coder::CoderChain>,
               coder::numScenarios>
        chains_;

    // Per-channel, per-scenario previous flit for toggle counting.
    struct ChannelState
    {
        std::array<std::vector<Word>, coder::numScenarios> prev;
    };
    std::map<int, ChannelState> channels_;
    std::array<NocAccount, coder::numScenarios> noc_;

    mutable std::vector<Word> scratch_;
};

} // namespace bvf::core

#endif // BVF_CORE_ACCOUNTANT_HH
