/**
 * @file
 * Exhaustive VS register-pivot sweep over one run's accesses.
 *
 * An AccessSink that VS-encodes every register-file block once per
 * candidate pivot lane and accumulates the encoded one/bit counts, so a
 * single simulation yields the measured coded density of all 32 pivot
 * choices. This is the dynamic ground truth the static advisor
 * (analysis/advisor.hh) is checked against: every measured per-pivot
 * ratio must land inside the advisor's proven interval, and the
 * dynamically best pivot may beat the statically advised one by at most
 * the proven slack.
 *
 * Accounting semantics match EnergyAccountant::onAccess exactly: the
 * full block (stale lanes included) is encoded, and only active-lane
 * words are counted.
 */

#ifndef BVF_CORE_PIVOT_SWEEP_HH
#define BVF_CORE_PIVOT_SWEEP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "coder/vs_coder.hh"
#include "sram/access_sink.hh"

namespace bvf::core
{

/** Measured encoded-bit statistics for one pivot choice. */
struct PivotCount
{
    std::uint64_t ones = 0;
    std::uint64_t bits = 0;

    double
    density() const
    {
        return bits == 0 ? 0.0 : static_cast<double>(ones)
                                     / static_cast<double>(bits);
    }
};

/** Sweeps all 32 VS pivots over the register-file access stream. */
class PivotSweepSink : public sram::AccessSink
{
  public:
    PivotSweepSink();

    void onAccess(coder::UnitId unit, sram::AccessType type,
                  std::span<const Word> block, std::uint32_t activeMask,
                  std::uint64_t cycle) override;

    void
    onFetch(coder::UnitId, sram::AccessType, std::span<const Word64>,
            std::uint64_t) override
    {}

    void
    onNocPacket(int, std::span<const Word>, bool, std::uint64_t) override
    {}

    /** Measured counts for pivot lane @p pivot. */
    const PivotCount &
    count(int pivot) const
    {
        return counts_[static_cast<std::size_t>(pivot)];
    }

    /** Register accesses observed (all pivots see the same stream). */
    std::uint64_t accesses() const { return accesses_; }

    /**
     * Pivot lane with the greatest measured one-density (ties resolve
     * to the lowest lane). Meaningless while accesses() == 0.
     */
    int bestMeasuredPivot() const;

  private:
    std::array<PivotCount, 32> counts_{};
    std::uint64_t accesses_ = 0;
    std::vector<Word> scratch_;
};

} // namespace bvf::core

#endif // BVF_CORE_PIVOT_SWEEP_HH
