/**
 * @file
 * Runtime enforcement of an admission certificate.
 *
 * A kernel admitted by the static verifier (analysis/verifier.hh)
 * carries a Certificate: a proven per-warp instruction-issue bound and
 * per-space memory footprints. The ContractProbe hangs off the SM's
 * ExecProbe hook and checks every issued instruction against that
 * certificate while the kernel runs. A violation is by definition a
 * verifier soundness bug -- the verifier claimed a bound the machine
 * exceeded -- so the probe aborts loudly via fatal() instead of
 * tolerating it; runProgramChecked turns that into a structured error
 * without killing a serving process.
 */

#ifndef BVF_CORE_CONTRACT_HH
#define BVF_CORE_CONTRACT_HH

#include <cstdint>
#include <unordered_map>

#include "analysis/verifier.hh"
#include "gpu/sm.hh"

namespace bvf::core
{

/** Enforces one admitted kernel's certificate during simulation. */
class ContractProbe : public gpu::ExecProbe
{
  public:
    explicit ContractProbe(analysis::Certificate certificate)
        : cert_(certificate)
    {
    }

    void onIssue(int smId, int pc, const isa::Instruction &instr,
                 const gpu::Warp &warp, std::uint32_t guard,
                 std::uint64_t cycle) override;

    /** Largest per-warp issue count observed so far. */
    std::uint64_t maxIssued() const { return maxIssued_; }

    /** Memory accesses checked against a footprint so far. */
    std::uint64_t checkedAccesses() const { return checkedAccesses_; }

    const analysis::Certificate &certificate() const { return cert_; }

  private:
    struct WarpTally
    {
        std::uint64_t issued = 0;
        int lastPc = -1; //!< stall-retry dedup for memory instructions
    };

    analysis::Certificate cert_;
    std::unordered_map<std::uint64_t, WarpTally> tallies_;
    std::uint64_t maxIssued_ = 0;
    std::uint64_t checkedAccesses_ = 0;
};

} // namespace bvf::core

#endif // BVF_CORE_CONTRACT_HH
