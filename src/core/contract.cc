/**
 * @file
 * Certificate enforcement implementation.
 */

#include "core/contract.hh"

#include "common/logging.hh"
#include "gpu/warp.hh"
#include "isa/opcode.hh"

namespace bvf::core
{

void
ContractProbe::onIssue(int smId, int pc, const isa::Instruction &instr,
                       const gpu::Warp &warp, std::uint32_t guard,
                       std::uint64_t cycle)
{
    (void)smId;
    (void)cycle;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(
             static_cast<std::uint32_t>(warp.blockId()))
         << 32)
        | static_cast<std::uint32_t>(warp.warpIdInBlock());
    WarpTally &tally = tallies_[key];

    // A memory instruction that stalls structurally re-fires the probe
    // on its retry; two consecutive probe firings from one warp at one
    // memory pc are the same architectural issue (a genuine loop
    // revisit always issues the backward branch in between).
    const bool retry =
        isa::isMemoryOp(instr.op) && tally.lastPc == pc;
    tally.lastPc = pc;
    if (retry)
        return;

    ++tally.issued;
    if (tally.issued > maxIssued_)
        maxIssued_ = tally.issued;
    fatal_if(tally.issued > cert_.warpTripBound,
             "verifier contract violated: warp %d of block %d issued "
             "%llu instructions, certificate bound %llu (pc %d)",
             warp.warpIdInBlock(), warp.blockId(),
             static_cast<unsigned long long>(tally.issued),
             static_cast<unsigned long long>(cert_.warpTripBound), pc);

    if (!isa::isMemoryOp(instr.op) || guard == 0)
        return;

    // The scoreboard held this warp until the address register was
    // written back, so reg(lane, srcA) is the architectural value.
    const analysis::FootprintBounds &fp = [&]() -> const auto & {
        switch (instr.op) {
          case isa::Opcode::Lds:
          case isa::Opcode::Sts: return cert_.shared;
          case isa::Opcode::Ldc: return cert_.constant;
          case isa::Opcode::Ldt: return cert_.texture;
          default: return cert_.global;
        }
    }();
    for (int lane = 0; lane < gpu::warpSize; ++lane) {
        if (!((guard >> lane) & 1u))
            continue;
        const std::uint32_t addr =
            warp.reg(lane, instr.srcA)
            + static_cast<std::uint32_t>(instr.imm);
        ++checkedAccesses_;
        fatal_if(!fp.contains(addr),
                 "verifier contract violated: %s at pc %d touches byte "
                 "%u outside the proven footprint [%u, %u]",
                 isa::opcodeName(instr.op).c_str(), pc, addr, fp.lo,
                 fp.hi);
    }
}

} // namespace bvf::core
