/**
 * @file
 * Data/instruction profilers replicating the paper's characterization
 * passes (Figures 8, 9, 11, 12 and 14).
 *
 * These run on the workload value streams directly (the paper used PTX
 * "clz" instrumentation on a Tesla P100): global load/store values for
 * narrow-value and 0/1-ratio statistics, warp-shaped register tiles for
 * per-lane Hamming distance, and assembled kernel binaries for the
 * per-bit-position instruction statistics that feed Table 2.
 */

#ifndef BVF_CORE_PROFILER_HH
#define BVF_CORE_PROFILER_HH

#include <array>
#include <string>
#include <vector>

#include "isa/encoding.hh"
#include "workload/app_spec.hh"

namespace bvf::core
{

/** Figure 8/9 statistics for one application. */
struct ValueProfileResult
{
    std::string abbr;
    double meanLeadingZeros = 0.0; //!< sign-adjusted, of 32 (Fig. 8)
    double meanZeroBits = 0.0;     //!< zeros per 32-bit word (Fig. 9)
    double zeroValueFrac = 0.0;    //!< P(word == 0)
};

/** Figure 11/12 statistics for one application. */
struct LaneProfileResult
{
    std::string abbr;
    /** Mean Hamming distance of lane i to the other 31 lanes. */
    std::array<double, 32> lanePairDistance{};
    int optimalLane = 0;    //!< argmin of lanePairDistance
    double lane21Excess = 0.0; //!< lane21 distance / optimal distance
};

/**
 * Profile @p samples warp tiles of an application's value stream.
 */
ValueProfileResult profileValues(const workload::AppSpec &spec,
                                 int samples = 4000);

/** Profile inter-lane Hamming distances (Figs. 11/12). */
LaneProfileResult profileLanes(const workload::AppSpec &spec,
                               int samples = 4000);

/** Suite-mean per-lane distances, normalized to the maximum lane. */
std::array<double, 32> suiteLaneProfile(int samplesPerApp = 2000);

/**
 * Assemble every suite application for @p arch and extract the
 * statistical preference mask over all instruction binaries (Table 2).
 */
Word64 suiteIsaMask(isa::GpuArch arch);

/** Per-bit-position P(bit==1) over the suite's binaries (Fig. 14). */
std::vector<double> suiteBitProbabilities(isa::GpuArch arch);

/** Total instruction binaries in the suite corpus for @p arch. */
std::size_t suiteCorpusSize(isa::GpuArch arch);

} // namespace bvf::core

#endif // BVF_CORE_PROFILER_HH
