/**
 * @file
 * H-tree implementation.
 */

#include "circuit/htree.hh"

#include "common/logging.hh"

namespace bvf::circuit
{

HTree::HTree(const TechParams &tech, double vdd, int leaves,
             double matSide, int busBits)
    : tech_(tech), vdd_(vdd), busBits_(busBits)
{
    fatal_if(leaves <= 0 || (leaves & (leaves - 1)) != 0,
             "H-tree leaves must be a power of two");
    fatal_if(matSide <= 0.0, "mat side must be positive");
    fatal_if(busBits <= 0, "bus width must be positive");

    // Root segment spans half the mat; each level halves, alternating
    // the traversal axis (classic H recursion keeps the same halving
    // in total path length).
    int levels = 0;
    for (int n = leaves; n > 1; n >>= 1)
        ++levels;
    double len = matSide / 2.0;
    for (int l = 0; l < levels; ++l) {
        segments_.push_back(len);
        len /= 2.0;
    }
    if (segments_.empty())
        segments_.push_back(matSide / 4.0); // degenerate single leaf
}

double
HTree::segmentLength(int level) const
{
    panic_if(level < 0 || level >= levels(), "level out of range");
    return segments_[static_cast<std::size_t>(level)];
}

double
HTree::segmentCap(int level) const
{
    return tech_.wireCapPerLength * segmentLength(level);
}

double
HTree::pathCap() const
{
    double cap = 0.0;
    for (int l = 0; l < levels(); ++l)
        cap += segmentCap(l);
    return cap;
}

double
HTree::transferEnergy(int toggledBits) const
{
    panic_if(toggledBits < 0 || toggledBits > busBits_,
             "toggled bits out of range");
    // Each toggled wire swings the full root-to-leaf path.
    return static_cast<double>(toggledBits) * pathCap() * vdd_ * vdd_;
}

double
HTree::streamEnergy(std::span<const Word> words) const
{
    // Words stream over a 32-wire slice of the bus; every toggled wire
    // swings the full root-to-leaf path.
    double energy = 0.0;
    Word prev = 0; // wires start discharged
    for (const Word w : words) {
        energy += static_cast<double>(hammingDistance(prev, w))
                  * pathCap() * vdd_ * vdd_;
        prev = w;
    }
    return energy;
}

} // namespace bvf::circuit
