/**
 * @file
 * Bitline capacitance extraction.
 */

#include "circuit/bitline.hh"

#include "common/logging.hh"

namespace bvf::circuit
{

Bitline::Bitline(const TechParams &tech, int cellsPerBitline,
                 double accessWidthMultiple)
    : tech_(tech), cells_(cellsPerBitline)
{
    panic_if(cellsPerBitline <= 0, "bitline needs at least one cell");
    const Mosfet access(tech, MosType::Nmos, accessWidthMultiple);
    const double wire_cap =
        tech.wireCapPerLength * tech.cellHeight * cellsPerBitline;
    const double drain_cap = access.drainCap() * cellsPerBitline;
    cap_ = wire_cap + drain_cap;
}

} // namespace bvf::circuit
