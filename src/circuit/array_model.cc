/**
 * @file
 * Array-level energy composition.
 */

#include "circuit/array_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace bvf::circuit
{

ArrayModel::ArrayModel(CellKind kind, const TechParams &tech, double vdd,
                       ArrayGeometry geom)
    : geom_(geom), cell_(makeCellModel(kind, tech, vdd,
                                       geom.cellsPerBitline,
                                       geom.allowUnreliable))
{
    fatal_if(geom.sets <= 0 || geom.blockBytes <= 0,
             "array geometry must be positive");

    // Row decode scales ~log2(sets); H-tree distribution grows with the
    // physical word path across the mat (width of the accessed block and
    // the square root of total array bits).
    const double decode = tech.scaleDynamic(tech.decoderEnergyAtNominal, vdd)
                          * std::log2(std::max(2, geom.sets));
    const double bits = static_cast<double>(totalBits());
    const double htree_wire_len =
        std::sqrt(bits) * tech.cellWidth * 0.5;
    const double htree =
        tech.wireCapPerLength * htree_wire_len * vdd * vdd
        * (geom.wordBits() / 32.0);
    fixedAccess_ = decode + htree;
}

AccessEnergy
ArrayModel::readBits(int ones, int width) const
{
    panic_if(ones < 0 || ones > width, "bad bit count");
    AccessEnergy e;
    e.fixedPart = fixedAccess_ * (static_cast<double>(width)
                                  / geom_.wordBits());
    e.bitPart = ones * cell_->readEnergy(1)
                + (width - ones) * cell_->readEnergy(0);
    e.total = e.fixedPart + e.bitPart;
    return e;
}

AccessEnergy
ArrayModel::writeBits(int ones, int width) const
{
    panic_if(ones < 0 || ones > width, "bad bit count");
    AccessEnergy e;
    e.fixedPart = fixedAccess_ * (static_cast<double>(width)
                                  / geom_.wordBits());
    e.bitPart = ones * cell_->writeEnergy(1)
                + (width - ones) * cell_->writeEnergy(0);
    e.total = e.fixedPart + e.bitPart;
    return e;
}

AccessEnergy
ArrayModel::readWord(Word word) const
{
    return readBits(hammingWeight(word), 32);
}

AccessEnergy
ArrayModel::writeWord(Word word) const
{
    return writeBits(hammingWeight(word), 32);
}

double
ArrayModel::holdPower(double onesFraction) const
{
    panic_if(onesFraction < 0.0 || onesFraction > 1.0,
             "onesFraction out of range");
    const double bits = static_cast<double>(totalBits());
    return bits * (onesFraction * cell_->holdLeakage(1)
                   + (1.0 - onesFraction) * cell_->holdLeakage(0));
}

long
ArrayModel::totalBits() const
{
    return static_cast<long>(geom_.sets) * geom_.blockBytes * 8;
}

double
ArrayModel::area() const
{
    // Cell area plus ~18% periphery.
    return static_cast<double>(totalBits()) * cell_->cellArea() * 1.18;
}

} // namespace bvf::circuit
