/**
 * @file
 * H-tree data-distribution network model.
 *
 * Large SRAM arrays are partitioned into banks/mats/subarrays connected
 * by a binary H-tree (Section 3.2 of the paper; CACTI's organization).
 * Data words traverse log2(leaves) levels of wire segments between the
 * array port and the accessed subarray; each level's segment halves in
 * length. Like the NoC, H-tree wires burn energy on *toggles*, so the
 * same bit-value coding that helps the bitlines also quiets the tree.
 *
 * The ArrayModel uses a lumped version of this for its fixed access
 * cost; this class exposes the structure explicitly for studies that
 * care about distribution-network energy in isolation.
 */

#ifndef BVF_CIRCUIT_HTREE_HH
#define BVF_CIRCUIT_HTREE_HH

#include <cstdint>
#include <vector>

#include "circuit/technology.hh"
#include "common/bitops.hh"

namespace bvf::circuit
{

/**
 * A binary H-tree over @p leaves subarrays spanning a square mat.
 */
class HTree
{
  public:
    /**
     * @param tech technology parameters
     * @param vdd supply voltage [V]
     * @param leaves number of subarrays (power of two)
     * @param matSide physical side length of the mat [m]
     * @param busBits width of the data bus on every level
     */
    HTree(const TechParams &tech, double vdd, int leaves, double matSide,
          int busBits = 128);

    /** Number of tree levels (log2 of leaves). */
    int levels() const { return static_cast<int>(segments_.size()); }

    /** Wire length of one segment at @p level (0 = root) [m]. */
    double segmentLength(int level) const;

    /** Capacitance of one bus wire segment at @p level [F]. */
    double segmentCap(int level) const;

    /** Total root-to-leaf wire capacitance of one bus wire [F]. */
    double pathCap() const;

    /**
     * Energy to move one word to/from a leaf, given how many bus wires
     * toggle: E = toggles/busBits * pathCap * Vdd^2 per word-width
     * slice of the bus.
     *
     * @param toggledBits wires that change level this transfer
     */
    double transferEnergy(int toggledBits) const;

    /**
     * Energy for a sequence of words sent back to back along the same
     * path (toggle-exact, like the NoC accounting).
     */
    double streamEnergy(std::span<const Word> words) const;

    int busBits() const { return busBits_; }

  private:
    const TechParams &tech_;
    double vdd_;
    int busBits_;
    std::vector<double> segments_; //!< per-level segment length [m]
};

} // namespace bvf::circuit

#endif // BVF_CIRCUIT_HTREE_HH
