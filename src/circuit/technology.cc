/**
 * @file
 * Technology parameter tables.
 */

#include "circuit/technology.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace bvf::circuit
{

std::string
techNodeName(TechNode node)
{
    switch (node) {
      case TechNode::N28:
        return "28nm";
      case TechNode::N40:
        return "40nm";
    }
    panic("unknown tech node");
}

namespace
{

// Constants below are analytic PDK stand-ins (see file header in
// technology.hh). Capacitances follow ITRS-era scaling between the two
// nodes; leakage constants are fitted so hold-state ratios match the
// paper's Spectre results.
const TechParams params28 = {
    .node = TechNode::N28,
    .featureSize = nano(28),
    .vddNominal = 1.2,
    .vddNearThreshold = 0.6,
    .vth = 0.38,
    .gateCapPerWidth = 1.05e-9,           // ~1.05 fF/um
    .drainCapPerWidth = 0.60e-9,          // ~0.60 fF/um
    .wireCapPerLength = 0.18e-9,          // ~0.18 fF/um local metal
    .cellHeight = nano(210),
    .cellWidth = nano(500),
    .ioffPerWidth = 0.55e-3,              // ~3.8 nA/um at nominal
    .draginFactor = 0.10,
    .minWidthNmos = nano(90),
    .minWidthPmos = nano(120),
    .senseAmpEnergyAtNominal = femto(2.6),
    .decoderEnergyAtNominal = femto(9.0),
};

const TechParams params40 = {
    .node = TechNode::N40,
    .featureSize = nano(40),
    .vddNominal = 1.2,
    .vddNearThreshold = 0.6,
    .vth = 0.42,
    .gateCapPerWidth = 1.20e-9,           // ~1.20 fF/um
    .drainCapPerWidth = 0.72e-9,          // ~0.72 fF/um
    .wireCapPerLength = 0.21e-9,          // ~0.21 fF/um local metal
    .cellHeight = nano(300),
    .cellWidth = nano(710),
    .ioffPerWidth = 0.35e-3,              // ~2.4 nA/um at nominal
    .draginFactor = 0.09,
    .minWidthNmos = nano(120),
    .minWidthPmos = nano(160),
    .senseAmpEnergyAtNominal = femto(3.1),
    .decoderEnergyAtNominal = femto(10.5),
};

} // namespace

const TechParams &
techParams(TechNode node)
{
    switch (node) {
      case TechNode::N28:
        return params28;
      case TechNode::N40:
        return params40;
    }
    panic("unknown tech node");
}

} // namespace bvf::circuit
