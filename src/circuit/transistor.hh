/**
 * @file
 * Minimal MOSFET model used by the cell and transient simulations.
 *
 * The model is an alpha-power-law drain current with a simple
 * subthreshold-exponential leakage tail -- enough fidelity to compare
 * relative cell energies and to integrate read-disturb transients, while
 * staying far from a real SPICE model (which we do not have; see
 * DESIGN.md).
 */

#ifndef BVF_CIRCUIT_TRANSISTOR_HH
#define BVF_CIRCUIT_TRANSISTOR_HH

#include "circuit/technology.hh"

namespace bvf::circuit
{

/** Transistor polarity. */
enum class MosType
{
    Nmos,
    Pmos,
};

/**
 * A sized MOSFET instance in a given technology.
 *
 * Currents are positive magnitudes; callers apply sign conventions.
 */
class Mosfet
{
  public:
    /**
     * @param tech technology parameter set
     * @param type polarity
     * @param widthMultiple width as a multiple of the minimum width
     */
    Mosfet(const TechParams &tech, MosType type, double widthMultiple = 1.0);

    MosType type() const { return type_; }

    /** Physical gate width [m]. */
    double width() const { return width_; }

    /** Gate capacitance [F]. */
    double gateCap() const;

    /** Drain junction capacitance [F]. */
    double drainCap() const;

    /**
     * Drain current magnitude for gate overdrive and drain bias, using
     * the alpha-power law (alpha = 1.3 for short-channel devices).
     *
     * @param vgs gate-source voltage magnitude [V]
     * @param vds drain-source voltage magnitude [V]
     * @return current magnitude [A]
     */
    double drainCurrent(double vgs, double vds) const;

    /**
     * Subthreshold (off-state) leakage current magnitude with the gate
     * off and @p vds across the channel [A].
     */
    double offCurrent(double vds) const;

    /** Effective threshold voltage [V]. */
    double vth() const { return vth_; }

  private:
    const TechParams &tech_;
    MosType type_;
    double width_;
    double vth_;
    double kSat_; //!< saturation transconductance factor [A/V^alpha]
};

} // namespace bvf::circuit

#endif // BVF_CIRCUIT_TRANSISTOR_HH
