/**
 * @file
 * Transient read-disturb simulation for the BVF-6T speculation
 * (Section 7.1 of the paper).
 *
 * A 6T cell with the BVF asymmetric precharge (BL at Vdd, /BL at ground)
 * performs a destructive differential read. When the cell stores 0, the
 * high BL injects charge into the low storage node through the access
 * transistor; if the bitline capacitance (which grows with cells per
 * bitline) is large enough, the node is dragged past the inverter trip
 * point before the cell's pull-down can win, flipping the stored value.
 *
 * This module integrates the two storage-node voltages with forward Euler
 * against simple MOSFET I-V curves and reports whether the read was
 * stable. The paper's finding -- flips appear beyond 16 cells/bitline at
 * 28nm -- is the calibration target (see tests).
 */

#ifndef BVF_CIRCUIT_READ_DISTURB_HH
#define BVF_CIRCUIT_READ_DISTURB_HH

#include "circuit/technology.hh"

namespace bvf::circuit
{

/** Result of one simulated read transient. */
struct ReadDisturbResult
{
    bool flipped = false;   //!< did the stored value flip?
    double peakNodeV = 0.0; //!< highest excursion of the low node [V]
    double finalNodeV = 0.0; //!< low-node voltage at the end [V]
    int steps = 0;          //!< integration steps executed
};

/**
 * Forward-Euler transient simulator of a 6T cell under a read with a
 * selectable precharge scheme.
 */
class ReadDisturbSim
{
  public:
    /**
     * @param tech technology parameters
     * @param vdd supply voltage [V]
     */
    ReadDisturbSim(const TechParams &tech, double vdd);

    /**
     * Simulate a read of a cell storing 0 under the BVF precharge
     * (BL = Vdd, /BL = 0).
     *
     * @param cellsPerBitline column height; sets bitline capacitance
     * @param duration simulated wordline pulse [s]
     * @param dt integration step [s]
     */
    ReadDisturbResult simulateBvfRead0(int cellsPerBitline,
                                       double duration = 1.2e-9,
                                       double dt = 1.0e-12) const;

    /**
     * Simulate a read under the conventional precharge (both lines at
     * Vdd); used as the stability reference.
     */
    ReadDisturbResult simulateConventionalRead0(int cellsPerBitline,
                                                double duration = 1.2e-9,
                                                double dt = 1.0e-12) const;

    /**
     * Smallest cells/bitline at which the BVF read-0 flips the cell, or
     * -1 if none up to @p maxCells.
     */
    int findFlipThreshold(int maxCells = 256) const;

  private:
    ReadDisturbResult simulate(int cellsPerBitline, double blInit,
                               double blbInit, double duration,
                               double dt) const;

    const TechParams &tech_;
    double vdd_;
};

} // namespace bvf::circuit

#endif // BVF_CIRCUIT_READ_DISTURB_HH
