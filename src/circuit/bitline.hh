/**
 * @file
 * Bitline electrical model.
 *
 * A bitline is shared by every cell in a column; its capacitance (wire
 * plus the drain junctions of all attached access devices) dominates
 * array dynamic power -- the paper cites >50% of SRAM dynamic power in
 * bitlines. Read/write energy asymmetry in BVF cells is entirely a story
 * about which bitlines swing, so this model is the heart of the circuit
 * layer.
 */

#ifndef BVF_CIRCUIT_BITLINE_HH
#define BVF_CIRCUIT_BITLINE_HH

#include "circuit/technology.hh"
#include "circuit/transistor.hh"

namespace bvf::circuit
{

/**
 * One column bitline with @p cellsPerBitline attached access devices.
 */
class Bitline
{
  public:
    /**
     * @param tech technology parameters
     * @param cellsPerBitline number of cells sharing this bitline
     * @param accessWidthMultiple width multiple of the per-cell access
     *        transistor whose drain loads the line
     */
    Bitline(const TechParams &tech, int cellsPerBitline,
            double accessWidthMultiple = 1.0);

    /** Total capacitance: wire + attached drains [F]. */
    double capacitance() const { return cap_; }

    /** Number of attached cells. */
    int cells() const { return cells_; }

    /**
     * Energy to swing the line through @p swing volts and restore it,
     * with the supply at @p vdd: E = C * Vdd * swing.
     */
    double
    swingEnergy(double vdd, double swing) const
    {
        return cap_ * vdd * swing;
    }

    /** Energy for a full-rail discharge + precharge cycle at @p vdd. */
    double
    fullSwingEnergy(double vdd) const
    {
        return cap_ * vdd * vdd;
    }

    /**
     * Differential sensing swing developed before the sense amp fires
     * [V]. Small-signal reads on 6T arrays only discharge the line by
     * this much.
     */
    static constexpr double senseSwing = 0.13;

  private:
    const TechParams &tech_;
    int cells_;
    double cap_;
};

} // namespace bvf::circuit

#endif // BVF_CIRCUIT_BITLINE_HH
