/**
 * @file
 * SRAM array energy model.
 *
 * Composes the per-bit cell model with word-level overheads (row decode,
 * wordline drive, H-tree data distribution) into the per-access energy a
 * whole array sees. This is the interface the architecture layer consumes:
 * given a data word and an operation, how much energy does the access
 * cost, bit values considered.
 */

#ifndef BVF_CIRCUIT_ARRAY_MODEL_HH
#define BVF_CIRCUIT_ARRAY_MODEL_HH

#include <memory>

#include "circuit/mem_cell.hh"
#include "common/bitops.hh"

namespace bvf::circuit
{

/** Geometry of one SRAM array (a bank in the architecture layer). */
struct ArrayGeometry
{
    int sets = 32;           //!< number of decoded rows
    int blockBytes = 16;     //!< bytes delivered per access
    int cellsPerBitline = 128; //!< column height (mat partitioning)

    /**
     * Build BVF-6T columns past the Section 7.1 reliability limit
     * instead of fataling. Only fault studies that model the resulting
     * read disturb explicitly should set this.
     */
    bool allowUnreliable = false;

    int wordBits() const { return blockBytes * 8; }
};

/**
 * Per-access energy summary for a data word, split so callers can
 * attribute cost to values vs overheads.
 */
struct AccessEnergy
{
    double total = 0.0;    //!< full access energy [J]
    double bitPart = 0.0;  //!< value-dependent bitline part [J]
    double fixedPart = 0.0; //!< decode/wordline/htree part [J]
};

/**
 * Energy model of a complete array built from one cell family.
 */
class ArrayModel
{
  public:
    /**
     * @param kind cell family
     * @param tech technology parameters
     * @param vdd supply voltage [V]
     * @param geom array geometry
     */
    ArrayModel(CellKind kind, const TechParams &tech, double vdd,
               ArrayGeometry geom);

    /** Energy to read @p word (32 bits of it) from the array. */
    AccessEnergy readWord(Word word) const;

    /** Energy to write @p word into the array. */
    AccessEnergy writeWord(Word word) const;

    /** Read energy for a w-bit word with @p ones bits set. */
    AccessEnergy readBits(int ones, int width) const;

    /** Write energy for a w-bit word with @p ones bits set. */
    AccessEnergy writeBits(int ones, int width) const;

    /** Leakage power of the whole array holding @p onesFraction 1s. */
    double holdPower(double onesFraction) const;

    /** Per-bit read energy for value @p bit; exposes the raw asymmetry. */
    double bitReadEnergy(int bit) const { return cell_->readEnergy(bit); }

    /** Per-bit write energy for value @p bit. */
    double bitWriteEnergy(int bit) const { return cell_->writeEnergy(bit); }

    /** Per-bit hold leakage for value @p bit [W]. */
    double bitHoldLeakage(int bit) const { return cell_->holdLeakage(bit); }

    /** Fixed word overhead (decode + wordline + H-tree) per access [J]. */
    double fixedAccessEnergy() const { return fixedAccess_; }

    /** Total bits stored in the array. */
    long totalBits() const;

    /** Array silicon area [m^2]. */
    double area() const;

    const ArrayGeometry &geometry() const { return geom_; }
    const MemCellModel &cell() const { return *cell_; }
    double vdd() const { return cell_->vdd(); }

  private:
    ArrayGeometry geom_;
    std::unique_ptr<MemCellModel> cell_;
    double fixedAccess_; //!< decode + wordline + H-tree energy [J]
};

} // namespace bvf::circuit

#endif // BVF_CIRCUIT_ARRAY_MODEL_HH
