/**
 * @file
 * Forward-Euler transient integration of a 6T read.
 *
 * State: the two storage nodes (q, qb) and the two bitlines (bl, blb).
 * Devices: cross-coupled inverters (P0/N0 drive q, P1/N1 drive qb) and
 * access transistors (N2: q<->bl, N3: qb<->blb) with the wordline high.
 * The integration uses a per-step voltage clamp so the stiff internal
 * nodes settle quasi-statically while the bitlines evolve on their RC
 * timescale.
 */

#include "circuit/read_disturb.hh"

#include <algorithm>
#include <cmath>

#include "circuit/bitline.hh"
#include "circuit/transistor.hh"
#include "common/logging.hh"

namespace bvf::circuit
{

namespace
{

/** Signed current into @p node from @p other through an NMOS pass gate. */
double
passCurrent(const Mosfet &dev, double gate, double node, double other)
{
    // Source is the lower terminal for an NMOS.
    const double lo = std::min(node, other);
    const double hi = std::max(node, other);
    const double i = dev.drainCurrent(gate - lo, hi - lo);
    return other > node ? i : -i;
}

} // namespace

ReadDisturbSim::ReadDisturbSim(const TechParams &tech, double vdd)
    : tech_(tech), vdd_(vdd)
{
    fatal_if(vdd <= 0.0, "vdd must be positive");
}

ReadDisturbResult
ReadDisturbSim::simulate(int cellsPerBitline, double blInit, double blbInit,
                         double duration, double dt) const
{
    fatal_if(cellsPerBitline <= 0, "need at least one cell per bitline");

    // High-performance 6T sizing (strengthened access devices, as the
    // BVF-6T speculation would use for speed); calibrated so the flip
    // threshold lands at the paper's ">16 cells per bitline".
    const Mosfet pullDown(tech_, MosType::Nmos, 1.5);
    const Mosfet pullUp(tech_, MosType::Pmos, 0.90);
    const Mosfet access(tech_, MosType::Nmos, 1.35);

    const Bitline bl_model(tech_, cellsPerBitline, 1.0);
    const double c_bl = bl_model.capacitance();
    // Storage node: gate caps of the opposite inverter plus local drains.
    const double c_node = pullDown.gateCap() + pullUp.gateCap()
                          + pullDown.drainCap() + pullUp.drainCap();

    // Cell stores 0: q = 0, qb = Vdd.
    double q = 0.0, qb = vdd_;
    double bl = blInit, blb = blbInit;

    ReadDisturbResult res;
    const double v_clamp = 0.02 * vdd_; // max node excursion per step

    const int steps = static_cast<int>(duration / dt);
    for (int s = 0; s < steps; ++s) {
        // Inverter driving q: gate is qb.
        const double i_pu_q = pullUp.drainCurrent(vdd_ - qb, vdd_ - q);
        const double i_pd_q = pullDown.drainCurrent(qb, q);
        // Inverter driving qb: gate is q.
        const double i_pu_qb = pullUp.drainCurrent(vdd_ - q, vdd_ - qb);
        const double i_pd_qb = pullDown.drainCurrent(q, qb);
        // Access devices, wordline at Vdd.
        const double i_acc_q = passCurrent(access, vdd_, q, bl);
        const double i_acc_qb = passCurrent(access, vdd_, qb, blb);

        const double dq = (i_pu_q - i_pd_q + i_acc_q) / c_node * dt;
        const double dqb = (i_pu_qb - i_pd_qb + i_acc_qb) / c_node * dt;
        const double dbl = -i_acc_q / c_bl * dt;
        const double dblb = -i_acc_qb / c_bl * dt;

        q += std::clamp(dq, -v_clamp, v_clamp);
        qb += std::clamp(dqb, -v_clamp, v_clamp);
        bl += std::clamp(dbl, -v_clamp, v_clamp);
        blb += std::clamp(dblb, -v_clamp, v_clamp);

        q = std::clamp(q, 0.0, vdd_);
        qb = std::clamp(qb, 0.0, vdd_);
        bl = std::clamp(bl, 0.0, vdd_);
        blb = std::clamp(blb, 0.0, vdd_);

        res.peakNodeV = std::max(res.peakNodeV, q);
        ++res.steps;

        // Early exit on a decisive flip.
        if (q > 0.9 * vdd_ && qb < 0.1 * vdd_)
            break;
    }

    res.finalNodeV = q;
    res.flipped = q > qb;
    return res;
}

ReadDisturbResult
ReadDisturbSim::simulateBvfRead0(int cellsPerBitline, double duration,
                                 double dt) const
{
    return simulate(cellsPerBitline, vdd_, 0.0, duration, dt);
}

ReadDisturbResult
ReadDisturbSim::simulateConventionalRead0(int cellsPerBitline,
                                          double duration, double dt) const
{
    return simulate(cellsPerBitline, vdd_, vdd_, duration, dt);
}

int
ReadDisturbSim::findFlipThreshold(int maxCells) const
{
    for (int cells = 1; cells <= maxCells; ++cells) {
        if (simulateBvfRead0(cells).flipped)
            return cells;
    }
    return -1;
}

} // namespace bvf::circuit
