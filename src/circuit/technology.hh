/**
 * @file
 * Process-technology parameter sets.
 *
 * The paper characterizes its SRAM designs with commercial 28nm and 40nm
 * PDKs under Cadence Spectre. We have no access to those kits, so this
 * module carries analytic stand-ins: per-node capacitance, threshold and
 * leakage constants chosen to land in the published ranges (see
 * DESIGN.md, substitution table). All downstream energy numbers are
 * derived from these constants; nothing else in the library hard-codes
 * process data.
 */

#ifndef BVF_CIRCUIT_TECHNOLOGY_HH
#define BVF_CIRCUIT_TECHNOLOGY_HH

#include <string>

namespace bvf::circuit
{

/** Supported process nodes. */
enum class TechNode
{
    N28, //!< 28nm planar bulk CMOS
    N40, //!< 40nm planar bulk CMOS
};

/** Human-readable node name, e.g. "28nm". */
std::string techNodeName(TechNode node);

/**
 * Per-node electrical constants.
 *
 * Units: meters, farads, volts, amperes unless noted. Values are analytic
 * stand-ins for PDK data, fitted so that cell-level energies reproduce the
 * paper's normalized Figures 5/6.
 */
struct TechParams
{
    TechNode node;
    double featureSize;      //!< drawn feature size [m]
    double vddNominal;       //!< nominal supply [V]
    double vddNearThreshold; //!< near-threshold supply usable by 8T [V]
    double vth;              //!< long-channel threshold voltage [V]

    double gateCapPerWidth;  //!< gate capacitance per unit width [F/m]
    double drainCapPerWidth; //!< drain junction cap per unit width [F/m]
    double wireCapPerLength; //!< local interconnect cap [F/m]
    double cellHeight;       //!< bitcell pitch along a bitline [m]
    double cellWidth;        //!< bitcell pitch along a wordline [m]

    double ioffPerWidth;     //!< subthreshold off-current at vddNominal [A/m]
    double draginFactor;     //!< DIBL-like leakage sensitivity to Vds [1/V]

    double minWidthNmos;     //!< minimum NMOS width [m]
    double minWidthPmos;     //!< minimum PMOS width [m]

    double senseAmpEnergyAtNominal;  //!< sense-amp fire energy at Vdd_nom [J]
    double decoderEnergyAtNominal;   //!< row-decoder energy per access [J]

    /** Scale a capacitive energy C*V^2 from nominal Vdd to @p vdd. */
    double
    scaleDynamic(double energyAtNominal, double vdd) const
    {
        const double r = vdd / vddNominal;
        return energyAtNominal * r * r;
    }
};

/** Canonical parameter set for a node. */
const TechParams &techParams(TechNode node);

} // namespace bvf::circuit

#endif // BVF_CIRCUIT_TECHNOLOGY_HH
