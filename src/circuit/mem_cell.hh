/**
 * @file
 * Memory-cell energy models: 6T SRAM, conventional 8T SRAM, the paper's
 * BVF 8T SRAM, a speculative BVF 6T variant (Section 7.1), and a 3T
 * gain-cell eDRAM (Section 7.2).
 *
 * Each model reports per-bit read and write energy as a function of the
 * bit value involved, plus hold (standby) leakage power as a function of
 * the stored value. The Bit-Value-Favor property is exactly this value
 * dependence:
 *
 *  - conventional 8T: read-1 cheap (RBL stays precharged), writes
 *    symmetric;
 *  - BVF 8T: additionally write-1 cheap (WBL precharged high, /WBL
 *    precharged low -- a correct speculation costs almost nothing, a miss
 *    swings both lines);
 *  - 6T: fully symmetric (differential small-swing read, one full-swing
 *    write line);
 *  - BVF 6T: same precharge trick on 6T; works electrically but the
 *    destructive read limits cells/bitline (see ReadDisturbSim);
 *  - eDRAM gain cell: single-ended read *and* write both favor 1.
 */

#ifndef BVF_CIRCUIT_MEM_CELL_HH
#define BVF_CIRCUIT_MEM_CELL_HH

#include <memory>
#include <string>

#include "circuit/bitline.hh"
#include "circuit/technology.hh"

namespace bvf::circuit
{

/** The modelled cell families. */
enum class CellKind
{
    Sram6T,
    Sram8T,     //!< conventional 8T
    SramBvf8T,  //!< paper's proposal
    SramBvf6T,  //!< Section 7.1 speculation
    Edram3T,    //!< Section 7.2 gain cell
};

/** Short display name, e.g. "BVF-8T". */
std::string cellKindName(CellKind kind);

/** True if the cell family exhibits any bit-value energy asymmetry. */
bool cellKindHasBvf(CellKind kind);

/**
 * Value-dependent per-bit access energy and hold leakage for one cell in
 * a column of @c cellsPerBitline cells.
 *
 * All energies are in joules, powers in watts, at the supply voltage the
 * model was built with.
 */
class MemCellModel
{
  public:
    virtual ~MemCellModel() = default;

    /** Energy to read one bit holding @p bit (0/1). */
    virtual double readEnergy(int bit) const = 0;

    /** Energy to write value @p bit (0/1) into one cell. */
    virtual double writeEnergy(int bit) const = 0;

    /** Standby leakage power while holding @p bit (0/1). */
    virtual double holdLeakage(int bit) const = 0;

    /** Cell family. */
    virtual CellKind kind() const = 0;

    /** Supply voltage the model was evaluated at [V]. */
    double vdd() const { return vdd_; }

    /** Technology the model was built for. */
    const TechParams &tech() const { return tech_; }

    /** Bitcell layout area [m^2], including the family's density penalty. */
    virtual double cellArea() const;

    /**
     * Can the family operate at @p vdd? 6T fails below ~0.9 V due to
     * read-stability / writability sizing conflicts; 8T reaches
     * near-threshold.
     */
    virtual bool operatesAt(double vdd) const;

  protected:
    MemCellModel(const TechParams &tech, double vdd, int cellsPerBitline);

    const TechParams &tech_;
    double vdd_;
    int cellsPerBitline_;
    Bitline bitline_;
    double wordlineEnergy_;  //!< per-access wordline charge [J]
    double baseHoldLeakage_; //!< reference per-cell leakage [W]
};

/**
 * Factory: build the energy model for @p kind at @p vdd with
 * @p cellsPerBitline cells sharing each column.
 *
 * @param allowUnreliable build BVF-6T columns past the Section 7.1
 *        reliability limit instead of fataling. Reserved for fault
 *        studies that model the resulting read disturb explicitly --
 *        regular machine configuration must keep the guard.
 */
std::unique_ptr<MemCellModel> makeCellModel(
    CellKind kind, const TechParams &tech, double vdd,
    int cellsPerBitline = 128, bool allowUnreliable = false);

} // namespace bvf::circuit

#endif // BVF_CIRCUIT_MEM_CELL_HH
