/**
 * @file
 * Alpha-power MOSFET model implementation.
 */

#include "circuit/transistor.hh"

#include <cmath>

#include "common/logging.hh"

namespace bvf::circuit
{

namespace
{

constexpr double alphaPower = 1.3;     // velocity-saturation exponent
constexpr double thermalVoltage = 0.026; // kT/q at ~300K [V]
constexpr double subthresholdSlope = 1.45; // ideality factor n

// NMOS carries roughly 1.5-2x the current of an equally sized PMOS; the
// paper leans on this (Section 6.3) to argue the BVF precharge NMOS costs
// no area. We use 1.8x.
constexpr double nmosMobilityRatio = 1.8;

} // namespace

Mosfet::Mosfet(const TechParams &tech, MosType type, double widthMultiple)
    : tech_(tech), type_(type)
{
    panic_if(widthMultiple <= 0.0, "transistor width must be positive");
    const double min_width = type == MosType::Nmos ? tech.minWidthNmos
                                                   : tech.minWidthPmos;
    width_ = min_width * widthMultiple;
    vth_ = tech.vth * (type == MosType::Pmos ? 1.05 : 1.0);

    // Fit kSat so a minimum-width NMOS delivers ~60 uA at nominal bias in
    // 28nm-class technology, scaling with width and mobility.
    const double base_current_per_width = 650.0; // A/m at full overdrive
    const double mobility = type == MosType::Nmos ? 1.0
                                                  : 1.0 / nmosMobilityRatio;
    const double overdrive = tech.vddNominal - vth_;
    kSat_ = base_current_per_width * width_ * mobility
            / std::pow(overdrive, alphaPower);
}

double
Mosfet::gateCap() const
{
    return tech_.gateCapPerWidth * width_;
}

double
Mosfet::drainCap() const
{
    return tech_.drainCapPerWidth * width_;
}

double
Mosfet::drainCurrent(double vgs, double vds) const
{
    const double overdrive = vgs - vth_;
    if (overdrive <= 0.0) {
        // Subthreshold conduction.
        const double exp_term =
            std::exp(overdrive / (subthresholdSlope * thermalVoltage));
        const double sat =
            1.0 - std::exp(-std::max(vds, 0.0) / thermalVoltage);
        return offCurrent(tech_.vddNominal) * exp_term * sat;
    }
    const double isat = kSat_ * std::pow(overdrive, alphaPower);
    // Linear region roll-off below saturation voltage.
    const double vdsat = overdrive * 0.8;
    if (vds >= vdsat || vdsat <= 0.0)
        return isat;
    const double x = vds / vdsat;
    return isat * x * (2.0 - x);
}

double
Mosfet::offCurrent(double vds) const
{
    const double mobility = type_ == MosType::Nmos ? 1.0
                                                   : 1.0 / nmosMobilityRatio;
    const double base = tech_.ioffPerWidth * width_ * mobility;
    // DIBL: leakage grows with drain bias; normalized at nominal Vdd.
    const double dibl =
        std::exp(tech_.draginFactor * (vds - tech_.vddNominal)
                 / thermalVoltage / subthresholdSlope * 0.1);
    return base * dibl * std::max(vds, 0.0) / tech_.vddNominal;
}

} // namespace bvf::circuit
