/**
 * @file
 * Cell energy-model implementations.
 *
 * Leakage multipliers marked "fit" are calibrated to the paper's Spectre
 * results: BVF-8T leaks 0.43% / 3.01% less than conventional 8T when
 * holding 0 / 1, and within BVF-8T holding 1 costs 9.61% less than
 * holding 0.
 */

#include "circuit/mem_cell.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace bvf::circuit
{

std::string
cellKindName(CellKind kind)
{
    switch (kind) {
      case CellKind::Sram6T:
        return "6T";
      case CellKind::Sram8T:
        return "Conv-8T";
      case CellKind::SramBvf8T:
        return "BVF-8T";
      case CellKind::SramBvf6T:
        return "BVF-6T";
      case CellKind::Edram3T:
        return "eDRAM-3T";
    }
    panic("unknown cell kind");
}

bool
cellKindHasBvf(CellKind kind)
{
    return kind != CellKind::Sram6T;
}

MemCellModel::MemCellModel(const TechParams &tech, double vdd,
                           int cellsPerBitline)
    : tech_(tech), vdd_(vdd), cellsPerBitline_(cellsPerBitline),
      bitline_(tech, cellsPerBitline)
{
    panic_if(vdd <= 0.0, "vdd must be positive");
    // Wordline: gate caps of the two access transistors of every cell on
    // the row are driven; amortized per accessed bit it is two gates.
    const Mosfet access(tech, MosType::Nmos, 1.2);
    wordlineEnergy_ = 2.0 * access.gateCap() * vdd * vdd;
    // Reference hold leakage: three off paths through min devices.
    const Mosfet min_n(tech, MosType::Nmos, 1.0);
    baseHoldLeakage_ = 3.0 * min_n.offCurrent(vdd) * vdd;
}

double
MemCellModel::cellArea() const
{
    return tech_.cellHeight * tech_.cellWidth;
}

bool
MemCellModel::operatesAt(double vdd) const
{
    return vdd >= 0.45;
}

namespace
{

/** Fixed per-bit overhead shared by all reads: sense amp + control. */
double
senseOverhead(const TechParams &tech, double vdd)
{
    return tech.scaleDynamic(tech.senseAmpEnergyAtNominal, vdd);
}

/** Write-driver overhead per bit. */
double
driverOverhead(const TechParams &tech, double vdd)
{
    return tech.scaleDynamic(tech.senseAmpEnergyAtNominal * 0.6, vdd);
}

/**
 * Conventional 6T cell: differential bitlines precharged high; reads
 * develop a small sensing swing on one line, writes pull one line to
 * ground. Both are value-independent.
 */
class Cell6T : public MemCellModel
{
  public:
    Cell6T(const TechParams &tech, double vdd, int cells)
        : MemCellModel(tech, vdd, cells)
    {}

    CellKind kind() const override { return CellKind::Sram6T; }

    double
    readEnergy(int) const override
    {
        // Differential read, symmetric in the stored value. At deeply
        // scaled nodes the ratioed 6T cell needs a large develop swing
        // and read-assist margin against variation (Section 2.1's
        // read-stability/writability conflict), so the discharged line
        // swings a substantial fraction of Vdd before restore.
        return wordlineEnergy_
               + bitline_.swingEnergy(vdd_, variationSwing())
               + senseOverhead(tech_, vdd_);
    }

    double
    writeEnergy(int) const override
    {
        // One of the precharged pair is driven to ground and restored;
        // write-assist (boosted drivers) adds ~50% on scaled nodes.
        return wordlineEnergy_ + 1.5 * bitline_.fullSwingEnergy(vdd_)
               + driverOverhead(tech_, vdd_);
    }

    double
    holdLeakage(int bit) const override
    {
        // Symmetric cell: both states leak equally (the paper's
        // framing). The ratioed cell is upsized for stability and both
        // bitlines idle at Vdd, leaking through both access devices,
        // which costs it ~2.6x the leakage of the read-decoupled 8T.
        (void)bit;
        return baseHoldLeakage_ * 2.6 * leakScale();
    }

    bool
    operatesAt(double vdd) const override
    {
        // 6T read stability collapses under deep voltage scaling.
        return vdd >= 0.9;
    }

  protected:
    /** Variation-tolerant develop swing on the read bitline [V]. */
    double variationSwing() const { return 0.55 * vdd_; }

    double
    leakScale() const
    {
        // Leakage drops superlinearly with Vdd (DIBL + gate leakage).
        const double r = vdd_ / tech_.vddNominal;
        return r * r * r;
    }
};

/**
 * Conventional 8T: write path identical to 6T; read through a decoupled
 * 2T buffer on a single-ended, full-swing RBL. Reading 0 discharges the
 * RBL (expensive); reading 1 leaves it precharged (cheap).
 */
class Cell8T : public MemCellModel
{
  public:
    Cell8T(const TechParams &tech, double vdd, int cells)
        : MemCellModel(tech, vdd, cells), readBitline_(tech, cells, 1.4)
    {}

    CellKind kind() const override { return CellKind::Sram8T; }

    double
    readEnergy(int bit) const override
    {
        const double fixed = wordlineEnergy_ * 0.5 // single read wordline
                             + senseOverhead(tech_, vdd_);
        if (bit == 0)
            return fixed + readBitline_.fullSwingEnergy(vdd_);
        // RBL stays at Vdd: only a small droop from charge sharing.
        return fixed + readBitline_.swingEnergy(vdd_, 0.05 * vdd_);
    }

    double
    writeEnergy(int) const override
    {
        return wordlineEnergy_ + bitline_.fullSwingEnergy(vdd_)
               + driverOverhead(tech_, vdd_);
    }

    double
    holdLeakage(int bit) const override
    {
        // The read buffer adds a stack whose leakage depends weakly on
        // the stored value. Multipliers fit to Spectre-reported ratios
        // (derived from BVF-8T numbers; see class Bvf8T).
        const double scale = leakScale();
        return bit ? baseHoldLeakage_ * 0.9285 * 1.12 * scale
                   : baseHoldLeakage_ * 1.12 * scale;
    }

    double
    cellArea() const override
    {
        return MemCellModel::cellArea() * 1.3; // ~30% over dense 6T
    }

  protected:
    double
    leakScale() const
    {
        const double r = vdd_ / tech_.vddNominal;
        return r * r * r;
    }

    Bitline readBitline_;
};

/**
 * The paper's BVF 8T: reads as Cell8T; the write precharge speculates on
 * value 1 by precharging WBL to Vdd and /WBL to ground. A hit (writing 1)
 * swings neither line; a miss (writing 0) swings both.
 */
class CellBvf8T : public Cell8T
{
  public:
    CellBvf8T(const TechParams &tech, double vdd, int cells)
        : Cell8T(tech, vdd, cells)
    {}

    CellKind kind() const override { return CellKind::SramBvf8T; }

    double
    writeEnergy(int bit) const override
    {
        const double fixed = wordlineEnergy_ + driverOverhead(tech_, vdd_);
        if (bit == 1) {
            // Speculation hit: bitlines already hold the target values;
            // only the internal cell nodes flip.
            return fixed + bitline_.swingEnergy(vdd_, 0.06 * vdd_);
        }
        // Miss: WBL discharges Vdd->0 and /WBL charges 0->Vdd.
        return fixed + 2.0 * bitline_.fullSwingEnergy(vdd_);
    }

    double
    holdLeakage(int bit) const override
    {
        // Grounded /WBL removes one leakage path. Fit targets:
        //   hold0 = conv8T.hold0 * (1 - 0.43%)
        //   hold1 = hold0 * (1 - 9.61%)  (==> -3.01% vs conv8T hold1)
        const double conv0 = Cell8T::holdLeakage(0);
        const double hold0 = conv0 * (1.0 - 0.0043);
        if (bit == 0)
            return hold0;
        return hold0 * (1.0 - 0.0961);
    }
};

/**
 * BVF 6T (Section 7.1): the same asymmetric precharge applied to a 6T
 * cell. Energy-wise it mirrors BVF-8T writes and gains a cheap read-1,
 * but the destructive differential read bounds cells/bitline (validated
 * by ReadDisturbSim; the array model refuses >16 cells per bitline).
 */
class CellBvf6T : public Cell6T
{
  public:
    CellBvf6T(const TechParams &tech, double vdd, int cells)
        : Cell6T(tech, vdd, cells)
    {}

    CellKind kind() const override { return CellKind::SramBvf6T; }

    double
    readEnergy(int bit) const override
    {
        const double fixed = wordlineEnergy_ + senseOverhead(tech_, vdd_);
        if (bit == 1)
            return fixed + bitline_.swingEnergy(vdd_, 0.05 * vdd_);
        // Reading 0 fights the asymmetric precharge on both lines.
        return fixed + 2.0 * bitline_.swingEnergy(vdd_, Bitline::senseSwing)
               + bitline_.swingEnergy(vdd_, 0.3 * vdd_);
    }

    double
    writeEnergy(int bit) const override
    {
        const double fixed = wordlineEnergy_ + driverOverhead(tech_, vdd_);
        if (bit == 1)
            return fixed + bitline_.swingEnergy(vdd_, 0.06 * vdd_);
        return fixed + 2.0 * bitline_.fullSwingEnergy(vdd_);
    }

    /** Maximum reliable cells/bitline before read-0 flips the cell. */
    static constexpr int maxReliableCellsPerBitline = 16;
};

/**
 * 3T PMOS gain-cell eDRAM (Section 7.2): single-ended read and write,
 * both precharged high, so both favor storing/writing 1; refresh is a
 * read + write-back and inherits the favor. Leakage is low but the cell
 * needs periodic refresh, charged to hold power here.
 */
class CellEdram3T : public MemCellModel
{
  public:
    CellEdram3T(const TechParams &tech, double vdd, int cells)
        : MemCellModel(tech, vdd, cells), readBitline_(tech, cells, 1.0)
    {}

    CellKind kind() const override { return CellKind::Edram3T; }

    double
    readEnergy(int bit) const override
    {
        const double fixed = wordlineEnergy_ * 0.5
                             + senseOverhead(tech_, vdd_);
        if (bit == 1)
            return fixed + readBitline_.swingEnergy(vdd_, 0.05 * vdd_);
        return fixed + readBitline_.fullSwingEnergy(vdd_);
    }

    double
    writeEnergy(int bit) const override
    {
        const double fixed = wordlineEnergy_ * 0.5
                             + driverOverhead(tech_, vdd_);
        if (bit == 1)
            return fixed + bitline_.swingEnergy(vdd_, 0.05 * vdd_);
        return fixed + bitline_.fullSwingEnergy(vdd_);
    }

    double
    holdLeakage(int bit) const override
    {
        // Dynamic storage barely leaks; refresh energy dominates. Model
        // hold power as refresh at 64us amortized per cell, which still
        // favors 1 because refresh = read + write-back.
        const double refresh_period = micro(64);
        const double refresh_energy = readEnergy(bit) + writeEnergy(bit);
        return refresh_energy / refresh_period
               + baseHoldLeakage_ * 0.08;
    }

    double
    cellArea() const override
    {
        return MemCellModel::cellArea() * 0.6; // denser than 6T SRAM
    }

  private:
    Bitline readBitline_;
};

} // namespace

std::unique_ptr<MemCellModel>
makeCellModel(CellKind kind, const TechParams &tech, double vdd,
              int cellsPerBitline, bool allowUnreliable)
{
    fatal_if(cellsPerBitline <= 0, "cellsPerBitline must be positive");
    switch (kind) {
      case CellKind::Sram6T:
        return std::make_unique<Cell6T>(tech, vdd, cellsPerBitline);
      case CellKind::Sram8T:
        return std::make_unique<Cell8T>(tech, vdd, cellsPerBitline);
      case CellKind::SramBvf8T:
        return std::make_unique<CellBvf8T>(tech, vdd, cellsPerBitline);
      case CellKind::SramBvf6T:
        fatal_if(!allowUnreliable
                     && cellsPerBitline
                            > CellBvf6T::maxReliableCellsPerBitline,
                 "BVF-6T is unreliable beyond %d cells/bitline "
                 "(destructive read; see Section 7.1)",
                 CellBvf6T::maxReliableCellsPerBitline);
        return std::make_unique<CellBvf6T>(tech, vdd, cellsPerBitline);
      case CellKind::Edram3T:
        return std::make_unique<CellEdram3T>(tech, vdd, cellsPerBitline);
    }
    panic("unknown cell kind");
}

} // namespace bvf::circuit
