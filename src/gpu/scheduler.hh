/**
 * @file
 * Warp schedulers: GTO, loose round-robin and two-level.
 *
 * The scheduler picks which ready warp issues each cycle. Different
 * policies reorder the memory access stream seen by the SRAM units and
 * the NoC, which is the sensitivity Figure 21 studies.
 */

#ifndef BVF_GPU_SCHEDULER_HH
#define BVF_GPU_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "gpu/gpu_config.hh"

namespace bvf::gpu
{

/**
 * Scheduler interface: given the set of ready warps, pick one.
 */
class WarpScheduler
{
  public:
    virtual ~WarpScheduler() = default;

    /**
     * @param ready per-warp readiness flags (index = warp slot)
     * @param lastIssue per-warp cycle of last issue
     * @param cycle current cycle
     * @return selected warp slot, or -1 if none ready
     */
    virtual int pick(const std::vector<bool> &ready,
                     const std::vector<std::uint64_t> &lastIssue,
                     std::uint64_t cycle) = 0;

    /** Notify that @p warp issued (policy bookkeeping). */
    virtual void issued(int warp, std::uint64_t cycle) = 0;
};

/** Factory for the configured policy. */
std::unique_ptr<WarpScheduler> makeScheduler(SchedulerPolicy policy,
                                             int numWarps);

/**
 * Greedy-then-oldest: keep issuing the same warp while it stays ready;
 * otherwise fall back to the warp that has waited longest.
 */
class GtoScheduler : public WarpScheduler
{
  public:
    explicit GtoScheduler(int numWarps);
    int pick(const std::vector<bool> &ready,
             const std::vector<std::uint64_t> &lastIssue,
             std::uint64_t cycle) override;
    void issued(int warp, std::uint64_t cycle) override;

  private:
    int greedy_ = -1;
};

/** Loose round-robin over warp slots. */
class LrrScheduler : public WarpScheduler
{
  public:
    explicit LrrScheduler(int numWarps);
    int pick(const std::vector<bool> &ready,
             const std::vector<std::uint64_t> &lastIssue,
             std::uint64_t cycle) override;
    void issued(int warp, std::uint64_t cycle) override;

  private:
    int numWarps_;
    int next_ = 0;
};

/**
 * Two-level scheduler: a small active pool issues round-robin; warps
 * that stall (stop being ready) rotate out for pending warps.
 */
class TwoLevelScheduler : public WarpScheduler
{
  public:
    TwoLevelScheduler(int numWarps, int activePoolSize = 8);
    int pick(const std::vector<bool> &ready,
             const std::vector<std::uint64_t> &lastIssue,
             std::uint64_t cycle) override;
    void issued(int warp, std::uint64_t cycle) override;

  private:
    void refill(const std::vector<bool> &ready);

    int numWarps_;
    int poolSize_;
    std::vector<int> active_;   //!< warp slots in the active pool
    std::vector<int> pending_;  //!< remaining slots, FIFO
    int rr_ = 0;
};

} // namespace bvf::gpu

#endif // BVF_GPU_SCHEDULER_HH
