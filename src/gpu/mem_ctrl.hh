/**
 * @file
 * Memory controller with FR-FCFS scheduling over multiple DRAM channels.
 *
 * Requests that miss in L2 queue here. Each channel keeps an open-row
 * register; first-ready (row-hit) requests are served before older
 * row-miss requests (FR-FCFS), with row hits completing faster. The
 * controller affects only timing and ordering -- DRAM itself is off-chip
 * and outside the paper's power scope (the BVF design is transparent to
 * off-chip units).
 */

#ifndef BVF_GPU_MEM_CTRL_HH
#define BVF_GPU_MEM_CTRL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace bvf::gpu
{

/** One in-flight DRAM request. */
struct DramRequest
{
    std::uint32_t lineAddr = 0;
    std::uint64_t token = 0;     //!< caller-supplied identifier
    std::uint64_t enqueueCycle = 0;
};

/**
 * FR-FCFS memory controller.
 */
class MemoryController
{
  public:
    using CompleteFn = std::function<void(const DramRequest &)>;

    /**
     * @param channels number of DRAM channels
     * @param rowBytes bytes per DRAM row (row-hit granularity)
     * @param rowHitLatency service cycles on a row hit
     * @param rowMissLatency service cycles on a row miss
     */
    MemoryController(int channels, std::uint32_t rowBytes,
                     int rowHitLatency, int rowMissLatency);

    void setCompleteHandler(CompleteFn fn) { complete_ = std::move(fn); }

    /** Channel owning @p lineAddr (line-interleaved). */
    int channelOf(std::uint32_t lineAddr) const;

    /** Enqueue a line request. */
    void enqueue(std::uint32_t lineAddr, std::uint64_t token,
                 std::uint64_t cycle);

    /** Advance one cycle; fires completions. */
    void step(std::uint64_t cycle);

    bool busy() const;

    std::uint64_t rowHits() const { return rowHits_; }
    std::uint64_t rowMisses() const { return rowMisses_; }

  private:
    struct Channel
    {
        std::deque<DramRequest> queue;
        std::uint32_t openRow = ~0u;
        bool serving = false;
        DramRequest current;
        std::uint64_t doneCycle = 0;
    };

    int rowHitLatency_;
    int rowMissLatency_;
    std::uint32_t rowBytes_;
    std::vector<Channel> channels_;
    CompleteFn complete_;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0;
};

} // namespace bvf::gpu

#endif // BVF_GPU_MEM_CTRL_HH
