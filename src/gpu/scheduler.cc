/**
 * @file
 * Warp scheduler implementations.
 */

#include "gpu/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace bvf::gpu
{

std::unique_ptr<WarpScheduler>
makeScheduler(SchedulerPolicy policy, int numWarps)
{
    switch (policy) {
      case SchedulerPolicy::Gto:
        return std::make_unique<GtoScheduler>(numWarps);
      case SchedulerPolicy::Lrr:
        return std::make_unique<LrrScheduler>(numWarps);
      case SchedulerPolicy::TwoLevel:
        return std::make_unique<TwoLevelScheduler>(numWarps);
    }
    panic("unknown scheduler policy");
}

// ------------------------------------------------------------- GTO --

GtoScheduler::GtoScheduler(int numWarps)
{
    fatal_if(numWarps <= 0, "scheduler needs warps");
}

int
GtoScheduler::pick(const std::vector<bool> &ready,
                   const std::vector<std::uint64_t> &lastIssue,
                   std::uint64_t)
{
    if (greedy_ >= 0 && greedy_ < static_cast<int>(ready.size())
        && ready[static_cast<std::size_t>(greedy_)]) {
        return greedy_;
    }
    // Oldest: smallest last-issue cycle among ready warps.
    int best = -1;
    for (int w = 0; w < static_cast<int>(ready.size()); ++w) {
        if (!ready[static_cast<std::size_t>(w)])
            continue;
        if (best < 0
            || lastIssue[static_cast<std::size_t>(w)]
                   < lastIssue[static_cast<std::size_t>(best)]) {
            best = w;
        }
    }
    return best;
}

void
GtoScheduler::issued(int warp, std::uint64_t)
{
    greedy_ = warp;
}

// ------------------------------------------------------------- LRR --

LrrScheduler::LrrScheduler(int numWarps) : numWarps_(numWarps)
{
    fatal_if(numWarps <= 0, "scheduler needs warps");
}

int
LrrScheduler::pick(const std::vector<bool> &ready,
                   const std::vector<std::uint64_t> &, std::uint64_t)
{
    for (int probe = 0; probe < numWarps_; ++probe) {
        const int w = (next_ + probe) % numWarps_;
        if (w < static_cast<int>(ready.size())
            && ready[static_cast<std::size_t>(w)]) {
            return w;
        }
    }
    return -1;
}

void
LrrScheduler::issued(int warp, std::uint64_t)
{
    next_ = (warp + 1) % numWarps_;
}

// ------------------------------------------------------- Two-level --

TwoLevelScheduler::TwoLevelScheduler(int numWarps, int activePoolSize)
    : numWarps_(numWarps), poolSize_(std::min(activePoolSize, numWarps))
{
    fatal_if(numWarps <= 0, "scheduler needs warps");
    for (int w = 0; w < numWarps; ++w) {
        if (w < poolSize_)
            active_.push_back(w);
        else
            pending_.push_back(w);
    }
}

void
TwoLevelScheduler::refill(const std::vector<bool> &ready)
{
    // Rotate stalled warps out of the active pool.
    for (auto it = active_.begin(); it != active_.end();) {
        const int w = *it;
        const bool is_ready = w < static_cast<int>(ready.size())
                              && ready[static_cast<std::size_t>(w)];
        if (!is_ready && !pending_.empty()) {
            pending_.push_back(w);
            it = active_.erase(it);
        } else {
            ++it;
        }
    }
    while (static_cast<int>(active_.size()) < poolSize_
           && !pending_.empty()) {
        active_.push_back(pending_.front());
        pending_.erase(pending_.begin());
    }
}

int
TwoLevelScheduler::pick(const std::vector<bool> &ready,
                        const std::vector<std::uint64_t> &, std::uint64_t)
{
    refill(ready);
    if (active_.empty())
        return -1;
    const int n = static_cast<int>(active_.size());
    for (int probe = 0; probe < n; ++probe) {
        const int idx = (rr_ + probe) % n;
        const int w = active_[static_cast<std::size_t>(idx)];
        if (w < static_cast<int>(ready.size())
            && ready[static_cast<std::size_t>(w)]) {
            rr_ = (idx + 1) % n;
            return w;
        }
    }
    return -1;
}

void
TwoLevelScheduler::issued(int, std::uint64_t)
{
}

} // namespace bvf::gpu
