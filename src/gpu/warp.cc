/**
 * @file
 * Warp SIMT-stack implementation.
 */

#include "gpu/warp.hh"

#include "common/logging.hh"

namespace bvf::gpu
{

void
Warp::init(int warpIdInBlock, int blockId, int blockThreads)
{
    warpIdInBlock_ = warpIdInBlock;
    blockId_ = blockId;
    done_ = false;
    pendingLoads = 0;
    atBarrier = false;
    lastIssueCycle = 0;

    const int first_thread = warpIdInBlock * warpSize;
    const int live = std::max(0, std::min(warpSize,
                                          blockThreads - first_thread));
    existMask_ = live == warpSize ? fullMask
                                  : ((1u << live) - 1u);
    panic_if(live == 0, "warp with no live threads");

    stack_.clear();
    stack_.push_back(SimtEntry{0, existMask_, -1});

    regs_.fill(0);
    preds_.fill(false);
    regReady_.fill(0);
    predReady_.fill(0);
}

std::uint32_t
Warp::guardMask(const isa::Instruction &instr) const
{
    std::uint32_t mask = activeMask();
    if (instr.pred == isa::predTrue && !instr.predNegate)
        return mask;
    std::uint32_t pass = 0;
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!((mask >> lane) & 1u))
            continue;
        bool p = predicate(lane, instr.pred);
        if (instr.predNegate)
            p = !p;
        if (p)
            pass |= 1u << lane;
    }
    return pass;
}

void
Warp::diverge(std::uint32_t takenMask, int target, int fallthrough,
              int reconv)
{
    SimtEntry &top = stack_.back();
    const std::uint32_t mask = top.mask;
    const std::uint32_t not_taken = mask & ~takenMask;
    panic_if((takenMask & ~mask) != 0, "taken lanes outside active mask");
    panic_if(takenMask == 0 || not_taken == 0,
             "diverge() requires an actually divergent branch");

    // The current entry becomes the reconvergence point; the two sides
    // execute above it (taken side first).
    top.pc = reconv;
    stack_.push_back(SimtEntry{fallthrough, not_taken, reconv});
    stack_.push_back(SimtEntry{target, takenMask, reconv});
}

void
Warp::reconvergeIfNeeded()
{
    while (stack_.size() > 1 && stack_.back().pc == stack_.back().rpc)
        stack_.pop_back();
}

} // namespace bvf::gpu
