/**
 * @file
 * Register bank-conflict model.
 */

#include "gpu/regfile.hh"

#include <array>

#include "common/logging.hh"

namespace bvf::gpu
{

RegFileModel::RegFileModel(int numBanks) : numBanks_(numBanks)
{
    fatal_if(numBanks <= 0, "register file needs at least one bank");
}

CollectResult
RegFileModel::collect(std::span<const int> sourceRegs) const
{
    std::array<int, 64> load{};
    panic_if(numBanks_ > static_cast<int>(load.size()),
             "bank count exceeds model limit");
    CollectResult res;
    int max_load = 0;
    for (const int reg : sourceRegs) {
        const int bank = bankOf(reg);
        const int l = ++load[static_cast<std::size_t>(bank)];
        if (l == 1)
            ++res.banksTouched;
        if (l > max_load)
            max_load = l;
    }
    res.conflictCycles = max_load > 1 ? max_load - 1 : 0;
    return res;
}

} // namespace bvf::gpu
