/**
 * @file
 * Streaming multiprocessor model.
 *
 * Each SM hosts resident thread blocks, schedules one instruction per
 * cycle from a ready warp (GTO/LRR/two-level), executes it functionally
 * on per-lane register values, and models the per-SM storage: register
 * file, shared memory, L1 data / instruction / constant / texture
 * caches with MSHRs. Every storage access is reported to the
 * AccessSink with its raw data so the accounting layer can evaluate all
 * coding scenarios simultaneously.
 *
 * Stores follow the GPU write-evict / write-no-allocate policy the
 * paper's VS coder relies on: store data goes straight to L2 (through
 * the NoC), invalidating any local copy.
 */

#ifndef BVF_GPU_SM_HH
#define BVF_GPU_SM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gpu/cache.hh"
#include "gpu/gpu_config.hh"
#include "gpu/regfile.hh"
#include "gpu/scheduler.hh"
#include "gpu/warp.hh"
#include "isa/program.hh"
#include "sram/access_sink.hh"

namespace bvf::gpu
{

/** Services the SM needs from the chip (implemented by Gpu). */
class ChipInterface
{
  public:
    virtual ~ChipInterface() = default;

    /** Send a line read request into the NoC (data or instruction). */
    virtual void sendReadRequest(int smId, std::uint32_t lineAddr,
                                 bool instr, std::uint64_t cycle) = 0;

    /** Send store data for @p lineAddr into the NoC. */
    virtual void sendWriteRequest(int smId, std::uint32_t lineAddr,
                                  std::vector<Word> payload,
                                  std::uint64_t cycle) = 0;

    /** Functional read of a global word (byte address). */
    virtual Word readGlobalWord(std::uint32_t addr) const = 0;

    /** Functional write of a global word (byte address). */
    virtual void writeGlobalWord(std::uint32_t addr, Word value) = 0;

    /** Program binary word for instruction index @p pc. */
    virtual Word64 instrBinary(int pc) const = 0;
};

/**
 * Validation hook observing every instruction the SM tries to issue,
 * with the issuing warp's full architectural state. Used by the static
 * analyzer's soundness tests to compare abstract facts against every
 * concrete lane value at the matching pc. A memory instruction that
 * stalls structurally re-fires the probe on its retry; observers state
 * facts about the pre-issue state, which the stall does not change.
 *
 * The register file a probe sees is the microarchitectural one: a load
 * that is still in flight has not yet written its destination, so that
 * register holds the previous value until the response lands. The
 * scoreboard guarantees no consumer can read it meanwhile -- probes
 * asserting architectural facts must apply the same gate by skipping
 * registers with Warp::regReadyCycle past the issue cycle.
 */
class ExecProbe
{
  public:
    virtual ~ExecProbe() = default;

    /**
     * @param smId issuing SM
     * @param pc program counter of the issued instruction
     * @param instr the instruction at @p pc
     * @param warp the issuing warp, pre-execution
     * @param guard active lanes passing the instruction's guard
     * @param cycle issue cycle, for scoreboard (readiness) queries
     */
    virtual void onIssue(int smId, int pc, const isa::Instruction &instr,
                         const Warp &warp, std::uint32_t guard,
                         std::uint64_t cycle) = 0;
};

/** Per-SM dynamic instruction statistics (feeds the power model). */
struct SmStats
{
    std::uint64_t issued = 0;
    std::uint64_t fpOps = 0;
    std::uint64_t intOps = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t controlOps = 0;
    std::uint64_t sharedAccesses = 0;
    std::uint64_t bankConflictCycles = 0;    //!< shared-memory banks
    std::uint64_t regBankConflictCycles = 0; //!< operand collection
    std::uint64_t idleCycles = 0;

    /**
     * Register writes whose guard mask excludes the VS pivot lane while
     * writing other lanes -- the case where the paper's VS coder must
     * insert a dummy mov to re-encode against the new pivot (Section
     * 4.2.2, branch divergence). Counted so the claimed "negligible
     * overhead" is measurable.
     */
    std::uint64_t pivotDivergentWrites = 0;
};

/**
 * One streaming multiprocessor.
 */
class Sm
{
  public:
    Sm(int smId, const GpuConfig &config, const isa::Program &program,
       sram::AccessSink &sink, ChipInterface &chip);

    /** Try to make @p blockId resident; false if out of warp slots. */
    bool assignBlock(int blockId);

    /** All resident warps finished and no pending work. */
    bool idle() const;

    /** Number of free warp slots. */
    int freeWarpSlots() const;

    /** Advance one core cycle. */
    void step(std::uint64_t cycle);

    /** A data line arrived from L2. */
    void onDataFill(std::uint32_t lineAddr, std::uint64_t cycle);

    /** An instruction line arrived from L2. */
    void onInstrFill(std::uint32_t lineAddr, std::uint64_t cycle);

    const SmStats &stats() const { return stats_; }
    int smId() const { return smId_; }

    /** Install (or clear, with nullptr) the issue-observation probe. */
    void setExecProbe(ExecProbe *probe) { probe_ = probe; }

    /**
     * Run the dispatch loop specialized for programs whose admission
     * certificate proves uniform control flow (Certificate::
     * uniformControlFlow): per-issue reconvergence-stack maintenance is
     * skipped, and Warp::diverge firing becomes a hard contract
     * violation. Purely a fast path -- issue order, statistics and
     * energy accounting are byte-identical to the general loop.
     */
    void setUniformDispatch(bool on) { uniformDispatch_ = on; }

  private:
    /** Instructions per IFB refill. */
    static constexpr int ifbInstrs = 8;

    struct ResidentBlock
    {
        int blockId = 0;
        int firstWarp = 0; //!< slot of its first warp
        int numWarps = 0;
        int warpsDone = 0;
        bool retired = false;
        std::vector<Word> shared; //!< shared-memory contents
    };

    struct PendingLoad
    {
        int warpSlot = 0;
        int dstReg = 0;
        std::uint32_t guard = 0;
        std::array<std::uint32_t, warpSize> laneAddr{};
        int outstandingLines = 0;
    };

    struct LocalFill
    {
        std::uint64_t readyCycle = 0;
        std::uint32_t lineAddr = 0;
        bool isTexture = false;
        std::vector<int> waitingLoads;
    };

    // --- pipeline stages ----------------------------------------------
    bool warpReady(int slot, std::uint64_t cycle);
    bool fetchReady(int slot, std::uint64_t cycle);
    void issueWarp(int slot, std::uint64_t cycle);

    /** Execute a non-memory instruction functionally. */
    void executeAlu(int slot, const isa::Instruction &instr,
                    std::uint32_t guard, std::uint64_t cycle);

    /** Try to issue a memory instruction; false on structural stall. */
    bool executeMemory(int slot, const isa::Instruction &instr,
                       std::uint32_t guard, std::uint64_t cycle);

    bool executeGlobalLoad(int slot, const isa::Instruction &instr,
                           std::uint32_t guard, std::uint64_t cycle);
    void executeGlobalStore(int slot, const isa::Instruction &instr,
                            std::uint32_t guard, std::uint64_t cycle);
    void executeShared(int slot, const isa::Instruction &instr,
                       std::uint32_t guard, std::uint64_t cycle);
    bool executeConstOrTex(int slot, const isa::Instruction &instr,
                           std::uint32_t guard, std::uint64_t cycle);

    void completeLoad(int loadId, std::uint64_t cycle);
    void handleBarrier(int slot);
    void handleBarrierRelease(int blockIdx);
    void checkLocalFills(std::uint64_t cycle);

    /**
     * Free a finished block's warp slots so queued blocks can launch.
     * Deferred while any of its warps still has loads in flight (their
     * completions must not write a re-assigned slot).
     */
    void maybeRetireBlock(int blockIdx);

    // --- accounting helpers -------------------------------------------
    void accountRegRead(const Warp &warp, int reg, std::uint32_t guard,
                        std::uint64_t cycle);
    void accountRegWrite(const Warp &warp, int reg, std::uint32_t guard,
                         std::uint64_t cycle);

    Word specialValue(int slot, int lane, isa::SpecialReg sr) const;

    ResidentBlock &blockOf(int slot);

    int smId_;
    const GpuConfig &config_;
    const isa::Program &program_;
    sram::AccessSink &sink_;
    ChipInterface &chip_;
    ExecProbe *probe_ = nullptr;
    bool uniformDispatch_ = false;

    std::vector<Warp> warps_;
    std::vector<bool> slotUsed_;
    std::vector<int> slotBlock_; //!< resident-block index per slot
    std::vector<ResidentBlock> blocks_;
    std::unique_ptr<WarpScheduler> scheduler_;

    TagCache l1d_;
    TagCache l1i_;
    TagCache l1c_;
    TagCache l1t_;
    RegFileModel regFile_;

    // Per-warp IFB state: which instruction group is buffered.
    std::vector<int> ifbGroup_;
    std::vector<bool> ifetchPending_;

    std::vector<PendingLoad> loads_;
    std::vector<int> freeLoadIds_;
    std::unordered_map<std::uint32_t, std::vector<int>> waitingData_;
    std::unordered_map<std::uint32_t, std::vector<int>> waitingInstr_;
    std::vector<LocalFill> localFills_;

    // Per-cycle scheduler scratch, hoisted out of step() so the hot
    // loop does not allocate.
    std::vector<bool> readyScratch_;
    std::vector<std::uint64_t> lastScratch_;

    SmStats stats_;
};

} // namespace bvf::gpu

#endif // BVF_GPU_SM_HH
