/**
 * @file
 * GPU machine configuration (paper Tables 3 and 4).
 *
 * The baseline machine follows Table 3: 15 SMs, 48 warps/SM, 128KB
 * registers and 48KB shared memory per SM, 16KB 4-way L1D with 128B
 * lines, a 768KB 6-bank 16-way L2, 32B NoC flits, 6 FR-FCFS memory
 * channels, 700MHz. Table 4's GTX-480 / Tesla-P100 / Tesla-K80 capacity
 * variants feed the Figure 22 sensitivity study.
 */

#ifndef BVF_GPU_GPU_CONFIG_HH
#define BVF_GPU_GPU_CONFIG_HH

#include <cstdint>
#include <string>

#include "isa/encoding.hh"

namespace bvf::gpu
{

/** Warp scheduling policies evaluated in Figure 21. */
enum class SchedulerPolicy
{
    Gto,      //!< greedy-then-oldest (baseline)
    Lrr,      //!< loose round-robin
    TwoLevel, //!< two-level active/pending pools
};

/** Display name, e.g. "GTO". */
std::string schedulerName(SchedulerPolicy policy);

/** DVFS operating point (Figure 20). */
struct PState
{
    double frequency;  //!< core clock [Hz]
    double vdd;        //!< supply [V]
    std::string name;  //!< e.g. "700MHz@1.2V"
};

/** The three P-states the paper evaluates. */
const PState &pstateNominal();  //!< 700 MHz, 1.2 V
const PState &pstateMid();      //!< 500 MHz, 0.9 V
const PState &pstateLow();      //!< 300 MHz, 0.6 V

/** Machine description. */
struct GpuConfig
{
    std::string name = "GTX480-like";
    isa::GpuArch arch = isa::GpuArch::Pascal;

    int numSms = 15;
    int maxWarpsPerSm = 48;
    SchedulerPolicy scheduler = SchedulerPolicy::Gto;

    // Per-SM storage.
    std::uint32_t regFileBytes = 128 * 1024;
    std::uint32_t sharedMemBytes = 48 * 1024;
    std::uint32_t l1dBytes = 16 * 1024;
    int l1dAssoc = 4;
    std::uint32_t l1iBytes = 2 * 1024;
    std::uint32_t l1cBytes = 8 * 1024;
    std::uint32_t l1tBytes = 12 * 1024;
    std::uint32_t lineBytes = 128;

    // Chip-level storage.
    int l2Banks = 6;
    std::uint32_t l2BytesPerBank = 128 * 1024;
    int l2Assoc = 16;

    // Memory system.
    int dramChannels = 6;
    int mshrsPerSm = 32;

    // Timing.
    PState pstate = {700.0e6, 1.2, "700MHz@1.2V"};
    int l1HitLatency = 28;
    int l2Latency = 36;
    int dramRowHitLatency = 80;
    int dramRowMissLatency = 160;
    int sharedMemLatency = 24;
    int constHitLatency = 20;
    int constMissLatency = 200;
    int texHitLatency = 40;
    int texMissLatency = 300;

    std::uint32_t l2TotalBytes() const
    {
        return static_cast<std::uint32_t>(l2Banks) * l2BytesPerBank;
    }

    double clockPeriod() const { return 1.0 / pstate.frequency; }
};

/** Table 3 baseline machine. */
GpuConfig baselineConfig();

/** Table 4 capacity variants for Figure 22. */
GpuConfig gtx480Config();
GpuConfig teslaP100Config();
GpuConfig teslaK80Config();

} // namespace bvf::gpu

#endif // BVF_GPU_GPU_CONFIG_HH
