/**
 * @file
 * SM implementation.
 */

#include "gpu/sm.hh"

#include "coder/vs_coder.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/logging.hh"

namespace bvf::gpu
{

using isa::Instruction;
using isa::Opcode;
using isa::CmpOp;
using isa::SpecialReg;
using coder::UnitId;
using sram::AccessType;

namespace
{

/** Reinterpret a word as fp32. */
float
asFloat(Word w)
{
    float f;
    std::memcpy(&f, &w, sizeof(f));
    return f;
}

/** Reinterpret fp32 as a word. */
Word
asWord(float f)
{
    Word w;
    std::memcpy(&w, &f, sizeof(w));
    return w;
}

/** Signed view of a word. */
std::int32_t
asInt(Word w)
{
    return static_cast<std::int32_t>(w);
}

} // namespace

Sm::Sm(int smId, const GpuConfig &config, const isa::Program &program,
       sram::AccessSink &sink, ChipInterface &chip)
    : smId_(smId), config_(config), program_(program), sink_(sink),
      chip_(chip),
      l1d_("L1D", config.l1dBytes, config.l1dAssoc, config.lineBytes,
           config.mshrsPerSm),
      l1i_("L1I", config.l1iBytes, 2, config.lineBytes, 4),
      l1c_("L1C", config.l1cBytes, 2, 64, 4),
      l1t_("L1T", config.l1tBytes, 2, config.lineBytes, 8)
{
    warps_.resize(static_cast<std::size_t>(config.maxWarpsPerSm));
    slotUsed_.assign(static_cast<std::size_t>(config.maxWarpsPerSm), false);
    slotBlock_.assign(static_cast<std::size_t>(config.maxWarpsPerSm), -1);
    ifbGroup_.assign(static_cast<std::size_t>(config.maxWarpsPerSm), -1);
    ifetchPending_.assign(static_cast<std::size_t>(config.maxWarpsPerSm),
                          false);
    scheduler_ = makeScheduler(config.scheduler, config.maxWarpsPerSm);
}

int
Sm::freeWarpSlots() const
{
    int free_slots = 0;
    for (bool used : slotUsed_) {
        if (!used)
            ++free_slots;
    }
    return free_slots;
}

bool
Sm::assignBlock(int blockId)
{
    const int warps_needed = program_.launch.warpsPerBlock();
    // Find a contiguous run of free slots (hardware allocates per block).
    int run_start = -1;
    int run_len = 0;
    for (int s = 0; s < config_.maxWarpsPerSm; ++s) {
        if (!slotUsed_[static_cast<std::size_t>(s)]) {
            if (run_len == 0)
                run_start = s;
            if (++run_len == warps_needed)
                break;
        } else {
            run_len = 0;
        }
    }
    if (run_len < warps_needed)
        return false;

    ResidentBlock block;
    block.blockId = blockId;
    block.firstWarp = run_start;
    block.numWarps = warps_needed;
    block.shared.assign(program_.sharedBytesPerBlock / 4, 0);
    blocks_.push_back(std::move(block));
    const int block_idx = static_cast<int>(blocks_.size()) - 1;

    for (int w = 0; w < warps_needed; ++w) {
        const int slot = run_start + w;
        slotUsed_[static_cast<std::size_t>(slot)] = true;
        slotBlock_[static_cast<std::size_t>(slot)] = block_idx;
        warps_[static_cast<std::size_t>(slot)].init(
            w, blockId, program_.launch.blockThreads);
        ifbGroup_[static_cast<std::size_t>(slot)] = -1;
        ifetchPending_[static_cast<std::size_t>(slot)] = false;
    }
    return true;
}

bool
Sm::idle() const
{
    for (int s = 0; s < config_.maxWarpsPerSm; ++s) {
        if (slotUsed_[static_cast<std::size_t>(s)]
            && !warps_[static_cast<std::size_t>(s)].done()) {
            return false;
        }
    }
    return waitingData_.empty() && waitingInstr_.empty()
           && localFills_.empty();
}

Sm::ResidentBlock &
Sm::blockOf(int slot)
{
    const int idx = slotBlock_[static_cast<std::size_t>(slot)];
    panic_if(idx < 0, "slot %d has no block", slot);
    return blocks_[static_cast<std::size_t>(idx)];
}

Word
Sm::specialValue(int slot, int lane, SpecialReg sr) const
{
    const Warp &warp = warps_[static_cast<std::size_t>(slot)];
    switch (sr) {
      case SpecialReg::LaneId:
        return static_cast<Word>(lane);
      case SpecialReg::WarpId:
        return static_cast<Word>(warp.warpIdInBlock());
      case SpecialReg::TidX:
        return static_cast<Word>(warp.warpIdInBlock() * warpSize + lane);
      case SpecialReg::CtaIdX:
        return static_cast<Word>(warp.blockId());
      case SpecialReg::NTidX:
        return static_cast<Word>(program_.launch.blockThreads);
      case SpecialReg::GridDimX:
        return static_cast<Word>(program_.launch.gridBlocks);
    }
    panic("unknown special register");
}

// ---------------------------------------------------------------------
// Accounting helpers
// ---------------------------------------------------------------------

void
Sm::accountRegRead(const Warp &warp, int reg, std::uint32_t guard,
                   std::uint64_t cycle)
{
    sink_.onAccess(UnitId::Reg, AccessType::Read, warp.regBlock(reg),
                   guard, cycle);
}

void
Sm::accountRegWrite(const Warp &warp, int reg, std::uint32_t guard,
                    std::uint64_t cycle)
{
    // A divergent write that skips the pivot lane forces the VS coder's
    // dummy-mov re-encode (Section 4.2.2 B); count those events.
    constexpr int pivot = coder::VsCoder::defaultRegisterPivot;
    if (guard != 0 && !((guard >> pivot) & 1u))
        ++stats_.pivotDivergentWrites;
    sink_.onAccess(UnitId::Reg, AccessType::Write, warp.regBlock(reg),
                   guard, cycle);
}

// ---------------------------------------------------------------------
// Fetch / readiness
// ---------------------------------------------------------------------

bool
Sm::fetchReady(int slot, std::uint64_t cycle)
{
    Warp &warp = warps_[static_cast<std::size_t>(slot)];
    const int pc = warp.pc();
    const int group = pc / ifbInstrs;
    if (ifbGroup_[static_cast<std::size_t>(slot)] == group)
        return true;
    if (ifetchPending_[static_cast<std::size_t>(slot)])
        return false;

    // Refill the IFB from L1I.
    const std::uint32_t line_addr =
        static_cast<std::uint32_t>(pc) * 8u
        & ~(config_.lineBytes - 1u);
    const auto outcome = l1i_.access(line_addr);
    if (outcome == CacheOutcome::Hit) {
        // L1I read + IFB fill of the fetch group.
        const int group_start = group * ifbInstrs;
        std::vector<Word64> instrs;
        for (int i = 0; i < ifbInstrs
                        && group_start + i
                               < static_cast<int>(program_.body.size());
             ++i) {
            instrs.push_back(chip_.instrBinary(group_start + i));
        }
        sink_.onFetch(UnitId::L1I, AccessType::Read, instrs, cycle);
        sink_.onFetch(UnitId::Ifb, AccessType::Write, instrs, cycle);
        ifbGroup_[static_cast<std::size_t>(slot)] = group;
        return true;
    }
    if (outcome == CacheOutcome::MshrFull)
        return false;

    ifetchPending_[static_cast<std::size_t>(slot)] = true;
    waitingInstr_[line_addr].push_back(slot);
    if (outcome == CacheOutcome::Miss)
        chip_.sendReadRequest(smId_, line_addr, true, cycle);
    return false;
}

bool
Sm::warpReady(int slot, std::uint64_t cycle)
{
    if (!slotUsed_[static_cast<std::size_t>(slot)])
        return false;
    Warp &warp = warps_[static_cast<std::size_t>(slot)];
    if (warp.done() || warp.atBarrier)
        return false;

    // Under the uniform-dispatch contract the SIMT stack provably never
    // grows past its initial frame, so reconvergence maintenance is
    // dead work.
    if (!uniformDispatch_)
        warp.reconvergeIfNeeded();
    if (!fetchReady(slot, cycle))
        return false;

    const Instruction &instr =
        program_.body[static_cast<std::size_t>(warp.pc())];

    // Scoreboard: guard predicate and all sources (and the destination,
    // which FFMA/IMAD also read and loads must not overwrite early).
    if (instr.pred != isa::predTrue
        && warp.predReadyCycle(instr.pred) > cycle) {
        return false;
    }
    if (isa::readsSrcA(instr.op)
        && warp.regReadyCycle(instr.srcA) > cycle) {
        return false;
    }
    if (isa::readsSrcB(instr.op) && !instr.immB
        && warp.regReadyCycle(instr.srcB) > cycle) {
        return false;
    }
    if ((isa::writesRegister(instr.op) || isa::readsDst(instr.op))
        && warp.regReadyCycle(instr.dst) > cycle) {
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------

void
Sm::step(std::uint64_t cycle)
{
    checkLocalFills(cycle);

    std::vector<bool> &ready = readyScratch_;
    std::vector<std::uint64_t> &last = lastScratch_;
    ready.assign(static_cast<std::size_t>(config_.maxWarpsPerSm), false);
    last.assign(static_cast<std::size_t>(config_.maxWarpsPerSm), 0);
    bool any = false;
    for (int s = 0; s < config_.maxWarpsPerSm; ++s) {
        const bool r = warpReady(s, cycle);
        ready[static_cast<std::size_t>(s)] = r;
        last[static_cast<std::size_t>(s)] =
            warps_[static_cast<std::size_t>(s)].lastIssueCycle;
        any = any || r;
    }
    if (!any) {
        ++stats_.idleCycles;
        return;
    }
    const int slot = scheduler_->pick(ready, last, cycle);
    if (slot < 0) {
        ++stats_.idleCycles;
        return;
    }
    issueWarp(slot, cycle);
}

void
Sm::issueWarp(int slot, std::uint64_t cycle)
{
    Warp &warp = warps_[static_cast<std::size_t>(slot)];
    const int pc = warp.pc();
    const Instruction &instr = program_.body[static_cast<std::size_t>(pc)];
    const std::uint32_t guard = warp.guardMask(instr);

    if (probe_)
        probe_->onIssue(smId_, pc, instr, warp, guard, cycle);

    // Memory instructions can stall structurally; bail before any
    // architectural effect or accounting.
    if (isa::isMemoryOp(instr.op)) {
        if (guard != 0 && !executeMemory(slot, instr, guard, cycle))
            return;
        if (guard == 0)
            warp.advancePc();
    }

    // Every issued instruction consumes an IFB read slot.
    const Word64 bin = chip_.instrBinary(pc);
    sink_.onFetch(UnitId::Ifb, AccessType::Read, {&bin, 1}, cycle);

    ++stats_.issued;
    warp.lastIssueCycle = cycle;
    scheduler_->issued(slot, cycle);

    if (!isa::isMemoryOp(instr.op))
        executeAlu(slot, instr, guard, cycle);
}

void
Sm::executeAlu(int slot, const Instruction &instr, std::uint32_t guard,
               std::uint64_t cycle)
{
    Warp &warp = warps_[static_cast<std::size_t>(slot)];

    // Operand collection (register file reads); same-bank source
    // registers serialize inside the collector.
    int sources[3];
    int num_sources = 0;
    if (isa::readsSrcA(instr.op)) {
        accountRegRead(warp, instr.srcA, guard, cycle);
        sources[num_sources++] = instr.srcA;
    }
    if (isa::readsSrcB(instr.op) && !instr.immB) {
        accountRegRead(warp, instr.srcB, guard, cycle);
        sources[num_sources++] = instr.srcB;
    }
    if (isa::readsDst(instr.op)) {
        accountRegRead(warp, instr.dst, guard, cycle);
        sources[num_sources++] = instr.dst;
    }
    const auto collect = regFile_.record(
        std::span<const int>(sources,
                             static_cast<std::size_t>(num_sources)));
    stats_.regBankConflictCycles +=
        static_cast<std::uint64_t>(collect.conflictCycles);

    switch (instr.op) {
      case Opcode::Bra: {
        ++stats_.controlOps;
        const std::uint32_t active = warp.activeMask();
        const int target = instr.imm;
        if (guard == 0) {
            warp.advancePc();
        } else if (guard == active) {
            warp.setPc(target);
        } else {
            panic_if(uniformDispatch_,
                     "certified-uniform branch diverged at pc %d "
                     "(verifier soundness bug)",
                     warp.pc());
            warp.diverge(guard, target, warp.pc() + 1, instr.reconv);
        }
        return;
      }
      case Opcode::Exit: {
        ++stats_.controlOps;
        warp.setDone();
        const int block_idx = slotBlock_[static_cast<std::size_t>(slot)];
        ++blocks_[static_cast<std::size_t>(block_idx)].warpsDone;
        // A warp at a barrier must not wait for an exited sibling.
        handleBarrierRelease(block_idx);
        maybeRetireBlock(block_idx);
        return;
      }
      case Opcode::Bar: {
        ++stats_.controlOps;
        warp.atBarrier = true;
        warp.advancePc();
        handleBarrier(slot);
        return;
      }
      case Opcode::Nop:
        ++stats_.controlOps;
        warp.advancePc();
        return;
      default:
        break;
    }

    // Data-path instructions.
    const bool is_fp = instr.op == Opcode::Ffma || instr.op == Opcode::Fadd
                       || instr.op == Opcode::Fmul
                       || instr.op == Opcode::I2F
                       || instr.op == Opcode::F2I;
    if (is_fp)
        ++stats_.fpOps;
    else
        ++stats_.intOps;

    for (int lane = 0; lane < warpSize; ++lane) {
        if (!((guard >> lane) & 1u))
            continue;
        const Word a = warp.reg(lane, instr.srcA);
        const Word b = instr.immB ? static_cast<Word>(instr.imm)
                                  : warp.reg(lane, instr.srcB);
        Word result = 0;
        switch (instr.op) {
          case Opcode::Ffma:
            result = asWord(asFloat(a) * asFloat(b)
                            + asFloat(warp.reg(lane, instr.dst)));
            break;
          case Opcode::Fadd:
            result = asWord(asFloat(a) + asFloat(b));
            break;
          case Opcode::Fmul:
            result = asWord(asFloat(a) * asFloat(b));
            break;
          case Opcode::IAdd:
            result = a + b;
            break;
          case Opcode::ISub:
            result = a - b;
            break;
          case Opcode::IMul:
            result = a * b;
            break;
          case Opcode::IMad:
            result = a * b + warp.reg(lane, instr.dst);
            break;
          case Opcode::Mov:
            result = b;
            break;
          case Opcode::S2R:
            result = specialValue(slot, lane,
                                  static_cast<SpecialReg>(instr.flags));
            break;
          case Opcode::Shl:
            result = a << (b & 31u);
            break;
          case Opcode::Shr:
            result = a >> (b & 31u);
            break;
          case Opcode::And:
            result = a & b;
            break;
          case Opcode::Or:
            result = a | b;
            break;
          case Opcode::Xor:
            result = a ^ b;
            break;
          case Opcode::I2F:
            result = asWord(static_cast<float>(asInt(a)));
            break;
          case Opcode::F2I:
            result = static_cast<Word>(
                static_cast<std::int32_t>(asFloat(a)));
            break;
          case Opcode::Clz:
            result = static_cast<Word>(std::countl_zero(a));
            break;
          case Opcode::Min:
            result = static_cast<Word>(std::min(asInt(a), asInt(b)));
            break;
          case Opcode::Max:
            result = static_cast<Word>(std::max(asInt(a), asInt(b)));
            break;
          case Opcode::SetP: {
            const std::int32_t sa = asInt(a);
            const std::int32_t sb = asInt(b);
            bool p = false;
            switch (static_cast<CmpOp>(instr.flags)) {
              case CmpOp::Lt: p = sa < sb; break;
              case CmpOp::Le: p = sa <= sb; break;
              case CmpOp::Gt: p = sa > sb; break;
              case CmpOp::Ge: p = sa >= sb; break;
              case CmpOp::Eq: p = sa == sb; break;
              case CmpOp::Ne: p = sa != sb; break;
            }
            warp.setPredicate(lane, instr.dst, p);
            continue;
          }
          default:
            panic("unhandled opcode %s", opcodeName(instr.op).c_str());
        }
        warp.setReg(lane, instr.dst, result);
    }

    const int latency =
        isa::opcodeLatency(instr.op) + collect.conflictCycles;
    if (instr.op == Opcode::SetP) {
        warp.setPredReadyCycle(instr.dst,
                               cycle + static_cast<std::uint64_t>(latency));
    } else if (isa::writesRegister(instr.op)) {
        if (guard != 0)
            accountRegWrite(warp, instr.dst, guard, cycle);
        warp.setRegReadyCycle(instr.dst,
                              cycle + static_cast<std::uint64_t>(latency));
    }
    warp.advancePc();
}

// ---------------------------------------------------------------------
// Memory instructions
// ---------------------------------------------------------------------

bool
Sm::executeMemory(int slot, const Instruction &instr, std::uint32_t guard,
                  std::uint64_t cycle)
{
    switch (instr.op) {
      case Opcode::Ldg:
        return executeGlobalLoad(slot, instr, guard, cycle);
      case Opcode::Stg:
        executeGlobalStore(slot, instr, guard, cycle);
        return true;
      case Opcode::Lds:
      case Opcode::Sts:
        executeShared(slot, instr, guard, cycle);
        return true;
      case Opcode::Ldc:
      case Opcode::Ldt:
        return executeConstOrTex(slot, instr, guard, cycle);
      default:
        panic("not a memory opcode");
    }
}

bool
Sm::executeGlobalLoad(int slot, const Instruction &instr,
                      std::uint32_t guard, std::uint64_t cycle)
{
    Warp &warp = warps_[static_cast<std::size_t>(slot)];

    // Resolve per-lane addresses (memory divergence: lanes may touch
    // several lines).
    std::array<std::uint32_t, warpSize> addr{};
    std::vector<std::uint32_t> lines;
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!((guard >> lane) & 1u))
            continue;
        const std::uint32_t a =
            warp.reg(lane, instr.srcA)
            + static_cast<std::uint32_t>(instr.imm);
        addr[static_cast<std::size_t>(lane)] = a;
        const std::uint32_t line = l1d_.lineAddr(a);
        if (std::find(lines.begin(), lines.end(), line) == lines.end())
            lines.push_back(line);
    }

    // Tag phase: resolve every line's outcome before committing any
    // architectural effect, so a structural stall can abort cleanly.
    std::vector<std::uint32_t> hit_lines;
    std::vector<std::uint32_t> missed;
    std::vector<std::uint32_t> new_requests;
    bool stalled = false;
    for (std::uint32_t line : lines) {
        const auto outcome = l1d_.access(line);
        switch (outcome) {
          case CacheOutcome::Hit:
            hit_lines.push_back(line);
            break;
          case CacheOutcome::Miss:
            missed.push_back(line);
            new_requests.push_back(line);
            break;
          case CacheOutcome::MissMerged:
            missed.push_back(line);
            break;
          case CacheOutcome::MshrFull:
            stalled = true;
            break;
        }
        if (stalled)
            break;
    }
    if (stalled) {
        // Any MSHR we just allocated must still be serviced or it would
        // deadlock the retry (which will see MissMerged, not Miss).
        for (std::uint32_t line : new_requests)
            chip_.sendReadRequest(smId_, line, false, cycle);
        return false;
    }

    // Commit phase. Operand-collector read of the address register.
    ++stats_.loads;
    accountRegRead(warp, instr.srcA, guard, cycle);

    for (std::uint32_t line : hit_lines) {
        // Account the words these lanes read out of L1D.
        std::vector<Word> words;
        for (int lane = 0; lane < warpSize; ++lane) {
            if (((guard >> lane) & 1u)
                && l1d_.lineAddr(addr[static_cast<std::size_t>(lane)])
                       == line) {
                words.push_back(chip_.readGlobalWord(
                    addr[static_cast<std::size_t>(lane)]));
            }
        }
        sink_.onAccess(UnitId::L1D, AccessType::Read, words, fullMask,
                       cycle);
    }
    const int outstanding = static_cast<int>(missed.size());

    // Create the pending-load record.
    int load_id;
    if (!freeLoadIds_.empty()) {
        load_id = freeLoadIds_.back();
        freeLoadIds_.pop_back();
        loads_[static_cast<std::size_t>(load_id)] = PendingLoad{};
    } else {
        loads_.emplace_back();
        load_id = static_cast<int>(loads_.size()) - 1;
    }
    PendingLoad &load = loads_[static_cast<std::size_t>(load_id)];
    load.warpSlot = slot;
    load.dstReg = instr.dst;
    load.guard = guard;
    load.laneAddr = addr;
    load.outstandingLines = outstanding;

    if (outstanding == 0) {
        // Full hit: deliver after the L1 hit latency.
        completeLoad(load_id, cycle
                               + static_cast<std::uint64_t>(
                                   config_.l1HitLatency));
    } else {
        warp.setRegReadyCycle(instr.dst, ~std::uint64_t(0));
        ++warp.pendingLoads;
        for (std::uint32_t line : missed)
            waitingData_[line].push_back(load_id);
        for (std::uint32_t line : new_requests)
            chip_.sendReadRequest(smId_, line, false, cycle);
    }
    warp.advancePc();
    return true;
}

void
Sm::completeLoad(int loadId, std::uint64_t cycle)
{
    PendingLoad &load = loads_[static_cast<std::size_t>(loadId)];
    Warp &warp = warps_[static_cast<std::size_t>(load.warpSlot)];

    for (int lane = 0; lane < warpSize; ++lane) {
        if (!((load.guard >> lane) & 1u))
            continue;
        warp.setReg(lane, load.dstReg,
                    chip_.readGlobalWord(
                        load.laneAddr[static_cast<std::size_t>(lane)]));
    }
    accountRegWrite(warp, load.dstReg, load.guard, cycle);
    warp.setRegReadyCycle(load.dstReg, cycle + 2);
    freeLoadIds_.push_back(loadId);
}

void
Sm::executeGlobalStore(int slot, const Instruction &instr,
                       std::uint32_t guard, std::uint64_t cycle)
{
    Warp &warp = warps_[static_cast<std::size_t>(slot)];
    ++stats_.stores;

    accountRegRead(warp, instr.srcA, guard, cycle);
    accountRegRead(warp, instr.srcB, guard, cycle);

    // Coalesce active lanes per line; write-evict: invalidate the local
    // copy and push the data to L2.
    std::vector<std::uint32_t> lines;
    std::array<std::uint32_t, warpSize> addr{};
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!((guard >> lane) & 1u))
            continue;
        const std::uint32_t a =
            warp.reg(lane, instr.srcA)
            + static_cast<std::uint32_t>(instr.imm);
        addr[static_cast<std::size_t>(lane)] = a;
        const std::uint32_t line = l1d_.lineAddr(a);
        if (std::find(lines.begin(), lines.end(), line) == lines.end())
            lines.push_back(line);
    }

    for (std::uint32_t line : lines) {
        l1d_.invalidate(line);
        std::vector<Word> payload;
        for (int lane = 0; lane < warpSize; ++lane) {
            if (!((guard >> lane) & 1u))
                continue;
            if (l1d_.lineAddr(addr[static_cast<std::size_t>(lane)])
                != line) {
                continue;
            }
            const Word value = warp.reg(lane, instr.srcB);
            chip_.writeGlobalWord(addr[static_cast<std::size_t>(lane)],
                                  value);
            payload.push_back(value);
        }
        chip_.sendWriteRequest(smId_, line, std::move(payload), cycle);
    }
    warp.advancePc();
}

void
Sm::executeShared(int slot, const Instruction &instr, std::uint32_t guard,
                  std::uint64_t cycle)
{
    Warp &warp = warps_[static_cast<std::size_t>(slot)];
    ResidentBlock &block = blockOf(slot);
    ++stats_.sharedAccesses;

    accountRegRead(warp, instr.srcA, guard, cycle);
    const bool is_store = instr.op == Opcode::Sts;
    if (is_store)
        accountRegRead(warp, instr.srcB, guard, cycle);

    // Bank-conflict model: 32 banks, word-interleaved.
    std::array<int, 32> bank_load{};
    std::vector<Word> words;
    const std::size_t shared_words = block.shared.size();
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!((guard >> lane) & 1u))
            continue;
        const std::uint32_t a =
            warp.reg(lane, instr.srcA)
            + static_cast<std::uint32_t>(instr.imm);
        const std::size_t idx =
            shared_words ? (a / 4) % shared_words : 0;
        ++bank_load[idx % 32];
        if (is_store) {
            const Word v = warp.reg(lane, instr.srcB);
            if (shared_words)
                block.shared[idx] = v;
            words.push_back(v);
        } else {
            const Word v = shared_words ? block.shared[idx] : 0;
            warp.setReg(lane, instr.dst, v);
            words.push_back(v);
        }
    }

    int conflicts = 0;
    for (int b = 0; b < 32; ++b)
        conflicts = std::max(conflicts, bank_load[static_cast<std::size_t>(b)]);
    if (conflicts > 1) {
        stats_.bankConflictCycles +=
            static_cast<std::uint64_t>(conflicts - 1);
    }

    sink_.onAccess(UnitId::Sme,
                   is_store ? AccessType::Write : AccessType::Read, words,
                   fullMask, cycle);

    if (!is_store) {
        accountRegWrite(warp, instr.dst, guard, cycle);
        warp.setRegReadyCycle(
            instr.dst, cycle
                           + static_cast<std::uint64_t>(
                               config_.sharedMemLatency + conflicts));
    }
    warp.advancePc();
}

bool
Sm::executeConstOrTex(int slot, const Instruction &instr,
                      std::uint32_t guard, std::uint64_t cycle)
{
    Warp &warp = warps_[static_cast<std::size_t>(slot)];
    const bool is_tex = instr.op == Opcode::Ldt;
    TagCache &cache = is_tex ? l1t_ : l1c_;
    const auto &image = is_tex ? program_.texture : program_.constants;
    const UnitId unit = is_tex ? UnitId::L1T : UnitId::L1C;
    ++stats_.loads;

    accountRegRead(warp, instr.srcA, guard, cycle);

    // Unique word addresses touched (constant loads broadcast).
    std::array<std::uint32_t, warpSize> addr{};
    std::vector<std::uint32_t> unique_words;
    std::vector<std::uint32_t> lines;
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!((guard >> lane) & 1u))
            continue;
        std::uint32_t a = warp.reg(lane, instr.srcA)
                          + static_cast<std::uint32_t>(instr.imm);
        if (!image.empty())
            a %= static_cast<std::uint32_t>(image.size() * 4);
        a &= ~3u;
        addr[static_cast<std::size_t>(lane)] = a;
        if (std::find(unique_words.begin(), unique_words.end(), a)
            == unique_words.end()) {
            unique_words.push_back(a);
        }
        const std::uint32_t line = cache.lineAddr(a);
        if (std::find(lines.begin(), lines.end(), line) == lines.end())
            lines.push_back(line);
    }

    auto word_at = [&image](std::uint32_t a) {
        const std::size_t idx = a / 4;
        return idx < image.size() ? image[idx] : Word(0);
    };

    // Constant/texture misses resolve locally, so a full MSHR file just
    // costs miss latency here instead of stalling the issue slot.
    bool all_hit = true;
    std::vector<std::uint32_t> missed;
    for (std::uint32_t line : lines) {
        const auto outcome = cache.access(line);
        if (outcome != CacheOutcome::Hit) {
            all_hit = false;
            if (outcome == CacheOutcome::Miss)
                missed.push_back(line);
        }
    }

    // Account the read words.
    std::vector<Word> words;
    for (std::uint32_t a : unique_words)
        words.push_back(word_at(a));
    sink_.onAccess(unit, AccessType::Read, words, fullMask, cycle);

    // Deliver values functionally now; latency via the scoreboard.
    for (int lane = 0; lane < warpSize; ++lane) {
        if (((guard >> lane) & 1u)) {
            warp.setReg(lane, instr.dst,
                        word_at(addr[static_cast<std::size_t>(lane)]));
        }
    }
    accountRegWrite(warp, instr.dst, guard, cycle);

    const int hit_lat = is_tex ? config_.texHitLatency
                               : config_.constHitLatency;
    const int miss_lat = is_tex ? config_.texMissLatency
                                : config_.constMissLatency;
    warp.setRegReadyCycle(
        instr.dst,
        cycle + static_cast<std::uint64_t>(all_hit ? hit_lat : miss_lat));

    // Schedule local fills for missed lines (accounted at fill time).
    for (std::uint32_t line : missed) {
        LocalFill fill;
        fill.readyCycle = cycle + static_cast<std::uint64_t>(miss_lat);
        fill.lineAddr = line;
        fill.isTexture = is_tex;
        localFills_.push_back(fill);
    }
    warp.advancePc();
    return true;
}

void
Sm::checkLocalFills(std::uint64_t cycle)
{
    for (auto it = localFills_.begin(); it != localFills_.end();) {
        if (it->readyCycle > cycle) {
            ++it;
            continue;
        }
        TagCache &cache = it->isTexture ? l1t_ : l1c_;
        const auto &image = it->isTexture ? program_.texture
                                          : program_.constants;
        cache.fill(it->lineAddr);
        // Account the fill write with the line's words.
        std::vector<Word> words;
        const std::uint32_t line_bytes = cache.lineBytes();
        for (std::uint32_t off = 0; off < line_bytes; off += 4) {
            const std::size_t idx = (it->lineAddr + off) / 4;
            words.push_back(idx < image.size() ? image[idx] : Word(0));
        }
        sink_.onAccess(it->isTexture ? UnitId::L1T : UnitId::L1C,
                       AccessType::Write, words, fullMask, cycle);
        it = localFills_.erase(it);
    }
}

// ---------------------------------------------------------------------
// Fill handling
// ---------------------------------------------------------------------

void
Sm::onDataFill(std::uint32_t lineAddr, std::uint64_t cycle)
{
    l1d_.fill(lineAddr);

    // Account the L1D fill with the line's current contents.
    std::vector<Word> words;
    for (std::uint32_t off = 0; off < config_.lineBytes; off += 4)
        words.push_back(chip_.readGlobalWord(lineAddr + off));
    sink_.onAccess(UnitId::L1D, AccessType::Write, words, fullMask, cycle);

    auto it = waitingData_.find(lineAddr);
    if (it == waitingData_.end())
        return;
    std::vector<int> waiters = std::move(it->second);
    waitingData_.erase(it);

    for (int load_id : waiters) {
        PendingLoad &load = loads_[static_cast<std::size_t>(load_id)];
        // The words these lanes requested are read out of the fill.
        std::vector<Word> requested;
        for (int lane = 0; lane < warpSize; ++lane) {
            if (((load.guard >> lane) & 1u)
                && l1d_.lineAddr(
                       load.laneAddr[static_cast<std::size_t>(lane)])
                       == lineAddr) {
                requested.push_back(chip_.readGlobalWord(
                    load.laneAddr[static_cast<std::size_t>(lane)]));
            }
        }
        if (!requested.empty()) {
            sink_.onAccess(UnitId::L1D, AccessType::Read, requested,
                           fullMask, cycle);
        }
        if (--load.outstandingLines == 0) {
            Warp &warp = warps_[static_cast<std::size_t>(load.warpSlot)];
            --warp.pendingLoads;
            const int slot = load.warpSlot;
            completeLoad(load_id, cycle);
            // The last completion for an exited warp may unblock its
            // block's retirement.
            if (warp.done() && warp.pendingLoads == 0) {
                maybeRetireBlock(
                    slotBlock_[static_cast<std::size_t>(slot)]);
            }
        }
    }
}

void
Sm::onInstrFill(std::uint32_t lineAddr, std::uint64_t cycle)
{
    l1i_.fill(lineAddr);

    // Account the L1I line fill with the instruction words.
    std::vector<Word64> instrs;
    const int first_pc = static_cast<int>(lineAddr / 8);
    const int per_line = static_cast<int>(config_.lineBytes / 8);
    for (int i = 0; i < per_line; ++i) {
        if (first_pc + i < static_cast<int>(program_.body.size()))
            instrs.push_back(chip_.instrBinary(first_pc + i));
    }
    sink_.onFetch(UnitId::L1I, AccessType::Write, instrs, cycle);

    auto it = waitingInstr_.find(lineAddr);
    if (it == waitingInstr_.end())
        return;
    for (int slot : it->second)
        ifetchPending_[static_cast<std::size_t>(slot)] = false;
    waitingInstr_.erase(it);
}

// ---------------------------------------------------------------------
// Barriers
// ---------------------------------------------------------------------

void
Sm::handleBarrier(int slot)
{
    handleBarrierRelease(slotBlock_[static_cast<std::size_t>(slot)]);
}

void
Sm::handleBarrierRelease(int blockIdx)
{
    ResidentBlock &block = blocks_[static_cast<std::size_t>(blockIdx)];
    // Release when every live warp of the block is waiting.
    for (int w = 0; w < block.numWarps; ++w) {
        const Warp &warp =
            warps_[static_cast<std::size_t>(block.firstWarp + w)];
        if (!warp.done() && !warp.atBarrier)
            return;
    }
    for (int w = 0; w < block.numWarps; ++w) {
        warps_[static_cast<std::size_t>(block.firstWarp + w)].atBarrier =
            false;
    }
}

void
Sm::maybeRetireBlock(int blockIdx)
{
    ResidentBlock &block = blocks_[static_cast<std::size_t>(blockIdx)];
    if (block.retired || block.warpsDone < block.numWarps)
        return;
    for (int w = 0; w < block.numWarps; ++w) {
        if (warps_[static_cast<std::size_t>(block.firstWarp + w)]
                .pendingLoads
            > 0) {
            return; // a completion still targets these slots
        }
    }
    for (int w = 0; w < block.numWarps; ++w) {
        const int slot = block.firstWarp + w;
        slotUsed_[static_cast<std::size_t>(slot)] = false;
        slotBlock_[static_cast<std::size_t>(slot)] = -1;
        ifbGroup_[static_cast<std::size_t>(slot)] = -1;
    }
    block.retired = true;
    block.shared.clear();
    block.shared.shrink_to_fit();
}

} // namespace bvf::gpu
