/**
 * @file
 * Top-level GPU: SMs, crossbar NoC, banked L2 and FR-FCFS memory
 * controllers, driven by a single core-clock loop.
 *
 * The machine runs one Program to completion, emitting every BVF-unit
 * access through the AccessSink. Functional memory is a single
 * architectural copy owned here; caches track tags only.
 */

#ifndef BVF_GPU_GPU_HH
#define BVF_GPU_GPU_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/cancel.hh"
#include "gpu/cache.hh"
#include "gpu/gpu_config.hh"
#include "gpu/mem_ctrl.hh"
#include "gpu/sm.hh"
#include "isa/encoding.hh"
#include "isa/program.hh"
#include "noc/crossbar.hh"
#include "sram/access_sink.hh"

namespace bvf::gpu
{

/** Chip-wide run statistics. */
struct GpuStats
{
    std::uint64_t cycles = 0;
    SmStats sm; //!< aggregated over all SMs
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    noc::NocStats noc;
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;
};

/**
 * The simulated GPU.
 */
class Gpu : public ChipInterface
{
  public:
    /**
     * @param config machine description
     * @param program kernel + memory images (copied; the global image
     *        is mutated by stores)
     * @param sink accounting sink
     */
    Gpu(const GpuConfig &config, isa::Program program,
        sram::AccessSink &sink);

    /** Run the kernel to completion; returns chip statistics. */
    GpuStats run();

    /**
     * Arm cooperative cancellation: @p token (kept by pointer, may be
     * null) is polled every few thousand cycles inside run(); once it
     * expires the simulation aborts via fatal(), which a driver-side
     * ScopedFatalTrap turns into a catchable FatalError. This is how a
     * campaign watchdog times out a pathological application instead of
     * hanging for the 200M-cycle limit.
     */
    void setCancellation(const CancelToken *token) { cancel_ = token; }

    /** Install the issue-observation probe on every SM. */
    void
    setExecProbe(ExecProbe *probe)
    {
        for (auto &sm : sms_)
            sm->setExecProbe(probe);
    }

    /** Certified-uniform dispatch specialization on every SM. */
    void
    setUniformDispatch(bool on)
    {
        for (auto &sm : sms_)
            sm->setUniformDispatch(on);
    }

    // --- ChipInterface -------------------------------------------------
    void sendReadRequest(int smId, std::uint32_t lineAddr, bool instr,
                         std::uint64_t cycle) override;
    void sendWriteRequest(int smId, std::uint32_t lineAddr,
                          std::vector<Word> payload,
                          std::uint64_t cycle) override;
    Word readGlobalWord(std::uint32_t addr) const override;
    void writeGlobalWord(std::uint32_t addr, Word value) override;
    Word64 instrBinary(int pc) const override;

    const GpuConfig &config() const { return config_; }
    const isa::Program &program() const { return program_; }

    /** Encoded kernel binary (arch-specific). */
    const std::vector<Word64> &binary() const { return binary_; }

  private:
    int bankOf(std::uint32_t lineAddr) const;
    void handleRequestAtBank(const noc::Packet &pkt);
    void handleReplyAtSm(const noc::Packet &pkt);
    void onDramComplete(const DramRequest &req, std::uint64_t cycle);
    void scheduleReply(std::uint64_t cycle, noc::Packet pkt);
    void accountL2Line(std::uint32_t lineAddr, sram::AccessType type,
                       bool instr, std::uint64_t cycle);
    std::vector<Word> lineData(std::uint32_t lineAddr) const;
    std::vector<Word> instrLineData(std::uint32_t lineAddr) const;

    GpuConfig config_;
    isa::Program program_;
    sram::AccessSink &sink_;
    const CancelToken *cancel_ = nullptr;
    isa::InstructionEncoder encoder_;
    std::vector<Word64> binary_;

    std::vector<std::unique_ptr<Sm>> sms_;
    std::unique_ptr<noc::Crossbar> noc_;
    std::vector<TagCache> l2_;
    std::unique_ptr<MemoryController> mc_;

    // Requests waiting on a DRAM fill, keyed by line address.
    std::map<std::uint32_t, std::vector<noc::Packet>> dramWaiting_;
    // Replies in flight inside L2 (modelling L2 access latency).
    std::multimap<std::uint64_t, noc::Packet> delayedReplies_;

    std::uint64_t cycle_ = 0;
    std::uint64_t nextRequestId_ = 1;
    int nextBlock_ = 0;
    GpuStats stats_;
};

} // namespace bvf::gpu

#endif // BVF_GPU_GPU_HH
