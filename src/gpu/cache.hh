/**
 * @file
 * Set-associative tag-array cache model with MSHRs.
 *
 * Data contents live in the functional memory image (there is exactly
 * one architectural copy of every datum in the machine), so caches track
 * tags, LRU state and miss status only. This is sufficient for the
 * paper's methodology: the bit contents of any access are read from the
 * functional image at access time.
 */

#ifndef BVF_GPU_CACHE_HH
#define BVF_GPU_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"

namespace bvf::gpu
{

/** Result of a cache lookup-with-allocate. */
enum class CacheOutcome
{
    Hit,
    Miss,        //!< allocated an MSHR; fill must be reported later
    MissMerged,  //!< merged into an existing MSHR for the same line
    MshrFull,    //!< structural stall; retry later
};

/**
 * Tag-array cache with LRU replacement and optional MSHR tracking.
 * Addresses are byte addresses; lines are config.lineBytes wide.
 */
class TagCache
{
  public:
    /**
     * @param name for diagnostics
     * @param capacityBytes total capacity
     * @param assoc ways per set
     * @param lineBytes line size
     * @param numMshrs outstanding-miss capacity (0 = unlimited)
     */
    TagCache(std::string name, std::uint32_t capacityBytes, int assoc,
             std::uint32_t lineBytes, int numMshrs = 0);

    /** Line-aligned address of @p addr. */
    std::uint32_t
    lineAddr(std::uint32_t addr) const
    {
        return addr & ~(lineBytes_ - 1);
    }

    /**
     * Look up @p addr for a read; on miss, reserve an MSHR keyed by the
     * line (the caller sends the fill request on Miss only, not on
     * MissMerged).
     */
    CacheOutcome access(std::uint32_t addr);

    /** Probe without any state change. */
    bool probe(std::uint32_t addr) const;

    /**
     * Install the line containing @p addr (fill completion). Releases
     * the MSHR and returns how many requests were waiting on it.
     */
    int fill(std::uint32_t addr);

    /** Invalidate the line if present (write-evict stores). */
    void invalidate(std::uint32_t addr);

    /** Is a miss outstanding for this line? */
    bool missPending(std::uint32_t addr) const;

    std::uint32_t lineBytes() const { return lineBytes_; }
    int sets() const { return sets_; }
    int assoc() const { return assoc_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t fills() const { return fills_; }

  private:
    struct Way
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint64_t lruStamp = 0;
    };

    int setIndex(std::uint32_t line) const;

    std::string name_;
    std::uint32_t lineBytes_;
    int sets_;
    int assoc_;
    int numMshrs_;
    std::vector<Way> ways_; //!< sets_ * assoc_ entries
    std::unordered_map<std::uint32_t, int> mshrs_; //!< line -> waiters
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t fills_ = 0;
};

} // namespace bvf::gpu

#endif // BVF_GPU_CACHE_HH
