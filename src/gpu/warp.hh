/**
 * @file
 * Warp execution state: per-lane registers, predicates, SIMT
 * reconvergence stack and scoreboard.
 */

#ifndef BVF_GPU_WARP_HH
#define BVF_GPU_WARP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "isa/instruction.hh"

namespace bvf::gpu
{

/** Lanes per warp. */
constexpr int warpSize = 32;

/** Full active mask. */
constexpr std::uint32_t fullMask = 0xffffffffu;

/** One SIMT stack entry. */
struct SimtEntry
{
    int pc = 0;                 //!< next instruction index
    std::uint32_t mask = fullMask; //!< lanes active in this entry
    int rpc = -1;               //!< reconvergence pc (-1 = none)
};

/** Per-warp architectural and micro-architectural state. */
class Warp
{
  public:
    Warp() = default;

    /**
     * Initialize for execution.
     *
     * @param warpIdInBlock warp index within its thread block
     * @param blockId block index within the grid
     * @param blockThreads threads per block (to mask the tail warp)
     */
    void init(int warpIdInBlock, int blockId, int blockThreads);

    bool done() const { return done_; }
    void setDone() { done_ = true; }

    /** Current pc (top of SIMT stack). */
    int pc() const { return stack_.back().pc; }

    /** Current active mask. */
    std::uint32_t activeMask() const { return stack_.back().mask; }

    /** Advance the top-of-stack pc (sequential flow). */
    void advancePc() { ++stack_.back().pc; }

    /** Set the top-of-stack pc (uniform branch). */
    void setPc(int pc) { stack_.back().pc = pc; }

    /**
     * Handle a divergent branch: @p takenMask lanes jump to @p target,
     * the rest fall through to @p fallthrough; all reconverge at
     * @p reconv.
     */
    void diverge(std::uint32_t takenMask, int target, int fallthrough,
                 int reconv);

    /** Pop reconverged entries; call before each fetch. */
    void reconvergeIfNeeded();

    /** SIMT stack depth (for tests). */
    std::size_t stackDepth() const { return stack_.size(); }

    // --- register state ----------------------------------------------

    /** Value of register @p reg in lane @p lane. */
    Word
    reg(int lane, int r) const
    {
        return regs_[static_cast<std::size_t>(r * warpSize + lane)];
    }

    void
    setReg(int lane, int r, Word value)
    {
        regs_[static_cast<std::size_t>(r * warpSize + lane)] = value;
    }

    /** Whole-warp view of register @p r (32 consecutive words). */
    std::span<const Word>
    regBlock(int r) const
    {
        return {&regs_[static_cast<std::size_t>(r * warpSize)],
                static_cast<std::size_t>(warpSize)};
    }

    bool
    predicate(int lane, int p) const
    {
        return preds_[static_cast<std::size_t>(p * warpSize + lane)];
    }

    void
    setPredicate(int lane, int p, bool v)
    {
        preds_[static_cast<std::size_t>(p * warpSize + lane)] = v;
    }

    /** Guard mask: lanes in @p active passing the instruction's guard. */
    std::uint32_t guardMask(const isa::Instruction &instr) const;

    // --- scoreboard ----------------------------------------------------

    /** Cycle at which register @p r becomes readable. */
    std::uint64_t
    regReadyCycle(int r) const
    {
        return regReady_[static_cast<std::size_t>(r)];
    }

    void
    setRegReadyCycle(int r, std::uint64_t cycle)
    {
        regReady_[static_cast<std::size_t>(r)] = cycle;
    }

    std::uint64_t
    predReadyCycle(int p) const
    {
        return predReady_[static_cast<std::size_t>(p)];
    }

    void
    setPredReadyCycle(int p, std::uint64_t cycle)
    {
        predReady_[static_cast<std::size_t>(p)] = cycle;
    }

    /** Outstanding load count (loads keep the register busy). */
    int pendingLoads = 0;

    /** Waiting at a block barrier. */
    bool atBarrier = false;

    /** Last cycle this warp issued (GTO greedy state). */
    std::uint64_t lastIssueCycle = 0;

    int warpIdInBlock() const { return warpIdInBlock_; }
    int blockId() const { return blockId_; }

    /** Lanes that exist (partial tail warps of odd-sized blocks). */
    std::uint32_t existMask() const { return existMask_; }

  private:
    int warpIdInBlock_ = 0;
    int blockId_ = 0;
    bool done_ = false;
    std::uint32_t existMask_ = fullMask;
    std::vector<SimtEntry> stack_;
    std::array<Word, static_cast<std::size_t>(isa::numRegisters) * warpSize>
        regs_{};
    std::array<bool, static_cast<std::size_t>(isa::numPredicates) * warpSize>
        preds_{};
    std::array<std::uint64_t, isa::numRegisters> regReady_{};
    std::array<std::uint64_t, isa::numPredicates> predReady_{};
};

} // namespace bvf::gpu

#endif // BVF_GPU_WARP_HH
