/**
 * @file
 * Tag cache implementation.
 */

#include "gpu/cache.hh"

#include <bit>

namespace bvf::gpu
{

TagCache::TagCache(std::string name, std::uint32_t capacityBytes, int assoc,
                   std::uint32_t lineBytes, int numMshrs)
    : name_(std::move(name)), lineBytes_(lineBytes), assoc_(assoc),
      numMshrs_(numMshrs)
{
    fatal_if(lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0,
             "%s: line size must be a power of two", name_.c_str());
    fatal_if(assoc <= 0, "%s: associativity must be positive",
             name_.c_str());
    fatal_if(capacityBytes % (lineBytes * static_cast<std::uint32_t>(assoc))
                 != 0,
             "%s: capacity not divisible into sets", name_.c_str());
    sets_ = static_cast<int>(capacityBytes
                             / (lineBytes * static_cast<std::uint32_t>(assoc)));
    fatal_if(sets_ == 0, "%s: zero sets", name_.c_str());
    ways_.resize(static_cast<std::size_t>(sets_ * assoc_));
}

int
TagCache::setIndex(std::uint32_t line) const
{
    return static_cast<int>((line / lineBytes_)
                            % static_cast<std::uint32_t>(sets_));
}

CacheOutcome
TagCache::access(std::uint32_t addr)
{
    const std::uint32_t line = lineAddr(addr);
    const int set = setIndex(line);
    Way *base = &ways_[static_cast<std::size_t>(set * assoc_)];
    for (int w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == line) {
            base[w].lruStamp = ++stamp_;
            ++hits_;
            return CacheOutcome::Hit;
        }
    }
    ++misses_;
    auto it = mshrs_.find(line);
    if (it != mshrs_.end()) {
        ++it->second;
        return CacheOutcome::MissMerged;
    }
    if (numMshrs_ > 0 && static_cast<int>(mshrs_.size()) >= numMshrs_)
        return CacheOutcome::MshrFull;
    mshrs_.emplace(line, 1);
    return CacheOutcome::Miss;
}

bool
TagCache::probe(std::uint32_t addr) const
{
    const std::uint32_t line = lineAddr(addr);
    const int set = setIndex(line);
    const Way *base = &ways_[static_cast<std::size_t>(set * assoc_)];
    for (int w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == line)
            return true;
    }
    return false;
}

int
TagCache::fill(std::uint32_t addr)
{
    const std::uint32_t line = lineAddr(addr);
    const int set = setIndex(line);
    Way *base = &ways_[static_cast<std::size_t>(set * assoc_)];

    // Already present (e.g. a redundant fill): just refresh LRU.
    Way *victim = nullptr;
    for (int w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == line) {
            victim = &base[w];
            break;
        }
    }
    if (!victim) {
        for (int w = 0; w < assoc_; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
        }
    }
    if (!victim) {
        victim = &base[0];
        for (int w = 1; w < assoc_; ++w) {
            if (base[w].lruStamp < victim->lruStamp)
                victim = &base[w];
        }
    }
    victim->valid = true;
    victim->tag = line;
    victim->lruStamp = ++stamp_;
    ++fills_;

    auto it = mshrs_.find(line);
    if (it == mshrs_.end())
        return 0;
    const int waiters = it->second;
    mshrs_.erase(it);
    return waiters;
}

void
TagCache::invalidate(std::uint32_t addr)
{
    const std::uint32_t line = lineAddr(addr);
    const int set = setIndex(line);
    Way *base = &ways_[static_cast<std::size_t>(set * assoc_)];
    for (int w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == line) {
            base[w].valid = false;
            return;
        }
    }
}

bool
TagCache::missPending(std::uint32_t addr) const
{
    return mshrs_.count(lineAddr(addr)) > 0;
}

} // namespace bvf::gpu
