/**
 * @file
 * Register-file banking and operand collection.
 *
 * GPU register files are dense, highly banked SRAM arrays (the paper's
 * Section 4, footnote 2); an instruction's source operands are gathered
 * by operand collectors over one or more cycles depending on how its
 * registers spread over the banks. The paper leans on exactly this
 * structure in Section 6.3: because collectors already buffer operands,
 * the XNOR coder's gate delay hides in the operand-collection stage.
 *
 * This model maps registers to banks, counts per-instruction bank
 * conflicts (extra collection cycles), and feeds the SM's issue timing.
 */

#ifndef BVF_GPU_REGFILE_HH
#define BVF_GPU_REGFILE_HH

#include <cstdint>
#include <span>

namespace bvf::gpu
{

/** Outcome of collecting one instruction's operands. */
struct CollectResult
{
    int banksTouched = 0;
    int conflictCycles = 0; //!< extra cycles beyond the first access
};

/**
 * Banked register file model.
 *
 * Warp-wide registers stripe across banks by register index (the common
 * organization: one warp-register is one row of one bank).
 */
class RegFileModel
{
  public:
    /**
     * @param numBanks banks per SM register file
     */
    explicit RegFileModel(int numBanks = 4);

    int numBanks() const { return numBanks_; }

    /** Bank holding warp-register @p reg. */
    int
    bankOf(int reg) const
    {
        return reg % numBanks_;
    }

    /**
     * Collect the given source registers for one instruction. Registers
     * mapping to the same bank serialize: n same-bank reads cost n-1
     * extra cycles.
     */
    CollectResult collect(std::span<const int> sourceRegs) const;

    /** Cumulative conflict cycles observed. */
    std::uint64_t totalConflictCycles() const { return conflicts_; }

    /** Record a collection (non-const bookkeeping wrapper). */
    CollectResult
    record(std::span<const int> sourceRegs)
    {
        const auto res = collect(sourceRegs);
        conflicts_ += static_cast<std::uint64_t>(res.conflictCycles);
        return res;
    }

  private:
    int numBanks_;
    std::uint64_t conflicts_ = 0;
};

} // namespace bvf::gpu

#endif // BVF_GPU_REGFILE_HH
