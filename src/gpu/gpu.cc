/**
 * @file
 * GPU top-level implementation.
 */

#include "gpu/gpu.hh"

#include "common/logging.hh"

namespace bvf::gpu
{

using coder::UnitId;
using sram::AccessType;

Gpu::Gpu(const GpuConfig &config, isa::Program program,
         sram::AccessSink &sink)
    : config_(config), program_(std::move(program)), sink_(sink),
      encoder_(config.arch)
{
    fatal_if(program_.body.empty(), "program has no instructions");
    binary_ = encoder_.encode(program_.body);

    for (int s = 0; s < config_.numSms; ++s) {
        sms_.push_back(std::make_unique<Sm>(s, config_, program_, sink_,
                                            *this));
    }
    noc_ = std::make_unique<noc::Crossbar>(config_.numSms,
                                           config_.l2Banks, sink_);
    noc_->setRequestHandler(
        [this](const noc::Packet &pkt) { handleRequestAtBank(pkt); });
    noc_->setReplyHandler(
        [this](const noc::Packet &pkt) { handleReplyAtSm(pkt); });

    for (int b = 0; b < config_.l2Banks; ++b) {
        l2_.emplace_back(strFormat("L2[%d]", b), config_.l2BytesPerBank,
                         config_.l2Assoc, config_.lineBytes, 0);
    }
    mc_ = std::make_unique<MemoryController>(
        config_.dramChannels, 2048, config_.dramRowHitLatency,
        config_.dramRowMissLatency);
    mc_->setCompleteHandler([this](const DramRequest &req) {
        onDramComplete(req, cycle_);
    });
}

int
Gpu::bankOf(std::uint32_t lineAddr) const
{
    return static_cast<int>((lineAddr / config_.lineBytes)
                            % static_cast<std::uint32_t>(config_.l2Banks));
}

Word
Gpu::readGlobalWord(std::uint32_t addr) const
{
    if (addr < isa::globalSegmentBase)
        return 0;
    const std::size_t idx = (addr - isa::globalSegmentBase) / 4;
    return idx < program_.global.size() ? program_.global[idx] : Word(0);
}

void
Gpu::writeGlobalWord(std::uint32_t addr, Word value)
{
    if (addr < isa::globalSegmentBase)
        return;
    const std::size_t idx = (addr - isa::globalSegmentBase) / 4;
    if (idx < program_.global.size())
        program_.global[idx] = value;
}

Word64
Gpu::instrBinary(int pc) const
{
    panic_if(pc < 0 || pc >= static_cast<int>(binary_.size()),
             "instruction fetch out of range: pc=%d", pc);
    return binary_[static_cast<std::size_t>(pc)];
}

std::vector<Word>
Gpu::lineData(std::uint32_t lineAddr) const
{
    std::vector<Word> words;
    words.reserve(config_.lineBytes / 4);
    for (std::uint32_t off = 0; off < config_.lineBytes; off += 4)
        words.push_back(readGlobalWord(lineAddr + off));
    return words;
}

std::vector<Word>
Gpu::instrLineData(std::uint32_t lineAddr) const
{
    // Instruction lines as 32-bit word pairs (lo, hi) per binary.
    std::vector<Word> words;
    const int first_pc = static_cast<int>(lineAddr / 8);
    const int per_line = static_cast<int>(config_.lineBytes / 8);
    for (int i = 0; i < per_line; ++i) {
        Word64 bin = 0;
        if (first_pc + i < static_cast<int>(binary_.size()))
            bin = binary_[static_cast<std::size_t>(first_pc + i)];
        words.push_back(static_cast<Word>(bin));
        words.push_back(static_cast<Word>(bin >> 32));
    }
    return words;
}

void
Gpu::accountL2Line(std::uint32_t lineAddr, AccessType type, bool instr,
                   std::uint64_t cycle)
{
    if (instr) {
        std::vector<Word64> instrs;
        const int first_pc = static_cast<int>(lineAddr / 8);
        const int per_line = static_cast<int>(config_.lineBytes / 8);
        for (int i = 0; i < per_line; ++i) {
            if (first_pc + i < static_cast<int>(binary_.size()))
                instrs.push_back(binary_[static_cast<std::size_t>(
                    first_pc + i)]);
        }
        sink_.onFetch(UnitId::L2, type, instrs, cycle);
    } else {
        const auto words = lineData(lineAddr);
        sink_.onAccess(UnitId::L2, type, words, fullMask, cycle);
    }
}

void
Gpu::sendReadRequest(int smId, std::uint32_t lineAddr, bool instr,
                     std::uint64_t cycle)
{
    noc::Packet pkt;
    pkt.type = instr ? noc::PacketType::InstrRequest
                     : noc::PacketType::ReadRequest;
    pkt.srcSm = smId;
    pkt.dstBank = bankOf(lineAddr);
    pkt.address = lineAddr;
    pkt.requestId = nextRequestId_++;
    pkt.issueCycle = cycle;
    noc_->injectRequest(std::move(pkt));
}

void
Gpu::sendWriteRequest(int smId, std::uint32_t lineAddr,
                      std::vector<Word> payload, std::uint64_t cycle)
{
    noc::Packet pkt;
    pkt.type = noc::PacketType::WriteRequest;
    pkt.srcSm = smId;
    pkt.dstBank = bankOf(lineAddr);
    pkt.address = lineAddr;
    pkt.payload = std::move(payload);
    pkt.requestId = nextRequestId_++;
    pkt.issueCycle = cycle;
    noc_->injectRequest(std::move(pkt));
}

void
Gpu::handleRequestAtBank(const noc::Packet &pkt)
{
    TagCache &bank = l2_[static_cast<std::size_t>(pkt.dstBank)];
    const bool instr = noc::isInstrPacket(pkt.type);

    switch (pkt.type) {
      case noc::PacketType::ReadRequest:
      case noc::PacketType::InstrRequest: {
        const auto outcome = bank.access(pkt.address);
        if (outcome == CacheOutcome::Hit) {
            ++stats_.l2Hits;
            accountL2Line(pkt.address, AccessType::Read, instr, cycle_);
            noc::Packet reply;
            reply.type = instr ? noc::PacketType::InstrReply
                               : noc::PacketType::ReadReply;
            reply.srcSm = pkt.srcSm;
            reply.dstBank = pkt.dstBank;
            reply.address = pkt.address;
            reply.requestId = pkt.requestId;
            reply.payload = instr ? instrLineData(pkt.address)
                                  : lineData(pkt.address);
            scheduleReply(cycle_
                              + static_cast<std::uint64_t>(
                                  config_.l2Latency),
                          std::move(reply));
        } else {
            ++stats_.l2Misses;
            auto &waiters = dramWaiting_[pkt.address];
            waiters.push_back(pkt);
            if (outcome == CacheOutcome::Miss)
                mc_->enqueue(pkt.address, pkt.address, cycle_);
        }
        break;
      }
      case noc::PacketType::WriteRequest: {
        // Write-allocate without fetch: install the tag and account the
        // written words (the store data itself).
        const auto outcome = bank.access(pkt.address);
        if (outcome == CacheOutcome::Miss || outcome
            == CacheOutcome::MissMerged) {
            bank.fill(pkt.address);
        }
        sink_.onAccess(UnitId::L2, AccessType::Write, pkt.payload,
                       fullMask, cycle_);
        break;
      }
      default:
        panic("unexpected packet type at bank");
    }
}

void
Gpu::onDramComplete(const DramRequest &req, std::uint64_t cycle)
{
    const std::uint32_t line = req.lineAddr;
    auto it = dramWaiting_.find(line);
    if (it == dramWaiting_.end())
        return;
    std::vector<noc::Packet> waiters = std::move(it->second);
    dramWaiting_.erase(it);
    panic_if(waiters.empty(), "DRAM completion with no waiters");

    const bool instr = noc::isInstrPacket(waiters.front().type);
    TagCache &bank =
        l2_[static_cast<std::size_t>(waiters.front().dstBank)];
    bank.fill(line);
    // L2 fill write.
    accountL2Line(line, AccessType::Write, instr, cycle);

    for (const noc::Packet &pkt : waiters) {
        // Each waiter reads the line out of L2.
        accountL2Line(line, AccessType::Read, noc::isInstrPacket(pkt.type),
                      cycle);
        noc::Packet reply;
        reply.type = noc::isInstrPacket(pkt.type)
                         ? noc::PacketType::InstrReply
                         : noc::PacketType::ReadReply;
        reply.srcSm = pkt.srcSm;
        reply.dstBank = pkt.dstBank;
        reply.address = pkt.address;
        reply.requestId = pkt.requestId;
        reply.payload = reply.type == noc::PacketType::ReadReply
                            ? lineData(pkt.address)
                            : instrLineData(pkt.address);
        scheduleReply(cycle
                          + static_cast<std::uint64_t>(config_.l2Latency),
                      std::move(reply));
    }
}

void
Gpu::scheduleReply(std::uint64_t cycle, noc::Packet pkt)
{
    delayedReplies_.emplace(cycle, std::move(pkt));
}

void
Gpu::handleReplyAtSm(const noc::Packet &pkt)
{
    Sm &sm = *sms_[static_cast<std::size_t>(pkt.srcSm)];
    if (pkt.type == noc::PacketType::InstrReply)
        sm.onInstrFill(pkt.address, cycle_);
    else
        sm.onDataFill(pkt.address, cycle_);
}

GpuStats
Gpu::run()
{
    // Initial block assignment, round-robin across SMs.
    nextBlock_ = 0;
    const int total_blocks = program_.launch.gridBlocks;
    bool made_progress = true;
    while (nextBlock_ < total_blocks && made_progress) {
        made_progress = false;
        for (int s = 0; s < config_.numSms && nextBlock_ < total_blocks;
             ++s) {
            if (sms_[static_cast<std::size_t>(s)]->assignBlock(
                    nextBlock_)) {
                ++nextBlock_;
                made_progress = true;
            }
        }
    }
    fatal_if(nextBlock_ == 0, "no block fits on any SM");

    const std::uint64_t cycle_limit = 200'000'000;
    // Watchdog poll period: cheap enough to never matter (one clock read
    // per ~4k simulated cycles), fine enough that a timed-out app stops
    // within milliseconds of its deadline.
    constexpr std::uint64_t cancel_poll_cycles = 4096;
    cycle_ = 0;
    bool work_left = true;
    while (work_left) {
        ++cycle_;
        fatal_if(cycle_ > cycle_limit, "simulation exceeded cycle limit");
        if (cancel_ && cycle_ % cancel_poll_cycles == 0
            && cancel_->expired()) {
            fatal("simulation cancelled by watchdog at cycle %llu",
                  static_cast<unsigned long long>(cycle_));
        }

        for (auto &sm : sms_)
            sm->step(cycle_);
        noc_->step(cycle_);
        mc_->step(cycle_);

        // Release matured L2 replies into the reply network.
        while (!delayedReplies_.empty()
               && delayedReplies_.begin()->first <= cycle_) {
            noc_->injectReply(std::move(delayedReplies_.begin()->second));
            delayedReplies_.erase(delayedReplies_.begin());
        }

        // Launch remaining blocks as SMs drain.
        if (nextBlock_ < total_blocks) {
            for (int s = 0; s < config_.numSms
                            && nextBlock_ < total_blocks;
                 ++s) {
                while (nextBlock_ < total_blocks
                       && sms_[static_cast<std::size_t>(s)]->assignBlock(
                           nextBlock_)) {
                    ++nextBlock_;
                }
            }
        }

        work_left = nextBlock_ < total_blocks || noc_->busy()
                    || mc_->busy() || !delayedReplies_.empty();
        if (!work_left) {
            for (const auto &sm : sms_) {
                if (!sm->idle()) {
                    work_left = true;
                    break;
                }
            }
        }
    }

    stats_.cycles = cycle_;
    for (const auto &sm : sms_) {
        const SmStats &s = sm->stats();
        stats_.sm.issued += s.issued;
        stats_.sm.fpOps += s.fpOps;
        stats_.sm.intOps += s.intOps;
        stats_.sm.loads += s.loads;
        stats_.sm.stores += s.stores;
        stats_.sm.controlOps += s.controlOps;
        stats_.sm.sharedAccesses += s.sharedAccesses;
        stats_.sm.bankConflictCycles += s.bankConflictCycles;
        stats_.sm.idleCycles += s.idleCycles;
        stats_.sm.pivotDivergentWrites += s.pivotDivergentWrites;
        stats_.sm.regBankConflictCycles += s.regBankConflictCycles;
    }
    stats_.noc = noc_->stats();
    stats_.dramRowHits = mc_->rowHits();
    stats_.dramRowMisses = mc_->rowMisses();
    return stats_;
}

} // namespace bvf::gpu
