/**
 * @file
 * FR-FCFS implementation.
 */

#include "gpu/mem_ctrl.hh"

#include "common/logging.hh"

namespace bvf::gpu
{

MemoryController::MemoryController(int channels, std::uint32_t rowBytes,
                                   int rowHitLatency, int rowMissLatency)
    : rowHitLatency_(rowHitLatency), rowMissLatency_(rowMissLatency),
      rowBytes_(rowBytes)
{
    fatal_if(channels <= 0, "need at least one DRAM channel");
    fatal_if(rowBytes == 0 || (rowBytes & (rowBytes - 1)) != 0,
             "row size must be a power of two");
    channels_.resize(static_cast<std::size_t>(channels));
}

int
MemoryController::channelOf(std::uint32_t lineAddr) const
{
    // Line-interleave across channels (128B granularity).
    return static_cast<int>((lineAddr >> 7)
                            % static_cast<std::uint32_t>(channels_.size()));
}

void
MemoryController::enqueue(std::uint32_t lineAddr, std::uint64_t token,
                          std::uint64_t cycle)
{
    auto &ch = channels_[static_cast<std::size_t>(channelOf(lineAddr))];
    ch.queue.push_back(DramRequest{lineAddr, token, cycle});
}

void
MemoryController::step(std::uint64_t cycle)
{
    for (auto &ch : channels_) {
        if (ch.serving) {
            if (cycle >= ch.doneCycle) {
                ch.serving = false;
                ch.openRow = ch.current.lineAddr / rowBytes_;
                panic_if(!complete_, "no completion handler installed");
                complete_(ch.current);
            }
            continue;
        }
        if (ch.queue.empty())
            continue;

        // FR-FCFS: oldest row-hit first, else the overall oldest.
        auto pick = ch.queue.end();
        for (auto it = ch.queue.begin(); it != ch.queue.end(); ++it) {
            if (it->lineAddr / rowBytes_ == ch.openRow) {
                pick = it;
                break;
            }
        }
        bool row_hit = pick != ch.queue.end();
        if (!row_hit)
            pick = ch.queue.begin();

        ch.current = *pick;
        ch.queue.erase(pick);
        ch.serving = true;
        ch.doneCycle =
            cycle + static_cast<std::uint64_t>(row_hit ? rowHitLatency_
                                                       : rowMissLatency_);
        if (row_hit)
            ++rowHits_;
        else
            ++rowMisses_;
    }
}

bool
MemoryController::busy() const
{
    for (const auto &ch : channels_) {
        if (ch.serving || !ch.queue.empty())
            return true;
    }
    return false;
}

} // namespace bvf::gpu
