/**
 * @file
 * Machine configuration tables.
 */

#include "gpu/gpu_config.hh"

#include "common/logging.hh"

namespace bvf::gpu
{

std::string
schedulerName(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::Gto:
        return "GTO";
      case SchedulerPolicy::Lrr:
        return "LRR";
      case SchedulerPolicy::TwoLevel:
        return "Two-Level";
    }
    panic("unknown scheduler");
}

const PState &
pstateNominal()
{
    static const PState p = {700.0e6, 1.2, "700MHz@1.2V"};
    return p;
}

const PState &
pstateMid()
{
    static const PState p = {500.0e6, 0.9, "500MHz@0.9V"};
    return p;
}

const PState &
pstateLow()
{
    static const PState p = {300.0e6, 0.6, "300MHz@0.6V"};
    return p;
}

GpuConfig
baselineConfig()
{
    return GpuConfig{};
}

GpuConfig
gtx480Config()
{
    GpuConfig c;
    c.name = "GTX-480";
    return c;
}

GpuConfig
teslaP100Config()
{
    // Table 4: scaled SRAM capacities on the GPGPU-Sim machine model.
    GpuConfig c;
    c.name = "Tesla-P100";
    c.numSms = 56;
    c.regFileBytes = 256 * 1024;
    c.l1iBytes = 16 * 1024;
    c.l1dBytes = 16 * 1024;
    c.l2Banks = 12;
    c.l2BytesPerBank = 128 * 1024; // 1536KB total
    c.l1tBytes = 48 * 1024;
    c.l1cBytes = 8 * 1024;
    c.sharedMemBytes = 112 * 1024;
    return c;
}

GpuConfig
teslaK80Config()
{
    GpuConfig c;
    c.name = "Tesla-K80";
    c.numSms = 13;
    c.regFileBytes = 512 * 1024;
    c.l1iBytes = 16 * 1024;
    c.l1dBytes = 48 * 1024;
    c.l2Banks = 16;
    c.l2BytesPerBank = 256 * 1024; // 4096KB total
    c.l1tBytes = 48 * 1024;
    c.l1cBytes = 10 * 1024;
    c.sharedMemBytes = 64 * 1024;
    return c;
}

} // namespace bvf::gpu
