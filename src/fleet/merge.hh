/**
 * @file
 * Bit-identical merge of per-worker shard journals.
 *
 * A fleet campaign leaves one journal per worker, each holding the
 * applications that worker finished. The merge's contract is the whole
 * point of the fleet design: the merged CampaignReport renders the
 * exact bytes a serial `bvf_sim campaign` run of the same
 * configuration produces, regardless of how many workers there were,
 * how the ring sharded the apps, or how many failovers happened
 * mid-run. Energies are raw IEEE-754 bit patterns end to end, so
 * "identical" here means memcmp-identical, not approximately-equal.
 *
 * Rules, in the order they bite:
 *
 *  - A missing shard file is a zero-job shard (the ring may simply
 *    never have routed anything there), not an error.
 *  - A shard with a damaged tail is salvaged exactly like a serial
 *    resume would: intact records count, the damage is reported in
 *    MergeOutcome::warnings.
 *  - The same application appearing in two shards is legitimate --
 *    failover replay does that -- *if* the copies are bit-identical;
 *    the duplicate is dropped and counted. Copies that differ mean two
 *    workers computed different results for one app under one config,
 *    which is exactly the double-count/corruption a merge must refuse:
 *    structured Corrupt error.
 *  - An application missing from every shard breaks exactly-once
 *    delivery: structured error naming the app.
 *
 * Results are emitted in campaign (suite) order -- shard order and
 * completion order are erased -- and the report counters are recomputed
 * from the merged results, so they cannot drift from the lines below
 * them.
 */

#ifndef BVF_FLEET_MERGE_HH
#define BVF_FLEET_MERGE_HH

#include <span>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "common/result.hh"
#include "workload/app_spec.hh"

namespace bvf::fleet
{

/** What a shard-journal merge produced. */
struct MergeOutcome
{
    campaign::CampaignReport report;
    int duplicatesDropped = 0; //!< identical failover-replay copies
    int salvagedShards = 0;    //!< shards with a damaged tail
    int missingShards = 0;     //!< paths with no file (zero-job shards)
    std::vector<std::string> warnings;
};

/**
 * Are two app results the same to the bit? Energies compare as u64 bit
 * patterns (NaN-safe, -0.0-exact); quarantined results compare their
 * stored error too.
 */
bool appResultsIdentical(const campaign::AppResult &a,
                         const campaign::AppResult &b);

/**
 * Merge the shard journals at @p shardPaths (all written under
 * @p configCrc) into one report covering @p apps, applying the rules
 * above. Errors: Corrupt for conflicting duplicates or an undamaged
 * shard that fails to parse, NotFound-flavoured Corrupt for an app no
 * shard delivered.
 */
Result<MergeOutcome>
mergeShardJournals(std::span<const std::string> shardPaths,
                   std::uint32_t configCrc,
                   std::span<const workload::AppSpec> apps);

} // namespace bvf::fleet

#endif // BVF_FLEET_MERGE_HH
