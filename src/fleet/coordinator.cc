/**
 * @file
 * Fleet coordinator implementation.
 */

#include "fleet/coordinator.hh"

#include <optional>
#include <set>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "server/kernel_store.hh"

namespace bvf::fleet
{

using server::Frame;
using server::MsgType;

namespace
{

std::vector<std::string>
workerIds(const std::vector<WorkerAddress> &workers)
{
    std::vector<std::string> ids;
    ids.reserve(workers.size());
    for (const auto &w : workers)
        ids.push_back(w.id());
    return ids;
}

/** Is this response an application-level rejection of the job? */
bool
isAppError(const Frame &frame)
{
    return frame.type == MsgType::ErrorResponse;
}

/** Decode the ErrorCode an ErrorResponse carries (Unknown on junk). */
ErrorCode
appErrorCode(const Frame &frame)
{
    auto wire = server::WireError::decode(frame.payload);
    if (!wire.ok())
        return ErrorCode::Corrupt;
    return static_cast<ErrorCode>(wire.value().code);
}

/**
 * Is this ErrorResponse really a framing complaint? A worker answers
 * Corrupt/Truncated/Unsupported when the *request stream* failed CRC
 * or framing on its side -- which means the bytes were damaged en
 * route, not that the job is bad. Treating it as the job's verdict
 * would quarantine a perfectly good job because a wire hiccuped.
 */
bool
isFramingError(ErrorCode code)
{
    return code == ErrorCode::Corrupt || code == ErrorCode::Truncated
           || code == ErrorCode::Unsupported;
}

} // namespace

Coordinator::Coordinator(FleetOptions options)
    : options_(std::move(options)), ring_(workerIds(options_.workers)),
      rng_(options_.jitterSeed)
{
    panic_if(options_.workers.empty(),
             "fleet coordinator needs at least one worker");
    clients_.reserve(options_.workers.size());
    health_.assign(options_.workers.size(),
                   WorkerHealth(options_.deadThreshold));
    breakers_.reserve(options_.workers.size());
    for (std::size_t i = 0; i < options_.workers.size(); ++i) {
        const auto &addr = options_.workers[i];
        WorkerClient::DialFn dial;
        if (options_.dialFactory)
            dial = options_.dialFactory(i, addr);
        clients_.push_back(std::make_unique<WorkerClient>(
            addr, std::move(dial), options_.clock));
        breakers_.emplace_back(options_.breakerThreshold,
                               options_.breakerCooldown);
    }
}

Clock::time_point
Coordinator::timeNow()
{
    return options_.clock ? options_.clock->now() : systemClock().now();
}

Coordinator::~Coordinator()
{
    stop();
}

void
Coordinator::start()
{
    if (options_.heartbeatInterval.count() <= 0 || heartbeat_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(stopMutex_);
        stopping_ = false;
    }
    heartbeat_ = std::thread([this] { heartbeatLoop(); });
}

void
Coordinator::stop()
{
    {
        std::lock_guard<std::mutex> lock(stopMutex_);
        stopping_ = true;
    }
    stopCv_.notify_all();
    if (heartbeat_.joinable())
        heartbeat_.join();
    for (auto &client : clients_)
        client->closeAll();
}

bool
Coordinator::pingWorker(std::size_t index)
{
    server::Ping ping;
    ping.nonce = pingNonce_.fetch_add(1);
    Frame frame{MsgType::PingRequest, ping.encode()};
    // A saturated worker parks pings behind long-running jobs, so a
    // probe bounded by one short interval flaps Alive/Dead under load.
    // A dead endpoint still fails fast (the connect itself errors);
    // the floor only buys a busy-but-alive worker time to answer.
    auto deadline = std::max(options_.heartbeatInterval,
                             options_.heartbeatFloor);
    auto reply = clients_[index]->request(frame, deadline);
    return reply.ok() && reply.value().type == MsgType::PingResponse;
}

void
Coordinator::heartbeatLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(stopMutex_);
            stopCv_.wait_for(lock, options_.heartbeatInterval,
                             [this] { return stopping_; });
            if (stopping_)
                return;
        }
        probeWorkersOnce();
    }
}

void
Coordinator::probeWorkersOnce()
{
    for (std::size_t i = 0; i < clients_.size(); ++i) {
        const bool up = pingWorker(i);
        std::lock_guard<std::mutex> lock(mutex_);
        if (up) {
            health_[i].onSuccess();
            // A pong proves liveness, not capacity. An *open* breaker
            // means live traffic was failing (or the worker said
            // Overloaded); letting a cheap heartbeat close it would
            // re-flood a saturated worker and defeat the half-open
            // single-probe discipline. Only real request outcomes may
            // close an open breaker.
            if (!breakers_[i].open())
                breakers_[i].onSuccess();
        } else {
            health_[i].onFailure();
        }
    }
}

Result<Frame>
Coordinator::execute(const Frame &frame, std::string_view routeKey,
                     ExecuteInfo *info)
{
    requests_.fetch_add(1);
    const std::vector<std::size_t> order = ring_.route(routeKey);

    std::set<std::size_t> appErrorWorkers;
    std::optional<Frame> appError;
    std::optional<Error> lastTransport;
    int transportFailures = 0;

    for (int attempt = 0; attempt < options_.maxAttempts; ++attempt) {
        if (attempt > 0) {
            std::chrono::milliseconds delay{0};
            {
                std::lock_guard<std::mutex> lock(mutex_);
                delay = backoffDelay(options_.backoffBase, attempt - 1,
                                     rng_);
            }
            if (delay.count() > 0) {
                if (options_.clock) {
                    // Simulated time: advance rather than block.
                    options_.clock->sleepFor(delay);
                } else {
                    // Interruptible sleep so stop() is never held
                    // hostage by a retry pass.
                    std::unique_lock<std::mutex> lock(stopMutex_);
                    stopCv_.wait_for(lock, delay,
                                     [this] { return stopping_; });
                    if (stopping_)
                        break;
                }
            }
        }

        for (const std::size_t w : order) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (health_[w].state() == WorkerState::Dead)
                    continue;
                if (appErrorWorkers.count(w))
                    continue; // this worker's verdict is already in
                if (!breakers_[w].allow(timeNow()))
                    continue;
            }

            auto reply =
                clients_[w]->request(frame, options_.requestDeadline);
            const auto now = timeNow();

            if (!reply.ok()) {
                // Transport failure: the worker is in trouble, the
                // job is not. Strike, fail over, never re-pool the
                // tainted connections.
                clients_[w]->closeAll();
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    health_[w].onFailure();
                    breakers_[w].onFailure(now);
                }
                ++transportFailures;
                lastTransport = reply.error();
                continue;
            }

            Frame answer = std::move(reply.value());
            if (isAppError(answer)
                && appErrorCode(answer) == ErrorCode::Overloaded) {
                // Alive but saturated: health credit, breaker strike,
                // and the job moves on.
                std::lock_guard<std::mutex> lock(mutex_);
                health_[w].onSuccess();
                breakers_[w].onFailure(now);
                continue;
            }
            if (isAppError(answer)
                && isFramingError(appErrorCode(answer))) {
                // The worker is complaining about the *bytes*, not the
                // job: our request was damaged en route (or the stream
                // desynced). Same reaction as a transport failure --
                // strike, drop the tainted connections, fail over --
                // and crucially NOT a quarantine verdict against the
                // job.
                clients_[w]->closeAll();
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    health_[w].onFailure();
                    breakers_[w].onFailure(now);
                }
                ++transportFailures;
                lastTransport =
                    Error{appErrorCode(answer),
                          "worker reported request framing damage"};
                continue;
            }

            {
                std::lock_guard<std::mutex> lock(mutex_);
                health_[w].onSuccess();
                breakers_[w].onSuccess();
            }

            if (!isAppError(answer)) {
                // Served by someone other than the ring primary --
                // whether the primary failed mid-request or was
                // already marked dead and skipped, the job failed
                // over either way.
                if (w != order.front())
                    failovers_.fetch_add(1);
                if (info) {
                    info->worker = w;
                    info->transportFailures = transportFailures;
                    info->distinctAppErrorWorkers =
                        static_cast<int>(appErrorWorkers.size());
                }
                return answer;
            }

            // A healthy worker rejected the job. One opinion might be
            // a sick worker; a second distinct worker convicts the
            // job itself.
            appErrorWorkers.insert(w);
            appError = std::move(answer);
            if (appErrorWorkers.size() >= 2
                || appErrorWorkers.size() >= order.size()) {
                quarantined_.fetch_add(1);
                if (info) {
                    info->worker = w;
                    info->transportFailures = transportFailures;
                    info->distinctAppErrorWorkers =
                        static_cast<int>(appErrorWorkers.size());
                }
                return *appError;
            }
        }
    }

    if (appError) {
        // Ran out of second opinions (everyone else was down); the
        // one verdict we have stands.
        quarantined_.fetch_add(1);
        if (info) {
            info->transportFailures = transportFailures;
            info->distinctAppErrorWorkers =
                static_cast<int>(appErrorWorkers.size());
        }
        return *appError;
    }
    if (info)
        info->transportFailures = transportFailures;
    if (lastTransport)
        return *lastTransport;
    overloaded_.fetch_add(1);
    return Error{ErrorCode::Overloaded,
                 "no live worker available for this job"};
}

std::function<Frame(const Frame &)>
Coordinator::proxyHandler()
{
    return [this](const Frame &frame) -> Frame {
        auto result = execute(frame, routeKeyForFrame(frame));
        if (result.ok())
            return std::move(result.value());
        server::WireError wire;
        wire.code = static_cast<std::uint8_t>(result.error().code);
        wire.message = result.error().message;
        return Frame{MsgType::ErrorResponse, wire.encode()};
    };
}

WorkerState
Coordinator::workerState(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return health_[index].state();
}

bool
Coordinator::breakerOpen(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return breakers_[index].open();
}

FleetStats
Coordinator::stats() const
{
    FleetStats s;
    s.requests = requests_.load();
    s.failovers = failovers_.load();
    s.overloaded = overloaded_.load();
    s.quarantined = quarantined_.load();
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < health_.size(); ++i) {
        s.deaths += health_[i].deaths();
        s.revivals += health_[i].revivals();
        s.breakerOpens += breakers_[i].timesOpened();
    }
    return s;
}

std::string
Coordinator::routeKeyForFrame(const Frame &frame)
{
    switch (frame.type) {
      case MsgType::BitDensityRequest:
      case MsgType::ChipEnergyRequest:
      case MsgType::StaticQueryRequest:
      case MsgType::StaticAdviceRequest: {
        // All four start their payload with AppQuery, whose first
        // field is the abbreviation string.
        server::WireReader reader(frame.payload);
        std::string abbr;
        if (reader.getString(abbr, 64) && !abbr.empty())
            return abbr;
        break;
      }
      case MsgType::SubmitKernelRequest: {
        // Route by the kernel's content digest so the later
        // EvalSubmitted for the same kernel shards to the worker
        // whose store holds it.
        server::WireReader reader(frame.payload);
        std::string bytecode;
        if (reader.getString(bytecode, server::kMaxPayload)
            && !bytecode.empty())
            return server::kernelDigest(bytecode);
        break;
      }
      case MsgType::EvalSubmittedRequest: {
        // Payload starts with the digest string: same key as the
        // submit that stored the kernel.
        server::WireReader reader(frame.payload);
        std::string digest;
        if (reader.getString(digest, server::kMaxDigestBytes)
            && !digest.empty())
            return digest;
        break;
      }
      default:
        break;
    }
    return strFormat("payload:%08x",
                     crc32(frame.payload.data(), frame.payload.size()));
}

} // namespace bvf::fleet
