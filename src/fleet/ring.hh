/**
 * @file
 * Consistent-hash routing for the bvfd fleet.
 *
 * Jobs are keyed (an application abbreviation, or a digest of a raw
 * request payload) and mapped onto workers through a classic
 * virtual-node hash ring: every worker owns kVirtualNodes points on a
 * 32-bit circle, a key routes to the first point at or after its own
 * hash, and the walk continues clockwise to produce a *preference
 * list* -- primary worker first, then the failover candidates in a
 * deterministic order.
 *
 * The two properties the fleet leans on:
 *  - determinism: the same key and the same worker set always produce
 *    the same preference list, so shard journals are reproducible;
 *  - minimal disruption: removing a worker only re-routes the keys it
 *    owned -- every other key's primary is untouched, which is what
 *    keeps a worker death from stampeding the whole fleet onto one
 *    survivor.
 *
 * The ring itself is immutable once built; liveness is *not* its
 * concern. Routing around dead workers is done by the coordinator
 * walking the preference list and skipping workers whose health state
 * machine says no -- mixing liveness into the ring would change every
 * key's hash neighbourhood on every flap.
 */

#ifndef BVF_FLEET_RING_HH
#define BVF_FLEET_RING_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bvf::fleet
{

/** Virtual nodes per worker; more points, smoother key balance. */
constexpr int kVirtualNodes = 64;

/** Immutable consistent-hash ring over worker indices [0, N). */
class HashRing
{
  public:
    /**
     * Build the ring over @p workerIds (stable identifiers, typically
     * "host:port"). Index i in every preference list refers to
     * workerIds[i].
     */
    explicit HashRing(const std::vector<std::string> &workerIds);

    /**
     * Full preference list for @p key: every worker index exactly
     * once, primary first, failover order after. Empty ring yields an
     * empty list.
     */
    std::vector<std::size_t> route(std::string_view key) const;

    /** Primary worker for @p key; size() must be nonzero. */
    std::size_t primary(std::string_view key) const;

    std::size_t size() const { return workers_; }

  private:
    struct Point
    {
        std::uint32_t hash;
        std::size_t worker;
    };

    std::size_t workers_ = 0;
    std::vector<Point> points_; //!< sorted by hash
};

} // namespace bvf::fleet

#endif // BVF_FLEET_RING_HH
