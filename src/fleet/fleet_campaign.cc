/**
 * @file
 * Distributed campaign implementation.
 */

#include "fleet/fleet_campaign.hh"

#include <atomic>
#include <mutex>
#include <optional>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "core/experiment.hh"
#include "fault/fault_model.hh"
#include "gpu/gpu_config.hh"
#include "runtime/ordered.hh"
#include "runtime/thread_pool.hh"

namespace bvf::fleet
{

using campaign::AppResult;
using campaign::AppStatus;
using server::Frame;
using server::MsgType;

namespace
{

const gpu::PState &
pstateFromIndex(std::uint8_t idx)
{
    return idx == 0 ? gpu::pstateNominal()
           : idx == 1 ? gpu::pstateMid()
                      : gpu::pstateLow();
}

gpu::SchedulerPolicy
schedFromIndex(std::uint8_t idx)
{
    static constexpr gpu::SchedulerPolicy policies[] = {
        gpu::SchedulerPolicy::Gto, gpu::SchedulerPolicy::Lrr,
        gpu::SchedulerPolicy::TwoLevel};
    return policies[idx];
}

/**
 * The exact CampaignOptions a serial `bvf_sim campaign` run of this
 * configuration would build -- the digest depends on every field, so
 * this mapping must track bvf_sim's runCampaign() bit for bit.
 */
campaign::CampaignOptions
serialEquivalentOptions(const FleetCampaignOptions &o)
{
    campaign::CampaignOptions copts;
    copts.run.dynamicIsa = o.dynamicIsa;
    copts.run.vsRegisterPivot = static_cast<int>(o.vsPivot);
    copts.run.fault.seed = 1;
    copts.run.fault.readDisturbRate = fault::readDisturbFlipProbability(
        o.cell, o.node == 0 ? circuit::TechNode::N28
                            : circuit::TechNode::N40,
        pstateFromIndex(o.pstate).vdd,
        static_cast<int>(o.cellsBitline));
    copts.run.fault.ecc = o.ecc ? fault::EccScheme::Secded72_64
                                : fault::EccScheme::None;
    copts.run.fault.enabled = copts.run.fault.readDisturbRate > 0.0;
    copts.pricing.node = o.node == 0 ? circuit::TechNode::N28
                                     : circuit::TechNode::N40;
    copts.pricing.pstate = pstateFromIndex(o.pstate);
    copts.pricing.cellKind = o.cell;
    copts.pricing.ecc = o.ecc;
    copts.pricing.cellsPerBitline = static_cast<int>(o.cellsBitline);
    copts.pricing.allowUnreliableCells =
        copts.run.fault.readDisturbRate > 0.0;
    return copts;
}

/** "127.0.0.1:7001" -> "127.0.0.1_7001" (filesystem-safe). */
std::string
sanitizeId(const std::string &id)
{
    std::string out = id;
    for (char &c : out) {
        if (c == ':' || c == '/')
            c = '_';
    }
    return out;
}

} // namespace

FleetCampaign::FleetCampaign(Coordinator &coordinator,
                             FleetCampaignOptions options)
    : coordinator_(coordinator), options_(std::move(options))
{
}

std::string
FleetCampaign::shardPath(std::size_t index) const
{
    return strFormat(
        "%s/shard-%s.bvfj", options_.journalDir.c_str(),
        sanitizeId(coordinator_.workerAddress(index).id()).c_str());
}

std::uint32_t
FleetCampaign::configDigest(
    std::span<const workload::AppSpec> apps) const
{
    gpu::GpuConfig config = gpu::baselineConfig();
    config.arch = isa::allGpuArchs()[options_.arch];
    config.scheduler = schedFromIndex(options_.sched);
    const core::ExperimentDriver driver(config);
    campaign::CampaignRunner runner(driver,
                                    serialEquivalentOptions(options_));
    return runner.configDigest(apps);
}

Result<FleetCampaignOutcome>
FleetCampaign::run(std::span<const workload::AppSpec> apps)
{
    if (options_.journalDir.empty()) {
        return Error{ErrorCode::InvalidArgument,
                     "fleet campaign requires --journal-dir: shard "
                     "journals are what the merge merges"};
    }
    const auto serialOpts = serialEquivalentOptions(options_);
    if (serialOpts.run.fault.readDisturbRate > 0.0) {
        return Error{
            ErrorCode::InvalidArgument,
            strFormat("cell %s needs fault injection, which protocol "
                      "v1 cannot express; run it with bvf_sim instead",
                      circuit::cellKindName(options_.cell).c_str())};
    }

    const std::uint32_t digest = configDigest(apps);
    FleetCampaignOutcome out;
    const std::size_t nWorkers = coordinator_.workerCount();
    for (std::size_t w = 0; w < nWorkers; ++w)
        out.shardPaths.push_back(shardPath(w));

    // One journal per worker, created lazily on first append so a
    // zero-job shard leaves no file (the merge treats that as empty).
    std::vector<std::unique_ptr<campaign::CampaignJournal>> journals(
        nWorkers);
    std::vector<AppResult> restored;
    for (std::size_t w = 0; w < nWorkers; ++w) {
        if (!fileExists(out.shardPaths[w]))
            continue;
        if (!options_.resume) {
            return Error{
                ErrorCode::InvalidArgument,
                strFormat("shard journal '%s' already exists; pass "
                          "resume to continue or merge, or remove it",
                          out.shardPaths[w].c_str())};
        }
        auto bytes = readFileBytes(out.shardPaths[w]);
        if (!bytes.ok())
            return bytes.error();
        auto load = campaign::parseJournal(bytes.value(), digest);
        if (!load.ok())
            return load.error();
        if (load.value().salvaged) {
            warn("shard '%s': %s", out.shardPaths[w].c_str(),
                 load.value().warning.c_str());
        }
        journals[w] = std::make_unique<campaign::CampaignJournal>(
            out.shardPaths[w], digest);
        journals[w]->adopt(load.value().results);
        for (AppResult &r : load.value().results)
            restored.push_back(std::move(r));
    }

    auto findRestored =
        [&](const std::string &abbr) -> const AppResult * {
        for (const AppResult &r : restored) {
            if (r.abbr == abbr)
                return &r;
        }
        return nullptr;
    };

    std::mutex journalMutex;
    std::atomic<bool> doomed{false};
    std::optional<Error> campaignError;
    std::atomic<int> restoredCount{0};

    auto produce = [&](const workload::AppSpec &spec,
                       std::size_t) -> int {
        if (findRestored(spec.abbr)) {
            restoredCount.fetch_add(1);
            return 0;
        }
        if (doomed.load(std::memory_order_acquire))
            return 0; // campaign already failed; stop burning workers

        server::ChipEnergyRequest req;
        req.query.abbr = spec.abbr;
        req.query.arch = options_.arch;
        req.query.sched = options_.sched;
        req.query.vsPivot = options_.vsPivot;
        req.query.dynamicIsa = options_.dynamicIsa ? 1 : 0;
        req.node = options_.node;
        req.pstate = options_.pstate;
        req.cell = static_cast<std::uint8_t>(options_.cell);
        req.ecc = options_.ecc ? 1 : 0;
        req.cellsBitline = options_.cellsBitline;
        Frame frame{MsgType::ChipEnergyRequest, req.encode()};

        ExecuteInfo info;
        auto reply = coordinator_.execute(frame, spec.abbr, &info);

        AppResult result;
        result.name = spec.name;
        result.abbr = spec.abbr;

        if (!reply.ok()) {
            // Transport-level give-up: no worker could even run the
            // job. That dooms the campaign, not just the app.
            std::lock_guard<std::mutex> lock(journalMutex);
            if (!campaignError)
                campaignError = reply.error();
            doomed.store(true, std::memory_order_release);
            return 0;
        }

        if (reply.value().type == MsgType::ErrorResponse) {
            auto wire = server::WireError::decode(reply.value().payload);
            result.status = AppStatus::Quarantined;
            // Serial accounting: a quarantined app consumed its whole
            // retry budget.
            result.attempts =
                static_cast<std::uint32_t>(options_.maxRetries + 1);
            if (wire.ok()) {
                result.error =
                    Error{static_cast<ErrorCode>(wire.value().code),
                          wire.value().message};
            } else {
                result.error = wire.error();
            }
        } else {
            auto resp =
                server::ChipEnergyResponse::decode(reply.value().payload);
            if (!resp.ok()) {
                std::lock_guard<std::mutex> lock(journalMutex);
                if (!campaignError)
                    campaignError = resp.error();
                doomed.store(true, std::memory_order_release);
                return 0;
            }
            result.status = AppStatus::Completed;
            result.attempts = 1; // failovers are not app attempts
            result.cycles = resp.value().cycles;
            result.instructions = resp.value().instructions;
            result.chipEnergy = resp.value().chipEnergy;
            result.bvfUnitsEnergy = resp.value().bvfUnitsEnergy;
        }

        std::lock_guard<std::mutex> lock(journalMutex);
        if (doomed.load(std::memory_order_relaxed))
            return 0;
        auto &journal = journals[info.worker];
        if (!journal) {
            journal = std::make_unique<campaign::CampaignJournal>(
                out.shardPaths[info.worker], digest);
        }
        auto appended = journal->append(result);
        if (!appended.ok()) {
            campaignError = appended.error();
            doomed.store(true, std::memory_order_release);
        }
        return 0;
    };

    if (options_.jobs > 1) {
        runtime::ThreadPool pool(options_.jobs);
        runtime::parallelMapOrdered(pool, apps, produce);
    } else {
        for (std::size_t i = 0; i < apps.size(); ++i)
            produce(apps[i], i);
    }

    if (campaignError)
        return *campaignError;

    auto merged = mergeShardJournals(out.shardPaths, digest, apps);
    if (!merged.ok())
        return merged.error();
    out.mergeInfo = std::move(merged.value());
    out.report = out.mergeInfo.report;
    out.fleetStats = coordinator_.stats();
    out.restored = restoredCount.load();

    if (!options_.reportPath.empty()) {
        auto wrote =
            atomicWriteFile(options_.reportPath, out.report.render());
        if (!wrote.ok())
            return wrote.error();
    }
    if (!options_.mergedJournalPath.empty()) {
        auto wrote = atomicWriteFile(
            options_.mergedJournalPath,
            campaign::serializeJournal(digest, out.report.results));
        if (!wrote.ok())
            return wrote.error();
    }
    return out;
}

} // namespace bvf::fleet
