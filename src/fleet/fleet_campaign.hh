/**
 * @file
 * Distributed campaign: the 58-app sweep sharded across a bvfd fleet.
 *
 * Each application becomes one ChipEnergyRequest routed by its
 * abbreviation through the coordinator, so under normal operation the
 * suite partitions cleanly across workers and each worker's journal
 * holds a disjoint shard. Failover blurs that -- an app whose primary
 * died finishes on a failover worker and lands in *that* worker's
 * journal, possibly alongside a replayed copy elsewhere -- and the
 * merge (fleet/merge.hh) is what restores the exactly-once,
 * campaign-ordered, bit-identical-to-serial report at the end.
 *
 * Bit identity with `bvf_sim campaign` holds because:
 *  - the wire carries energies as raw IEEE-754 u64 bit patterns;
 *  - the worker prices each app with the exact handler code a serial
 *    run's driver uses, from the same GpuConfig/RunOptions/Pricing;
 *  - the report's `# config` digest is recomputed locally from a
 *    CampaignOptions built by the same mapping bvf_sim uses;
 *  - a first-try remote success records attempts=1 and a failover
 *    does NOT bump attempts (the app itself never failed -- only a
 *    worker did), matching what the serial run would have recorded.
 *
 * The one honest boundary: protocol v1 cannot arm fault injection, so
 * a cell whose serial campaign would enable read-disturb faults
 * (bvf6t) is rejected up front instead of silently priced wrong.
 */

#ifndef BVF_FLEET_FLEET_CAMPAIGN_HH
#define BVF_FLEET_FLEET_CAMPAIGN_HH

#include <span>
#include <string>
#include <vector>

#include "circuit/mem_cell.hh"
#include "common/result.hh"
#include "fleet/coordinator.hh"
#include "fleet/merge.hh"
#include "workload/app_spec.hh"

namespace bvf::fleet
{

/** Knobs for one distributed campaign. */
struct FleetCampaignOptions
{
    /** Directory for per-worker shard journals (required). */
    std::string journalDir;

    /** Merged report file; empty skips writing (render still runs). */
    std::string reportPath;

    /** Merged single-journal file; empty skips writing. */
    std::string mergedJournalPath;

    /** Continue from existing shard journals instead of refusing. */
    bool resume = false;

    /** Client-side concurrent in-flight apps; <= 1 is serial. */
    int jobs = 1;

    /**
     * Mirror of the serial campaign's retry budget: quarantined apps
     * render attempts = maxRetries + 1, exactly as the serial runner
     * records after exhausting its attempts.
     */
    int maxRetries = 1;

    // Query knobs, wire-encoded per app. Defaults match bvf_sim's.
    std::uint8_t arch = 3;  //!< isa::GpuArch index
    std::uint8_t sched = 0; //!< scheduler policy index
    std::uint32_t vsPivot = 21;
    bool dynamicIsa = false;
    std::uint8_t node = 0;   //!< 0 = 28nm, 1 = 40nm
    std::uint8_t pstate = 0; //!< 0 nominal, 1 mid, 2 low
    circuit::CellKind cell = circuit::CellKind::SramBvf8T;
    bool ecc = false;
    std::uint32_t cellsBitline = 128;
};

/** Everything a finished fleet campaign hands back. */
struct FleetCampaignOutcome
{
    campaign::CampaignReport report; //!< merged, campaign-ordered
    MergeOutcome mergeInfo;          //!< dedupe/salvage accounting
    FleetStats fleetStats;           //!< failovers, revivals, ...
    std::vector<std::string> shardPaths;
    int restored = 0; //!< apps adopted from shard journals (resume)
};

/** Runs one campaign through a coordinator and merges the shards. */
class FleetCampaign
{
  public:
    FleetCampaign(Coordinator &coordinator,
                  FleetCampaignOptions options);

    /**
     * Shard, execute, journal, merge, and (optionally) persist the
     * report. Per-app rejections are quarantined in the report; the
     * error path is reserved for campaign-level problems: no routable
     * worker left, journal I/O failure, merge conflict, or a cell
     * configuration the wire protocol cannot express.
     */
    Result<FleetCampaignOutcome>
    run(std::span<const workload::AppSpec> apps);

    /**
     * The digest a serial `bvf_sim campaign` of this configuration
     * would stamp on its journal and report.
     */
    std::uint32_t
    configDigest(std::span<const workload::AppSpec> apps) const;

    /** Shard journal path for worker @p index under journalDir. */
    std::string shardPath(std::size_t index) const;

  private:
    Coordinator &coordinator_;
    FleetCampaignOptions options_;
};

} // namespace bvf::fleet

#endif // BVF_FLEET_FLEET_CAMPAIGN_HH
