/**
 * @file
 * Deadline-bounded protocol client for one bvfd worker.
 *
 * The coordinator's unit of I/O: send one CRC-framed request, read one
 * framed response, never wait past a deadline. All byte movement goes
 * through the Transport seam (server/transport.hh): by default the
 * client dials real sockets (SocketTransport), and the simulation
 * harness injects an in-memory transport via DialFn, which is how the
 * whole fleet runs single-threaded on simulated time.
 *
 * Connections are pooled per worker: request() checks out an idle
 * transport (dialing a fresh one when the pool is dry), performs the
 * round trip, and returns the connection to the pool only when the
 * stream is *provably clean* -- the response parsed and not a byte
 * beyond it was buffered. Any failure, and any leftover bytes after
 * the response (a duplicated frame, a babbling peer), close the
 * connection: a stale frame sitting in a pooled connection would be
 * served as the answer to the *next* request, which is how a fleet
 * silently reports wrong numbers. Thread-safe: any number of pool
 * workers may call request() concurrently; each gets its own
 * connection.
 */

#ifndef BVF_FLEET_WORKER_CLIENT_HH
#define BVF_FLEET_WORKER_CLIENT_HH

#include <chrono>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hh"
#include "common/result.hh"
#include "server/protocol.hh"
#include "server/transport.hh"

namespace bvf::fleet
{

/** Where one worker listens. TCP (host:port) or a Unix socket path. */
struct WorkerAddress
{
    std::string host = "127.0.0.1";
    int port = 0;
    std::string unixPath; //!< non-empty selects Unix-domain transport

    /** Stable routing/journal identifier, e.g. "127.0.0.1:7001". */
    std::string id() const;
};

/**
 * Parse "HOST:PORT" or "unix:PATH" into a WorkerAddress.
 * InvalidArgument on anything else.
 */
Result<WorkerAddress> parseWorkerAddress(const std::string &spec);

/** Pooled, deadline-bounded connection(s) to one worker. */
class WorkerClient
{
  public:
    /**
     * Produce a fresh connected Transport within the deadline. The
     * default dials the worker's real address; the simulation harness
     * injects in-memory transports here.
     */
    using DialFn = std::function<Result<server::TransportPtr>(
        std::chrono::milliseconds deadline)>;

    /**
     * @param dial  connection factory; empty dials @p address for real
     * @param clock deadline time source; null uses systemClock()
     */
    explicit WorkerClient(WorkerAddress address, DialFn dial = {},
                          Clock *clock = nullptr);
    ~WorkerClient();

    WorkerClient(const WorkerClient &) = delete;
    WorkerClient &operator=(const WorkerClient &) = delete;

    /**
     * One round trip within @p deadline (<= 0 means block forever).
     * Io: connect/reset failures. Timeout: the deadline expired.
     * Corrupt/Truncated/Unsupported: the response stream failed
     * framing. The returned frame may itself be an ErrorResponse --
     * that is an *application* answer from a healthy worker, which the
     * coordinator treats very differently from a transport error.
     */
    Result<server::Frame> request(const server::Frame &frame,
                                  std::chrono::milliseconds deadline);

    /** Drop every pooled connection (e.g. after the worker died). */
    void closeAll();

    const WorkerAddress &address() const { return address_; }

  private:
    Result<server::TransportPtr>
    checkout(std::chrono::milliseconds deadline);
    void checkin(server::TransportPtr transport);

    /** Budget left of @p deadline measured from @p start; <=0 = forever. */
    std::chrono::milliseconds
    remainingBudget(Clock::time_point start,
                    std::chrono::milliseconds deadline);

    WorkerAddress address_;
    DialFn dial_;
    Clock *clock_;
    std::mutex mutex_;
    std::vector<server::TransportPtr> idle_;
};

} // namespace bvf::fleet

#endif // BVF_FLEET_WORKER_CLIENT_HH
